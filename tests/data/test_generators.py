"""Synthetic signal generators: structural and physiological invariants."""

import numpy as np
import pytest

from repro.data import (ECGConfig, EEGConfig, ImageConfig, derive_leads,
                        make_ecg_dataset, make_eeg_dataset,
                        make_image_dataset)
from repro.data.ecg import _ELECTRODE_VECTORS, ELECTRODE_NAMES, LEAD_NAMES
from repro.data.eeg import LEFT_MOTOR_CHANNELS, RIGHT_MOTOR_CHANNELS


class TestEEGGenerator:
    def test_shapes_and_labels(self):
        ds = make_eeg_dataset(EEGConfig(n_trials=12, n_samples=160, seed=1))
        assert ds.inputs.shape == (12, 64, 160)
        assert set(np.unique(ds.labels)) <= {0, 1}

    def test_reproducible(self):
        a = make_eeg_dataset(EEGConfig(n_trials=4, n_samples=80, seed=5))
        b = make_eeg_dataset(EEGConfig(n_trials=4, n_samples=80, seed=5))
        assert np.array_equal(a.inputs, b.inputs)
        assert np.array_equal(a.labels, b.labels)

    def test_erd_lateralization(self):
        """Imagined-right trials must show lower mu power over the LEFT
        motor channels than imagined-left trials (the discriminative
        physiology the classifier must find)."""
        cfg = EEGConfig(n_trials=120, n_samples=480, seed=2,
                        noise_amplitude=0.3)
        ds = make_eeg_dataset(cfg)

        def band_power(x, lo=7.0, hi=13.0):
            spec = np.abs(np.fft.rfft(x, axis=-1)) ** 2
            freqs = np.fft.rfftfreq(x.shape[-1], 1 / cfg.sample_rate)
            band = (freqs >= lo) & (freqs <= hi)
            return spec[..., band].mean(axis=-1)

        left_ch = ds.inputs[:, LEFT_MOTOR_CHANNELS, :]
        power = band_power(left_ch).mean(axis=1)
        right_imagery = power[ds.labels == 1].mean()
        left_imagery = power[ds.labels == 0].mean()
        assert right_imagery < left_imagery

    def test_motor_channels_disjoint(self):
        assert not set(LEFT_MOTOR_CHANNELS) & set(RIGHT_MOTOR_CHANNELS)


class TestECGGenerator:
    def test_shapes_and_labels(self):
        ds = make_ecg_dataset(ECGConfig(n_trials=10, n_samples=500, seed=1))
        assert ds.inputs.shape == (10, 12, 500)
        assert set(np.unique(ds.labels)) <= {0, 1}

    def test_reproducible(self):
        a = make_ecg_dataset(ECGConfig(n_trials=5, seed=9))
        b = make_ecg_dataset(ECGConfig(n_trials=5, seed=9))
        assert np.array_equal(a.inputs, b.inputs)

    def test_einthoven_law(self, rng):
        """Lead I + Lead III = Lead II, by construction of the limb leads —
        must hold exactly for any electrode potentials."""
        potentials = rng.standard_normal((9, 100))
        leads = derive_leads(potentials)
        i, ii, iii = leads[0], leads[1], leads[2]
        assert np.allclose(i + iii, ii)

    def test_augmented_leads_sum_to_zero(self, rng):
        potentials = rng.standard_normal((9, 50))
        leads = derive_leads(potentials)
        avr, avl, avf = leads[3], leads[4], leads[5]
        assert np.allclose(avr + avl + avf, 0, atol=1e-12)

    def test_lead_naming(self):
        assert len(LEAD_NAMES) == 12
        assert len(ELECTRODE_NAMES) == 9
        assert _ELECTRODE_VECTORS.shape == (9, 3)

    def test_inversion_fraction_respected(self):
        ds = make_ecg_dataset(ECGConfig(n_trials=400, seed=3,
                                        inversion_fraction=0.25))
        assert abs(ds.labels.mean() - 0.25) < 0.07

    def test_swap_changes_leads(self):
        """A swapped trial must differ from what the same dipole would give
        unswapped — checked statistically: positive and negative classes
        have different inter-lead correlation structure."""
        ds = make_ecg_dataset(ECGConfig(n_trials=200, seed=4,
                                        noise_amplitude=0.01))
        def mean_abs_corr(trials):
            cs = []
            for x in trials:
                c = np.corrcoef(x)
                cs.append(c[0, 1])    # correlation of leads I and II
            return np.mean(cs)
        pos = mean_abs_corr(ds.inputs[ds.labels == 1])
        neg = mean_abs_corr(ds.inputs[ds.labels == 0])
        assert abs(pos - neg) > 0.05

    def test_heartbeats_present(self):
        """R-peaks should make lead II's max much larger than its std."""
        ds = make_ecg_dataset(ECGConfig(n_trials=5, seed=6,
                                        noise_amplitude=0.01))
        lead_ii = ds.inputs[:, 1, :]
        assert (lead_ii.max(axis=1) > 3 * lead_ii.std(axis=1)).all()


class TestImageGenerator:
    def test_shapes_and_label_coverage(self):
        ds = make_image_dataset(ImageConfig(n_classes=4, n_per_class=6,
                                            image_size=16, seed=1))
        assert ds.inputs.shape == (24, 3, 16, 16)
        assert np.array_equal(np.unique(ds.labels), np.arange(4))
        counts = np.bincount(ds.labels)
        assert np.all(counts == 6)

    def test_reproducible(self):
        a = make_image_dataset(ImageConfig(n_classes=2, n_per_class=3,
                                           image_size=8, seed=2))
        b = make_image_dataset(ImageConfig(n_classes=2, n_per_class=3,
                                           image_size=8, seed=2))
        assert np.array_equal(a.inputs, b.inputs)

    def test_classes_are_distinguishable(self):
        """Within-class correlation must exceed between-class correlation."""
        ds = make_image_dataset(ImageConfig(n_classes=3, n_per_class=10,
                                            image_size=16, seed=3,
                                            noise_amplitude=0.1))
        flat = ds.inputs.reshape(len(ds.inputs), -1)
        flat = flat - flat.mean(axis=1, keepdims=True)
        flat /= np.linalg.norm(flat, axis=1, keepdims=True)
        sims = flat @ flat.T
        same = ds.labels[:, None] == ds.labels[None, :]
        off_diag = ~np.eye(len(flat), dtype=bool)
        within = sims[same & off_diag].mean()
        between = sims[~same].mean()
        assert within > between + 0.05
