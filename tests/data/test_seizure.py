"""Tests for the synthetic seizure-detection dataset (repro.data.seizure)."""

import numpy as np
import pytest

from repro.data import (SeizureConfig, band_power, make_seizure_dataset,
                        spike_wave_train)


class TestSpikeWaveTrain:
    def test_zero_before_onset(self):
        rng = np.random.default_rng(0)
        wave = spike_wave_train(512, 160.0, 3.0, onset=100, rng=rng)
        assert np.all(wave[:100] == 0.0)
        assert np.any(wave[100:] != 0.0)

    def test_amplitude_ramps_in(self):
        rng = np.random.default_rng(1)
        wave = spike_wave_train(1024, 160.0, 3.0, onset=0, rng=rng)
        early = np.abs(wave[:53]).max()      # first cycle at 3 Hz
        late = np.abs(wave[-300:]).max()
        assert late > early

    def test_energy_at_discharge_rate(self):
        rng = np.random.default_rng(2)
        wave = spike_wave_train(1600, 160.0, 3.0, onset=0, rng=rng)
        p_discharge = band_power(wave, 2.0, 4.0, 160.0)
        p_high = band_power(wave, 30.0, 60.0, 160.0)
        assert p_discharge > 10 * p_high

    def test_bad_onset_raises(self):
        rng = np.random.default_rng(3)
        with pytest.raises(ValueError, match="onset"):
            spike_wave_train(100, 160.0, 3.0, onset=100, rng=rng)


class TestSeizureConfig:
    def test_default_validates(self):
        SeizureConfig().validate()

    def test_bad_fraction_raises(self):
        with pytest.raises(ValueError, match="ictal_fraction"):
            SeizureConfig(ictal_fraction=0.0).validate()
        with pytest.raises(ValueError, match="focus_fraction"):
            SeizureConfig(focus_fraction=1.5).validate()

    def test_nyquist_guard(self):
        with pytest.raises(ValueError, match="Nyquist"):
            SeizureConfig(spike_rate_hz=100.0, sample_rate=160.0).validate()

    def test_tiny_dataset_rejected(self):
        with pytest.raises(ValueError, match="too small"):
            SeizureConfig(n_trials=1).validate()


class TestMakeSeizureDataset:
    def test_shapes_and_label_mix(self):
        cfg = SeizureConfig(n_trials=60, seed=4)
        ds = make_seizure_dataset(cfg)
        assert ds.inputs.shape == (60, 16, 512)
        assert set(np.unique(ds.labels)) == {0, 1}
        assert abs(int(ds.labels.sum()) - 30) <= 1

    def test_reproducible(self):
        a = make_seizure_dataset(SeizureConfig(n_trials=20, seed=5))
        b = make_seizure_dataset(SeizureConfig(n_trials=20, seed=5))
        assert np.array_equal(a.inputs, b.inputs)
        assert np.array_equal(a.labels, b.labels)

    def test_ictal_trials_have_discharge_band_excess(self):
        cfg = SeizureConfig(n_trials=80, seed=6)
        ds = make_seizure_dataset(cfg)
        # Power in the spike-and-wave band, best recruited channel.
        power = band_power(ds.inputs, 2.0, 4.0, cfg.sample_rate).max(axis=1)
        ictal = power[ds.labels == 1].mean()
        background = power[ds.labels == 0].mean()
        assert ictal > 2 * background

    def test_difficulty_scales_with_amplitude(self):
        easy = make_seizure_dataset(SeizureConfig(
            n_trials=60, discharge_amplitude=3.0, seed=7))
        hard = make_seizure_dataset(SeizureConfig(
            n_trials=60, discharge_amplitude=0.3, seed=7))

        def separability(ds):
            power = band_power(ds.inputs, 2.0, 4.0, 160.0).max(axis=1)
            return (power[ds.labels == 1].mean()
                    / power[ds.labels == 0].mean())

        assert separability(easy) > separability(hard)

    def test_recruited_channels_are_contiguous_subset(self):
        cfg = SeizureConfig(n_trials=40, focus_fraction=0.25,
                            discharge_amplitude=4.0, seed=8)
        ds = make_seizure_dataset(cfg)
        ictal = ds.inputs[ds.labels == 1]
        power = band_power(ictal, 2.0, 4.0, cfg.sample_rate)
        # With 4 of 16 channels recruited, the per-trial power profile is
        # strongly peaked: top-4 channels dominate the rest.
        top4 = np.sort(power, axis=1)[:, -4:].mean()
        rest = np.sort(power, axis=1)[:, :-4].mean()
        assert top4 > 3 * rest


class TestSeizureDetectionPipeline:
    def test_bnn_detects_seizures_with_high_sensitivity(self):
        """Train the binarized-classifier model on the seizure task and
        check the clinically binding metric — the §I application, end to
        end on this repository's stack."""
        from repro.experiments import (TrainConfig, evaluate_report,
                                       train_model)
        from repro.models import EEGNet

        from repro.models.common import BinarizationMode

        cfg = SeizureConfig(n_trials=240, n_channels=16, n_samples=256,
                            discharge_amplitude=2.0, seed=9)
        ds = make_seizure_dataset(cfg)
        n_train = 192
        model = EEGNet(mode=BinarizationMode.BINARY_CLASSIFIER,
                       n_channels=16, n_samples=256, base_filters=4,
                       rng=np.random.default_rng(10))
        train_model(model, ds.inputs[:n_train], ds.labels[:n_train],
                    TrainConfig(epochs=30, batch_size=16, lr=2e-3, seed=11))
        model.eval()
        report = evaluate_report(model, ds.inputs[n_train:],
                                 ds.labels[n_train:])
        assert report.accuracy > 0.8
        assert report.sensitivity > 0.8   # missed seizures are the cost
        assert report.auc > 0.85
