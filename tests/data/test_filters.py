"""Tests for the signal-processing front-end (repro.data.filters)."""

import numpy as np
import pytest

from repro.data import (EEG_BANDS, band_power, bandpass_filter,
                        make_eeg_dataset, notch_filter, relative_band_power,
                        remove_baseline_wander, resample_signal)
from repro.data.eeg import EEGConfig, motor_channel_groups


def sine(freq_hz: float, rate_hz: float, seconds: float = 4.0,
         amplitude: float = 1.0) -> np.ndarray:
    t = np.arange(int(seconds * rate_hz)) / rate_hz
    return amplitude * np.sin(2 * np.pi * freq_hz * t)


class TestBandpass:
    def test_passes_in_band_tone(self):
        x = sine(10.0, 160.0)
        y = bandpass_filter(x, 8.0, 12.0, 160.0)
        # Steady-state RMS preserved within a few percent.
        assert np.std(y[100:-100]) == pytest.approx(np.std(x[100:-100]),
                                                    rel=0.05)

    def test_rejects_out_of_band_tone(self):
        x = sine(50.0, 160.0)
        y = bandpass_filter(x, 8.0, 12.0, 160.0)
        assert np.std(y) < 0.02 * np.std(x)

    def test_higher_order_rejects_harder(self):
        x = sine(50.0, 160.0)
        y4 = bandpass_filter(x, 8.0, 12.0, 160.0, order=4)
        y8 = bandpass_filter(x, 8.0, 12.0, 160.0, order=8)
        assert np.std(y8) < np.std(y4)

    def test_separates_mixture(self):
        x = sine(10.0, 160.0) + sine(45.0, 160.0)
        y = bandpass_filter(x, 8.0, 12.0, 160.0)
        target = sine(10.0, 160.0)
        resid = y[200:-200] - target[200:-200]
        assert np.std(resid) < 0.1 * np.std(target)

    def test_zero_phase_no_delay(self):
        # Cross-correlation between input and output of an in-band tone
        # peaks at zero lag — forward-backward filtering cancels group delay.
        x = sine(10.0, 160.0)
        y = bandpass_filter(x, 5.0, 20.0, 160.0)
        core = slice(100, -100)
        lags = range(-8, 9)
        corrs = [np.dot(x[core], np.roll(y, lag)[core]) for lag in lags]
        assert lags[int(np.argmax(corrs))] == 0

    def test_applies_along_last_axis(self):
        x = np.stack([sine(10.0, 160.0), sine(50.0, 160.0)])
        y = bandpass_filter(x, 8.0, 12.0, 160.0)
        assert y.shape == x.shape
        assert np.std(y[0]) > 10 * np.std(y[1])

    def test_invalid_band_raises(self):
        with pytest.raises(ValueError, match="Nyquist"):
            bandpass_filter(np.zeros(100), 10.0, 90.0, 160.0)
        with pytest.raises(ValueError):
            bandpass_filter(np.zeros(100), 12.0, 8.0, 160.0)

    def test_invalid_rate_raises(self):
        with pytest.raises(ValueError, match="positive"):
            bandpass_filter(np.zeros(100), 1.0, 2.0, 0.0)


class TestNotch:
    def test_kills_powerline(self):
        x = sine(50.0, 250.0, seconds=8.0)
        y = notch_filter(x, 50.0, 250.0)
        core = slice(400, -400)  # exclude filter edge transients
        assert np.std(y[core]) < 0.05 * np.std(x[core])

    def test_preserves_neighbours(self):
        x = sine(10.0, 250.0)
        y = notch_filter(x, 50.0, 250.0)
        assert np.std(y) == pytest.approx(np.std(x), rel=0.05)

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError, match="Nyquist"):
            notch_filter(np.zeros(100), 200.0, 250.0)


class TestBaselineWander:
    def test_removes_drift_keeps_qrs_band(self):
        rate = 250.0
        drift = sine(0.2, rate, seconds=16.0, amplitude=5.0)
        qrs_like = sine(12.0, rate, seconds=16.0, amplitude=1.0)
        y = remove_baseline_wander(drift + qrs_like, rate)
        core = slice(500, -500)
        assert np.std(y[core] - qrs_like[core]) < 0.15 * np.std(qrs_like)

    def test_zero_mean_output(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=2000) + 3.0
        y = remove_baseline_wander(x, 250.0)
        assert abs(np.mean(y)) < 0.05


class TestBandPower:
    def test_concentrated_in_tone_band(self):
        x = sine(10.0, 160.0, seconds=8.0)
        p_mu = band_power(x, 8.0, 12.0, 160.0)
        p_beta = band_power(x, 13.0, 30.0, 160.0)
        assert p_mu > 100 * p_beta

    def test_scales_quadratically_with_amplitude(self):
        x1 = sine(10.0, 160.0, seconds=8.0, amplitude=1.0)
        x2 = sine(10.0, 160.0, seconds=8.0, amplitude=2.0)
        ratio = band_power(x2, 8.0, 12.0, 160.0) / band_power(
            x1, 8.0, 12.0, 160.0)
        assert ratio == pytest.approx(4.0, rel=0.01)

    def test_relative_power_scale_invariant(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=1600)
        r1 = relative_band_power(x, 8.0, 12.0, 160.0)
        r2 = relative_band_power(10.0 * x, 8.0, 12.0, 160.0)
        assert r1 == pytest.approx(r2, rel=1e-9)
        assert 0.0 <= r1 <= 1.0 + 1e-9

    def test_batch_shape_reduced(self):
        x = np.zeros((5, 3, 800))
        p = band_power(x, 8.0, 12.0, 160.0)
        assert p.shape == (5, 3)

    def test_bad_band_raises(self):
        with pytest.raises(ValueError, match="Nyquist"):
            band_power(np.zeros(800), 8.0, 200.0, 160.0)

    def test_eeg_bands_table_is_contiguous(self):
        bands = list(EEG_BANDS.values())
        for (_, hi), (lo, _) in zip(bands, bands[1:]):
            assert hi == lo


class TestResample:
    def test_length_scales_with_rate(self):
        x = np.zeros(1000)
        y = resample_signal(x, 250.0, 160.0)
        assert y.shape[-1] == 640

    def test_identity_when_rates_equal(self):
        x = np.arange(100.0)
        y = resample_signal(x, 160.0, 160.0)
        assert np.array_equal(x, y)
        assert y is not x  # a copy, never an alias

    def test_tone_survives_downsample(self):
        x = sine(10.0, 250.0, seconds=8.0)
        y = resample_signal(x, 250.0, 160.0)
        p = band_power(y, 8.0, 12.0, 160.0)
        p_out = band_power(y, 20.0, 40.0, 160.0)
        assert p > 100 * p_out

    def test_round_trip_preserves_signal(self):
        x = sine(10.0, 160.0, seconds=4.0)
        y = resample_signal(resample_signal(x, 160.0, 250.0), 250.0, 160.0)
        core = slice(100, -100)
        assert np.allclose(x[core], y[core], atol=0.02)


class TestOnSyntheticEEG:
    """The generator's documented mu-desynchronization must be measurable
    with the spectral tools — ties the two modules together."""

    def test_mu_erd_detectable_via_band_power(self):
        cfg = EEGConfig(n_trials=64, n_subjects=6, seed=3)
        ds = make_eeg_dataset(cfg)
        inputs, labels = ds.inputs, ds.labels
        left, right = motor_channel_groups(inputs.shape[1])
        mu = band_power(inputs, 8.0, 12.0, cfg.sample_rate)
        # Lateralization index: positive when left hemisphere has more mu
        # power than right. Imagining the LEFT hand desynchronizes the RIGHT
        # hemisphere, so the sign should separate the classes on average.
        lat = mu[:, list(left)].mean(axis=1) - mu[:, list(right)].mean(axis=1)
        class0 = lat[labels == 0].mean()
        class1 = lat[labels == 1].mean()
        assert class0 != pytest.approx(class1, rel=0.01)
        # A threshold on the lateralization index should beat chance clearly.
        threshold = np.median(lat)
        pred = (lat > threshold).astype(int)
        acc = max(np.mean(pred == labels), np.mean(pred != labels))
        assert acc > 0.6
