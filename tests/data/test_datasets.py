"""Dataset containers, loaders, cross-validation, transforms."""

import numpy as np
import pytest

from repro.data import (ArrayDataset, ChannelStandardizer, DataLoader,
                        GaussianNoiseAugment, Subset, kfold_indices,
                        stratified_kfold_indices)


class TestArrayDataset:
    def test_len_getitem(self, rng):
        ds = ArrayDataset(rng.standard_normal((10, 3)), np.arange(10))
        assert len(ds) == 10
        x, y = ds[4]
        assert y == 4

    def test_length_mismatch_raises(self, rng):
        with pytest.raises(ValueError):
            ArrayDataset(np.zeros((5, 2)), np.zeros(4))

    def test_num_classes(self):
        ds = ArrayDataset(np.zeros((6, 1)), np.array([0, 1, 2, 0, 1, 2]))
        assert ds.num_classes == 3

    def test_subset(self, rng):
        ds = ArrayDataset(rng.standard_normal((10, 3)), np.arange(10))
        sub = Subset(ds, [2, 5, 7])
        assert len(sub) == 3
        assert sub[1][1] == 5
        xs, ys = sub.arrays()
        assert np.array_equal(ys, [2, 5, 7])


class TestDataLoader:
    def test_batch_shapes_and_coverage(self, rng):
        ds = ArrayDataset(rng.standard_normal((17, 4)), np.arange(17))
        loader = DataLoader(ds, batch_size=5)
        batches = list(loader)
        assert len(batches) == len(loader) == 4
        assert batches[0][0].shape == (5, 4)
        assert batches[-1][0].shape == (2, 4)
        seen = np.concatenate([y for _, y in batches])
        assert np.array_equal(np.sort(seen), np.arange(17))

    def test_drop_last(self, rng):
        ds = ArrayDataset(rng.standard_normal((17, 4)), np.arange(17))
        loader = DataLoader(ds, batch_size=5, drop_last=True)
        assert len(loader) == 3
        assert sum(len(y) for _, y in loader) == 15

    def test_shuffle_is_reproducible(self, rng):
        ds = ArrayDataset(np.zeros((20, 1)), np.arange(20))
        l1 = DataLoader(ds, 4, shuffle=True, rng=np.random.default_rng(3))
        l2 = DataLoader(ds, 4, shuffle=True, rng=np.random.default_rng(3))
        order1 = np.concatenate([y for _, y in l1])
        order2 = np.concatenate([y for _, y in l2])
        assert np.array_equal(order1, order2)
        assert not np.array_equal(order1, np.arange(20))

    def test_invalid_batch_size(self, rng):
        ds = ArrayDataset(np.zeros((4, 1)), np.zeros(4))
        with pytest.raises(ValueError):
            DataLoader(ds, batch_size=0)


class TestKFold:
    def test_folds_partition_everything(self, rng):
        splits = kfold_indices(23, 5, rng)
        all_val = np.concatenate([val for _, val in splits])
        assert np.array_equal(np.sort(all_val), np.arange(23))
        for train, val in splits:
            assert len(np.intersect1d(train, val)) == 0
            assert len(train) + len(val) == 23

    def test_stratified_balance(self, rng):
        labels = np.array([0] * 40 + [1] * 20)
        splits = stratified_kfold_indices(labels, 5, rng)
        for _, val in splits:
            frac = labels[val].mean()
            assert abs(frac - 1 / 3) < 0.1

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            kfold_indices(5, 1)
        with pytest.raises(ValueError):
            stratified_kfold_indices(np.zeros(3), 5)


class TestTransforms:
    def test_standardizer(self, rng):
        data = rng.standard_normal((50, 4, 30)) * 3 + 5
        std = ChannelStandardizer().fit(data)
        out = std.transform(data)
        assert np.allclose(out.mean(axis=(0, 2)), 0, atol=1e-8)
        assert np.allclose(out.std(axis=(0, 2)), 1, atol=1e-6)

    def test_standardizer_requires_fit(self, rng):
        with pytest.raises(RuntimeError):
            ChannelStandardizer().transform(np.zeros((2, 3)))

    def test_noise_augment_changes_data(self, rng):
        aug = GaussianNoiseAugment(0.1, rng)
        x = np.zeros((8, 4))
        out = aug(x)
        assert out.shape == x.shape
        assert 0.05 < out.std() < 0.2

    def test_zero_sigma_is_identity(self, rng):
        aug = GaussianNoiseAugment(0.0, rng)
        x = rng.standard_normal((3, 3))
        assert np.array_equal(aug(x), x)

    def test_negative_sigma_rejected(self):
        with pytest.raises(ValueError):
            GaussianNoiseAugment(-1.0)

    def test_preserves_float32_dtype(self, rng):
        """float32 batches must not be silently upcast to float64 —
        augmented training batches used to double their memory and
        diverge in dtype from the un-augmented eval path."""
        aug = GaussianNoiseAugment(0.1, rng)
        x = rng.standard_normal((8, 4)).astype(np.float32)
        out = aug(x)
        assert out.dtype == np.float32
        assert not np.array_equal(out, x)

    def test_preserves_float64_dtype(self, rng):
        aug = GaussianNoiseAugment(0.1, rng)
        out = aug(rng.standard_normal((4, 4)))
        assert out.dtype == np.float64

    def test_integer_batches_upcast_to_float(self, rng):
        # Gaussian noise on integer windows must not truncate to int.
        aug = GaussianNoiseAugment(0.1, rng)
        out = aug(np.zeros((4, 4), dtype=np.int64))
        assert np.issubdtype(out.dtype, np.floating)
        assert out.std() > 0
