"""Tests for continuous-recording windowing (repro.data.windows)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import (aggregate_scores, aggregate_votes, sliding_windows,
                        window_count)


class TestWindowCount:
    def test_exact_fit_no_overlap(self):
        assert window_count(100, window=25, hop=25) == 4

    def test_partial_tail_dropped(self):
        assert window_count(99, window=25, hop=25) == 3

    def test_overlap_increases_count(self):
        assert window_count(100, window=50, hop=25) == 3

    def test_too_short_gives_zero(self):
        assert window_count(10, window=25, hop=25) == 0

    def test_invalid_args_raise(self):
        with pytest.raises(ValueError, match="positive"):
            window_count(100, window=0, hop=1)
        with pytest.raises(ValueError, match="positive"):
            window_count(100, window=10, hop=0)

    @settings(max_examples=60, deadline=None)
    @given(st.integers(1, 500), st.integers(1, 100), st.integers(1, 100))
    def test_count_formula_property(self, n, window, hop):
        count = window_count(n, window, hop)
        if count > 0:
            # The last window ends inside the recording; one more would not.
            assert (count - 1) * hop + window <= n
            assert count * hop + window > n


class TestSlidingWindows:
    def test_shapes_and_content(self):
        recording = np.arange(20, dtype=float).reshape(1, 20)
        windows = sliding_windows(recording, window=8, hop=4)
        assert windows.shape == (4, 1, 8)
        assert windows[0, 0].tolist() == list(range(8))
        assert windows[1, 0].tolist() == list(range(4, 12))

    def test_multichannel_alignment(self):
        recording = np.stack([np.arange(12.0), np.arange(12.0) + 100])
        windows = sliding_windows(recording, window=6)
        assert windows.shape == (2, 2, 6)
        assert np.allclose(windows[:, 1] - windows[:, 0], 100.0)

    def test_default_hop_is_window(self):
        recording = np.zeros((3, 30))
        assert sliding_windows(recording, window=10).shape == (3, 3, 10)

    def test_result_is_a_safe_copy(self):
        recording = np.zeros((1, 10))
        windows = sliding_windows(recording, window=5)
        windows[0, 0, 0] = 42.0
        assert recording[0, 0] == 0.0

    def test_too_short_raises(self):
        with pytest.raises(ValueError, match="shorter"):
            sliding_windows(np.zeros((2, 5)), window=10)

    def test_wrong_ndim_raises(self):
        with pytest.raises(ValueError, match="channels"):
            sliding_windows(np.zeros(20), window=5)

    def test_overlapping_windows_share_samples(self):
        recording = np.random.default_rng(0).normal(size=(2, 40))
        windows = sliding_windows(recording, window=20, hop=10)
        assert np.array_equal(windows[0][:, 10:], windows[1][:, :10])


class TestAggregation:
    def test_majority_vote(self):
        assert aggregate_votes([0, 1, 1, 1, 0]) == 1

    def test_tie_breaks_low(self):
        assert aggregate_votes([0, 1, 1, 0]) == 0

    def test_single_window(self):
        assert aggregate_votes([2], num_classes=3) == 2

    def test_empty_raises(self):
        with pytest.raises(ValueError, match="no window"):
            aggregate_votes([])

    def test_negative_prediction_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            aggregate_votes([-1, 0])

    def test_score_aggregation_beats_voting_on_near_ties(self):
        # Three windows weakly favour class 0, one strongly favours 1:
        # votes say 0, mean scores say 1.
        scores = np.array([[0.51, 0.49],
                           [0.51, 0.49],
                           [0.51, 0.49],
                           [0.05, 0.95]])
        vote = aggregate_votes(scores.argmax(axis=1))
        mean_pred, mean = aggregate_scores(scores)
        assert vote == 0
        assert mean_pred == 1
        assert mean[1] > mean[0]

    def test_score_shape_validation(self):
        with pytest.raises(ValueError, match="n_windows"):
            aggregate_scores(np.zeros(5))
        with pytest.raises(ValueError, match="n_windows"):
            aggregate_scores(np.zeros((0, 2)))


class TestEndToEndWindowedInference:
    def test_continuous_ecg_stream_classified_by_windows(self):
        """Cut a long synthetic recording into model-sized windows, classify
        each on the trained model, aggregate — the deployment loop."""
        from repro.data import ECGConfig, make_ecg_dataset
        from repro.experiments import (TrainConfig, predict_scores,
                                       train_model)
        from repro.models import BinarizationMode, ECGNet

        dataset = make_ecg_dataset(ECGConfig(n_trials=200, n_samples=300,
                                             noise_amplitude=0.05, seed=61))
        model = ECGNet(mode=BinarizationMode.BINARY_CLASSIFIER,
                       n_samples=300, base_filters=8,
                       rng=np.random.default_rng(62))
        model.fit_input_norm(dataset.inputs[:160])
        train_model(model, dataset.inputs[:160], dataset.labels[:160],
                    TrainConfig(epochs=25, batch_size=16, lr=2e-3, seed=63))
        model.eval()

        # Build one long "stream" per class by concatenating test trials.
        correct = 0
        total = 0
        for cls in (0, 1):
            trials = dataset.inputs[160:][dataset.labels[160:] == cls][:6]
            stream = np.concatenate(list(trials), axis=-1)
            windows = sliding_windows(stream, window=300, hop=150)
            scores = predict_scores(model, windows)
            pred, _ = aggregate_scores(scores)
            correct += int(pred == cls)
            total += 1
        assert correct == total  # aggregation denoises single-window errors
