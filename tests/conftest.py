"""Shared fixtures."""

import numpy as np
import pytest


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic generator; tests must not depend on global state."""
    return np.random.default_rng(12345)
