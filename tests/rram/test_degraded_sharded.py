"""Graceful degradation on the sharded backend: dead macros are remapped
onto provisioned spare chips instead of failing the deployment.

Contracts under test:

* a killed macro's shard re-programs onto a healthy spare, so results
  stay *bit-identical* to the monolithic controller on every read path
  (stacked fast, per-shard fast, physical);
* the stacked fast path keeps its one batched kernel and corrects only
  the remapped slices;
* spare provisioning is explicit: more dead macros than spares raises,
  chip-global maps must be rebased before reaching a layer;
* degradation is visible: placements, floorplan reports and repr all
  name the remapped shards.
"""

import numpy as np
import pytest

from repro.rram import (AcceleratorConfig, FaultMap, MacroGeometry,
                        MemoryController, ShardedController, trial_streams)


@pytest.fixture
def weights(rng):
    return rng.integers(0, 2, (37, 131)).astype(np.uint8)


@pytest.fixture
def x_bits(rng):
    return rng.integers(0, 2, (9, 131)).astype(np.uint8)


def _dead_map(*macros: int) -> FaultMap:
    return FaultMap(dead_macros=tuple(macros))


class TestRemapEquivalence:
    @pytest.mark.parametrize("stacked", ["auto", False])
    def test_killed_macro_matches_monolithic(self, weights, x_bits,
                                             stacked):
        config = AcceleratorConfig(ideal=True)
        mono = MemoryController(weights, config)
        sharded = ShardedController(weights, config=config,
                                    macro=MacroGeometry(8, 24),
                                    fault_map=_dead_map(1, 5),
                                    stacked=stacked)
        assert sharded.degraded
        assert tuple(sharded.remapped_shards) == (1, 5)
        assert np.array_equal(sharded.popcounts(x_bits),
                              mono.popcounts(x_bits))

    def test_stacked_fast_path_survives_degradation(self, weights,
                                                    x_bits):
        config = AcceleratorConfig(ideal=True)
        sharded = ShardedController(weights, config=config,
                                    macro=MacroGeometry(8, 24),
                                    fault_map=_dead_map(0),
                                    stacked=True)
        healthy = ShardedController(weights, config=config,
                                    macro=MacroGeometry(8, 24),
                                    stacked=True)
        assert np.array_equal(sharded.popcounts(x_bits),
                              healthy.popcounts(x_bits))
        # Both ran the one batched stacked kernel, not a per-shard loop.
        assert "kernel_ms" in sharded.last_profile
        assert "kernel_ms" in healthy.last_profile

    def test_physical_path_remap(self, weights, x_bits):
        config = AcceleratorConfig(ideal=True)
        mono = MemoryController(weights, config, fast_path=False)
        sharded = ShardedController(weights, config=config,
                                    macro=MacroGeometry(8, 24),
                                    fault_map=_dead_map(2),
                                    fast_path=False)
        assert np.array_equal(
            sharded.popcounts(x_bits, rng=np.random.default_rng(0)),
            mono.popcounts(x_bits, rng=np.random.default_rng(1)))

    def test_noisy_trials_batched_equals_serial_degraded(self, weights,
                                                         x_bits):
        config = AcceleratorConfig()
        make = lambda: ShardedController(
            weights, config=config, rng=np.random.default_rng(3),
            macro=MacroGeometry(8, 24),
            fault_map=FaultMap(stuck_lrs=0.01, dead_macros=(1,), seed=5))
        batched = make().popcounts_trials(x_bits, trial_streams(9, 3))
        serial = np.stack([make().popcounts(x_bits, rng=r)
                           for r in trial_streams(9, 3)])
        assert np.array_equal(batched, serial)

    def test_dead_plus_stuck_faults_consistent(self, weights, x_bits):
        """Cell faults apply to healthy shards; the remapped shard's
        spare chip is fault-free. Stacked and per-shard paths agree."""
        config = AcceleratorConfig(ideal=True)
        fm = FaultMap(stuck_lrs=0.02, dead_macros=(3,), seed=8)
        stacked = ShardedController(weights, config=config,
                                    macro=MacroGeometry(8, 24),
                                    fault_map=fm, stacked=True)
        per_shard = ShardedController(weights, config=config,
                                      macro=MacroGeometry(8, 24),
                                      fault_map=fm, stacked=False)
        assert np.array_equal(stacked.popcounts(x_bits),
                              per_shard.popcounts(x_bits))


class TestProvisioning:
    def test_auto_spares_cover_dead(self, weights):
        sharded = ShardedController(weights,
                                    config=AcceleratorConfig(ideal=True),
                                    macro=MacroGeometry(8, 24),
                                    fault_map=_dead_map(0, 1, 2))
        assert sharded.placement.spare_macros >= 3

    def test_insufficient_spares_raises(self, weights):
        with pytest.raises(RuntimeError, match="spare"):
            ShardedController(weights,
                              config=AcceleratorConfig(ideal=True),
                              macro=MacroGeometry(8, 24),
                              fault_map=_dead_map(0, 1), spares=1)

    def test_zero_spares_healthy_map_ok(self, weights, x_bits):
        sharded = ShardedController(weights,
                                    config=AcceleratorConfig(ideal=True),
                                    macro=MacroGeometry(8, 24), spares=0)
        assert not sharded.degraded
        mono = MemoryController(weights, AcceleratorConfig(ideal=True))
        assert np.array_equal(sharded.popcounts(x_bits),
                              mono.popcounts(x_bits))

    def test_chip_global_map_must_be_rebased(self, weights):
        with pytest.raises(ValueError, match="rebased"):
            ShardedController(weights,
                              config=AcceleratorConfig(ideal=True),
                              macro=MacroGeometry(8, 24),
                              fault_map=_dead_map(10_000))

    def test_empty_map_identical_to_no_map(self, weights, x_bits):
        config = AcceleratorConfig()
        a = ShardedController(weights, config=config,
                              rng=np.random.default_rng(2),
                              macro=MacroGeometry(8, 24))
        b = ShardedController(weights, config=config,
                              rng=np.random.default_rng(2),
                              macro=MacroGeometry(8, 24),
                              fault_map=FaultMap())
        assert not b.degraded
        ra = a.popcounts(x_bits, rng=np.random.default_rng(0))
        rb = b.popcounts(x_bits, rng=np.random.default_rng(0))
        assert np.array_equal(ra, rb)


class TestDegradedReporting:
    def test_placement_records_remaps(self, weights):
        sharded = ShardedController(weights,
                                    config=AcceleratorConfig(ideal=True),
                                    macro=MacroGeometry(8, 24),
                                    fault_map=_dead_map(1, 5))
        p = sharded.placement
        assert p.remapped == (1, 5)
        assert p.spare_macros >= 2

    def test_repr_names_remapped(self, weights):
        sharded = ShardedController(weights,
                                    config=AcceleratorConfig(ideal=True),
                                    macro=MacroGeometry(8, 24),
                                    fault_map=_dead_map(4))
        assert "remapped=(4,)" in repr(sharded)
