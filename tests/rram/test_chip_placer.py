"""Co-resident placement contracts (ChipPlacer / ChipPlacement).

First-fit-decreasing packing of several tenants' layer placements onto
one macro pool must be physically valid (no word-line overlap, every
shard inside its macro), never worse than solo chips, deterministic,
spares-aware (pooled reserve = max per-tenant demand), and bounded by
``capacity``.
"""

import pytest

from repro.rram import (ChipFloorplan, ChipPlacement, ChipPlacer,
                        LayerPlacement, MacroGeometry)

MACRO = MacroGeometry(32, 32)


def _tenants(macro=MACRO, spares=(0, 0)):
    """Two small tenants with tail shards that can share macros."""
    eeg = [LayerPlacement("fc1", 50, 64, macro, spare_macros=spares[0],
                          tenant="eeg"),
           LayerPlacement("fc2", 5, 50, macro, tenant="eeg")]
    ecg = [LayerPlacement("fc1", 40, 180, macro, spare_macros=spares[1],
                          tenant="ecg"),
           LayerPlacement("fc2", 10, 40, macro, tenant="ecg")]
    return {"eeg": eeg, "ecg": ecg}


class TestPacking:
    def test_word_lines_fit_and_never_overlap(self):
        placement = ChipPlacer(MACRO).place(_tenants())
        spans: dict[int, list[tuple[int, int]]] = {}
        for a in placement.assignments:
            start, stop = a.row_offset, a.row_offset + a.rows
            assert 0 <= start < stop <= MACRO.rows
            spans.setdefault(a.pool_macro, []).append((start, stop))
        for intervals in spans.values():
            intervals.sort()
            for (_, stop), (start, _) in zip(intervals, intervals[1:]):
                assert stop <= start, "word-line ranges overlap"

    def test_every_shard_is_placed_exactly_once(self):
        tenants = _tenants()
        placement = ChipPlacer(MACRO).place(tenants)
        expected = sum(len(p.shards()) for group in tenants.values()
                       for p in group)
        assert len(placement.assignments) == expected
        keys = {(a.tenant, a.layer, a.shard.index)
                for a in placement.assignments}
        assert len(keys) == expected

    def test_never_worse_than_solo_chips(self):
        placement = ChipPlacer(MACRO).place(_tenants())
        assert placement.n_macros_provisioned <= \
            placement.solo_macros_total
        # These tenants have mergeable tail shards: strictly better.
        assert placement.shared_macros() >= 1
        solo_synapses = placement.solo_macros_total * MACRO.synapses
        assert placement.utilization >= \
            placement.synapses_used / solo_synapses

    def test_deterministic(self):
        a = ChipPlacer(MACRO).place(_tenants())
        b = ChipPlacer(MACRO).place(_tenants())
        assert a.assignments == b.assignments
        assert a.report() == b.report()

    def test_mixed_geometry_tenant_rejected(self):
        tenants = _tenants()
        tenants["odd"] = [LayerPlacement("fc1", 8, 8,
                                         MacroGeometry(8, 24),
                                         tenant="odd")]
        with pytest.raises(ValueError, match="share the chip geometry"):
            ChipPlacer(MACRO).place(tenants)

    def test_nothing_to_place_rejected(self):
        with pytest.raises(ValueError, match="nothing to place"):
            ChipPlacer(MACRO).place({})


class TestSparesAndCapacity:
    def test_auto_spares_pool_the_max_tenant_demand(self):
        placement = ChipPlacer(MACRO).place(_tenants(spares=(2, 1)))
        assert placement.spare_macros == 2  # max, not 2 + 1
        # Solo totals still count each tenant's own reserve.
        assert placement.solo_macros["eeg"] == \
            sum(p.n_macros + p.spare_macros
                for p in _tenants(spares=(2, 1))["eeg"])

    def test_int_spares_pass_through(self):
        placement = ChipPlacer(MACRO, spares=3).place(_tenants())
        assert placement.spare_macros == 3
        assert placement.n_macros_provisioned == placement.n_macros + 3

    def test_negative_spares_rejected(self):
        with pytest.raises(ValueError, match="spares"):
            ChipPlacer(MACRO, spares=-1).place(_tenants())

    def test_capacity_exceeded_raises(self):
        need = ChipPlacer(MACRO).place(_tenants()).n_macros
        with pytest.raises(ValueError, match="capacity"):
            ChipPlacer(MACRO, capacity=need - 1).place(_tenants())
        fits = ChipPlacer(MACRO, capacity=need).place(_tenants())
        assert fits.n_macros == need

    def test_capacity_counts_the_spare_reserve(self):
        need = ChipPlacer(MACRO).place(_tenants()).n_macros
        with pytest.raises(ValueError, match="capacity"):
            ChipPlacer(MACRO, capacity=need,
                       spares=1).place(_tenants())


class TestReporting:
    def test_tenant_occupancy_accounts_every_shard(self):
        tenants = _tenants()
        placement = ChipPlacer(MACRO).place(tenants)
        occupancy = placement.tenant_occupancy()
        assert set(occupancy) == {"eeg", "ecg"}
        for name, group in tenants.items():
            entry = occupancy[name]
            assert entry["shards"] == sum(len(p.shards()) for p in group)
            assert entry["word_lines"] == \
                sum(s.rows for p in group for s in p.shards())
            assert entry["synapses_used"] == \
                sum(p.synapses_used for p in group)

    def test_report_shows_the_before_after_macro_math(self):
        placement = ChipPlacer(MACRO).place(_tenants())
        report = placement.report()
        assert "Co-resident pool" in report
        assert "Utilization" in report
        assert "solo chips need" in report
        assert str(placement.solo_macros_total) in report

    def test_macro_report_gains_model_column_for_tenants(self):
        tenants = _tenants()
        flat = [p for group in tenants.values() for p in group]
        report = ChipFloorplan(flat).macro_report()
        assert "Model" in report
        assert "Per-tenant occupancy:" in report
        assert "eeg" in report and "ecg" in report

    def test_macro_report_unchanged_without_tenants(self):
        plain = [LayerPlacement("fc1", 50, 64, MACRO),
                 LayerPlacement("fc2", 5, 50, MACRO)]
        report = ChipFloorplan(plain).macro_report()
        assert "Model" not in report
        assert "Per-tenant occupancy:" not in report

    def test_empty_placement_properties(self):
        placement = ChipPlacement(macro=MACRO, assignments=[])
        assert placement.n_macros == 0
        assert placement.utilization == 0.0
        assert placement.tenants == ()
