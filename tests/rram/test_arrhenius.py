"""Tests for Arrhenius temperature acceleration of retention."""

import numpy as np
import pytest

from repro.rram import (DeviceParameters, RetentionModel,
                        arrhenius_acceleration, equivalent_hours,
                        retention_ber_2t2r)


class TestArrheniusAcceleration:
    def test_unity_at_reference(self):
        assert arrhenius_acceleration(125.0) == pytest.approx(1.0)

    def test_slower_below_reference(self):
        assert arrhenius_acceleration(25.0) > 1.0
        assert arrhenius_acceleration(85.0) > 1.0

    def test_faster_above_reference(self):
        assert arrhenius_acceleration(150.0) < 1.0

    def test_monotone_in_temperature(self):
        factors = [arrhenius_acceleration(t) for t in (0, 25, 37, 85, 125)]
        assert factors == sorted(factors, reverse=True)

    def test_higher_activation_energy_steeper(self):
        mild = arrhenius_acceleration(25.0, activation_energy_ev=0.6)
        steep = arrhenius_acceleration(25.0, activation_energy_ev=1.5)
        assert steep > mild

    def test_known_order_of_magnitude(self):
        """125 C bake vs 37 C body temperature, Ea=1.1 eV: the standard
        JEDEC math gives a factor in the thousands."""
        factor = arrhenius_acceleration(37.0)
        assert 1e3 < factor < 1e5

    def test_invalid_inputs_raise(self):
        with pytest.raises(ValueError, match="absolute zero"):
            arrhenius_acceleration(-300.0)
        with pytest.raises(ValueError, match="activation"):
            arrhenius_acceleration(25.0, activation_energy_ev=0.0)


class TestEquivalentHours:
    def test_identity_at_reference(self):
        assert equivalent_hours(100.0, 125.0) == pytest.approx(100.0)

    def test_ten_field_years_is_a_short_bake(self):
        hours = equivalent_hours(10 * 365.25 * 24, 37.0)
        assert hours < 100.0  # a wearable's decade is a brief oven test

    def test_array_input(self):
        out = equivalent_hours(np.array([1.0, 10.0, 100.0]), 85.0)
        assert out.shape == (3,)
        assert np.all(np.diff(out) > 0)

    def test_composes_with_retention_ber(self):
        """Field-temperature BER must be far below bake-temperature BER
        for the same wall-clock storage time."""
        params = DeviceParameters()
        model = RetentionModel()
        wall_clock_hours = 10 * 365.25 * 24
        ber_bake = retention_ber_2t2r(params, model, wall_clock_hours)
        ber_field = retention_ber_2t2r(
            params, model, equivalent_hours(wall_clock_hours, 37.0))
        assert ber_field < ber_bake
