"""Memory array, controller tiling, and the in-memory classifier."""

import numpy as np
import pytest

from repro import nn
from repro.nn.binary import (fold_batchnorm_output, fold_batchnorm_sign,
                             to_bits, xnor_popcount)
from repro.rram import (AcceleratorConfig, DeviceParameters,
                        InMemoryDenseLayer, InMemoryOutputLayer,
                        MemoryController, RRAMArray, SenseParameters)

IDEAL = AcceleratorConfig(ideal=True)


def ideal_array(rng, rows=8, cols=8, mode="2T2R"):
    cfg = IDEAL.resolved()
    return RRAMArray(rows, cols, params=cfg.device, sense=cfg.sense,
                     rng=rng, mode=mode)


class TestRRAMArray:
    def test_program_read_roundtrip_ideal(self, rng):
        arr = ideal_array(rng)
        bits = rng.integers(0, 2, (8, 8)).astype(np.uint8)
        arr.program(bits)
        assert np.array_equal(arr.read_all(), bits)

    def test_1t1r_mode_roundtrip_ideal(self, rng):
        arr = ideal_array(rng, mode="1T1R")
        bits = rng.integers(0, 2, (8, 8)).astype(np.uint8)
        arr.program(bits)
        assert np.array_equal(arr.read_all(), bits)

    def test_realistic_array_roundtrip_fresh(self, rng):
        arr = RRAMArray(16, 16, rng=rng)
        bits = rng.integers(0, 2, (16, 16)).astype(np.uint8)
        arr.program(bits)
        # Fresh devices: BER ~1e-6, 256 bits should read back clean.
        assert np.array_equal(arr.read_all(), bits)

    def test_xnor_read_matches_logic(self, rng):
        arr = ideal_array(rng)
        bits = rng.integers(0, 2, (8, 8)).astype(np.uint8)
        arr.program(bits)
        inp = rng.integers(0, 2, 8).astype(np.uint8)
        out = arr.read_all_xnor(inp)
        expected = np.logical_not(np.logical_xor(bits, inp[None, :]))
        assert np.array_equal(out, expected.astype(np.uint8))

    def test_xnor_batch_matches_single(self, rng):
        arr = ideal_array(rng)
        bits = rng.integers(0, 2, (8, 8)).astype(np.uint8)
        arr.program(bits)
        inputs = rng.integers(0, 2, (5, 8)).astype(np.uint8)
        batch = arr.read_all_xnor_batch(inputs)
        for i in range(5):
            assert np.array_equal(batch[i], arr.read_all_xnor(inputs[i]))

    def test_decoder_bounds(self, rng):
        arr = ideal_array(rng)
        arr.program(np.zeros((8, 8), dtype=np.uint8))
        with pytest.raises(IndexError):
            arr.read_row(8)
        with pytest.raises(IndexError):
            arr.read_row(0, cols=[9])

    def test_reading_unprogrammed_raises(self, rng):
        arr = ideal_array(rng)
        with pytest.raises(RuntimeError):
            arr.read_row(0)

    def test_program_counts_cycles(self, rng):
        arr = ideal_array(rng)
        bits = np.zeros((8, 8), dtype=np.uint8)
        arr.program(bits)
        arr.program(bits)
        assert np.all(arr.cycles == 2)

    def test_xnor_requires_2t2r(self, rng):
        arr = ideal_array(rng, mode="1T1R")
        arr.program(np.zeros((8, 8), dtype=np.uint8))
        with pytest.raises(RuntimeError):
            arr.read_all_xnor(np.zeros(8, dtype=np.uint8))

    def test_shape_validation(self, rng):
        arr = ideal_array(rng)
        with pytest.raises(ValueError):
            arr.program(np.zeros((4, 4), dtype=np.uint8))
        with pytest.raises(ValueError):
            RRAMArray(4, 4, mode="3T3R")


class TestMemoryController:
    def test_tiling_covers_ragged_matrix(self, rng):
        bits = rng.integers(0, 2, (40, 70)).astype(np.uint8)
        ctrl = MemoryController(bits, AcceleratorConfig(
            tile_rows=32, tile_cols=32, ideal=True), rng)
        assert ctrl.grid_rows == 2 and ctrl.grid_cols == 3
        assert ctrl.n_tiles == 6

    def test_popcounts_match_software(self, rng):
        bits = rng.integers(0, 2, (10, 50)).astype(np.uint8)
        ctrl = MemoryController(bits, AcceleratorConfig(
            tile_rows=8, tile_cols=16, ideal=True), rng)
        x = rng.integers(0, 2, (6, 50)).astype(np.uint8)
        assert np.array_equal(ctrl.popcounts(x), xnor_popcount(x, bits))

    def test_padding_columns_do_not_contribute(self, rng):
        # 5 inputs on 16-wide tiles: 11 padded columns must be masked.
        bits = rng.integers(0, 2, (4, 5)).astype(np.uint8)
        ctrl = MemoryController(bits, AcceleratorConfig(
            tile_rows=4, tile_cols=16, ideal=True), rng)
        x = rng.integers(0, 2, (3, 5)).astype(np.uint8)
        assert np.array_equal(ctrl.popcounts(x), xnor_popcount(x, bits))
        assert ctrl.popcounts(x).max() <= 5

    def test_input_shape_validation(self, rng):
        ctrl = MemoryController(np.zeros((4, 5), np.uint8),
                                AcceleratorConfig(ideal=True), rng)
        with pytest.raises(ValueError):
            ctrl.popcounts(np.zeros((2, 6), np.uint8))

    def test_device_count_includes_differential_pairs(self, rng):
        ctrl = MemoryController(np.zeros((4, 5), np.uint8),
                                AcceleratorConfig(tile_rows=4, tile_cols=8,
                                                  ideal=True), rng)
        assert ctrl.n_devices == 1 * 4 * 8 * 2


class TestFastPath:
    """Program-time dispatch of noise-free configs to the packed kernels."""

    def test_ideal_config_auto_selects_fast_path(self, rng):
        bits = rng.integers(0, 2, (10, 50)).astype(np.uint8)
        ctrl = MemoryController(bits, AcceleratorConfig(ideal=True), rng)
        assert ctrl.fast_path
        assert ctrl.tiles == []          # no device simulation at all

    def test_noisy_config_keeps_simulation(self, rng):
        bits = rng.integers(0, 2, (10, 50)).astype(np.uint8)
        ctrl = MemoryController(bits, AcceleratorConfig(), rng)
        assert not ctrl.fast_path
        assert len(ctrl.tiles) == ctrl.grid_rows

    def test_forcing_fast_path_on_noisy_config_raises(self, rng):
        bits = rng.integers(0, 2, (4, 5)).astype(np.uint8)
        with pytest.raises(ValueError, match="noise-free"):
            MemoryController(bits, AcceleratorConfig(), rng, fast_path=True)
        with pytest.raises(ValueError, match="fast_path"):
            MemoryController(bits, AcceleratorConfig(ideal=True), rng,
                             fast_path="maybe")

    def test_fast_matches_noisy_path_at_zero_variability(self, rng):
        bits = rng.integers(0, 2, (40, 70)).astype(np.uint8)
        config = AcceleratorConfig(tile_rows=8, tile_cols=16, ideal=True)
        fast = MemoryController(bits, config, np.random.default_rng(0))
        slow = MemoryController(bits, config, np.random.default_rng(0),
                                fast_path=False)
        x = rng.integers(0, 2, (9, 70)).astype(np.uint8)
        assert fast.fast_path and not slow.fast_path
        assert np.array_equal(fast.popcounts(x), slow.popcounts(x))
        assert np.array_equal(fast.popcounts(x), xnor_popcount(x, bits))

    def test_fast_path_keeps_op_accounting(self, rng):
        bits = rng.integers(0, 2, (4, 5)).astype(np.uint8)
        config = AcceleratorConfig(tile_rows=4, tile_cols=8, ideal=True)
        fast = MemoryController(bits, config, np.random.default_rng(0))
        slow = MemoryController(bits, config, np.random.default_rng(0),
                                fast_path=False)
        x = rng.integers(0, 2, (3, 5)).astype(np.uint8)
        fast.popcounts(x)
        slow.popcounts(x)
        assert fast.n_devices == slow.n_devices == 1 * 4 * 8 * 2
        assert fast.sense_ops == slow.sense_ops > 0
        assert fast.popcount_bit_ops == slow.popcount_bit_ops > 0

    def test_fast_path_wear_and_reprogram_are_safe(self, rng):
        bits = rng.integers(0, 2, (4, 5)).astype(np.uint8)
        ctrl = MemoryController(bits, AcceleratorConfig(ideal=True), rng)
        ctrl.wear(int(1e9))              # no-op: no variability to age
        ctrl.reprogram()
        x = rng.integers(0, 2, (3, 5)).astype(np.uint8)
        assert np.array_equal(ctrl.popcounts(x), xnor_popcount(x, bits))


class TestNoisyPathChunking:
    """The batch-chunked scan is equivalent to one unchunked scan."""

    def test_chunked_equals_unchunked_under_fixed_rng(self, rng):
        bits = rng.integers(0, 2, (40, 70)).astype(np.uint8)
        config = AcceleratorConfig(tile_rows=8, tile_cols=16)
        x = rng.integers(0, 2, (11, 70)).astype(np.uint8)
        whole = MemoryController(bits, config, np.random.default_rng(3))
        chunked = MemoryController(bits, config, np.random.default_rng(3))
        # 3 batch rows per offset draw instead of the whole batch at once.
        chunked.read_chunk_elems = \
            3 * chunked.grid_rows * config.tile_rows * 70
        assert np.array_equal(whole.popcounts(x), chunked.popcounts(x))

    def test_chunking_bounds_do_not_change_statistics(self, rng):
        # Sanity: a noisy controller with tiny chunks still mostly agrees
        # with the stored bits on fresh devices.
        bits = rng.integers(0, 2, (16, 32)).astype(np.uint8)
        ctrl = MemoryController(bits, AcceleratorConfig(), rng)
        ctrl.read_chunk_elems = 1        # one batch row per draw
        x = rng.integers(0, 2, (8, 32)).astype(np.uint8)
        agreement = (ctrl.popcounts(x) == xnor_popcount(x, bits)).mean()
        assert agreement > 0.9


def _trained_like_bn(rng, features):
    bn = nn.BatchNorm1d(features)
    bn.gamma.data = rng.uniform(0.5, 1.5, features)
    bn.beta.data = rng.standard_normal(features)
    bn.set_buffer("running_mean", rng.standard_normal(features))
    bn.set_buffer("running_var", rng.uniform(0.5, 2.0, features))
    bn.eval()
    return bn


class TestInMemoryLayers:
    def test_dense_layer_matches_folded_software(self, rng):
        layer = nn.BinaryLinear(24, 7, rng=rng)
        bn = _trained_like_bn(rng, 7)
        folded = fold_batchnorm_sign(layer, bn)
        hw = InMemoryDenseLayer(folded, AcceleratorConfig(
            tile_rows=8, tile_cols=8, ideal=True), rng)
        x = rng.integers(0, 2, (9, 24)).astype(np.uint8)
        assert np.array_equal(hw.forward_bits(x), folded.forward_bits(x))

    def test_output_layer_matches_folded_software(self, rng):
        layer = nn.BinaryLinear(16, 3, rng=rng)
        bn = _trained_like_bn(rng, 3)
        folded = fold_batchnorm_output(layer, bn)
        hw = InMemoryOutputLayer(folded, AcceleratorConfig(
            tile_rows=8, tile_cols=8, ideal=True), rng)
        x = rng.integers(0, 2, (5, 16)).astype(np.uint8)
        assert np.allclose(hw.forward_scores(x), folded.forward_scores(x))

    def test_noisy_hardware_mostly_agrees_when_fresh(self, rng):
        layer = nn.BinaryLinear(64, 8, rng=rng)
        bn = _trained_like_bn(rng, 8)
        folded = fold_batchnorm_sign(layer, bn)
        hw = InMemoryDenseLayer(folded, AcceleratorConfig(), rng)
        x = rng.integers(0, 2, (20, 64)).astype(np.uint8)
        agreement = (hw.forward_bits(x) == folded.forward_bits(x)).mean()
        assert agreement > 0.95

    def test_wear_increases_disagreement(self, rng):
        layer = nn.BinaryLinear(64, 8, rng=rng)
        bn = _trained_like_bn(rng, 8)
        folded = fold_batchnorm_sign(layer, bn)
        params = DeviceParameters(sigma_lrs0=0.6, sigma_hrs0=0.6)
        hw = InMemoryDenseLayer(folded, AcceleratorConfig(device=params),
                                rng)
        hw.controller.wear(int(1e10))
        hw.controller.reprogram()
        x = rng.integers(0, 2, (50, 64)).astype(np.uint8)
        worn = (hw.forward_bits(x) == folded.forward_bits(x)).mean()

        hw_fresh = InMemoryDenseLayer(folded, AcceleratorConfig(
            device=params), np.random.default_rng(0))
        fresh = (hw_fresh.forward_bits(x) == folded.forward_bits(x)).mean()
        assert worn <= fresh
