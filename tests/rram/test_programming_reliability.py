"""Program-and-verify, retention drift, and yield analysis."""

import numpy as np
import pytest

from repro.rram import (DeviceParameters, ProgramVerifyConfig, RRAMArray,
                        RetentionModel, SenseParameters, YieldAnalysis,
                        analytic_ber_1t1r, analytic_ber_2t2r,
                        program_array_verified, program_row_verified,
                        retention_ber_1t1r, retention_ber_2t2r)


def _noisy_array(rng, rows=16, cols=16):
    """An array with enough device spread that verification matters."""
    params = DeviceParameters(sigma_lrs0=0.8, sigma_hrs0=0.8)
    return RRAMArray(rows, cols, params=params,
                     sense=SenseParameters(offset_sigma=0.0), rng=rng)


class TestProgramVerify:
    def test_verified_rows_read_back_better(self, rng):
        bits = rng.integers(0, 2, (16, 16)).astype(np.uint8)

        plain = _noisy_array(np.random.default_rng(1))
        plain.program(bits)
        plain_errors = (plain.read_all() != bits).mean()

        verified = _noisy_array(np.random.default_rng(1))
        program_array_verified(verified, bits,
                               ProgramVerifyConfig(max_attempts=8))
        verified_errors = (verified.read_all() != bits).mean()
        assert verified_errors <= plain_errors

    def test_pulse_accounting(self, rng):
        array = _noisy_array(rng)
        bits = rng.integers(0, 2, 16).astype(np.uint8)
        stats = program_row_verified(array, 0, bits)
        # 2T2R: 32 devices on the row, at least one pulse each.
        assert stats.total_devices == 32
        assert stats.total_pulses >= 32
        assert stats.mean_pulses >= 1.0
        assert array.program_ops == stats.total_pulses

    def test_verification_wears_devices(self, rng):
        array = _noisy_array(rng)
        bits = np.ones(16, dtype=np.uint8)
        program_row_verified(array, 0, bits,
                             ProgramVerifyConfig(lrs_max_factor=1.05,
                                                 hrs_min_factor=0.95,
                                                 max_attempts=6))
        # Tight windows force retries; cycle counters must exceed 1.
        assert array.cycles[0].max() > 1

    def test_single_attempt_equals_plain_distribution(self, rng):
        # With max_attempts=1 no retry happens; failure count is reported.
        array = _noisy_array(rng)
        bits = rng.integers(0, 2, 16).astype(np.uint8)
        stats = program_row_verified(array, 0, bits,
                                     ProgramVerifyConfig(max_attempts=1))
        assert stats.total_pulses == stats.total_devices

    def test_shape_validation(self, rng):
        array = _noisy_array(rng)
        with pytest.raises(ValueError):
            program_array_verified(array, np.zeros((4, 4), np.uint8))
        with pytest.raises(ValueError):
            program_row_verified(array, 0, np.zeros(5, np.uint8))


class TestRetention:
    def test_hrs_drifts_down_lrs_up(self, rng):
        model = RetentionModel()
        hrs = np.full(20000, 1e5)
        lrs = np.full(20000, 5e3)
        hrs_aged = model.apply(hrs, np.zeros(20000, bool), 1000.0, rng)
        lrs_aged = model.apply(lrs, np.ones(20000, bool), 1000.0, rng)
        assert np.median(hrs_aged) < 1e5
        assert np.median(lrs_aged) > 5e3

    def test_no_drift_at_reference_time(self, rng):
        model = RetentionModel()
        assert model.hrs_shift(model.reference_hours) == 0.0
        assert model.extra_sigma(0.5) == 0.0   # clamped below reference

    def test_ber_grows_with_storage_time(self):
        params = DeviceParameters()
        model = RetentionModel()
        hours = np.array([1.0, 100.0, 1e4, 1e6])
        curve_1t = retention_ber_1t1r(params, model, hours)
        curve_2t = retention_ber_2t2r(params, model, hours)
        assert np.all(np.diff(curve_1t) > 0)
        assert np.all(np.diff(curve_2t) > 0)

    def test_differential_stays_below_single_ended(self):
        """Drift closes both read margins, but the 2T2R absolute error rate
        must stay below 1T1R at every storage time."""
        params = DeviceParameters()
        model = RetentionModel()
        hours = np.array([1.0, 1e2, 1e4, 1e5])
        curve_1t = retention_ber_1t1r(params, model, hours)
        curve_2t = retention_ber_2t2r(params, model, hours)
        assert np.all(curve_2t < curve_1t)

    def test_matches_base_model_at_time_zero(self):
        params = DeviceParameters()
        model = RetentionModel()
        assert np.isclose(float(retention_ber_1t1r(params, model, 1.0)),
                          float(analytic_ber_1t1r(params, 1e8)), rtol=1e-6)


class TestYield:
    def test_2t2r_yield_beats_1t1r(self):
        analysis = YieldAnalysis(DeviceParameters(), die_sigma=0.15,
                                 n_chips=300, ber_limit=1e-3, seed=3)
        y_2t2r = analysis.run(cycles=3e8, mode="2T2R")
        y_1t1r = analysis.run(cycles=3e8, mode="1T1R")
        assert y_2t2r.yield_fraction >= y_1t1r.yield_fraction

    def test_yield_fraction_bounds(self):
        result = YieldAnalysis(DeviceParameters(), n_chips=50,
                               seed=1).run()
        assert 0.0 <= result.yield_fraction <= 1.0
        assert result.worst_chip_ber >= result.ber_per_chip.min()

    def test_die_spread_hurts_yield(self):
        # The limit sits above the nominal BER (6e-4 at 1e8 cycles for
        # 1T1R), so a tight process passes everywhere and spread only
        # creates failing corners.
        tight = YieldAnalysis(DeviceParameters(), die_sigma=0.01,
                              n_chips=200, ber_limit=2e-3, seed=2)
        loose = YieldAnalysis(DeviceParameters(), die_sigma=0.4,
                              n_chips=200, ber_limit=2e-3, seed=2)
        assert tight.run(mode="1T1R").yield_fraction > \
            loose.run(mode="1T1R").yield_fraction

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            YieldAnalysis(DeviceParameters(), n_chips=10).run(mode="3T3R")
