"""Tests for the chip floorplanner (repro.rram.floorplan)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rram import (ChipFloorplan, LayerPlacement, MacroGeometry,
                        plan_classifier)


class TestShardMap:
    """The executable shard map (LayerPlacement.shards)."""

    def test_prime_fan_in_tail_accounted_exactly_once(self):
        """Regression: a layer whose fan-in is prime (never a multiple of
        the macro word-line count) must shard with its tail counted once
        — total shard coverage equals the weight count and utilization
        stays <= 1.0."""
        p = LayerPlacement("fc", 37, 131, MacroGeometry(32, 32))
        shards = p.shards()
        assert len(shards) == p.n_macros
        assert sum(s.synapses_used for s in shards) == 37 * 131
        assert p.utilization <= 1.0
        assert all(s.utilization <= 1.0 for s in shards)
        # The tail column shard holds exactly the leftover columns.
        tail = shards[-1]
        assert tail.cols == 131 - 4 * 32
        assert tail.rows == 37 - 32

    def test_shards_tile_disjointly_in_scan_order(self):
        p = LayerPlacement("fc", 33, 50, MacroGeometry(8, 16))
        covered = np.zeros((33, 50), dtype=int)
        for index, s in enumerate(p.shards()):
            assert s.index == index       # row-major reduction order
            covered[s.row_start:s.row_stop, s.col_start:s.col_stop] += 1
        assert (covered == 1).all()

    @settings(max_examples=60, deadline=None)
    @given(st.integers(1, 300), st.integers(1, 1000),
           st.integers(1, 64), st.integers(1, 64))
    def test_shard_coverage_invariants(self, out_f, in_f, rows, cols):
        p = LayerPlacement("x", out_f, in_f, MacroGeometry(rows, cols))
        shards = p.shards()
        assert len(shards) == p.n_macros
        assert sum(s.synapses_used for s in shards) == p.synapses_used
        assert all(0 < s.utilization <= 1.0 for s in shards)
        assert sum(s.utilization for s in shards) \
            == pytest.approx(p.utilization * p.n_macros)

    def test_plan_classifier_prime_layer_regression(self):
        """plan_classifier on a prime-sized layer: the report-side numbers
        agree with the executable map."""
        plan = plan_classifier([(37, 131), (2, 37)], MacroGeometry(32, 32))
        assert 0 < plan.utilization <= 1.0
        for p in plan.placements:
            assert sum(s.synapses_used for s in p.shards()) \
                == p.synapses_used

    def test_macro_report_renders_tails_and_energy(self):
        plan = plan_classifier([(37, 131)], MacroGeometry(32, 32))
        text = plan.macro_report()
        assert "Tails" in text and "Scan pJ/macro" in text
        assert "fc1" in text


class TestMacroGeometry:
    def test_paper_macro_is_1k_synapses(self):
        assert MacroGeometry().synapses == 1024

    def test_invalid_dims_raise(self):
        with pytest.raises(ValueError, match="positive"):
            MacroGeometry(rows=0, cols=32)

    def test_frozen(self):
        macro = MacroGeometry()
        with pytest.raises(AttributeError):
            macro.rows = 64


class TestLayerPlacement:
    def test_exact_fit(self):
        p = LayerPlacement("fc", 32, 64, MacroGeometry(32, 32))
        assert p.tile_grid == (1, 2)
        assert p.n_macros == 2
        assert p.utilization == 1.0

    def test_partial_fit_rounds_up(self):
        p = LayerPlacement("fc", 33, 33, MacroGeometry(32, 32))
        assert p.tile_grid == (2, 2)
        assert p.n_macros == 4
        assert p.utilization == pytest.approx(33 * 33 / (4 * 1024))

    def test_tiny_layer_uses_one_macro(self):
        p = LayerPlacement("out", 2, 30, MacroGeometry(32, 32))
        assert p.n_macros == 1
        assert p.utilization == pytest.approx(60 / 1024)

    def test_empty_layer_raises(self):
        with pytest.raises(ValueError, match="empty"):
            LayerPlacement("bad", 0, 10, MacroGeometry())

    def test_row_render(self):
        row = LayerPlacement("fc1", 80, 2520, MacroGeometry()).row()
        assert row[0] == "fc1"
        assert row[1] == "80x2520"

    @settings(max_examples=60, deadline=None)
    @given(st.integers(1, 500), st.integers(1, 5000),
           st.integers(1, 128), st.integers(1, 128))
    def test_invariants(self, out_f, in_f, rows, cols):
        p = LayerPlacement("x", out_f, in_f, MacroGeometry(rows, cols))
        # Enough synapses are always provisioned, never a full extra grid
        # row/column beyond need.
        assert p.synapses_provisioned >= p.synapses_used
        assert 0 < p.utilization <= 1.0
        grid_r, grid_c = p.tile_grid
        assert (grid_r - 1) * rows < out_f <= grid_r * rows
        assert (grid_c - 1) * cols < in_f <= grid_c * cols


class TestChipFloorplan:
    def plan(self) -> ChipFloorplan:
        return plan_classifier([(80, 2520), (2, 80)])

    def test_paper_eeg_classifier_macro_count(self):
        plan = self.plan()
        assert plan.placements[0].n_macros == 3 * 79
        assert plan.placements[1].n_macros == 3
        assert plan.n_macros == 240

    def test_devices_are_double_the_synapses(self):
        plan = self.plan()
        assert plan.n_devices == 2 * sum(p.synapses_provisioned
                                         for p in plan.placements)

    def test_area_components_sum(self):
        area = self.plan().area_um2()
        assert area["total"] == pytest.approx(
            area["cells"] + area["sense"] + area["popcount"]
            + area["controller"])

    def test_programming_counts_only_used_weights(self):
        plan = self.plan()
        expected_writes = 2 * (80 * 2520 + 2 * 80)
        assert plan.programming_cost()["device_writes"] == expected_writes

    def test_bigger_macro_fewer_macros_lower_utilization(self):
        small = plan_classifier([(80, 2520)], MacroGeometry(32, 32))
        large = plan_classifier([(80, 2520)], MacroGeometry(128, 128))
        assert large.n_macros < small.n_macros
        assert large.utilization < small.utilization

    def test_report_renders(self):
        text = self.plan().report()
        assert "floorplan" in text
        assert "mm^2" in text
        assert "fc1" in text and "fc2" in text

    def test_empty_plan_raises(self):
        with pytest.raises(ValueError, match="at least one"):
            ChipFloorplan([])

    def test_name_count_mismatch_raises(self):
        with pytest.raises(ValueError, match="names"):
            plan_classifier([(2, 2)], names=["a", "b"])

    def test_plan_model_full_binary_places_convs_and_dense(self):
        from repro.models import BinarizationMode, ECGNet
        from repro.rram import plan_model

        model = ECGNet(mode=BinarizationMode.FULL_BINARY, n_samples=300,
                       base_filters=8, rng=np.random.default_rng(1))
        plan = plan_model(model)
        names = [p.name for p in plan.placements]
        assert "fc1" in names and "fc2" in names
        assert sum("conv" in n for n in names) == 5  # Table II inner convs

    def test_plan_model_binary_classifier_places_only_dense(self):
        from repro.models import BinarizationMode, ECGNet
        from repro.rram import plan_model

        model = ECGNet(mode=BinarizationMode.BINARY_CLASSIFIER,
                       n_samples=300, base_filters=8,
                       rng=np.random.default_rng(2))
        plan = plan_model(model)
        assert all("fc" in p.name for p in plan.placements)

    def test_plan_model_real_mode_raises(self):
        from repro.models import BinarizationMode, ECGNet
        from repro.rram import plan_model

        model = ECGNet(mode=BinarizationMode.REAL, n_samples=300,
                       base_filters=8, rng=np.random.default_rng(3))
        with pytest.raises(ValueError, match="no binary layers"):
            plan_model(model)

    def test_plan_model_conv_rows_match_kernel_volume(self):
        """Conv placements use (out_channels, fan_in) — one flattened
        kernel per word line, the weight-stationary mapping."""
        from repro.models import BinarizationMode, ECGNet
        from repro.rram import plan_model

        model = ECGNet(mode=BinarizationMode.FULL_BINARY, n_samples=300,
                       base_filters=8, rng=np.random.default_rng(4))
        plan = plan_model(model)
        by_name = {p.name: p for p in plan.placements}
        conv0 = model.conv_blocks[0]
        placement = by_name["conv_blocks.0"]
        assert placement.out_features == conv0.out_channels
        assert placement.in_features == (conv0.in_channels
                                         * conv0.kernel_size)

    def test_matches_deployed_accelerator_tiles(self):
        """The planner's macro count equals what the accelerator actually
        instantiates when deploying a model of the same geometry."""
        from repro.models import BinarizationMode, ECGNet
        from repro.rram import AcceleratorConfig, deploy_classifier

        model = ECGNet(mode=BinarizationMode.BINARY_CLASSIFIER,
                       n_samples=300, base_filters=8,
                       rng=np.random.default_rng(0))
        model.eval()
        hardware = deploy_classifier(model, AcceleratorConfig(ideal=True))
        shapes = [(model.fc1.out_features, model.fc1.in_features),
                  (model.fc2.out_features, model.fc2.in_features)]
        plan = plan_classifier(shapes)
        deployed_tiles = sum(c.n_tiles for c in hardware.controllers)
        assert plan.n_macros == deployed_tiles
