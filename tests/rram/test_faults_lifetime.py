"""Lifetime fault injection (repro.rram.faults + reliability.LifetimeConfig
wired through the MC engine).

The contracts under test:

* an *empty* FaultMap and an *inactive* LifetimeConfig are byte-identical
  to never passing them — the reliability layer costs nothing when off;
* stuck-at masks are split-stable: drawn from the map's own keyed site
  stream, identical for any call order, chunking or worker layout, and
  fully decoupled from the controller's program/read streams;
* retention aging is a program-time transform — trial-batched noisy
  reads of an aged store stay bit-identical to the serial per-trial loop;
* stuck semantics are physical: stuck-LRS senses 1, stuck-HRS / dead
  rows sense 0, on both the fast (effective-bits) and physical paths.
"""

import numpy as np
import pytest

from repro.rram import (AcceleratorConfig, FaultMap, LifetimeConfig,
                        MemoryController, RRAMArray, RetentionModel,
                        site_stream, trial_streams)


@pytest.fixture
def weights(rng):
    return rng.integers(0, 2, (23, 97)).astype(np.uint8)


@pytest.fixture
def x_bits(rng):
    return rng.integers(0, 2, (7, 97)).astype(np.uint8)


class TestSiteStream:
    def test_matches_ith_spawn_child(self):
        """site_stream(seed, i) is exactly the i-th spawn child of the
        root SeedSequence — keyed access into the same tree the batched
        engine walks."""
        root = np.random.SeedSequence(42)
        children = root.spawn(5)
        for i in range(5):
            keyed = site_stream(42, i)
            spawned = np.random.default_rng(children[i])
            assert np.array_equal(keyed.random(8), spawned.random(8))

    def test_call_order_invariant(self):
        a = site_stream(7, 1, 2).random(16)
        _ = site_stream(7, 9).random(100)   # unrelated draw in between
        b = site_stream(7, 1, 2).random(16)
        assert np.array_equal(a, b)

    def test_rejects_negative_keys(self):
        with pytest.raises(ValueError):
            site_stream(0, -1)


class TestFaultMap:
    def test_validation(self):
        with pytest.raises(ValueError):
            FaultMap(stuck_lrs=-0.1)
        with pytest.raises(ValueError):
            FaultMap(stuck_lrs=0.7, stuck_hrs=0.5)
        with pytest.raises(ValueError):
            FaultMap(dead_rows=1.5)

    def test_empty_and_cell_fault_flags(self):
        assert FaultMap().empty
        assert not FaultMap(dead_macros=(1,)).empty
        assert not FaultMap(dead_macros=(1,)).has_cell_faults
        assert FaultMap(stuck_lrs=0.01).has_cell_faults

    def test_dead_macros_deduped_sorted(self):
        assert FaultMap(dead_macros=(5, 1, 5)).dead_macros == (1, 5)

    def test_cell_masks_split_stable(self):
        fm = FaultMap(stuck_lrs=0.05, stuck_hrs=0.05, dead_rows=0.1,
                      seed=3)
        one_a, zero_a = fm.cell_masks((40, 60), key=(2,))
        one_b, zero_b = fm.cell_masks((40, 60), key=(2,))
        assert np.array_equal(one_a, one_b)
        assert np.array_equal(zero_a, zero_b)
        one_c, _ = fm.cell_masks((40, 60), key=(3,))
        assert not np.array_equal(one_a, one_c)
        assert not (one_a & zero_a).any()

    def test_dead_rows_stick_whole_row_to_zero(self):
        fm = FaultMap(dead_rows=0.5, seed=1)
        _, zero = fm.cell_masks((64, 16))
        dead = zero.all(axis=1)
        assert dead.any()
        # non-dead rows carry no zero-stuck cells (no other fault modes)
        assert not zero[~dead].any()

    def test_rebased_views(self):
        fm = FaultMap(dead_macros=(3, 7, 12))
        assert fm.dead_local(4, base=4) == (3,)           # global 7
        assert fm.rebased(6, base=6).dead_macros == (1,)  # global 7
        assert fm.rebased(4, base=0).dead_macros == (3,)


class TestArrayFaultsAndAging:
    def test_stuck_semantics_physical(self, rng):
        array = RRAMArray(8, 8, rng=rng)
        array.program(np.zeros((8, 8), dtype=np.uint8))
        stuck_one = np.zeros((8, 8), dtype=bool)
        stuck_zero = np.zeros((8, 8), dtype=bool)
        stuck_one[2, 3] = True
        array.inject_stuck(stuck_one, stuck_zero)
        read = array.read_all(rng=np.random.default_rng(0))
        assert read[2, 3] == 1
        array.program(np.ones((8, 8), dtype=np.uint8))
        stuck_zero[5, 5] = True
        array.inject_stuck(stuck_one, stuck_zero)
        read = array.read_all(rng=np.random.default_rng(0))
        assert read[5, 5] == 0
        assert read[2, 3] == 1
        assert array.n_stuck_cells == 2

    def test_stuck_survives_reprogramming(self, rng):
        array = RRAMArray(4, 4, rng=rng)
        stuck_one = np.zeros((4, 4), dtype=bool)
        stuck_one[0, 0] = True
        array.program(np.zeros((4, 4), dtype=np.uint8))
        array.inject_stuck(stuck_one, np.zeros((4, 4), dtype=bool))
        array.program(np.zeros((4, 4), dtype=np.uint8))
        read = array.read_all(rng=np.random.default_rng(0))
        assert read[0, 0] == 1

    def test_aging_accumulates_and_degrades_margin(self, rng):
        array = RRAMArray(16, 16, rng=rng)
        array.program(rng.integers(0, 2, (16, 16)).astype(np.uint8))
        margin_fresh = np.abs(array._sense_margin()).mean()
        retention = RetentionModel()
        array.age(1000.0, retention, np.random.default_rng(1))
        array.age(500.0, retention, np.random.default_rng(2))
        assert array.aged_hours == pytest.approx(1500.0)
        # HRS drifts toward LRS, closing the average sense window.
        assert np.abs(array._sense_margin()).mean() < margin_fresh


class TestLifetimeConfig:
    def test_years_constructor_and_bake(self):
        lt = LifetimeConfig.years(10, temp_c=125.0)
        assert lt.hours == pytest.approx(10 * 8760.0)
        assert lt.active
        # At the reference temperature the bake time is the wall time.
        assert lt.bake_hours() == pytest.approx(lt.hours)

    def test_arrhenius_acceleration_below_reference(self):
        cool = LifetimeConfig.years(10, temp_c=37.0)
        # 10 years at 37C stresses the devices far less than 10 years at
        # the 125C reference bake.
        assert cool.bake_hours() < 0.01 * cool.hours

    def test_inactive(self):
        assert not LifetimeConfig().active
        assert not LifetimeConfig.years(0).active


class TestControllerReliabilityLayer:
    def test_empty_map_inactive_lifetime_identity_fast(self, weights,
                                                       x_bits):
        config = AcceleratorConfig(ideal=True)
        plain = MemoryController(weights, config)
        wired = MemoryController(weights, config, fault_map=FaultMap(),
                                 lifetime=LifetimeConfig())
        assert wired.fast_path
        assert np.array_equal(plain.popcounts(x_bits),
                              wired.popcounts(x_bits))

    def test_empty_map_inactive_lifetime_identity_noisy(self, weights,
                                                        x_bits):
        config = AcceleratorConfig()   # realistic, noisy
        plain = MemoryController(weights, config,
                                 np.random.default_rng(0))
        wired = MemoryController(weights, config,
                                 np.random.default_rng(0),
                                 fault_map=FaultMap(),
                                 lifetime=LifetimeConfig())
        a = plain.popcounts_trials(x_bits, trial_streams(5, 3))
        b = wired.popcounts_trials(x_bits, trial_streams(5, 3))
        assert np.array_equal(a, b)

    def test_stuck_faults_perturb_and_are_key_stable(self, weights,
                                                     x_bits):
        config = AcceleratorConfig(ideal=True)
        fm = FaultMap(stuck_lrs=0.02, stuck_hrs=0.02, seed=9)
        plain = MemoryController(weights, config)
        faulty1 = MemoryController(weights, config, fault_map=fm,
                                   fault_key=(0,))
        faulty2 = MemoryController(weights, config, fault_map=fm,
                                   fault_key=(0,))
        other = MemoryController(weights, config, fault_map=fm,
                                 fault_key=(1,))
        assert not np.array_equal(plain.popcounts(x_bits),
                                  faulty1.popcounts(x_bits))
        assert np.array_equal(faulty1.popcounts(x_bits),
                              faulty2.popcounts(x_bits))
        assert not np.array_equal(faulty1.popcounts(x_bits),
                                  other.popcounts(x_bits))

    def test_fast_and_physical_paths_agree_on_faults(self, weights,
                                                     x_bits):
        """The fast path folds stuck overrides into effective bits; the
        physical path pins resistances. Noise-free they must agree."""
        config = AcceleratorConfig(ideal=True)
        fm = FaultMap(stuck_lrs=0.03, stuck_hrs=0.03, dead_rows=0.05,
                      seed=4)
        fast = MemoryController(weights, config, fault_map=fm,
                                fault_key=(0,))
        phys = MemoryController(weights, config, fault_map=fm,
                                fault_key=(0,), fast_path=False)
        assert fast.fast_path and not phys.fast_path
        assert np.array_equal(
            fast.popcounts(x_bits),
            phys.popcounts(x_bits, rng=np.random.default_rng(0)))

    def test_lifetime_disables_fast_path(self, weights):
        config = AcceleratorConfig(ideal=True)
        lt = LifetimeConfig.years(5, temp_c=125.0)
        mc = MemoryController(weights, config, lifetime=lt)
        assert not mc.fast_path
        with pytest.raises(ValueError):
            MemoryController(weights, config, lifetime=lt, fast_path=True)

    def test_aged_trials_batched_equals_serial(self, weights, x_bits):
        """Aging happens at program time from the root stream, so the
        per-trial read contract survives: batched == serial loop."""
        config = AcceleratorConfig()
        lt = LifetimeConfig.years(3, temp_c=125.0)
        fm = FaultMap(stuck_lrs=0.01, seed=2)
        make = lambda: MemoryController(
            weights, config, np.random.default_rng(11), lifetime=lt,
            fault_map=fm, fault_key=(0,))
        batched = make().popcounts_trials(x_bits, trial_streams(3, 4))
        serial = np.stack([make().popcounts(x_bits, rng=r)
                           for r in trial_streams(3, 4)])
        assert np.array_equal(batched, serial)

    def test_aging_degrades_agreement(self, weights, x_bits):
        config = AcceleratorConfig()
        fresh = MemoryController(weights, config,
                                 np.random.default_rng(0))
        aged = MemoryController(weights, config, np.random.default_rng(0),
                                lifetime=LifetimeConfig.years(
                                    30, temp_c=125.0))
        ideal = MemoryController(weights, AcceleratorConfig(ideal=True))
        truth = ideal.popcounts(x_bits)
        err_fresh = int((fresh.popcounts(
            x_bits, rng=np.random.default_rng(1)) != truth).sum())
        err_aged = int((aged.popcounts(
            x_bits, rng=np.random.default_rng(1)) != truth).sum())
        assert err_aged > err_fresh
