"""ECC-protected weight storage (repro.rram.ecc.EccMemoryController).

The executable form of the digital alternative the paper argues against:
weights stored as SECDED codewords on real simulated devices, fetched
through the decoder once per scan. Contracts under test:

* noise-free, fault-free stores are bit-identical to the bare
  MemoryController (the code is systematic — data bits round-trip);
* sparse stuck-at faults are fully corrected where bare storage shows
  count errors, and the correction meters record the work;
* the trial-stream contract holds on the noisy path (batched == serial);
* geometry/metering: redundancy, stored columns and device counts follow
  the (n, k) code.
"""

import numpy as np
import pytest

from repro.rram import (AcceleratorConfig, EccMemoryController, FaultMap,
                        HammingCode, LifetimeConfig, MemoryController,
                        trial_streams)


@pytest.fixture
def weights(rng):
    return rng.integers(0, 2, (16, 130)).astype(np.uint8)


@pytest.fixture
def x_bits(rng):
    return rng.integers(0, 2, (6, 130)).astype(np.uint8)


class TestGeometry:
    def test_stored_columns_and_redundancy(self, weights):
        ecc = EccMemoryController(weights, AcceleratorConfig(ideal=True))
        code = ecc.code
        assert (code.n, code.k) == (72, 64)
        words = -(-130 // 64)
        assert ecc.n_code_words == words
        assert ecc.stored_cols == words * 72
        assert ecc.redundancy == pytest.approx(words * 72 / 130)
        assert ecc.n_devices == 2 * 16 * ecc.stored_cols

    def test_rate_half_code(self, weights):
        ecc = EccMemoryController(weights, AcceleratorConfig(ideal=True),
                                  code=HammingCode.rate_half())
        assert ecc.code.redundancy == pytest.approx(2.0)


class TestFaultFreeIdentity:
    def test_fast_path_matches_bare_controller(self, weights, x_bits):
        config = AcceleratorConfig(ideal=True)
        bare = MemoryController(weights, config)
        ecc = EccMemoryController(weights, config)
        assert ecc.fast_path
        assert np.array_equal(ecc.popcounts(x_bits),
                              bare.popcounts(x_bits))
        assert ecc.ecc_words_corrected == 0

    def test_noisy_ideal_physical_matches_too(self, weights, x_bits):
        """fast_path=False with a noise-free config: real arrays, zero
        sigma — the decode must still be exact."""
        config = AcceleratorConfig(ideal=True)
        bare = MemoryController(weights, config)
        ecc = EccMemoryController(weights, config, fast_path=False)
        out = ecc.popcounts(x_bits, rng=np.random.default_rng(0))
        assert np.array_equal(out, bare.popcounts(x_bits))


class TestCorrection:
    def test_sparse_stuck_faults_fully_corrected(self, weights, x_bits):
        """Sparse defects (at most one per 72-bit word at this rate and
        seed): bare storage shows count errors, the SECDED store corrects
        every one."""
        config = AcceleratorConfig(ideal=True)
        fm = FaultMap(stuck_lrs=0.0015, stuck_hrs=0.0015, seed=0)
        truth = MemoryController(weights, config).popcounts(x_bits)
        bare = MemoryController(weights, config, fault_map=fm,
                                fault_key=(0,))
        ecc = EccMemoryController(weights, config, fault_map=fm,
                                  fault_key=(0,))
        assert ecc.n_stuck_cells > 0
        bare_errors = int((bare.popcounts(x_bits) != truth).sum())
        ecc_errors = int((ecc.popcounts(x_bits) != truth).sum())
        assert bare_errors > 0
        assert ecc_errors == 0
        assert ecc.ecc_words_corrected > 0

    def test_meters_accumulate(self, weights, x_bits):
        config = AcceleratorConfig()
        ecc = EccMemoryController(weights, config,
                                  rng=np.random.default_rng(1))
        before = ecc.ecc_words_decoded
        ecc.popcounts(x_bits, rng=np.random.default_rng(2))
        assert ecc.ecc_words_decoded == before + 16 * ecc.n_code_words
        assert ecc.ecc_bits_decoded == ecc.ecc_words_decoded * 72
        assert ecc.popcount_bit_ops > 0


class TestTrialContract:
    def test_noisy_batched_equals_serial(self, weights, x_bits):
        config = AcceleratorConfig()
        make = lambda: EccMemoryController(
            weights, config, np.random.default_rng(4),
            lifetime=LifetimeConfig.years(1, temp_c=125.0))
        batched = make().popcounts_trials(x_bits, trial_streams(2, 3))
        serial = np.stack([make().popcounts(x_bits, rng=r)
                           for r in trial_streams(2, 3)])
        assert np.array_equal(batched, serial)

    def test_fast_shared_input_broadcast(self, weights, x_bits):
        ecc = EccMemoryController(weights, AcceleratorConfig(ideal=True))
        out = ecc.popcounts_trials(x_bits, trial_streams(0, 3))
        assert out.shape == (3, 6, 16)
        assert np.array_equal(out[0], out[2])


class TestLifetimeInteraction:
    def test_lifetime_disables_fast_path(self, weights):
        lt = LifetimeConfig.years(5, temp_c=125.0)
        ecc = EccMemoryController(weights, AcceleratorConfig(ideal=True),
                                  lifetime=lt)
        assert not ecc.fast_path
        with pytest.raises(ValueError):
            EccMemoryController(weights, AcceleratorConfig(ideal=True),
                                lifetime=lt, fast_path=True)

    def test_ecc_beats_bare_storage_when_aged(self, weights, x_bits):
        """The acceptance claim in miniature: an aged realistic store
        makes fewer count errors behind SECDED than bare."""
        config = AcceleratorConfig()
        lt = LifetimeConfig.years(10, temp_c=125.0)
        truth = MemoryController(
            weights, AcceleratorConfig(ideal=True)).popcounts(x_bits)
        bare = MemoryController(weights, config,
                                np.random.default_rng(0), lifetime=lt)
        ecc = EccMemoryController(weights, config,
                                  np.random.default_rng(0), lifetime=lt)
        read = np.random.default_rng(1)
        bare_err = int((bare.popcounts(x_bits, rng=read) != truth).sum())
        read = np.random.default_rng(1)
        ecc_err = int((ecc.popcounts(x_bits, rng=read) != truth).sum())
        assert ecc_err < bare_err
