"""Fast-path thread reentrancy: the serving daemon's substrate contract.

The serve transport thread holds the compiled plan (health checks,
stats) while the executor thread dispatches scans; and the noise-free
fast path is documented as reentrant (``MemoryController`` docstring).
These tests pin that: two threads hammering ONE plan/controller must
produce bit-identical scores on every call AND exact op-meter totals
(the meters are the only state a fast-path read mutates — they take
``_meter_lock``).

The noisy path is out of scope by design: it consumes ``self.rng``, so
it is single-caller by contract (and unservable — ``PlanServer``
refuses it).
"""

import pathlib
import threading

import numpy as np
import pytest

FIXTURES = pathlib.Path(__file__).parents[1] / "fixtures" / "plans"


def _hammer(n_threads: int, n_calls: int, work):
    """Run ``work(thread_index, call_index)`` from ``n_threads`` threads
    with a start barrier; re-raise the first worker failure."""
    barrier = threading.Barrier(n_threads)
    errors = []

    def run(thread_index):
        try:
            barrier.wait()
            for call_index in range(n_calls):
                work(thread_index, call_index)
        except Exception as error:          # pragma: no cover - fail path
            errors.append(error)

    threads = [threading.Thread(target=run, args=(i,))
               for i in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if errors:
        raise errors[0]


@pytest.fixture(scope="module")
def packed_plan():
    """The eeg fixture plan on an ideal RRAM backend: fast-path
    controllers with live op meters (the packed backend has no
    controllers to meter)."""
    from repro.io import load_compiled, load_plan
    from repro.rram import AcceleratorConfig
    from repro.runtime import RRAMBackend

    artifact = load_plan(FIXTURES / "eeg_full_binary.npz")
    plan = load_compiled(artifact,
                         backend=RRAMBackend(AcceleratorConfig(ideal=True)))
    return artifact, plan


class TestPlanReentrancy:
    N_THREADS = 2
    N_CALLS = 25

    def test_concurrent_scores_bit_identical_and_meters_exact(
            self, packed_plan):
        artifact, plan = packed_plan
        rng = np.random.default_rng(7)
        batches = [rng.integers(0, 2, (4,) + artifact.input_shape)
                   .astype(np.uint8) for _ in range(self.N_THREADS)]
        expected = [plan.scores(batch) for batch in batches]

        controllers = [op.executor.controller for op in plan.layer_ops
                       if getattr(op.executor, "controller", None)
                       is not None]
        assert controllers, "fixture plan must have RRAM layers"
        assert all(c.fast_path for c in controllers)

        def meter_total():
            return sum(c.popcount_bit_ops + c.sense_ops
                       for c in controllers)

        before = meter_total()
        one_call = None

        # Calibrate the per-call meter delta single-threaded.
        plan.scores(batches[0])
        one_call = meter_total() - before
        assert one_call > 0

        start = meter_total()

        def work(thread_index, call_index):
            scores = plan.scores(batches[thread_index])
            assert np.array_equal(scores, expected[thread_index]), (
                f"thread {thread_index} call {call_index}: concurrent "
                "fast-path scores differ from solo evaluation")

        _hammer(self.N_THREADS, self.N_CALLS, work)

        # Meter updates are read-modify-write under _meter_lock: no
        # increment may be lost to the interleaving.
        assert meter_total() - start \
            == self.N_THREADS * self.N_CALLS * one_call

    def test_concurrent_predict_matches_solo(self, packed_plan):
        artifact, plan = packed_plan
        rng = np.random.default_rng(11)
        batch = rng.integers(0, 2, (8,) + artifact.input_shape) \
            .astype(np.uint8)
        expected = plan.predict(batch)

        def work(thread_index, call_index):
            assert np.array_equal(plan.predict(batch), expected)

        _hammer(4, 10, work)


class TestGradModeIsThreadLocal:
    def test_concurrent_no_grad_cannot_disable_training_thread(self):
        # Compiled fronts run under no_grad(); with a process-global
        # flag, two threads interleaving enter/exit can restore the
        # wrong previous value and permanently kill grad recording for
        # a training loop elsewhere.  The mode must be per-thread.
        from repro.tensor import Tensor, is_grad_enabled, no_grad

        inference_running = threading.Event()
        release_inference = threading.Event()

        def inference():
            with no_grad():
                inference_running.set()
                release_inference.wait(10.0)

        worker = threading.Thread(target=inference)
        worker.start()
        try:
            assert inference_running.wait(10.0)
            # Another thread is inside no_grad() RIGHT NOW; this
            # (training) thread must be unaffected.
            assert is_grad_enabled()
            loss = (Tensor(np.ones(3), requires_grad=True) * 2.0).sum()
            assert loss.requires_grad
            loss.backward()
        finally:
            release_inference.set()
            worker.join()
        assert is_grad_enabled()

    def test_no_grad_nests_per_thread(self):
        from repro.tensor import is_grad_enabled, no_grad

        with no_grad():
            assert not is_grad_enabled()
            with no_grad():
                assert not is_grad_enabled()
            assert not is_grad_enabled()
        assert is_grad_enabled()


class TestMeterLockPlumbing:
    def test_controller_survives_pickling_without_its_lock(self):
        # __getstate__/__setstate__ must drop and rebuild _meter_lock —
        # the MC engine pickles controllers into worker processes.
        import pickle

        from repro.models import golden_classifier
        from repro.rram import AcceleratorConfig, fold_classifier
        from repro.rram.accelerator import MemoryController

        model, _ = golden_classifier("eeg")
        hidden, _ = fold_classifier(model)
        controller = MemoryController(hidden[0].weight_bits,
                                      AcceleratorConfig(ideal=True))
        clone = pickle.loads(pickle.dumps(controller))
        assert isinstance(clone._meter_lock, type(threading.Lock()))
        x = np.zeros((1, controller.in_features), dtype=np.uint8)
        assert np.array_equal(clone.popcounts(x), controller.popcounts(x))
