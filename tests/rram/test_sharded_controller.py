"""Sharded multi-macro execution (repro.rram.accelerator.ShardedController
+ repro.rram.mc.shard_streams).

The contracts under test: the shard-and-reduce dataflow is bit-identical
to the monolithic controller on noise-free configurations (partial
popcounts decompose exactly over fan-in slices), and noisy reads follow
the per-(shard, trial) stream contract — trial-batched execution equals a
serial per-trial loop for any trial chunking, with every chip drawing
independent sense noise.
"""

import numpy as np
import pytest

from repro.rram import (AcceleratorConfig, DeviceParameters, LayerPlacement,
                        MacroGeometry, MemoryController, SenseParameters,
                        ShardedController, shard_streams, trial_streams)


def _noise_free_config() -> AcceleratorConfig:
    device = DeviceParameters(sigma_lrs0=0.0, sigma_hrs0=0.0,
                              broadening=0.0, hrs_drift=0.0,
                              device_mismatch=1.0)
    return AcceleratorConfig(device=device,
                             sense=SenseParameters(offset_sigma=0.0))


@pytest.fixture
def weights(rng):
    # 37 x 131: both dimensions prime, so every geometry below produces
    # non-divisible tail shards in at least one axis.
    return rng.integers(0, 2, (37, 131)).astype(np.uint8)


@pytest.fixture
def x_bits(rng):
    return rng.integers(0, 2, (9, 131)).astype(np.uint8)


class TestNoiseFreeEquivalence:
    @pytest.mark.parametrize("geometry", [(32, 32), (7, 13), (8, 24),
                                          (64, 256), (37, 131)])
    def test_matches_monolithic_bit_for_bit(self, weights, x_bits,
                                            geometry):
        config = AcceleratorConfig(ideal=True)
        mono = MemoryController(weights, config, np.random.default_rng(1))
        sharded = ShardedController(weights, config=config,
                                    rng=np.random.default_rng(2),
                                    macro=MacroGeometry(*geometry))
        assert sharded.fast_path
        assert np.array_equal(sharded.popcounts(x_bits),
                              mono.popcounts(x_bits))

    def test_noise_free_but_physical_path_matches_too(self, weights,
                                                      x_bits):
        """fast_path=False keeps real arrays resident; at zero sigma the
        reduction must still be exact."""
        config = _noise_free_config()
        mono = MemoryController(weights, config, np.random.default_rng(1),
                                fast_path=False)
        sharded = ShardedController(weights, config=config,
                                    rng=np.random.default_rng(2),
                                    fast_path=False,
                                    macro=MacroGeometry(8, 16))
        assert not sharded.fast_path
        assert np.array_equal(sharded.popcounts(x_bits),
                              mono.popcounts(x_bits))

    def test_executes_the_placement_shard_map(self, weights):
        placement = LayerPlacement("fc", 37, 131, MacroGeometry(8, 16))
        sharded = ShardedController(weights, placement,
                                    AcceleratorConfig(ideal=True))
        assert sharded.n_macros == placement.n_macros
        assert sharded.placement is placement
        for spec, shard in zip(sharded.shard_map, sharded.shards):
            assert (shard.out_features, shard.in_features) == \
                (spec.rows, spec.cols)
            # Every chip is a full fixed-geometry macro, tails included.
            assert shard.config.tile_rows == 8
            assert shard.config.tile_cols == 16
            assert shard.n_tiles == 1

    def test_devices_count_full_macros(self, weights):
        sharded = ShardedController(weights,
                                    config=AcceleratorConfig(ideal=True),
                                    macro=MacroGeometry(8, 16))
        assert sharded.n_devices == sharded.n_macros * 8 * 16 * 2

    def test_placement_shape_mismatch_raises(self, weights):
        placement = LayerPlacement("fc", 10, 131, MacroGeometry(8, 16))
        with pytest.raises(ValueError, match="placement"):
            ShardedController(weights, placement)

    def test_bad_input_shape_raises(self, weights):
        sharded = ShardedController(weights,
                                    config=AcceleratorConfig(ideal=True))
        with pytest.raises(ValueError, match="input shape"):
            sharded.popcounts(np.zeros((4, 7), dtype=np.uint8))


class TestNoisyTrials:
    @pytest.fixture
    def sharded(self, weights):
        config = AcceleratorConfig(
            device=DeviceParameters(sigma_lrs0=0.0, sigma_hrs0=0.0,
                                    broadening=0.0, hrs_drift=0.0,
                                    device_mismatch=1.0),
            sense=SenseParameters(offset_sigma=0.6))
        return ShardedController(weights, config=config,
                                 rng=np.random.default_rng(3),
                                 fast_path=False,
                                 macro=MacroGeometry(8, 16))

    def test_batched_equals_serial_per_trial_loop(self, sharded, x_bits):
        batched = sharded.popcounts_trials(x_bits, trial_streams(7, 5))
        serial = np.stack([sharded.popcounts(x_bits, rng=stream)
                           for stream in trial_streams(7, 5)])
        assert np.array_equal(batched, serial)

    @pytest.mark.parametrize("trial_chunk", [1, 2, 3, None])
    def test_trial_chunk_never_changes_results(self, sharded, x_bits,
                                               trial_chunk):
        expected = sharded.popcounts_trials(x_bits, trial_streams(7, 5))
        chunked = sharded.popcounts_trials(x_bits, trial_streams(7, 5),
                                           trial_chunk=trial_chunk)
        assert np.array_equal(expected, chunked)

    def test_per_trial_activations_accepted(self, sharded, rng):
        stacked = rng.integers(0, 2, (4, 9, 131)).astype(np.uint8)
        batched = sharded.popcounts_trials(stacked, trial_streams(9, 4))
        serial = np.stack([sharded.popcounts(stacked[t], rng=stream)
                           for t, stream in enumerate(trial_streams(9, 4))])
        assert np.array_equal(batched, serial)

    def test_shards_draw_independent_noise(self, rng):
        """Two shards holding identical weight slices must not read
        identical noise — chips have their own sense amplifiers."""
        tile = rng.integers(0, 2, (8, 16)).astype(np.uint8)
        weights = np.concatenate([tile, tile], axis=1)   # two equal shards
        config = AcceleratorConfig(
            device=DeviceParameters(sigma_lrs0=0.0, sigma_hrs0=0.0,
                                    broadening=0.0, hrs_drift=0.0,
                                    device_mismatch=1.0),
            sense=SenseParameters(offset_sigma=2.5))
        sharded = ShardedController(weights, config=config,
                                    rng=np.random.default_rng(4),
                                    fast_path=False,
                                    macro=MacroGeometry(8, 16))
        assert sharded.n_macros == 2
        x = rng.integers(0, 2, (64, 32)).astype(np.uint8)
        reads = [shard.popcounts(x[:, s.col_start:s.col_stop],
                                 rng=np.random.default_rng(11).spawn(2)[i])
                 for i, (s, shard) in enumerate(zip(sharded.shard_map,
                                                    sharded.shards))]
        assert not np.array_equal(reads[0], reads[1])

    def test_sense_override_reaches_every_shard(self, sharded, x_bits):
        zero = sharded.popcounts_trials(
            x_bits, trial_streams(7, 2),
            sense=SenseParameters(offset_sigma=0.0))
        assert np.array_equal(zero[0], zero[1])   # deterministic at 0

    def test_fast_path_refuses_noisy_sense_override(self, weights, x_bits):
        sharded = ShardedController(weights,
                                    config=AcceleratorConfig(ideal=True),
                                    macro=MacroGeometry(8, 16))
        with pytest.raises(ValueError, match="fast_path"):
            sharded.popcounts(x_bits,
                              sense=SenseParameters(offset_sigma=0.5))

    def test_fast_path_trials_coincide(self, weights, x_bits):
        sharded = ShardedController(weights,
                                    config=AcceleratorConfig(ideal=True),
                                    macro=MacroGeometry(8, 16))
        counts = sharded.popcounts_trials(x_bits, trial_streams(7, 3))
        assert np.array_equal(counts[0], counts[1])
        assert np.array_equal(counts[0], sharded.popcounts(x_bits))

    def test_fast_path_trials_meter_every_scan(self, weights, x_bits):
        """Regression: a trial-batched fast-path scan must account T
        scans on the ops meters, matching a serial per-trial loop."""
        batched = ShardedController(weights,
                                    config=AcceleratorConfig(ideal=True),
                                    macro=MacroGeometry(8, 16))
        batched.popcounts_trials(x_bits, trial_streams(7, 4))
        serial = ShardedController(weights,
                                   config=AcceleratorConfig(ideal=True),
                                   macro=MacroGeometry(8, 16))
        for _ in range(4):
            serial.popcounts(x_bits)
        assert batched.sense_ops == serial.sense_ops
        assert batched.popcount_bit_ops == serial.popcount_bit_ops

    def test_wear_and_reprogram_touch_every_chip(self, sharded):
        sharded.wear(1000)
        for shard in sharded.shards:
            for row in shard.tiles:
                for tile in row:
                    assert tile.cycles.min() >= 1000
        sharded.reprogram()   # must not raise; margins invalidated
        assert all(t._margins is None for t in sharded.shards)


class TestStackedPlan:
    """The program-time stacked-shard fast plan: one batched kernel,
    bit-identical to the per-shard reference loop and the monolithic
    controller, with meters accounted arithmetically."""

    def _pair(self, weights, geometry):
        """(stacked, per-shard reference) controllers on one geometry."""
        config = AcceleratorConfig(ideal=True)
        stacked = ShardedController(weights, config=config,
                                    macro=MacroGeometry(*geometry))
        reference = ShardedController(weights, config=config,
                                      macro=MacroGeometry(*geometry),
                                      stacked=False)
        return stacked, reference

    @pytest.mark.parametrize("geometry", [(32, 32), (7, 13), (8, 24),
                                          (64, 256), (37, 131)])
    def test_stacked_equals_reference_and_monolithic(self, weights, x_bits,
                                                     geometry):
        stacked, reference = self._pair(weights, geometry)
        assert stacked.stacked and not reference.stacked
        mono = MemoryController(weights, AcceleratorConfig(ideal=True))
        counts = stacked.popcounts(x_bits)
        assert np.array_equal(counts, reference.popcounts(x_bits))
        assert np.array_equal(counts, mono.popcounts(x_bits))

    def test_one_shard_placement_uses_the_plan(self, weights, x_bits):
        stacked, reference = self._pair(weights, (64, 256))
        assert stacked.n_shards == 1 and stacked.stacked
        assert np.array_equal(stacked.popcounts(x_bits),
                              reference.popcounts(x_bits))

    def test_empty_batch(self, weights):
        stacked, reference = self._pair(weights, (8, 16))
        empty = np.zeros((0, 131), dtype=np.uint8)
        assert stacked.popcounts(empty).shape == (0, 37)
        assert reference.popcounts(empty).shape == (0, 37)

    @pytest.mark.parametrize("trial_chunk", [1, 2, 3, None])
    def test_trials_shared_activations(self, weights, x_bits, trial_chunk):
        stacked, reference = self._pair(weights, (7, 13))
        a = stacked.popcounts_trials(x_bits, trial_streams(7, 5),
                                     trial_chunk=trial_chunk)
        b = reference.popcounts_trials(x_bits, trial_streams(7, 5),
                                       trial_chunk=trial_chunk)
        assert np.array_equal(a, b)
        assert np.array_equal(a[0], stacked.popcounts(x_bits))

    @pytest.mark.parametrize("trial_chunk", [1, 2, 3, None])
    def test_trials_per_trial_activations(self, weights, rng, trial_chunk):
        stacked, reference = self._pair(weights, (7, 13))
        x = rng.integers(0, 2, (5, 9, 131)).astype(np.uint8)
        a = stacked.popcounts_trials(x, trial_streams(7, 5),
                                     trial_chunk=trial_chunk)
        b = reference.popcounts_trials(x, trial_streams(7, 5),
                                       trial_chunk=trial_chunk)
        assert np.array_equal(a, b)
        serial = np.stack([stacked.popcounts(x[t]) for t in range(5)])
        assert np.array_equal(a, serial)

    def test_meters_match_reference_exactly(self, weights, x_bits, rng):
        stacked, reference = self._pair(weights, (8, 16))
        for ctrl in (stacked, reference):
            ctrl.popcounts(x_bits)
            ctrl.popcounts_trials(x_bits, trial_streams(7, 4))
            ctrl.popcounts_trials(
                rng.integers(0, 2, (3, 9, 131)).astype(np.uint8),
                trial_streams(7, 3), trial_chunk=2)
        assert stacked.sense_ops == reference.sense_ops
        assert stacked.popcount_bit_ops == reference.popcount_bit_ops

    def test_stacked_true_requires_fast_path(self, weights):
        config = AcceleratorConfig(
            device=DeviceParameters(sigma_lrs0=0.0, sigma_hrs0=0.0,
                                    broadening=0.0, hrs_drift=0.0,
                                    device_mismatch=1.0),
            sense=SenseParameters(offset_sigma=0.5))
        with pytest.raises(ValueError, match="stacked=True"):
            ShardedController(weights, config=config, fast_path=False,
                              stacked=True)
        # auto quietly falls back to the per-shard noisy loop.
        noisy = ShardedController(weights, config=config, fast_path=False)
        assert not noisy.stacked and noisy.plan is None
        assert noisy.fast_path_kind == "noisy"

    def test_invalid_stacked_value_raises(self, weights):
        with pytest.raises(ValueError, match="stacked"):
            ShardedController(weights, stacked="yes")

    def test_repr_and_kind_report_the_plan(self, weights):
        stacked, reference = self._pair(weights, (8, 16))
        assert "stacked=True" in repr(stacked)
        assert "stacked=False" in repr(reference)
        assert stacked.fast_path_kind == "stacked"
        assert reference.fast_path_kind == "per-shard"

    def test_profile_populated_by_stacked_scan(self, weights, x_bits):
        stacked, reference = self._pair(weights, (8, 16))
        assert stacked.last_profile is None
        stacked.popcounts(x_bits)
        assert set(stacked.last_profile) == \
            {"pack_ms", "kernel_ms", "reduce_ms"}
        assert all(v >= 0.0 for v in stacked.last_profile.values())
        reference.popcounts(x_bits)
        assert reference.last_profile is None

    def test_fast_path_refuses_noisy_sense_override(self, weights, x_bits):
        stacked, _ = self._pair(weights, (8, 16))
        with pytest.raises(ValueError, match="fast_path"):
            stacked.popcounts(x_bits,
                              sense=SenseParameters(offset_sigma=0.4))
        with pytest.raises(ValueError, match="fast_path"):
            stacked.popcounts_trials(x_bits, trial_streams(7, 2),
                                     sense=SenseParameters(offset_sigma=0.4))


class TestShardStreams:
    def test_shape_and_independence(self):
        streams = shard_streams(trial_streams(0, 3), 4)
        assert len(streams) == 4 and len(streams[0]) == 3
        draws = {float(streams[s][t].normal())
                 for s in range(4) for t in range(3)}
        assert len(draws) == 12   # all (shard, trial) streams distinct

    def test_matches_serial_spawn(self):
        batched = shard_streams(trial_streams(5, 2), 3)
        for t, stream in enumerate(trial_streams(5, 2)):
            children = stream.spawn(3)
            for s in range(3):
                assert batched[s][t].normal() == children[s].normal()

    def test_invalid_shard_count_raises(self):
        with pytest.raises(ValueError, match="n_shards"):
            shard_streams(trial_streams(0, 2), 0)
