"""Tests for the analog-coded crossbar alternative (repro.rram.analog)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.linear import Linear
from repro.rram import (AnalogConfig, AnalogCrossbar, AnalogLinear,
                        PeripheryModel)


def ideal_config(**overrides) -> AnalogConfig:
    """No noise, 16-bit converters — the near-ideal electrical corner."""
    base = dict(programming_sigma=0.0, read_noise_sigma=0.0,
                dac_bits=16, adc_bits=16)
    base.update(overrides)
    return AnalogConfig(**base)


class TestAnalogConfig:
    def test_default_validates(self):
        AnalogConfig().validate()

    def test_inverted_window_raises(self):
        with pytest.raises(ValueError, match="g_off"):
            AnalogConfig(g_on_us=10.0, g_off_us=200.0).validate()

    def test_negative_noise_raises(self):
        with pytest.raises(ValueError, match="sigma"):
            AnalogConfig(programming_sigma=-0.1).validate()

    def test_bad_bits_raise(self):
        with pytest.raises(ValueError, match="adc_bits"):
            AnalogConfig(adc_bits=0).validate()
        with pytest.raises(ValueError, match="dac_bits"):
            AnalogConfig(dac_bits=20).validate()

    def test_bad_headroom_raises(self):
        with pytest.raises(ValueError, match="headroom"):
            AnalogConfig(adc_headroom=0.0).validate()


class TestAnalogCrossbar:
    def test_near_ideal_corner_is_accurate(self):
        rng = np.random.default_rng(0)
        w = rng.normal(size=(8, 16))
        xbar = AnalogCrossbar(w, ideal_config(), rng)
        x = rng.normal(size=(10, 16))
        assert xbar.relative_error(w, x) < 1e-3

    def test_differential_pairs_cover_signed_weights(self):
        w = np.array([[1.0, -1.0, 0.0]])
        xbar = AnalogCrossbar(w, ideal_config())
        # positive weight lives on g_pos, negative on g_neg.
        assert xbar.g_pos[0, 0] > xbar.g_neg[0, 0]
        assert xbar.g_pos[0, 1] < xbar.g_neg[0, 1]
        assert xbar.g_pos[0, 2] == pytest.approx(xbar.g_neg[0, 2])

    def test_two_devices_per_weight(self):
        w = np.zeros((4, 6))
        xbar = AnalogCrossbar(w, ideal_config())
        assert xbar.g_pos.shape == w.shape and xbar.g_neg.shape == w.shape

    def test_error_decreases_with_adc_bits(self):
        rng_w = np.random.default_rng(1)
        w = rng_w.normal(size=(16, 64))
        x = rng_w.normal(size=(32, 64))
        errors = []
        for bits in (3, 5, 8, 12):
            xbar = AnalogCrossbar(
                w, ideal_config(adc_bits=bits), np.random.default_rng(2))
            errors.append(xbar.relative_error(w, x))
        assert errors == sorted(errors, reverse=True)

    def test_error_grows_with_fanin_at_fixed_adc(self):
        """The §II-A architectural point: wider columns need more ADC
        resolution, because full-scale tracks worst-case current."""
        rng = np.random.default_rng(3)
        errs = []
        for n_in in (16, 256):
            w = rng.normal(size=(8, n_in))
            x = rng.normal(size=(32, n_in))
            xbar = AnalogCrossbar(w, ideal_config(adc_bits=6),
                                  np.random.default_rng(4))
            errs.append(xbar.relative_error(w, x))
        assert errs[1] > errs[0]

    def test_programming_noise_adds_error(self):
        rng = np.random.default_rng(5)
        w = rng.normal(size=(8, 32))
        x = rng.normal(size=(16, 32))
        clean = AnalogCrossbar(w, ideal_config(),
                               np.random.default_rng(6)).relative_error(w, x)
        noisy = AnalogCrossbar(w, ideal_config(programming_sigma=0.2),
                               np.random.default_rng(6)).relative_error(w, x)
        assert noisy > clean

    def test_read_noise_varies_between_reads(self):
        rng = np.random.default_rng(7)
        w = rng.normal(size=(4, 8))
        xbar = AnalogCrossbar(w, ideal_config(read_noise_sigma=0.05),
                              np.random.default_rng(8))
        x = rng.normal(size=8)
        first = xbar.matvec(x)
        second = xbar.matvec(x)
        assert not np.array_equal(first, second)

    def test_deterministic_given_seed(self):
        rng = np.random.default_rng(9)
        w = rng.normal(size=(4, 8))
        x = rng.normal(size=(3, 8))
        cfg = AnalogConfig(programming_sigma=0.1, read_noise_sigma=0.02)
        a = AnalogCrossbar(w, cfg, np.random.default_rng(1)).matvec(x)
        b = AnalogCrossbar(w, cfg, np.random.default_rng(1)).matvec(x)
        assert np.array_equal(a, b)

    def test_1d_input_round_trip(self):
        w = np.eye(4)
        xbar = AnalogCrossbar(w, ideal_config())
        x = np.array([1.0, -0.5, 0.25, 0.0])
        out = xbar.matvec(x)
        assert out.shape == (4,)
        assert np.allclose(out, x, atol=1e-3)

    def test_width_mismatch_raises(self):
        xbar = AnalogCrossbar(np.ones((2, 3)), ideal_config())
        with pytest.raises(ValueError, match="width"):
            xbar.matvec(np.ones((1, 4)))

    def test_non_2d_weights_raise(self):
        with pytest.raises(ValueError, match="2-D"):
            AnalogCrossbar(np.ones(5), ideal_config())

    def test_all_zero_weights_safe(self):
        xbar = AnalogCrossbar(np.zeros((3, 4)), ideal_config())
        out = xbar.matvec(np.ones((2, 4)))
        assert np.allclose(out, 0.0, atol=1e-6)

    def test_all_zero_input_safe(self):
        rng = np.random.default_rng(10)
        xbar = AnalogCrossbar(rng.normal(size=(3, 4)), ideal_config())
        assert np.allclose(xbar.matvec(np.zeros((2, 4))), 0.0, atol=1e-9)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 10_000))
    def test_near_ideal_error_bound_property(self, seed):
        rng = np.random.default_rng(seed)
        w = rng.normal(size=(4, 12))
        x = rng.normal(size=(6, 12))
        xbar = AnalogCrossbar(w, ideal_config(), np.random.default_rng(seed))
        assert xbar.relative_error(w, x) < 5e-3


class TestAnalogLinear:
    def test_matches_layer_with_bias(self):
        rng = np.random.default_rng(11)
        layer = Linear(10, 4, rng=rng)
        layer.bias.data = rng.normal(size=4)
        deployed = AnalogLinear(layer, ideal_config(),
                                np.random.default_rng(12))
        x = rng.normal(size=(5, 10))
        from repro.tensor import Tensor
        ref = layer(Tensor(x)).data
        assert np.allclose(deployed.forward(x), ref, atol=5e-3)

    def test_bias_free_layer(self):
        rng = np.random.default_rng(13)
        layer = Linear(6, 2, bias=False, rng=rng)
        deployed = AnalogLinear(layer, ideal_config(),
                                np.random.default_rng(14))
        assert deployed.bias is None


class TestPeripheryModel:
    def test_energy_doubles_per_bit(self):
        model = PeripheryModel()
        assert model.adc_energy_pj(9) == pytest.approx(
            2 * model.adc_energy_pj(8))
        assert model.dac_energy_pj(7) == pytest.approx(
            2 * model.dac_energy_pj(6))

    def test_area_doubles_per_bit(self):
        model = PeripheryModel()
        assert model.adc_area_um2(9) == pytest.approx(
            2 * model.adc_area_um2(8))

    def test_matvec_energy_counts_conversions(self):
        model = PeripheryModel()
        energy = model.matvec_energy_pj(rows=128, cols=64, dac_bits=4,
                                        adc_bits=8)
        expected = 128 * model.dac_energy_pj(4) + 64 * model.adc_energy_pj(8)
        assert energy == pytest.approx(expected)

    def test_adc_sharing_reduces_area_not_energy(self):
        model = PeripheryModel()
        dense = model.matvec_area_um2(128, 64, 4, 8, adcs_shared=1)
        shared = model.matvec_area_um2(128, 64, 4, 8, adcs_shared=8)
        assert shared < dense
        e_dense = model.matvec_energy_pj(128, 64, 4, 8, adcs_shared=1)
        e_shared = model.matvec_energy_pj(128, 64, 4, 8, adcs_shared=8)
        assert e_dense == pytest.approx(e_shared)

    def test_adc_overhead_dwarfs_pcsa_at_8_bits(self):
        """The paper's quantitative point: an 8-bit ADC periphery costs
        orders of magnitude more than a 1-bit PCSA read."""
        from repro.rram import EnergyModel
        periphery = PeripheryModel()
        pcsa_fj = EnergyModel().pcsa_sense_fj
        adc_fj = periphery.adc_energy_pj(8) * 1000.0
        assert adc_fj > 30 * pcsa_fj

    def test_invalid_dims_raise(self):
        model = PeripheryModel()
        with pytest.raises(ValueError, match="positive"):
            model.matvec_energy_pj(0, 4, 4, 8)
        with pytest.raises(ValueError, match="adcs_shared"):
            model.matvec_area_um2(4, 4, 4, 8, adcs_shared=0)
