"""In-memory binary convolution deployment (weight-stationary mapping)."""

import numpy as np
import pytest

from repro import nn
from repro.rram import (AcceleratorConfig, FoldedBinaryConv1d,
                        InMemoryConv1dLayer, fold_conv1d_batchnorm_sign,
                        max_pool_bits_1d)
from repro.nn.binary import from_bits, to_bits
from repro.tensor import Tensor


def _trained_like_bn(rng, channels):
    bn = nn.BatchNorm1d(channels)
    bn.gamma.data = rng.uniform(0.5, 1.5, channels)
    bn.beta.data = rng.standard_normal(channels)
    bn.set_buffer("running_mean", rng.standard_normal(channels))
    bn.set_buffer("running_var", rng.uniform(0.5, 2.0, channels))
    bn.eval()
    return bn


class TestFoldedBinaryConv1d:
    def test_fold_matches_software_stack(self, rng):
        conv = nn.BinaryConv1d(4, 6, 5, rng=rng)
        bn = _trained_like_bn(rng, 6)
        folded = fold_conv1d_batchnorm_sign(conv, bn)

        x_pm1 = np.where(rng.random((3, 4, 20)) < 0.5, 1.0, -1.0)
        ref = bn(conv(Tensor(x_pm1))).sign_ste().data
        out = from_bits(folded.forward_bits(to_bits(x_pm1)))
        assert np.array_equal(out, ref)

    def test_strided_fold(self, rng):
        conv = nn.BinaryConv1d(2, 3, 4, stride=3, rng=rng)
        bn = _trained_like_bn(rng, 3)
        folded = fold_conv1d_batchnorm_sign(conv, bn)
        x_pm1 = np.where(rng.random((2, 2, 17)) < 0.5, 1.0, -1.0)
        ref = bn(conv(Tensor(x_pm1))).sign_ste().data
        out = from_bits(folded.forward_bits(to_bits(x_pm1)))
        assert np.array_equal(out, ref)
        assert folded.output_length(17) == ref.shape[2]

    def test_padding_rejected(self, rng):
        conv = nn.BinaryConv1d(2, 3, 3, padding=1, rng=rng)
        bn = _trained_like_bn(rng, 3)
        with pytest.raises(ValueError):
            fold_conv1d_batchnorm_sign(conv, bn)

    def test_bias_rejected(self, rng):
        conv = nn.Conv1d(2, 3, 3, bias=True, rng=rng)
        bn = _trained_like_bn(rng, 3)
        with pytest.raises(ValueError):
            fold_conv1d_batchnorm_sign(conv, bn)

    def test_input_shape_validation(self, rng):
        conv = nn.BinaryConv1d(2, 3, 3, rng=rng)
        folded = fold_conv1d_batchnorm_sign(conv, _trained_like_bn(rng, 3))
        with pytest.raises(ValueError):
            folded.forward_bits(np.zeros((2, 5, 10), np.uint8))


class TestInMemoryConv1d:
    def test_ideal_hardware_matches_folded(self, rng):
        conv = nn.BinaryConv1d(3, 5, 4, rng=rng)
        bn = _trained_like_bn(rng, 5)
        folded = fold_conv1d_batchnorm_sign(conv, bn)
        hw = InMemoryConv1dLayer(folded, AcceleratorConfig(
            tile_rows=4, tile_cols=8, ideal=True), rng)
        bits = rng.integers(0, 2, (2, 3, 15)).astype(np.uint8)
        assert np.array_equal(hw.forward_bits(bits),
                              folded.forward_bits(bits))

    def test_realistic_hardware_high_agreement(self, rng):
        conv = nn.BinaryConv1d(4, 8, 5, rng=rng)
        bn = _trained_like_bn(rng, 8)
        folded = fold_conv1d_batchnorm_sign(conv, bn)
        hw = InMemoryConv1dLayer(folded, AcceleratorConfig(), rng)
        bits = rng.integers(0, 2, (4, 4, 30)).astype(np.uint8)
        agreement = (hw.forward_bits(bits)
                     == folded.forward_bits(bits)).mean()
        assert agreement > 0.95


class TestBitPooling:
    def test_max_pool_bits_is_or(self):
        bits = np.array([[[1, 0, 0, 0, 1, 1]]], dtype=np.uint8)
        out = max_pool_bits_1d(bits, 2)
        assert np.array_equal(out, [[[1, 0, 1]]])

    def test_matches_float_maxpool_on_pm1(self, rng):
        bits = rng.integers(0, 2, (2, 3, 12)).astype(np.uint8)
        pool = nn.MaxPool1d(2)
        ref = pool(Tensor(from_bits(bits))).data
        out = from_bits(max_pool_bits_1d(bits, 2))
        assert np.array_equal(out, ref)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            max_pool_bits_1d(np.zeros((3, 4), np.uint8), 2)


class TestFullBinaryNetworkOnHardware:
    def test_ecg_conv_stack_deploys(self, rng):
        """Two binary conv stages + pooling executed fully on the fabric
        must agree with the software eval stack (ideal devices)."""
        conv1 = nn.BinaryConv1d(4, 6, 5, rng=rng)
        bn1 = _trained_like_bn(rng, 6)
        conv2 = nn.BinaryConv1d(6, 4, 3, rng=rng)
        bn2 = _trained_like_bn(rng, 4)

        x_pm1 = np.where(rng.random((2, 4, 40)) < 0.5, 1.0, -1.0)
        # Software stack.
        h = bn1(conv1(Tensor(x_pm1))).sign_ste()
        h = nn.MaxPool1d(2)(h)
        ref = bn2(conv2(h)).sign_ste().data

        # Hardware stack.
        cfg = AcceleratorConfig(tile_rows=8, tile_cols=16, ideal=True)
        hw1 = InMemoryConv1dLayer(
            fold_conv1d_batchnorm_sign(conv1, bn1), cfg, rng)
        hw2 = InMemoryConv1dLayer(
            fold_conv1d_batchnorm_sign(conv2, bn2), cfg, rng)
        bits = hw1.forward_bits(to_bits(x_pm1))
        bits = max_pool_bits_1d(bits, 2)
        out = hw2.forward_bits(bits)
        assert np.array_equal(from_bits(out), ref)
