"""Trial-batched Monte-Carlo engine: streams, array/controller trial axis,
workload integration (repro.rram.mc and friends)."""

import numpy as np
import pytest

from repro.nn.binary import FoldedBinaryDense, FoldedOutputDense
from repro.rram import (AcceleratorConfig, DeviceParameters,
                        InMemoryClassifier, InMemoryDenseLayer,
                        InMemoryOutputLayer, RRAMArray, SenseParameters,
                        read_bit_errors, trial_streams)
from repro.rram.mc import trial_chunks


def _programmed_array(mode="2T2R", rows=12, cols=20, seed=0, wear=10 ** 8):
    rng = np.random.default_rng(seed)
    array = RRAMArray(rows, cols, rng=rng, mode=mode)
    array.wear(wear)
    bits = rng.integers(0, 2, (rows, cols)).astype(np.uint8)
    array.program(bits)
    return array, bits


def _dense_hw(seed=0, out_features=24, in_features=50, sigma=0.15):
    rng = np.random.default_rng(seed)
    folded = FoldedBinaryDense(
        rng.integers(0, 2, (out_features, in_features)).astype(np.uint8),
        theta=rng.standard_normal(out_features),
        gamma_sign=np.ones(out_features), beta_sign=np.ones(out_features))
    config = AcceleratorConfig(sense=SenseParameters(offset_sigma=sigma))
    return folded, InMemoryDenseLayer(folded, config,
                                      np.random.default_rng(seed + 1),
                                      fast_path=False)


class TestTrialStreams:
    def test_deterministic_and_independent(self):
        a = trial_streams(7, 4)
        b = trial_streams(7, 4)
        draws_a = [r.normal(size=3) for r in a]
        draws_b = [r.normal(size=3) for r in b]
        for x, y in zip(draws_a, draws_b):
            assert np.array_equal(x, y)
        # Distinct trials are distinct streams.
        assert not np.array_equal(draws_a[0], draws_a[1])

    def test_prefix_stable_under_growth(self):
        # Stream t of a T-trial study equals stream t of a larger study:
        # trial budgets can grow without invalidating earlier trials.
        small = [r.normal(size=4) for r in trial_streams(3, 2)]
        large = [r.normal(size=4) for r in trial_streams(3, 16)[:2]]
        assert all(np.array_equal(s, g) for s, g in zip(small, large))

    def test_validates_trials(self):
        with pytest.raises(ValueError, match="trials"):
            trial_streams(0, 0)

    def test_chunking_covers_range(self):
        windows = list(trial_chunks(10, per_trial_elems=1, budget=3))
        assert windows == [(0, 3), (3, 6), (6, 9), (9, 10)]
        # A budget below one trial still makes progress, one trial at a
        # time; a generous budget takes the whole range in one window.
        assert list(trial_chunks(2, 100, 10)) == [(0, 1), (1, 2)]
        assert list(trial_chunks(5, 1, 100)) == [(0, 5)]


class TestArrayTrialReads:
    @pytest.mark.parametrize("mode", ["2T2R", "1T1R"])
    def test_batched_equals_per_trial_loop(self, mode):
        array, _ = _programmed_array(mode)
        batched = array.read_all_trials(trial_streams(11, 6))
        serial = np.stack([array.read_all(rng=r)
                           for r in trial_streams(11, 6)])
        assert batched.shape == (6,) + (array.n_rows, array.n_cols)
        assert np.array_equal(batched, serial)

    def test_rng_override_leaves_array_stream_untouched(self):
        array, _ = _programmed_array()
        before = array.rng.bit_generator.state
        array.read_all(rng=np.random.default_rng(0))
        array.read_all_trials(trial_streams(0, 3))
        assert array.rng.bit_generator.state == before

    @pytest.mark.parametrize("trial_chunk", [None, 1, 2, 5])
    def test_read_bit_errors_chunk_invariant(self, trial_chunk):
        array, bits = _programmed_array(wear=5 * 10 ** 8)
        errors = read_bit_errors(array, bits, trial_streams(3, 5),
                                 trial_chunk)
        reference = np.array([(array.read_all(rng=r) != bits).sum()
                              for r in trial_streams(3, 5)])
        assert np.array_equal(errors, reference)

    def test_read_bit_errors_validates_shape(self):
        array, bits = _programmed_array()
        with pytest.raises(ValueError, match="shape"):
            read_bit_errors(array, bits[:, :-1], trial_streams(0, 2))


class TestControllerTrialScans:
    @pytest.mark.parametrize("trial_chunk", [None, 1, 3])
    def test_batched_equals_per_trial_loop(self, trial_chunk):
        _, hw = _dense_hw()
        x = np.random.default_rng(9).integers(0, 2, (7, 50)).astype(np.uint8)
        batched = hw.forward_bits_trials(x, trial_streams(21, 5),
                                         trial_chunk=trial_chunk)
        serial = np.stack([hw.forward_bits(x, rng=r)
                           for r in trial_streams(21, 5)])
        assert np.array_equal(batched, serial)

    def test_batch_chunked_scan_identical(self):
        # Shrinking the offset-tensor budget forces batch chunking inside
        # each trial window; split-stable streams keep results identical.
        _, hw = _dense_hw()
        x = np.random.default_rng(9).integers(0, 2, (9, 50)).astype(np.uint8)
        wide = hw.forward_bits_trials(x, trial_streams(2, 4))
        hw.controller.read_chunk_elems = 2 * 32 * 64   # tiny budget
        narrow = hw.forward_bits_trials(x, trial_streams(2, 4))
        assert np.array_equal(wide, narrow)

    def test_per_trial_inputs_diverge_trials(self):
        _, hw = _dense_hw()
        rng = np.random.default_rng(1)
        x_stack = rng.integers(0, 2, (3, 7, 50)).astype(np.uint8)
        batched = hw.controller.popcounts_trials(x_stack,
                                                 trial_streams(2, 3))
        serial = np.stack(
            [hw.controller.popcounts(x_stack[t], rng=r)
             for t, r in enumerate(trial_streams(2, 3))])
        assert np.array_equal(batched, serial)

    def test_sense_override_matches_rebuilt_config(self):
        # Reading a programmed controller at a different offset sigma must
        # equal a controller built with that sigma (margins are untouched
        # by sense parameters) — the property the plan cache relies on.
        folded, hw = _dense_hw(sigma=0.0)
        x = np.random.default_rng(3).integers(0, 2, (5, 50)).astype(np.uint8)
        override = hw.forward_bits_trials(
            x, trial_streams(8, 4), sense=SenseParameters(offset_sigma=0.7))
        config = AcceleratorConfig(sense=SenseParameters(offset_sigma=0.7))
        rebuilt = InMemoryDenseLayer(folded, config,
                                     np.random.default_rng(1),
                                     fast_path=False)
        native = rebuilt.forward_bits_trials(x, trial_streams(8, 4))
        assert np.array_equal(override, native)

    def test_fast_path_trials_coincide(self):
        rng = np.random.default_rng(0)
        folded = FoldedBinaryDense(
            rng.integers(0, 2, (8, 40)).astype(np.uint8),
            theta=np.zeros(8), gamma_sign=np.ones(8), beta_sign=np.ones(8))
        hw = InMemoryDenseLayer(folded, AcceleratorConfig(ideal=True),
                                np.random.default_rng(1))
        assert hw.controller.fast_path
        x = rng.integers(0, 2, (6, 40)).astype(np.uint8)
        out = hw.forward_bits_trials(x, trial_streams(0, 3))
        assert np.array_equal(out[0], folded.forward_bits(x))
        assert np.array_equal(out[0], out[1]) and np.array_equal(
            out[1], out[2])

    def test_validates_input_shape(self):
        _, hw = _dense_hw()
        with pytest.raises(ValueError, match="input shape"):
            hw.controller.popcounts_trials(
                np.zeros((3, 7), dtype=np.uint8), trial_streams(0, 2))

    def test_fast_path_refuses_noisy_sense_override(self):
        # A fast-path controller has no margins; a noisy override must
        # raise instead of silently returning deterministic results.
        rng = np.random.default_rng(0)
        folded = FoldedBinaryDense(
            rng.integers(0, 2, (8, 40)).astype(np.uint8),
            theta=np.zeros(8), gamma_sign=np.ones(8), beta_sign=np.ones(8))
        hw = InMemoryDenseLayer(folded, AcceleratorConfig(ideal=True),
                                np.random.default_rng(1))
        x = rng.integers(0, 2, (4, 40)).astype(np.uint8)
        noisy = SenseParameters(offset_sigma=0.5)
        with pytest.raises(ValueError, match="fast_path=False"):
            hw.forward_bits_trials(x, trial_streams(0, 2), sense=noisy)
        with pytest.raises(ValueError, match="fast_path=False"):
            hw.forward_bits(x, sense=noisy)
        # A zero-sigma override is honoured trivially (no noise to draw).
        out = hw.forward_bits(x, sense=SenseParameters(offset_sigma=0.0))
        assert np.array_equal(out, folded.forward_bits(x))


class TestConvTrialReads:
    def _conv_hw(self):
        from repro.rram.conv import FoldedBinaryConv1d, InMemoryConv1dLayer
        rng = np.random.default_rng(2)
        folded = FoldedBinaryConv1d(
            weight_bits=rng.integers(0, 2, (6, 4 * 3)).astype(np.uint8),
            in_channels=4, kernel_size=3, stride=1,
            theta=rng.standard_normal(6), gamma_sign=np.ones(6),
            beta_sign=np.ones(6))
        hw = InMemoryConv1dLayer(folded, AcceleratorConfig(),
                                 np.random.default_rng(3), fast_path=False)
        x = rng.integers(0, 2, (5, 4, 11)).astype(np.uint8)
        return hw, x

    def test_batched_equals_per_trial_loop(self):
        hw, x = self._conv_hw()
        batched = hw.forward_bits_trials(x, trial_streams(6, 4))
        serial = np.stack([hw.forward_bits(x, rng=r)
                           for r in trial_streams(6, 4)])
        assert np.array_equal(batched, serial)

    def test_rejects_trial_count_mismatch(self):
        hw, x = self._conv_hw()
        stack = np.broadcast_to(x[None], (3,) + x.shape).copy()
        with pytest.raises(ValueError, match="trial slices"):
            hw.forward_bits_trials(stack, trial_streams(0, 2))


class TestClassifierTrials:
    def test_stacked_classifier_matches_serial_pass(self):
        rng = np.random.default_rng(4)
        hidden_folded = FoldedBinaryDense(
            rng.integers(0, 2, (16, 30)).astype(np.uint8),
            theta=rng.standard_normal(16),
            gamma_sign=np.ones(16), beta_sign=np.ones(16))
        out_folded = FoldedOutputDense(
            rng.integers(0, 2, (4, 16)).astype(np.uint8),
            scale=np.ones(4), offset=np.zeros(4))
        config = AcceleratorConfig()
        hidden = InMemoryDenseLayer(hidden_folded, config,
                                    np.random.default_rng(5),
                                    fast_path=False)
        output = InMemoryOutputLayer(out_folded, config,
                                     np.random.default_rng(6),
                                     fast_path=False)
        clf = InMemoryClassifier([hidden], output)
        x = rng.integers(0, 2, (5, 30)).astype(np.uint8)
        batched = clf.forward_scores_trials(x, trial_streams(1, 4))
        serial = []
        for r in trial_streams(1, 4):
            bits = hidden.forward_bits(x, rng=r)
            serial.append(output.forward_scores(bits, rng=r))
        assert np.array_equal(batched, np.stack(serial))
        labels = clf.predict_trials(x, trial_streams(1, 4))
        assert labels.shape == (4, 5)
        assert np.array_equal(labels, batched.argmax(axis=2))

    def test_classifier_sense_override_passes_through(self):
        """A ``sense=`` override on the stacked classifier reaches every
        layer — the mechanism the trained-robustness sweep uses to read
        one programmed chip at many sigmas."""
        from repro.rram import DeviceParameters, SenseParameters

        rng = np.random.default_rng(7)
        hidden_folded = FoldedBinaryDense(
            rng.integers(0, 2, (16, 30)).astype(np.uint8),
            theta=rng.standard_normal(16),
            gamma_sign=np.ones(16), beta_sign=np.ones(16))
        out_folded = FoldedOutputDense(
            rng.integers(0, 2, (4, 16)).astype(np.uint8),
            scale=np.ones(4), offset=np.zeros(4))
        # Zeroed variability, noiseless programmed sense: noise appears
        # only when the read-time override injects it.
        config = AcceleratorConfig(
            device=DeviceParameters(sigma_lrs0=0.0, sigma_hrs0=0.0,
                                    broadening=0.0, hrs_drift=0.0,
                                    device_mismatch=1.0),
            sense=SenseParameters(offset_sigma=0.0))
        clf = InMemoryClassifier(
            [InMemoryDenseLayer(hidden_folded, config,
                                np.random.default_rng(8),
                                fast_path=False)],
            InMemoryOutputLayer(out_folded, config,
                                np.random.default_rng(9),
                                fast_path=False))
        x = rng.integers(0, 2, (12, 30)).astype(np.uint8)
        quiet = clf.forward_scores_trials(x, trial_streams(2, 3))
        assert np.array_equal(quiet[0], quiet[1])      # deterministic
        noisy = clf.forward_scores_trials(
            x, trial_streams(2, 3), sense=SenseParameters(offset_sigma=5.0))
        assert not np.array_equal(noisy, quiet)
        serial = []
        for r in trial_streams(2, 3):
            bits = clf.hidden[0].forward_bits(
                x, rng=r, sense=SenseParameters(offset_sigma=5.0))
            serial.append(clf.output.forward_scores(
                bits, rng=r, sense=SenseParameters(offset_sigma=5.0)))
        assert np.array_equal(noisy, np.stack(serial))
