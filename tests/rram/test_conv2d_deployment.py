"""Tests for in-memory 2-D binary convolution (repro.rram.conv2d)."""

import numpy as np
import pytest

from repro.nn import (BatchNorm2d, BinaryConv2d, BinaryDepthwiseConv2d,
                      Conv2d)
from repro.nn.binary import from_bits, to_bits
from repro.rram import (AcceleratorConfig, FoldedBinaryConv2d,
                        InMemoryConv2dLayer, fold_conv2d_batchnorm_sign,
                        fold_depthwise2d_batchnorm_sign, max_pool_bits_2d)
from repro.tensor import Tensor


def calibrated_bn2d(channels: int, rng: np.random.Generator) -> BatchNorm2d:
    """A batch-norm with non-trivial running stats and affine params."""
    bn = BatchNorm2d(channels)
    bn.set_buffer("running_mean", rng.normal(scale=2.0, size=channels))
    bn.set_buffer("running_var", rng.uniform(0.5, 3.0, size=channels))
    bn.gamma.data = rng.normal(size=channels)
    bn.beta.data = rng.normal(size=channels)
    bn.eval()
    return bn


def software_reference(conv, bn, x_pm1: np.ndarray) -> np.ndarray:
    """sign(BN(conv(x))) evaluated through the software stack, as bits."""
    out = bn(conv(Tensor(x_pm1)))
    return to_bits(np.where(out.data >= 0, 1.0, -1.0))


class TestFoldConv2d:
    @pytest.fixture
    def rng(self):
        return np.random.default_rng(0)

    def test_fold_matches_software_stack(self, rng):
        conv = BinaryConv2d(3, 5, kernel_size=3, rng=rng)
        bn = calibrated_bn2d(5, rng)
        folded = fold_conv2d_batchnorm_sign(conv, bn)
        bits = rng.integers(0, 2, size=(2, 3, 10, 12)).astype(np.uint8)
        hardware = folded.forward_bits(bits)
        software = software_reference(conv, bn, from_bits(bits))
        assert np.array_equal(hardware, software)

    def test_strided_fold(self, rng):
        conv = BinaryConv2d(2, 4, kernel_size=3, stride=2, rng=rng)
        bn = calibrated_bn2d(4, rng)
        folded = fold_conv2d_batchnorm_sign(conv, bn)
        bits = rng.integers(0, 2, size=(2, 2, 11, 9)).astype(np.uint8)
        assert np.array_equal(folded.forward_bits(bits),
                              software_reference(conv, bn, from_bits(bits)))

    def test_rectangular_kernel(self, rng):
        conv = BinaryConv2d(2, 3, kernel_size=(1, 5), rng=rng)
        bn = calibrated_bn2d(3, rng)
        folded = fold_conv2d_batchnorm_sign(conv, bn)
        bits = rng.integers(0, 2, size=(1, 2, 4, 12)).astype(np.uint8)
        assert np.array_equal(folded.forward_bits(bits),
                              software_reference(conv, bn, from_bits(bits)))

    def test_plain_conv_with_pm1_weights(self, rng):
        conv = Conv2d(2, 3, kernel_size=3, bias=False, rng=rng)
        conv.weight.data = np.sign(conv.weight.data) + (
            conv.weight.data == 0)
        bn = calibrated_bn2d(3, rng)
        folded = fold_conv2d_batchnorm_sign(conv, bn)
        bits = rng.integers(0, 2, size=(1, 2, 8, 8)).astype(np.uint8)
        assert np.array_equal(folded.forward_bits(bits),
                              software_reference(conv, bn, from_bits(bits)))

    def test_padding_rejected(self, rng):
        conv = BinaryConv2d(2, 3, kernel_size=3, padding=1, rng=rng)
        with pytest.raises(ValueError, match="padding"):
            fold_conv2d_batchnorm_sign(conv, calibrated_bn2d(3, rng))

    def test_bias_rejected(self, rng):
        conv = Conv2d(2, 3, kernel_size=3, bias=True, rng=rng)
        with pytest.raises(ValueError, match="bias"):
            fold_conv2d_batchnorm_sign(conv, calibrated_bn2d(3, rng))

    def test_input_shape_validation(self, rng):
        conv = BinaryConv2d(3, 4, kernel_size=3, rng=rng)
        folded = fold_conv2d_batchnorm_sign(conv, calibrated_bn2d(4, rng))
        with pytest.raises(ValueError, match="expected"):
            folded.forward_bits(np.zeros((1, 2, 8, 8), dtype=np.uint8))

    def test_output_shape(self, rng):
        conv = BinaryConv2d(1, 2, kernel_size=3, stride=2, rng=rng)
        folded = fold_conv2d_batchnorm_sign(conv, calibrated_bn2d(2, rng))
        assert folded.output_shape(11, 9) == (5, 4)
        bits = np.zeros((1, 1, 11, 9), dtype=np.uint8)
        assert folded.forward_bits(bits).shape == (1, 2, 5, 4)


class TestFoldDepthwise2d:
    @pytest.fixture
    def rng(self):
        return np.random.default_rng(1)

    def test_fold_matches_software_stack(self, rng):
        conv = BinaryDepthwiseConv2d(4, kernel_size=3, rng=rng)
        bn = calibrated_bn2d(4, rng)
        folded = fold_depthwise2d_batchnorm_sign(conv, bn)
        bits = rng.integers(0, 2, size=(2, 4, 9, 9)).astype(np.uint8)
        assert np.array_equal(folded.forward_bits(bits),
                              software_reference(conv, bn, from_bits(bits)))

    def test_strided_depthwise(self, rng):
        conv = BinaryDepthwiseConv2d(3, kernel_size=3, stride=2, rng=rng)
        bn = calibrated_bn2d(3, rng)
        folded = fold_depthwise2d_batchnorm_sign(conv, bn)
        bits = rng.integers(0, 2, size=(2, 3, 11, 11)).astype(np.uint8)
        assert np.array_equal(folded.forward_bits(bits),
                              software_reference(conv, bn, from_bits(bits)))

    def test_fan_in_is_kernel_only(self, rng):
        conv = BinaryDepthwiseConv2d(8, kernel_size=3, rng=rng)
        folded = fold_depthwise2d_batchnorm_sign(conv,
                                                 calibrated_bn2d(8, rng))
        assert folded.fan_in == 9
        assert folded.depthwise

    def test_channels_are_independent(self, rng):
        """Flipping input bits of one channel must not change others."""
        conv = BinaryDepthwiseConv2d(3, kernel_size=3, rng=rng)
        bn = calibrated_bn2d(3, rng)
        folded = fold_depthwise2d_batchnorm_sign(conv, bn)
        bits = rng.integers(0, 2, size=(1, 3, 8, 8)).astype(np.uint8)
        base = folded.forward_bits(bits)
        mutated = bits.copy()
        mutated[:, 0] ^= 1
        out = folded.forward_bits(mutated)
        assert np.array_equal(base[:, 1:], out[:, 1:])


class TestInMemoryConv2dLayer:
    @pytest.fixture
    def rng(self):
        return np.random.default_rng(2)

    def test_ideal_hardware_matches_folded(self, rng):
        conv = BinaryConv2d(3, 6, kernel_size=3, rng=rng)
        bn = calibrated_bn2d(6, rng)
        folded = fold_conv2d_batchnorm_sign(conv, bn)
        layer = InMemoryConv2dLayer(folded, AcceleratorConfig(ideal=True),
                                    np.random.default_rng(3))
        bits = rng.integers(0, 2, size=(2, 3, 9, 9)).astype(np.uint8)
        assert np.array_equal(layer.forward_bits(bits),
                              folded.forward_bits(bits))

    def test_realistic_hardware_high_agreement(self, rng):
        conv = BinaryConv2d(2, 4, kernel_size=3, rng=rng)
        bn = calibrated_bn2d(4, rng)
        folded = fold_conv2d_batchnorm_sign(conv, bn)
        layer = InMemoryConv2dLayer(folded, AcceleratorConfig(),
                                    np.random.default_rng(4))
        bits = rng.integers(0, 2, size=(4, 2, 10, 10)).astype(np.uint8)
        agreement = np.mean(layer.forward_bits(bits)
                            == folded.forward_bits(bits))
        assert agreement > 0.95

    def test_depthwise_layer_wraps_folded(self, rng):
        conv = BinaryDepthwiseConv2d(4, kernel_size=3, rng=rng)
        bn = calibrated_bn2d(4, rng)
        folded = fold_depthwise2d_batchnorm_sign(conv, bn)
        layer = InMemoryConv2dLayer(folded, AcceleratorConfig(ideal=True))
        bits = rng.integers(0, 2, size=(1, 4, 8, 8)).astype(np.uint8)
        assert np.array_equal(layer.forward_bits(bits),
                              folded.forward_bits(bits))


class TestMaxPoolBits2d:
    def test_is_logical_or(self):
        bits = np.zeros((1, 1, 4, 4), dtype=np.uint8)
        bits[0, 0, 1, 1] = 1
        out = max_pool_bits_2d(bits, kernel=2)
        assert out.shape == (1, 1, 2, 2)
        assert out[0, 0].tolist() == [[1, 0], [0, 0]]

    def test_matches_float_maxpool_on_pm1(self):
        rng = np.random.default_rng(5)
        bits = rng.integers(0, 2, size=(2, 3, 8, 8)).astype(np.uint8)
        pm1 = from_bits(bits)
        # Float max-pool over ±1 then re-binarize == bit OR.
        n, c, h, w = pm1.shape
        pooled = pm1.reshape(n, c, h // 2, 2, w // 2, 2).max(axis=(3, 5))
        assert np.array_equal(max_pool_bits_2d(bits, 2), to_bits(pooled))

    def test_stride_different_from_kernel(self):
        bits = np.arange(16).reshape(1, 1, 4, 4) % 2
        out = max_pool_bits_2d(bits.astype(np.uint8), kernel=2, stride=1)
        assert out.shape == (1, 1, 3, 3)

    def test_shape_validation(self):
        with pytest.raises(ValueError, match="expected"):
            max_pool_bits_2d(np.zeros((2, 3, 4), dtype=np.uint8), 2)


class TestMobilenetBlockDeployment:
    def test_depthwise_pointwise_chain(self):
        """A MobileNet block (depthwise 3x3 -> BN -> sign -> pointwise 1x1
        -> BN -> sign) deploys bit-exactly."""
        rng = np.random.default_rng(6)
        dw = BinaryDepthwiseConv2d(8, kernel_size=3, rng=rng)
        bn1 = calibrated_bn2d(8, rng)
        pw = BinaryConv2d(8, 16, kernel_size=1, rng=rng)
        bn2 = calibrated_bn2d(16, rng)

        folded_dw = fold_depthwise2d_batchnorm_sign(dw, bn1)
        folded_pw = fold_conv2d_batchnorm_sign(pw, bn2)
        bits = rng.integers(0, 2, size=(2, 8, 10, 10)).astype(np.uint8)
        hardware = folded_pw.forward_bits(folded_dw.forward_bits(bits))

        x = Tensor(from_bits(bits))
        h = bn1(dw(x))
        h = Tensor(np.where(h.data >= 0, 1.0, -1.0))
        software = to_bits(np.where(bn2(pw(h)).data >= 0, 1.0, -1.0))
        assert np.array_equal(hardware, software)
