"""Device statistics, sense amplifiers, and cells."""

import numpy as np
import pytest

from repro.rram import (DeviceParameters, OneT1RCell, PrechargeSenseAmplifier,
                        ResistiveState, RRAMDevice, SenseParameters,
                        TwoT2RCell, XnorPCSA, analytic_ber_1t1r,
                        analytic_ber_2t2r)


class TestDeviceParameters:
    def test_sigma_grows_with_cycling(self):
        p = DeviceParameters()
        assert p.sigma_hrs(7e8) > p.sigma_hrs(1e8)
        assert np.isclose(p.sigma_hrs(1e8), p.sigma_hrs0)

    def test_sigma_flat_below_reference_cycles(self):
        p = DeviceParameters()
        assert np.isclose(p.sigma_hrs(1), p.sigma_hrs0)

    def test_reference_resistance_is_geometric_mean(self):
        p = DeviceParameters(median_lrs=1e3, median_hrs=1e5)
        assert np.isclose(p.reference_resistance, 1e4)

    def test_sample_respects_state_medians(self, rng):
        p = DeviceParameters()
        lrs = p.sample_resistance(np.ones(20000, dtype=bool), 1e8, rng)
        hrs = p.sample_resistance(np.zeros(20000, dtype=bool), 1e8, rng)
        assert abs(np.median(lrs) - p.median_lrs) / p.median_lrs < 0.05
        assert abs(np.median(hrs) - p.median_hrs) / p.median_hrs < 0.05

    def test_hrs_drift_lowers_median(self, rng):
        p = DeviceParameters(hrs_drift=0.5)
        fresh = p.mu_hrs(1e8)
        worn = p.mu_hrs(1e9)
        assert worn < fresh


class TestAnalyticBER:
    def test_monotonic_in_cycles(self):
        p = DeviceParameters()
        cycles = np.linspace(1e8, 7e8, 7)
        for curve in (analytic_ber_1t1r(p, cycles),
                      analytic_ber_2t2r(p, cycles)):
            assert np.all(np.diff(curve) > 0)

    def test_2t2r_beats_1t1r_by_orders_of_magnitude(self):
        """The paper's headline claim: ~two orders of magnitude (Fig. 4)."""
        p = DeviceParameters()
        cycles = np.linspace(1e8, 7e8, 7)
        ratio = analytic_ber_1t1r(p, cycles) / analytic_ber_2t2r(p, cycles)
        assert np.all(ratio > 10)
        geo_mean = np.exp(np.mean(np.log(ratio)))
        assert geo_mean > 50   # averaged over the sweep: ~2 decades

    def test_blb_mismatch_raises_ber(self):
        p = DeviceParameters()
        bl = analytic_ber_1t1r(p, 3e8)
        blb = analytic_ber_1t1r(p, 3e8, mismatch=p.device_mismatch)
        assert blb > bl


class TestRRAMDevice:
    def test_program_read_cycle_counting(self, rng):
        dev = RRAMDevice(rng=rng)
        dev.program(ResistiveState.LRS)
        dev.program(ResistiveState.HRS)
        assert dev.cycles == 2
        assert dev.read() > dev.params.median_lrs   # HRS read

    def test_read_before_program_raises(self, rng):
        with pytest.raises(RuntimeError):
            RRAMDevice(rng=rng).read()

    def test_wear_advances_without_state_change(self, rng):
        dev = RRAMDevice(rng=rng)
        dev.program(ResistiveState.LRS)
        dev.wear(1000)
        assert dev.cycles == 1001
        assert dev.state is ResistiveState.LRS

    def test_form_leaves_lrs(self, rng):
        dev = RRAMDevice(rng=rng)
        dev.form()
        assert dev.state is ResistiveState.LRS


class TestSenseAmplifiers:
    def test_ideal_sense_is_deterministic(self, rng):
        amp = PrechargeSenseAmplifier(SenseParameters(offset_sigma=0.0), rng)
        assert amp.sense(1e3, 1e5) == 1      # BL less resistive -> +1
        assert amp.sense(1e5, 1e3) == 0

    def test_single_ended_ideal(self, rng):
        amp = PrechargeSenseAmplifier(SenseParameters(offset_sigma=0.0), rng)
        assert amp.sense_single_ended(1e3, 2.2e4) == 1   # LRS
        assert amp.sense_single_ended(1e5, 2.2e4) == 0   # HRS

    def test_offset_flips_marginal_reads(self, rng):
        amp = PrechargeSenseAmplifier(SenseParameters(offset_sigma=0.5), rng)
        reads = np.array([int(amp.sense(1e4, 1.1e4)) for _ in range(300)])
        assert 0 < reads.mean() < 1   # noisy decision near the margin

    def test_sense_count_accumulates(self, rng):
        amp = PrechargeSenseAmplifier(rng=rng)
        amp.sense(np.full(10, 1e3), np.full(10, 1e5))
        assert amp.sense_count == 10

    def test_xnor_truth_table(self, rng):
        amp = XnorPCSA(SenseParameters(offset_sigma=0.0), rng)
        r_plus = (1e3, 1e5)    # stored weight bit 1
        r_minus = (1e5, 1e3)   # stored weight bit 0
        assert amp.sense_xnor(*r_plus, np.array(1)) == 1
        assert amp.sense_xnor(*r_plus, np.array(0)) == 0
        assert amp.sense_xnor(*r_minus, np.array(1)) == 0
        assert amp.sense_xnor(*r_minus, np.array(0)) == 1


class TestCells:
    def test_2t2r_roundtrip_fresh_devices(self, rng):
        cell = TwoT2RCell(rng=rng)
        for bit in (0, 1, 1, 0):
            cell.program(bit)
            assert cell.read() == bit

    def test_1t1r_roundtrip_fresh_devices(self, rng):
        cell = OneT1RCell(rng=rng)
        for bit in (1, 0, 1):
            cell.program(bit)
            assert cell.read() == bit

    def test_2t2r_single_ended_reads_are_complementary(self, rng):
        cell = TwoT2RCell(rng=rng)
        cell.program(1)
        bl, blb = cell.read_devices_single_ended()
        assert (bl, blb) == (1, 0)

    def test_2t2r_programs_both_devices(self, rng):
        cell = TwoT2RCell(rng=rng)
        cell.program(1)
        assert cell.bl.state is ResistiveState.LRS
        assert cell.blb.state is ResistiveState.HRS
        assert cell.cycles == 1
