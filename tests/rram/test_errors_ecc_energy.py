"""Endurance experiment, fault injection, Hamming ECC, energy model."""

import numpy as np
import pytest

from repro.nn.binary import FoldedBinaryDense, FoldedOutputDense
from repro.rram import (DeviceParameters, EnduranceExperiment, EnergyModel,
                        HammingCode, analytic_ber_1t1r, analytic_ber_2t2r,
                        corrupt_folded, inject_bit_errors,
                        simulate_protected_storage)


class TestEnduranceExperiment:
    def test_matches_analytic_model(self):
        exp = EnduranceExperiment(trials=400_000, seed=3,
                                  checkpoints=np.array([3e8, 7e8]))
        res = exp.run()
        ana_bl = analytic_ber_1t1r(exp.device, res.cycles)
        ana_2t = analytic_ber_2t2r(
            exp.device, res.cycles,
            sense_offset_sigma=exp.sense.offset_sigma)
        assert np.allclose(res.ber_1t1r_bl, ana_bl, rtol=0.35)
        assert np.allclose(res.ber_2t2r, ana_2t, rtol=0.6, atol=2e-5)

    def test_curves_ordered(self):
        res = EnduranceExperiment(trials=300_000, seed=1).run()
        assert np.all(res.ber_2t2r <= res.ber_1t1r_bl)
        assert np.all(res.ber_2t2r <= res.ber_1t1r_blb)

    def test_rows_format(self):
        res = EnduranceExperiment(
            trials=1000, checkpoints=np.array([1e8])).run()
        rows = res.rows()
        assert len(rows) == 1 and len(rows[0]) == 4


class TestFaultInjection:
    def test_zero_ber_is_identity(self, rng):
        bits = rng.integers(0, 2, 1000).astype(np.uint8)
        assert np.array_equal(inject_bit_errors(bits, 0.0, rng), bits)

    def test_flip_rate_matches_ber(self, rng):
        bits = np.zeros(200_000, dtype=np.uint8)
        flipped = inject_bit_errors(bits, 0.01, rng)
        assert abs(flipped.mean() - 0.01) < 0.002

    def test_ber_validation(self, rng):
        with pytest.raises(ValueError):
            inject_bit_errors(np.zeros(4, np.uint8), 1.5, rng)

    def test_corrupt_folded_preserves_metadata(self, rng):
        folded = FoldedBinaryDense(
            weight_bits=rng.integers(0, 2, (4, 8)).astype(np.uint8),
            theta=rng.standard_normal(4),
            gamma_sign=np.ones(4), beta_sign=np.ones(4))
        bad = corrupt_folded(folded, 0.5, rng)
        assert isinstance(bad, FoldedBinaryDense)
        assert np.array_equal(bad.theta, folded.theta)
        out = corrupt_folded(FoldedOutputDense(
            folded.weight_bits, np.ones(4), np.zeros(4)), 0.1, rng)
        assert isinstance(out, FoldedOutputDense)


class TestHammingCode:
    @pytest.mark.parametrize("code", [
        HammingCode(3), HammingCode(4), HammingCode(5),
        HammingCode(3, data_bits=4, extended=True),
        HammingCode.secded_72_64(),
    ], ids=["(7,4)", "(15,11)", "(31,26)", "(8,4)ext", "secded(72,64)"])
    def test_clean_roundtrip(self, rng, code):
        data = rng.integers(0, 2, (100, code.k)).astype(np.uint8)
        decoded, double = code.decode(code.encode(data))
        assert np.array_equal(decoded, data)
        assert not double.any()

    @pytest.mark.parametrize("code", [
        HammingCode(4), HammingCode.secded_72_64(), HammingCode.rate_half(),
    ], ids=["(15,11)", "secded", "rate-half"])
    def test_corrects_every_single_error(self, rng, code):
        data = rng.integers(0, 2, (1, code.k)).astype(np.uint8)
        word = code.encode(data)
        for position in range(code.n):
            corrupted = word.copy()
            corrupted[0, position] ^= 1
            decoded, double = code.decode(corrupted)
            assert np.array_equal(decoded, data), f"pos {position}"
            assert not double.any()

    def test_secded_detects_double_errors(self, rng):
        code = HammingCode.secded_72_64()
        data = rng.integers(0, 2, (200, 64)).astype(np.uint8)
        words = code.encode(data)
        # Flip two distinct random bits per word.
        for w in range(len(words)):
            i, j = rng.choice(code.n, size=2, replace=False)
            words[w, i] ^= 1
            words[w, j] ^= 1
        _, double = code.decode(words)
        assert double.mean() > 0.9   # most double errors flagged

    def test_redundancy_values(self):
        assert np.isclose(HammingCode.secded_72_64().redundancy, 72 / 64)
        assert np.isclose(HammingCode.rate_half().redundancy, 2.0)

    def test_residual_ber_below_raw(self, rng):
        code = HammingCode.secded_72_64()
        data = rng.integers(0, 2, (5000, 64)).astype(np.uint8)
        _, residual = simulate_protected_storage(data, code, 1e-3, rng)
        assert residual < 1e-3 / 3

    def test_validation(self):
        with pytest.raises(ValueError):
            HammingCode(1)
        with pytest.raises(ValueError):
            HammingCode(3, data_bits=10)
        code = HammingCode(3)
        with pytest.raises(ValueError):
            code.encode(np.zeros((2, 3), np.uint8))
        with pytest.raises(ValueError):
            code.decode(np.zeros((2, 3), np.uint8))


class TestEnergyModel:
    LAYERS = [(75, 5152), (2, 75)]   # the ECG classifier

    def test_in_memory_has_zero_movement_and_ecc(self):
        cost = EnergyModel().in_memory_inference(self.LAYERS)
        assert cost.data_movement_pj == 0.0
        assert cost.ecc_energy_pj == 0.0
        assert cost.total_pj > 0

    def test_digital_sram_ecc_costs_more(self):
        model = EnergyModel()
        inmem = model.in_memory_inference(self.LAYERS)
        digital = model.digital_inference(self.LAYERS, "sram", use_ecc=True)
        assert digital.total_pj > inmem.total_pj

    def test_dram_much_worse_than_sram(self):
        model = EnergyModel()
        sram = model.digital_inference(self.LAYERS, "sram")
        dram = model.digital_inference(self.LAYERS, "dram")
        assert dram.total_pj > 10 * sram.total_pj

    def test_ecc_adds_energy(self):
        model = EnergyModel()
        with_ecc = model.digital_inference(self.LAYERS, "sram", use_ecc=True)
        without = model.digital_inference(self.LAYERS, "sram", use_ecc=False)
        assert with_ecc.total_pj > without.total_pj
        assert with_ecc.ecc_energy_pj > 0

    def test_programming_energy_scales_with_bits(self):
        model = EnergyModel()
        assert model.programming_energy_pj(200) == 2 * model.programming_energy_pj(100)

    def test_storage_area_2t2r_vs_rate_half_1t1r(self):
        areas = EnergyModel().storage_area_comparison(1_000_000)
        # 2T2R pays 2x cell area; rate-1/2 ECC pays 2x cells + decoder, so
        # at equal redundancy the 2T2R storage is not larger.
        assert areas["2t2r_mm2"] <= areas["1t1r_rate_half_mm2"] * 1.05

    def test_unknown_memory_rejected(self):
        with pytest.raises(ValueError):
            EnergyModel().digital_inference(self.LAYERS, "tape")
