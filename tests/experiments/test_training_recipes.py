"""Training recipes, the trained-robustness workload, and `repro train`."""

import numpy as np
import pytest

from repro.experiments import (TRAINING_RECIPES, TrainedDemo,
                               build_recipe_model, recipe_dataset,
                               seeded_baseline, train_demo_model)
from repro.experiments.workloads import trained_robustness_point


class TestRecipes:
    def test_registry_covers_both_demos(self):
        assert set(TRAINING_RECIPES) == {"eeg", "ecg"}

    def test_config_defaults_and_overrides(self):
        recipe = TRAINING_RECIPES["eeg"]
        cfg = recipe.config()
        assert cfg.epochs == recipe.epochs
        assert cfg.seed == recipe.seed
        assert cfg.read_noise_sigma == 0.0
        cfg = recipe.config(epochs=3, seed=7, noise_sigma=1.5)
        assert cfg.epochs == 3 and cfg.seed == 7
        assert cfg.read_noise_sigma == 1.5
        assert cfg.track_history

    def test_noise_arms_classifier_layers_only(self):
        # The classifier-on-chip deployment reads fc1/fc2 through noisy
        # sense amplifiers; the conv front-end runs digitally.
        assert TRAINING_RECIPES["eeg"].config().read_noise_layers == \
            ("fc1", "fc2")

    def test_unknown_recipe_raises(self):
        with pytest.raises(ValueError, match="no training recipe"):
            recipe_dataset("mnist")
        with pytest.raises(ValueError, match="no training recipe"):
            train_demo_model("mnist")


class TestRecipeDataset:
    @pytest.mark.parametrize("name", ["eeg", "ecg"])
    def test_split_is_disjoint_and_stratified(self, name):
        inputs, labels, train_idx, val_idx = recipe_dataset(name)
        assert len(inputs) == 240
        assert not set(train_idx) & set(val_idx)
        assert len(train_idx) + len(val_idx) == 240
        # First fold of a stratified 4-fold: both classes on both sides.
        assert set(labels[train_idx]) == set(labels[val_idx]) == {0, 1}

    def test_split_is_deterministic(self):
        _, _, a_train, a_val = recipe_dataset("eeg")
        _, _, b_train, b_val = recipe_dataset("eeg")
        assert np.array_equal(a_train, b_train)
        assert np.array_equal(a_val, b_val)

    def test_seed_changes_the_data(self):
        a, *_ = recipe_dataset("eeg")
        b, *_ = recipe_dataset("eeg", seed=1)
        assert not np.array_equal(a, b)


class TestRecipeModels:
    @pytest.mark.parametrize("name", ["eeg", "ecg"])
    def test_model_accepts_recipe_rows(self, name):
        from repro.tensor import Tensor, no_grad

        inputs, _, train_idx, _ = recipe_dataset(name)
        model = build_recipe_model(name, "binary_classifier",
                                   np.random.default_rng(0))
        if hasattr(model, "fit_input_norm"):
            model.fit_input_norm(inputs[train_idx])
        model.eval()
        with no_grad():
            out = model(Tensor(inputs[train_idx[:4]]))
        assert out.data.shape == (4, 2)


class TestTrainDemoModel:
    def test_one_epoch_run_round_trips(self):
        demo = train_demo_model("eeg", "binary_classifier", epochs=1)
        assert isinstance(demo, TrainedDemo)
        assert len(demo.result.history) == 1
        assert 0.0 <= demo.val_accuracy <= 1.0
        assert not demo.model.training          # handed back in eval mode
        assert demo.noise_sigma == 0.0

    def test_noise_sigma_changes_the_training_run(self):
        clean = train_demo_model("eeg", "binary_classifier", epochs=1)
        noisy = train_demo_model("eeg", "binary_classifier", epochs=1,
                                 noise_sigma=1.5)
        assert noisy.noise_sigma == 1.5
        clean_w = clean.model.state_dict()
        noisy_w = noisy.model.state_dict()
        assert any(not np.array_equal(clean_w[k], noisy_w[k])
                   for k in clean_w)
        # ...but the model comes back read-clean: eval forward ignores
        # the armed noise knob entirely.
        a = noisy.val_accuracy
        assert a == noisy.val_accuracy

    def test_seeded_baseline_takes_no_gradient_steps(self):
        a = seeded_baseline("eeg", "binary_classifier")
        b = seeded_baseline("eeg", "binary_classifier")
        assert a.result is None
        wa, wb = a.model.state_dict(), b.model.state_dict()
        assert sorted(wa) == sorted(wb)
        assert all(np.array_equal(wa[k], wb[k]) for k in wa)
        assert 0.0 <= a.val_accuracy <= 1.0


class TestTrainedRobustnessPoint:
    def test_seeded_point_shape_and_determinism(self):
        a = trained_robustness_point(1.5, weights="seeded", model="eeg",
                                     trials=2)
        b = trained_robustness_point(1.5, weights="seeded", model="eeg",
                                     trials=2)
        assert set(a) == {"accuracy", "accuracy_std", "clean_accuracy"}
        assert a == b
        assert 0.0 <= a["accuracy"] <= 1.0

    def test_zero_sigma_reads_are_noise_free(self):
        point = trained_robustness_point(0.0, weights="seeded",
                                         model="eeg", trials=3)
        assert point["accuracy_std"] == 0.0

    def test_invalid_weights_rejected(self):
        with pytest.raises(ValueError, match="seeded/clean/noise"):
            trained_robustness_point(1.0, weights="finetuned",
                                     model="eeg")

    def test_trained_point_runs_with_tiny_budget(self):
        point = trained_robustness_point(1.0, weights="clean",
                                         model="eeg", epochs=1, trials=2)
        assert 0.0 <= point["accuracy"] <= 1.0
        assert 0.0 <= point["clean_accuracy"] <= 1.0

    def test_mode_is_part_of_the_cache_key(self):
        from repro.experiments.executor import plan_cache_stats

        trained_robustness_point(0.5, weights="seeded", model="eeg",
                                 mode="binary_classifier", trials=1)
        before = plan_cache_stats()["size"]
        trained_robustness_point(0.5, weights="seeded", model="eeg",
                                 mode="full_binary", trials=1)
        assert plan_cache_stats()["size"] == before + 1


class TestTrainCommand:
    def test_train_saves_checkpoint_and_artifact(self, tmp_path, capsys):
        from repro.cli.main import main
        from repro.io import load_model, load_plan

        ckpt = tmp_path / "eeg.npz"
        plan = tmp_path / "eeg_plan.npz"
        main(["train", "eeg", "--epochs", "1",
              "--checkpoint", str(ckpt), "--save", str(plan)])
        text = capsys.readouterr().out
        assert "trained eeg [full_binary], clean (no read noise)" in text
        assert "epochs run: 1" in text
        assert ckpt.exists() and plan.exists()
        artifact = load_plan(plan)
        assert artifact.self_contained       # full_binary lowers the convs
        model = build_recipe_model("eeg", "full_binary",
                                   np.random.default_rng(0))
        load_model(model, ckpt)              # geometry round-trips

    def test_train_with_noise_reports_the_sigma(self, capsys):
        from repro.cli.main import main

        main(["train", "eeg", "--mode", "binary_classifier",
              "--epochs", "1", "--noise-sigma", "1.5"])
        text = capsys.readouterr().out
        assert "read-noise sigma 1.5 in the loop" in text

    def test_train_rejects_negative_sigma(self):
        from repro.cli.main import main

        with pytest.raises(SystemExit, match="non-negative"):
            main(["train", "eeg", "--epochs", "1",
                  "--noise-sigma", "-2"])

    def test_train_refuses_to_overwrite(self, tmp_path, capsys):
        from repro.cli.main import main

        ckpt = tmp_path / "ckpt.npz"
        main(["train", "eeg", "--epochs", "1", "--checkpoint", str(ckpt)])
        capsys.readouterr()
        with pytest.raises(SystemExit, match="--overwrite"):
            main(["train", "eeg", "--epochs", "1",
                  "--checkpoint", str(ckpt)])
        main(["train", "eeg", "--epochs", "1", "--checkpoint", str(ckpt),
              "--overwrite"])
