"""Tests for the parallel sweep executor (repro.experiments.executor).

The point functions live at module level so they can cross the process
boundary (the executor's documented pickling contract).
"""

import json

import pytest

from repro.experiments import (RateProgress, Sweep, grid, map_parallel,
                               run_parallel)
from repro.experiments.workloads import latency_point


def square(x, offset=0):
    return {"y": float(x * x + offset)}


def seeded(x, seed):
    # Deterministic in its params — the executor equality contract.
    return {"y": float(x * 1000 + seed)}


def bad_metrics(x):
    return {"y": "nope"}


class TestMapParallel:
    def test_results_in_point_order(self):
        points = grid(x=(3, 1, 2))
        assert map_parallel(square, points, jobs=2) == \
            [{"y": 9.0}, {"y": 1.0}, {"y": 4.0}]

    def test_serial_fallback_allows_closures(self):
        # jobs=1 never pickles, so non-module-level callables are fine.
        results = map_parallel(lambda x: {"y": x}, grid(x=(1, 2)), jobs=1)
        assert results == [{"y": 1}, {"y": 2}]


class TestRunParallel:
    def test_matches_serial_byte_for_byte(self, tmp_path):
        points = grid(x=(1, 2, 3, 4), seed=(0, 1))
        serial = Sweep(tmp_path / "serial.jsonl", seeded)
        serial_records = serial.run_all(points)
        parallel = Sweep(tmp_path / "parallel.jsonl", seeded)
        parallel_records = run_parallel(parallel, points, jobs=2)
        assert parallel_records == serial_records
        assert (tmp_path / "parallel.jsonl").read_bytes() == \
            (tmp_path / "serial.jsonl").read_bytes()

    def test_skips_completed_points(self, tmp_path):
        points = grid(x=(1, 2, 3))
        sweep = Sweep(tmp_path / "s.jsonl", square)
        sweep.run_all(points[:2])
        two_lines = (tmp_path / "s.jsonl").read_text()
        records = run_parallel(sweep, points, jobs=2)
        assert len(records) == 3
        # The completed prefix was not rewritten or recomputed.
        assert (tmp_path / "s.jsonl").read_text().startswith(two_lines)

    def test_jobs_one_runs_serially(self, tmp_path):
        # The serial path accepts closures (nothing crosses a process).
        sweep = Sweep(tmp_path / "s.jsonl", lambda x: {"y": float(x)})
        assert [r["metrics"]["y"] for r in
                run_parallel(sweep, grid(x=(1, 2)), jobs=1)] == [1.0, 2.0]

    def test_crash_resume_mid_grid(self, tmp_path):
        flag = tmp_path / "crash.flag"
        points = grid(index=list(range(6)), seed=(0,), blocking_ms=(0.0,),
                      spin_elems=(100,), fail_flag=(str(flag),),
                      fail_at=(3,))
        serial = Sweep(tmp_path / "serial.jsonl", latency_point)
        serial.run_all(points)

        flag.touch()
        crashed = Sweep(tmp_path / "crashed.jsonl", latency_point)
        with pytest.raises(RuntimeError, match="simulated crash"):
            run_parallel(crashed, points, jobs=2)
        # Every record before the failing point survived the crash.
        survivors = Sweep(tmp_path / "crashed.jsonl", latency_point)
        assert 0 < len(survivors) < len(points)
        assert survivors.completed(points[0])

        flag.unlink()
        run_parallel(survivors, points, jobs=2)
        assert (tmp_path / "crashed.jsonl").read_bytes() == \
            (tmp_path / "serial.jsonl").read_bytes()

    def test_parent_validates_metrics(self, tmp_path):
        sweep = Sweep(tmp_path / "s.jsonl", bad_metrics)
        with pytest.raises(TypeError, match="numeric"):
            run_parallel(sweep, grid(x=(1, 2)), jobs=2)

    def test_progress_reports_rate(self, tmp_path):
        messages = []
        sweep = Sweep(tmp_path / "s.jsonl", square)
        progress = RateProgress(2, sink=messages.append)
        run_parallel(sweep, grid(x=(1, 2)), jobs=2, progress=progress)
        assert len(messages) == 2
        assert "points/sec" in messages[0]
        assert messages[1].startswith("[2/2]")
        assert progress.rate > 0

    def test_records_readable_as_plain_jsonl(self, tmp_path):
        sweep = Sweep(tmp_path / "s.jsonl", square)
        run_parallel(sweep, grid(x=(5,)), jobs=2)
        record = json.loads((tmp_path / "s.jsonl").read_text())
        assert record == {"params": {"x": 5}, "metrics": {"y": 25.0}}
