"""Programmed-plan cache and trial-batched workloads
(repro.experiments.executor.cached_plan + repro.experiments.workloads)."""

import numpy as np
import pytest

from repro.experiments import (RateProgress, Sweep, cached_plan,
                               clear_plan_cache, plan_cache_stats)
from repro.experiments.workloads import (_cell_geometry, ber_point,
                                         rram_inference_point,
                                         sharded_robustness_point)


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_plan_cache()
    yield
    clear_plan_cache()


class TestCachedPlan:
    def test_builds_once_per_key(self):
        calls = []
        assert cached_plan("k", lambda: calls.append(1) or "v") == "v"
        assert cached_plan("k", lambda: calls.append(1) or "v") == "v"
        assert calls == [1]
        stats = plan_cache_stats()
        assert stats["hits"] == 1 and stats["misses"] == 1

    def test_capacity_bounded_lru(self):
        from repro.experiments import executor
        for i in range(executor._PLAN_CACHE_CAPACITY + 3):
            cached_plan(("key", i), lambda i=i: i)
        assert plan_cache_stats()["size"] == executor._PLAN_CACHE_CAPACITY
        # The oldest keys were evicted, the newest survive.
        assert ("key", 0) not in executor._PLAN_CACHE
        assert ("key", executor._PLAN_CACHE_CAPACITY + 2) \
            in executor._PLAN_CACHE

    def test_clear_resets_counters(self):
        cached_plan("k", lambda: 1)
        clear_plan_cache()
        assert plan_cache_stats() == {"hits": 0, "misses": 0, "size": 0}


class TestCellGeometry:
    def test_square_counts_stay_square(self):
        assert _cell_geometry(4096) == (64, 64)
        assert _cell_geometry(1) == (1, 1)

    def test_non_square_counts_keep_every_cell(self):
        for n in (10, 17, 4097):
            rows, cols = _cell_geometry(n)
            assert rows * cols == n

    def test_validates_count(self):
        with pytest.raises(ValueError, match="n_cells"):
            _cell_geometry(0)


class TestBerPoint:
    def test_non_square_cells_counted_exactly(self):
        # Regression: int(sqrt(n)) silently dropped cells (4097 -> 4096).
        point = ber_point(1e8, n_cells=4097, trials=2)
        assert point["cells"] == 4097.0

    def test_trial_batched_matches_serial_read_loop(self):
        from repro.rram import RRAMArray, trial_streams

        params = dict(cycles=5e8, mode="1T1R", n_cells=100, seed=3)
        batched = ber_point(**params, trials=6)
        rng = np.random.default_rng(3)
        array = RRAMArray(10, 10, rng=rng, mode="1T1R")
        array.wear(int(5e8) - 1)
        bits = rng.integers(0, 2, (10, 10)).astype(np.uint8)
        array.program(bits)
        per_trial = np.array([(array.read_all(rng=r) != bits).mean()
                              for r in trial_streams(3, 6)])
        assert batched["ber"] == float(per_trial.mean())
        assert batched["ber_std"] == float(per_trial.std())

    def test_trial_chunk_never_changes_results(self):
        params = dict(cycles=3e8, mode="2T2R", n_cells=64, seed=1, trials=5)
        reference = ber_point(**params)
        for chunk in (1, 2, 5):
            clear_plan_cache()
            assert ber_point(**params, trial_chunk=chunk) == reference

    def test_cached_equals_cold(self):
        params = dict(cycles=2e8, mode="2T2R", n_cells=81, seed=2, trials=4)
        cold = ber_point(**params)
        assert plan_cache_stats()["misses"] == 1
        warm = ber_point(**params)
        assert plan_cache_stats()["hits"] == 1
        assert warm == cold


class TestRramInferencePoint:
    def test_zero_sigma_agrees_exactly(self):
        assert rram_inference_point(0.0, trials=3)["agreement"] == 1.0

    def test_sigma_series_shares_one_plan(self):
        for sigma in (0.0, 0.5, 1.0, 2.0):
            rram_inference_point(sigma, trials=2)
        stats = plan_cache_stats()
        assert stats["misses"] == 1 and stats["hits"] == 3

    def test_cached_sweep_byte_identical_to_cold(self, tmp_path):
        points = [{"sigma": round(s, 2), "seed": 0, "trials": 3}
                  for s in (0.0, 0.8, 1.6)]
        cold = Sweep(tmp_path / "cold.jsonl", rram_inference_point)
        cold.run_all(points)
        warm = Sweep(tmp_path / "warm.jsonl", rram_inference_point)
        warm.run_all(points)          # plan cache already programmed
        assert plan_cache_stats()["hits"] > 0
        assert (tmp_path / "warm.jsonl").read_bytes() == \
            (tmp_path / "cold.jsonl").read_bytes()

    def test_agreement_degrades_with_sigma(self):
        quiet = rram_inference_point(0.1, trials=4)["agreement"]
        loud = rram_inference_point(2.5, trials=4)["agreement"]
        assert loud < quiet


class TestShardedRobustnessPoint:
    def test_zero_sigma_reduction_is_exact(self):
        point = sharded_robustness_point(16, sigma=0.0, trials=3)
        assert point["agreement"] == 1.0

    def test_reports_shard_grid_metrics(self):
        point = sharded_robustness_point(16, macro_rows=8, trials=2)
        # 131 prime columns on 16-wide macros, 10 rows on 8-tall macros:
        # ceil(10/8) * ceil(131/16) chips, tails included.
        assert point["n_macros"] == 2 * 9
        assert 0 < point["utilization"] <= 1.0

    def test_geometry_series_caches_per_geometry(self):
        for cols in (8, 16, 8, 16):
            sharded_robustness_point(cols, trials=2)
        stats = plan_cache_stats()
        assert stats["misses"] == 2 and stats["hits"] == 2

    def test_cached_sweep_byte_identical_to_cold(self, tmp_path):
        points = [{"macro_cols": c, "sigma": s, "seed": 0, "trials": 2}
                  for c in (8, 16) for s in (0.5, 1.5)]
        cold = Sweep(tmp_path / "cold.jsonl", sharded_robustness_point)
        cold.run_all(points)
        warm = Sweep(tmp_path / "warm.jsonl", sharded_robustness_point)
        warm.run_all(points)          # shard grids already programmed
        assert plan_cache_stats()["hits"] > 0
        assert (tmp_path / "warm.jsonl").read_bytes() == \
            (tmp_path / "cold.jsonl").read_bytes()

    def test_trial_chunk_never_changes_the_record(self):
        whole = sharded_robustness_point(16, trials=4)
        chunked = sharded_robustness_point(16, trials=4, trial_chunk=1)
        assert whole == chunked


class TestRateProgressTrials:
    def test_reports_trials_per_sec(self):
        messages = []
        progress = RateProgress(2, sink=messages.append,
                                trials_per_point=32)
        progress("completed p0")
        assert "points/sec" in messages[0]
        assert "trials/sec" in messages[0]
        # rate is sampled live, so compare through one snapshot only.
        assert progress.trial_rate > progress.rate

    def test_single_trial_keeps_legacy_format(self):
        messages = []
        RateProgress(1, sink=messages.append)("completed p0")
        assert "trials/sec" not in messages[0]
