"""Tests for the resumable parameter sweep (repro.experiments.sweep)."""

import json

import pytest

from repro.experiments import Sweep, grid


class TestGrid:
    def test_cartesian_product(self):
        points = grid(a=(1, 2), b=("x", "y", "z"))
        assert len(points) == 6
        assert {"a": 1, "b": "x"} in points
        assert {"a": 2, "b": "z"} in points

    def test_row_major_order(self):
        points = grid(a=(1, 2), b=(10, 20))
        assert points[0] == {"a": 1, "b": 10}
        assert points[1] == {"a": 1, "b": 20}

    def test_single_axis(self):
        assert grid(mult=(1, 2, 4)) == [{"mult": 1}, {"mult": 2},
                                        {"mult": 4}]

    def test_empty_axis_raises(self):
        with pytest.raises(ValueError, match="empty"):
            grid(a=())

    def test_no_axes_raises(self):
        with pytest.raises(ValueError, match="at least one"):
            grid()


class TestSweep:
    @staticmethod
    def square(x, offset=0):
        return {"y": x * x + offset}

    def test_runs_all_points(self, tmp_path):
        sweep = Sweep(tmp_path / "s.json", self.square)
        records = sweep.run_all(grid(x=(1, 2, 3)))
        assert [r["metrics"]["y"] for r in records] == [1.0, 4.0, 9.0]
        assert len(sweep) == 3

    def test_persists_incrementally(self, tmp_path):
        path = tmp_path / "s.json"
        sweep = Sweep(path, self.square)
        iterator = sweep.run(grid(x=(1, 2)))
        next(iterator)
        # First point already on disk (one JSONL record) before the
        # second is computed.
        lines = path.read_text().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["metrics"] == {"y": 1.0}

    def test_resume_skips_completed(self, tmp_path):
        path = tmp_path / "s.json"
        calls = []

        def fn(x):
            calls.append(x)
            return {"y": float(x)}

        Sweep(path, fn).run_all(grid(x=(1, 2)))
        assert calls == [1, 2]
        # New Sweep over the same file: only the new point runs.
        Sweep(path, fn).run_all(grid(x=(1, 2, 3)))
        assert calls == [1, 2, 3]

    def test_crash_recovery_loses_only_in_flight_point(self, tmp_path):
        path = tmp_path / "s.json"

        def fragile(x):
            if x == 3:
                raise RuntimeError("boom")
            return {"y": float(x)}

        sweep = Sweep(path, fragile)
        with pytest.raises(RuntimeError):
            sweep.run_all(grid(x=(1, 2, 3)))
        resumed = Sweep(path, self.square)
        assert len(resumed) == 2
        assert resumed.completed({"x": 1})
        assert not resumed.completed({"x": 3})

    def test_point_identity_is_order_independent(self, tmp_path):
        sweep = Sweep(tmp_path / "s.json",
                      lambda a, b: {"y": float(a + b)})
        sweep.run_all([{"a": 1, "b": 2}])
        assert sweep.completed({"b": 2, "a": 1})

    def test_result_lookup(self, tmp_path):
        sweep = Sweep(tmp_path / "s.json", self.square)
        sweep.run_all(grid(x=(4,)))
        assert sweep.result({"x": 4}) == {"y": 16.0}
        with pytest.raises(KeyError):
            sweep.result({"x": 99})

    def test_non_numeric_metrics_rejected(self, tmp_path):
        sweep = Sweep(tmp_path / "s.json", lambda x: {"y": "nope"})
        with pytest.raises(TypeError, match="numeric"):
            sweep.run_all(grid(x=(1,)))

    def test_series_extraction(self, tmp_path):
        sweep = Sweep(tmp_path / "s.json",
                      lambda x, mode: {"acc": x * (2 if mode == "b" else 1)})
        sweep.run_all(grid(x=(3, 1, 2), mode=("a", "b")))
        xs, ys = sweep.series("x", "acc", where={"mode": "b"})
        assert xs == [1, 2, 3]          # sorted by x
        assert ys == [2.0, 4.0, 6.0]

    def test_progress_callback_fires_per_completed_point(self, tmp_path):
        messages = []
        sweep = Sweep(tmp_path / "s.json", self.square)
        sweep.run_all(grid(x=(1,)), progress=messages.append)
        assert len(messages) == 1 and "completed" in messages[0]
        # Resumed points do not re-fire progress (nothing was computed).
        sweep.run_all(grid(x=(1,)), progress=messages.append)
        assert len(messages) == 1

    def test_rejects_non_sweep_file(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"not": "a list"}')
        with pytest.raises(ValueError, match="not a sweep"):
            Sweep(path, self.square)


class TestJsonlStore:
    """Append-only persistence and legacy-file migration."""

    @staticmethod
    def square(x):
        return {"y": float(x * x)}

    def test_completed_points_append_not_rewrite(self, tmp_path):
        path = tmp_path / "s.jsonl"
        sweep = Sweep(path, self.square)
        sweep.run_all(grid(x=(1, 2)))
        first_two = path.read_text()
        sweep.run_all(grid(x=(1, 2, 3)))
        # The earlier bytes are untouched; the new point is an append.
        assert path.read_text().startswith(first_two)
        assert len(path.read_text().splitlines()) == 3

    def test_legacy_json_array_migrates_once(self, tmp_path):
        path = tmp_path / "legacy.json"
        records = [{"params": {"x": 1}, "metrics": {"y": 1.0}},
                   {"params": {"x": 2}, "metrics": {"y": 4.0}}]
        path.write_text(json.dumps(records, indent=1))
        sweep = Sweep(path, self.square)
        assert len(sweep) == 2
        assert sweep.result({"x": 2}) == {"y": 4.0}
        # The file is now line-oriented and loads as such.
        text = path.read_text()
        assert not text.lstrip().startswith("[")
        assert [json.loads(line) for line in text.splitlines()] == records
        assert len(Sweep(path, self.square)) == 2

    def test_blank_lines_tolerated(self, tmp_path):
        path = tmp_path / "s.jsonl"
        Sweep(path, self.square).run_all(grid(x=(1,)))
        path.write_text(path.read_text() + "\n")
        assert len(Sweep(path, self.square)) == 1

    def test_torn_final_line_drops_and_resumes(self, tmp_path):
        # A kill mid-append leaves a partial final record; loading must
        # keep the completed prefix, heal the file, and resume.
        path = tmp_path / "s.jsonl"
        Sweep(path, self.square).run_all(grid(x=(1, 2)))
        path.write_text(path.read_text() + '{"params": {"x": 3}, "met')
        with pytest.warns(UserWarning, match="partially written"):
            sweep = Sweep(path, self.square)
        assert len(sweep) == 2 and not sweep.completed({"x": 3})
        sweep.run_all(grid(x=(1, 2, 3)))
        records = [json.loads(line) for line in
                   path.read_text().splitlines()]
        assert [r["params"]["x"] for r in records] == [1, 2, 3]

    def test_torn_line_mid_file_still_rejected(self, tmp_path):
        path = tmp_path / "s.jsonl"
        Sweep(path, self.square).run_all(grid(x=(1, 2)))
        lines = path.read_text().splitlines()
        path.write_text("\n".join([lines[0][:20], lines[1]]) + "\n")
        with pytest.raises(ValueError, match="not a sweep record"):
            Sweep(path, self.square)
