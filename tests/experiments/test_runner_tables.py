"""Training runner, cross-validation protocol, table rendering, scales."""

import numpy as np
import pytest

from repro import nn
from repro.data.dataset import ArrayDataset
from repro.experiments import (CrossValResult, EcgTask, EegTask, TrainConfig,
                               cross_validate, current_scale,
                               evaluate_accuracy, evaluate_topk, render_series,
                               render_table, train_model, PAPER_RESULTS)
from repro.models import BinarizationMode


def _toy_dataset(rng, n=80, d=6):
    x = rng.standard_normal((n, d))
    y = (x[:, 0] + 0.5 * x[:, 1] > 0).astype(np.int64)
    return ArrayDataset(x, y)


def _mlp_factory(rng_unused=None):
    def factory(rng):
        return nn.Sequential(nn.Linear(6, 16, rng=rng), nn.Tanh(),
                             nn.Linear(16, 2, rng=rng))
    return factory


class TestTrainModel:
    def test_learns_toy_problem(self, rng):
        ds = _toy_dataset(rng)
        model = _mlp_factory()(rng)
        result = train_model(model, ds.inputs, ds.labels,
                             TrainConfig(epochs=40, batch_size=16, lr=0.01,
                                         seed=1))
        assert result.final_accuracy > 0.9

    def test_history_tracking(self, rng):
        ds = _toy_dataset(rng)
        model = _mlp_factory()(rng)
        result = train_model(model, ds.inputs[:60], ds.labels[:60],
                             TrainConfig(epochs=5, track_history=True,
                                         eval_topk=(1,), seed=1),
                             ds.inputs[60:], ds.labels[60:])
        assert len(result.history) == 5
        assert all("top1" in rec for rec in result.history)
        assert result.history[0]["epoch"] == 1.0

    def test_deterministic_given_seed(self, rng):
        ds = _toy_dataset(rng)
        accs = []
        for _ in range(2):
            model = _mlp_factory()(np.random.default_rng(0))
            res = train_model(model, ds.inputs, ds.labels,
                              TrainConfig(epochs=5, seed=9))
            accs.append(res.final_accuracy)
        assert accs[0] == accs[1]

    def test_sgd_option(self, rng):
        ds = _toy_dataset(rng)
        model = _mlp_factory()(rng)
        res = train_model(model, ds.inputs, ds.labels,
                          TrainConfig(epochs=20, optimizer="sgd", lr=0.05,
                                      seed=1))
        assert res.final_accuracy > 0.75

    def test_unknown_optimizer(self, rng):
        ds = _toy_dataset(rng)
        with pytest.raises(ValueError):
            train_model(_mlp_factory()(rng), ds.inputs, ds.labels,
                        TrainConfig(optimizer="rmsprop", epochs=1))


class TestEvaluate:
    def test_topk_ordering(self, rng):
        model = _mlp_factory()(rng)
        ds = _toy_dataset(rng)
        topk = evaluate_topk(model, ds.inputs, ds.labels, (1, 2))
        assert topk[2] == 1.0            # 2 classes: top-2 always right
        assert 0.0 <= topk[1] <= 1.0

    def test_eval_restores_training_mode(self, rng):
        model = nn.Sequential(nn.Dropout(0.5, rng=rng),
                              nn.Linear(6, 2, rng=rng))
        model.train()
        ds = _toy_dataset(rng)
        evaluate_accuracy(model, ds.inputs, ds.labels)
        assert model.training

    def test_topk_ties_keep_lower_class_index(self):
        """Tied scores rank by ascending class index (stable sort).

        An unstable introsort scrambles the tied runners-up as soon as a
        distinct max forces pivoting, silently changing every top-k
        figure on score-degenerate models (e.g. freshly seeded BNNs).
        """
        class _Fixed(nn.module.Module):
            def __init__(self, row):
                super().__init__()
                self.row = np.asarray(row, dtype=np.float64)

            def forward(self, x):
                from repro.tensor import Tensor
                return Tensor(np.tile(self.row, (len(x.data), 1)))

        # Class 33 wins outright, all 63 others tie at zero: the ranking
        # must be [33, 0, 1, 2, ...], so label 1 first hits at depth 3.
        row = np.zeros(64)
        row[33] = 1.0
        model = _Fixed(row)
        inputs = np.zeros((5, 1))
        labels = np.full(5, 1, dtype=np.int64)
        topk = evaluate_topk(model, inputs, labels, ks=(1, 2, 3, 64))
        assert topk[1] == 0.0
        assert topk[2] == 0.0
        assert topk[3] == 1.0
        assert topk[64] == 1.0

    def test_topk_all_tied_scores_rank_by_class_index(self):
        class _Zeros(nn.module.Module):
            def forward(self, x):
                from repro.tensor import Tensor
                return Tensor(np.zeros((len(x.data), 64)))

        inputs = np.zeros((3, 1))
        topk = evaluate_topk(_Zeros(), inputs,
                             np.full(3, 63, dtype=np.int64), ks=(63, 64))
        assert topk[63] == 0.0             # last index loses every tie
        assert topk[64] == 1.0
        topk = evaluate_topk(_Zeros(), inputs,
                             np.zeros(3, dtype=np.int64), ks=(1,))
        assert topk[1] == 1.0              # first index wins every tie


class TestCrossValidate:
    def test_fold_count(self, rng):
        ds = _toy_dataset(rng, n=60)
        res = cross_validate(_mlp_factory(), ds,
                             TrainConfig(epochs=3, seed=1), k=4)
        assert len(res.fold_accuracies) == 4
        assert isinstance(res, CrossValResult)
        assert 0 <= res.mean <= 1 and res.std >= 0

    def test_repeats_multiply_folds(self, rng):
        ds = _toy_dataset(rng, n=40)
        res = cross_validate(_mlp_factory(), ds,
                             TrainConfig(epochs=2, seed=1), k=2, repeats=2)
        assert len(res.fold_accuracies) == 4

    def test_fit_hook_receives_training_split_only(self, rng):
        ds = _toy_dataset(rng, n=40)
        seen_sizes = []

        def hook(model, train_x):
            seen_sizes.append(len(train_x))

        cross_validate(_mlp_factory(), ds, TrainConfig(epochs=1, seed=1),
                       k=4, fit_hook=hook)
        assert seen_sizes == [30, 30, 30, 30]


class TestScalesAndTasks:
    def test_default_scale_is_bench(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        assert current_scale().name == "bench"

    def test_paper_scale_selectable(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "paper")
        scale = current_scale()
        assert scale.name == "paper"
        assert scale.ecg_folds == 5 and scale.ecg_epochs == 1000

    def test_invalid_scale_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "galactic")
        with pytest.raises(ValueError):
            current_scale()

    def test_ecg_task_builds_consistent_pieces(self):
        task = EcgTask()
        ds = task.dataset()
        assert ds.inputs.shape[1] == 12
        model = task.model_factory(BinarizationMode.REAL)(
            np.random.default_rng(0))
        task.fit_hook(model, ds.inputs[:10])
        from repro.tensor import Tensor
        assert model(Tensor(ds.inputs[:2])).shape == (2, 2)

    def test_eeg_task_builds_consistent_pieces(self):
        task = EegTask()
        ds = task.dataset()
        model = task.model_factory(BinarizationMode.REAL)(
            np.random.default_rng(0))
        from repro.tensor import Tensor
        assert model(Tensor(ds.inputs[:2])).shape == (2, 2)

    def test_paper_reference_values_present(self):
        assert PAPER_RESULTS["ecg"]["real"] == 0.963
        assert PAPER_RESULTS["imagenet_top1"]["bin_classifier"] == 0.70


class TestTables:
    def test_render_table_alignment(self):
        out = render_table("T", ["a", "bbb"], [["1", "2"], ["33", "4"]])
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[2] and "bbb" in lines[2]
        assert len(lines) == 6

    def test_render_series(self):
        out = render_series("S", "x", [1, 2],
                            {"y1": [0.1, 0.2], "y2": [0.3, 0.4]})
        assert "y1" in out and "0.3" in out
