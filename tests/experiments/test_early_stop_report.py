"""Tests for early stopping and the diagnostic-report evaluation."""

import numpy as np
import pytest

from repro.experiments import (TrainConfig, evaluate_accuracy,
                               evaluate_report, predict_scores, train_model)
from repro.nn import Linear, Sequential
from repro.nn.module import Module


def toy_problem(n=200, seed=0):
    """Linearly separable 2-class problem with a little noise."""
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, 4))
    y = (x[:, 0] + 0.5 * x[:, 1] > 0).astype(np.int64)
    return x, y


def toy_model(seed=0) -> Module:
    return Sequential(Linear(4, 8, rng=np.random.default_rng(seed)),
                      Linear(8, 2, rng=np.random.default_rng(seed + 1)))


class TestEarlyStopping:
    def test_requires_validation_set(self):
        x, y = toy_problem()
        with pytest.raises(ValueError, match="validation"):
            train_model(toy_model(), x, y,
                        TrainConfig(epochs=5, early_stop_patience=2))

    def test_stops_before_epoch_budget(self):
        x, y = toy_problem(300)
        result = train_model(
            toy_model(), x[:200], y[:200],
            TrainConfig(epochs=200, batch_size=32, lr=5e-2,
                        early_stop_patience=3, seed=1),
            val_inputs=x[200:], val_labels=y[200:])
        assert result.stopped_epoch is not None
        assert result.stopped_epoch < 200

    def test_no_stop_when_disabled(self):
        x, y = toy_problem(100)
        result = train_model(
            toy_model(), x[:80], y[:80],
            TrainConfig(epochs=5, batch_size=32, seed=1),
            val_inputs=x[80:], val_labels=y[80:])
        assert result.stopped_epoch is None

    def test_restores_best_weights(self):
        """Final accuracy equals the best validation accuracy seen."""
        x, y = toy_problem(300, seed=3)
        result = train_model(
            toy_model(seed=3), x[:200], y[:200],
            TrainConfig(epochs=60, batch_size=32, lr=5e-2,
                        early_stop_patience=4, track_history=True, seed=2),
            val_inputs=x[200:], val_labels=y[200:])
        best_seen = max(rec["top1"] for rec in result.history)
        assert result.final_accuracy == pytest.approx(best_seen, abs=1e-9)

    def test_restores_best_state_when_budget_exhausts(self):
        """The best epoch's weights come back even without a patience
        break: the epoch budget runs out, the last epoch is worse than
        the best one, and the restore must still happen."""
        x, y = toy_problem(300, seed=11)
        result = train_model(
            toy_model(seed=11), x[:200], y[:200],
            TrainConfig(epochs=8, batch_size=16, lr=0.3,
                        early_stop_patience=50, track_history=True,
                        seed=12),
            val_inputs=x[200:], val_labels=y[200:])
        assert result.stopped_epoch is None           # budget, not patience
        best = max(rec["top1"] for rec in result.history)
        assert result.history[-1]["top1"] < best      # last epoch not best
        assert result.final_accuracy == pytest.approx(best, abs=1e-9)

    def test_early_stop_keys_on_smallest_k(self):
        """With eval_topk=(2, 1) on a 2-class problem, top-2 saturates at
        1.0 from epoch one; if the stopper keyed on it, it would flatline
        immediately and restore epoch-1 weights.  It must key on the
        smallest k (top-1)."""
        x, y = toy_problem(300, seed=13)
        result = train_model(
            toy_model(seed=13), x[:200], y[:200],
            TrainConfig(epochs=40, batch_size=32, lr=5e-2,
                        early_stop_patience=3, eval_topk=(2, 1),
                        track_history=True, seed=14),
            val_inputs=x[200:], val_labels=y[200:])
        assert all(rec["top2"] == 1.0 for rec in result.history)
        best_top1 = max(rec["top1"] for rec in result.history)
        assert result.final_accuracy == pytest.approx(best_top1, abs=1e-9)
        # A top-2-keyed stopper would have quit at epoch patience + 1.
        assert result.stopped_epoch is None or result.stopped_epoch > 4

    def test_min_delta_makes_stopping_stricter(self):
        x, y = toy_problem(300, seed=4)

        def run(min_delta):
            return train_model(
                toy_model(seed=4), x[:200], y[:200],
                TrainConfig(epochs=100, batch_size=32, lr=5e-2,
                            early_stop_patience=3,
                            early_stop_min_delta=min_delta, seed=5),
                val_inputs=x[200:], val_labels=y[200:])

        lenient = run(0.0)
        strict = run(0.5)  # nothing improves by 50 points -> stops at once
        assert strict.stopped_epoch is not None
        if lenient.stopped_epoch is not None:
            assert strict.stopped_epoch <= lenient.stopped_epoch


class TestPredictScores:
    def test_shape_and_batching_agree(self):
        x, y = toy_problem(50)
        model = toy_model()
        small = predict_scores(model, x, batch_size=7)
        large = predict_scores(model, x, batch_size=64)
        assert small.shape == (50, 2)
        assert np.allclose(small, large)

    def test_respects_eval_mode_restoration(self):
        x, _ = toy_problem(10)
        model = toy_model()
        model.train()
        predict_scores(model, x)
        assert model.training

    def test_argmax_consistent_with_accuracy(self):
        x, y = toy_problem(60)
        model = toy_model()
        scores = predict_scores(model, x)
        manual = float((scores.argmax(axis=1) == y).mean())
        assert evaluate_accuracy(model, x, y) == pytest.approx(manual)


class TestEvaluateReport:
    def test_report_fields(self):
        x, y = toy_problem(300, seed=6)
        model = toy_model(seed=6)
        train_model(model, x[:200], y[:200],
                    TrainConfig(epochs=40, batch_size=32, lr=5e-2, seed=7))
        report = evaluate_report(model, x[200:], y[200:])
        assert report.accuracy > 0.8
        assert report.auc is not None and report.auc > 0.85
        assert report.confusion.sum() == 100

    def test_accuracy_matches_evaluate_accuracy(self):
        x, y = toy_problem(80, seed=8)
        model = toy_model(seed=8)
        report = evaluate_report(model, x, y)
        assert report.accuracy == pytest.approx(
            evaluate_accuracy(model, x, y))

    def test_multiclass_rejected(self):
        rng = np.random.default_rng(9)
        model = Sequential(Linear(4, 3, rng=rng))
        with pytest.raises(ValueError, match="binary"):
            evaluate_report(model, rng.normal(size=(5, 4)),
                            np.zeros(5, dtype=np.int64))
