"""Regenerate the committed golden plan artifacts.

The fixtures are plan artifacts of the :func:`repro.models.golden_classifier`
demo models (EEG and ECG, fully binarized, lowered).  Every parameter and
batch-norm statistic of those models is a direct PCG64 draw — no matmul
touches them — so this script writes byte-stable array content on any
platform, and the golden tests can compare a fresh save against the
committed file array-for-array.

Run it only when the artifact format changes intentionally (bump
``FORMAT_VERSION`` first):

    PYTHONPATH=src python tests/fixtures/plans/make_fixtures.py
"""

import pathlib

HERE = pathlib.Path(__file__).parent


def main() -> None:
    from repro.io import save_bundle, save_plan
    from repro.models import GOLDEN_NAMES, golden_classifier
    from repro.runtime import compile

    plans = {}
    for name in GOLDEN_NAMES:
        model, _ = golden_classifier(name)
        plan = compile(model, backend="reference", lower_features=True)
        plans[name] = plan
        path = save_plan(plan, HERE / f"{name}_full_binary.npz",
                         overwrite=True)
        print(f"wrote {path} ({path.stat().st_size} bytes)")
    # The same plans again as one multi-tenant bundle: the golden fixture
    # of the bundle format and the co-residency/serving tests.
    path = save_bundle(plans, HERE / "eeg_ecg_bundle.npz", overwrite=True)
    print(f"wrote {path} ({path.stat().st_size} bytes)")


if __name__ == "__main__":
    main()
