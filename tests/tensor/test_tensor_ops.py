"""Forward-value semantics of Tensor operations."""

import numpy as np
import pytest

from repro.tensor import Tensor, no_grad, is_grad_enabled


class TestConstruction:
    def test_integer_input_promoted_to_float(self):
        t = Tensor([1, 2, 3])
        assert t.dtype.kind == "f"

    def test_shape_ndim_size(self):
        t = Tensor(np.zeros((2, 3, 4)))
        assert t.shape == (2, 3, 4)
        assert t.ndim == 3
        assert t.size == 24

    def test_item_on_scalar(self):
        assert Tensor(3.5).item() == 3.5

    def test_zeros_ones_randn(self, rng):
        assert np.all(Tensor.zeros(2, 3).data == 0)
        assert np.all(Tensor.ones(4).data == 1)
        assert Tensor.randn(5, 6, rng=rng).shape == (5, 6)

    def test_detach_shares_data_but_no_grad(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        d = t.detach()
        assert not d.requires_grad
        assert d.data is t.data


class TestArithmetic:
    def test_add_sub_mul_div(self):
        a = Tensor([2.0, 4.0])
        b = Tensor([1.0, 2.0])
        assert np.allclose((a + b).data, [3, 6])
        assert np.allclose((a - b).data, [1, 2])
        assert np.allclose((a * b).data, [2, 8])
        assert np.allclose((a / b).data, [2, 2])

    def test_scalar_operands(self):
        a = Tensor([1.0, 2.0])
        assert np.allclose((a + 1).data, [2, 3])
        assert np.allclose((1 + a).data, [2, 3])
        assert np.allclose((2 - a).data, [1, 0])
        assert np.allclose((a * 3).data, [3, 6])
        assert np.allclose((6 / a).data, [6, 3])

    def test_broadcasting_add(self):
        a = Tensor(np.ones((2, 3)))
        b = Tensor(np.arange(3, dtype=float))
        assert (a + b).shape == (2, 3)

    def test_pow(self):
        a = Tensor([2.0, 3.0])
        assert np.allclose((a ** 2).data, [4, 9])

    def test_pow_rejects_tensor_exponent(self):
        with pytest.raises(TypeError):
            Tensor([1.0]) ** Tensor([2.0])

    def test_matmul_2d(self, rng):
        a = rng.standard_normal((3, 4))
        b = rng.standard_normal((4, 5))
        assert np.allclose((Tensor(a) @ Tensor(b)).data, a @ b)

    def test_matmul_vector_cases(self, rng):
        a = rng.standard_normal(4)
        m = rng.standard_normal((4, 5))
        assert np.allclose((Tensor(a) @ Tensor(m)).data, a @ m)
        assert np.allclose((Tensor(m.T) @ Tensor(a)).data, m.T @ a)
        b = rng.standard_normal(4)
        assert np.allclose((Tensor(a) @ Tensor(b)).data, a @ b)


class TestElementwise:
    def test_exp_log_sqrt_tanh(self, rng):
        x = np.abs(rng.standard_normal(10)) + 0.1
        t = Tensor(x)
        assert np.allclose(t.exp().data, np.exp(x))
        assert np.allclose(t.log().data, np.log(x))
        assert np.allclose(t.sqrt().data, np.sqrt(x))
        assert np.allclose(t.tanh().data, np.tanh(x))

    def test_relu(self):
        t = Tensor([-1.0, 0.0, 2.0])
        assert np.allclose(t.relu().data, [0, 0, 2])

    def test_hardtanh(self):
        t = Tensor([-3.0, -0.5, 0.5, 3.0])
        assert np.allclose(t.hardtanh().data, [-1, -0.5, 0.5, 1])

    def test_sigmoid_range(self, rng):
        t = Tensor(rng.standard_normal(100) * 10)
        s = t.sigmoid().data
        assert np.all((s > 0) & (s < 1))

    def test_abs(self):
        assert np.allclose(Tensor([-2.0, 3.0]).abs().data, [2, 3])

    def test_clip(self):
        t = Tensor([-5.0, 0.5, 5.0])
        assert np.allclose(t.clip(-1, 1).data, [-1, 0.5, 1])

    def test_maximum(self):
        a = Tensor([1.0, 5.0])
        b = Tensor([3.0, 2.0])
        assert np.allclose(a.maximum(b).data, [3, 5])

    def test_sign_ste_is_strictly_binary(self, rng):
        x = rng.standard_normal(1000)
        x[0] = 0.0
        out = Tensor(x).sign_ste().data
        assert set(np.unique(out)) <= {-1.0, 1.0}
        assert out[0] == 1.0  # sign(0) = +1 convention


class TestReductionsAndShape:
    def test_sum_axis_keepdims(self, rng):
        x = rng.standard_normal((3, 4, 5))
        t = Tensor(x)
        assert np.allclose(t.sum().data, x.sum())
        assert np.allclose(t.sum(axis=1).data, x.sum(axis=1))
        assert np.allclose(t.sum(axis=(0, 2), keepdims=True).data,
                           x.sum(axis=(0, 2), keepdims=True))

    def test_mean_var(self, rng):
        x = rng.standard_normal((4, 6))
        t = Tensor(x)
        assert np.allclose(t.mean(axis=0).data, x.mean(axis=0))
        assert np.allclose(t.var(axis=0).data, x.var(axis=0))

    def test_max(self, rng):
        x = rng.standard_normal((3, 5))
        assert np.allclose(Tensor(x).max(axis=1).data, x.max(axis=1))

    def test_reshape_transpose(self, rng):
        x = rng.standard_normal((2, 3, 4))
        t = Tensor(x)
        assert t.reshape(6, 4).shape == (6, 4)
        assert t.reshape((4, 6)).shape == (4, 6)
        assert np.allclose(t.transpose((2, 0, 1)).data, x.transpose(2, 0, 1))
        assert np.allclose(Tensor(x[0]).T.data, x[0].T)

    def test_flatten_from(self, rng):
        t = Tensor(rng.standard_normal((2, 3, 4)))
        assert t.flatten_from(1).shape == (2, 12)

    def test_getitem(self, rng):
        x = rng.standard_normal((4, 5))
        t = Tensor(x)
        assert np.allclose(t[1].data, x[1])
        assert np.allclose(t[:, 2].data, x[:, 2])

    def test_pad(self):
        t = Tensor(np.ones((2, 2)))
        p = t.pad(((1, 1), (0, 2)))
        assert p.shape == (4, 4)
        assert p.data[0, 0] == 0 and p.data[1, 0] == 1

    def test_concatenate(self, rng):
        a, b = rng.standard_normal((2, 3)), rng.standard_normal((4, 3))
        out = Tensor.concatenate([Tensor(a), Tensor(b)], axis=0)
        assert np.allclose(out.data, np.concatenate([a, b]))


class TestSoftmax:
    def test_log_softmax_normalizes(self, rng):
        t = Tensor(rng.standard_normal((4, 7)))
        probs = np.exp(t.log_softmax(axis=1).data)
        assert np.allclose(probs.sum(axis=1), 1.0)

    def test_softmax_stable_for_large_logits(self):
        t = Tensor([[1000.0, 1001.0]])
        s = t.softmax(axis=1).data
        assert np.isfinite(s).all()
        assert np.allclose(s.sum(), 1.0)


class TestGradMode:
    def test_no_grad_disables_graph(self):
        with no_grad():
            assert not is_grad_enabled()
            t = Tensor([1.0], requires_grad=True)
            out = t * 2
            assert not out.requires_grad
        assert is_grad_enabled()

    def test_requires_grad_propagates(self):
        a = Tensor([1.0], requires_grad=True)
        b = Tensor([2.0])
        assert (a + b).requires_grad
        assert not (b * b).requires_grad
