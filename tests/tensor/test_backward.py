"""Gradient correctness of every Tensor operation (finite differences)."""

import numpy as np
import pytest

from repro.tensor import Tensor, check_gradients


def _t(rng, *shape):
    return Tensor(rng.standard_normal(shape), requires_grad=True)


class TestBasicOpGradients:
    def test_add_broadcast(self, rng):
        a, b = _t(rng, 3, 4), _t(rng, 4)
        check_gradients(lambda a, b: (a + b).sum(), [a, b])

    def test_sub_rsub(self, rng):
        a = _t(rng, 5)
        check_gradients(lambda a: (3.0 - a).sum(), [a])

    def test_mul_broadcast(self, rng):
        a, b = _t(rng, 2, 3), _t(rng, 1, 3)
        check_gradients(lambda a, b: (a * b).sum(), [a, b])

    def test_div(self, rng):
        a = _t(rng, 4)
        b = Tensor(np.abs(rng.standard_normal(4)) + 1.0, requires_grad=True)
        check_gradients(lambda a, b: (a / b).sum(), [a, b])

    def test_pow(self, rng):
        a = Tensor(np.abs(rng.standard_normal(5)) + 0.5, requires_grad=True)
        check_gradients(lambda a: (a ** 3).sum(), [a])

    def test_neg(self, rng):
        a = _t(rng, 3)
        check_gradients(lambda a: (-a).sum(), [a])

    def test_matmul(self, rng):
        a, b = _t(rng, 3, 4), _t(rng, 4, 2)
        check_gradients(lambda a, b: (a @ b).sum(), [a, b])

    def test_matmul_vector(self, rng):
        a, b = _t(rng, 4), _t(rng, 4)
        check_gradients(lambda a, b: a @ b, [a, b])

    def test_matmul_batched(self, rng):
        a, b = _t(rng, 2, 3, 4), _t(rng, 2, 4, 5)
        check_gradients(lambda a, b: (a @ b).sum(), [a, b])


class TestElementwiseGradients:
    def test_exp_log_sqrt(self, rng):
        a = Tensor(np.abs(rng.standard_normal(6)) + 0.5, requires_grad=True)
        check_gradients(lambda a: a.exp().sum(), [a])
        check_gradients(lambda a: a.log().sum(), [a])
        check_gradients(lambda a: a.sqrt().sum(), [a])

    def test_tanh_sigmoid(self, rng):
        a = _t(rng, 6)
        check_gradients(lambda a: a.tanh().sum(), [a])
        check_gradients(lambda a: a.sigmoid().sum(), [a])

    def test_relu_away_from_kink(self, rng):
        data = rng.standard_normal(20)
        data[np.abs(data) < 0.1] += 0.2
        a = Tensor(data, requires_grad=True)
        check_gradients(lambda a: a.relu().sum(), [a])

    def test_hardtanh_away_from_kinks(self, rng):
        data = rng.uniform(-0.8, 0.8, 10)
        a = Tensor(data, requires_grad=True)
        check_gradients(lambda a: a.hardtanh().sum(), [a])

    def test_abs_away_from_zero(self, rng):
        data = rng.standard_normal(10)
        data[np.abs(data) < 0.1] = 0.5
        a = Tensor(data, requires_grad=True)
        check_gradients(lambda a: a.abs().sum(), [a])

    def test_maximum(self, rng):
        a, b = _t(rng, 8), _t(rng, 8)
        # keep operands apart so the subgradient is unambiguous
        b.data += np.where(np.abs(a.data - b.data) < 0.1, 0.5, 0.0)
        check_gradients(lambda a, b: a.maximum(b).sum(), [a, b])


class TestReductionGradients:
    def test_sum_axes(self, rng):
        a = _t(rng, 3, 4, 2)
        check_gradients(lambda a: a.sum(axis=1).sum(), [a])
        check_gradients(lambda a: a.sum(axis=(0, 2)).sum(), [a])

    def test_mean(self, rng):
        a = _t(rng, 3, 5)
        check_gradients(lambda a: a.mean(axis=0).sum(), [a])
        check_gradients(lambda a: a.mean(), [a])

    def test_var(self, rng):
        a = _t(rng, 4, 5)
        check_gradients(lambda a: a.var(axis=0).sum(), [a], rtol=1e-3)

    def test_max_unique(self, rng):
        a = Tensor(rng.permutation(20).astype(float).reshape(4, 5),
                   requires_grad=True)
        check_gradients(lambda a: a.max(axis=1).sum(), [a])


class TestShapeGradients:
    def test_reshape_transpose(self, rng):
        a = _t(rng, 2, 6)
        check_gradients(lambda a: (a.reshape(3, 4) ** 2).sum(), [a])
        check_gradients(lambda a: (a.transpose() ** 2).sum(), [a])

    def test_getitem(self, rng):
        a = _t(rng, 4, 5)
        check_gradients(lambda a: (a[1:3, ::2] ** 2).sum(), [a])

    def test_pad(self, rng):
        a = _t(rng, 2, 3)
        check_gradients(lambda a: (a.pad(((1, 0), (2, 1))) ** 2).sum(), [a])

    def test_concatenate(self, rng):
        a, b = _t(rng, 2, 3), _t(rng, 4, 3)
        check_gradients(
            lambda a, b: (Tensor.concatenate([a, b], axis=0) ** 2).sum(),
            [a, b])

    def test_log_softmax(self, rng):
        a = _t(rng, 3, 6)
        check_gradients(lambda a: (a.log_softmax(axis=1) ** 2).sum(), [a],
                        rtol=1e-3)


class TestGraphSemantics:
    def test_shared_subexpression_accumulates(self, rng):
        a = _t(rng, 4)
        b = a * 2
        out = (b + b * b).sum()
        out.backward()
        expected = 2.0 + 8.0 * a.data   # d/da (2a + 4a^2)
        assert np.allclose(a.grad, expected)

    def test_grad_accumulates_across_backward_calls(self, rng):
        a = _t(rng, 3)
        (a * 2).sum().backward()
        first = a.grad.copy()
        (a * 2).sum().backward()
        assert np.allclose(a.grad, 2 * first)

    def test_zero_grad(self, rng):
        a = _t(rng, 3)
        (a * a).sum().backward()
        a.zero_grad()
        assert a.grad is None

    def test_backward_requires_scalar_or_explicit_grad(self, rng):
        a = _t(rng, 3)
        with pytest.raises(RuntimeError):
            (a * 2).backward()
        (a * 2).backward(np.ones(3))
        assert np.allclose(a.grad, 2.0)

    def test_backward_on_non_grad_tensor_raises(self):
        with pytest.raises(RuntimeError):
            Tensor([1.0]).sum().backward()

    def test_deep_chain_no_recursion_error(self, rng):
        a = _t(rng, 2)
        x = a
        for _ in range(3000):
            x = x + 1.0
        x.sum().backward()
        assert np.allclose(a.grad, 1.0)

    def test_diamond_graph(self, rng):
        a = _t(rng, 3)
        left = a * 3
        right = a * 5
        (left + right).sum().backward()
        assert np.allclose(a.grad, 8.0)

    def test_sign_ste_gradient_window(self):
        a = Tensor(np.array([-2.0, -0.5, 0.5, 2.0]), requires_grad=True)
        a.sign_ste(clip=1.0).sum().backward()
        assert np.allclose(a.grad, [0.0, 1.0, 1.0, 0.0])
