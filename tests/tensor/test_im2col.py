"""im2col/col2im correctness: values against naive convolution, and the
adjoint (scatter-add) property col2im must satisfy."""

import numpy as np
import pytest

from repro.tensor import (col2im_1d, col2im_2d, conv_output_length, im2col_1d,
                          im2col_2d)


def naive_conv1d(x, w, stride=1, padding=0):
    n, c_in, length = x.shape
    c_out, _, k = w.shape
    if padding:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding)))
    l_out = (x.shape[2] - k) // stride + 1
    out = np.zeros((n, c_out, l_out))
    for i in range(l_out):
        window = x[:, :, i * stride:i * stride + k]
        out[:, :, i] = np.einsum("nck,ock->no", window, w)
    return out


def naive_conv2d(x, w, stride=(1, 1), padding=(0, 0)):
    n, c_in, h, wd = x.shape
    c_out, _, kh, kw = w.shape
    ph, pw = padding
    sh, sw = stride
    if ph or pw:
        x = np.pad(x, ((0, 0), (0, 0), (ph, ph), (pw, pw)))
    h_out = (x.shape[2] - kh) // sh + 1
    w_out = (x.shape[3] - kw) // sw + 1
    out = np.zeros((n, c_out, h_out, w_out))
    for i in range(h_out):
        for j in range(w_out):
            window = x[:, :, i * sh:i * sh + kh, j * sw:j * sw + kw]
            out[:, :, i, j] = np.einsum("nchw,ochw->no", window, w)
    return out


class TestOutputLength:
    def test_basic(self):
        assert conv_output_length(10, 3) == 8
        assert conv_output_length(10, 3, stride=2) == 4
        assert conv_output_length(10, 3, padding=1) == 10

    def test_paper_geometries(self):
        # Table I: 960 + 2*15 - 30 + 1 = 961; pool (961-30)//15+1 = 63.
        assert conv_output_length(960, 30, 1, 15) == 961
        assert conv_output_length(961, 30, 15) == 63
        # Table II chain: 750 -> 738 -> 369 -> 359 -> 179 -> 171 -> 165 -> 161
        assert conv_output_length(750, 13) == 738
        assert conv_output_length(369, 11) == 359
        assert conv_output_length(179, 9) == 171

    def test_kernel_too_large_raises(self):
        with pytest.raises(ValueError):
            conv_output_length(5, 7)


class TestIm2Col1d:
    @pytest.mark.parametrize("stride,padding", [(1, 0), (2, 0), (1, 3), (3, 2)])
    def test_matches_naive_conv(self, rng, stride, padding):
        x = rng.standard_normal((2, 3, 20))
        w = rng.standard_normal((4, 3, 5))
        cols = im2col_1d(x, 5, stride, padding)
        out = (cols @ w.reshape(4, -1).T).transpose(0, 2, 1)
        assert np.allclose(out, naive_conv1d(x, w, stride, padding))

    @pytest.mark.parametrize("stride,padding", [(1, 0), (2, 1), (3, 0)])
    def test_col2im_is_adjoint(self, rng, stride, padding):
        # <im2col(x), y> == <x, col2im(y)> for all x, y defines the adjoint.
        shape = (2, 3, 17)
        x = rng.standard_normal(shape)
        cols = im2col_1d(x, 4, stride, padding)
        y = rng.standard_normal(cols.shape)
        lhs = np.sum(cols * y)
        rhs = np.sum(x * col2im_1d(y, shape, 4, stride, padding))
        assert np.isclose(lhs, rhs)

    def test_col2im_shape_validation(self, rng):
        with pytest.raises(ValueError):
            col2im_1d(rng.standard_normal((2, 5, 9)), (2, 3, 17), 4)


class TestIm2Col2d:
    @pytest.mark.parametrize("stride,padding",
                             [((1, 1), (0, 0)), ((2, 1), (1, 0)),
                              ((2, 2), (1, 1))])
    def test_matches_naive_conv(self, rng, stride, padding):
        x = rng.standard_normal((2, 3, 9, 8))
        w = rng.standard_normal((4, 3, 3, 2))
        cols = im2col_2d(x, (3, 2), stride, padding)
        h_out = conv_output_length(9, 3, stride[0], padding[0])
        w_out = conv_output_length(8, 2, stride[1], padding[1])
        out = (cols @ w.reshape(4, -1).T).transpose(0, 2, 1).reshape(
            2, 4, h_out, w_out)
        assert np.allclose(out, naive_conv2d(x, w, stride, padding))

    @pytest.mark.parametrize("stride,padding",
                             [((1, 1), (0, 0)), ((2, 2), (1, 1))])
    def test_col2im_is_adjoint(self, rng, stride, padding):
        shape = (2, 3, 8, 7)
        x = rng.standard_normal(shape)
        cols = im2col_2d(x, (3, 3), stride, padding)
        y = rng.standard_normal(cols.shape)
        lhs = np.sum(cols * y)
        rhs = np.sum(x * col2im_2d(y, shape, (3, 3), stride, padding))
        assert np.isclose(lhs, rhs)

    def test_eeg_spatial_conv_geometry(self, rng):
        # The EEG model's second conv is 1x64 over (N, F, T, 64): collapses
        # the electrode axis entirely.
        x = rng.standard_normal((1, 2, 10, 64))
        cols = im2col_2d(x, (1, 64))
        assert cols.shape == (1, 10, 2 * 64)
