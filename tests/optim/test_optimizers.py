"""SGD, Adam, schedulers, gradient clipping."""

import numpy as np
import pytest

from repro import nn
from repro.nn.module import Parameter
from repro.optim import SGD, Adam, CosineAnnealingLR, StepLR, clip_grad_norm
from repro.tensor import Tensor


def quadratic_loss(param):
    """f(w) = sum((w - 3)^2), minimized at w = 3."""
    return ((param - Tensor(np.full_like(param.data, 3.0))) ** 2).sum()


class TestSGD:
    def test_single_step_matches_formula(self):
        p = Parameter(np.array([1.0, 2.0]))
        opt = SGD([p], lr=0.1)
        p.grad = np.array([1.0, -2.0])
        opt.step()
        assert np.allclose(p.data, [0.9, 2.2])

    def test_momentum_accumulates(self):
        p = Parameter(np.array([0.0]))
        opt = SGD([p], lr=1.0, momentum=0.5)
        p.grad = np.array([1.0])
        opt.step()            # v = 1, p = -1
        p.grad = np.array([1.0])
        opt.step()            # v = 1.5, p = -2.5
        assert np.allclose(p.data, [-2.5])

    def test_weight_decay(self):
        p = Parameter(np.array([10.0]))
        opt = SGD([p], lr=0.1, weight_decay=0.1)
        p.grad = np.array([0.0])
        opt.step()
        assert np.allclose(p.data, [10.0 - 0.1 * 1.0])

    def test_converges_on_quadratic(self):
        p = Parameter(np.zeros(3))
        opt = SGD([p], lr=0.05, momentum=0.5)
        for _ in range(200):
            loss = quadratic_loss(p)
            opt.zero_grad()
            loss.backward()
            opt.step()
        assert np.allclose(p.data, 3.0, atol=1e-3)

    def test_skips_none_grads(self):
        p = Parameter(np.array([1.0]))
        opt = SGD([p], lr=0.1)
        opt.step()   # no grad -> no change, no crash
        assert p.data[0] == 1.0

    def test_validation(self):
        p = Parameter(np.array([1.0]))
        with pytest.raises(ValueError):
            SGD([p], lr=-1.0)
        with pytest.raises(ValueError):
            SGD([p], lr=0.1, momentum=1.5)
        with pytest.raises(ValueError):
            SGD([], lr=0.1)


class TestAdam:
    def test_first_step_size_is_lr(self):
        # With bias correction, the first Adam step is ~lr * sign(grad).
        p = Parameter(np.array([0.0]))
        opt = Adam([p], lr=0.01)
        p.grad = np.array([123.0])
        opt.step()
        assert np.isclose(p.data[0], -0.01, rtol=1e-4)

    def test_converges_on_quadratic(self):
        p = Parameter(np.zeros(4))
        opt = Adam([p], lr=0.2)
        for _ in range(200):
            loss = quadratic_loss(p)
            opt.zero_grad()
            loss.backward()
            opt.step()
        assert np.allclose(p.data, 3.0, atol=1e-2)

    def test_trains_small_network(self, rng):
        model = nn.Sequential(nn.Linear(5, 16, rng=rng), nn.Tanh(),
                              nn.Linear(16, 2, rng=rng))
        X = rng.standard_normal((64, 5))
        y = (X[:, 0] * X[:, 1] > 0).astype(int)
        opt = Adam(model.parameters(), lr=0.02)
        loss_fn = nn.CrossEntropyLoss()
        first = None
        for _ in range(80):
            loss = loss_fn(model(Tensor(X)), y)
            if first is None:
                first = loss.item()
            opt.zero_grad()
            loss.backward()
            opt.step()
        assert loss.item() < 0.5 * first

    def test_beta_validation(self):
        p = Parameter(np.array([1.0]))
        with pytest.raises(ValueError):
            Adam([p], betas=(1.0, 0.9))


class TestSchedulers:
    def test_step_lr(self):
        p = Parameter(np.array([1.0]))
        opt = SGD([p], lr=1.0)
        sched = StepLR(opt, step_size=2, gamma=0.1)
        lrs = [sched.step() for _ in range(4)]
        assert np.allclose(lrs, [1.0, 0.1, 0.1, 0.01])

    def test_cosine_endpoints(self):
        p = Parameter(np.array([1.0]))
        opt = SGD([p], lr=1.0)
        sched = CosineAnnealingLR(opt, total_epochs=10)
        for _ in range(10):
            last = sched.step()
        assert np.isclose(last, 0.0, atol=1e-12)

    def test_validation(self):
        p = Parameter(np.array([1.0]))
        opt = SGD([p], lr=1.0)
        with pytest.raises(ValueError):
            StepLR(opt, step_size=0)
        with pytest.raises(ValueError):
            CosineAnnealingLR(opt, total_epochs=0)


class TestClipGradNorm:
    def test_no_clip_below_threshold(self):
        p = Parameter(np.array([1.0]))
        p.grad = np.array([3.0])
        norm = clip_grad_norm([p], max_norm=10.0)
        assert np.isclose(norm, 3.0)
        assert np.allclose(p.grad, [3.0])

    def test_clips_to_max_norm(self):
        p1 = Parameter(np.array([1.0]))
        p2 = Parameter(np.array([1.0]))
        p1.grad = np.array([3.0])
        p2.grad = np.array([4.0])
        clip_grad_norm([p1, p2], max_norm=1.0)
        total = np.sqrt(p1.grad ** 2 + p2.grad ** 2)
        assert np.isclose(total, 1.0)
