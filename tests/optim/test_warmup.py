"""Tests for the warmup learning-rate schedule."""

import numpy as np
import pytest

from repro.nn.module import Parameter
from repro.optim import SGD, CosineAnnealingLR, WarmupLR


def make_optimizer(lr=1.0):
    return SGD([Parameter(np.zeros(3))], lr=lr)


class TestWarmupLR:
    def test_starts_reduced(self):
        opt = make_optimizer(lr=1.0)
        WarmupLR(opt, warmup_epochs=5, start_factor=0.2)
        assert opt.lr == pytest.approx(0.2)

    def test_linear_ramp(self):
        opt = make_optimizer(lr=1.0)
        sched = WarmupLR(opt, warmup_epochs=4, start_factor=0.0 + 0.2)
        lrs = [sched.step() for _ in range(4)]
        assert lrs == sorted(lrs)
        assert lrs[-1] == pytest.approx(1.0)

    def test_holds_base_lr_after_warmup_without_inner(self):
        opt = make_optimizer(lr=0.5)
        sched = WarmupLR(opt, warmup_epochs=2)
        for _ in range(10):
            lr = sched.step()
        assert lr == pytest.approx(0.5)

    def test_delegates_to_inner_after_warmup(self):
        # The boundary step hands straight off to the inner schedule: no
        # epoch ever trains at the un-decayed base rate (the historic bug
        # trained the first post-warmup epoch at full base_lr).
        opt = make_optimizer(lr=1.0)
        cosine = CosineAnnealingLR(opt, total_epochs=10)
        sched = WarmupLR(opt, warmup_epochs=3, after=cosine)
        for _ in range(3):
            sched.step()
        first_decay = 0.5 * (1.0 + np.cos(np.pi * 1 / 10))
        assert opt.lr == pytest.approx(first_decay)
        assert sched.step() == pytest.approx(
            0.5 * (1.0 + np.cos(np.pi * 2 / 10)))

    def test_inner_epochs_only_advance_after_warmup(self):
        opt = make_optimizer(lr=1.0)
        cosine = CosineAnnealingLR(opt, total_epochs=10)
        sched = WarmupLR(opt, warmup_epochs=5, after=cosine)
        for _ in range(4):
            sched.step()
        assert cosine.epoch == 0     # untouched during the ramp ...
        sched.step()
        assert cosine.epoch == 1     # ... first stepped at the boundary

    def test_full_warmup_decay_trajectory(self):
        # Pin the whole composed schedule, epoch by epoch: linear ramp
        # for warmup_epochs - 1 steps, then cosine decay re-anchored at
        # base_lr from its first value on — one continuous trajectory
        # with no base_lr plateau at the seam.
        opt = make_optimizer(lr=2.0)
        cosine = CosineAnnealingLR(opt, total_epochs=4)
        sched = WarmupLR(opt, warmup_epochs=3, after=cosine,
                         start_factor=0.25)
        assert opt.lr == pytest.approx(0.5)            # epoch 0 trains here
        observed = [sched.step() for _ in range(8)]
        ramp = [2.0 * (0.25 + 0.75 * e / 3) for e in (1, 2)]
        decay = [2.0 * 0.5 * (1.0 + np.cos(np.pi * e / 4))
                 for e in (1, 2, 3, 4)]
        expected = ramp + decay + [0.0, 0.0]           # clamped past total
        assert observed == pytest.approx(expected)
        # Each step's return value is what the optimizer will train with.
        assert opt.lr == pytest.approx(observed[-1])

    def test_invalid_args_raise(self):
        opt = make_optimizer()
        with pytest.raises(ValueError, match="warmup_epochs"):
            WarmupLR(opt, warmup_epochs=0)
        with pytest.raises(ValueError, match="start_factor"):
            WarmupLR(opt, warmup_epochs=2, start_factor=0.0)
        with pytest.raises(ValueError, match="start_factor"):
            WarmupLR(opt, warmup_epochs=2, start_factor=1.5)
