"""Tests for the warmup learning-rate schedule."""

import numpy as np
import pytest

from repro.nn.module import Parameter
from repro.optim import SGD, CosineAnnealingLR, WarmupLR


def make_optimizer(lr=1.0):
    return SGD([Parameter(np.zeros(3))], lr=lr)


class TestWarmupLR:
    def test_starts_reduced(self):
        opt = make_optimizer(lr=1.0)
        WarmupLR(opt, warmup_epochs=5, start_factor=0.2)
        assert opt.lr == pytest.approx(0.2)

    def test_linear_ramp(self):
        opt = make_optimizer(lr=1.0)
        sched = WarmupLR(opt, warmup_epochs=4, start_factor=0.0 + 0.2)
        lrs = [sched.step() for _ in range(4)]
        assert lrs == sorted(lrs)
        assert lrs[-1] == pytest.approx(1.0)

    def test_holds_base_lr_after_warmup_without_inner(self):
        opt = make_optimizer(lr=0.5)
        sched = WarmupLR(opt, warmup_epochs=2)
        for _ in range(10):
            lr = sched.step()
        assert lr == pytest.approx(0.5)

    def test_delegates_to_inner_after_warmup(self):
        opt = make_optimizer(lr=1.0)
        cosine = CosineAnnealingLR(opt, total_epochs=10)
        sched = WarmupLR(opt, warmup_epochs=3, after=cosine)
        for _ in range(3):
            sched.step()
        assert opt.lr == pytest.approx(1.0)   # full rate at warmup end
        lr_after = sched.step()
        assert lr_after < 1.0                 # cosine decay has begun

    def test_inner_epochs_only_advance_after_warmup(self):
        opt = make_optimizer(lr=1.0)
        cosine = CosineAnnealingLR(opt, total_epochs=10)
        sched = WarmupLR(opt, warmup_epochs=5, after=cosine)
        for _ in range(5):
            sched.step()
        assert cosine.epoch == 0

    def test_invalid_args_raise(self):
        opt = make_optimizer()
        with pytest.raises(ValueError, match="warmup_epochs"):
            WarmupLR(opt, warmup_epochs=0)
        with pytest.raises(ValueError, match="start_factor"):
            WarmupLR(opt, warmup_epochs=2, start_factor=0.0)
        with pytest.raises(ValueError, match="start_factor"):
            WarmupLR(opt, warmup_epochs=2, start_factor=1.5)
