"""Multi-model serving: tenant routing, cross-tenant coalescing, and
the per-model observability surface.

The contracts: a bundle-backed daemon demuxes by model name with
bit-identical results per tenant, one executor wake can carry several
tenants' flushes, unknown models are client errors (400) listing what
is resident, and stats split per model while the aggregate keeps the
old single-model shape.
"""

import json
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.serve import (HttpFront, PlanServer, ServeClient,
                         ServeHTTPError, UnknownModel, fire,
                         render_tenant_table)

LONG = 1e9


class _SumPlan:
    def scores(self, inputs):
        rows = np.asarray(inputs, dtype=np.float64)
        totals = rows.reshape(len(rows), -1).sum(axis=1)
        return np.stack([totals, -totals], axis=1)


class _MaxPlan:
    """Different arity and input width from _SumPlan on purpose."""

    def scores(self, inputs):
        rows = np.asarray(inputs, dtype=np.float64)
        peak = rows.reshape(len(rows), -1).max(axis=1)
        return np.stack([peak, -peak, peak * 0.5], axis=1)


def _server(**kwargs) -> PlanServer:
    kwargs.setdefault("dtype", np.float64)
    kwargs.setdefault("input_shape", {"sum": (3,), "max": (5,)})
    kwargs.setdefault("window", 0.0)
    return PlanServer({"sum": _SumPlan(), "max": _MaxPlan()}, **kwargs)


class TestTenantRouting:
    def test_routes_by_model_bit_identically(self):
        server = _server()
        a = np.arange(6, dtype=np.float64).reshape(2, 3)
        b = np.arange(10, dtype=np.float64).reshape(2, 5)
        ha = server.submit(a, model="sum")
        hb = server.submit(b, model="max")
        assert ha.wait(10.0) and hb.wait(10.0)
        assert np.array_equal(ha.scores, _SumPlan().scores(a))
        assert np.array_equal(hb.scores, _MaxPlan().scores(b))
        assert ha.model == "sum" and hb.model == "max"
        server.close()

    def test_model_required_when_several_resident(self):
        server = _server()
        with pytest.raises(UnknownModel, match="must name a model"):
            server.submit(np.ones((1, 3)))
        server.close()

    def test_unknown_model_lists_residents(self):
        server = _server()
        with pytest.raises(UnknownModel) as info:
            server.submit(np.ones((1, 3)), model="ghost")
        assert info.value.available == ["max", "sum"]
        server.close()

    def test_model_optional_for_single_tenant_mapping(self):
        server = PlanServer({"only": _SumPlan()}, window=0.0,
                            dtype=np.float64, input_shape=(3,))
        handle = server.submit(np.ones((1, 3)))       # no model tag
        assert handle.wait(10.0)
        assert handle.model == "only"
        assert server.models() == ["only"]
        # Single-tenant aliases: aggregate stats ARE the tenant stats.
        assert server.stats.snapshot()["completed"] == 1
        server.close()

    def test_shape_validated_per_model(self):
        server = _server()
        with pytest.raises(ValueError, match="'max'"):
            server.submit(np.ones((1, 3)), model="max")
        server.close()

    def test_describe_models(self):
        server = _server(max_batch={"sum": 8, "max": 4})
        described = {d["name"]: d for d in server.describe_models()}
        assert set(described) == {"sum", "max"}
        assert described["sum"]["input_shape"] == [3]
        assert described["sum"]["max_batch"] == 8
        assert described["max"]["max_batch"] == 4
        server.close()


class TestCrossTenantCoalescing:
    def test_one_wake_flushes_every_ready_tenant(self):
        # Both tenants fill exactly at max_batch with a never-expiring
        # window: the executor's single wake must flush both queues
        # back-to-back (one batch each), not just the one that woke it.
        server = _server(max_batch={"sum": 4, "max": 4}, window=LONG)
        handles = []
        for i in range(3):
            handles.append(server.submit(np.full((1, 3), float(i)),
                                         model="sum"))
            handles.append(server.submit(np.full((1, 5), float(i)),
                                         model="max"))
        # The 4th submission to each side triggers the fill flush.
        handles.append(server.submit(np.ones((1, 3)), model="sum"))
        handles.append(server.submit(np.ones((1, 5)), model="max"))
        for handle in handles:
            assert handle.wait(10.0)
        snapshot = server.stats_snapshot()
        assert snapshot["models"]["sum"]["batches"] == 1
        assert snapshot["models"]["max"]["batches"] == 1
        assert snapshot["batches"] == 2          # aggregate saw both
        assert snapshot["models"]["sum"]["mean_fill"] == \
            pytest.approx(4.0)
        server.close()

    def test_concurrent_mixed_burst_bit_identical(self):
        import threading
        server = _server(max_batch=16, window=200e-6)
        rng = np.random.default_rng(7)
        jobs = []
        for i in range(30):
            if i % 2:
                jobs.append(("sum", rng.standard_normal((2, 3))))
            else:
                jobs.append(("max", rng.standard_normal((2, 5))))
        results = [None] * len(jobs)

        def worker(start):
            for i in range(start, len(jobs), 4):
                model, rows = jobs[i]
                results[i] = server.submit(rows, model=model)

        threads = [threading.Thread(target=worker, args=(s,))
                   for s in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        solo = {"sum": _SumPlan(), "max": _MaxPlan()}
        for (model, rows), handle in zip(jobs, results):
            assert handle.wait(10.0)
            assert np.array_equal(handle.scores,
                                  solo[model].scores(rows))
        server.close()

    def test_drain_serves_every_tenant(self):
        server = _server(window=LONG)     # nothing flushes until close
        a = server.submit(np.ones((2, 3)), model="sum")
        b = server.submit(np.ones((2, 5)), model="max")
        server.close(drain=True)
        assert a.wait(10.0) and b.wait(10.0)
        assert np.array_equal(a.scores, _SumPlan().scores(np.ones((2, 3))))
        assert np.array_equal(b.scores, _MaxPlan().scores(np.ones((2, 5))))

    def test_drop_fails_every_tenant(self):
        server = _server(window=LONG)
        a = server.submit(np.ones((1, 3)), model="sum")
        b = server.submit(np.ones((1, 5)), model="max")
        server.close(drain=False)
        assert a.wait(10.0) and b.wait(10.0)
        assert a.error is not None and b.error is not None


class TestPerModelStats:
    def test_snapshot_splits_per_model_and_aggregates(self):
        server = _server()
        for _ in range(3):
            server.submit(np.ones((1, 3)), model="sum").wait(10.0)
        server.submit(np.ones((1, 5)), model="max").wait(10.0)
        snapshot = server.stats_snapshot()
        assert snapshot["models"]["sum"]["completed"] == 3
        assert snapshot["models"]["max"]["completed"] == 1
        assert snapshot["completed"] == 4
        assert snapshot["models"]["sum"]["latency_ms"]["p50"] >= 0.0
        assert snapshot["models"]["sum"]["latency_samples"] == 3
        server.close()

    def test_render_tenant_table(self):
        server = _server()
        server.submit(np.ones((1, 3)), model="sum").wait(10.0)
        table = render_tenant_table(
            list(server.stats_snapshot()["models"].values()))
        assert "per-model serve stats" in table
        assert "sum" in table and "max" in table
        rendered = server.render_stats()
        assert "per-model serve stats" in rendered
        server.close()

    def test_rejections_attributed_to_the_model(self):
        server = _server(window=LONG, max_queue={"sum": 1, "max": 64})
        server.submit(np.ones((1, 3)), model="sum")
        from repro.serve import QueueFull
        with pytest.raises(QueueFull):
            server.submit(np.ones((1, 3)), model="sum")
        snapshot = server.stats_snapshot()
        assert snapshot["models"]["sum"]["rejected"] == 1
        assert snapshot["models"]["max"]["rejected"] == 0
        assert snapshot["rejected"] == 1
        server.close(drain=False)


class TestMultiModelHttp:
    @pytest.fixture
    def front(self):
        server = _server(max_batch=16, window=100e-6)
        front = HttpFront(server, port=0).start()
        yield front
        front.shutdown(drain=True)

    def test_predict_routes_and_tags_the_model(self, front):
        client = ServeClient(front.url)
        response = client.predict(np.ones((1, 5)), model="max")
        assert response["model"] == "max"
        assert np.array_equal(response["scores"],
                              _MaxPlan().scores(np.ones((1, 5))))
        client.close()

    def test_mixed_fire_with_tagged_requests(self, front):
        rng = np.random.default_rng(3)
        requests = [("sum", rng.standard_normal((1, 3))) if i % 2
                    else ("max", rng.standard_normal((1, 5)))
                    for i in range(8)]
        responses = fire(front.url, requests, threads=3)
        solo = {"sum": _SumPlan(), "max": _MaxPlan()}
        for (model, rows), response in zip(requests, responses):
            assert response["model"] == model
            assert np.array_equal(response["scores"],
                                  solo[model].scores(rows))

    def test_get_models_endpoint(self, front):
        client = ServeClient(front.url)
        models = client.models()
        assert {m["name"] for m in models} == {"sum", "max"}
        client.close()

    def test_unknown_model_is_400_with_residents(self, front):
        request = urllib.request.Request(
            front.url + "/v1/predict", method="POST",
            data=json.dumps({"model": "ghost",
                             "inputs": [[1.0, 2.0, 3.0]]}).encode(),
            headers={"Content-Type": "application/json"})
        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(request)
        assert info.value.code == 400
        body = json.loads(info.value.read())
        assert body["model"] == "ghost"
        assert body["available"] == ["max", "sum"]

    def test_missing_model_is_400_not_500(self, front):
        with pytest.raises(ServeHTTPError) as info:
            ServeClient(front.url).predict(np.ones((1, 3)))
        assert info.value.status == 400

    def test_structured_404_lists_routes(self, front):
        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(front.url + "/v1/nope")
        assert info.value.code == 404
        body = json.loads(info.value.read())
        assert body["error"] == "no such route"
        assert "POST /v1/predict" in body["routes"]
        assert "GET /v1/models" in body["routes"]

    def test_stats_endpoint_has_models_section(self, front):
        client = ServeClient(front.url)
        client.predict(np.ones((1, 3)), model="sum")
        stats = client.stats()
        assert stats["models"]["sum"]["completed"] == 1
        assert stats["completed"] == 1
        client.close()
