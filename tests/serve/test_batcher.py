"""Unit tests for the pure micro-batch coalescing core.

No threads, no clocks: every ``now`` below is a literal, so these pin
the policy itself — admission bounds, flush triggers, FIFO splits,
drain-don't-drop — exactly as the server relies on it.
"""

import numpy as np
import pytest

from repro.serve import BatchSlice, Flush, MicroBatcher


def _req(rows: int, value: float = 1.0) -> np.ndarray:
    return np.full((rows, 3), value)


class TestConstruction:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError, match="max_batch"):
            MicroBatcher(max_batch=0)
        with pytest.raises(ValueError, match="window"):
            MicroBatcher(window=-1e-6)
        with pytest.raises(ValueError, match="max_queue"):
            MicroBatcher(max_queue=0)

    def test_starts_empty(self):
        b = MicroBatcher()
        assert b.depth == 0 and b.n_waiting == 0
        assert not b.ready(now=0.0)
        assert b.next_deadline() is None
        assert b.flush(now=0.0) is None


class TestFlushTriggers:
    def test_zero_window_flushes_immediately(self):
        b = MicroBatcher(max_batch=8, window=0.0)
        assert b.submit(0, _req(1), now=5.0)
        assert b.ready(now=5.0)                 # no aging required
        flush = b.flush(now=5.0)
        assert flush.rows == 1 and flush.slices[0].request_id == 0

    def test_window_holds_then_expires(self):
        b = MicroBatcher(max_batch=8, window=1.0)
        b.submit(0, _req(1), now=10.0)
        assert not b.ready(now=10.5)            # still coalescing
        assert b.ready(now=11.0)                # oldest aged past window
        assert b.next_deadline() == pytest.approx(11.0)

    def test_full_batch_overrides_window(self):
        b = MicroBatcher(max_batch=4, window=1e9)
        for i in range(4):
            b.submit(i, _req(1), now=0.0)
        assert b.ready(now=0.0)

    def test_deadline_tracks_oldest_request(self):
        b = MicroBatcher(max_batch=8, window=1.0)
        b.submit(0, _req(1), now=3.0)
        b.submit(1, _req(1), now=7.0)
        assert b.next_deadline() == pytest.approx(4.0)


class TestFlushContents:
    def test_fifo_order_and_partition(self):
        b = MicroBatcher(max_batch=8, window=0.0)
        b.submit(0, _req(2, value=0.0), now=0.0)
        b.submit(1, _req(3, value=1.0), now=0.0)
        flush = b.flush(now=0.0)
        assert isinstance(flush, Flush)
        assert flush.rows == 5 and flush.fill == 5
        assert [s.request_id for s in flush.slices] == [0, 1]
        first, second = flush.slices
        assert (first.row_start, first.row_stop) == (0, 2)
        assert (second.row_start, second.row_stop) == (2, 5)
        assert all(s.final and s.offset == 0 for s in flush.slices)
        assert np.array_equal(flush.inputs[:2], _req(2, value=0.0))
        assert np.array_equal(flush.inputs[2:], _req(3, value=1.0))
        assert b.depth == 0 and b.n_waiting == 0

    def test_oldest_wait_is_head_request_age(self):
        b = MicroBatcher(max_batch=8, window=0.0)
        b.submit(0, _req(1), now=2.0)
        b.submit(1, _req(1), now=5.0)
        assert b.flush(now=6.0).oldest_wait == pytest.approx(4.0)

    def test_slice_rows_property(self):
        s = BatchSlice(request_id=0, row_start=2, row_stop=7,
                       offset=0, final=True)
        assert s.rows == 5


class TestOversizeSplit:
    def test_request_larger_than_batch_splits_across_flushes(self):
        b = MicroBatcher(max_batch=4, window=0.0, max_queue=64)
        rows = np.arange(10, dtype=np.float64)[:, None]
        b.submit(7, rows, now=0.0)

        first = b.flush(now=0.0)
        assert first.rows == 4
        (s,) = first.slices
        assert (s.offset, s.final) == (0, False)
        assert np.array_equal(first.inputs, rows[:4])
        assert b.depth == 6 and b.n_waiting == 1

        second = b.flush(now=0.0)
        (s,) = second.slices
        assert (s.offset, s.final) == (4, False)
        assert np.array_equal(second.inputs, rows[4:8])

        third = b.flush(now=0.0)
        (s,) = third.slices
        assert (s.offset, s.final, third.rows) == (8, True, 2)
        assert np.array_equal(third.inputs, rows[8:])
        assert b.depth == 0 and b.n_waiting == 0

    def test_split_remainder_keeps_submission_time(self):
        # The tail of a split request keeps aging from the ORIGINAL
        # arrival — its window must not reset at each flush.
        b = MicroBatcher(max_batch=2, window=1.0, max_queue=64)
        b.submit(0, _req(5), now=10.0)
        b.flush(now=11.0)
        assert b.next_deadline() == pytest.approx(11.0)
        assert b.ready(now=11.0)

    def test_split_head_shares_flush_with_followers(self):
        b = MicroBatcher(max_batch=4, window=0.0, max_queue=64)
        b.submit(0, _req(6), now=0.0)
        b.submit(1, _req(2), now=0.0)
        b.flush(now=0.0)                         # rows 0:4 of request 0
        flush = b.flush(now=0.0)                 # tail of 0 + all of 1
        assert [(s.request_id, s.rows, s.final) for s in flush.slices] \
            == [(0, 2, True), (1, 2, True)]


class TestAdmission:
    def test_rejection_is_newest_first(self):
        b = MicroBatcher(max_batch=4, window=1e9, max_queue=8)
        assert b.submit(0, _req(6), now=0.0)
        assert not b.submit(1, _req(3), now=0.0)   # would overflow: bounce
        assert b.depth == 6                        # queued rows untouched
        assert b.submit(2, _req(2), now=0.0)       # exact fit still admits
        assert b.depth == 8

    def test_whole_request_rejected_never_partially_admitted(self):
        b = MicroBatcher(max_batch=4, window=1e9, max_queue=4)
        assert not b.submit(0, _req(5), now=0.0)
        assert b.depth == 0 and b.n_waiting == 0

    def test_empty_request_raises(self):
        with pytest.raises(ValueError, match="zero rows"):
            MicroBatcher().submit(0, _req(0), now=0.0)


class TestDrainAndPad:
    def test_drain_serves_everything(self):
        b = MicroBatcher(max_batch=4, window=1e9, max_queue=64)
        for i in range(3):
            b.submit(i, _req(3), now=0.0)
        flushes = list(b.drain(now=0.0))
        assert sum(f.rows for f in flushes) == 9
        served = [s.request_id for f in flushes for s in f.slices
                  if s.final]
        assert sorted(served) == [0, 1, 2]
        assert b.depth == 0 and b.flush(now=0.0) is None

    def test_pad_fixes_dispatch_shape(self):
        b = MicroBatcher(max_batch=4, window=0.0, pad=True)
        b.submit(0, _req(2, value=3.0), now=0.0)
        flush = b.flush(now=0.0)
        assert flush.inputs.shape == (4, 3)      # padded to max_batch
        assert flush.rows == 2                   # ...but only 2 real rows
        assert np.all(flush.inputs[2:] == 0.0)

    def test_no_pad_keeps_exact_rows(self):
        b = MicroBatcher(max_batch=4, window=0.0, pad=False)
        b.submit(0, _req(2), now=0.0)
        assert b.flush(now=0.0).inputs.shape == (2, 3)
