"""The serving daemon's execution core and HTTP front.

Deterministic scheduling tricks keep these thread-exercising tests
flake-free: a very long window plus ``max_batch`` fill forces exact
coalescing; a long window with no fill keeps requests queued until a
drain; ``window=0`` serves each submission immediately.
"""

import pathlib
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.serve import (HttpFront, PlanServer, QueueFull, ServeClient,
                         ServeHTTPError, ServerClosed, fire)

FIXTURES = pathlib.Path(__file__).parents[1] / "fixtures" / "plans"
LONG = 1e9                       # a window that never expires in-test


class _SumPlan:
    """Deterministic toy plan: scores = (row_sum, -row_sum) per row.

    Demuxable by construction — each output row depends only on its
    input row — so any batching must reproduce solo evaluation exactly.
    """

    def scores(self, inputs):
        rows = np.asarray(inputs, dtype=np.float64)
        totals = rows.reshape(len(rows), -1).sum(axis=1)
        return np.stack([totals, -totals], axis=1)


class _ExplodingPlan:
    def scores(self, inputs):
        raise RuntimeError("kernel exploded")


def _server(**kwargs) -> PlanServer:
    kwargs.setdefault("dtype", np.float64)
    kwargs.setdefault("input_shape", (3,))
    return PlanServer(_SumPlan(), **kwargs)


@pytest.fixture(scope="module")
def eeg_plan():
    from repro.io import load_compiled, load_plan
    artifact = load_plan(FIXTURES / "eeg_full_binary.npz")
    return artifact, load_compiled(artifact, backend="packed")


class TestSubmitAndDemux:
    def test_single_request_bit_identical_to_solo(self):
        server = _server(window=0.0)
        request = np.arange(6, dtype=np.float64).reshape(2, 3)
        handle = server.submit(request)
        assert handle.wait(10.0)
        assert np.array_equal(handle.scores, _SumPlan().scores(request))
        assert np.array_equal(handle.labels,
                              handle.scores.argmax(axis=1))
        assert handle.latency is not None and handle.latency >= 0.0
        server.close()

    def test_bare_sample_is_wrapped_to_one_row(self):
        server = _server(window=0.0)
        handle = server.submit(np.ones(3))
        assert handle.wait(10.0)
        assert handle.scores.shape == (1, 2)
        server.close()

    def test_coalesced_batch_demuxes_per_request(self):
        # Fill-triggered: 8 single-row requests, window never expires,
        # so the executor flushes exactly one 8-row batch.
        server = _server(max_batch=8, window=LONG)
        requests = [np.full((1, 3), float(i)) for i in range(8)]
        handles = [server.submit(r) for r in requests]
        for request, handle in zip(requests, handles):
            assert handle.wait(10.0)
            assert np.array_equal(handle.scores,
                                  _SumPlan().scores(request))
        assert server.stats.snapshot()["batches"] == 1
        assert server.stats.snapshot()["mean_fill"] == pytest.approx(8.0)
        server.close()

    def test_request_split_across_flushes_reassembles(self):
        server = _server(max_batch=4, window=0.0, max_queue=64)
        request = np.arange(30, dtype=np.float64).reshape(10, 3)
        handle = server.submit(request)
        assert handle.wait(10.0)
        assert np.array_equal(handle.scores, _SumPlan().scores(request))
        server.close()

    def test_shape_mismatch_raises(self):
        server = _server(window=0.0)
        with pytest.raises(ValueError, match="request shape"):
            server.submit(np.ones((2, 5)))
        server.close()

    def test_executor_failure_delivered_not_fatal(self):
        server = PlanServer(_ExplodingPlan(), window=0.0,
                            dtype=np.float64, input_shape=(3,))
        handle = server.submit(np.ones((1, 3)))
        assert handle.wait(10.0)
        assert isinstance(handle.error, RuntimeError)
        with pytest.raises(RuntimeError, match="not completed"):
            handle.labels
        # The executor survives a failed flush and keeps serving.
        follow_up = server.submit(np.ones((1, 3)))
        assert follow_up.wait(10.0) and follow_up.error is not None
        server.close()


class TestBackpressure:
    def test_full_queue_rejects_newest_with_retryable_error(self):
        server = _server(max_batch=64, window=LONG, max_queue=4)
        handles = [server.submit(np.ones((1, 3))) for _ in range(4)]
        with pytest.raises(QueueFull) as info:
            server.submit(np.ones((1, 3)))
        assert not info.value.permanent
        assert server.stats.snapshot()["rejected"] == 1
        server.close(drain=True)               # queued 4 still served
        assert all(h.done and h.error is None for h in handles)

    def test_oversized_request_is_permanent(self):
        server = _server(max_batch=64, window=LONG, max_queue=4)
        with pytest.raises(QueueFull) as info:
            server.submit(np.ones((5, 3)))
        assert info.value.permanent
        server.close()


class TestLifecycle:
    def test_drain_serves_everything_queued(self):
        server = _server(max_batch=256, window=LONG)
        requests = [np.full((2, 3), float(i)) for i in range(5)]
        handles = [server.submit(r) for r in requests]
        server.close(drain=True)
        for request, handle in zip(requests, handles):
            assert handle.done and handle.error is None
            assert np.array_equal(handle.scores,
                                  _SumPlan().scores(request))

    def test_drop_fails_queued_requests(self):
        server = _server(max_batch=256, window=LONG)
        handle = server.submit(np.ones((1, 3)))
        server.close(drain=False)
        assert handle.done
        assert isinstance(handle.error, ServerClosed)

    def test_draining_server_refuses_new_requests(self):
        server = _server(window=0.0)
        server.close(drain=True)
        assert server.draining
        with pytest.raises(ServerClosed):
            server.submit(np.ones((1, 3)))

    def test_close_is_idempotent(self):
        server = _server(window=0.0)
        server.close()
        server.close()


class TestNoisyPlanRefused:
    def test_off_fast_path_controller_rejected(self, eeg_plan):
        from repro.io import load_compiled
        from repro.rram import AcceleratorConfig
        from repro.runtime import RRAMBackend

        artifact, _ = eeg_plan
        # Default config = real device variability = off the fast path.
        noisy = load_compiled(artifact,
                              backend=RRAMBackend(AcceleratorConfig()))
        with pytest.raises(ValueError, match="noisy plan"):
            PlanServer(noisy)


class TestFixturePlan:
    def test_served_scores_bit_identical_to_offline(self, eeg_plan):
        artifact, plan = eeg_plan
        rng = np.random.default_rng(0)
        requests = [rng.integers(0, 2, (1,) + artifact.input_shape)
                    .astype(np.uint8) for _ in range(24)]
        server = PlanServer(plan, max_batch=8, window=200e-6,
                            input_shape=artifact.input_shape)
        handles = [server.submit(r) for r in requests]
        for request, handle in zip(requests, handles):
            assert handle.wait(30.0)
            assert np.array_equal(handle.scores, plan.scores(request))
        server.close()

    def test_dtype_defaults_follow_front_op(self, eeg_plan):
        # Float front (the eeg fixture's conv2d front) -> float64;
        # a raw bits front -> uint8, so admission canonicalization
        # matches what offline predict would have seen.
        from types import SimpleNamespace

        _, plan = eeg_plan
        server = PlanServer(plan)
        assert server.dtype == np.dtype(np.float64)
        server.close()

        bits_plan = _SumPlan()
        bits_plan.ops = [SimpleNamespace(spec={"op": "bits"})]
        server = PlanServer(bits_plan, input_shape=(3,))
        assert server.dtype == np.dtype(np.uint8)
        server.close()


class TestHttpFront:
    def test_end_to_end_over_sockets(self, eeg_plan):
        artifact, plan = eeg_plan
        server = PlanServer(plan, max_batch=16, window=100e-6,
                            input_shape=artifact.input_shape)
        front = HttpFront(server, port=0).start()
        try:
            rng = np.random.default_rng(1)
            requests = [rng.integers(0, 2, (1,) + artifact.input_shape)
                        .astype(np.uint8) for _ in range(10)]
            responses = fire(front.url, requests, threads=4)
            for request, response in zip(requests, responses):
                expected = plan.scores(request)
                assert np.array_equal(response["scores"], expected)
                assert np.array_equal(response["labels"],
                                      expected.argmax(axis=1))
            client = ServeClient(front.url)
            assert client.health()["status"] == "ok"
            stats = client.stats()
            assert stats["completed"] >= 10 and stats["rejected"] == 0
            client.close()
        finally:
            front.shutdown(drain=True)

    def test_error_statuses(self):
        server = _server(window=0.0)
        front = HttpFront(server, port=0).start()
        try:
            client = ServeClient(front.url)
            with pytest.raises(ServeHTTPError) as info:
                client.predict(np.ones((2, 5)))          # bad shape
            assert info.value.status == 400
            with pytest.raises(ServeHTTPError) as info:
                client._request("GET", "/nope")
            assert info.value.status == 404
            with pytest.raises(ServeHTTPError) as info:
                client._request("POST", "/v1/predict", {"not_inputs": 1})
            assert info.value.status == 400
            client.close()
        finally:
            front.shutdown(drain=True)

    def test_healthz_reports_draining_as_503(self):
        server = _server(window=0.0)
        front = HttpFront(server, port=0).start()
        try:
            server.close(drain=True)                     # now draining
            with pytest.raises(urllib.error.HTTPError) as info:
                urllib.request.urlopen(front.url + "/healthz")
            assert info.value.code == 503
        finally:
            front.shutdown(drain=True)
