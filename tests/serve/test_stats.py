"""Serving counters: snapshot math, JSON-readiness, shared percentiles."""

import json
import threading

import pytest

from repro.metrics import percentiles
from repro.serve import ServeStats


class TestCounters:
    def test_starts_at_zero(self):
        s = ServeStats(model="eeg").snapshot()
        assert s["requests"] == s["rejected"] == s["completed"] == 0
        assert s["batches"] == s["rows"] == 0
        assert s["mean_fill"] == 0.0
        assert s["latency_ms"]["p99"] == 0.0 and s["latency_samples"] == 0

    def test_mean_fill_is_rows_per_dispatch(self):
        stats = ServeStats()
        stats.record_batch(rows=256, queue_depth=10)
        stats.record_batch(rows=64, queue_depth=0)
        assert stats.snapshot()["mean_fill"] == pytest.approx(160.0)

    def test_admit_reject_and_queue_gauge(self):
        stats = ServeStats()
        stats.record_admit(queue_depth=3)
        stats.record_admit(queue_depth=7)
        stats.record_reject()
        s = stats.snapshot()
        assert (s["requests"], s["rejected"], s["queue_depth"]) == (2, 1, 7)

    def test_latency_percentiles_match_shared_helper(self):
        stats = ServeStats()
        samples_s = [i * 1e-3 for i in range(1, 101)]     # 1..100 ms
        for s in samples_s:
            stats.record_complete(s)
        expected = percentiles([s * 1e3 for s in samples_s])
        snap = stats.snapshot()["latency_ms"]
        assert snap["p50"] == pytest.approx(expected[50.0])
        assert snap["p95"] == pytest.approx(expected[95.0])
        assert snap["p99"] == pytest.approx(expected[99.0])

    def test_sample_buffer_is_bounded(self):
        stats = ServeStats(sample_buffer=4)
        for latency in (1.0, 1.0, 1.0, 1.0, 9.0, 9.0, 9.0, 9.0):
            stats.record_complete(latency)
        snap = stats.snapshot()
        assert snap["latency_samples"] == 4
        assert snap["latency_ms"]["p50"] == pytest.approx(9000.0)

    def test_bad_buffer_size_raises(self):
        with pytest.raises(ValueError, match="sample_buffer"):
            ServeStats(sample_buffer=0)


class TestSnapshotSurface:
    def test_snapshot_is_json_serializable(self):
        stats = ServeStats(model="ecg")
        stats.record_admit(1)
        stats.record_batch(rows=8, queue_depth=0)
        stats.record_complete(2e-3)
        round_tripped = json.loads(json.dumps(stats.snapshot()))
        assert round_tripped["model"] == "ecg"
        assert round_tripped["completed"] == 1

    def test_render_mentions_model_and_tails(self):
        stats = ServeStats(model="eeg-fixture")
        stats.record_complete(5e-3)
        text = stats.render()
        assert "eeg-fixture" in text
        assert "p99" in text and "mean fill" in text

    def test_concurrent_updates_do_not_lose_counts(self):
        stats = ServeStats()

        def admit_many():
            for _ in range(500):
                stats.record_admit(queue_depth=1)
                stats.record_complete(1e-3)

        threads = [threading.Thread(target=admit_many) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        snap = stats.snapshot()
        assert snap["requests"] == 2000 and snap["completed"] == 2000
