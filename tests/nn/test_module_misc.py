"""Module registration, serialization, containers, activations, losses."""

import numpy as np
import pytest

from repro import nn
from repro.tensor import Tensor, check_gradients


class TestModule:
    def test_parameter_discovery_is_recursive(self, rng):
        model = nn.Sequential(nn.Linear(4, 8, rng=rng), nn.ReLU(),
                              nn.Linear(8, 2, rng=rng))
        names = [n for n, _ in model.named_parameters()]
        assert len(names) == 4
        assert any("0.weight" in n for n in names)

    def test_num_parameters(self, rng):
        layer = nn.Linear(10, 5, rng=rng)
        assert layer.num_parameters() == 10 * 5 + 5

    def test_train_eval_propagates(self, rng):
        model = nn.Sequential(nn.Dropout(0.5, rng=rng),
                              nn.Sequential(nn.Dropout(0.5, rng=rng)))
        model.eval()
        assert not model[0].training
        assert not model[1][0].training

    def test_state_dict_roundtrip(self, rng):
        a = nn.Sequential(nn.Linear(3, 4, rng=rng), nn.BatchNorm1d(4))
        a(Tensor(rng.standard_normal((16, 3))))   # move running stats
        b = nn.Sequential(nn.Linear(3, 4, rng=rng), nn.BatchNorm1d(4))
        b.load_state_dict(a.state_dict())
        assert np.array_equal(b[0].weight.data, a[0].weight.data)
        assert np.array_equal(b[1].running_mean, a[1].running_mean)
        x = Tensor(rng.standard_normal((4, 3)))
        a.eval(), b.eval()
        assert np.allclose(a(x).data, b(x).data)

    def test_load_state_dict_rejects_unknown_and_mismatched(self, rng):
        model = nn.Linear(3, 4, rng=rng)
        with pytest.raises(KeyError):
            model.load_state_dict({"bogus": np.zeros(3)})
        with pytest.raises(ValueError):
            model.load_state_dict({"weight": np.zeros((2, 2))})

    def test_zero_grad(self, rng):
        layer = nn.Linear(3, 2, rng=rng)
        (layer(Tensor(rng.standard_normal((4, 3)))) ** 2).sum().backward()
        assert layer.weight.grad is not None
        layer.zero_grad()
        assert layer.weight.grad is None


class TestContainers:
    def test_sequential_applies_in_order(self, rng):
        model = nn.Sequential(nn.Linear(2, 2, rng=rng), nn.ReLU())
        x = rng.standard_normal((3, 2))
        expected = np.maximum(
            x @ model[0].weight.data.T + model[0].bias.data, 0)
        assert np.allclose(model(Tensor(x)).data, expected)

    def test_sequential_len_iter_getitem(self, rng):
        model = nn.Sequential(nn.ReLU(), nn.Tanh())
        assert len(model) == 2
        assert isinstance(model[1], nn.Tanh)
        assert [type(m).__name__ for m in model] == ["ReLU", "Tanh"]

    def test_module_list_registers_parameters(self, rng):
        ml = nn.ModuleList([nn.Linear(2, 2, rng=rng) for _ in range(3)])
        assert len(list(ml.named_parameters())) == 6
        with pytest.raises(RuntimeError):
            ml(Tensor(np.zeros((1, 2))))

    def test_flatten(self, rng):
        out = nn.Flatten()(Tensor(rng.standard_normal((2, 3, 4, 5))))
        assert out.shape == (2, 60)


class TestActivations:
    def test_relu_module(self):
        assert np.allclose(nn.ReLU()(Tensor([-1.0, 2.0])).data, [0, 2])

    def test_hardtanh_module(self):
        assert np.allclose(nn.HardTanh()(Tensor([-2.0, 0.3])).data, [-1, 0.3])

    def test_sign_module_binary_output(self, rng):
        out = nn.Sign()(Tensor(rng.standard_normal(50))).data
        assert set(np.unique(out)) <= {-1.0, 1.0}

    def test_identity(self, rng):
        x = rng.standard_normal(5)
        assert np.array_equal(nn.Identity()(Tensor(x)).data, x)


class TestLosses:
    def test_cross_entropy_matches_manual(self, rng):
        logits = rng.standard_normal((6, 3))
        targets = rng.integers(0, 3, 6)
        loss = nn.CrossEntropyLoss()(Tensor(logits), targets)
        shifted = logits - logits.max(axis=1, keepdims=True)
        log_probs = shifted - np.log(np.exp(shifted).sum(axis=1,
                                                         keepdims=True))
        manual = -log_probs[np.arange(6), targets].mean()
        assert np.isclose(loss.item(), manual)

    def test_cross_entropy_perfect_prediction_is_small(self):
        logits = np.array([[100.0, 0.0], [0.0, 100.0]])
        loss = nn.CrossEntropyLoss()(Tensor(logits), np.array([0, 1]))
        assert loss.item() < 1e-6

    def test_cross_entropy_gradcheck(self, rng):
        logits = Tensor(rng.standard_normal((4, 3)), requires_grad=True)
        targets = rng.integers(0, 3, 4)
        check_gradients(lambda t: nn.CrossEntropyLoss()(t, targets),
                        [logits], rtol=1e-3)

    def test_cross_entropy_rejects_2d_targets(self, rng):
        with pytest.raises(ValueError):
            nn.CrossEntropyLoss()(Tensor(np.zeros((2, 2))), np.zeros((2, 2)))

    def test_mse(self, rng):
        pred = rng.standard_normal((4, 2))
        target = rng.standard_normal((4, 2))
        loss = nn.MSELoss()(Tensor(pred), target)
        assert np.isclose(loss.item(), ((pred - target) ** 2).mean())

    def test_squared_hinge_zero_when_margins_met(self):
        logits = np.array([[2.0, -2.0]])
        loss = nn.SquaredHingeLoss()(Tensor(logits), np.array([0]))
        assert loss.item() == 0.0

    def test_squared_hinge_gradcheck(self, rng):
        logits = Tensor(rng.standard_normal((3, 2)) * 0.3,
                        requires_grad=True)
        targets = np.array([0, 1, 0])
        check_gradients(lambda t: nn.SquaredHingeLoss()(t, targets),
                        [logits], rtol=1e-3)
