"""Linear, convolution, and pooling layers: shapes, values, gradients."""

import numpy as np
import pytest

from repro import nn
from repro.tensor import Tensor, check_gradients


class TestLinear:
    def test_forward_shape_and_value(self, rng):
        layer = nn.Linear(4, 3, rng=rng)
        x = rng.standard_normal((5, 4))
        out = layer(Tensor(x))
        assert out.shape == (5, 3)
        expected = x @ layer.weight.data.T + layer.bias.data
        assert np.allclose(out.data, expected)

    def test_no_bias(self, rng):
        layer = nn.Linear(4, 3, bias=False, rng=rng)
        assert layer.bias is None
        assert layer(Tensor(np.ones((2, 4)))).shape == (2, 3)

    def test_gradcheck(self, rng):
        layer = nn.Linear(3, 2, rng=rng)
        x = Tensor(rng.standard_normal((4, 3)), requires_grad=True)
        check_gradients(lambda x, w, b: (layer(x) ** 2).sum(),
                        [x, layer.weight, layer.bias])


class TestConv1d:
    def test_output_length(self, rng):
        layer = nn.Conv1d(12, 32, 13, rng=rng)
        assert layer.output_length(750) == 738

    def test_forward_shape(self, rng):
        layer = nn.Conv1d(3, 5, 4, stride=2, padding=1, rng=rng)
        out = layer(Tensor(rng.standard_normal((2, 3, 21))))
        assert out.shape == (2, 5, layer.output_length(21))

    def test_channel_mismatch_raises(self, rng):
        layer = nn.Conv1d(3, 5, 4, rng=rng)
        with pytest.raises(ValueError):
            layer(Tensor(rng.standard_normal((2, 4, 21))))

    @pytest.mark.parametrize("stride,padding", [(1, 0), (2, 3)])
    def test_gradcheck(self, rng, stride, padding):
        layer = nn.Conv1d(2, 3, 4, stride=stride, padding=padding, rng=rng)
        x = Tensor(rng.standard_normal((2, 2, 11)), requires_grad=True)
        check_gradients(lambda x, w, b: (layer(x) ** 2).sum(),
                        [x, layer.weight, layer.bias], rtol=1e-3)


class TestConv2d:
    def test_forward_shape(self, rng):
        layer = nn.Conv2d(3, 8, (3, 2), stride=(2, 1), padding=(1, 0),
                          rng=rng)
        out = layer(Tensor(rng.standard_normal((2, 3, 10, 8))))
        assert out.shape == (2, 8) + layer.output_shape(10, 8)

    def test_eeg_spatial_conv_collapses_electrodes(self, rng):
        layer = nn.Conv2d(4, 4, (1, 64), rng=rng)
        out = layer(Tensor(rng.standard_normal((1, 4, 12, 64))))
        assert out.shape == (1, 4, 12, 1)

    def test_gradcheck(self, rng):
        layer = nn.Conv2d(2, 3, (3, 3), stride=2, padding=1, rng=rng)
        x = Tensor(rng.standard_normal((2, 2, 7, 7)), requires_grad=True)
        check_gradients(lambda x, w, b: (layer(x) ** 2).sum(),
                        [x, layer.weight, layer.bias], rtol=1e-3)


class TestDepthwiseConv2d:
    def test_channels_do_not_mix(self, rng):
        layer = nn.DepthwiseConv2d(2, 3, padding=1, rng=rng)
        x = np.zeros((1, 2, 6, 6))
        x[0, 0] = rng.standard_normal((6, 6))
        layer.bias.data[:] = 0.0
        out = layer(Tensor(x))
        assert np.allclose(out.data[0, 1], 0.0)
        assert not np.allclose(out.data[0, 0], 0.0)

    def test_matches_explicit_conv2d(self, rng):
        ch = 3
        dw = nn.DepthwiseConv2d(ch, 3, stride=2, padding=1, rng=rng)
        # An equivalent grouped conv as a block-diagonal full conv.
        full = nn.Conv2d(ch, ch, 3, stride=2, padding=1, rng=rng)
        full.weight.data[:] = 0.0
        for c in range(ch):
            full.weight.data[c, c] = dw.weight.data[c]
        full.bias.data[:] = dw.bias.data
        x = Tensor(rng.standard_normal((2, ch, 8, 8)))
        assert np.allclose(dw(x).data, full(x).data)

    def test_gradcheck(self, rng):
        layer = nn.DepthwiseConv2d(2, 3, padding=1, rng=rng)
        x = Tensor(rng.standard_normal((2, 2, 6, 6)), requires_grad=True)
        check_gradients(lambda x, w, b: (layer(x) ** 2).sum(),
                        [x, layer.weight, layer.bias], rtol=1e-3)

    def test_pointwise_is_1x1(self, rng):
        layer = nn.PointwiseConv2d(4, 7, rng=rng)
        out = layer(Tensor(rng.standard_normal((2, 4, 5, 5))))
        assert out.shape == (2, 7, 5, 5)


class TestPooling1d:
    def test_maxpool_values(self):
        x = Tensor(np.array([[[1.0, 3.0, 2.0, 5.0, 4.0, 0.0]]]))
        out = nn.MaxPool1d(2)(x)
        assert np.allclose(out.data, [[[3, 5, 4]]])

    def test_avgpool_overlapping_matches_naive(self, rng):
        # The EEG model's pool: kernel 30, stride 15 (overlapping).
        x = rng.standard_normal((2, 3, 95))
        pool = nn.AvgPool1d(30, 15)
        out = pool(Tensor(x))
        l_out = pool.output_length(95)
        naive = np.stack([x[:, :, i * 15:i * 15 + 30].mean(axis=2)
                          for i in range(l_out)], axis=2)
        assert np.allclose(out.data, naive)

    def test_maxpool_gradcheck(self, rng):
        x = Tensor(rng.permutation(36).astype(float).reshape(2, 2, 9),
                   requires_grad=True)
        pool = nn.MaxPool1d(3, 2)
        check_gradients(lambda x: (pool(x) ** 2).sum(), [x])

    def test_avgpool_overlap_gradcheck(self, rng):
        x = Tensor(rng.standard_normal((1, 2, 13)), requires_grad=True)
        pool = nn.AvgPool1d(4, 2)
        check_gradients(lambda x: (pool(x) ** 2).sum(), [x])


class TestPooling2d:
    def test_maxpool2d_values(self):
        x = Tensor(np.arange(16.0).reshape(1, 1, 4, 4))
        out = nn.MaxPool2d(2)(x)
        assert np.allclose(out.data, [[[[5, 7], [13, 15]]]])

    def test_avgpool2d_values(self):
        x = Tensor(np.arange(16.0).reshape(1, 1, 4, 4))
        out = nn.AvgPool2d(2)(x)
        assert np.allclose(out.data, [[[[2.5, 4.5], [10.5, 12.5]]]])

    def test_maxpool2d_gradcheck(self, rng):
        x = Tensor(rng.permutation(32).astype(float).reshape(1, 2, 4, 4),
                   requires_grad=True)
        check_gradients(lambda x: (nn.MaxPool2d(2)(x) ** 2).sum(), [x])

    def test_avgpool2d_gradcheck(self, rng):
        x = Tensor(rng.standard_normal((1, 2, 6, 6)), requires_grad=True)
        check_gradients(lambda x: (nn.AvgPool2d(3, 3)(x) ** 2).sum(), [x])

    def test_global_avg_pool(self, rng):
        x = rng.standard_normal((2, 5, 3, 4))
        out = nn.GlobalAvgPool2d()(Tensor(x))
        assert out.shape == (2, 5)
        assert np.allclose(out.data, x.mean(axis=(2, 3)))
