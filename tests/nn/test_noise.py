"""RRAM read-noise surrogate: flip model, STE backward, layer arming."""

import math

import numpy as np
import pytest

from repro import nn
from repro.nn import (DEFAULT_LN_MARGIN, RramReadNoise, flip_probability,
                      rram_read_noise, set_read_noise)
from repro.tensor import Tensor


class TestFlipProbability:
    def test_zero_sigma_reads_perfectly(self):
        assert flip_probability(0.0) == 0.0
        assert flip_probability(-1.0) == 0.0

    def test_matches_gaussian_tail(self):
        # p = Phi(-margin / sigma), via the erfc identity.
        for sigma in (0.5, 1.5, 2.5):
            z = DEFAULT_LN_MARGIN / sigma
            expected = 0.5 * math.erfc(z / math.sqrt(2.0))
            assert flip_probability(sigma) == pytest.approx(expected)

    def test_monotone_in_sigma(self):
        sigmas = np.linspace(0.1, 5.0, 40)
        ps = [flip_probability(s) for s in sigmas]
        assert all(b > a for a, b in zip(ps, ps[1:]))
        assert all(0.0 < p < 0.5 for p in ps)

    def test_default_margin_matches_device_parameters(self):
        # The constant must stay in lockstep with the MC engine's cell.
        from repro.rram import DeviceParameters

        device = DeviceParameters()
        assert DEFAULT_LN_MARGIN == pytest.approx(
            math.log(device.median_hrs / device.median_lrs), abs=1e-12)


class TestRramReadNoise:
    def test_zero_sigma_is_identity(self, rng):
        x = Tensor(rng.standard_normal((4, 8)))
        assert rram_read_noise(x, 64, 0.0, rng) is x

    def test_perturbs_forward(self, rng):
        x = Tensor(rng.standard_normal((4, 8)))
        out = rram_read_noise(x, 64, 1.5, rng)
        assert out.shape == x.shape
        assert not np.allclose(out.data, x.data)

    def test_clt_statistics(self):
        # Mean shrinks by (1-2p); std is 2*sqrt(n*p*(1-p)).
        rng = np.random.default_rng(0)
        fan_in, sigma, n = 256, 2.0, 200_000
        x = Tensor(np.full((n,), 100.0))
        out = rram_read_noise(x, fan_in, sigma, rng)
        p = flip_probability(sigma)
        assert out.data.mean() == pytest.approx((1 - 2 * p) * 100.0,
                                                abs=0.05)
        assert out.data.std() == pytest.approx(
            2.0 * math.sqrt(fan_in * p * (1 - p)), rel=0.02)

    def test_backward_is_straight_through(self, rng):
        x = Tensor(rng.standard_normal((3, 5)), requires_grad=True)
        out = rram_read_noise(x, 32, 1.5, rng)
        (out * Tensor(np.full(out.shape, 2.0))).sum().backward()
        # The noise op passes the gradient through untouched.
        assert np.array_equal(x.grad, np.full((3, 5), 2.0))

    def test_deterministic_per_seed(self):
        x = Tensor(np.ones((4, 4)))
        a = rram_read_noise(x, 16, 1.0, np.random.default_rng(7))
        b = rram_read_noise(x, 16, 1.0, np.random.default_rng(7))
        assert np.array_equal(a.data, b.data)


class TestRramReadNoiseModule:
    def test_identity_in_eval_mode(self, rng):
        layer = RramReadNoise(64, 1.5, rng=rng)
        layer.eval()
        x = Tensor(rng.standard_normal((2, 6)))
        assert layer(x) is x

    def test_perturbs_in_train_mode(self, rng):
        layer = RramReadNoise(64, 1.5, rng=rng)
        layer.train()
        x = Tensor(rng.standard_normal((2, 6)))
        assert not np.allclose(layer(x).data, x.data)

    def test_fresh_draw_per_forward(self, rng):
        layer = RramReadNoise(64, 1.5, rng=rng)
        layer.train()
        x = Tensor(np.ones((2, 6)))
        assert not np.array_equal(layer(x).data, layer(x).data)

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError, match="fan_in"):
            RramReadNoise(0, 1.0)
        with pytest.raises(ValueError, match="sigma"):
            RramReadNoise(8, -0.5)


class TestBinaryLayerKnob:
    def test_layers_default_to_noise_free(self, rng):
        layer = nn.BinaryLinear(8, 4, rng=rng)
        assert layer.noise_sigma == 0.0

    def test_train_forward_perturbs_when_armed(self, rng):
        layer = nn.BinaryLinear(8, 4, rng=rng)
        x = Tensor(rng.standard_normal((3, 8)))
        clean = layer(x).data.copy()
        layer.noise_sigma = 1.5
        layer.noise_rng = np.random.default_rng(0)
        layer.train()
        assert not np.allclose(layer(x).data, clean)

    def test_eval_forward_stays_clean_when_armed(self, rng):
        layer = nn.BinaryLinear(8, 4, rng=rng)
        x = Tensor(rng.standard_normal((3, 8)))
        clean = layer(x).data.copy()
        layer.noise_sigma = 1.5
        layer.eval()
        assert np.array_equal(layer(x).data, clean)

    @pytest.mark.parametrize("make,shape", [
        (lambda rng: nn.BinaryConv1d(3, 4, 5, rng=rng), (2, 3, 16)),
        (lambda rng: nn.BinaryConv2d(3, 4, (3, 3), rng=rng), (2, 3, 8, 8)),
        (lambda rng: nn.BinaryDepthwiseConv2d(3, (3, 3), rng=rng),
         (2, 3, 8, 8)),
    ])
    def test_conv_layers_carry_the_knob(self, make, shape, rng):
        layer = make(rng)
        x = Tensor(rng.standard_normal(shape))
        clean = layer(x).data.copy()
        layer.noise_sigma = 2.0
        layer.noise_rng = np.random.default_rng(1)
        layer.train()
        assert not np.allclose(layer(x).data, clean)
        layer.eval()
        assert np.array_equal(layer(x).data, clean)


class TestSetReadNoise:
    def _stack(self, rng):
        return nn.Sequential(nn.BinaryLinear(8, 8, rng=rng),
                             nn.Linear(8, 8, rng=rng),
                             nn.BinaryLinear(8, 2, rng=rng))

    def test_arms_every_binary_layer(self, rng):
        model = self._stack(rng)
        assert set_read_noise(model, 1.5) == 2
        fc0, mid, fc2 = model._layers
        assert fc0.noise_sigma == 1.5
        assert fc2.noise_sigma == 1.5
        assert not hasattr(mid, "noise_sigma")

    def test_shared_rng_across_layers(self, rng):
        model = self._stack(rng)
        stream = np.random.default_rng(3)
        set_read_noise(model, 1.0, rng=stream)
        assert model._layers[0].noise_rng is stream
        assert model._layers[2].noise_rng is stream

    def test_layer_names_filter(self, rng):
        model = self._stack(rng)
        assert set_read_noise(model, 2.0, layer_names=("2",)) == 1
        assert model._layers[0].noise_sigma == 0.0
        assert model._layers[2].noise_sigma == 2.0

    def test_unknown_layer_name_raises(self, rng):
        with pytest.raises(ValueError, match="no binary layer"):
            set_read_noise(self._stack(rng), 1.0,
                           layer_names=("1", "2"))

    def test_zero_sigma_disarms(self, rng):
        model = self._stack(rng)
        set_read_noise(model, 1.5)
        set_read_noise(model, 0.0)
        x = Tensor(rng.standard_normal((2, 8)))
        model.train()
        assert np.array_equal(model(x).data, model(x).data)

    def test_negative_sigma_rejected(self, rng):
        with pytest.raises(ValueError, match="sigma"):
            set_read_noise(self._stack(rng), -1.0)

    def test_noise_changes_training_not_gradients_shape(self, rng):
        model = self._stack(rng)
        set_read_noise(model, 1.5, rng=np.random.default_rng(2))
        model.train()
        x = Tensor(rng.standard_normal((4, 8)))
        (model(x) ** 2).sum().backward()
        w = model._layers[0].weight
        assert w.grad is not None and w.grad.shape == w.data.shape
