"""Binarized layers, XNOR-popcount arithmetic (Eq. 3), and BN folding."""

import numpy as np
import pytest

from repro import nn
from repro.nn.binary import (dot_from_popcount, fold_batchnorm_output,
                             fold_batchnorm_sign, from_bits, to_bits,
                             xnor_popcount)
from repro.tensor import Tensor


class TestBitConversions:
    def test_roundtrip(self, rng):
        pm1 = np.where(rng.random(100) < 0.5, 1.0, -1.0)
        assert np.array_equal(from_bits(to_bits(pm1)), pm1)

    def test_zero_maps_to_plus_one(self):
        assert to_bits(np.array([0.0])) == 1
        assert from_bits(to_bits(np.array([0.0])))[0] == 1.0


class TestXnorPopcount:
    def test_equals_pm1_dot_product(self, rng):
        x = np.where(rng.random((8, 33)) < 0.5, 1.0, -1.0)
        w = np.where(rng.random((5, 33)) < 0.5, 1.0, -1.0)
        pc = xnor_popcount(to_bits(x), to_bits(w))
        dot = dot_from_popcount(pc, 33)
        assert np.array_equal(dot, (x @ w.T).astype(np.int64))

    def test_identical_rows_give_full_count(self):
        bits = np.array([[1, 0, 1, 1, 0]], dtype=np.uint8)
        assert xnor_popcount(bits, bits)[0, 0] == 5

    def test_complement_gives_zero(self):
        bits = np.array([[1, 0, 1]], dtype=np.uint8)
        assert xnor_popcount(bits, 1 - bits)[0, 0] == 0

    def test_width_mismatch_raises(self):
        with pytest.raises(ValueError):
            xnor_popcount(np.zeros((2, 4), np.uint8),
                          np.zeros((3, 5), np.uint8))


class TestBinaryLayers:
    def test_binary_linear_uses_sign_of_weights(self, rng):
        layer = nn.BinaryLinear(6, 4, rng=rng)
        x = rng.standard_normal((3, 6))
        out = layer(Tensor(x))
        expected = x @ np.where(layer.weight.data >= 0, 1.0, -1.0).T
        assert np.allclose(out.data, expected)

    def test_binary_linear_gradient_updates_latent(self, rng):
        layer = nn.BinaryLinear(4, 2, rng=rng)
        x = Tensor(rng.standard_normal((5, 4)))
        (layer(x) ** 2).sum().backward()
        assert layer.weight.grad is not None
        assert layer.weight.grad.shape == layer.weight.data.shape

    def test_binary_conv1d_weights_are_binary(self, rng):
        layer = nn.BinaryConv1d(3, 4, 5, rng=rng)
        out = layer(Tensor(rng.standard_normal((2, 3, 12))))
        ref = nn.Conv1d(3, 4, 5, bias=False, rng=rng)
        ref.weight.data = np.where(layer.weight.data >= 0, 1.0, -1.0)
        assert np.allclose(out.data, ref(Tensor(np.zeros((2, 3, 12)))).data
                           * 0 + out.data)  # shape sanity
        assert out.shape == (2, 4, 8)

    def test_binary_conv2d_matches_signed_real_conv(self, rng):
        blayer = nn.BinaryConv2d(2, 3, 3, padding=1, rng=rng)
        rlayer = nn.Conv2d(2, 3, 3, padding=1, bias=False, rng=rng)
        rlayer.weight.data = np.where(blayer.weight.data >= 0, 1.0, -1.0)
        x = Tensor(rng.standard_normal((2, 2, 6, 6)))
        assert np.allclose(blayer(x).data, rlayer(x).data)

    def test_binary_depthwise_weights_binary(self, rng):
        layer = nn.BinaryDepthwiseConv2d(3, 3, padding=1, rng=rng)
        dl = nn.DepthwiseConv2d(3, 3, padding=1, bias=False, rng=rng)
        dl.weight.data = np.where(layer.weight.data >= 0, 1.0, -1.0)
        x = Tensor(rng.standard_normal((1, 3, 5, 5)))
        assert np.allclose(layer(x).data, dl(x).data)

    def test_clip_latent_weights(self, rng):
        model = nn.Sequential(nn.BinaryLinear(4, 4, rng=rng),
                              nn.Linear(4, 2, rng=rng))
        model[0].weight.data *= 100
        model[1].weight.data[:] = 50.0
        nn.clip_latent_weights(model)
        assert np.abs(model[0].weight.data).max() <= 1.0
        # real layers untouched
        assert np.abs(model[1].weight.data).max() == 50.0


class TestFolding:
    """sign(BN(W_b x)) must equal the integer popcount-threshold pipeline."""

    def _trained_like_bn(self, rng, features):
        bn = nn.BatchNorm1d(features)
        bn.gamma.data = rng.uniform(-1.5, 1.5, features)
        bn.gamma.data[0] = 0.0    # exercise the zero-gamma branch
        bn.beta.data = rng.standard_normal(features)
        bn.set_buffer("running_mean", rng.standard_normal(features) * 3)
        bn.set_buffer("running_var", rng.uniform(0.5, 4.0, features))
        bn.eval()
        return bn

    def test_hidden_layer_fold_is_exact(self, rng):
        layer = nn.BinaryLinear(37, 11, rng=rng)
        bn = self._trained_like_bn(rng, 11)
        folded = fold_batchnorm_sign(layer, bn)

        x_pm1 = np.where(rng.random((40, 37)) < 0.5, 1.0, -1.0)
        ref = bn(layer(Tensor(x_pm1))).sign_ste().data
        out = from_bits(folded.forward_bits(to_bits(x_pm1)))
        assert np.array_equal(out, ref)

    def test_output_layer_fold_is_exact(self, rng):
        layer = nn.BinaryLinear(29, 5, rng=rng)
        bn = self._trained_like_bn(rng, 5)
        folded = fold_batchnorm_output(layer, bn)
        x_pm1 = np.where(rng.random((20, 29)) < 0.5, 1.0, -1.0)
        ref = bn(layer(Tensor(x_pm1))).data
        scores = folded.forward_scores(to_bits(x_pm1))
        assert np.allclose(scores, ref, atol=1e-9)
        assert np.array_equal(folded.predict(to_bits(x_pm1)),
                              ref.argmax(axis=1))
