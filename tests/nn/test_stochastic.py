"""Stochastic input binarization (paper ref. [14])."""

import numpy as np
import pytest

from repro.nn import StochasticBinarize, stochastic_bits, stream_decode
from repro.tensor import Tensor


class TestStochasticBits:
    def test_mean_converges_to_value(self, rng):
        values = np.array([-0.8, -0.3, 0.0, 0.4, 0.9])
        planes = stochastic_bits(values, 20_000, rng)
        decoded = stream_decode(planes)
        assert np.allclose(decoded, values, atol=0.02)

    def test_extremes_are_deterministic(self, rng):
        planes = stochastic_bits(np.array([-1.0, 1.0]), 100, rng)
        assert np.all(planes[:, 0] == 0)
        assert np.all(planes[:, 1] == 1)

    def test_out_of_range_values_clip(self, rng):
        planes = stochastic_bits(np.array([-5.0, 5.0]), 50, rng)
        assert np.all(planes[:, 0] == 0)
        assert np.all(planes[:, 1] == 1)

    def test_shape(self, rng):
        planes = stochastic_bits(np.zeros((3, 4)), 7, rng)
        assert planes.shape == (7, 3, 4)

    def test_requires_positive_samples(self, rng):
        with pytest.raises(ValueError):
            stochastic_bits(np.zeros(3), 0, rng)

    def test_precision_improves_with_samples(self, rng):
        value = np.full(2000, 0.3)
        err_few = np.abs(stream_decode(
            stochastic_bits(value, 8, rng)) - 0.3).mean()
        err_many = np.abs(stream_decode(
            stochastic_bits(value, 512, rng)) - 0.3).mean()
        assert err_many < err_few


class TestStochasticBinarizeLayer:
    def test_train_outputs_are_binary(self, rng):
        layer = StochasticBinarize(rng=rng)
        out = layer(Tensor(rng.uniform(-1, 1, 200))).data
        assert set(np.unique(out)) <= {-1.0, 1.0}

    def test_train_forward_is_unbiased(self, rng):
        layer = StochasticBinarize(rng=rng)
        x = Tensor(np.full(50_000, 0.4))
        out = layer(x).data
        assert abs(out.mean() - 0.4) < 0.02

    def test_eval_is_deterministic_sign(self, rng):
        layer = StochasticBinarize(rng=rng)
        layer.eval()
        x = Tensor(np.array([-0.2, 0.3]))
        a = layer(x).data
        b = layer(x).data
        assert np.array_equal(a, b)
        assert np.array_equal(a, [-1.0, 1.0])

    def test_ste_gradient_window(self, rng):
        layer = StochasticBinarize(rng=rng)
        x = Tensor(np.array([-2.0, 0.5, 2.0]), requires_grad=True)
        layer(x).sum().backward()
        assert x.grad[0] == 0.0 and x.grad[2] == 0.0
        assert x.grad[1] == 1.0
