"""Tests for the multi-bit quantization stack (repro.nn.quant)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import (ActivationQuantizer, IntegerDense, QuantConv1d,
                      QuantConv2d, QuantLinear, deploy_dense_int,
                      fake_quantize, quant_scale)
from repro.nn.linear import Linear
from repro.tensor import Tensor


class TestQuantScale:
    def test_maps_peak_to_grid_edge(self):
        values = np.array([-3.0, 1.0, 2.0])
        scale = quant_scale(values, bits=8)
        assert scale == pytest.approx(3.0 / 127)

    def test_zero_tensor_gives_unit_scale(self):
        assert quant_scale(np.zeros(5), bits=8) == 1.0

    def test_empty_tensor_gives_unit_scale(self):
        assert quant_scale(np.zeros(0), bits=8) == 1.0

    def test_invalid_bits_raise(self):
        with pytest.raises(ValueError, match="bits"):
            quant_scale(np.ones(3), bits=1)
        with pytest.raises(ValueError, match="bits"):
            quant_scale(np.ones(3), bits=17)


class TestFakeQuantize:
    def test_idempotent(self):
        rng = np.random.default_rng(0)
        x = Tensor(rng.normal(size=(4, 7)))
        scale = quant_scale(x.data, 8)
        once = fake_quantize(x, scale, 8)
        twice = fake_quantize(once, scale, 8)
        assert np.array_equal(once.data, twice.data)

    def test_error_bounded_by_half_lsb(self):
        rng = np.random.default_rng(1)
        x = Tensor(rng.uniform(-2, 2, size=100))
        scale = quant_scale(x.data, 8)
        q = fake_quantize(x, scale, 8)
        assert np.all(np.abs(q.data - x.data) <= scale / 2 + 1e-12)

    def test_values_on_grid(self):
        rng = np.random.default_rng(2)
        x = Tensor(rng.normal(size=50))
        scale = quant_scale(x.data, 4)
        q = fake_quantize(x, scale, 4)
        grid_index = q.data / scale
        assert np.allclose(grid_index, np.round(grid_index))
        assert np.abs(grid_index).max() <= 7  # 2^(4-1) - 1

    def test_ste_gradient_masks_out_of_range(self):
        x = Tensor(np.array([0.5, 10.0, -10.0]), requires_grad=True)
        q = fake_quantize(x, scale=0.1, bits=4)  # limit = 0.1 * 7 = 0.7
        q.sum().backward()
        assert x.grad.tolist() == [1.0, 0.0, 0.0]

    def test_more_bits_less_error(self):
        rng = np.random.default_rng(3)
        x = Tensor(rng.normal(size=1000))
        errs = []
        for bits in (2, 4, 8):
            scale = quant_scale(x.data, bits)
            q = fake_quantize(x, scale, bits)
            errs.append(float(np.abs(q.data - x.data).mean()))
        assert errs[0] > errs[1] > errs[2]

    def test_nonpositive_scale_raises(self):
        with pytest.raises(ValueError, match="scale"):
            fake_quantize(Tensor(np.ones(3)), 0.0, 8)

    @settings(max_examples=40, deadline=None)
    @given(st.integers(2, 12))
    def test_high_bits_nearly_exact(self, bits):
        rng = np.random.default_rng(bits)
        x = Tensor(rng.normal(size=64))
        scale = quant_scale(x.data, bits)
        q = fake_quantize(x, scale, bits)
        q_max = 2 ** (bits - 1) - 1
        assert np.abs(q.data - x.data).max() <= scale / 2 + 1e-12
        assert np.abs(q.data).max() <= scale * q_max + 1e-12


class TestQuantLayers:
    def test_linear_forward_matches_manual(self):
        rng = np.random.default_rng(4)
        layer = QuantLinear(6, 3, bits=8, rng=rng)
        x = Tensor(rng.normal(size=(5, 6)))
        out = layer(x)
        scale = quant_scale(layer.weight.data, 8)
        w_q = np.clip(np.round(layer.weight.data / scale), -127, 127) * scale
        expected = x.data @ w_q.T + layer.bias.data
        assert np.allclose(out.data, expected)

    def test_linear_trains(self):
        """A QuantLinear must fit a simple linear target via its STE."""
        rng = np.random.default_rng(5)
        layer = QuantLinear(4, 1, bits=8, rng=rng)
        w_true = np.array([[1.0, -2.0, 0.5, 3.0]])
        x = rng.normal(size=(256, 4))
        y = x @ w_true.T
        for _ in range(300):
            pred = layer(Tensor(x))
            loss = ((pred - Tensor(y)) ** 2).mean()
            layer.zero_grad()
            loss.backward()
            for p in layer.parameters():
                p.data -= 0.05 * p.grad
        final = ((layer(Tensor(x)).data - y) ** 2).mean()
        assert final < 1e-3

    def test_conv1d_matches_real_conv_at_high_bits(self):
        from repro.nn import Conv1d
        rng = np.random.default_rng(6)
        qconv = QuantConv1d(3, 5, kernel_size=4, bits=16, rng=rng)
        conv = Conv1d(3, 5, kernel_size=4, bias=False,
                      rng=np.random.default_rng(6))
        conv.weight.data = qconv.weight.data.copy()
        x = Tensor(rng.normal(size=(2, 3, 20)))
        assert np.allclose(qconv(x).data, conv(x).data, atol=1e-3)

    def test_conv2d_shape(self):
        rng = np.random.default_rng(7)
        conv = QuantConv2d(2, 4, kernel_size=3, padding=1, bits=8, rng=rng)
        x = Tensor(rng.normal(size=(2, 2, 8, 8)))
        assert conv(x).shape == (2, 4, 8, 8)

    def test_weight_grid_size_respected(self):
        rng = np.random.default_rng(8)
        layer = QuantLinear(10, 2, bits=3, rng=rng)
        q = layer.quantized_weight().data
        scale = quant_scale(layer.weight.data, 3)
        levels = np.unique(np.round(q / scale).astype(int))
        assert levels.min() >= -3 and levels.max() <= 3  # 2^(3-1)-1 = 3

    def test_repr_mentions_bits(self):
        assert "bits=8" in repr(QuantLinear(3, 2))
        assert "bits=4" in repr(QuantConv1d(1, 1, 3, bits=4))
        assert "bits=8" in repr(QuantConv2d(1, 1, 3))


class TestActivationQuantizer:
    def test_observes_range_in_training(self):
        aq = ActivationQuantizer(bits=8, momentum=0.0)
        x = Tensor(np.array([[0.5, -2.0, 1.0]]))
        aq.train()
        aq(x)
        assert float(aq.running_peak) == pytest.approx(2.0)

    def test_frozen_in_eval(self):
        aq = ActivationQuantizer(bits=8, momentum=0.0)
        aq.train()
        aq(Tensor(np.array([1.0])))
        aq.eval()
        aq(Tensor(np.array([100.0])))
        assert float(aq.running_peak) == pytest.approx(1.0)

    def test_eval_clips_to_calibrated_range(self):
        aq = ActivationQuantizer(bits=8, momentum=0.0)
        aq.train()
        aq(Tensor(np.array([1.0])))
        aq.eval()
        out = aq(Tensor(np.array([100.0])))
        assert out.data[0] <= 1.0 + 1e-9

    def test_ema_update(self):
        aq = ActivationQuantizer(bits=8, momentum=0.5)
        aq.train()
        aq(Tensor(np.array([4.0])))   # first batch initializes to 4
        aq(Tensor(np.array([8.0])))   # EMA: 0.5*4 + 0.5*8 = 6
        assert float(aq.running_peak) == pytest.approx(6.0)

    def test_state_dict_round_trip(self):
        aq = ActivationQuantizer(bits=8, momentum=0.0)
        aq.train()
        aq(Tensor(np.array([3.0])))
        state = aq.state_dict()
        fresh = ActivationQuantizer(bits=8, momentum=0.0)
        fresh.load_state_dict(state)
        assert float(fresh.running_peak) == pytest.approx(3.0)
        assert bool(fresh.initialized)

    def test_bad_momentum_raises(self):
        with pytest.raises(ValueError, match="momentum"):
            ActivationQuantizer(momentum=1.0)


class TestIntegerDeployment:
    def _calibrated_pair(self, bits=8, seed=9):
        rng = np.random.default_rng(seed)
        layer = QuantLinear(8, 4, bits=bits, rng=np.random.default_rng(seed))
        x = rng.normal(size=(16, 8))
        x_scale = quant_scale(x, bits)
        return layer, x, x_scale

    def test_matches_fake_quant_float_path(self):
        """Integer kernel == fake-quant weights applied to fake-quant input."""
        layer, x, x_scale = self._calibrated_pair()
        deployed = deploy_dense_int(layer, x_scale, bits=8)
        got = deployed.forward(x)
        # Reference: quantize both operands in float, then matmul.
        w_q = layer.quantized_weight().data
        x_q = np.clip(np.round(x / x_scale), -127, 127) * x_scale
        expected = x_q @ w_q.T + layer.bias.data
        assert np.allclose(got, expected, atol=1e-10)

    def test_integer_accumulator_is_integral(self):
        layer, x, x_scale = self._calibrated_pair()
        deployed = deploy_dense_int(layer, x_scale, bits=8)
        x_q = deployed.quantize_input(x)
        acc = x_q @ deployed.weight_q.T
        assert acc.dtype == np.int64

    def test_weights_within_grid(self):
        layer, x, x_scale = self._calibrated_pair(bits=5)
        deployed = deploy_dense_int(layer, x_scale, bits=5)
        assert np.abs(deployed.weight_q).max() <= 15

    def test_deploys_plain_linear(self):
        rng = np.random.default_rng(10)
        layer = Linear(6, 2, rng=rng)
        x = rng.normal(size=(4, 6))
        deployed = deploy_dense_int(layer, quant_scale(x, 8))
        out = deployed.forward(x)
        ref = x @ layer.weight.data.T + layer.bias.data
        # 8-bit quantization error stays small relative to signal.
        assert np.abs(out - ref).max() < 0.1 * np.abs(ref).max() + 0.05

    def test_bad_x_scale_raises(self):
        layer, _, _ = self._calibrated_pair()
        with pytest.raises(ValueError, match="x_scale"):
            deploy_dense_int(layer, 0.0)

    def test_shapes(self):
        layer, x, x_scale = self._calibrated_pair()
        deployed = deploy_dense_int(layer, x_scale)
        assert deployed.in_features == 8
        assert deployed.out_features == 4
        assert deployed.forward(x).shape == (16, 4)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(2, 10), st.integers(0, 1000))
    def test_exactness_property(self, bits, seed):
        """For any bit width and weights: deployment == fake-quant math."""
        rng = np.random.default_rng(seed)
        layer = QuantLinear(5, 3, bits=bits, bias=False, rng=rng)
        x = rng.normal(size=(3, 5))
        x_scale = quant_scale(x, bits)
        deployed = deploy_dense_int(layer, x_scale, bits=bits)
        q_max = 2 ** (bits - 1) - 1
        w_q = layer.quantized_weight().data
        x_q = np.clip(np.round(x / x_scale), -q_max, q_max) * x_scale
        assert np.allclose(deployed.forward(x), x_q @ w_q.T, atol=1e-10)
