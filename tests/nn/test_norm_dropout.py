"""Batch normalization, input normalization, and dropout."""

import numpy as np
import pytest

from repro import nn
from repro.tensor import Tensor, check_gradients


class TestBatchNorm1d:
    def test_train_mode_normalizes_batch(self, rng):
        bn = nn.BatchNorm1d(4)
        x = rng.standard_normal((64, 4)) * 5 + 3
        out = bn(Tensor(x)).data
        assert np.allclose(out.mean(axis=0), 0, atol=1e-7)
        assert np.allclose(out.std(axis=0), 1, atol=1e-2)

    def test_running_stats_converge(self, rng):
        bn = nn.BatchNorm1d(3)
        for _ in range(200):
            bn(Tensor(rng.standard_normal((32, 3)) * 2 + 1))
        assert np.allclose(bn.running_mean, 1, atol=0.2)
        assert np.allclose(bn.running_var, 4, atol=0.8)

    def test_eval_uses_running_stats(self, rng):
        bn = nn.BatchNorm1d(3)
        for _ in range(50):
            bn(Tensor(rng.standard_normal((32, 3)) + 2))
        bn.eval()
        x = rng.standard_normal((8, 3)) + 2
        out = bn(Tensor(x)).data
        expected = (x - bn.running_mean) / np.sqrt(bn.running_var + bn.eps)
        assert np.allclose(out, expected, atol=1e-6)

    def test_3d_input_per_channel(self, rng):
        bn = nn.BatchNorm1d(4)
        out = bn(Tensor(rng.standard_normal((8, 4, 10)) * 3)).data
        assert np.allclose(out.mean(axis=(0, 2)), 0, atol=1e-7)

    def test_rejects_wrong_ndim(self, rng):
        with pytest.raises(ValueError):
            nn.BatchNorm1d(2)(Tensor(rng.standard_normal((2, 2, 3, 3))))

    def test_gradcheck(self, rng):
        bn = nn.BatchNorm1d(3)
        bn.gamma.data = rng.uniform(0.5, 1.5, 3)
        bn.beta.data = rng.standard_normal(3)
        x = Tensor(rng.standard_normal((6, 3)), requires_grad=True)
        check_gradients(lambda x, g, b: (bn(x) ** 2).sum(),
                        [x, bn.gamma, bn.beta], rtol=1e-3)

    def test_effective_threshold(self):
        bn = nn.BatchNorm1d(2)
        bn.set_buffer("running_mean", np.array([1.0, -1.0]))
        bn.set_buffer("running_var", np.array([4.0, 4.0]))
        bn.gamma.data = np.array([2.0, 2.0])
        bn.beta.data = np.array([1.0, 0.0])
        theta = bn.effective_threshold()
        std = np.sqrt(4.0 + bn.eps)
        assert np.allclose(theta, [1.0 - std / 2.0, -1.0])

    def test_effective_threshold_zero_gamma(self):
        bn = nn.BatchNorm1d(1)
        bn.gamma.data = np.array([0.0])
        assert np.isinf(bn.effective_threshold()[0])


class TestBatchNorm2d:
    def test_normalizes_over_spatial(self, rng):
        bn = nn.BatchNorm2d(3)
        out = bn(Tensor(rng.standard_normal((4, 3, 5, 5)) * 2 + 7)).data
        assert np.allclose(out.mean(axis=(0, 2, 3)), 0, atol=1e-7)

    def test_rejects_wrong_ndim(self, rng):
        with pytest.raises(ValueError):
            nn.BatchNorm2d(3)(Tensor(rng.standard_normal((4, 3))))


class TestInputNorm:
    def test_fit_transform(self, rng):
        norm = nn.InputNorm(3)
        data = rng.standard_normal((100, 3, 20)) * 4 + 2
        norm.fit(data)
        out = norm(Tensor(data)).data
        assert np.allclose(out.mean(axis=(0, 2)), 0, atol=1e-6)
        assert np.allclose(out.std(axis=(0, 2)), 1, atol=1e-2)

    def test_statistics_are_frozen(self, rng):
        norm = nn.InputNorm(2)
        norm.fit(rng.standard_normal((50, 2, 5)))
        before = norm.mean.copy()
        norm(Tensor(rng.standard_normal((10, 2, 5)) + 100))
        assert np.array_equal(norm.mean, before)


class TestDropout:
    def test_eval_is_identity(self, rng):
        drop = nn.Dropout(0.5, rng=rng)
        drop.eval()
        x = rng.standard_normal((10, 10))
        assert np.array_equal(drop(Tensor(x)).data, x)

    def test_train_zeroes_and_rescales(self, rng):
        drop = nn.Dropout(0.8, rng=rng)
        x = np.ones((200, 200))
        out = drop(Tensor(x)).data
        kept = out != 0
        assert abs(kept.mean() - 0.8) < 0.02
        assert np.allclose(out[kept], 1.0 / 0.8)

    def test_keep_prob_one_is_identity(self, rng):
        drop = nn.Dropout(1.0, rng=rng)
        x = rng.standard_normal((5, 5))
        assert np.array_equal(drop(Tensor(x)).data, x)

    def test_invalid_keep_prob(self):
        with pytest.raises(ValueError):
            nn.Dropout(0.0)
        with pytest.raises(ValueError):
            nn.Dropout(1.5)
