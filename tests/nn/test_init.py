"""Tests for weight initialization schemes (repro.nn.init)."""

import numpy as np
import pytest

from repro.nn import init


class TestGlorotUniform:
    def test_bounds(self):
        rng = np.random.default_rng(0)
        fan_in, fan_out = 50, 30
        w = init.glorot_uniform((fan_out, fan_in), fan_in, fan_out, rng)
        limit = np.sqrt(6.0 / (fan_in + fan_out))
        assert np.all(np.abs(w) <= limit)

    def test_variance_scaling(self):
        """Var ~ limit^2/3 = 2/(fan_in+fan_out)."""
        rng = np.random.default_rng(1)
        fan_in, fan_out = 200, 100
        w = init.glorot_uniform((fan_out, fan_in), fan_in, fan_out, rng)
        expected = 2.0 / (fan_in + fan_out)
        assert w.var() == pytest.approx(expected, rel=0.1)

    def test_zero_mean(self):
        rng = np.random.default_rng(2)
        w = init.glorot_uniform((100, 100), 100, 100, rng)
        assert abs(w.mean()) < 0.01

    def test_straddles_zero_for_binarization(self):
        """Roughly half the latent weights must start positive, or the sign
        patterns are uninformative (the docstring's rationale)."""
        rng = np.random.default_rng(3)
        w = init.glorot_uniform((64, 64), 64, 64, rng)
        assert 0.4 < np.mean(w > 0) < 0.6

    def test_deterministic_given_rng(self):
        a = init.glorot_uniform((4, 4), 4, 4, np.random.default_rng(7))
        b = init.glorot_uniform((4, 4), 4, 4, np.random.default_rng(7))
        assert np.array_equal(a, b)


class TestHeNormal:
    def test_variance(self):
        rng = np.random.default_rng(4)
        fan_in = 128
        w = init.he_normal((1000, fan_in), fan_in, rng)
        assert w.var() == pytest.approx(2.0 / fan_in, rel=0.1)

    def test_shape(self):
        rng = np.random.default_rng(5)
        assert init.he_normal((3, 5, 7), 35, rng).shape == (3, 5, 7)


class TestTrivialInits:
    def test_uniform_range(self):
        rng = np.random.default_rng(6)
        w = init.uniform((100,), -0.5, 1.5, rng)
        assert w.min() >= -0.5 and w.max() <= 1.5

    def test_zeros_ones(self):
        assert np.all(init.zeros((2, 3)) == 0)
        assert np.all(init.ones((2, 3)) == 1)
        assert init.zeros((2, 3)).shape == (2, 3)
