"""Packed convolution kernels vs the folded reference — bit-exactness.

Satellite contract: the ``packed`` backend's conv path (bit-packed im2col
for standard convolutions, bit-sliced channel-major kernels for depthwise)
agrees bit-for-bit with the folded integer reference on random conv
blocks, across ragged channel counts, strides, and degenerate batch-norm
channels (``gamma == 0``).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import nn
from repro.nn import (PackedBinaryConv1d, PackedBinaryConv2d,
                      pack_feature_map, unpack_feature_map)
from repro.rram import (fold_conv1d_batchnorm_sign, fold_conv2d_batchnorm_sign,
                        fold_depthwise2d_batchnorm_sign)


def _fitted_bn(n, rng, cls=nn.BatchNorm1d):
    """A batch-norm with realistic running stats and all three gamma-sign
    regimes represented."""
    bn = cls(n)
    bn.set_buffer("running_mean", rng.normal(0, 2, n))
    bn.set_buffer("running_var", rng.uniform(0.5, 3, n))
    bn.gamma.data[:] = rng.choice([-1.5, 0.0, 1.2], n, p=[0.3, 0.2, 0.5])
    bn.beta.data[:] = rng.normal(0, 1, n)
    return bn


class TestPackedConv1d:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 10_000))
    def test_random_blocks_bit_exact(self, seed):
        rng = np.random.default_rng(seed)
        c_in = int(rng.integers(1, 70))
        c_out = int(rng.integers(1, 20))
        kernel = int(rng.integers(1, 8))
        stride = int(rng.integers(1, 3))
        length = kernel + int(rng.integers(0, 30))
        conv = nn.BinaryConv1d(c_in, c_out, kernel, stride=stride, rng=rng)
        folded = fold_conv1d_batchnorm_sign(conv, _fitted_bn(c_out, rng))
        packed = PackedBinaryConv1d(folded)
        x = rng.integers(0, 2, (3, c_in, length)).astype(np.uint8)
        assert np.array_equal(packed.forward_bits(x), folded.forward_bits(x))

    def test_ecg_geometry(self, rng):
        conv = nn.BinaryConv1d(32, 32, 13, rng=rng)
        folded = fold_conv1d_batchnorm_sign(conv, _fitted_bn(32, rng))
        packed = PackedBinaryConv1d(folded)
        x = rng.integers(0, 2, (4, 32, 200)).astype(np.uint8)
        assert np.array_equal(packed.forward_bits(x), folded.forward_bits(x))

    def test_rejects_wrong_shape(self, rng):
        conv = nn.BinaryConv1d(4, 4, 3, rng=rng)
        packed = PackedBinaryConv1d(
            fold_conv1d_batchnorm_sign(conv, _fitted_bn(4, rng)))
        with pytest.raises(ValueError, match="expected"):
            packed.forward_bits(np.zeros((2, 5, 10), dtype=np.uint8))


class TestPackedConv2dStandard:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 10_000))
    def test_random_blocks_bit_exact(self, seed):
        rng = np.random.default_rng(seed)
        c_in = int(rng.integers(1, 70))
        c_out = int(rng.integers(1, 12))
        kernel = int(rng.integers(1, 4))
        stride = int(rng.integers(1, 3))
        side = kernel + int(rng.integers(0, 8))
        conv = nn.BinaryConv2d(c_in, c_out, kernel, stride=stride, rng=rng)
        folded = fold_conv2d_batchnorm_sign(
            conv, _fitted_bn(c_out, rng, nn.BatchNorm2d))
        packed = PackedBinaryConv2d(folded)
        x = rng.integers(0, 2, (2, c_in, side, side)).astype(np.uint8)
        assert np.array_equal(packed.forward_bits(x), folded.forward_bits(x))

    def test_pointwise_words_path_matches(self, rng):
        conv = nn.BinaryConv2d(70, 33, 1, rng=rng)
        folded = fold_conv2d_batchnorm_sign(
            conv, _fitted_bn(33, rng, nn.BatchNorm2d))
        packed = PackedBinaryConv2d(folded)
        x = rng.integers(0, 2, (2, 70, 6, 6)).astype(np.uint8)
        words_out = packed.forward_map(pack_feature_map(x))
        assert np.array_equal(unpack_feature_map(words_out, 33),
                              folded.forward_bits(x))


class TestPackedConv2dDepthwise:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 10_000))
    def test_bitsliced_random_blocks_bit_exact(self, seed):
        rng = np.random.default_rng(seed)
        channels = int(rng.integers(1, 140))
        kernel = int(rng.integers(1, 5))
        stride = int(rng.integers(1, 3))
        side = kernel + int(rng.integers(0, 8))
        conv = nn.BinaryDepthwiseConv2d(channels, kernel, stride=stride,
                                        rng=rng)
        folded = fold_depthwise2d_batchnorm_sign(
            conv, _fitted_bn(channels, rng, nn.BatchNorm2d))
        packed = PackedBinaryConv2d(folded)
        x = rng.integers(0, 2, (2, channels, side, side)).astype(np.uint8)
        assert np.array_equal(packed.forward_bits(x), folded.forward_bits(x))

    def test_words_chaining_separable_block(self, rng):
        """Depthwise -> pointwise chained entirely in the packed domain."""
        channels = 96
        dw = nn.BinaryDepthwiseConv2d(channels, 3, rng=rng)
        pw = nn.BinaryConv2d(channels, 64, 1, rng=rng)
        f_dw = fold_depthwise2d_batchnorm_sign(
            dw, _fitted_bn(channels, rng, nn.BatchNorm2d))
        f_pw = fold_conv2d_batchnorm_sign(
            pw, _fitted_bn(64, rng, nn.BatchNorm2d))
        p_dw, p_pw = PackedBinaryConv2d(f_dw), PackedBinaryConv2d(f_pw)
        x = rng.integers(0, 2, (2, channels, 10, 10)).astype(np.uint8)
        want = f_pw.forward_bits(f_dw.forward_bits(x))
        got = p_pw.forward_map(p_dw.forward_map(pack_feature_map(x)))
        assert np.array_equal(unpack_feature_map(got, 64), want)

    def test_pad_lanes_masked(self, rng):
        """Channel counts off the 64 grid must not leak garbage into the
        pad lanes of the packed output (a chained layer would read them)."""
        channels = 70
        conv = nn.BinaryDepthwiseConv2d(channels, 3, rng=rng)
        folded = fold_depthwise2d_batchnorm_sign(
            conv, _fitted_bn(channels, rng, nn.BatchNorm2d))
        packed = PackedBinaryConv2d(folded)
        x = rng.integers(0, 2, (1, channels, 6, 6)).astype(np.uint8)
        words = packed.forward_map(pack_feature_map(x))
        pad = unpack_bits_hi = np.unpackbits(
            words.view(np.uint8), axis=-1, bitorder="little")[..., channels:]
        assert not pad.any(), unpack_bits_hi.sum()

    def test_gamma_zero_channels_constant(self, rng):
        conv = nn.BinaryDepthwiseConv2d(8, 3, rng=rng)
        bn = nn.BatchNorm2d(8)
        bn.gamma.data[:] = 0.0
        bn.beta.data[:4] = 1.0
        bn.beta.data[4:] = -1.0
        folded = fold_depthwise2d_batchnorm_sign(conv, bn)
        packed = PackedBinaryConv2d(folded)
        x = rng.integers(0, 2, (2, 8, 5, 5)).astype(np.uint8)
        out = packed.forward_bits(x)
        assert (out[:, :4] == 1).all() and (out[:, 4:] == 0).all()
        assert np.array_equal(out, folded.forward_bits(x))


class TestDegenerateThresholds:
    """Non-finite folded thresholds (overflowed batch-norm folds) must keep
    the sign semantics of the float comparison in the integer/bit-sliced
    threshold paths."""

    @pytest.mark.parametrize("theta_value,expected_pos", [
        (np.inf, 0),      # dot >= +inf never fires
        (-np.inf, 1),     # dot >= -inf always fires
    ])
    def test_infinite_theta_standard_conv(self, rng, theta_value,
                                          expected_pos):
        from repro.rram.conv2d import FoldedBinaryConv2d
        folded = FoldedBinaryConv2d(
            weight_bits=rng.integers(0, 2, (3, 4 * 2 * 2)).astype(np.uint8),
            in_channels=4, kernel_size=(2, 2), stride=(1, 1),
            theta=np.full(3, theta_value),
            gamma_sign=np.ones(3), beta_sign=np.ones(3))
        packed = PackedBinaryConv2d(folded)
        x = rng.integers(0, 2, (2, 4, 5, 5)).astype(np.uint8)
        want = folded.forward_bits(x)
        got = packed.forward_bits(x)
        assert (got == expected_pos).all()
        assert np.array_equal(got, want)

    @pytest.mark.parametrize("theta_value", [np.inf, -np.inf])
    @pytest.mark.parametrize("gamma", [1.0, -1.0])
    def test_infinite_theta_depthwise_bitsliced(self, rng, theta_value,
                                                gamma):
        from repro.rram.conv2d import FoldedBinaryConv2d
        c = 6
        folded = FoldedBinaryConv2d(
            weight_bits=rng.integers(0, 2, (c, 9)).astype(np.uint8),
            in_channels=c, kernel_size=(3, 3), stride=(1, 1),
            theta=np.full(c, theta_value),
            gamma_sign=np.full(c, gamma), beta_sign=np.ones(c),
            depthwise=True)
        packed = PackedBinaryConv2d(folded)
        x = rng.integers(0, 2, (2, c, 6, 6)).astype(np.uint8)
        assert np.array_equal(packed.forward_bits(x),
                              folded.forward_bits(x))


class TestPackedXorCountsValidation:
    def test_word_mismatch_raises(self):
        from repro.nn.bitops import packed_xor_counts
        from repro.nn import pack_bits
        a = pack_bits(np.ones((2, 64), dtype=np.uint8))
        b = pack_bits(np.ones((3, 128), dtype=np.uint8))
        with pytest.raises(ValueError, match="mismatch"):
            packed_xor_counts(a, b)

    def test_non_2d_raises(self):
        from repro.nn.bitops import packed_xor_counts
        from repro.nn import pack_bits
        a = pack_bits(np.ones(64, dtype=np.uint8))
        with pytest.raises(ValueError, match="2-D"):
            packed_xor_counts(a, a)
