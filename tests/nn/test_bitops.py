"""Tests for the packed-word XNOR-popcount kernel (repro.nn.bitops)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import (PackedBinaryDense, pack_bits, packed_column_slice,
                      packed_xnor_popcount, packed_xnor_popcount_stacked,
                      unpack_bits, xnor_popcount)
from repro.nn.binary import FoldedBinaryDense


class TestPackUnpack:
    def test_round_trip_exact_multiple(self):
        rng = np.random.default_rng(0)
        bits = rng.integers(0, 2, size=(5, 128)).astype(np.uint8)
        assert np.array_equal(unpack_bits(pack_bits(bits), 128), bits)

    def test_round_trip_ragged_width(self):
        rng = np.random.default_rng(1)
        for width in (1, 7, 63, 64, 65, 100, 129):
            bits = rng.integers(0, 2, size=(3, width)).astype(np.uint8)
            assert np.array_equal(unpack_bits(pack_bits(bits), width), bits)

    def test_word_count(self):
        assert pack_bits(np.zeros((2, 64), dtype=np.uint8)).shape == (2, 1)
        assert pack_bits(np.zeros((2, 65), dtype=np.uint8)).shape == (2, 2)
        assert pack_bits(np.zeros((2, 1), dtype=np.uint8)).shape == (2, 1)

    def test_little_endian_layout(self):
        bits = np.zeros(64, dtype=np.uint8)
        bits[0] = 1
        assert pack_bits(bits).tolist() == [1]
        bits = np.zeros(64, dtype=np.uint8)
        bits[63] = 1
        assert pack_bits(bits).tolist() == [2 ** 63]

    def test_non_binary_rejected(self):
        with pytest.raises(ValueError, match="0/1"):
            pack_bits(np.array([0, 2]))

    def test_unpack_width_overflow_rejected(self):
        words = pack_bits(np.zeros(64, dtype=np.uint8))
        with pytest.raises(ValueError, match="at most"):
            unpack_bits(words, 65)

    def test_batch_axes_preserved(self):
        bits = np.zeros((2, 3, 70), dtype=np.uint8)
        assert pack_bits(bits).shape == (2, 3, 2)
        assert unpack_bits(pack_bits(bits), 70).shape == (2, 3, 70)


class TestPackedXnorPopcount:
    def test_matches_reference_kernel(self):
        rng = np.random.default_rng(2)
        x = rng.integers(0, 2, size=(10, 200)).astype(np.uint8)
        w = rng.integers(0, 2, size=(7, 200)).astype(np.uint8)
        packed = packed_xnor_popcount(pack_bits(x), pack_bits(w), 200)
        assert np.array_equal(packed, xnor_popcount(x, w))

    def test_pad_bits_not_counted(self):
        # width 1: a single agreeing bit must give popcount exactly 1.
        x = np.array([[1]], dtype=np.uint8)
        w = np.array([[1]], dtype=np.uint8)
        out = packed_xnor_popcount(pack_bits(x), pack_bits(w), 1)
        assert out.tolist() == [[1]]

    def test_all_agree_and_all_disagree(self):
        ones = np.ones((1, 100), dtype=np.uint8)
        zeros = np.zeros((1, 100), dtype=np.uint8)
        assert packed_xnor_popcount(pack_bits(ones), pack_bits(ones),
                                    100).item() == 100
        assert packed_xnor_popcount(pack_bits(ones), pack_bits(zeros),
                                    100).item() == 0

    def test_word_mismatch_raises(self):
        a = pack_bits(np.zeros((1, 64), dtype=np.uint8))
        b = pack_bits(np.zeros((1, 128), dtype=np.uint8))
        with pytest.raises(ValueError, match="mismatch"):
            packed_xnor_popcount(a, b, 64)

    def test_impossible_width_raises(self):
        a = pack_bits(np.zeros((1, 64), dtype=np.uint8))
        with pytest.raises(ValueError, match="impossible"):
            packed_xnor_popcount(a, a, 65)

    def test_non_2d_raises(self):
        a = pack_bits(np.zeros(64, dtype=np.uint8))
        with pytest.raises(ValueError, match="2-D"):
            packed_xnor_popcount(a, a, 64)

    @settings(max_examples=50, deadline=None)
    @given(st.integers(1, 300), st.integers(0, 2 ** 31))
    def test_equivalence_property(self, width, seed):
        """Packed kernel == matmul kernel for any width and bit pattern."""
        rng = np.random.default_rng(seed)
        x = rng.integers(0, 2, size=(4, width)).astype(np.uint8)
        w = rng.integers(0, 2, size=(3, width)).astype(np.uint8)
        assert np.array_equal(
            packed_xnor_popcount(pack_bits(x), pack_bits(w), width),
            xnor_popcount(x, w))


class TestPackedXnorPopcountStacked:
    def _stacks(self, seed=3, s=4, n=5, m=7, width=131):
        rng = np.random.default_rng(seed)
        x = rng.integers(0, 2, (n, width)).astype(np.uint8)
        w = rng.integers(0, 2, (s, m, width)).astype(np.uint8)
        return x, w

    def test_shared_activations_match_per_stack_kernel(self):
        x, w = self._stacks()
        widths = np.full(4, 131, dtype=np.int64)
        stacked = packed_xnor_popcount_stacked(
            pack_bits(x), pack_bits(w), widths)
        expected = np.stack([packed_xnor_popcount(pack_bits(x),
                                                  pack_bits(w[s]), 131)
                             for s in range(4)])
        assert np.array_equal(stacked, expected)

    def test_per_stack_activations_match(self):
        x, w = self._stacks()
        xs = np.stack([np.roll(x, s, axis=0) for s in range(4)])
        widths = np.full(4, 131, dtype=np.int64)
        stacked = packed_xnor_popcount_stacked(
            pack_bits(xs), pack_bits(w), widths)
        expected = np.stack([packed_xnor_popcount(pack_bits(xs[s]),
                                                  pack_bits(w[s]), 131)
                             for s in range(4)])
        assert np.array_equal(stacked, expected)

    def test_per_stack_widths_respected(self):
        """Bits above a stack's width are zero in both operands — they
        never disagree, so agreements = width - disagreements stays exact
        even when widths differ per stack."""
        rng = np.random.default_rng(9)
        widths = np.array([131, 70, 1], dtype=np.int64)
        w = np.zeros((3, 4, 131), dtype=np.uint8)
        x = np.zeros((6, 131), dtype=np.uint8)
        x[:, :] = rng.integers(0, 2, (6, 131))
        for s, width in enumerate(widths):
            w[s, :, :width] = rng.integers(0, 2, (4, width))
        xs = np.stack([np.where(np.arange(131) < width, x, 0)
                       for width in widths]).astype(np.uint8)
        stacked = packed_xnor_popcount_stacked(
            pack_bits(xs), pack_bits(w), widths)
        for s, width in enumerate(widths):
            expected = packed_xnor_popcount(
                pack_bits(xs[s, :, :width]),
                pack_bits(w[s, :, :width]), int(width))
            assert np.array_equal(stacked[s], expected)

    def test_shape_and_width_validation(self):
        x, w = self._stacks()
        xw, ww = pack_bits(x), pack_bits(w)
        widths = np.full(4, 131, dtype=np.int64)
        with pytest.raises(ValueError):
            packed_xnor_popcount_stacked(xw, ww[0], widths)
        with pytest.raises(ValueError):
            packed_xnor_popcount_stacked(xw[:, :-1], ww, widths)
        with pytest.raises(ValueError):
            packed_xnor_popcount_stacked(xw, ww, np.full(3, 131))
        with pytest.raises(ValueError):
            packed_xnor_popcount_stacked(xw, ww, np.full(4, 10_000))

    def test_empty_axes(self):
        x, w = self._stacks()
        widths = np.full(4, 131, dtype=np.int64)
        empty = packed_xnor_popcount_stacked(
            pack_bits(x[:0]), pack_bits(w), widths)
        assert empty.shape == (4, 0, 7)


class TestPackedColumnSlice:
    def test_misaligned_slice_equals_pack_of_bit_slice(self):
        rng = np.random.default_rng(5)
        bits = rng.integers(0, 2, (6, 200)).astype(np.uint8)
        words = pack_bits(bits)
        for start, stop in [(0, 200), (0, 64), (1, 65), (63, 129),
                            (64, 128), (70, 70), (131, 200), (199, 200)]:
            assert np.array_equal(packed_column_slice(words, start, stop),
                                  pack_bits(bits[:, start:stop])), \
                (start, stop)

    def test_invalid_range_raises(self):
        words = pack_bits(np.zeros((2, 100), dtype=np.uint8))
        with pytest.raises(ValueError):
            packed_column_slice(words, -1, 10)
        with pytest.raises(ValueError):
            packed_column_slice(words, 5, 3)
        with pytest.raises(ValueError):
            packed_column_slice(words, 0, 64 * words.shape[-1] + 1)


class TestPackedBinaryDense:
    def _folded(self, in_f=150, out_f=20, seed=3) -> FoldedBinaryDense:
        rng = np.random.default_rng(seed)
        return FoldedBinaryDense(
            weight_bits=rng.integers(0, 2, (out_f, in_f)).astype(np.uint8),
            theta=rng.normal(scale=5.0, size=out_f),
            gamma_sign=rng.choice([-1.0, 0.0, 1.0], size=out_f),
            beta_sign=rng.choice([-1.0, 1.0], size=out_f),
        )

    def test_bit_exact_with_unpacked_layer(self):
        folded = self._folded()
        packed = PackedBinaryDense(folded)
        rng = np.random.default_rng(4)
        x = rng.integers(0, 2, size=(32, folded.in_features)).astype(np.uint8)
        assert np.array_equal(packed.forward_bits(x), folded.forward_bits(x))

    def test_word_to_word_chaining(self):
        """Two packed layers chained stay bit-exact with unpacked chain."""
        first = self._folded(in_f=150, out_f=64, seed=5)
        second = self._folded(in_f=64, out_f=10, seed=6)
        p1, p2 = PackedBinaryDense(first), PackedBinaryDense(second)
        rng = np.random.default_rng(7)
        x = rng.integers(0, 2, size=(16, 150)).astype(np.uint8)
        packed_out = p2.forward_bits_from_words(p1.forward_words(pack_bits(x)))
        unpacked_out = second.forward_bits(first.forward_bits(x))
        assert np.array_equal(packed_out, unpacked_out)

    def test_shapes_exposed(self):
        packed = PackedBinaryDense(self._folded(in_f=100, out_f=8))
        assert packed.in_features == 100
        assert packed.out_features == 8
        assert packed.weight_words.shape == (8, 2)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 10_000))
    def test_exactness_property(self, seed):
        folded = self._folded(in_f=97, out_f=11, seed=seed)
        packed = PackedBinaryDense(folded)
        rng = np.random.default_rng(seed + 1)
        x = rng.integers(0, 2, size=(8, 97)).astype(np.uint8)
        assert np.array_equal(packed.forward_bits(x), folded.forward_bits(x))


class TestPadCorrection:
    def test_exact_values(self):
        from repro.nn import pad_correction
        assert pad_correction(1, 64) == 0
        assert pad_correction(2, 65) == 63
        assert pad_correction(0, 0) == 0
        assert pad_correction(3, 100) == 92

    def test_rejects_impossible_width(self):
        from repro.nn import pad_correction
        with pytest.raises(ValueError, match="impossible"):
            pad_correction(1, 65)
        with pytest.raises(ValueError, match="impossible"):
            pad_correction(1, -1)

    @settings(max_examples=50, deadline=None)
    @given(st.integers(1, 300), st.integers(0, 2 ** 31))
    def test_raw_popcount_minus_pad_is_exact(self, width, seed):
        """The documented identity: raw XNOR popcount over padded words
        equals the true agreement count plus the pad correction."""
        from repro.nn import pad_correction
        rng = np.random.default_rng(seed)
        x = rng.integers(0, 2, size=(3, width)).astype(np.uint8)
        w = rng.integers(0, 2, size=(2, width)).astype(np.uint8)
        xw, ww = pack_bits(x), pack_bits(w)
        raw = np.bitwise_count(~(xw[:, None, :] ^ ww[None, :, :])) \
            .sum(axis=-1, dtype=np.int64)
        correction = pad_correction(xw.shape[-1], width)
        assert np.array_equal(raw - correction, xnor_popcount(x, w))


class TestRoundTripEveryWidth:
    @pytest.mark.parametrize("width", range(1, 131))
    def test_round_trip(self, width):
        """Satellite contract: pack/unpack round-trips widths 1..130."""
        rng = np.random.default_rng(width)
        bits = rng.integers(0, 2, size=(4, width)).astype(np.uint8)
        words = pack_bits(bits)
        assert words.shape == (4, -(-width // 64))
        assert np.array_equal(unpack_bits(words, width), bits)

    def test_zero_width(self):
        bits = np.zeros((3, 0), dtype=np.uint8)
        words = pack_bits(bits)
        assert words.shape == (3, 0)
        assert np.array_equal(unpack_bits(words, 0), bits)


class TestPackedWeightCaching:
    def test_weights_packed_once_at_construction(self):
        """Per-call work must not re-pack the weight words."""
        folded = FoldedBinaryDense(
            weight_bits=np.eye(8, 100, dtype=np.uint8),
            theta=np.zeros(8), gamma_sign=np.ones(8), beta_sign=np.ones(8))
        packed = PackedBinaryDense(folded)
        cached = packed.weight_words
        x = np.random.default_rng(0).integers(0, 2, (4, 100)).astype(np.uint8)
        packed.forward_bits(x)
        packed.forward_bits(x)
        assert packed.weight_words is cached
        # Mutating the folded weights must NOT affect the packed layer:
        # packing happened once, at construction.
        folded.weight_bits[:] = 1 - folded.weight_bits
        before = packed.forward_bits(x)
        assert np.array_equal(before, packed.forward_bits(x))


class TestPackedOutputDense:
    def _folded(self, in_f=130, classes=4, seed=11):
        from repro.nn.binary import FoldedOutputDense
        rng = np.random.default_rng(seed)
        return FoldedOutputDense(
            weight_bits=rng.integers(0, 2, (classes, in_f)).astype(np.uint8),
            scale=rng.normal(size=classes),
            offset=rng.normal(size=classes))

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 10_000))
    def test_scores_and_predictions_match_reference(self, seed):
        from repro.nn import PackedOutputDense
        folded = self._folded(seed=seed)
        packed = PackedOutputDense(folded)
        rng = np.random.default_rng(seed + 1)
        x = rng.integers(0, 2, (8, folded.in_features)).astype(np.uint8)
        assert np.allclose(packed.forward_scores(x),
                           folded.forward_scores(x))
        assert np.array_equal(packed.predict(x), folded.predict(x))
