"""Hygiene checks on the public API surface.

A downstream user's first contact is ``from repro.<pkg> import <name>``;
these tests pin that every advertised name exists, is documented, and that
the package inventory matches DESIGN.md's promises.
"""

import importlib
import inspect

import pytest

import repro

PACKAGES = ["repro", "repro.tensor", "repro.nn", "repro.optim", "repro.data",
            "repro.models", "repro.rram", "repro.analysis", "repro.metrics",
            "repro.experiments", "repro.viz", "repro.cli", "repro.io"]


@pytest.mark.parametrize("package_name", PACKAGES)
class TestPackageSurface:
    def test_has_all_and_docstring(self, package_name):
        pkg = importlib.import_module(package_name)
        assert pkg.__doc__, f"{package_name} lacks a module docstring"
        assert hasattr(pkg, "__all__"), f"{package_name} lacks __all__"

    def test_all_names_resolve(self, package_name):
        pkg = importlib.import_module(package_name)
        for name in pkg.__all__:
            assert hasattr(pkg, name), f"{package_name}.{name} missing"

    def test_public_callables_documented(self, package_name):
        pkg = importlib.import_module(package_name)
        undocumented = []
        for name in pkg.__all__:
            obj = getattr(pkg, name)
            if callable(obj) and not inspect.getdoc(obj):
                undocumented.append(name)
        assert not undocumented, (
            f"{package_name} exports undocumented callables: {undocumented}")


class TestTopLevel:
    def test_version_is_semver(self):
        parts = repro.__version__.split(".")
        assert len(parts) == 3
        assert all(p.isdigit() for p in parts)

    def test_subpackages_reachable_from_root(self):
        for name in ("tensor", "nn", "optim", "data", "models", "rram",
                     "analysis", "experiments"):
            assert hasattr(repro, name)

    def test_no_name_collisions_across_packages(self):
        """A symbol exported by two packages must be the same object
        (re-export), never two different things with one name."""
        seen: dict[str, tuple[str, object]] = {}
        for package_name in PACKAGES[1:]:
            pkg = importlib.import_module(package_name)
            for name in pkg.__all__:
                obj = getattr(pkg, name)
                if name in seen and seen[name][1] is not obj:
                    other_pkg = seen[name][0]
                    raise AssertionError(
                        f"{name} exported by both {other_pkg} and "
                        f"{package_name} as different objects")
                seen.setdefault(name, (package_name, obj))

    def test_design_md_inventory_importable(self):
        """Every module DESIGN.md's system inventory references exists."""
        import pathlib
        import re
        text = (pathlib.Path(__file__).parents[1] / "DESIGN.md").read_text()
        modules = set(re.findall(r"`(repro(?:\.\w+)+)`", text))
        for module in sorted(modules):
            importlib.import_module(module)
