"""Consistency checks between the examples, benches and documentation."""

import pathlib
import py_compile

import pytest

ROOT = pathlib.Path(__file__).parents[1]
EXAMPLES = sorted((ROOT / "examples").glob("*.py"))
BENCHES = sorted((ROOT / "benchmarks").glob("bench_*.py"))


class TestExamples:
    def test_at_least_ten_examples(self):
        assert len(EXAMPLES) >= 10

    @pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
    def test_example_compiles(self, path, tmp_path):
        py_compile.compile(str(path), cfile=str(tmp_path / "out.pyc"),
                           doraise=True)

    @pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
    def test_example_has_docstring_and_run_line(self, path):
        source = path.read_text()
        assert source.startswith('"""'), f"{path.name} lacks a docstring"
        assert "Run:" in source, f"{path.name} docstring lacks a Run: line"
        assert '__main__' in source

    @pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
    def test_example_listed_in_readme(self, path):
        readme = (ROOT / "README.md").read_text()
        assert f"examples/{path.name}" in readme, (
            f"{path.name} missing from the README examples table")


class TestBenches:
    def test_every_paper_artefact_has_a_bench(self):
        names = {p.name for p in BENCHES}
        for required in ("bench_fig4_bit_error_rate.py",
                         "bench_table1_eeg_architecture.py",
                         "bench_table2_ecg_architecture.py",
                         "bench_table3_accuracy.py",
                         "bench_table4_memory.py",
                         "bench_fig7_filter_augmentation.py",
                         "bench_fig8_mobilenet_training.py"):
            assert required in names

    @pytest.mark.parametrize("path", BENCHES, ids=lambda p: p.name)
    def test_bench_compiles(self, path, tmp_path):
        py_compile.compile(str(path), cfile=str(tmp_path / "out.pyc"),
                           doraise=True)

    @pytest.mark.parametrize("path", BENCHES, ids=lambda p: p.name)
    def test_bench_documents_its_claim(self, path):
        """Every harness docstring must tie itself to the paper artefact
        it regenerates (a table, figure, section or reference claim)."""
        source = path.read_text()
        head = source.split('"""')[1]
        assert any(token in head for token in
                   ("Fig.", "Table", "§", "sec.", "ref.", "claim",
                    "reference", "companion")), path.name

    def test_benches_covered_by_registry(self):
        """Every bench file is reachable from the CLI registry (so
        `repro list` is a complete catalogue)."""
        from repro.cli import EXPERIMENTS
        registered = {info.bench.split("/")[-1]
                      for info in EXPERIMENTS.values()}
        on_disk = {p.name for p in BENCHES}
        assert registered <= on_disk
        missing = on_disk - registered
        assert not missing, f"benches not in the registry: {missing}"


class TestDocs:
    def test_experiments_md_mentions_every_registry_id(self):
        from repro.cli import EXPERIMENTS
        text = (ROOT / "EXPERIMENTS.md").read_text()
        for exp_id, info in EXPERIMENTS.items():
            bench_name = info.bench.split("/")[-1].removesuffix(".py")
            assert exp_id in text or bench_name in text, (
                f"{exp_id} ({bench_name}) absent from EXPERIMENTS.md")

    def test_design_md_covers_new_subsystems(self):
        text = (ROOT / "DESIGN.md").read_text()
        for module in ("repro.rram.analog", "repro.rram.floorplan",
                       "repro.nn.bitops", "repro.nn.quant",
                       "repro.data.filters", "repro.metrics", "repro.io",
                       "repro.viz", "repro.cli", "repro.rram.conv2d"):
            assert module in text, f"{module} missing from DESIGN.md"

    def test_readme_quickstart_code_runs_conceptually(self):
        """The README's code block imports must all resolve."""
        from repro.data import make_ecg_dataset, ECGConfig          # noqa
        from repro.models import ECGNet, BinarizationMode           # noqa
        from repro.experiments import train_model, TrainConfig      # noqa
        from repro.rram import (deploy_classifier,                  # noqa
                                classifier_input_bits,
                                AcceleratorConfig)
