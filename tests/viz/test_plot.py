"""Tests for the ASCII plotting utilities (repro.viz)."""

import numpy as np
import pytest

from repro.viz import histogram, line_plot, sparkline


class TestLinePlot:
    def test_contains_title_and_legend(self):
        out = line_plot({"a": ([1, 2, 3], [1, 4, 9])}, title="squares")
        assert "squares" in out
        assert "* a" in out

    def test_two_series_distinct_markers(self):
        out = line_plot({"first": ([0, 1], [0, 1]),
                         "second": ([0, 1], [1, 0])})
        assert "* first" in out and "+ second" in out
        body = out.split("\n")
        assert any("*" in line for line in body)
        assert any("+" in line for line in body)

    def test_log_y_axis_ticks_in_original_units(self):
        out = line_plot({"ber": ([1, 2, 3], [1e-5, 1e-4, 1e-3])}, y_log=True)
        assert "0.001" in out
        assert "1e-05" in out

    def test_log_axis_rejects_nonpositive(self):
        with pytest.raises(ValueError, match="positive"):
            line_plot({"a": ([1, 2], [0.0, 1.0])}, y_log=True)

    def test_nan_points_dropped(self):
        out = line_plot({"a": ([1, 2, 3], [1.0, np.nan, 3.0])})
        assert out  # renders without error

    def test_all_nan_raises(self):
        with pytest.raises(ValueError, match="finite"):
            line_plot({"a": ([1.0], [np.nan])})

    def test_empty_series_dict_raises(self):
        with pytest.raises(ValueError, match="at least one"):
            line_plot({})

    def test_single_point_renders(self):
        out = line_plot({"dot": ([5.0], [7.0])})
        assert "*" in out

    def test_constant_series_no_divide_by_zero(self):
        out = line_plot({"flat": ([1, 2, 3], [4.0, 4.0, 4.0])})
        assert "*" in out

    def test_too_small_canvas_raises(self):
        with pytest.raises(ValueError, match="at least"):
            line_plot({"a": ([1], [1])}, width=5, height=2)

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError, match="mismatch"):
            line_plot({"a": ([1, 2], [1])})

    def test_dimensions_respected(self):
        out = line_plot({"a": ([0, 1], [0, 1])}, width=30, height=8)
        plot_rows = [l for l in out.split("\n") if "|" in l]
        assert len(plot_rows) == 8

    def test_axis_labels_rendered(self):
        out = line_plot({"a": ([0, 1], [0, 1])},
                        x_label="cycles", y_label="error rate")
        assert "cycles" in out
        assert "error rate" in out

    def test_monotone_series_renders_monotone(self):
        """The marker column order must follow the data order."""
        out = line_plot({"up": ([0, 1, 2, 3], [0, 1, 2, 3])},
                        width=20, height=10)
        rows = [l.split("|")[1] for l in out.split("\n") if "|" in l]
        # Row index of the marker per column, top=0; must be non-increasing
        # with column (y grows upward).
        positions = {}
        for r, row in enumerate(rows):
            for c, ch in enumerate(row):
                if ch == "*":
                    positions.setdefault(c, r)
        cols = sorted(positions)
        marker_rows = [positions[c] for c in cols]
        assert marker_rows == sorted(marker_rows, reverse=True)


class TestHistogram:
    def test_counts_sum_preserved(self):
        rng = np.random.default_rng(0)
        values = rng.normal(size=500)
        out = histogram(values, bins=10)
        counts = [int(line.rsplit(" ", 1)[1]) for line in out.split("\n")]
        assert sum(counts) == 500

    def test_title_rendered(self):
        out = histogram([1, 2, 3], bins=3, title="resistances")
        assert "resistances" in out

    def test_peak_bin_longest_bar(self):
        values = [1.0] * 10 + [2.0]
        out = histogram(values, bins=2)
        lines = out.split("\n")
        assert lines[0].count("#") > lines[1].count("#")

    def test_empty_raises(self):
        with pytest.raises(ValueError, match="finite"):
            histogram([np.nan, np.inf])

    def test_bad_bins_raises(self):
        with pytest.raises(ValueError, match="bins"):
            histogram([1.0], bins=0)

    def test_log_counts_compresses(self):
        values = [1.0] * 1000 + [2.0]
        linear = histogram(values, bins=2)
        log = histogram(values, bins=2, log_counts=True)
        small_bar_linear = linear.split("\n")[1].count("#")
        small_bar_log = log.split("\n")[1].count("#")
        assert small_bar_log > small_bar_linear


class TestSparkline:
    def test_length_matches_input(self):
        assert len(sparkline([1, 2, 3, 4])) == 4

    def test_monotone_blocks(self):
        line = sparkline([0, 1, 2, 3, 4, 5, 6, 7])
        assert list(line) == sorted(line)

    def test_constant_input(self):
        line = sparkline([5, 5, 5])
        assert len(set(line)) == 1

    def test_nan_shown_as_question_mark(self):
        assert "?" in sparkline([1.0, np.nan, 2.0])

    def test_all_nan_raises(self):
        with pytest.raises(ValueError, match="finite"):
            sparkline([np.nan])
