"""Tests for the deployment-lifetime composition (repro.analysis.lifetime)."""

import numpy as np
import pytest

from repro.analysis import (accuracy_vs_cycles, interpolate_accuracy,
                            usable_cycles)
from repro.rram import DeviceParameters, analytic_ber_1t1r, analytic_ber_2t2r

# A representative fault-injection measurement (XTRA2 shape): flat through
# the 2T2R regime, collapsing at high BER.
BER_GRID = np.array([0.0, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.5])
ACC_GRID = np.array([0.85, 0.85, 0.85, 0.85, 0.84, 0.78, 0.65, 0.52])


class TestInterpolateAccuracy:
    def test_hits_measured_points(self):
        fn = interpolate_accuracy(BER_GRID, ACC_GRID)
        assert fn(np.array([1e-4])).item() == pytest.approx(0.85)
        assert fn(np.array([0.1])).item() == pytest.approx(0.65)

    def test_log_interpolation_between_points(self):
        fn = interpolate_accuracy(BER_GRID, ACC_GRID)
        # Geometric midpoint of 1e-2 and 1e-1 -> arithmetic midpoint of
        # the accuracies under log-linear interpolation.
        mid = fn(np.array([np.sqrt(1e-2 * 0.1)])).item()
        assert mid == pytest.approx((0.78 + 0.65) / 2, abs=1e-6)

    def test_below_smallest_ber_uses_clean_accuracy(self):
        fn = interpolate_accuracy(BER_GRID, ACC_GRID)
        assert fn(np.array([1e-9])).item() == pytest.approx(0.85)
        assert fn(np.array([0.0])).item() == pytest.approx(0.85)

    def test_above_largest_ber_clamps(self):
        fn = interpolate_accuracy(BER_GRID, ACC_GRID)
        assert fn(np.array([0.9])).item() == pytest.approx(0.52)

    def test_unsorted_input_accepted(self):
        perm = np.random.default_rng(0).permutation(len(BER_GRID))
        fn = interpolate_accuracy(BER_GRID[perm], ACC_GRID[perm])
        assert fn(np.array([1e-5])).item() == pytest.approx(0.85)

    def test_validation(self):
        with pytest.raises(ValueError, match="equal-length"):
            interpolate_accuracy(BER_GRID, ACC_GRID[:-1])
        with pytest.raises(ValueError, match="two"):
            interpolate_accuracy([1e-3], [0.8])
        with pytest.raises(ValueError, match="negative"):
            interpolate_accuracy([-1e-3, 1e-2], [0.8, 0.7])
        with pytest.raises(ValueError, match="duplicate"):
            interpolate_accuracy([1e-3, 1e-3], [0.8, 0.7])


class TestComposition:
    def setup_method(self):
        self.params = DeviceParameters()
        self.acc_of_ber = interpolate_accuracy(BER_GRID, ACC_GRID)

    def test_accuracy_declines_with_wear(self):
        cycles = np.geomspace(1e8, 1e11, 30)
        acc_1t1r = accuracy_vs_cycles(
            cycles, lambda c: analytic_ber_1t1r(self.params, c),
            self.acc_of_ber)
        assert np.all(np.diff(acc_1t1r) <= 1e-12)

    def test_2t2r_outlives_1t1r(self):
        """The paper's differential read buys deployment lifetime."""
        budget = 0.84
        life_1t1r = usable_cycles(
            budget, lambda c: analytic_ber_1t1r(self.params, c),
            self.acc_of_ber)
        life_2t2r = usable_cycles(
            budget, lambda c: analytic_ber_2t2r(self.params, c),
            self.acc_of_ber)
        assert life_2t2r > 5 * life_1t1r

    def test_impossible_budget_gives_zero(self):
        life = usable_cycles(
            0.99, lambda c: analytic_ber_1t1r(self.params, c),
            self.acc_of_ber)
        assert life == 0.0

    def test_trivial_budget_gives_inf(self):
        life = usable_cycles(
            0.01, lambda c: analytic_ber_2t2r(self.params, c),
            self.acc_of_ber)
        assert life == float("inf")

    def test_budget_monotone_in_lifetime(self):
        lifetimes = [usable_cycles(
            b, lambda c: analytic_ber_1t1r(self.params, c),
            self.acc_of_ber) for b in (0.60, 0.80, 0.845)]
        assert lifetimes == sorted(lifetimes, reverse=True)

    def test_validation(self):
        with pytest.raises(ValueError, match="budget"):
            usable_cycles(1.5, lambda c: c, self.acc_of_ber)
        with pytest.raises(ValueError, match="cycle range"):
            usable_cycles(0.8, lambda c: c, self.acc_of_ber,
                          cycle_range=(10, 1))
        with pytest.raises(ValueError, match="positive"):
            accuracy_vs_cycles(np.array([0.0]), lambda c: c,
                               self.acc_of_ber)

    def test_composes_with_retention_time(self):
        """Same machinery answers 'how long can the chip store weights'."""
        from repro.rram import RetentionModel, retention_ber_2t2r

        retention = RetentionModel()
        hours = usable_cycles(
            0.84,
            lambda h: retention_ber_2t2r(self.params, retention, h),
            self.acc_of_ber, cycle_range=(1.0, 1e7))
        assert hours > 1.0  # survives more than an hour of storage
