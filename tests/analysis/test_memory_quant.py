"""Memory accounting (Table IV) and quantization reference."""

import numpy as np
import pytest

from repro import nn
from repro.analysis import (MemoryBreakdown, equivalent_bits, format_bytes,
                            model_memory, quantization_error, quantize_array,
                            quantize_model_weights)
from repro.models import ECGNet, EEGNet, MobileNetConfig, MobileNetV1
from repro.tensor import Tensor


class TestMemoryBreakdown:
    def test_eeg_row_matches_paper(self, rng):
        """Paper Table IV: EEG 0.31M params, 1.17MB/305KB, 64%/57.8%."""
        breakdown = model_memory("EEG", EEGNet(rng=rng))
        assert abs(breakdown.total_params - 0.306e6) < 0.01e6
        assert abs(breakdown.size_bytes(32) / 2 ** 20 - 1.17) < 0.02
        assert abs(breakdown.size_bytes(8) / 2 ** 10 - 305) < 10
        assert abs(breakdown.classifier_binarization_saving(32) - 0.64) < 0.01
        assert abs(breakdown.classifier_binarization_saving(8) - 0.578) < 0.01

    def test_mobilenet_row_close_to_paper(self, rng):
        """Paper: MobileNet 4.2M, 16.2MB/4.1MB, ~20%/7.3% savings, where
        the binarized classifier is the paper's two-layer 5.7M-bit
        replacement."""
        from repro.models import BinarizationMode
        real = MobileNetV1(MobileNetConfig.paper(),
                           mode=BinarizationMode.REAL, rng=rng)
        binarized = MobileNetV1(MobileNetConfig.paper(),
                                mode=BinarizationMode.BINARY_CLASSIFIER,
                                rng=rng)
        breakdown = model_memory(
            "MobileNet", real,
            binary_classifier_params=binarized.classifier_parameters())
        assert abs(breakdown.size_bytes(32) / 2 ** 20 - 16.2) < 1.0
        assert abs(breakdown.classifier_binarization_saving(32) - 0.20) < 0.03
        assert abs(breakdown.classifier_binarization_saving(8) - 0.073) < 0.05

    def test_saving_formula_sanity(self):
        b = MemoryBreakdown("toy", feature_params=0, classifier_params=100)
        # Fully classifier-dominated: saving = 1 - 1/32.
        assert np.isclose(b.classifier_binarization_saving(32), 31 / 32)

    def test_classifier_fraction(self):
        b = MemoryBreakdown("toy", 30, 70)
        assert np.isclose(b.classifier_fraction(), 0.7)

    def test_format_bytes(self):
        assert format_bytes(1.17 * 2 ** 20) == "1.17MB"
        assert format_bytes(305 * 2 ** 10) == "305KB"

    def test_table_row_strings(self, rng):
        row = model_memory("ECG", ECGNet(rng=rng)).table_row()
        assert row[0] == "ECG"
        assert "MB" in row[3]

    def test_equivalent_bits(self):
        real = MemoryBreakdown("m", 100, 100)
        bnn7 = MemoryBreakdown("m7", 700, 700)
        ratio = equivalent_bits(real, bnn7)
        # 1400 binary vs 100*32 + 100 = 3300 mixed bits.
        assert np.isclose(ratio, 1400 / 3300)


class TestQuantization:
    def test_roundtrip_error_small_at_8_bits(self, rng):
        values = rng.standard_normal(1000)
        assert quantization_error(values, 8) < 0.01

    def test_error_grows_as_bits_shrink(self, rng):
        values = rng.standard_normal(1000)
        errs = [quantization_error(values, b) for b in (8, 4, 2)]
        assert errs[0] < errs[1] < errs[2]

    def test_quantized_values_on_grid(self, rng):
        values = rng.standard_normal(100)
        q = quantize_array(values, 8)
        scale = np.abs(values).max() / 127
        steps = q / scale
        assert np.allclose(steps, np.round(steps), atol=1e-9)

    def test_zero_array_unchanged(self):
        z = np.zeros(10)
        assert np.array_equal(quantize_array(z, 8), z)

    def test_rejects_one_bit(self):
        with pytest.raises(ValueError):
            quantize_array(np.ones(3), 1)

    def test_model_quantization_keeps_accuracy_shape(self, rng):
        model = nn.Sequential(nn.Linear(6, 16, rng=rng), nn.ReLU(),
                              nn.Linear(16, 2, rng=rng))
        x = rng.standard_normal((20, 6))
        before = model(Tensor(x)).data
        quantize_model_weights(model, bits=8)
        after = model(Tensor(x)).data
        assert np.allclose(before, after, atol=0.1)
        assert not np.array_equal(before, after)

    def test_batchnorm_params_untouched(self, rng):
        model = nn.Sequential(nn.Linear(4, 4, rng=rng), nn.BatchNorm1d(4))
        model[1].gamma.data = rng.standard_normal(4) * 1e-4
        gamma_before = model[1].gamma.data.copy()
        quantize_model_weights(model, bits=4)
        assert np.array_equal(model[1].gamma.data, gamma_before)
