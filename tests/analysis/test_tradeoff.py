"""Tests for the accuracy-vs-memory trade-off analysis."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (TradeoffPoint, TradeoffStudy, accuracy_at_budget,
                            pareto_frontier)


def point(label, mem, acc):
    return TradeoffPoint(label, mem, acc)


class TestTradeoffPoint:
    def test_validation(self):
        with pytest.raises(ValueError, match="memory"):
            point("bad", 0, 0.5)
        with pytest.raises(ValueError, match="accuracy"):
            point("bad", 100, 1.5)

    def test_dominates_strictly_better(self):
        assert point("a", 100, 0.9).dominates(point("b", 200, 0.8))

    def test_dominates_equal_memory_better_accuracy(self):
        assert point("a", 100, 0.9).dominates(point("b", 100, 0.8))

    def test_no_self_domination(self):
        p = point("a", 100, 0.9)
        assert not p.dominates(point("same", 100, 0.9))

    def test_incomparable_points(self):
        small_weak = point("a", 100, 0.7)
        big_strong = point("b", 200, 0.9)
        assert not small_weak.dominates(big_strong)
        assert not big_strong.dominates(small_weak)


class TestParetoFrontier:
    def test_paper_shape(self):
        """Real / BNN / bin-classifier: the bin-classifier knee dominates
        configurations that are bigger and weaker."""
        points = [
            point("real 32-bit", 1_170_000, 0.963),
            point("BNN 1x", 36_500, 0.921),
            point("BNN 7x", 256_000, 0.949),
            point("bin classifier", 187_000, 0.959),
        ]
        frontier = pareto_frontier(points)
        labels = [p.label for p in frontier]
        assert "BNN 1x" in labels           # smallest
        assert "bin classifier" in labels   # the knee
        assert "real 32-bit" in labels      # most accurate
        assert "BNN 7x" not in labels       # dominated by bin classifier

    def test_sorted_by_memory(self):
        points = [point(str(i), m, a) for i, (m, a) in
                  enumerate([(300, 0.5), (100, 0.4), (200, 0.45)])]
        frontier = pareto_frontier(points)
        mems = [p.memory_bytes for p in frontier]
        assert mems == sorted(mems)

    def test_single_point(self):
        p = point("only", 10, 0.5)
        assert pareto_frontier([p]) == [p]

    def test_empty_raises(self):
        with pytest.raises(ValueError, match="at least one"):
            pareto_frontier([])

    def test_duplicate_points_survive(self):
        points = [point("a", 100, 0.9), point("b", 100, 0.9)]
        assert len(pareto_frontier(points)) == 2

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.tuples(st.floats(1, 1e6), st.floats(0, 1)),
                    min_size=1, max_size=30))
    def test_frontier_is_non_dominated_and_monotone(self, raw):
        points = [point(str(i), m, a) for i, (m, a) in enumerate(raw)]
        frontier = pareto_frontier(points)
        assert frontier  # never empty for non-empty input
        for p in frontier:
            assert not any(q.dominates(p) for q in points)
        # Along the frontier, accuracy must not decrease with memory for
        # distinct-memory neighbours.
        for a, b in zip(frontier, frontier[1:]):
            if b.memory_bytes > a.memory_bytes:
                assert b.accuracy >= a.accuracy


class TestAccuracyAtBudget:
    POINTS = [
        point("tiny", 10_000, 0.80),
        point("medium", 100_000, 0.92),
        point("large", 1_000_000, 0.96),
    ]

    def test_picks_best_feasible(self):
        best = accuracy_at_budget(self.POINTS, 150_000)
        assert best.label == "medium"

    def test_nothing_fits(self):
        assert accuracy_at_budget(self.POINTS, 5_000) is None

    def test_everything_fits_picks_most_accurate(self):
        assert accuracy_at_budget(self.POINTS, 1e9).label == "large"

    def test_tie_prefers_smaller(self):
        points = [point("a", 100, 0.9), point("b", 50, 0.9)]
        assert accuracy_at_budget(points, 200).label == "b"

    def test_bad_budget_raises(self):
        with pytest.raises(ValueError, match="budget"):
            accuracy_at_budget(self.POINTS, 0)


class TestTradeoffStudy:
    def study(self) -> TradeoffStudy:
        return (TradeoffStudy("ECG study")
                .add("real", 1_170_000, 0.963)
                .add("bnn", 36_500, 0.921)
                .add("bin clf", 187_000, 0.959))

    def test_render_marks_frontier(self):
        text = self.study().render()
        assert "ECG study" in text
        assert "*" in text

    def test_plot_renders(self):
        text = self.study().plot()
        assert "frontier" in text

    def test_chaining_returns_self(self):
        s = TradeoffStudy()
        assert s.add("x", 1, 0.5) is s
