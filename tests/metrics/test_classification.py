"""Unit tests for label-based classification metrics."""

import numpy as np
import pytest

from repro.metrics import (accuracy, balanced_accuracy, confusion_matrix,
                           precision_recall_f1, sensitivity_specificity,
                           top_k_accuracy)


class TestAccuracy:
    def test_perfect(self):
        assert accuracy([0, 1, 1, 0], [0, 1, 1, 0]) == 1.0

    def test_all_wrong(self):
        assert accuracy([0, 1], [1, 0]) == 0.0

    def test_fractional(self):
        assert accuracy([0, 1, 1, 1], [0, 1, 0, 0]) == pytest.approx(0.5)

    def test_empty_raises(self):
        with pytest.raises(ValueError, match="empty"):
            accuracy([], [])

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError, match="differ in length"):
            accuracy([0, 1], [0])

    def test_negative_labels_raise(self):
        with pytest.raises(ValueError, match="non-negative"):
            accuracy([0, -1], [0, 1])

    def test_accepts_2d_inputs_by_ravel(self):
        assert accuracy(np.array([[0, 1]]), np.array([[0, 1]])) == 1.0


class TestConfusionMatrix:
    def test_binary_counts(self):
        y_true = [0, 0, 1, 1, 1]
        y_pred = [0, 1, 1, 1, 0]
        m = confusion_matrix(y_true, y_pred)
        assert m.tolist() == [[1, 1], [1, 2]]

    def test_total_equals_samples(self):
        rng = np.random.default_rng(0)
        y_true = rng.integers(0, 4, 200)
        y_pred = rng.integers(0, 4, 200)
        assert confusion_matrix(y_true, y_pred).sum() == 200

    def test_diagonal_is_correct_predictions(self):
        y = [0, 1, 2, 2, 1]
        m = confusion_matrix(y, y)
        assert np.all(m == np.diag([1, 2, 2]))

    def test_explicit_num_classes_pads(self):
        m = confusion_matrix([0, 0], [0, 0], num_classes=3)
        assert m.shape == (3, 3)
        assert m[0, 0] == 2 and m.sum() == 2

    def test_label_exceeding_num_classes_raises(self):
        with pytest.raises(ValueError, match="exceed"):
            confusion_matrix([0, 5], [0, 1], num_classes=2)

    def test_row_sums_are_class_support(self):
        y_true = [0, 0, 0, 1]
        y_pred = [1, 1, 0, 0]
        m = confusion_matrix(y_true, y_pred)
        assert m.sum(axis=1).tolist() == [3, 1]


class TestBalancedAccuracy:
    def test_equals_accuracy_when_balanced_and_symmetric(self):
        y_true = [0, 0, 1, 1]
        y_pred = [0, 1, 1, 0]
        assert balanced_accuracy(y_true, y_pred) == pytest.approx(
            accuracy(y_true, y_pred))

    def test_majority_guessing_scores_half(self):
        # 90% negatives; predicting all-negative gets 90% raw accuracy
        # but only 50% balanced accuracy.
        y_true = [0] * 9 + [1]
        y_pred = [0] * 10
        assert accuracy(y_true, y_pred) == pytest.approx(0.9)
        assert balanced_accuracy(y_true, y_pred) == pytest.approx(0.5)

    def test_absent_class_excluded(self):
        # num_classes=3 but class 2 never appears in y_true.
        assert balanced_accuracy([0, 1], [0, 1], num_classes=3) == 1.0


class TestPrecisionRecallF1:
    def test_perfect(self):
        p, r, f1 = precision_recall_f1([0, 1, 1], [0, 1, 1])
        assert (p, r, f1) == (1.0, 1.0, 1.0)

    def test_known_values(self):
        # tp=2, fp=1, fn=1
        y_true = [1, 1, 1, 0, 0]
        y_pred = [1, 1, 0, 1, 0]
        p, r, f1 = precision_recall_f1(y_true, y_pred)
        assert p == pytest.approx(2 / 3)
        assert r == pytest.approx(2 / 3)
        assert f1 == pytest.approx(2 / 3)

    def test_no_positive_predictions(self):
        p, r, f1 = precision_recall_f1([1, 0], [0, 0])
        assert p == 1.0
        assert r == 0.0
        assert f1 == 0.0

    def test_no_positive_samples(self):
        p, r, _ = precision_recall_f1([0, 0], [1, 0])
        assert r == 1.0
        assert p == 0.0

    def test_alternate_positive_class(self):
        y_true = [0, 0, 1]
        y_pred = [0, 1, 1]
        p0, r0, _ = precision_recall_f1(y_true, y_pred, positive_class=0)
        assert p0 == 1.0
        assert r0 == pytest.approx(0.5)


class TestSensitivitySpecificity:
    def test_clinical_interpretation(self):
        # 3 inversions, 2 caught; 2 normals, 1 falsely flagged.
        y_true = [1, 1, 1, 0, 0]
        y_pred = [1, 1, 0, 1, 0]
        sens, spec = sensitivity_specificity(y_true, y_pred)
        assert sens == pytest.approx(2 / 3)
        assert spec == pytest.approx(1 / 2)

    def test_degenerate_no_positives(self):
        sens, spec = sensitivity_specificity([0, 0], [0, 0])
        assert sens == 1.0 and spec == 1.0

    def test_degenerate_no_negatives(self):
        sens, spec = sensitivity_specificity([1, 1], [1, 0])
        assert spec == 1.0
        assert sens == pytest.approx(0.5)


class TestTopKAccuracy:
    def test_top1_equals_argmax_accuracy(self):
        scores = np.array([[0.1, 0.9], [0.8, 0.2], [0.4, 0.6]])
        y_true = [1, 0, 0]
        top1 = top_k_accuracy(y_true, scores, k=1)
        assert top1 == pytest.approx(accuracy(y_true, scores.argmax(axis=1)))

    def test_top_k_grows_with_k(self):
        rng = np.random.default_rng(1)
        scores = rng.normal(size=(50, 10))
        y_true = rng.integers(0, 10, 50)
        accs = [top_k_accuracy(y_true, scores, k=k) for k in (1, 3, 5, 10)]
        assert accs == sorted(accs)
        assert accs[-1] == 1.0  # k = num_classes catches everything

    def test_k_out_of_range_raises(self):
        with pytest.raises(ValueError, match="out of range"):
            top_k_accuracy([0], np.ones((1, 3)), k=4)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError, match="scores must be"):
            top_k_accuracy([0, 1], np.ones((3, 2)), k=1)

    def test_tie_counts_within_k(self):
        # All scores equal: zero classes score strictly higher, so the true
        # class is within any top-k.
        scores = np.zeros((4, 5))
        assert top_k_accuracy([0, 1, 2, 3], scores, k=1) == 1.0
