"""Shared latency helpers: percentiles and the tail summary.

One implementation serves three consumers — ``repro deploy`` timing,
the serve daemon's stats endpoint, and the load-generator benchmark —
so the math is pinned here once.
"""

import numpy as np
import pytest

from repro.metrics import LatencySummary, latency_summary, percentiles


class TestPercentiles:
    def test_default_tail_quantiles(self):
        result = percentiles(range(1, 101))
        assert set(result) == {50.0, 95.0, 99.0}
        assert result[50.0] == pytest.approx(50.5)

    def test_matches_numpy(self):
        samples = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0]
        result = percentiles(samples, qs=(25.0, 75.0))
        assert result[25.0] == pytest.approx(np.percentile(samples, 25))
        assert result[75.0] == pytest.approx(np.percentile(samples, 75))

    def test_single_sample_degenerates_gracefully(self):
        result = percentiles([7.5])
        assert all(v == pytest.approx(7.5) for v in result.values())

    def test_monotone_in_q(self):
        rng = np.random.default_rng(3)
        samples = rng.exponential(size=200)
        result = percentiles(samples, qs=(50.0, 90.0, 99.0))
        assert result[50.0] <= result[90.0] <= result[99.0]

    def test_empty_raises(self):
        with pytest.raises(ValueError, match="empty"):
            percentiles([])

    def test_accepts_any_iterable(self):
        assert percentiles(iter([1.0, 2.0, 3.0]))[50.0] \
            == pytest.approx(2.0)


class TestLatencySummary:
    def test_fields(self):
        summary = latency_summary(range(1, 101))
        assert isinstance(summary, LatencySummary)
        assert summary.count == 100
        assert summary.mean == pytest.approx(50.5)
        assert summary.p50 == pytest.approx(50.5)
        assert summary.p50 <= summary.p95 <= summary.p99

    def test_constant_samples(self):
        summary = latency_summary([4.0] * 10)
        assert summary.mean == summary.p50 == summary.p99 == 4.0

    def test_render_carries_unit(self):
        text = latency_summary([1.0, 2.0, 3.0]).render(unit="us")
        assert "us" in text and "p99" in text and "n=3" in text

    def test_empty_raises(self):
        with pytest.raises(ValueError, match="empty"):
            latency_summary([])

    def test_frozen(self):
        summary = latency_summary([1.0])
        with pytest.raises(AttributeError):
            summary.mean = 0.0
