"""Tests for ROC/AUC and the combined classification report."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import classification_report, roc_auc, roc_curve


class TestRocCurve:
    def test_perfect_separation(self):
        y = [0, 0, 1, 1]
        scores = [0.1, 0.2, 0.8, 0.9]
        fpr, tpr, thr = roc_curve(y, scores)
        assert fpr[0] == 0.0 and tpr[0] == 0.0
        assert fpr[-1] == 1.0 and tpr[-1] == 1.0
        assert roc_auc(y, scores) == 1.0
        assert thr[0] == np.inf

    def test_inverted_scores_auc_zero(self):
        assert roc_auc([0, 0, 1, 1], [0.9, 0.8, 0.2, 0.1]) == 0.0

    def test_random_scores_auc_near_half(self):
        rng = np.random.default_rng(7)
        y = rng.integers(0, 2, 2000)
        scores = rng.normal(size=2000)
        assert roc_auc(y, scores) == pytest.approx(0.5, abs=0.05)

    def test_constant_scores_auc_half(self):
        # A single threshold bucket: ties count half.
        assert roc_auc([0, 1, 0, 1], [0.5] * 4) == pytest.approx(0.5)

    def test_monotone_transform_invariance(self):
        rng = np.random.default_rng(3)
        y = rng.integers(0, 2, 100)
        y[:2] = [0, 1]  # make both classes present
        scores = rng.normal(size=100)
        assert roc_auc(y, scores) == pytest.approx(
            roc_auc(y, np.exp(scores)))

    def test_single_class_raises(self):
        with pytest.raises(ValueError, match="at least one"):
            roc_curve([1, 1], [0.2, 0.4])

    def test_non_binary_labels_raise(self):
        with pytest.raises(ValueError, match="binary"):
            roc_curve([0, 2], [0.5, 0.6])

    def test_curve_is_monotone(self):
        rng = np.random.default_rng(11)
        y = rng.integers(0, 2, 64)
        y[:2] = [0, 1]
        scores = rng.normal(size=64)
        fpr, tpr, _ = roc_curve(y, scores)
        assert np.all(np.diff(fpr) >= 0)
        assert np.all(np.diff(tpr) >= 0)

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 1),
                              st.floats(-5, 5, allow_nan=False)),
                    min_size=4, max_size=60))
    def test_auc_is_pairwise_win_probability(self, pairs):
        """AUC == P(positive outscores negative), ties counted half."""
        y = np.array([p[0] for p in pairs])
        scores = np.array([p[1] for p in pairs])
        if y.min() == y.max():
            return  # needs both classes
        pos = scores[y == 1]
        neg = scores[y == 0]
        wins = (pos[:, None] > neg[None, :]).sum()
        ties = (pos[:, None] == neg[None, :]).sum()
        expected = (wins + 0.5 * ties) / (len(pos) * len(neg))
        assert roc_auc(y, scores) == pytest.approx(expected, abs=1e-9)


class TestClassificationReport:
    def test_fields_consistent(self):
        rng = np.random.default_rng(5)
        y_true = rng.integers(0, 2, 300)
        scores = rng.normal(size=300) + y_true  # informative scores
        y_pred = (scores > 0.5).astype(int)
        report = classification_report(y_true, y_pred, scores)
        assert 0.0 <= report.accuracy <= 1.0
        assert report.auc is not None and report.auc > 0.6
        assert report.confusion.sum() == 300

    def test_without_scores_auc_is_none(self):
        report = classification_report([0, 1], [0, 1])
        assert report.auc is None

    def test_render_contains_all_metrics(self):
        report = classification_report([0, 1, 1, 0], [0, 1, 0, 0],
                                       scores=[0.1, 0.9, 0.4, 0.2])
        text = report.render("ECG electrode check")
        for keyword in ("accuracy", "sensitivity", "specificity",
                        "ROC AUC", "confusion"):
            assert keyword in text

    def test_perfect_classifier(self):
        report = classification_report([0, 1], [0, 1], scores=[0.0, 1.0])
        assert report.accuracy == 1.0
        assert report.sensitivity == 1.0
        assert report.specificity == 1.0
        assert report.f1 == 1.0
        assert report.auc == 1.0
