"""Property contracts of interleaved multi-tenant scans.

The claim under test: fusing several tenants' stacked shard plans into
one :func:`packed_xnor_popcount_stacked` dispatch (per-tenant stripe
masks + per-model partial-popcount reduction) is **bit-identical** to
running each tenant's :class:`ShardedController` alone — for any layer
geometry, any macro grid, any subset of active tenants, empty batches
included, and with dead macros remapped onto spares (PR 7).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rram import (AcceleratorConfig, FaultMap, MacroGeometry,
                        MultiTenantController, ShardedController)

GEOMETRIES = [(7, 13), (8, 24), (32, 32)]


def _tenant_pool(rng, n_tenants, macro, fault_maps=None):
    """Random co-resident tenants on a shared macro geometry."""
    config = AcceleratorConfig(ideal=True)
    controllers, batches = {}, {}
    for t in range(n_tenants):
        rows = int(rng.integers(2, 40))
        cols = int(rng.integers(3, 140))
        weights = rng.integers(0, 2, (rows, cols)).astype(np.uint8)
        name = f"tenant{t}"
        fault_map = (fault_maps or {}).get(name)
        controllers[name] = ShardedController(
            weights, config=config,
            rng=np.random.default_rng(1000 + t), macro=macro, name=name,
            fault_map=fault_map, spares="auto")
        n = int(rng.integers(0, 7))
        batches[name] = rng.integers(0, 2, (n, cols)).astype(np.uint8)
    return controllers, batches


def _assert_fused_equals_solo(controllers, batches):
    fused = MultiTenantController(controllers).popcounts(batches)
    for name, bits in batches.items():
        controller = controllers[name]
        if len(bits):
            assert np.array_equal(fused[name],
                                  controller.popcounts(bits)), name
        else:
            assert fused[name].shape == (0, controller.out_features)


class TestInterleavedEqualsSolo:
    @settings(max_examples=12, deadline=None)
    @given(st.integers(0, 2 ** 31), st.integers(1, 4),
           st.sampled_from(GEOMETRIES))
    def test_any_geometry_any_tenant_count(self, seed, n_tenants,
                                           geometry):
        rng = np.random.default_rng(seed)
        controllers, batches = _tenant_pool(rng, n_tenants,
                                            MacroGeometry(*geometry))
        _assert_fused_equals_solo(controllers, batches)

    @settings(max_examples=8, deadline=None)
    @given(st.integers(0, 2 ** 31))
    def test_subset_of_tenants_active(self, seed):
        """Word lines of idle tenants simply are not selected: scanning
        a subset must match each active tenant's solo scan."""
        rng = np.random.default_rng(seed)
        controllers, batches = _tenant_pool(rng, 3, MacroGeometry(8, 24))
        active = {name: bits for i, (name, bits) in
                  enumerate(batches.items()) if i != 1}
        mt = MultiTenantController(controllers)
        fused = mt.popcounts(active)
        assert set(fused) == set(active)
        for name, bits in active.items():
            if len(bits):
                assert np.array_equal(fused[name],
                                      controllers[name].popcounts(bits))

    @settings(max_examples=8, deadline=None)
    @given(st.integers(0, 2 ** 31), st.sampled_from(GEOMETRIES))
    def test_dead_macro_remap_stays_bit_identical(self, seed, geometry):
        """A degraded tenant (dead macro remapped onto a spare) fused
        with a healthy one: both still match their solo scans."""
        rng = np.random.default_rng(seed)
        controllers, batches = _tenant_pool(
            rng, 2, MacroGeometry(*geometry),
            fault_maps={"tenant0": FaultMap(dead_macros=(0,))})
        assert controllers["tenant0"].placement.remapped
        _assert_fused_equals_solo(controllers, batches)


class TestMultiTenantEdges:
    @pytest.fixture
    def pool(self, rng):
        return _tenant_pool(rng, 2, MacroGeometry(8, 24))

    def test_unknown_tenant_raises(self, pool, rng):
        controllers, _ = pool
        mt = MultiTenantController(controllers)
        with pytest.raises(ValueError, match="unknown tenant"):
            mt.popcounts({"ghost": np.zeros((1, 8), dtype=np.uint8)})

    def test_all_batches_empty(self, pool):
        controllers, batches = pool
        mt = MultiTenantController(controllers)
        empty = {name: bits[:0] for name, bits in batches.items()}
        fused = mt.popcounts(empty)
        for name, controller in controllers.items():
            assert fused[name].shape == (0, controller.out_features)

    def test_mismatched_macro_geometry_rejected(self, rng):
        config = AcceleratorConfig(ideal=True)
        a = ShardedController(
            rng.integers(0, 2, (8, 40)).astype(np.uint8), config=config,
            rng=np.random.default_rng(1), macro=MacroGeometry(8, 24))
        b = ShardedController(
            rng.integers(0, 2, (8, 40)).astype(np.uint8), config=config,
            rng=np.random.default_rng(2), macro=MacroGeometry(32, 32))
        with pytest.raises(ValueError, match="share one chip geometry"):
            MultiTenantController({"a": a, "b": b})

    def test_wrong_input_width_rejected(self, pool):
        controllers, _ = pool
        mt = MultiTenantController(controllers)
        name = next(iter(controllers))
        bad = np.zeros((2, controllers[name].in_features + 1),
                       dtype=np.uint8)
        with pytest.raises(ValueError, match="input shape"):
            mt.popcounts({name: bad})

    def test_stripe_ranges_partition_the_pool(self, pool):
        controllers, _ = pool
        mt = MultiTenantController(controllers)
        cursor = 0
        for name in controllers:
            start, stop = mt.stripe_ranges[name]
            assert start == cursor
            assert stop - start == controllers[name].plan.grid_rows
            cursor = stop
        assert cursor == mt.n_stripes
