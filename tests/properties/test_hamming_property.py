"""Property-based contracts of the Hamming SEC/SECDED codes.

The lifetime studies lean on :class:`HammingCode` to claim ECC extends
usable device lifetime, so the code itself must be correct by
construction, not just on the benchmarked words:

* every single-bit error in any codeword is corrected exactly — for any
  parity width, shortening and data pattern;
* SECDED flags every double-bit error as uncorrectable and never
  miscorrects it into a third word;
* a noiseless channel round-trips every word untouched.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rram import HammingCode, simulate_protected_storage


def _code(r: int, shorten: int, extended: bool) -> HammingCode:
    k_full = 2 ** r - 1 - r
    return HammingCode(r=r, data_bits=max(1, k_full - shorten),
                       extended=extended)


@settings(max_examples=40, deadline=None)
@given(st.integers(3, 6), st.integers(0, 5), st.booleans(),
       st.integers(0, 2 ** 31))
def test_single_bit_errors_all_corrected(r, shorten, extended, seed):
    """Exhaustive over error positions: flipping any one stored bit of
    any codeword decodes back to the original data, with no double-error
    flag raised."""
    code = _code(r, shorten, extended)
    rng = np.random.default_rng(seed)
    data = rng.integers(0, 2, (4, code.k)).astype(np.uint8)
    stored = code.encode(data)
    for pos in range(code.n):
        corrupted = stored.copy()
        corrupted[:, pos] ^= 1
        decoded, double = code.decode(corrupted)
        assert not double.any(), f"double flag at position {pos}"
        assert (decoded == data).all(), f"miscorrection at position {pos}"


@settings(max_examples=40, deadline=None)
@given(st.integers(3, 6), st.integers(0, 5), st.integers(0, 2 ** 31))
def test_double_bit_errors_detected_not_miscorrected(r, shorten, seed):
    """SECDED: every pair of stored-bit flips is flagged as a double
    error, and the decoder leaves the word alone rather than 'correcting'
    it to a third codeword's data."""
    code = _code(r, shorten, extended=True)
    rng = np.random.default_rng(seed)
    data = rng.integers(0, 2, code.k).astype(np.uint8)
    stored = code.encode(data[None])[0]
    pairs = [(i, j) for i in range(code.n) for j in range(i + 1, code.n)]
    corrupted = np.tile(stored, (len(pairs), 1))
    for w, (i, j) in enumerate(pairs):
        corrupted[w, i] ^= 1
        corrupted[w, j] ^= 1
    decoded, double = code.decode(corrupted)
    assert double.all(), "a double error escaped detection"
    # Flagged words are passed through unrepaired: the data positions
    # show the raw (possibly wrong) bits, never a third word's bits.
    raw = corrupted[:, code.data_indices]
    assert (decoded == raw).all()


@settings(max_examples=60, deadline=None)
@given(st.integers(3, 7), st.integers(0, 8), st.booleans(),
       st.integers(1, 32), st.integers(0, 2 ** 31))
def test_noiseless_round_trip(r, shorten, extended, words, seed):
    """BER=0 channel: encode/decode is the identity on data bits and the
    residual error rate reported by the channel helper is exactly zero."""
    code = _code(r, shorten, extended)
    rng = np.random.default_rng(seed)
    data = rng.integers(0, 2, (words, code.k)).astype(np.uint8)
    decoded, double = code.decode(code.encode(data))
    assert (decoded == data).all()
    assert not double.any()
    decoded2, residual = simulate_protected_storage(
        data, code, raw_ber=0.0, rng=np.random.default_rng(seed))
    assert residual == 0.0
    assert (decoded2 == data).all()


def test_secded_72_64_exhaustive_single_and_spot_double():
    """The deployed (72, 64) code, checked directly: all 72 single-bit
    errors corrected; a sample of double errors detected."""
    code = HammingCode.secded_72_64()
    rng = np.random.default_rng(7)
    data = rng.integers(0, 2, (2, 64)).astype(np.uint8)
    stored = code.encode(data)
    for pos in range(72):
        corrupted = stored.copy()
        corrupted[:, pos] ^= 1
        decoded, double = code.decode(corrupted)
        assert not double.any()
        assert (decoded == data).all()
    for i, j in [(0, 71), (3, 40), (17, 18), (63, 64)]:
        corrupted = stored.copy()
        corrupted[:, i] ^= 1
        corrupted[:, j] ^= 1
        _, double = code.decode(corrupted)
        assert double.all()
