"""Property-based invariants for the extension subsystems."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import quantize_array
from repro.metrics import (accuracy, balanced_accuracy, confusion_matrix,
                           roc_auc)
from repro.nn import pack_bits, quant_scale, unpack_bits
from repro.rram import PeripheryModel, arrhenius_acceleration

labels = st.lists(st.integers(0, 3), min_size=1, max_size=50)


class TestMetricsInvariants:
    @settings(max_examples=50, deadline=None)
    @given(labels, st.integers(0, 2 ** 31))
    def test_confusion_matrix_accounting(self, y_true, seed):
        rng = np.random.default_rng(seed)
        y_pred = rng.integers(0, 4, len(y_true))
        matrix = confusion_matrix(y_true, y_pred, num_classes=4)
        # Total count preserved, row sums = class supports,
        # accuracy = normalized trace.
        assert matrix.sum() == len(y_true)
        supports = np.bincount(np.asarray(y_true), minlength=4)
        assert np.array_equal(matrix.sum(axis=1), supports)
        assert accuracy(y_true, y_pred) == pytest.approx(
            np.trace(matrix) / len(y_true))

    @settings(max_examples=50, deadline=None)
    @given(labels, st.integers(0, 2 ** 31))
    def test_balanced_accuracy_bounds(self, y_true, seed):
        rng = np.random.default_rng(seed)
        y_pred = rng.integers(0, 4, len(y_true))
        value = balanced_accuracy(y_true, y_pred, num_classes=4)
        assert 0.0 <= value <= 1.0

    @settings(max_examples=50, deadline=None)
    @given(st.integers(1, 20), st.integers(1, 20), st.integers(0, 2 ** 31))
    def test_auc_bounds_and_complement(self, n_pos, n_neg, seed):
        """AUC in [0,1], and negating scores gives 1 - AUC."""
        rng = np.random.default_rng(seed)
        y = np.concatenate([np.ones(n_pos, dtype=int),
                            np.zeros(n_neg, dtype=int)])
        scores = rng.normal(size=n_pos + n_neg)
        auc = roc_auc(y, scores)
        assert 0.0 <= auc <= 1.0
        assert roc_auc(y, -scores) == pytest.approx(1.0 - auc, abs=1e-9)

    @settings(max_examples=50, deadline=None)
    @given(labels)
    def test_perfect_prediction_is_perfect(self, y_true):
        assert accuracy(y_true, y_true) == 1.0
        assert balanced_accuracy(y_true, y_true) == 1.0


class TestPackingInvariants:
    @settings(max_examples=60, deadline=None)
    @given(st.integers(1, 400), st.integers(1, 6), st.integers(0, 2 ** 31))
    def test_round_trip_any_geometry(self, width, batch, seed):
        rng = np.random.default_rng(seed)
        bits = rng.integers(0, 2, size=(batch, width)).astype(np.uint8)
        assert np.array_equal(unpack_bits(pack_bits(bits), width), bits)

    @settings(max_examples=60, deadline=None)
    @given(st.integers(1, 400), st.integers(0, 2 ** 31))
    def test_popcount_preserved_by_packing(self, width, seed):
        rng = np.random.default_rng(seed)
        bits = rng.integers(0, 2, size=(1, width)).astype(np.uint8)
        words = pack_bits(bits)
        assert int(np.bitwise_count(words).sum()) == int(bits.sum())


class TestQuantizationInvariants:
    @settings(max_examples=60, deadline=None)
    @given(st.integers(2, 12), st.integers(0, 2 ** 31))
    def test_error_bounded_by_half_lsb(self, bits, seed):
        rng = np.random.default_rng(seed)
        values = rng.normal(scale=3.0, size=64)
        quantized = quantize_array(values, bits)
        lsb = quant_scale(values, bits)
        assert np.abs(quantized - values).max() <= lsb / 2 + 1e-12

    @settings(max_examples=60, deadline=None)
    @given(st.integers(2, 12), st.integers(0, 2 ** 31))
    def test_idempotent_and_sign_preserving(self, bits, seed):
        rng = np.random.default_rng(seed)
        values = rng.normal(size=32)
        once = quantize_array(values, bits)
        assert np.allclose(quantize_array(once, bits), once, atol=1e-12)
        # Quantization never flips a sign (symmetric grid around zero).
        assert np.all(once * values >= -1e-12)


class TestHardwareModelInvariants:
    @settings(max_examples=40, deadline=None)
    @given(st.integers(1, 14))
    def test_periphery_energy_strictly_increasing_in_bits(self, bits):
        model = PeripheryModel()
        assert model.adc_energy_pj(bits + 1) > model.adc_energy_pj(bits)
        assert model.adc_area_um2(bits + 1) > model.adc_area_um2(bits)

    @settings(max_examples=40, deadline=None)
    @given(st.floats(-40, 200), st.floats(0.3, 1.5))
    def test_arrhenius_positive_and_reciprocal(self, temp_c, ea):
        forward = arrhenius_acceleration(temp_c, 125.0, ea)
        backward = arrhenius_acceleration(125.0, temp_c, ea)
        assert forward > 0
        assert forward * backward == pytest.approx(1.0, rel=1e-9)
