"""Property-based tests (hypothesis) on the core invariants.

These cover the algebraic contracts everything else leans on: XNOR-popcount
equals the ±1 dot product (paper Eq. 3), batch-norm folding is exact for any
parameters, im2col/col2im are adjoint, Hamming codes correct any single
error, broadcasting gradients are unbroadcast correctly, and the 2T2R
advantage holds across the device parameter space.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro import nn
from repro.nn.binary import (dot_from_popcount, fold_batchnorm_output,
                             fold_batchnorm_sign, from_bits, to_bits,
                             xnor_popcount)
from repro.rram import (DeviceParameters, HammingCode, analytic_ber_1t1r,
                        analytic_ber_2t2r)
from repro.tensor import Tensor, col2im_1d, im2col_1d
from repro.tensor.tensor import _unbroadcast

bits_matrix = lambda rows, cols: arrays(np.uint8, (rows, cols),
                                        elements=st.integers(0, 1))


class TestEq3Property:
    @given(x=bits_matrix(3, 17), w=bits_matrix(5, 17))
    @settings(max_examples=50, deadline=None)
    def test_xnor_popcount_equals_dot(self, x, w):
        pc = xnor_popcount(x, w)
        dot = dot_from_popcount(pc, 17)
        assert np.array_equal(dot, (from_bits(x) @ from_bits(w).T))

    @given(x=bits_matrix(2, 9))
    @settings(max_examples=30, deadline=None)
    def test_popcount_bounds(self, x):
        pc = xnor_popcount(x, x)
        assert np.all(np.diag(pc) == 9)            # self-agreement is full
        assert np.all((pc >= 0) & (pc <= 9))

    @given(bits=bits_matrix(4, 12))
    @settings(max_examples=30, deadline=None)
    def test_bit_roundtrip(self, bits):
        assert np.array_equal(to_bits(from_bits(bits)), bits)


class TestFoldingProperty:
    @given(
        weights=arrays(np.float64, (6, 15),
                       elements=st.floats(-2, 2, allow_nan=False)),
        gamma=arrays(np.float64, (6,),
                     elements=st.floats(-3, 3, allow_nan=False)),
        beta=arrays(np.float64, (6,),
                    elements=st.floats(-3, 3, allow_nan=False)),
        mean=arrays(np.float64, (6,),
                    elements=st.floats(-10, 10, allow_nan=False)),
        var=arrays(np.float64, (6,),
                   elements=st.floats(0.01, 10, allow_nan=False)),
        x=bits_matrix(8, 15),
    )
    @settings(max_examples=40, deadline=None)
    def test_sign_fold_exact_for_any_bn_params(self, weights, gamma, beta,
                                               mean, var, x):
        layer = nn.BinaryLinear(15, 6, rng=np.random.default_rng(0))
        layer.weight.data = weights
        bn = nn.BatchNorm1d(6)
        bn.gamma.data = gamma
        bn.beta.data = beta
        bn.set_buffer("running_mean", mean)
        bn.set_buffer("running_var", var)
        bn.eval()
        folded = fold_batchnorm_sign(layer, bn)
        x_pm1 = from_bits(x)
        bn_out = bn(layer(Tensor(x_pm1))).data
        ref = np.where(bn_out >= 0, 1.0, -1.0)
        hw = from_bits(folded.forward_bits(x))
        # The fold is exact away from the decision boundary.  Within float
        # rounding distance of zero (e.g. a denormal beta absorbed by
        # `mean - beta*std/gamma`), the two computations may round the tie
        # differently — the software analogue of comparator metastability —
        # so marginal positions are excluded.
        scale = np.maximum(np.abs(bn_out).max(axis=0, keepdims=True), 1.0)
        decisive = np.abs(bn_out) > 1e-9 * scale
        assert np.array_equal(hw[decisive], ref[decisive])

    @given(
        gamma=arrays(np.float64, (4,),
                     elements=st.floats(-2, 2, allow_nan=False)),
        beta=arrays(np.float64, (4,),
                    elements=st.floats(-2, 2, allow_nan=False)),
        x=bits_matrix(5, 11),
    )
    @settings(max_examples=40, deadline=None)
    def test_output_fold_scores_match(self, gamma, beta, x):
        layer = nn.BinaryLinear(11, 4, rng=np.random.default_rng(1))
        bn = nn.BatchNorm1d(4)
        bn.gamma.data = gamma
        bn.beta.data = beta
        bn.set_buffer("running_mean", np.arange(4.0))
        bn.set_buffer("running_var", np.full(4, 2.0))
        bn.eval()
        folded = fold_batchnorm_output(layer, bn)
        ref = bn(layer(Tensor(from_bits(x)))).data
        assert np.allclose(folded.forward_scores(x), ref, atol=1e-9)


class TestIm2colProperty:
    @given(
        x=arrays(np.float64, (2, 2, 14),
                 elements=st.floats(-5, 5, allow_nan=False)),
        kernel=st.integers(1, 5),
        stride=st.integers(1, 3),
        padding=st.integers(0, 3),
    )
    @settings(max_examples=40, deadline=None)
    def test_adjoint_identity(self, x, kernel, stride, padding):
        cols = im2col_1d(x, kernel, stride, padding)
        rng = np.random.default_rng(0)
        y = rng.standard_normal(cols.shape)
        lhs = float(np.sum(cols * y))
        rhs = float(np.sum(x * col2im_1d(y, x.shape, kernel, stride,
                                         padding)))
        assert np.isclose(lhs, rhs, rtol=1e-9, atol=1e-9)


class TestHammingProperty:
    @given(data=arrays(np.uint8, (3, 11), elements=st.integers(0, 1)),
           position=st.integers(0, 14))
    @settings(max_examples=60, deadline=None)
    def test_any_single_error_corrected(self, data, position):
        code = HammingCode(4)   # (15, 11)
        words = code.encode(data)
        words[1, position] ^= 1
        decoded, double = code.decode(words)
        assert np.array_equal(decoded, data)
        assert not double.any()

    @given(data=arrays(np.uint8, (2, 4), elements=st.integers(0, 1)))
    @settings(max_examples=30, deadline=None)
    def test_encode_is_systematic_roundtrip(self, data):
        code = HammingCode.rate_half()
        decoded, _ = code.decode(code.encode(data))
        assert np.array_equal(decoded, data)


class TestUnbroadcastProperty:
    @given(
        rows=st.integers(1, 4), cols=st.integers(1, 4),
        data=st.data(),
    )
    @settings(max_examples=40, deadline=None)
    def test_gradient_of_broadcast_add_sums_correctly(self, rows, cols,
                                                      data):
        grad = data.draw(arrays(np.float64, (rows, cols),
                                elements=st.floats(-3, 3, allow_nan=False)))
        reduced = _unbroadcast(grad, (1, cols))
        assert reduced.shape == (1, cols)
        assert np.allclose(reduced, grad.sum(axis=0, keepdims=True))
        scalarish = _unbroadcast(grad, (cols,))
        assert np.allclose(scalarish, grad.sum(axis=0))


class TestDeviceModelProperty:
    @given(
        sigma=st.floats(0.1, 0.8),
        broadening=st.floats(0.0, 1.0),
        cycles=st.floats(1e8, 1e9),
    )
    @settings(max_examples=50, deadline=None)
    def test_2t2r_never_worse_than_1t1r(self, sigma, broadening, cycles):
        """Differential sensing must beat single-ended for any physical
        parameter combination — the structural reason the paper's design
        works."""
        p = DeviceParameters(sigma_lrs0=sigma, sigma_hrs0=sigma,
                             broadening=broadening)
        assert analytic_ber_2t2r(p, cycles) <= analytic_ber_1t1r(p, cycles)

    @given(sigma=st.floats(0.15, 0.6))
    @settings(max_examples=30, deadline=None)
    def test_ber_monotone_in_sigma(self, sigma):
        lo = DeviceParameters(sigma_lrs0=sigma, sigma_hrs0=sigma)
        hi = DeviceParameters(sigma_lrs0=sigma * 1.2, sigma_hrs0=sigma * 1.2)
        assert analytic_ber_1t1r(lo, 2e8) <= analytic_ber_1t1r(hi, 2e8)


class TestTrainingInvariants:
    @given(seed=st.integers(0, 2 ** 16))
    @settings(max_examples=10, deadline=None)
    def test_latent_clip_keeps_weights_bounded(self, seed):
        rng = np.random.default_rng(seed)
        layer = nn.BinaryLinear(8, 4, rng=rng)
        layer.weight.data += rng.standard_normal((4, 8)) * 5
        nn.clip_latent_weights(layer)
        assert np.abs(layer.weight.data).max() <= 1.0

    @given(seed=st.integers(0, 2 ** 16))
    @settings(max_examples=10, deadline=None)
    def test_binary_forward_invariant_to_latent_magnitude(self, seed):
        """Scaling latent weights by any positive factor must not change
        the binarized forward pass."""
        rng = np.random.default_rng(seed)
        layer = nn.BinaryLinear(10, 3, rng=rng)
        x = Tensor(rng.standard_normal((4, 10)))
        before = layer(x).data.copy()
        layer.weight.data *= 7.3
        assert np.array_equal(layer(x).data, before)
