"""Property-based contracts of the Monte-Carlo engine.

Two invariants the trial-batched engine must hold for *every* parameter
combination, not just the benchmarked ones:

* trial-batched noisy reads are bit-identical to the serial per-trial
  loop under fixed child-seed streams, for any geometry, mode, wear,
  trial count and trial chunking;
* the programmed-plan cache never leaks state between points: any
  interleaving of sweep points evaluated against a warm cache yields
  byte-identical records to cold, isolated evaluations.
"""

import json

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments import clear_plan_cache
from repro.experiments.workloads import ber_point, rram_inference_point
from repro.rram import RRAMArray, read_bit_errors, trial_streams


@settings(max_examples=25, deadline=None)
@given(st.integers(2, 10), st.integers(2, 12),
       st.sampled_from(["2T2R", "1T1R"]),
       st.integers(0, 2 ** 31), st.integers(1, 6),
       st.one_of(st.none(), st.integers(1, 7)))
def test_trial_batched_reads_equal_per_trial_loop(rows, cols, mode, seed,
                                                  trials, trial_chunk):
    rng = np.random.default_rng(seed)
    array = RRAMArray(rows, cols, rng=rng, mode=mode)
    array.wear(int(rng.integers(0, 10 ** 9)))
    bits = rng.integers(0, 2, (rows, cols)).astype(np.uint8)
    array.program(bits)

    batched = array.read_all_trials(trial_streams(seed, trials))
    serial = np.stack([array.read_all(rng=r)
                       for r in trial_streams(seed, trials)])
    assert np.array_equal(batched, serial)

    errors = read_bit_errors(array, bits, trial_streams(seed, trials),
                             trial_chunk)
    assert np.array_equal(errors,
                          (serial != bits[None]).sum(axis=(1, 2)))


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 2 ** 16), st.integers(1, 4),
       st.permutations([0.0, 0.5, 1.0, 1.8]))
def test_plan_cache_never_leaks_between_points(seed, trials, sigmas):
    # Cold: every point evaluated against an empty cache, in isolation.
    cold = []
    for sigma in sigmas:
        clear_plan_cache()
        cold.append(json.dumps(
            rram_inference_point(sigma, seed=seed, trials=trials),
            sort_keys=True))
    # Warm: the whole (permuted) series shares one cache; records must be
    # byte-identical to the cold ones regardless of evaluation order.
    clear_plan_cache()
    warm = [json.dumps(
        rram_inference_point(sigma, seed=seed, trials=trials),
        sort_keys=True) for sigma in sigmas]
    assert warm == cold
    clear_plan_cache()


@settings(max_examples=15, deadline=None)
@given(st.integers(1, 120), st.integers(0, 2 ** 16), st.integers(1, 4))
def test_ber_point_counts_every_cell(n_cells, seed, trials):
    clear_plan_cache()
    point = ber_point(2e8, n_cells=n_cells, seed=seed, trials=trials)
    assert point["cells"] == float(n_cells)
    assert 0.0 <= point["ber"] <= 1.0
    clear_plan_cache()
