"""Property-based gradient checks on randomly composed op chains.

Single ops are covered exhaustively in ``tests/tensor``; training correctness
additionally depends on *compositions* — broadcasting into reductions into
nonlinearities — where unbroadcast/accumulation bugs hide.  Hypothesis picks
the composition; finite differences referee.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tensor import Tensor
from repro.tensor.gradcheck import check_gradients

# Smooth unary ops sampled into chains (kink-free so finite differences
# are valid everywhere).
UNARY = {
    "exp": lambda t: (0.3 * t).exp(),
    "tanh": lambda t: t.tanh(),
    "sigmoid": lambda t: t.sigmoid(),
    "square": lambda t: t ** 2,
    "scale": lambda t: 1.7 * t - 0.3,
}
REDUCE = {
    "sum": lambda t: t.sum(),
    "mean": lambda t: t.mean(),
    "sumsq": lambda t: (t * t).sum(),
}


@st.composite
def op_chain(draw):
    names = draw(st.lists(st.sampled_from(sorted(UNARY)), min_size=1,
                          max_size=4))
    reducer = draw(st.sampled_from(sorted(REDUCE)))
    return names, reducer


class TestUnaryChains:
    @settings(max_examples=40, deadline=None)
    @given(op_chain(), st.integers(0, 10_000))
    def test_chain_gradient_matches_numeric(self, chain, seed):
        names, reducer = chain
        rng = np.random.default_rng(seed)
        x = Tensor(rng.uniform(-1.5, 1.5, size=(3, 4)), requires_grad=True)

        def fn(t):
            out = t
            for name in names:
                out = UNARY[name](out)
            return REDUCE[reducer](out)

        check_gradients(fn, [x], rtol=1e-3, atol=1e-5)


class TestBroadcastCompositions:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(1, 4), st.integers(1, 5), st.integers(0, 10_000))
    def test_row_bias_broadcast_into_reduction(self, rows, cols, seed):
        rng = np.random.default_rng(seed)
        x = Tensor(rng.normal(size=(rows, cols)), requires_grad=True)
        bias = Tensor(rng.normal(size=(cols,)), requires_grad=True)

        def fn(a, b):
            return ((a + b).tanh() * (a - b)).mean()

        check_gradients(fn, [x, bias], rtol=1e-3, atol=1e-5)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(1, 4), st.integers(1, 4), st.integers(0, 10_000))
    def test_matmul_into_softmax_loss(self, n, m, seed):
        rng = np.random.default_rng(seed)
        x = Tensor(rng.normal(size=(n, m)), requires_grad=True)
        w = Tensor(rng.normal(size=(m, 3)), requires_grad=True)

        def fn(a, b):
            logits = a @ b
            return -(logits.log_softmax(axis=1)[:, 0]).mean()

        check_gradients(fn, [x, w], rtol=1e-3, atol=1e-5)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(2, 5), st.integers(0, 10_000))
    def test_shared_operand_diamond(self, size, seed):
        """x used along two paths must accumulate both contributions."""
        rng = np.random.default_rng(seed)
        x = Tensor(rng.uniform(0.2, 1.5, size=(size,)), requires_grad=True)

        def fn(t):
            left = t.exp().sum()
            right = (t * t).mean()
            return left * right

        check_gradients(fn, [x], rtol=1e-3, atol=1e-5)


class TestForwardAgainstNumpy:
    """Forward values of composed expressions vs the raw numpy equivalent."""

    @settings(max_examples=40, deadline=None)
    @given(st.integers(1, 6), st.integers(1, 6), st.integers(0, 10_000))
    def test_normalization_expression(self, rows, cols, seed):
        rng = np.random.default_rng(seed)
        data = rng.normal(size=(rows, cols))
        t = Tensor(data)
        got = ((t - t.mean(axis=0, keepdims=True))
               / (t.var(axis=0, keepdims=True) + 1e-5).sqrt()).data
        expected = (data - data.mean(axis=0, keepdims=True)) \
            / np.sqrt(data.var(axis=0, keepdims=True) + 1e-5)
        assert np.allclose(got, expected)

    @settings(max_examples=40, deadline=None)
    @given(st.integers(1, 5), st.integers(1, 5), st.integers(1, 5),
           st.integers(0, 10_000))
    def test_affine_chain(self, n, m, k, seed):
        rng = np.random.default_rng(seed)
        a = rng.normal(size=(n, m))
        b = rng.normal(size=(m, k))
        c = rng.normal(size=(k,))
        got = (Tensor(a) @ Tensor(b) + Tensor(c)).relu().data
        assert np.allclose(got, np.maximum(a @ b + c, 0.0))
