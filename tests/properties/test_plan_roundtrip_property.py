"""Property-based contracts of plan save/load round-trips.

For *any* classifier geometry — including tail-forcing macro grids like
7x13 and prime fan-ins like 131 — a plan written by ``save_plan`` and
read back by ``load_compiled`` must score bit-identically to the original
on every registered backend, and the noisy RRAM path of a *loaded* plan
must keep the Monte-Carlo chunking invariance of the fresh one.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.io import load_compiled, load_plan, save_plan
from repro.nn.binary import FoldedBinaryDense, FoldedOutputDense
from repro.rram import AcceleratorConfig, MacroGeometry
from repro.runtime import (RRAMBackend, ShardedRRAMBackend, compile,
                           plan_from_folded)


def _random_folded_stack(rng, n_in, n_hidden, n_out, n_classes):
    """A synthetic two-layer folded classifier with adversarial
    thresholds (gamma==0 rows included)."""
    def dense(rows, cols):
        return FoldedBinaryDense(
            weight_bits=rng.integers(0, 2, (rows, cols)).astype(np.uint8),
            theta=rng.integers(-cols, cols + 1, rows).astype(np.float64),
            gamma_sign=rng.choice([-1.0, 0.0, 1.0], rows),
            beta_sign=rng.choice([-1.0, 1.0], rows))
    hidden = [dense(n_hidden, n_in), dense(n_out, n_hidden)]
    output = FoldedOutputDense(
        weight_bits=rng.integers(0, 2,
                                 (n_classes, n_out)).astype(np.uint8),
        scale=rng.normal(1.0, 0.3, n_classes),
        offset=rng.normal(0.0, 0.5, n_classes))
    return hidden, output


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 2 ** 31), st.integers(3, 140), st.integers(2, 40),
       st.integers(2, 24), st.integers(2, 4))
def test_roundtrip_bit_identical_on_all_backends(tmp_path_factory, seed,
                                                 n_in, n_hidden, n_out,
                                                 n_classes):
    rng = np.random.default_rng(seed)
    hidden, output = _random_folded_stack(rng, n_in, n_hidden, n_out,
                                          n_classes)
    bits = rng.integers(0, 2, (9, n_in)).astype(np.uint8)
    path = tmp_path_factory.mktemp("plans") / "plan.npz"
    save_plan(plan_from_folded(hidden, output, "reference"), path)
    artifact = load_plan(path)

    for backend_factory in (
            lambda: "reference",
            lambda: "packed",
            lambda: RRAMBackend(AcceleratorConfig(ideal=True)),
            lambda: ShardedRRAMBackend(AcceleratorConfig(ideal=True),
                                       macro=MacroGeometry(7, 13))):
        fresh = plan_from_folded(hidden, output, backend_factory())
        loaded = load_compiled(artifact, backend=backend_factory())
        assert np.array_equal(loaded.scores(bits), fresh.scores(bits))


@settings(max_examples=8, deadline=None)
@given(st.integers(0, 2 ** 31), st.integers(1, 5),
       st.one_of(st.none(), st.integers(1, 3)))
def test_prime_131_fan_in_roundtrip_sharded(tmp_path_factory, seed, trials,
                                            trial_chunk):
    """The PR 4 stress geometry: a 131-wide (prime) fan-in forces ragged
    tail shards on any macro grid; the reloaded plan must agree with the
    fresh one bit-for-bit, noisy trials included."""
    rng = np.random.default_rng(seed)
    hidden, output = _random_folded_stack(rng, 131, 17, 11, 3)
    bits = rng.integers(0, 2, (6, 131)).astype(np.uint8)
    path = tmp_path_factory.mktemp("plans") / "plan131.npz"
    save_plan(plan_from_folded(hidden, output, "reference"), path)
    artifact = load_plan(path)

    def backend():
        return ShardedRRAMBackend(AcceleratorConfig(ideal=True),
                                  macro=MacroGeometry(7, 13))

    fresh = plan_from_folded(hidden, output, backend())
    loaded = load_compiled(artifact, backend=backend())
    assert np.array_equal(loaded.scores(bits), fresh.scores(bits))
    assert np.array_equal(
        loaded.scores_trials(bits, trials, seed=seed,
                             trial_chunk=trial_chunk),
        fresh.scores_trials(bits, trials, seed=seed,
                            trial_chunk=trial_chunk))


@settings(max_examples=6, deadline=None)
@given(st.integers(0, 2 ** 31), st.integers(2, 6),
       st.one_of(st.none(), st.integers(1, 4)))
def test_loaded_noisy_plan_is_chunk_invariant(tmp_path_factory, seed,
                                              trials, trial_chunk):
    """Monte-Carlo contract survives the file round-trip: a loaded noisy
    plan's trial batching is invariant to ``trial_chunk`` under a fixed
    seed, and matches the freshly built noisy plan bit-for-bit."""
    rng = np.random.default_rng(seed)
    hidden, output = _random_folded_stack(rng, 24, 10, 8, 2)
    bits = rng.integers(0, 2, (5, 24)).astype(np.uint8)
    path = tmp_path_factory.mktemp("plans") / "noisy.npz"
    save_plan(plan_from_folded(hidden, output, "reference"), path)
    artifact = load_plan(path)

    config = AcceleratorConfig(seed=7)      # default noisy device model
    loaded = load_compiled(artifact, backend=RRAMBackend(config))
    unchunked = loaded.scores_trials(bits, trials, seed=seed)
    chunked = loaded.scores_trials(bits, trials, seed=seed,
                                   trial_chunk=trial_chunk)
    assert np.array_equal(unchunked, chunked)

    fresh = plan_from_folded(hidden, output, RRAMBackend(config))
    assert np.array_equal(fresh.scores_trials(bits, trials, seed=seed),
                          unchunked)


@pytest.mark.parametrize("name", ["eeg", "ecg"])
def test_lowered_golden_models_roundtrip_with_trials(name, tmp_path):
    """End-to-end lowered plans (conv stages + periphery specs) keep the
    trial axis intact after reload on the noisy RRAM backend."""
    from repro.models import golden_classifier

    model, inputs = golden_classifier(name)
    inputs = inputs[:4]
    config = AcceleratorConfig(seed=3)
    fresh = compile(model, backend=RRAMBackend(config),
                    lower_features=True)
    path = tmp_path / f"{name}.npz"
    save_plan(fresh, path)
    loaded = load_compiled(path, backend=RRAMBackend(config))
    assert np.array_equal(loaded.scores_trials(inputs, 3, seed=1),
                          fresh.scores_trials(inputs, 3, seed=1))
    assert np.array_equal(
        loaded.scores_trials(inputs, 3, seed=1, trial_chunk=2),
        fresh.scores_trials(inputs, 3, seed=1))
