"""Property-based tests (hypothesis) for the stacked-shard fast plan.

The contract: for *any* layer shape, macro geometry and batch, the
program-time stacked plan (one batched kernel over grid-aligned, OR-merged
shard words), the per-shard fast reference loop (``stacked=False``) and
the monolithic controller produce identical integer popcounts — including
``popcounts_trials`` for any trial chunking — and the word-domain column
slicer equals a bit-domain slice-then-pack for any (start, stop) range.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.bitops import pack_bits, packed_column_slice
from repro.rram import (AcceleratorConfig, MacroGeometry, MemoryController,
                        ShardedController, trial_streams)

# Prime-heavy pools so shrunk examples still force tail shards and
# word-misaligned fan-in slices.
DIMS = st.sampled_from([1, 2, 3, 7, 13, 31, 37, 63, 64, 65, 67, 131])
MACRO_DIMS = st.sampled_from([1, 3, 7, 8, 13, 16, 64, 256])


def _bits(seed, *shape):
    return np.random.default_rng(seed).integers(0, 2, shape) \
        .astype(np.uint8)


def _controllers(weights, macro_rows, macro_cols):
    config = AcceleratorConfig(ideal=True)
    macro = MacroGeometry(macro_rows, macro_cols)
    return (ShardedController(weights, config=config, macro=macro),
            ShardedController(weights, config=config, macro=macro,
                              stacked=False),
            MemoryController(weights, config))


class TestStackedEquivalenceProperty:
    @given(out_features=DIMS, in_features=DIMS, macro_rows=MACRO_DIMS,
           macro_cols=MACRO_DIMS, n=st.integers(0, 5),
           seed=st.integers(0, 2**31))
    @settings(max_examples=60, deadline=None)
    def test_popcounts_stacked_equals_reference_and_monolithic(
            self, out_features, in_features, macro_rows, macro_cols, n,
            seed):
        weights = _bits(seed, out_features, in_features)
        x = _bits(seed + 1, n, in_features)
        stacked, reference, mono = _controllers(weights, macro_rows,
                                                macro_cols)
        assert stacked.stacked
        counts = stacked.popcounts(x)
        assert np.array_equal(counts, reference.popcounts(x))
        assert np.array_equal(counts, mono.popcounts(x))

    @given(out_features=DIMS, in_features=DIMS, macro_rows=MACRO_DIMS,
           macro_cols=MACRO_DIMS, n=st.integers(1, 3),
           n_trials=st.integers(1, 4),
           trial_chunk=st.sampled_from([1, 2, 3, None]),
           per_trial=st.booleans(), seed=st.integers(0, 2**31))
    @settings(max_examples=40, deadline=None)
    def test_popcounts_trials_chunk_invariant_equivalence(
            self, out_features, in_features, macro_rows, macro_cols, n,
            n_trials, trial_chunk, per_trial, seed):
        weights = _bits(seed, out_features, in_features)
        shape = (n_trials, n, in_features) if per_trial \
            else (n, in_features)
        x = _bits(seed + 1, *shape)
        stacked, reference, mono = _controllers(weights, macro_rows,
                                                macro_cols)
        a = stacked.popcounts_trials(x, trial_streams(7, n_trials),
                                     trial_chunk=trial_chunk)
        b = reference.popcounts_trials(x, trial_streams(7, n_trials),
                                       trial_chunk=trial_chunk)
        assert np.array_equal(a, b)
        serial = np.stack([mono.popcounts(x[t] if per_trial else x)
                           for t in range(n_trials)])
        assert np.array_equal(a, serial)
        assert stacked.sense_ops == reference.sense_ops
        assert stacked.popcount_bit_ops == reference.popcount_bit_ops


class TestPackedColumnSliceProperty:
    @given(width=st.integers(1, 200), n=st.integers(0, 4),
           bounds=st.tuples(st.integers(0, 200), st.integers(0, 200)),
           seed=st.integers(0, 2**31))
    @settings(max_examples=80, deadline=None)
    def test_word_domain_slice_equals_pack_of_bit_slice(self, width, n,
                                                        bounds, seed):
        start, stop = sorted(b % (width + 1) for b in bounds)
        bits = _bits(seed, n, width)
        sliced = packed_column_slice(pack_bits(bits), start, stop)
        assert np.array_equal(sliced, pack_bits(bits[:, start:stop]))
