"""Tests for checkpoint and programming-artefact persistence (repro.io)."""

import numpy as np
import pytest

from repro.io import (load_folded_classifier, load_model,
                      save_folded_classifier, save_model)
from repro.models import BinarizationMode, ECGNet
from repro.nn import Linear, Sequential
from repro.rram import fold_classifier
from repro.tensor import Tensor


@pytest.fixture
def small_model():
    return Sequential(Linear(6, 4, rng=np.random.default_rng(0)),
                      Linear(4, 2, rng=np.random.default_rng(1)))


class TestModelCheckpoint:
    def test_round_trip_preserves_outputs(self, small_model, tmp_path):
        path = tmp_path / "ckpt.npz"
        save_model(small_model, path)
        fresh = Sequential(Linear(6, 4, rng=np.random.default_rng(9)),
                           Linear(4, 2, rng=np.random.default_rng(10)))
        load_model(fresh, path)
        x = Tensor(np.random.default_rng(2).normal(size=(3, 6)))
        assert np.allclose(small_model(x).data, fresh(x).data)

    def test_buffers_round_trip(self, tmp_path):
        model = ECGNet(mode=BinarizationMode.BINARY_CLASSIFIER,
                       n_samples=300, base_filters=8,
                       rng=np.random.default_rng(3))
        model.fit_input_norm(np.random.default_rng(4).normal(
            size=(20, 12, 300)))
        path = tmp_path / "ecg.npz"
        save_model(model, path)
        fresh = ECGNet(mode=BinarizationMode.BINARY_CLASSIFIER,
                       n_samples=300, base_filters=8,
                       rng=np.random.default_rng(5))
        load_model(fresh, path)
        assert np.allclose(model.input_norm.mean, fresh.input_norm.mean)
        assert np.allclose(model.bn_fc1.running_var,
                           fresh.bn_fc1.running_var)

    def test_wrong_class_rejected(self, small_model, tmp_path):
        path = tmp_path / "ckpt.npz"
        save_model(small_model, path)
        other = ECGNet(n_samples=300, base_filters=8,
                       rng=np.random.default_rng(6))
        with pytest.raises(ValueError, match="cannot load"):
            load_model(other, path)

    def test_missing_file_raises(self, small_model, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_model(small_model, tmp_path / "nope.npz")

    def test_non_artefact_rejected(self, small_model, tmp_path):
        path = tmp_path / "random.npz"
        np.savez(path, a=np.zeros(3))
        with pytest.raises(ValueError, match="metadata"):
            load_model(small_model, path)

    def test_wrong_kind_rejected(self, small_model, tmp_path):
        model = ECGNet(mode=BinarizationMode.BINARY_CLASSIFIER,
                       n_samples=300, base_filters=8,
                       rng=np.random.default_rng(7))
        model.eval()
        hidden, output = fold_classifier(model)
        path = tmp_path / "folded.npz"
        save_folded_classifier(hidden, output, path)
        with pytest.raises(ValueError, match="not a model"):
            load_model(small_model, path)


class TestFoldedArtefact:
    @pytest.fixture
    def folded(self):
        model = ECGNet(mode=BinarizationMode.BINARY_CLASSIFIER,
                       n_samples=300, base_filters=8,
                       rng=np.random.default_rng(8))
        model.eval()
        return fold_classifier(model)

    def test_round_trip_is_bit_exact(self, folded, tmp_path):
        hidden, output = folded
        path = tmp_path / "program.npz"
        save_folded_classifier(hidden, output, path)
        loaded_hidden, loaded_output = load_folded_classifier(path)

        rng = np.random.default_rng(9)
        bits = rng.integers(0, 2,
                            size=(8, hidden[0].in_features)).astype(np.uint8)
        original = output.forward_scores(hidden[0].forward_bits(bits))
        restored = loaded_output.forward_scores(
            loaded_hidden[0].forward_bits(bits))
        assert np.array_equal(original, restored)

    def test_loaded_artefact_deploys_on_hardware(self, folded, tmp_path):
        """The restored artefact can program an accelerator directly."""
        from repro.rram import AcceleratorConfig
        from repro.rram.accelerator import (InMemoryClassifier,
                                            InMemoryDenseLayer,
                                            InMemoryOutputLayer)

        hidden, output = folded
        path = tmp_path / "program.npz"
        save_folded_classifier(hidden, output, path)
        loaded_hidden, loaded_output = load_folded_classifier(path)

        config = AcceleratorConfig(ideal=True)
        hardware = InMemoryClassifier(
            [InMemoryDenseLayer(l, config) for l in loaded_hidden],
            InMemoryOutputLayer(loaded_output, config))
        rng = np.random.default_rng(10)
        bits = rng.integers(
            0, 2, size=(4, hidden[0].in_features)).astype(np.uint8)
        expected = output.predict(hidden[0].forward_bits(bits))
        assert np.array_equal(hardware.predict(bits), expected)

    def test_wrong_kind_rejected(self, small_model, folded, tmp_path):
        path = tmp_path / "model.npz"
        save_model(small_model, path)
        with pytest.raises(ValueError, match="not a folded"):
            load_folded_classifier(path)

    def test_metadata_records_shapes(self, folded, tmp_path):
        import json
        hidden, output = folded
        path = tmp_path / "program.npz"
        save_folded_classifier(hidden, output, path)
        with np.load(path) as data:
            meta = json.loads(bytes(data["__repro_meta__"]).decode())
        assert meta["n_hidden"] == len(hidden)
        assert meta["layer_shapes"][0] == list(hidden[0].weight_bits.shape)


class TestOverwriteGuard:
    """Every save_* entry point refuses to clobber unless told to."""

    def test_save_model_refuses_then_overwrites(self, small_model,
                                                tmp_path):
        path = tmp_path / "ckpt.npz"
        save_model(small_model, path)
        before = path.read_bytes()
        with pytest.raises(FileExistsError, match="overwrite=True"):
            save_model(small_model, path)
        assert path.read_bytes() == before      # refused write is a no-op
        save_model(small_model, path, overwrite=True)

    def test_save_folded_refuses_then_overwrites(self, tmp_path):
        model = ECGNet(mode=BinarizationMode.BINARY_CLASSIFIER,
                       n_samples=300, base_filters=8,
                       rng=np.random.default_rng(11))
        model.eval()
        hidden, output = fold_classifier(model)
        path = tmp_path / "program.npz"
        save_folded_classifier(hidden, output, path)
        with pytest.raises(FileExistsError, match="overwrite=True"):
            save_folded_classifier(hidden, output, path)
        save_folded_classifier(hidden, output, path, overwrite=True)
        loaded_hidden, _ = load_folded_classifier(path)
        assert np.array_equal(loaded_hidden[0].weight_bits,
                              hidden[0].weight_bits)

    def test_guard_sees_through_implicit_npz_suffix(self, small_model,
                                                    tmp_path):
        save_model(small_model, tmp_path / "ckpt")
        assert (tmp_path / "ckpt.npz").exists()
        with pytest.raises(FileExistsError):
            save_model(small_model, tmp_path / "ckpt")
        with pytest.raises(FileExistsError):
            save_model(small_model, tmp_path / "ckpt.npz")
