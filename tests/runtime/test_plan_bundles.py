"""Bundle artifact contracts (repro.io.plans save_bundle/load_bundle).

A bundle is N named plans in one pickle-free npz — the unit a
multi-tenant chip (and the serving daemon) deploys.  The contracts:
each tenant's payload is byte-identical to its solo ``save_plan``
serialization, bundles reload bit-identically on every registered
backend, single-plan files load transparently as one-tenant bundles
(and vice versa), and the committed golden bundle fixture matches a
fresh save array-for-array.
"""

import pathlib

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.io import (BundleArtifact, load_bundle, load_compiled,
                      load_compiled_bundle, load_plan, save_bundle,
                      save_plan)
from repro.nn.binary import FoldedBinaryDense, FoldedOutputDense
from repro.rram import AcceleratorConfig, MacroGeometry
from repro.runtime import (RRAMBackend, ShardedRRAMBackend, compile,
                           plan_from_folded)

FIXTURES = pathlib.Path(__file__).resolve().parents[1] / "fixtures" / "plans"


def _random_folded_stack(rng, n_in, n_hidden, n_out, n_classes):
    def dense(rows, cols):
        return FoldedBinaryDense(
            weight_bits=rng.integers(0, 2, (rows, cols)).astype(np.uint8),
            theta=rng.integers(-cols, cols + 1, rows).astype(np.float64),
            gamma_sign=rng.choice([-1.0, 0.0, 1.0], rows),
            beta_sign=rng.choice([-1.0, 1.0], rows))
    hidden = [dense(n_hidden, n_in), dense(n_out, n_hidden)]
    output = FoldedOutputDense(
        weight_bits=rng.integers(0, 2,
                                 (n_classes, n_out)).astype(np.uint8),
        scale=rng.normal(1.0, 0.3, n_classes),
        offset=rng.normal(0.0, 0.5, n_classes))
    return hidden, output


@pytest.fixture
def two_tenants(rng):
    plans, inputs = {}, {}
    for name, (n_in, n_hidden, n_out, n_classes) in (
            ("alpha", (67, 12, 8, 2)), ("beta", (131, 20, 10, 3))):
        hidden, output = _random_folded_stack(rng, n_in, n_hidden, n_out,
                                              n_classes)
        plans[name] = plan_from_folded(hidden, output, "reference")
        inputs[name] = rng.integers(0, 2, (7, n_in)).astype(np.uint8)
    return plans, inputs


class TestBundleFormat:
    def test_roundtrip_names_and_meta(self, two_tenants, tmp_path):
        plans, _ = two_tenants
        path = save_bundle(plans, tmp_path / "b.npz")
        bundle = load_bundle(path)
        assert isinstance(bundle, BundleArtifact)
        assert bundle.names == ("alpha", "beta")
        assert len(bundle) == 2
        assert "alpha" in bundle and "nope" not in bundle
        assert "2 model" in bundle.describe() or \
            "alpha" in bundle.describe()

    def test_tenant_payload_byte_identical_to_solo_save(self, two_tenants,
                                                        tmp_path):
        """The bundle namespaces each tenant's exact solo serialization;
        extracting a tenant loses nothing."""
        plans, _ = two_tenants
        bundle_path = save_bundle(plans, tmp_path / "b.npz")
        solo_path = save_plan(plans["alpha"], tmp_path / "alpha.npz")
        with np.load(bundle_path) as bundled, np.load(solo_path) as solo:
            solo_keys = [k for k in solo.files
                         if k != "__repro_meta__"]
            prefixed = {k for k in bundled.files
                        if k.startswith("model0.")}
            assert prefixed == {f"model0.{k}" for k in solo_keys}
            for key in solo_keys:
                assert np.array_equal(bundled[f"model0.{key}"], solo[key])

    def test_overwrite_protection(self, two_tenants, tmp_path):
        plans, _ = two_tenants
        path = save_bundle(plans, tmp_path / "b.npz")
        with pytest.raises(FileExistsError):
            save_bundle(plans, path)
        save_bundle(plans, path, overwrite=True)

    def test_empty_bundle_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            save_bundle({}, tmp_path / "empty.npz")

    def test_bad_names_rejected(self, two_tenants, tmp_path):
        plans, _ = two_tenants
        with pytest.raises(ValueError):
            save_bundle({"": plans["alpha"]}, tmp_path / "b.npz")


class TestBundleLoading:
    def test_loads_bit_identically_on_all_backends(self, two_tenants,
                                                   tmp_path):
        plans, inputs = two_tenants
        path = save_bundle(plans, tmp_path / "b.npz")
        for backend in ("reference", "packed",
                        lambda: RRAMBackend(AcceleratorConfig(ideal=True)),
                        lambda: ShardedRRAMBackend(
                            AcceleratorConfig(ideal=True),
                            macro=MacroGeometry(7, 13))):
            loaded = load_compiled_bundle(path, backend=backend)
            assert set(loaded) == set(plans)
            for name in plans:
                assert np.array_equal(loaded[name].scores(inputs[name]),
                                      plans[name].scores(inputs[name]))

    def test_sharded_tenants_get_separate_placements(self, two_tenants,
                                                     tmp_path):
        """Each tenant binds its own backend instance: placements must
        not be clobbered by the last compile (begin_plan resets them)."""
        plans, _ = two_tenants
        path = save_bundle(plans, tmp_path / "b.npz")
        loaded = load_compiled_bundle(
            path, backend=lambda: ShardedRRAMBackend(
                AcceleratorConfig(ideal=True), macro=MacroGeometry(8, 24)))
        for name in plans:
            assert loaded[name].placements, name
        assert loaded["alpha"].placements[0].in_features == 67
        assert loaded["beta"].placements[0].in_features == 131

    def test_load_plan_selects_model(self, two_tenants, tmp_path):
        plans, inputs = two_tenants
        path = save_bundle(plans, tmp_path / "b.npz")
        artifact = load_plan(path, model="beta")
        loaded = load_compiled(artifact, backend="packed")
        assert np.array_equal(loaded.scores(inputs["beta"]),
                              plans["beta"].scores(inputs["beta"]))

    def test_load_plan_without_model_is_ambiguous(self, two_tenants,
                                                  tmp_path):
        plans, _ = two_tenants
        path = save_bundle(plans, tmp_path / "b.npz")
        with pytest.raises(ValueError, match="alpha"):
            load_plan(path)

    def test_unknown_model_lists_names(self, two_tenants, tmp_path):
        plans, _ = two_tenants
        path = save_bundle(plans, tmp_path / "b.npz")
        with pytest.raises(ValueError, match="beta"):
            load_plan(path, model="gamma")


class TestSinglePlanTransparency:
    def test_single_plan_file_loads_as_one_tenant_bundle(self, rng,
                                                         tmp_path):
        hidden, output = _random_folded_stack(rng, 40, 10, 6, 2)
        plan = plan_from_folded(hidden, output, "reference")
        path = save_plan(plan, tmp_path / "solo_model.npz")
        bundle = load_bundle(path)
        assert bundle.names == ("solo_model",)
        bits = rng.integers(0, 2, (5, 40)).astype(np.uint8)
        loaded = load_compiled(bundle.plan(), backend="packed")
        assert np.array_equal(loaded.scores(bits), plan.scores(bits))

    def test_one_tenant_bundle_loads_as_plain_plan(self, rng, tmp_path):
        hidden, output = _random_folded_stack(rng, 40, 10, 6, 2)
        plan = plan_from_folded(hidden, output, "reference")
        path = save_bundle({"only": plan}, tmp_path / "one.npz")
        artifact = load_plan(path)       # model tag optional: one tenant
        bits = rng.integers(0, 2, (5, 40)).astype(np.uint8)
        loaded = load_compiled(artifact, backend="packed")
        assert np.array_equal(loaded.scores(bits), plan.scores(bits))


class TestGoldenBundleFixture:
    def test_committed_bundle_matches_fresh_save(self, tmp_path):
        """The committed fixture is byte-stable: regenerating from the
        golden models reproduces every array exactly."""
        from repro.models import GOLDEN_NAMES, golden_classifier

        plans = {}
        for name in GOLDEN_NAMES:
            model, _ = golden_classifier(name)
            plans[name] = compile(model, backend="reference",
                                  lower_features=True)
        fresh_path = save_bundle(plans, tmp_path / "fresh.npz")
        with np.load(FIXTURES / "eeg_ecg_bundle.npz") as committed, \
                np.load(fresh_path) as fresh:
            assert set(committed.files) == set(fresh.files)
            for key in committed.files:
                if key == "__repro_meta__":
                    continue
                assert np.array_equal(committed[key], fresh[key]), key

    def test_committed_bundle_tenants_match_solo_fixtures(self):
        """Bundle tenants == the committed single-plan fixtures,
        bit-for-bit, on every backend."""
        bundle = load_bundle(FIXTURES / "eeg_ecg_bundle.npz")
        assert bundle.names == ("eeg", "ecg")
        rng = np.random.default_rng(0)
        for name in bundle.names:
            solo = load_plan(FIXTURES / f"{name}_full_binary.npz")
            x = rng.standard_normal((4,) + solo.input_shape)
            for backend in ("reference", "packed"):
                a = load_compiled(bundle[name], backend=backend)
                b = load_compiled(solo, backend=backend)
                assert np.array_equal(a.scores(x), b.scores(x))


class TestBundleProperties:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 2 ** 31), st.integers(1, 4))
    def test_random_tenant_counts_and_geometries_roundtrip(
            self, tmp_path_factory, seed, n_tenants):
        """Any tenant count, any layer geometry: the bundle reloads each
        tenant bit-identically (packed + sharded with a tail-forcing
        7x13 macro)."""
        rng = np.random.default_rng(seed)
        plans, inputs = {}, {}
        for t in range(n_tenants):
            n_in = int(rng.integers(3, 120))
            n_hidden = int(rng.integers(2, 30))
            n_out = int(rng.integers(2, 20))
            n_classes = int(rng.integers(2, 5))
            hidden, output = _random_folded_stack(rng, n_in, n_hidden,
                                                  n_out, n_classes)
            name = f"tenant{t}"
            plans[name] = plan_from_folded(hidden, output, "reference")
            inputs[name] = rng.integers(0, 2, (4, n_in)).astype(np.uint8)
        path = tmp_path_factory.mktemp("bundles") / "random.npz"
        save_bundle(plans, path)
        bundle = load_bundle(path)
        assert bundle.names == tuple(plans)
        for backend in ("packed",
                        lambda: ShardedRRAMBackend(
                            AcceleratorConfig(ideal=True),
                            macro=MacroGeometry(7, 13))):
            loaded = load_compiled_bundle(path, backend=backend)
            for name in plans:
                assert np.array_equal(loaded[name].scores(inputs[name]),
                                      plans[name].scores(inputs[name]))
