"""The unified runtime: compile-once plans and backend equivalence.

The acceptance contract: ``compile(model, backend=b)`` produces identical
predictions for the ``reference`` and ``packed`` backends on all three
paper models, ideal RRAM matches both, and lowered feature plans stay
bit-exact with the float stack.
"""

import numpy as np
import pytest

from repro.data import ECGConfig, EEGConfig, make_ecg_dataset, make_eeg_dataset
from repro.experiments import (TrainConfig, backend_agreement,
                               evaluate_accuracy, evaluate_compiled,
                               train_model)
from repro.models import (BinarizationMode, ECGNet, EEGNet, MobileNetConfig,
                          MobileNetV1)
from repro.rram import AcceleratorConfig, deploy_classifier
from repro.rram.accelerator import classifier_input_bits
from repro.runtime import (Backend, CompiledModel, PackedBackend,
                           ReferenceBackend, RRAMBackend, available_backends,
                           compile, register_backend, resolve_backend)
from repro.tensor import Tensor, no_grad


@pytest.fixture(scope="module")
def trained_ecg():
    ds = make_ecg_dataset(ECGConfig(n_trials=80, n_samples=200,
                                    noise_amplitude=0.05, seed=31))
    model = ECGNet(mode=BinarizationMode.BINARY_CLASSIFIER, n_samples=200,
                   base_filters=4, conv_keep_prob=1.0,
                   classifier_keep_prob=1.0, rng=np.random.default_rng(5))
    model.fit_input_norm(ds.inputs)
    train_model(model, ds.inputs, ds.labels,
                TrainConfig(epochs=5, batch_size=16, lr=2e-3, seed=3))
    model.eval()
    return model, ds


@pytest.fixture(scope="module")
def trained_ecg_full_binary():
    ds = make_ecg_dataset(ECGConfig(n_trials=60, n_samples=200,
                                    noise_amplitude=0.05, seed=32))
    model = ECGNet(mode=BinarizationMode.FULL_BINARY, n_samples=200,
                   base_filters=4, conv_keep_prob=1.0,
                   classifier_keep_prob=1.0, rng=np.random.default_rng(6))
    model.fit_input_norm(ds.inputs)
    train_model(model, ds.inputs, ds.labels,
                TrainConfig(epochs=3, batch_size=16, lr=2e-3, seed=4))
    model.eval()
    return model, ds


@pytest.fixture(scope="module")
def trained_eeg_full_binary():
    ds = make_eeg_dataset(EEGConfig(n_trials=32, n_channels=16,
                                    n_samples=240, seed=33))
    model = EEGNet(mode=BinarizationMode.FULL_BINARY, n_channels=16,
                   n_samples=240, base_filters=4, hidden_units=16,
                   rng=np.random.default_rng(7))
    train_model(model, ds.inputs, ds.labels,
                TrainConfig(epochs=2, batch_size=8, seed=5))
    model.eval()
    return model, ds


@pytest.fixture(scope="module")
def trained_mobilenet():
    rng = np.random.default_rng(8)
    config = MobileNetConfig.reduced(n_classes=4, image_size=12,
                                     width_multiplier=0.25, n_blocks=2)
    model = MobileNetV1(config, mode=BinarizationMode.BINARY_CLASSIFIER,
                        rng=rng)
    inputs = rng.standard_normal((20, 3, 12, 12))
    labels = rng.integers(0, 4, 20)
    train_model(model, inputs, labels,
                TrainConfig(epochs=2, batch_size=5, seed=6))
    model.eval()
    return model, inputs


def _software_predictions(model, inputs):
    with no_grad():
        return model(Tensor(inputs)).data.argmax(axis=1)


class TestBackendEquivalence:
    """reference == packed == software on every paper model."""

    def test_ecg_reference_packed_identical(self, trained_ecg):
        model, ds = trained_ecg
        sw = _software_predictions(model, ds.inputs)
        for backend in ("reference", "packed"):
            plan = compile(model, backend=backend)
            assert np.array_equal(plan.predict(ds.inputs), sw), backend

    def test_eeg_reference_packed_identical(self, trained_eeg_full_binary):
        model, ds = trained_eeg_full_binary
        sw = _software_predictions(model, ds.inputs)
        for backend in ("reference", "packed"):
            plan = compile(model, backend=backend, lower_features=False)
            assert np.array_equal(plan.predict(ds.inputs), sw), backend

    def test_mobilenet_reference_packed_identical(self, trained_mobilenet):
        model, inputs = trained_mobilenet
        sw = _software_predictions(model, inputs)
        for backend in ("reference", "packed"):
            plan = compile(model, backend=backend)
            assert np.array_equal(plan.predict(inputs), sw), backend

    def test_ideal_rram_identical(self, trained_ecg):
        model, ds = trained_ecg
        sw = _software_predictions(model, ds.inputs)
        plan = compile(model,
                       backend=RRAMBackend(AcceleratorConfig(ideal=True)))
        assert np.array_equal(plan.predict(ds.inputs), sw)

    def test_scores_match_model_scores(self, trained_ecg):
        model, ds = trained_ecg
        with no_grad():
            sw_scores = model(Tensor(ds.inputs)).data
        scores = compile(model, backend="packed").scores(ds.inputs)
        assert np.allclose(scores, sw_scores)

    def test_batched_execution_matches(self, trained_ecg):
        model, ds = trained_ecg
        plan = compile(model, backend="packed")
        assert np.array_equal(plan.predict(ds.inputs),
                              plan.predict(ds.inputs, batch_size=7))


class TestFeatureLowering:
    def test_ecg_lowered_all_backends_bit_exact(self,
                                                trained_ecg_full_binary):
        model, ds = trained_ecg_full_binary
        sw = _software_predictions(model, ds.inputs)
        for backend in ("reference", "packed",
                        RRAMBackend(AcceleratorConfig(ideal=True))):
            plan = compile(model, backend=backend, lower_features=True)
            assert np.array_equal(plan.predict(ds.inputs), sw)

    def test_eeg_lowered_bit_exact(self, trained_eeg_full_binary):
        model, ds = trained_eeg_full_binary
        sw = _software_predictions(model, ds.inputs)
        for backend in ("reference", "packed"):
            plan = compile(model, backend=backend, lower_features=True)
            assert np.array_equal(plan.predict(ds.inputs), sw)

    def test_auto_equals_explicit_lowering(self, trained_ecg_full_binary):
        model, ds = trained_ecg_full_binary
        auto = compile(model, backend="packed", lower_features="auto")
        explicit = compile(model, backend="packed", lower_features=True)
        assert len(auto.ops) == len(explicit.ops)
        assert np.array_equal(auto.predict(ds.inputs),
                              explicit.predict(ds.inputs))

    def test_lowered_plan_has_conv_ops(self, trained_ecg_full_binary):
        model, _ = trained_ecg_full_binary
        plan = compile(model, backend="packed", lower_features=True)
        # 4 on-fabric conv stages + fc1 + output.
        assert len(plan.layer_ops) == 6

    def test_binary_classifier_cannot_lower(self, trained_ecg):
        model, _ = trained_ecg
        with pytest.raises(ValueError, match="lowering"):
            compile(model, backend="packed", lower_features=True)

    def test_mobilenet_auto_falls_back_to_front_end(self,
                                                    trained_mobilenet):
        model, inputs = trained_mobilenet
        plan = compile(model, backend="packed", lower_features="auto")
        assert len(plan.layer_ops) == 2     # classifier only

    def test_custom_front_end(self, trained_ecg):
        model, ds = trained_ecg
        baseline = compile(model, backend="packed")
        plan = compile(model, backend="packed",
                       front_end=lambda x: classifier_input_bits(model, x))
        assert np.array_equal(plan.predict(ds.inputs),
                              baseline.predict(ds.inputs))


class TestRRAMFastPath:
    """The packed fast path is bit-exact with full device simulation at
    zero variability — on every paper model, dense and lowered-conv."""

    @staticmethod
    def _fast_and_slow_plans(model, **kwargs):
        config = AcceleratorConfig(ideal=True)
        fast = compile(model, backend=RRAMBackend(config), **kwargs)
        slow = compile(model, backend=RRAMBackend(config, fast_path=False),
                       **kwargs)
        return fast, slow

    def _assert_exact(self, model, inputs, **kwargs):
        fast, slow = self._fast_and_slow_plans(model, **kwargs)
        reference = compile(model, backend="reference", **kwargs)
        assert np.array_equal(fast.scores(inputs), slow.scores(inputs))
        assert np.array_equal(fast.scores(inputs),
                              reference.scores(inputs))

    def test_ecg_classifier_exact(self, trained_ecg):
        model, ds = trained_ecg
        self._assert_exact(model, ds.inputs)

    def test_ecg_lowered_convs_exact(self, trained_ecg_full_binary):
        model, ds = trained_ecg_full_binary
        self._assert_exact(model, ds.inputs, lower_features=True)

    def test_eeg_lowered_conv2d_exact(self, trained_eeg_full_binary):
        model, ds = trained_eeg_full_binary
        self._assert_exact(model, ds.inputs, lower_features=True)

    def test_mobilenet_classifier_exact(self, trained_mobilenet):
        model, inputs = trained_mobilenet
        self._assert_exact(model, inputs)

    def test_auto_dispatch_follows_config(self, trained_ecg):
        model, _ = trained_ecg
        ideal = compile(model,
                        backend=RRAMBackend(AcceleratorConfig(ideal=True)))
        noisy = compile(model, backend=RRAMBackend(AcceleratorConfig()))
        assert all(op.executor.controller.fast_path
                   for op in ideal.ops[1:])
        assert not any(op.executor.controller.fast_path
                       for op in noisy.ops[1:])


class TestCompileValidation:
    def test_real_classifier_rejected(self, rng):
        model = ECGNet(mode=BinarizationMode.REAL, n_samples=200,
                       base_filters=4, rng=rng)
        with pytest.raises(ValueError, match="not binarized"):
            compile(model, backend="reference")

    def test_unknown_backend_rejected(self, trained_ecg):
        model, _ = trained_ecg
        with pytest.raises(ValueError, match="unknown backend"):
            compile(model, backend="multi-model")

    def test_bad_lower_flag_rejected(self, trained_ecg):
        model, _ = trained_ecg
        with pytest.raises(ValueError, match="lower_features"):
            compile(model, backend="reference", lower_features="maybe")

    def test_plan_must_end_in_output(self):
        with pytest.raises(ValueError, match="output layer"):
            CompiledModel([], ReferenceBackend())

    def test_summary_lists_every_op(self, trained_ecg):
        model, _ = trained_ecg
        plan = compile(model, backend="packed")
        summary = plan.summary()
        assert "packed" in summary
        for op in plan.ops:
            assert op.label in summary


class TestBackendRegistry:
    def test_builtins_registered(self):
        names = available_backends()
        for name in ("reference", "packed", "rram"):
            assert name in names

    def test_resolve_accepts_instances_and_names(self):
        assert isinstance(resolve_backend("packed"), PackedBackend)
        backend = RRAMBackend(AcceleratorConfig(ideal=True))
        assert resolve_backend(backend) is backend
        with pytest.raises(TypeError):
            resolve_backend(42)

    def test_register_plugin_backend(self, trained_ecg):
        model, ds = trained_ecg

        class LoggingBackend(ReferenceBackend):
            name = "logging"
            prepared = 0

            def prepare_dense(self, folded):
                LoggingBackend.prepared += 1
                return super().prepare_dense(folded)

        register_backend("logging", LoggingBackend)
        plan = compile(model, backend="logging")
        assert plan.backend.name == "logging"
        assert LoggingBackend.prepared == 1
        sw = _software_predictions(model, ds.inputs)
        assert np.array_equal(plan.predict(ds.inputs), sw)

    def test_register_rejects_non_callable(self):
        with pytest.raises(TypeError):
            register_backend("broken", "not-a-factory")

    def test_abstract_backend_refuses_layers(self):
        backend = Backend()
        with pytest.raises(NotImplementedError):
            backend.prepare_dense(None)
        with pytest.raises(NotImplementedError):
            backend.prepare_conv2d(None)


class TestExperimentsIntegration:
    def test_evaluate_compiled_matches_float_eval(self, trained_ecg):
        model, ds = trained_ecg
        software = evaluate_accuracy(model, ds.inputs, ds.labels)
        plan = compile(model, backend="packed")
        assert evaluate_compiled(plan, ds.inputs, ds.labels) == software

    def test_backend_agreement_contract(self, trained_ecg):
        model, ds = trained_ecg
        _, agreement = backend_agreement(
            model, ds.inputs,
            backends=("reference", "packed",
                      RRAMBackend(AcceleratorConfig(ideal=True))))
        assert agreement == {"reference": 1.0, "packed": 1.0, "rram": 1.0}

    def test_backend_agreement_disambiguates_duplicates(self, trained_ecg):
        model, ds = trained_ecg
        predictions, agreement = backend_agreement(
            model, ds.inputs[:8],
            backends=(RRAMBackend(AcceleratorConfig(ideal=True)),
                      RRAMBackend(AcceleratorConfig(ideal=True))))
        assert set(predictions) == {"rram", "rram#2"}
        assert agreement["rram#2"] == 1.0


class TestLegacyShims:
    def test_deploy_classifier_matches_runtime_plan(self, trained_ecg):
        model, ds = trained_ecg
        config = AcceleratorConfig(ideal=True)
        legacy = deploy_classifier(model, config)
        plan = compile(model, backend=RRAMBackend(config))
        bits = classifier_input_bits(model, ds.inputs)
        assert np.array_equal(legacy.predict(bits), plan.predict(ds.inputs))

    def test_as_inmemory_classifier_requires_rram(self, trained_ecg):
        model, _ = trained_ecg
        plan = compile(model, backend="packed")
        with pytest.raises(ValueError, match="rram"):
            plan.as_inmemory_classifier()
