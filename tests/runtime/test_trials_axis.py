"""Monte-Carlo trial axis on compiled plans (CompiledModel.scores_trials,
evaluate_compiled(trials=...))."""

import numpy as np
import pytest

from repro.experiments import evaluate_compiled
from repro.models import BinarizationMode, ECGNet
from repro.rram import AcceleratorConfig, SenseParameters, trial_streams
from repro.runtime import RRAMBackend, compile as compile_model
from repro.tensor import Tensor, no_grad


@pytest.fixture(scope="module")
def model_and_inputs():
    rng = np.random.default_rng(0)
    model = ECGNet(mode=BinarizationMode.BINARY_CLASSIFIER, n_samples=120,
                   base_filters=4, conv_keep_prob=1.0,
                   classifier_keep_prob=1.0, rng=rng)
    inputs = rng.standard_normal((12, 12, 120))
    model.fit_input_norm(inputs)
    model.train()
    with no_grad():
        model(Tensor(inputs))
    model.eval()
    return model, inputs


def _noisy_backend():
    return RRAMBackend(AcceleratorConfig(
        sense=SenseParameters(offset_sigma=0.4)), fast_path=False)


class TestScoresTrials:
    def test_shape_and_determinism(self, model_and_inputs):
        model, inputs = model_and_inputs
        plan = compile_model(model, backend=_noisy_backend())
        first = plan.scores_trials(inputs, trials=4, seed=9)
        again = plan.scores_trials(inputs, trials=4, seed=9)
        assert first.shape == (4, len(inputs), 2)
        assert np.array_equal(first, again)

    def test_batched_equals_serial_per_trial_pass(self, model_and_inputs):
        model, inputs = model_and_inputs
        plan = compile_model(model, backend=_noisy_backend())
        batched = plan.scores_trials(inputs, trials=3, seed=5)
        serial = []
        for stream in trial_streams(5, 3):
            x = plan.ops[0].run(np.asarray(inputs))
            for op in plan.ops[1:-1]:
                x = op.executor.forward_bits(x, rng=stream) \
                    if hasattr(op, "executor") else op.run(x)
            serial.append(plan.ops[-1].executor.forward_scores(
                x, rng=stream))
        assert np.array_equal(batched, np.stack(serial))

    def test_trial_chunk_invariant(self, model_and_inputs):
        model, inputs = model_and_inputs
        plan = compile_model(model, backend=_noisy_backend())
        wide = plan.scores_trials(inputs, trials=4, seed=2)
        narrow = plan.scores_trials(inputs, trials=4, seed=2,
                                    trial_chunk=1)
        assert np.array_equal(wide, narrow)

    def test_deterministic_backends_broadcast(self, model_and_inputs):
        model, inputs = model_and_inputs
        for backend in ("reference", "packed"):
            plan = compile_model(model, backend=backend)
            stack = plan.scores_trials(inputs, trials=3)
            assert np.array_equal(stack[0], plan.scores(inputs))
            assert np.array_equal(stack[0], stack[1])
            assert np.array_equal(stack[1], stack[2])

    def test_ideal_rram_trials_match_reference(self, model_and_inputs):
        model, inputs = model_and_inputs
        plan = compile_model(
            model, backend=RRAMBackend(AcceleratorConfig(ideal=True)))
        reference = compile_model(model, backend="reference")
        stack = plan.predict_trials(inputs, trials=2)
        assert np.array_equal(stack[0], reference.predict(inputs))
        assert np.array_equal(stack[0], stack[1])


class TestEvaluateCompiledTrials:
    def test_returns_per_trial_accuracy_vector(self, model_and_inputs):
        model, inputs = model_and_inputs
        labels = np.zeros(len(inputs), dtype=np.int64)
        plan = compile_model(model, backend=_noisy_backend())
        accuracies = evaluate_compiled(plan, inputs, labels, trials=5,
                                       seed=1)
        assert accuracies.shape == (5,)
        assert np.all((0.0 <= accuracies) & (accuracies <= 1.0))

    def test_default_path_unchanged(self, model_and_inputs):
        model, inputs = model_and_inputs
        labels = np.zeros(len(inputs), dtype=np.int64)
        plan = compile_model(model, backend="reference")
        scalar = evaluate_compiled(plan, inputs, labels)
        assert isinstance(scalar, float)
        # A deterministic plan's per-trial accuracies all equal the
        # scalar path.
        trials = evaluate_compiled(plan, inputs, labels, trials=3)
        assert np.all(trials == scalar)
