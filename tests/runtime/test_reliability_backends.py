"""Reliability wiring through the unified runtime backends.

The entry points deployments use: ``RRAMBackend(ecc=..., lifetime=...,
fault_map=...)`` and ``ShardedRRAMBackend(lifetime=..., fault_map=...,
spares=...)``. Contracts:

* with every reliability knob off the backends build byte-identical
  plans to before the feature existed (layers own their controllers);
* ``resolve_ecc`` maps the CLI spellings onto codes and rejects junk;
* a chip-global FaultMap is rebased layer by layer as the sharded
  backend walks the plan, so killing any global macro index degrades
  exactly one layer — and the degraded plan still scores bit-identically
  to the monolithic backend;
* compiled summaries surface the ECC mode and degraded placements.
"""

import numpy as np
import pytest

from repro.cli.main import _demo_model_and_inputs
from repro.rram import (AcceleratorConfig, FaultMap, HammingCode,
                        LifetimeConfig, MacroGeometry)
from repro.runtime import RRAMBackend, ShardedRRAMBackend, compile
from repro.runtime.backends import resolve_ecc


@pytest.fixture(scope="module")
def demo():
    return _demo_model_and_inputs("eeg", "full_binary")


class TestResolveEcc:
    def test_spellings(self):
        assert resolve_ecc(None) is None
        assert resolve_ecc("none") is None
        assert resolve_ecc("") is None
        code = resolve_ecc("secded")
        assert (code.n, code.k) == (72, 64)
        assert resolve_ecc("rate-half").redundancy == pytest.approx(2.0)
        assert resolve_ecc("rate_half").redundancy == pytest.approx(2.0)
        custom = HammingCode(r=4)
        assert resolve_ecc(custom) is custom

    def test_rejects_junk(self):
        with pytest.raises(ValueError):
            resolve_ecc("hamming-banana")
        with pytest.raises(TypeError):
            resolve_ecc(42)


class TestLegacyIdentity:
    def test_all_knobs_off_matches_plain_backend(self, demo):
        model, inputs = demo
        plain = compile(model, backend=RRAMBackend(
            AcceleratorConfig(ideal=True)))
        wired = compile(model, backend=RRAMBackend(
            AcceleratorConfig(ideal=True), ecc=None, lifetime=None,
            fault_map=None))
        assert np.array_equal(plain.scores(inputs), wired.scores(inputs))

    def test_sharded_empty_map_matches_monolithic(self, demo):
        model, inputs = demo
        mono = compile(model, backend=RRAMBackend(
            AcceleratorConfig(ideal=True)))
        sharded = compile(model, backend=ShardedRRAMBackend(
            AcceleratorConfig(ideal=True), macro=MacroGeometry(8, 24),
            fault_map=FaultMap(), spares=0))
        assert np.array_equal(mono.scores(inputs), sharded.scores(inputs))


class TestEccBackend:
    def test_ecc_plan_matches_bare_when_healthy(self, demo):
        model, inputs = demo
        bare = compile(model, backend=RRAMBackend(
            AcceleratorConfig(ideal=True)))
        ecc = compile(model, backend=RRAMBackend(
            AcceleratorConfig(ideal=True), ecc="secded"))
        assert np.array_equal(bare.scores(inputs), ecc.scores(inputs))

    def test_summary_names_ecc(self, demo):
        model, _ = demo
        plan = compile(model, backend=RRAMBackend(
            AcceleratorConfig(ideal=True), ecc="secded"))
        text = plan.summary()
        assert "ECC: (72,64) SECDED" in text

    def test_per_layer_fault_keys_differ(self, demo):
        """Two layers with the same geometry must not share a stuck
        pattern: the backend keys each controller by plan position."""
        model, inputs = demo
        fm = FaultMap(stuck_lrs=0.01, seed=3)
        backend = RRAMBackend(AcceleratorConfig(ideal=True), fault_map=fm)
        plan = compile(model, backend=backend)
        controllers = [op.executor.controller for op in plan.layer_ops]
        keys = [c.fault_key for c in controllers]
        assert len(set(keys)) == len(keys)


class TestShardedDegradation:
    def test_killed_global_macro_remaps_and_matches(self, demo):
        model, inputs = demo
        mono = compile(model, backend=RRAMBackend(
            AcceleratorConfig(ideal=True)))
        backend = ShardedRRAMBackend(
            AcceleratorConfig(ideal=True), macro=MacroGeometry(8, 24),
            fault_map=FaultMap(dead_macros=(0, 9)))
        degraded = compile(model, backend=backend)
        assert np.array_equal(mono.scores(inputs),
                              degraded.scores(inputs))
        remapped = [p.remapped for p in degraded.placements if p.remapped]
        assert sum(len(r) for r in remapped) == 2

    def test_global_indices_land_on_the_right_layer(self, demo):
        """Global macro 0 lives in the first placement; a global index
        past the first layer's macros degrades a later placement."""
        model, inputs = demo
        probe = compile(model, backend=ShardedRRAMBackend(
            AcceleratorConfig(ideal=True), macro=MacroGeometry(8, 24)))
        first_layer_macros = probe.placements[0].n_macros
        backend = ShardedRRAMBackend(
            AcceleratorConfig(ideal=True), macro=MacroGeometry(8, 24),
            fault_map=FaultMap(dead_macros=(first_layer_macros,)))
        degraded = compile(model, backend=backend)
        assert degraded.placements[0].remapped == ()
        assert degraded.placements[1].remapped == (0,)

    def test_summary_and_macro_report_show_degradation(self, demo):
        model, _ = demo
        plan = compile(model, backend=ShardedRRAMBackend(
            AcceleratorConfig(ideal=True), macro=MacroGeometry(8, 24),
            fault_map=FaultMap(dead_macros=(1,))))
        assert "dead macro(s) remapped" in plan.summary()
        report = plan.floorplan().macro_report()
        assert "Spare macros (degraded placements)" in report

    def test_insufficient_spares_surface_at_compile(self, demo):
        model, _ = demo
        backend = ShardedRRAMBackend(
            AcceleratorConfig(ideal=True), macro=MacroGeometry(8, 24),
            fault_map=FaultMap(dead_macros=(0, 1, 2)), spares=1)
        with pytest.raises(RuntimeError, match="spare"):
            compile(model, backend=backend)
