"""The sharded multi-macro backend through the unified runtime.

Acceptance contract of the sharded refactor: for every model in
``models/`` that compiles today, noise-free sharded execution is
bit-identical to the monolithic ``rram`` backend (and to ``reference``)
at multiple macro geometries — including geometries forcing non-divisible
tail shards — plans carry their floorplan placements, Monte-Carlo trial
batching stays chunk-invariant on the sharded path, and the backend
registry handles its error paths.
"""

import numpy as np
import pytest

from repro.cli.main import _demo_model_and_inputs
from repro.experiments import backend_agreement
from repro.rram import (AcceleratorConfig, DeviceParameters, MacroGeometry,
                        SenseParameters)
from repro.runtime import (RRAMBackend, ShardedRRAMBackend,
                           available_backends, compile, register_backend,
                           resolve_backend)

# One divisible-friendly geometry and one prime geometry that forces
# non-divisible tail shards on every demo layer.
GEOMETRIES = [(32, 32), (7, 13)]

MODELS = [("eeg", "binary_classifier"), ("eeg", "full_binary"),
          ("ecg", "binary_classifier"), ("ecg", "full_binary"),
          ("mobilenet", "binary_classifier")]


@pytest.fixture(scope="module")
def demo_models():
    return {key: _demo_model_and_inputs(*key) for key in MODELS}


def _noisy_config(sigma=2.0) -> AcceleratorConfig:
    device = DeviceParameters(sigma_lrs0=0.0, sigma_hrs0=0.0,
                              broadening=0.0, hrs_drift=0.0,
                              device_mismatch=1.0)
    return AcceleratorConfig(device=device,
                             sense=SenseParameters(offset_sigma=sigma))


class TestNoiseFreeEquivalence:
    @pytest.mark.parametrize("key", MODELS, ids=lambda k: f"{k[0]}-{k[1]}")
    @pytest.mark.parametrize("geometry", GEOMETRIES,
                             ids=lambda g: f"{g[0]}x{g[1]}")
    def test_sharded_matches_monolithic_and_reference(self, demo_models,
                                                      key, geometry):
        model, inputs = demo_models[key]
        reference = compile(model, backend="reference").scores(inputs)
        mono = compile(model, backend=RRAMBackend(
            AcceleratorConfig(ideal=True))).scores(inputs)
        backend = ShardedRRAMBackend(AcceleratorConfig(ideal=True),
                                     macro=MacroGeometry(*geometry))
        sharded = compile(model, backend=backend).scores(inputs)
        assert np.array_equal(sharded, mono)
        assert np.array_equal(sharded, reference)

    def test_tail_geometry_actually_produces_tails(self, demo_models):
        model, _ = demo_models[("eeg", "binary_classifier")]
        backend = ShardedRRAMBackend(AcceleratorConfig(ideal=True),
                                     macro=MacroGeometry(7, 13))
        plan = compile(model, backend=backend)
        tails = [s for p in plan.placements for s in p.shards()
                 if s.utilization < 1.0]
        assert tails, "7x13 geometry was expected to force tail shards"


class TestPlanPlacements:
    def test_plan_carries_placements_in_plan_order(self, demo_models):
        model, _ = demo_models[("ecg", "full_binary")]
        backend = ShardedRRAMBackend(AcceleratorConfig(ideal=True))
        plan = compile(model, backend=backend)
        placements = plan.placements
        assert placements == backend.placements
        assert len(placements) == len(plan.layer_ops)
        shapes = [(op.folded.weight_bits.shape) for op in plan.layer_ops]
        assert [(p.out_features, p.in_features) for p in placements] \
            == shapes

    def test_floorplan_reports_per_macro_numbers(self, demo_models):
        model, _ = demo_models[("eeg", "binary_classifier")]
        backend = ShardedRRAMBackend(AcceleratorConfig(ideal=True),
                                     macro=MacroGeometry(8, 24))
        plan = compile(model, backend=backend)
        floorplan = plan.floorplan()
        assert floorplan.n_macros == \
            sum(p.n_macros for p in plan.placements)
        report = floorplan.macro_report()
        assert "Tails" in report and "Scan pJ/macro" in report
        assert "placed on" in plan.summary()

    def test_backend_reuse_resets_placements_per_compile(self, demo_models):
        """Regression: compiling a second model on the same backend must
        not merge the two floorplans."""
        backend = ShardedRRAMBackend(AcceleratorConfig(ideal=True))
        eeg, _ = demo_models[("eeg", "binary_classifier")]
        ecg, _ = demo_models[("ecg", "binary_classifier")]
        compile(eeg, backend=backend)
        plan = compile(ecg, backend=backend)
        assert backend.placements == plan.placements
        assert len(backend.placements) == len(plan.layer_ops)
        # Fresh numbering per plan — not fc2/out2 continuing the first.
        assert [p.name for p in backend.placements] == ["fc1", "out1"]
        assert backend.floorplan().n_macros == plan.floorplan().n_macros

    def test_non_sharded_plan_has_no_placements(self, demo_models):
        model, _ = demo_models[("eeg", "binary_classifier")]
        plan = compile(model, backend="packed")
        assert plan.placements == []
        with pytest.raises(ValueError, match="floorplan"):
            plan.floorplan()


class TestShardedMonteCarlo:
    @pytest.fixture(scope="class")
    def noisy_plan(self, demo_models):
        model, inputs = demo_models[("eeg", "binary_classifier")]
        backend = ShardedRRAMBackend(_noisy_config(),
                                     macro=MacroGeometry(8, 16),
                                     fast_path=False)
        return compile(model, backend=backend), inputs[:6]

    @pytest.mark.parametrize("trial_chunk", [1, 2, None])
    def test_trial_batching_chunk_invariant(self, noisy_plan, trial_chunk):
        plan, inputs = noisy_plan
        expected = plan.scores_trials(inputs, trials=5, seed=13)
        chunked = plan.scores_trials(inputs, trials=5, seed=13,
                                     trial_chunk=trial_chunk)
        assert np.array_equal(expected, chunked)

    def test_trials_reproducible_per_seed(self, noisy_plan):
        plan, inputs = noisy_plan
        a = plan.predict_trials(inputs, trials=4, seed=2)
        b = plan.predict_trials(inputs, trials=4, seed=2)
        assert np.array_equal(a, b)

    def test_sharded_counts_as_stochastic_op(self, noisy_plan):
        """A noisy sharded plan must fan trials out (not broadcast one
        deterministic evaluation)."""
        plan, inputs = noisy_plan
        scores = plan.scores_trials(inputs, trials=6, seed=3)
        assert any(not np.array_equal(scores[0], scores[t])
                   for t in range(1, 6))


class TestRegistryErrorPaths:
    def test_sharded_is_registered(self):
        assert "sharded" in available_backends()
        assert isinstance(resolve_backend("sharded"), ShardedRRAMBackend)

    def test_unknown_backend_name_lists_registered(self):
        with pytest.raises(ValueError, match="sharded"):
            resolve_backend("does-not-exist")

    def test_duplicate_registration_raises(self):
        with pytest.raises(ValueError, match="already registered"):
            register_backend("sharded", ShardedRRAMBackend)

    def test_duplicate_registration_with_overwrite_wins(self):
        from repro.runtime.backends import _BACKENDS
        original = _BACKENDS["sharded"]
        try:
            register_backend("sharded",
                             lambda: ShardedRRAMBackend(
                                 macro=MacroGeometry(16, 16)),
                             overwrite=True)
            assert resolve_backend("sharded").macro == MacroGeometry(16, 16)
        finally:
            register_backend("sharded", original, overwrite=True)

    def test_backend_agreement_across_all_substrates(self, demo_models):
        """reference / packed / ideal rram / ideal sharded agree 100% on
        the small EEG model."""
        model, inputs = demo_models[("eeg", "binary_classifier")]
        backends = ["reference", "packed",
                    RRAMBackend(AcceleratorConfig(ideal=True)),
                    ShardedRRAMBackend(AcceleratorConfig(ideal=True),
                                       macro=MacroGeometry(7, 13))]
        _, agreement = backend_agreement(model, inputs, backends)
        assert set(agreement) == {"reference", "packed", "rram", "sharded"}
        assert all(value == 1.0 for value in agreement.values())
