"""Plan artifacts: save/load semantics, backend rebinding, registry rules.

Companion to the golden-artifact suite: these tests pin down the *API*
contracts — external front-ends degrade loudly, legacy files convert,
version checks fail forward, the registry refuses silent shadowing, and
``begin_plan`` isolates consecutive compiles on one backend instance.
"""

import json

import numpy as np
import pytest

from repro.io import (convert_folded_artifact, load_compiled, load_plan,
                      save_folded_classifier, save_plan)
from repro.io.common import write_npz
from repro.models import golden_classifier
from repro.rram import (AcceleratorConfig, MacroGeometry,
                        classifier_input_bits, fold_classifier)
from repro.runtime import (PlanSerializationError, ReferenceBackend,
                           RRAMBackend, ShardedRRAMBackend, compile,
                           plan_from_folded, register_backend,
                           resolve_backend)
from repro.runtime.backends import _BACKENDS


@pytest.fixture(scope="module")
def eeg_demo():
    return golden_classifier("eeg")


@pytest.fixture(scope="module")
def binary_classifier_demo():
    """A classifier-only (non-lowered) model: its front-end is the float
    feature stack, i.e. external to any artifact."""
    from repro.models import demo_model_and_inputs
    model, inputs = demo_model_and_inputs("ecg", "binary_classifier")
    return model, inputs[:8]


class TestSaveSemantics:
    def test_refuses_to_clobber_unless_overwrite(self, eeg_demo, tmp_path):
        model, _ = eeg_demo
        plan = compile(model, backend="reference")
        path = tmp_path / "plan.npz"
        plan.save(path)
        with pytest.raises(FileExistsError, match="overwrite=True"):
            plan.save(path)
        plan.save(path, overwrite=True)        # second branch: replaces

    def test_save_appends_npz_suffix(self, eeg_demo, tmp_path):
        model, _ = eeg_demo
        plan = compile(model, backend="reference")
        written = save_plan(plan, tmp_path / "plan")
        assert written.name == "plan.npz"
        # The overwrite guard must see through the implicit suffix too.
        with pytest.raises(FileExistsError):
            save_plan(plan, tmp_path / "plan")

    def test_external_front_end_refused_by_default(
            self, binary_classifier_demo, tmp_path):
        model, _ = binary_classifier_demo
        plan = compile(model, backend="reference")
        with pytest.raises(PlanSerializationError, match="front-end"):
            save_plan(plan, tmp_path / "plan.npz")

    def test_external_front_end_roundtrip_with_closure(
            self, binary_classifier_demo, tmp_path):
        model, inputs = binary_classifier_demo
        plan = compile(model, backend="reference")
        path = save_plan(plan, tmp_path / "plan.npz",
                         allow_external_front_end=True)
        artifact = load_plan(path)
        assert not artifact.self_contained
        with pytest.raises(PlanSerializationError, match="front_end"):
            load_compiled(artifact, backend="packed")
        loaded = load_compiled(
            artifact, backend="packed",
            front_end=lambda x: classifier_input_bits(model, x))
        assert np.array_equal(loaded.predict(inputs), plan.predict(inputs))

    def test_method_and_function_write_identical_payloads(self, eeg_demo,
                                                          tmp_path):
        model, _ = eeg_demo
        plan = compile(model, backend="reference")
        a = load_plan(plan.save(tmp_path / "a.npz"))
        b = load_plan(save_plan(plan, tmp_path / "b.npz"))
        assert a.ops == b.ops
        assert all(np.array_equal(a.arrays[k], b.arrays[k])
                   for k in a.arrays)


class TestLoadValidation:
    def test_wrong_kind_rejected(self, tmp_path):
        path = write_npz(tmp_path / "model.npz", {"w": np.zeros(3)},
                         {"kind": "model"})
        with pytest.raises(ValueError, match="not a compiled plan"):
            load_plan(path)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_plan(tmp_path / "nope.npz")

    def test_newer_format_version_fails_forward(self, eeg_demo, tmp_path):
        model, _ = eeg_demo
        path = save_plan(compile(model, backend="reference"),
                         tmp_path / "plan.npz")
        arrays, meta = _raw(path)
        meta["format_version"] = 99
        path2 = write_npz(tmp_path / "future.npz", arrays, meta)
        with pytest.raises(ValueError, match="v99"):
            load_plan(path2)

    def test_malformed_version_rejected(self, eeg_demo, tmp_path):
        model, _ = eeg_demo
        path = save_plan(compile(model, backend="reference"),
                         tmp_path / "plan.npz")
        arrays, meta = _raw(path)
        meta["format_version"] = "one"
        path2 = write_npz(tmp_path / "bad.npz", arrays, meta)
        with pytest.raises(ValueError, match="malformed"):
            load_plan(path2)

    def test_unknown_spec_kind_fails_forward(self, eeg_demo, tmp_path):
        model, _ = eeg_demo
        path = save_plan(compile(model, backend="reference"),
                         tmp_path / "plan.npz")
        arrays, meta = _raw(path)
        meta["ops"][0]["op"] = "hologram_front"
        path2 = write_npz(tmp_path / "odd.npz", arrays, meta)
        with pytest.raises(PlanSerializationError, match="newer repro"):
            load_compiled(path2, backend="reference")


class TestLegacyConversion:
    @pytest.fixture
    def legacy(self, eeg_demo, tmp_path):
        model, inputs = eeg_demo
        hidden, output = fold_classifier(model)
        path = tmp_path / "program.npz"
        save_folded_classifier(hidden, output, path)
        bits = np.random.default_rng(0).integers(
            0, 2, (7, hidden[0].in_features)).astype(np.uint8)
        return path, hidden, output, bits

    def test_load_plan_converts_transparently(self, legacy):
        path, hidden, output, bits = legacy
        artifact = load_plan(path)
        assert artifact.self_contained
        assert artifact.meta["converted_from"] == "folded_classifier"
        loaded = load_compiled(artifact, backend="packed")
        fresh = plan_from_folded(hidden, output, "packed")
        assert np.array_equal(loaded.scores(bits), fresh.scores(bits))

    def test_convert_writes_plan_file(self, legacy):
        path, hidden, output, bits = legacy
        upgraded = convert_folded_artifact(path)
        assert upgraded.name == "program.plan.npz"
        artifact = load_plan(upgraded)
        assert artifact.meta["kind"] == "compiled_plan"
        loaded = load_compiled(
            artifact, backend=RRAMBackend(AcceleratorConfig(ideal=True)))
        fresh = plan_from_folded(hidden, output, "reference")
        assert np.array_equal(loaded.predict(bits), fresh.predict(bits))

    def test_convert_respects_overwrite_guard(self, legacy):
        path, *_ = legacy
        convert_folded_artifact(path)
        with pytest.raises(FileExistsError):
            convert_folded_artifact(path)
        convert_folded_artifact(path, overwrite=True)

    def test_bits_front_end_validates_width(self, legacy):
        path, hidden, *_ = legacy
        loaded = load_compiled(path, backend="reference")
        with pytest.raises(ValueError, match="activation bits"):
            loaded.predict(np.zeros((3, hidden[0].in_features + 1),
                                    dtype=np.uint8))


class TestBackendRegistryRules:
    def test_duplicate_registration_refused(self):
        with pytest.raises(ValueError, match="overwrite=True"):
            register_backend("reference", ReferenceBackend)

    def test_overwrite_replaces_and_restores(self):
        class Patched(ReferenceBackend):
            name = "reference"

        original = _BACKENDS["reference"]
        try:
            register_backend("reference", Patched, overwrite=True)
            assert isinstance(resolve_backend("reference"), Patched)
        finally:
            register_backend("reference", original, overwrite=True)
        assert _BACKENDS["reference"] is original

    def test_overwrite_flag_for_plugin_names(self):
        register_backend("plugin-under-test", ReferenceBackend)
        try:
            with pytest.raises(ValueError):
                register_backend("plugin-under-test", ReferenceBackend)
            register_backend("plugin-under-test", ReferenceBackend,
                             overwrite=True)
        finally:
            _BACKENDS.pop("plugin-under-test", None)


class TestBeginPlanIsolation:
    def test_two_compiles_on_one_sharded_instance_do_not_merge(self):
        """One backend instance, two models back-to-back: the second
        plan's floorplan must hold only its own layers."""
        backend = ShardedRRAMBackend(AcceleratorConfig(ideal=True),
                                     macro=MacroGeometry(16, 16))
        eeg_model, _ = golden_classifier("eeg")
        ecg_model, _ = golden_classifier("ecg")
        first = compile(eeg_model, backend=backend, lower_features=True)
        n_first = len(first.placements)
        assert n_first == 3                 # conv2d + fc1 + output
        second = compile(ecg_model, backend=backend, lower_features=True)
        assert len(second.placements) == 6  # 4 conv stages + fc1 + output
        # The backend's floorplan is rebuilt from scratch, not merged:
        # exactly the second plan's layers, not first + second.
        assert [p.name for p in backend.placements] == \
            [p.name for p in second.placements]
        assert len(backend.floorplan().placements) == 6

    def test_loaded_plans_also_reset_backend_state(self, tmp_path):
        backend = ShardedRRAMBackend(AcceleratorConfig(ideal=True))
        eeg_model, inputs = golden_classifier("eeg")
        path = save_plan(compile(eeg_model, backend="reference",
                                 lower_features=True),
                         tmp_path / "eeg.npz")
        first = load_compiled(path, backend=backend)
        second = load_compiled(path, backend=backend)
        assert len(second.placements) == len(first.placements)
        assert np.array_equal(second.scores(inputs), first.scores(inputs))

    def test_loaded_plans_hit_the_stacked_fast_path(self, tmp_path):
        """Regression: artifacts rebind through ``prepare_*``, so a
        reloaded noise-free sharded plan must build stacked plans — not
        silently fall back to the per-shard dispatch loop."""
        eeg_model, inputs = golden_classifier("eeg")
        path = save_plan(compile(eeg_model, backend="reference",
                                 lower_features=True),
                         tmp_path / "eeg.npz")
        backend = ShardedRRAMBackend(AcceleratorConfig(ideal=True),
                                     macro=MacroGeometry(7, 13))
        loaded = load_compiled(path, backend=backend)
        controllers = [op.executor.controller for op in loaded.layer_ops]
        assert controllers and all(c.stacked for c in controllers)
        assert all(c.fast_path_kind == "stacked" for c in controllers)
        assert "stacked fast path" in loaded.summary()
        reference = load_compiled(
            path, backend=ShardedRRAMBackend(AcceleratorConfig(ideal=True),
                                             macro=MacroGeometry(7, 13),
                                             stacked=False))
        assert "per-shard fast path" in reference.summary()
        assert np.array_equal(loaded.scores(inputs),
                              reference.scores(inputs))


def _raw(path):
    """Read an artifact's raw arrays + meta for tamper tests."""
    from repro.io.common import read_npz
    arrays, meta = read_npz(path)
    return arrays, json.loads(json.dumps(meta))
