"""The three paper architectures: geometry against Tables I/II/IV, mode
behaviour, and trainability."""

import numpy as np
import pytest

from repro import nn
from repro.models import (BinarizationMode, ECGNet, EEGNet, MobileNetConfig,
                          MobileNetV1)
from repro.tensor import Tensor


class TestEEGNetGeometry:
    def test_table1_shapes_at_paper_scale(self, rng):
        model = EEGNet(rng=rng)
        rows = model.layer_summaries()
        shapes = [r.output_shape for r in rows]
        assert shapes[0] == (961, 64, 40)     # Conv time
        assert shapes[1] == (961, 1, 40)      # Conv space
        assert shapes[2] == (63, 1, 40)       # Avg pool
        assert shapes[3] == (2520,)           # Flatten
        assert shapes[4] == (80,)             # FC
        assert shapes[5] == (2,)              # Softmax

    def test_table4_parameter_counts(self, rng):
        model = EEGNet(rng=rng)
        feat = model.feature_parameters()
        cls = model.classifier_parameters()
        # Paper: 0.31M total, 0.2M classifier, 0.11M conv.
        assert abs(feat - 0.104e6) < 0.01e6
        assert abs(cls - 0.202e6) < 0.01e6
        assert abs((feat + cls) - 0.31e6) < 0.01e6

    def test_forward_shape_paper_scale(self, rng):
        model = EEGNet(n_samples=960, rng=rng)
        out = model(Tensor(rng.standard_normal((1, 64, 960))))
        assert out.shape == (1, 2)

    def test_filter_multiplier_scales_convs(self, rng):
        m1 = EEGNet(rng=rng)
        m2 = EEGNet(filter_multiplier=2, rng=rng)
        assert m2.filters == 2 * m1.filters
        assert m2.flat_features == 2 * m1.flat_features

    def test_rejects_2d_input(self, rng):
        model = EEGNet(n_samples=80, rng=rng)
        with pytest.raises(ValueError):
            model(Tensor(rng.standard_normal((4, 80))))


class TestEEGNetModes:
    @pytest.mark.parametrize("mode", list(BinarizationMode))
    def test_forward_runs_in_all_modes(self, rng, mode):
        model = EEGNet(mode=mode, n_samples=120, base_filters=4, rng=rng)
        out = model(Tensor(rng.standard_normal((2, 64, 120))))
        assert out.shape == (2, 2)

    def test_full_binary_uses_binary_convs(self, rng):
        model = EEGNet(mode=BinarizationMode.FULL_BINARY, n_samples=120,
                       base_filters=4, rng=rng)
        assert isinstance(model.conv_time, nn.BinaryConv2d)
        assert isinstance(model.fc1, nn.BinaryLinear)

    def test_binary_classifier_keeps_real_convs(self, rng):
        model = EEGNet(mode=BinarizationMode.BINARY_CLASSIFIER,
                       n_samples=120, base_filters=4, rng=rng)
        assert isinstance(model.conv_time, nn.Conv2d)
        assert isinstance(model.fc1, nn.BinaryLinear)

    def test_real_mode_all_real(self, rng):
        model = EEGNet(mode=BinarizationMode.REAL, n_samples=120,
                       base_filters=4, rng=rng)
        assert isinstance(model.fc1, nn.Linear)


class TestECGNetGeometry:
    def test_table2_shapes_at_paper_scale(self, rng):
        model = ECGNet(rng=rng)
        rows = model.layer_summaries()
        shapes = [r.output_shape for r in rows]
        assert shapes[0] == (738, 1, 32)
        assert shapes[1] == (369, 1, 32)
        assert shapes[2] == (359, 1, 32)
        assert shapes[3] == (179, 1, 32)
        assert shapes[4] == (171, 1, 32)
        assert shapes[5] == (165, 1, 32)
        assert shapes[6] == (161, 1, 32)
        assert shapes[7] == (5152,)
        assert shapes[8] == (75,)
        assert shapes[9] == (2,)

    def test_forward_shape_paper_scale(self, rng):
        model = ECGNet(rng=rng)
        model.fit_input_norm(rng.standard_normal((4, 12, 750)))
        out = model(Tensor(rng.standard_normal((2, 12, 750))))
        assert out.shape == (2, 2)

    def test_flat_features_match_table(self, rng):
        assert ECGNet(rng=rng).flat_features == 5152

    def test_conv_parameter_count(self, rng):
        # 5024 + 11296 + 9248 + 7200 + 5152 = 37920 conv parameters.
        assert ECGNet(rng=rng).feature_parameters() == 37920

    @pytest.mark.parametrize("mode", list(BinarizationMode))
    def test_forward_runs_in_all_modes(self, rng, mode):
        model = ECGNet(mode=mode, n_samples=200, base_filters=4, rng=rng)
        model.fit_input_norm(rng.standard_normal((6, 12, 200)))
        out = model(Tensor(rng.standard_normal((3, 12, 200))))
        assert out.shape == (3, 2)

    def test_rejects_2d_input(self, rng):
        model = ECGNet(n_samples=200, rng=rng)
        with pytest.raises(ValueError):
            model(Tensor(rng.standard_normal((4, 200))))


class TestMobileNet:
    def test_paper_scale_parameter_counts(self, rng):
        model = MobileNetV1(MobileNetConfig.paper(),
                            mode=BinarizationMode.REAL, rng=rng)
        feat = model.feature_parameters()
        cls = model.classifier_parameters()
        # Paper: 4.2M total, 3.2M conv, 1M classifier.
        assert abs(feat - 3.2e6) < 0.15e6
        assert abs(cls - 1.0e6) < 0.05e6
        assert abs((feat + cls) - 4.2e6) < 0.15e6

    def test_binary_classifier_is_5_7m_bits(self, rng):
        model = MobileNetV1(MobileNetConfig.paper(),
                            mode=BinarizationMode.BINARY_CLASSIFIER, rng=rng)
        # Paper: two binarized layers totalling 5.7M binary parameters.
        assert abs(model.classifier_parameters() - 5.7e6) < 0.05e6

    def test_reduced_forward(self, rng):
        cfg = MobileNetConfig.reduced(n_classes=5, image_size=16,
                                      width_multiplier=0.25, n_blocks=3)
        model = MobileNetV1(cfg, rng=rng)
        out = model(Tensor(rng.standard_normal((2, 3, 16, 16))))
        assert out.shape == (2, 5)

    @pytest.mark.parametrize("mode", list(BinarizationMode))
    def test_all_modes_forward(self, rng, mode):
        cfg = MobileNetConfig.reduced(n_classes=4, image_size=16,
                                      width_multiplier=0.25, n_blocks=2)
        model = MobileNetV1(cfg, mode=mode, rng=rng)
        out = model(Tensor(rng.standard_normal((2, 3, 16, 16))))
        assert out.shape == (2, 4)

    def test_real_mode_single_fc(self, rng):
        cfg = MobileNetConfig.reduced(n_classes=4, image_size=16, n_blocks=2)
        model = MobileNetV1(cfg, mode=BinarizationMode.REAL, rng=rng)
        assert model.fc2 is None
        assert isinstance(model.fc1, nn.Linear)

    def test_rejects_3d_input(self, rng):
        cfg = MobileNetConfig.reduced(n_classes=4, image_size=16, n_blocks=2)
        model = MobileNetV1(cfg, rng=rng)
        with pytest.raises(ValueError):
            model(Tensor(rng.standard_normal((2, 16, 16))))

    def test_width_multiplier_channels(self):
        cfg = MobileNetConfig(width_multiplier=0.5)
        assert cfg.channel(64) == 32
        assert cfg.channel(10) == 8   # floor of 8 channels


class TestTrainability:
    """Each model must actually learn a separable toy problem."""

    def test_ecg_net_learns(self, rng):
        from repro.data import ECGConfig, make_ecg_dataset
        from repro.experiments import TrainConfig, train_model
        ds = make_ecg_dataset(ECGConfig(n_trials=60, n_samples=200,
                                        noise_amplitude=0.05, seed=11))
        model = ECGNet(mode=BinarizationMode.REAL, n_samples=200,
                       base_filters=4, conv_keep_prob=1.0,
                       classifier_keep_prob=1.0, rng=rng)
        model.fit_input_norm(ds.inputs)
        result = train_model(model, ds.inputs, ds.labels,
                             TrainConfig(epochs=10, batch_size=16, lr=2e-3,
                                         seed=1))
        assert result.final_accuracy > 0.8   # train accuracy

    def test_eeg_net_learns(self, rng):
        from repro.data import EEGConfig, make_eeg_dataset
        from repro.experiments import TrainConfig, train_model
        ds = make_eeg_dataset(EEGConfig(n_trials=40, n_samples=160,
                                        noise_amplitude=0.4, seed=11))
        model = EEGNet(mode=BinarizationMode.REAL, n_samples=160,
                       base_filters=4, rng=rng)
        result = train_model(model, ds.inputs, ds.labels,
                             TrainConfig(epochs=10, batch_size=8, lr=2e-3,
                                         seed=1))
        assert result.final_accuracy > 0.8
