"""End-to-end integration: train a binarized model, fold its batch-norms,
deploy the classifier to (ideal and realistic) RRAM hardware, and verify the
whole chain — the software/hardware equivalence that makes Eq. (3) the
paper's deployment contract."""

import numpy as np
import pytest

from repro import nn
from repro.data import ECGConfig, EEGConfig, make_ecg_dataset, make_eeg_dataset
from repro.experiments import TrainConfig, train_model
from repro.models import BinarizationMode, ECGNet, EEGNet
from repro.rram import (AcceleratorConfig, classifier_input_bits,
                        corrupt_folded, deploy_classifier, fold_classifier,
                        InMemoryClassifier, InMemoryDenseLayer,
                        InMemoryOutputLayer)
from repro.tensor import Tensor, no_grad


@pytest.fixture(scope="module")
def trained_ecg():
    """One trained binarized-classifier ECG model shared by the tests."""
    ds = make_ecg_dataset(ECGConfig(n_trials=80, n_samples=200,
                                    noise_amplitude=0.05, seed=21))
    model = ECGNet(mode=BinarizationMode.BINARY_CLASSIFIER, n_samples=200,
                   base_filters=4, conv_keep_prob=1.0,
                   classifier_keep_prob=1.0,
                   rng=np.random.default_rng(5))
    model.fit_input_norm(ds.inputs)
    train_model(model, ds.inputs, ds.labels,
                TrainConfig(epochs=8, batch_size=16, lr=2e-3, seed=3))
    model.eval()
    return model, ds


class TestFoldedEquivalence:
    def test_folded_software_matches_model(self, trained_ecg):
        model, ds = trained_ecg
        with no_grad():
            sw = model(Tensor(ds.inputs)).data.argmax(1)
        hidden, output = fold_classifier(model)
        bits = classifier_input_bits(model, ds.inputs)
        h = bits
        for layer in hidden:
            h = layer.forward_bits(h)
        assert np.array_equal(output.predict(h), sw)

    def test_ideal_hardware_is_bit_exact(self, trained_ecg):
        model, ds = trained_ecg
        with no_grad():
            sw = model(Tensor(ds.inputs)).data.argmax(1)
        hw = deploy_classifier(model, AcceleratorConfig(ideal=True))
        bits = classifier_input_bits(model, ds.inputs)
        assert np.array_equal(hw.predict(bits), sw)

    def test_realistic_fresh_hardware_high_agreement(self, trained_ecg):
        model, ds = trained_ecg
        with no_grad():
            sw = model(Tensor(ds.inputs)).data.argmax(1)
        hw = deploy_classifier(model, AcceleratorConfig())
        bits = classifier_input_bits(model, ds.inputs)
        agreement = (hw.predict(bits) == sw).mean()
        assert agreement > 0.9

    def test_deploy_rejects_real_classifier(self, rng):
        model = ECGNet(mode=BinarizationMode.REAL, n_samples=200,
                       base_filters=4, rng=rng)
        with pytest.raises(ValueError):
            deploy_classifier(model)

    def test_accelerator_op_accounting(self, trained_ecg):
        model, ds = trained_ecg
        hw = deploy_classifier(model, AcceleratorConfig(ideal=True))
        bits = classifier_input_bits(model, ds.inputs[:4])
        hw.predict(bits)
        # fc1: in 4*41=164 -> 6 col tiles of 32; 75 rows -> 3 row tiles.
        assert hw.sense_ops > 0
        assert hw.popcount_bit_ops > 0
        assert hw.n_devices == sum(
            c.n_devices for c in hw.controllers)


class TestFaultInjectionOnDeployedModel:
    def test_accuracy_degrades_gracefully_then_collapses(self, trained_ecg):
        model, ds = trained_ecg
        hidden, output = fold_classifier(model)
        bits = classifier_input_bits(model, ds.inputs)
        rng = np.random.default_rng(11)

        def accuracy_at(ber):
            accs = []
            for trial in range(3):
                h = corrupt_folded(hidden[0], ber, rng)
                o = corrupt_folded(output, ber, rng)
                pred = o.predict(h.forward_bits(bits))
                accs.append((pred == ds.labels).mean())
            return np.mean(accs)

        clean = accuracy_at(0.0)
        mild = accuracy_at(1e-3)     # post-2T2R residual regime
        broken = accuracy_at(0.5)    # weights fully randomized
        assert clean > 0.8
        assert mild > clean - 0.1    # BNN robustness claim (§II-B)
        assert broken < clean - 0.2  # sanity: errors do eventually matter


class TestEEGDeployment:
    def test_eeg_binary_classifier_deploys(self, rng):
        ds = make_eeg_dataset(EEGConfig(n_trials=30, n_samples=120, seed=4))
        model = EEGNet(mode=BinarizationMode.BINARY_CLASSIFIER,
                       n_samples=120, base_filters=4, rng=rng)
        train_model(model, ds.inputs, ds.labels,
                    TrainConfig(epochs=3, batch_size=8, seed=2))
        model.eval()
        with no_grad():
            sw = model(Tensor(ds.inputs)).data.argmax(1)
        hw = deploy_classifier(model, AcceleratorConfig(ideal=True))
        bits = classifier_input_bits(model, ds.inputs)
        assert np.array_equal(hw.predict(bits), sw)


class TestStatePersistence:
    def test_save_load_preserves_hardware_deployment(self, trained_ecg,
                                                     tmp_path):
        model, ds = trained_ecg
        state = model.state_dict()
        path = tmp_path / "ecg.npz"
        np.savez(path, **state)
        loaded_state = {k: v for k, v in np.load(path).items()}

        clone = ECGNet(mode=BinarizationMode.BINARY_CLASSIFIER,
                       n_samples=200, base_filters=4, conv_keep_prob=1.0,
                       classifier_keep_prob=1.0,
                       rng=np.random.default_rng(99))
        clone.load_state_dict(loaded_state)
        clone.eval()
        hw_a = deploy_classifier(model, AcceleratorConfig(ideal=True))
        hw_b = deploy_classifier(clone, AcceleratorConfig(ideal=True))
        bits = classifier_input_bits(model, ds.inputs)
        assert np.array_equal(hw_a.predict(bits), hw_b.predict(bits))
