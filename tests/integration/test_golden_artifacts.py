"""Golden-artifact regression tests: the deployment format, pinned.

The fixtures under ``tests/fixtures/plans/`` are plan artifacts of the
:func:`repro.models.golden_classifier` demo models, committed to the
repository.  Reloading them on every registered backend and comparing
bit-for-bit against freshly compiled plans catches two drift classes:

* **format drift** — a change to the artifact layout, spec kinds or
  array naming silently breaking old files (a fresh save must also match
  the committed arrays exactly);
* **kernel drift** — a change to any backend's packed/simulated kernels
  producing different scores from the same weight words.

If a format change is intentional, bump ``FORMAT_VERSION`` and rerun
``tests/fixtures/plans/make_fixtures.py`` (see its docstring).
"""

import pathlib

import numpy as np
import pytest

from repro.experiments import artifact_agreement, evaluate_compiled
from repro.io import load_compiled, load_plan, save_plan
from repro.models import GOLDEN_NAMES, golden_classifier
from repro.rram import AcceleratorConfig, MacroGeometry
from repro.runtime import (FORMAT_VERSION, RRAMBackend, ShardedRRAMBackend,
                           compile)

FIXTURES = pathlib.Path(__file__).parents[1] / "fixtures" / "plans"


def _all_backends():
    return (("reference", "reference"),
            ("packed", "packed"),
            ("rram", RRAMBackend(AcceleratorConfig(ideal=True))),
            ("sharded", ShardedRRAMBackend(AcceleratorConfig(ideal=True))))


def _fixture(name: str) -> pathlib.Path:
    return FIXTURES / f"{name}_full_binary.npz"


class TestGoldenArtifacts:
    @pytest.mark.parametrize("name", GOLDEN_NAMES)
    def test_fixture_is_committed(self, name):
        assert _fixture(name).exists(), (
            f"missing golden artifact {name}; regenerate with "
            "tests/fixtures/plans/make_fixtures.py")

    @pytest.mark.parametrize("name", GOLDEN_NAMES)
    def test_fixture_format_version_is_current(self, name):
        artifact = load_plan(_fixture(name))
        assert artifact.format_version == FORMAT_VERSION
        assert artifact.self_contained

    @pytest.mark.parametrize("name", GOLDEN_NAMES)
    def test_reload_matches_fresh_compile_on_every_backend(self, name):
        """The acceptance contract: a committed artifact, loaded without
        the model, scores bit-identically to a fresh compile on all four
        registered backends."""
        model, inputs = golden_classifier(name)
        artifact = load_plan(_fixture(name))
        for label, backend in _all_backends():
            fresh = compile(model, backend=backend, lower_features=True)
            # A fresh instance for the loaded plan: backends prepared a
            # plan already and must not leak state into the reload.
            reload_backend = backend if isinstance(backend, str) else \
                type(backend)(AcceleratorConfig(ideal=True))
            loaded = load_compiled(artifact, backend=reload_backend)
            assert np.array_equal(loaded.scores(inputs),
                                  fresh.scores(inputs)), label
            assert np.array_equal(loaded.predict(inputs),
                                  fresh.predict(inputs)), label

    @pytest.mark.parametrize("name", GOLDEN_NAMES)
    def test_fresh_save_matches_committed_arrays(self, name, tmp_path):
        """Format drift check: saving the same golden model today must
        produce exactly the committed payload, array for array."""
        model, _ = golden_classifier(name)
        plan = compile(model, backend="reference", lower_features=True)
        fresh_path = save_plan(plan, tmp_path / "fresh.npz")
        fresh = load_plan(fresh_path)
        committed = load_plan(_fixture(name))
        assert fresh.ops == committed.ops
        assert sorted(fresh.arrays) == sorted(committed.arrays)
        for key in committed.arrays:
            assert np.array_equal(fresh.arrays[key],
                                  committed.arrays[key]), key
            assert fresh.arrays[key].dtype == committed.arrays[key].dtype

    @pytest.mark.parametrize("name", GOLDEN_NAMES)
    def test_artifact_agreement_all_backends(self, name):
        model, inputs = golden_classifier(name)
        backends = [backend for _, backend in _all_backends()]
        predictions, agreement = artifact_agreement(
            _fixture(name), inputs, backends=backends)
        assert set(predictions) == {"reference", "packed", "rram",
                                    "sharded"}
        assert agreement == {key: 1.0 for key in predictions}

    @pytest.mark.parametrize("name", GOLDEN_NAMES)
    def test_evaluate_compiled_runs_from_the_file(self, name):
        """The experiments layer consumes loaded plans like compiled
        ones: accuracy from the file equals accuracy from the model."""
        model, inputs = golden_classifier(name)
        labels = compile(model, backend="reference",
                         lower_features=True).predict(inputs)
        loaded = load_compiled(_fixture(name), backend="packed")
        assert evaluate_compiled(loaded, inputs, labels) == 1.0

    @pytest.mark.parametrize("name", GOLDEN_NAMES)
    def test_sharded_reload_at_tail_forcing_geometry(self, name):
        """Reloading on a 7x13 macro grid (tail shards everywhere) stays
        bit-identical to the reference reload."""
        _, inputs = golden_classifier(name)
        artifact = load_plan(_fixture(name))
        reference = load_compiled(artifact, backend="reference")
        sharded = load_compiled(
            artifact,
            backend=ShardedRRAMBackend(AcceleratorConfig(ideal=True),
                                       macro=MacroGeometry(7, 13)))
        assert np.array_equal(sharded.scores(inputs),
                              reference.scores(inputs))
