"""Integration tests tying the newer subsystems to the original pipeline.

Each test exercises a chain the individual unit tests cannot: trained model
-> folding -> packed kernel / analog crossbar / integer kernel / floorplan,
with the deployed artefact checked against the software stack.
"""

import numpy as np
import pytest

from repro.data import ECGConfig, make_ecg_dataset
from repro.experiments import (TrainConfig, evaluate_accuracy,
                               evaluate_report, train_model)
from repro.metrics import accuracy as metric_accuracy
from repro.models import BinarizationMode, ECGNet
from repro.nn import PackedBinaryDense, pack_bits
from repro.rram import (AcceleratorConfig, AnalogConfig, AnalogLinear,
                        MacroGeometry, classifier_input_bits,
                        deploy_classifier, fold_classifier, plan_classifier)
from repro.tensor import Tensor


@pytest.fixture(scope="module")
def trained_binary_ecg():
    """One binarized-classifier ECG model trained once for the module."""
    dataset = make_ecg_dataset(ECGConfig(n_trials=240, n_samples=300,
                                         noise_amplitude=0.05, seed=31))
    n_train = 180
    model = ECGNet(mode=BinarizationMode.BINARY_CLASSIFIER, n_samples=300,
                   base_filters=8, rng=np.random.default_rng(32))
    model.fit_input_norm(dataset.inputs[:n_train])
    train_model(model, dataset.inputs[:n_train], dataset.labels[:n_train],
                TrainConfig(epochs=30, batch_size=16, lr=2e-3, seed=33))
    model.eval()
    return model, dataset.inputs[n_train:], dataset.labels[n_train:]


@pytest.fixture(scope="module")
def trained_real_ecg():
    dataset = make_ecg_dataset(ECGConfig(n_trials=240, n_samples=300,
                                         noise_amplitude=0.05, seed=41))
    n_train = 180
    model = ECGNet(mode=BinarizationMode.REAL, n_samples=300,
                   base_filters=8, rng=np.random.default_rng(42))
    model.fit_input_norm(dataset.inputs[:n_train])
    train_model(model, dataset.inputs[:n_train], dataset.labels[:n_train],
                TrainConfig(epochs=30, batch_size=16, lr=2e-3, seed=43))
    model.eval()
    return model, dataset.inputs[n_train:], dataset.labels[n_train:]


class TestPackedKernelDeployment:
    def test_packed_hidden_layer_matches_accelerator(self,
                                                     trained_binary_ecg):
        """Packed software kernel == ideal in-memory hardware, per layer."""
        model, test_x, _ = trained_binary_ecg
        hidden, _ = fold_classifier(model)
        hardware = deploy_classifier(model, AcceleratorConfig(ideal=True))
        bits = classifier_input_bits(model, test_x)

        packed = PackedBinaryDense(hidden[0])
        hw_out = hardware.hidden[0].forward_bits(bits)
        assert np.array_equal(packed.forward_bits(bits), hw_out)

    def test_packed_pipeline_end_to_end_predictions(self,
                                                    trained_binary_ecg):
        """Chaining packed layers + output layer reproduces the hardware
        classifier's predictions exactly (ideal devices)."""
        model, test_x, test_y = trained_binary_ecg
        hidden, output = fold_classifier(model)
        hardware = deploy_classifier(model, AcceleratorConfig(ideal=True))
        bits = classifier_input_bits(model, test_x)

        words = pack_bits(bits)
        for folded in hidden:
            words = PackedBinaryDense(folded).forward_words(words)
        from repro.nn import unpack_bits
        hidden_bits = unpack_bits(words, output.in_features)
        scores = output.forward_scores(hidden_bits)
        assert np.array_equal(scores.argmax(axis=1),
                              hardware.predict(bits))


class TestIntegerKernelDeployment:
    def test_int8_classifier_stage_accuracy(self, trained_real_ecg):
        """Replacing fc1 with the integer kernel keeps test accuracy."""
        from repro.nn import deploy_dense_int, quant_scale

        model, test_x, test_y = trained_real_ecg
        float_acc = evaluate_accuracy(model, test_x, test_y)

        feats = model.features(Tensor(test_x)).data.reshape(len(test_x), -1)
        deployed = deploy_dense_int(
            model.fc1, x_scale=quant_scale(feats, 8), bits=8)
        h = deployed.forward(feats)
        h = model.bn_fc1(Tensor(h)).data
        h = np.clip(h, -1.0, 1.0)
        scores = h @ model.fc2.weight.data.T + model.fc2.bias.data
        int_acc = metric_accuracy(test_y, scores.argmax(axis=1))
        assert int_acc >= float_acc - 0.05


class TestAnalogDeployment:
    def test_analog_classifier_report(self, trained_real_ecg):
        """High-resolution analog deployment preserves the diagnostic
        metrics of the software model."""
        model, test_x, test_y = trained_real_ecg
        sw_report = evaluate_report(model, test_x, test_y)

        cfg = AnalogConfig(adc_bits=12, dac_bits=12,
                           programming_sigma=0.02, read_noise_sigma=0.005)
        rng = np.random.default_rng(50)
        layer1 = AnalogLinear(model.fc1, cfg, rng)
        layer2 = AnalogLinear(model.fc2, cfg, rng)
        feats = model.features(Tensor(test_x)).data.reshape(len(test_x), -1)
        h = np.clip(model.bn_fc1(Tensor(layer1.forward(feats))).data,
                    -1.0, 1.0)
        pred = layer2.forward(h).argmax(axis=1)
        hw_acc = metric_accuracy(test_y, pred)
        assert hw_acc >= sw_report.accuracy - 0.08


class TestFloorplanConsistency:
    def test_plan_covers_trained_model(self, trained_binary_ecg):
        model, _, _ = trained_binary_ecg
        shapes = [(model.fc1.out_features, model.fc1.in_features),
                  (model.fc2.out_features, model.fc2.in_features)]
        plan = plan_classifier(shapes)
        total_weights = sum(o * i for o, i in shapes)
        assert plan.n_devices >= 2 * total_weights
        assert plan.programming_cost()["device_writes"] == 2 * total_weights

    def test_macro_choice_tradeoff_holds_for_model(self, trained_binary_ecg):
        """Across macro sizes: bigger macros, fewer of them, but the
        provisioned device count never drops below the weight count."""
        model, _, _ = trained_binary_ecg
        shapes = [(model.fc1.out_features, model.fc1.in_features),
                  (model.fc2.out_features, model.fc2.in_features)]
        macro_counts = []
        for size in (16, 32, 64, 128):
            plan = plan_classifier(shapes, MacroGeometry(size, size))
            macro_counts.append(plan.n_macros)
            assert plan.n_devices >= 2 * sum(o * i for o, i in shapes)
        assert macro_counts == sorted(macro_counts, reverse=True)


class TestMetricsOnHardwarePredictions:
    def test_report_from_deployed_classifier(self, trained_binary_ecg):
        """Metrics work directly on hardware predictions, and hardware
        accuracy matches the software report (ideal devices)."""
        from repro.metrics import classification_report

        model, test_x, test_y = trained_binary_ecg
        hardware = deploy_classifier(model, AcceleratorConfig(ideal=True))
        bits = classifier_input_bits(model, test_x)
        pred = hardware.predict(bits)
        scores = hardware.forward_scores(bits)
        report = classification_report(
            test_y, pred, scores=scores[:, 1] - scores[:, 0])
        assert report.accuracy == pytest.approx(
            evaluate_accuracy(model, test_x, test_y), abs=1e-9)
        assert report.confusion.sum() == len(test_y)
