"""Tests for the command-line interface (repro.cli)."""

import json

import pytest

from repro.cli import EXPERIMENTS, main
from repro.cli import analytic
from repro.cli.main import _canonical_id, _cmd_info, _cmd_list, _cmd_run
from repro.cli.registry import ExperimentInfo


class TestRegistry:
    def test_every_paper_artefact_catalogued(self):
        for exp_id in ("FIG4", "TAB1", "TAB2", "TAB3", "TAB4", "FIG7",
                       "FIG8"):
            assert exp_id in EXPERIMENTS

    def test_ids_are_keys(self):
        for exp_id, info in EXPERIMENTS.items():
            assert info.id == exp_id

    def test_analytic_entries_have_runners(self):
        for info in EXPERIMENTS.values():
            if info.kind == "analytic":
                assert info.runner is not None
                assert callable(getattr(analytic, info.runner))
            else:
                assert info.runner is None

    def test_bench_paths_exist(self):
        import pathlib
        root = pathlib.Path(__file__).parents[2]
        for info in EXPERIMENTS.values():
            assert (root / info.bench).exists(), info.bench

    def test_kinds_are_valid(self):
        assert all(i.kind in ("analytic", "training", "script")
                   for i in EXPERIMENTS.values())

    def test_info_is_frozen(self):
        info = next(iter(EXPERIMENTS.values()))
        with pytest.raises(AttributeError):
            info.id = "HACK"

    def test_modules_importable(self):
        import importlib
        for info in EXPERIMENTS.values():
            for module in info.modules:
                importlib.import_module(module)


class TestCanonicalId:
    @pytest.mark.parametrize("raw,expected", [
        ("fig4", "FIG4"),
        ("Figure 4", "FIG4"),
        ("table1", "TAB1"),
        ("TABLE 4", "TAB4"),
        ("tab2", "TAB2"),
        ("xtra7", "XTRA7"),
    ])
    def test_aliases(self, raw, expected):
        assert _canonical_id(raw) == expected


class TestCommands:
    def test_list_mentions_every_id(self):
        text = _cmd_list()
        for exp_id in EXPERIMENTS:
            assert exp_id in text

    def test_info_known_id(self):
        text = _cmd_info("FIG4")
        assert "Fig. 4" in text
        assert "benchmarks/bench_fig4_bit_error_rate.py" in text

    def test_info_unknown_id_exits(self):
        with pytest.raises(SystemExit, match="unknown experiment"):
            _cmd_info("NOPE")

    def test_run_training_id_points_to_pytest(self):
        with pytest.raises(SystemExit, match="pytest"):
            _cmd_run("TAB3")

    def test_run_unknown_id_exits(self):
        with pytest.raises(SystemExit, match="unknown experiment"):
            _cmd_run("FIG99")

    def test_run_fig4_jobs_adds_monte_carlo_check(self):
        text = _cmd_run("FIG4", jobs=2)
        assert "Monte-Carlo spot check (2 workers" in text
        assert "ignored" not in text

    def test_run_script_id_points_to_python(self):
        with pytest.raises(SystemExit, match="python benchmarks/"):
            _cmd_run("XTRA14")

    def test_info_script_id_shows_smoke_invocation(self):
        text = _cmd_info("XTRA15")
        assert "python benchmarks/bench_rram_hotpath.py" in text
        assert "--smoke" in text

    def test_sweep_command_runs_and_resumes(self, tmp_path, capsys):
        out = tmp_path / "robustness.jsonl"
        assert main(["sweep", "robustness", "--out", str(out)]) == 0
        text = capsys.readouterr().out
        assert "points/sec" in text and "agreement" in text
        n_lines = len(out.read_text().splitlines())
        assert n_lines > 0
        # Second invocation resumes: nothing recomputed, file untouched.
        assert main(["sweep", "robustness", "--out", str(out)]) == 0
        assert "(0 computed" in capsys.readouterr().out
        assert len(out.read_text().splitlines()) == n_lines

    def test_compile_accepts_jobs(self, capsys):
        assert main(["compile", "ecg", "--backend", "reference",
                     "--jobs", "1"]) == 0
        assert "reference" in capsys.readouterr().out

    def test_compile_sharded_reports_macro_map(self, capsys):
        assert main(["compile", "eeg", "--backend", "sharded",
                     "--macros", "8x24"]) == 0
        text = capsys.readouterr().out
        assert "sharded" in text
        assert "placed on" in text and "8x24" in text
        assert "Scan pJ/macro" in text

    def test_compile_bad_macros_exits(self):
        with pytest.raises(SystemExit, match="32x32"):
            main(["compile", "eeg", "--backend", "sharded",
                  "--macros", "banana"])

    def test_compile_zero_macro_reports_value_error(self):
        # Well-formed spec, invalid value: the geometry's own message
        # surfaces, not a format complaint.
        with pytest.raises(SystemExit, match="positive"):
            main(["compile", "eeg", "--backend", "sharded",
                  "--macros", "0x32"])

    def test_compile_save_then_deploy_roundtrip(self, tmp_path, capsys):
        """The closed deploy loop: compile --save writes an artifact the
        deploy command reloads (no model) with 100% backend agreement."""
        artifact = tmp_path / "ecg_plan.npz"
        assert main(["compile", "ecg", "--mode", "full_binary",
                     "--backend", "reference",
                     "--save", str(artifact)]) == 0
        text = capsys.readouterr().out
        assert "plan artifact ->" in text and "self-contained" in text
        assert artifact.exists()

        assert main(["deploy", str(artifact), "--backend", "all"]) == 0
        text = capsys.readouterr().out
        for backend in ("reference", "packed", "rram", "sharded"):
            assert backend in text
        assert text.count("100.0%") >= 4
        assert "plan artifact v1" in text
        assert "Per-macro shard map" in text

    def test_compile_save_refuses_clobber_without_overwrite(self, tmp_path,
                                                            capsys):
        artifact = tmp_path / "plan.npz"
        assert main(["compile", "ecg", "--mode", "full_binary",
                     "--backend", "reference",
                     "--save", str(artifact)]) == 0
        capsys.readouterr()
        with pytest.raises(SystemExit, match="--overwrite"):
            main(["compile", "ecg", "--mode", "full_binary",
                  "--backend", "reference", "--save", str(artifact)])
        assert main(["compile", "ecg", "--mode", "full_binary",
                     "--backend", "reference", "--save", str(artifact),
                     "--overwrite"]) == 0

    def test_compile_save_binary_classifier_warns_external(self, tmp_path,
                                                           capsys):
        artifact = tmp_path / "plan.npz"
        assert main(["compile", "ecg", "--backend", "reference",
                     "--save", str(artifact)]) == 0
        assert "front-end stays off-artifact" in capsys.readouterr().out
        # ... and deploy refuses it with guidance instead of crashing.
        with pytest.raises(SystemExit, match="full_binary"):
            main(["deploy", str(artifact)])

    def test_deploy_missing_artifact_exits(self, tmp_path):
        with pytest.raises(SystemExit, match="compile --save"):
            main(["deploy", str(tmp_path / "nope.npz")])

    def test_deploy_single_backend_and_macros(self, tmp_path, capsys):
        artifact = tmp_path / "eeg_plan.npz"
        assert main(["compile", "eeg", "--mode", "full_binary",
                     "--backend", "reference",
                     "--save", str(artifact)]) == 0
        capsys.readouterr()
        assert main(["deploy", str(artifact), "--backend", "sharded",
                     "--macros", "8x24"]) == 0
        text = capsys.readouterr().out
        assert "sharded" in text and "8x24 macros" in text

    def test_sweep_sharded_with_cache_stats(self, tmp_path, capsys):
        out = tmp_path / "sharded.jsonl"
        assert main(["sweep", "sharded", "--cache-stats",
                     "--out", str(out)]) == 0
        text = capsys.readouterr().out
        assert "agreement by macro_cols" in text
        assert "plan cache:" in text and "misses" in text
        # Resumed run: no points recomputed, stats still reported.
        assert main(["sweep", "sharded", "--cache-stats",
                     "--out", str(out)]) == 0
        text = capsys.readouterr().out
        assert "(0 computed" in text and "plan cache:" in text


class TestSweepRegistry:
    """Sweep workloads come from the SWEEP_WORKLOADS registry, not an
    if/elif chain; the parser and summaries follow the registry."""

    def test_registry_covers_reliability_workloads(self):
        from repro.experiments.workloads import SWEEP_WORKLOADS
        assert {"ber", "robustness", "sharded", "lifetime",
                "yield"} <= set(SWEEP_WORKLOADS)
        for spec in SWEEP_WORKLOADS.values():
            assert spec.description
            assert callable(spec.fn)

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            main(["sweep", "banana"])

    def test_sweep_lifetime_resumable_jsonl(self, tmp_path, capsys):
        out = tmp_path / "lifetime.jsonl"
        assert main(["sweep", "lifetime", "--trials", "1",
                     "--out", str(out)]) == 0
        text = capsys.readouterr().out
        assert "agreement by years" in text
        assert "ecc=secded" in text
        records = [json.loads(line)
                   for line in out.read_text().splitlines()]
        assert all("agreement" in r["metrics"] for r in records)
        # Resume: nothing recomputed.
        assert main(["sweep", "lifetime", "--trials", "1",
                     "--out", str(out)]) == 0
        assert "(0 computed" in capsys.readouterr().out

    def test_sweep_yield_runs(self, tmp_path, capsys):
        out = tmp_path / "yield.jsonl"
        assert main(["sweep", "yield", "--out", str(out)]) == 0
        text = capsys.readouterr().out
        assert "chips_needed by traffic_msps" in text
        records = [json.loads(line)
                   for line in out.read_text().splitlines()]
        assert all("yield_fraction" in r["metrics"] for r in records)


class TestDeployReliabilityFlags:
    @pytest.fixture
    def artifact(self, tmp_path, capsys):
        path = tmp_path / "eeg_plan.npz"
        assert main(["compile", "eeg", "--mode", "full_binary",
                     "--backend", "reference",
                     "--save", str(path)]) == 0
        capsys.readouterr()
        return path

    def test_kill_macro_degrades_but_agrees(self, artifact, capsys):
        assert main(["deploy", str(artifact), "--backend", "sharded",
                     "--macros", "8x24", "--kill-macro", "1",
                     "--kill-macro", "5"]) == 0
        text = capsys.readouterr().out
        assert "100.0%" in text
        assert "2 dead macro(s) remapped onto spares" in text
        assert "Spare macros (degraded placements)" in text

    def test_ecc_reported(self, artifact, capsys):
        assert main(["deploy", str(artifact), "--backend", "rram",
                     "--ecc", "secded"]) == 0
        text = capsys.readouterr().out
        assert "ECC: (72,64) SECDED" in text

    def test_too_many_dead_for_spares_exits_cleanly(self, artifact):
        with pytest.raises((SystemExit, RuntimeError)):
            main(["deploy", str(artifact), "--backend", "sharded",
                  "--macros", "8x24", "--kill-macro", "0",
                  "--kill-macro", "1", "--kill-macro", "2",
                  "--spares", "1"])

    def test_bad_spares_value_exits(self, artifact):
        with pytest.raises(SystemExit, match="spares"):
            main(["deploy", str(artifact), "--backend", "sharded",
                  "--spares", "many"])


class TestAnalyticRunners:
    """Each analytic runner must execute quickly and mention its artefact."""

    @pytest.mark.parametrize("runner,keyword", [
        ("run_fig4", "Fig. 4"),
        ("run_table1", "Table I"),
        ("run_table2", "Table II"),
        ("run_table4", "Table IV"),
        ("run_energy", "in-memory"),
        ("run_retention", "Retention"),
        ("run_analog", "ADC"),
    ])
    def test_runner_output(self, runner, keyword):
        text = getattr(analytic, runner)()
        assert keyword in text
        assert len(text.splitlines()) > 3

    def test_fig4_reports_separation(self):
        assert "orders of magnitude" in analytic.run_fig4()

    def test_table1_matches_paper_totals(self):
        text = analytic.run_table1()
        assert "2520" in text          # flattened feature width
        assert "305,842" in text       # ~0.31M parameters

    def test_analog_error_decreases_down_the_table(self):
        lines = [l for l in analytic.run_analog().splitlines()
                 if l and l[0].isdigit()]
        errors = [float(l.split("|")[1]) for l in lines]
        assert errors == sorted(errors, reverse=True)


class TestMainEntry:
    def test_no_command_prints_help(self, capsys):
        assert main([]) == 1
        assert "usage" in capsys.readouterr().out

    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        assert "FIG4" in capsys.readouterr().out

    def test_info_command(self, capsys):
        assert main(["info", "TAB4"]) == 0
        assert "Table IV" in capsys.readouterr().out

    def test_run_command(self, capsys):
        assert main(["run", "TAB1"]) == 0
        assert "Table I" in capsys.readouterr().out

    def test_memory_alias(self, capsys):
        assert main(["memory"]) == 0
        assert "Table IV" in capsys.readouterr().out

    def test_energy_alias(self, capsys):
        assert main(["energy"]) == 0
        assert "in-memory" in capsys.readouterr().out

    def test_floorplan_command(self, capsys):
        assert main(["floorplan", "eeg"]) == 0
        out = capsys.readouterr().out
        assert "fc1" in out and "mm^2" in out

    def test_floorplan_custom_macro(self, capsys):
        assert main(["floorplan", "ecg", "--macro", "64x64"]) == 0
        assert "64x64" in capsys.readouterr().out

    def test_floorplan_bad_macro_exits(self):
        with pytest.raises(SystemExit, match="32x32"):
            main(["floorplan", "eeg", "--macro", "banana"])

    def test_floorplan_unknown_model_exits(self):
        with pytest.raises(SystemExit):
            main(["floorplan", "resnet"])

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert "repro" in capsys.readouterr().out


class TestDeployRepeat:
    def test_repeat_timing_footer(self, tmp_path, capsys):
        artifact = tmp_path / "eeg_plan.npz"
        assert main(["compile", "eeg", "--mode", "full_binary",
                     "--backend", "reference",
                     "--save", str(artifact)]) == 0
        capsys.readouterr()
        assert main(["deploy", str(artifact), "--backend", "packed",
                     "--repeat", "5"]) == 0
        text = capsys.readouterr().out
        assert "p50 of 5 timed repeats" in text

    def test_single_repeat_omits_footer(self, tmp_path, capsys):
        artifact = tmp_path / "eeg_plan.npz"
        assert main(["compile", "eeg", "--mode", "full_binary",
                     "--backend", "reference",
                     "--save", str(artifact)]) == 0
        capsys.readouterr()
        assert main(["deploy", str(artifact), "--backend", "packed",
                     "--repeat", "1"]) == 0
        assert "timed repeats" not in capsys.readouterr().out


class TestServeCommand:
    """The daemon CLI: guard rails in-process, the happy path as a real
    subprocess (signal handlers need the main thread)."""

    FIXTURE = __import__("pathlib").Path(__file__).parents[1] \
        / "fixtures" / "plans" / "eeg_full_binary.npz"

    def test_registry_entry(self):
        assert "XTRA19" in EXPERIMENTS
        assert EXPERIMENTS["XTRA19"].bench == "benchmarks/bench_serve.py"

    def test_missing_artifact_exits(self, tmp_path):
        with pytest.raises(SystemExit, match="compile --save"):
            main(["serve", str(tmp_path / "nope.npz")])

    def test_unknown_backend_exits(self):
        with pytest.raises(SystemExit, match="unknown backend"):
            main(["serve", str(self.FIXTURE), "--backend", "banana"])

    def test_non_self_contained_artifact_exits(self, tmp_path, capsys):
        artifact = tmp_path / "classifier_only.npz"
        assert main(["compile", "ecg", "--backend", "reference",
                     "--save", str(artifact)]) == 0
        capsys.readouterr()
        with pytest.raises(SystemExit, match="self-contained"):
            main(["serve", str(artifact)])

    def test_daemon_boot_serve_sigterm_drain(self, tmp_path):
        """Boot the real daemon, serve one request over the wire,
        SIGTERM it, and require a clean drain (exit 0 + stats report)."""
        import os
        import re
        import signal
        import subprocess
        import sys
        import time

        import numpy as np

        root = self.FIXTURE.parents[3]
        env = dict(os.environ, PYTHONPATH=str(root / "src"))
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", str(self.FIXTURE),
             "--port", "0", "--batch-window", "100"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True, env=env, cwd=str(root))
        try:
            url = None
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                line = proc.stdout.readline()
                found = re.search(r"serving .* on (http://\S+)", line)
                if found:
                    url = found.group(1)
                    break
            assert url, "daemon never announced its URL"

            from repro.io import load_compiled, load_plan
            from repro.serve import ServeClient

            artifact = load_plan(self.FIXTURE)
            plan = load_compiled(artifact, backend="packed")
            request = np.random.default_rng(0).integers(
                0, 2, (1,) + artifact.input_shape).astype(np.uint8)
            client = ServeClient(url, timeout=30.0, retries=50)
            response = client.predict(request)
            assert np.array_equal(response["scores"],
                                  plan.scores(request))
            assert client.health()["status"] == "ok"
            client.close()

            proc.send_signal(signal.SIGTERM)
            out, _ = proc.communicate(timeout=30.0)
            assert proc.returncode == 0
            assert "serve stats" in out and "draining" in out
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
