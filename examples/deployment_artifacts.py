"""The two-phase deployment flow: train once, program chips from a file.

§II-B of the paper: weights are "obtained by off-chip training" and
"programming occurs before the use of the inference circuit and is managed
by a memory controller".  In production that hand-off is a file, not a
Python object.  This example runs the full flow:

1. train the binarized-classifier ECG model (the *lab* phase);
2. write two artefacts: a training checkpoint (`.npz` state dict) and the
   hardware programming artefact (folded weight bits + integer
   thresholds — exactly what the memory controller consumes);
3. discard the training stack, reload only the programming artefact, and
   program a simulated chip from it (the *factory* phase);
4. verify the programmed chip is bit-identical to one deployed directly
   from the live model, and plan its macro floorplan.

Run:  python examples/deployment_artifacts.py
"""

import tempfile
import pathlib

import numpy as np

from repro.data import ECGConfig, make_ecg_dataset
from repro.experiments import TrainConfig, evaluate_accuracy, train_model
from repro.io import (load_folded_classifier, load_model,
                      save_folded_classifier, save_model)
from repro.models import BinarizationMode, ECGNet
from repro.rram import (AcceleratorConfig, MacroGeometry,
                        classifier_input_bits, deploy_classifier,
                        fold_classifier, plan_classifier)
from repro.rram.accelerator import (InMemoryClassifier, InMemoryDenseLayer,
                                    InMemoryOutputLayer)


def main() -> None:
    workdir = pathlib.Path(tempfile.mkdtemp(prefix="repro_deploy_"))
    checkpoint = workdir / "ecg_checkpoint.npz"
    program = workdir / "ecg_program.npz"

    print("LAB PHASE")
    print("1) Training the binarized-classifier ECG model ...")
    dataset = make_ecg_dataset(ECGConfig(n_trials=300, n_samples=300,
                                         noise_amplitude=0.05, seed=9))
    n_train = 240
    model = ECGNet(mode=BinarizationMode.BINARY_CLASSIFIER, n_samples=300,
                   base_filters=8, rng=np.random.default_rng(10))
    model.fit_input_norm(dataset.inputs[:n_train])
    train_model(model, dataset.inputs[:n_train], dataset.labels[:n_train],
                TrainConfig(epochs=40, batch_size=16, lr=2e-3, seed=11))
    model.eval()
    acc = evaluate_accuracy(model, dataset.inputs[n_train:],
                            dataset.labels[n_train:])
    print(f"   software accuracy: {acc:.1%}")

    print("2) Writing artefacts ...")
    save_model(model, checkpoint)
    hidden, output = fold_classifier(model)
    save_folded_classifier(hidden, output, program)
    print(f"   checkpoint: {checkpoint.name} "
          f"({checkpoint.stat().st_size / 1024:.0f} KB, full float state)")
    print(f"   programming artefact: {program.name} "
          f"({program.stat().st_size / 1024:.0f} KB, bits + thresholds)")

    print("\nFACTORY PHASE (no training stack needed)")
    print("3) Loading the programming artefact and programming a chip ...")
    loaded_hidden, loaded_output = load_folded_classifier(program)
    config = AcceleratorConfig(ideal=True)
    chip = InMemoryClassifier(
        [InMemoryDenseLayer(l, config) for l in loaded_hidden],
        InMemoryOutputLayer(loaded_output, config))

    print("4) Verifying against a chip deployed from the live model ...")
    reference_chip = deploy_classifier(model, config)
    bits = classifier_input_bits(model, dataset.inputs[n_train:])
    identical = bool(np.array_equal(chip.predict(bits),
                                    reference_chip.predict(bits)))
    print(f"   predictions bit-identical: {identical}")

    print("5) Floorplan of the programmed classifier:")
    shapes = [(l.out_features, l.in_features) for l in loaded_hidden]
    shapes.append(loaded_output.weight_bits.shape)
    print(plan_classifier(shapes, MacroGeometry(32, 32)).report())

    print("\n6) Round-tripping the checkpoint restores the lab model:")
    fresh = ECGNet(mode=BinarizationMode.BINARY_CLASSIFIER, n_samples=300,
                   base_filters=8, rng=np.random.default_rng(99))
    load_model(fresh, checkpoint)
    fresh.eval()
    restored_acc = evaluate_accuracy(fresh, dataset.inputs[n_train:],
                                     dataset.labels[n_train:])
    print(f"   restored accuracy: {restored_acc:.1%} "
          f"(identical: {restored_acc == acc})")


if __name__ == "__main__":
    main()
