"""The two-phase deployment flow: train once, program chips from a file.

§II-B of the paper: weights are "obtained by off-chip training" and
"programming occurs before the use of the inference circuit and is managed
by a memory controller".  In production that hand-off is a file, not a
Python object.  This example runs the full flow on the compiled-plan
artifact format:

1. train the fully binarized ECG model (the *lab* phase);
2. write two artefacts: a training checkpoint (`.npz` state dict) and the
   **plan artifact** — the whole compiled plan as weight words, integer
   thresholds and periphery specs (`repro.io.save_plan`);
3. discard the training stack, reload only the plan artifact, and rebind
   it to every registered backend — CPU verification kernels and
   simulated RRAM chips run from the same file (the *factory* phase);
4. verify the reloaded plans are bit-identical to plans compiled from the
   live model, and print the sharded floorplan the artifact programs;
5. upgrade a legacy folded-classifier artefact with
   `convert_folded_artifact` and run it from activation bits.

Run:  python examples/deployment_artifacts.py
"""

import tempfile
import pathlib

import numpy as np

from repro.data import ECGConfig, make_ecg_dataset
from repro.experiments import (TrainConfig, artifact_agreement,
                               evaluate_accuracy, evaluate_compiled,
                               train_model)
from repro.io import (convert_folded_artifact, load_compiled, load_model,
                      load_plan, save_folded_classifier, save_model,
                      save_plan)
from repro.models import BinarizationMode, ECGNet
from repro.rram import (AcceleratorConfig, MacroGeometry,
                        classifier_input_bits, fold_classifier)
from repro.runtime import RRAMBackend, ShardedRRAMBackend, compile


def main() -> None:
    workdir = pathlib.Path(tempfile.mkdtemp(prefix="repro_deploy_"))
    checkpoint = workdir / "ecg_checkpoint.npz"
    artifact = workdir / "ecg_plan.npz"

    print("LAB PHASE")
    print("1) Training the fully binarized ECG model ...")
    dataset = make_ecg_dataset(ECGConfig(n_trials=300, n_samples=300,
                                         noise_amplitude=0.05, seed=9))
    n_train = 240
    model = ECGNet(mode=BinarizationMode.FULL_BINARY, n_samples=300,
                   base_filters=8, conv_keep_prob=1.0,
                   rng=np.random.default_rng(10))
    model.fit_input_norm(dataset.inputs[:n_train])
    train_model(model, dataset.inputs[:n_train], dataset.labels[:n_train],
                TrainConfig(epochs=12, batch_size=16, lr=2e-3, seed=11))
    model.eval()
    acc = evaluate_accuracy(model, dataset.inputs[n_train:],
                            dataset.labels[n_train:])
    print(f"   software accuracy: {acc:.1%}")

    print("2) Writing artefacts ...")
    save_model(model, checkpoint)
    plan = compile(model, backend="reference", lower_features=True)
    save_plan(plan, artifact)
    print(f"   checkpoint: {checkpoint.name} "
          f"({checkpoint.stat().st_size / 1024:.0f} KB, full float state)")
    print(f"   plan artifact: {artifact.name} "
          f"({artifact.stat().st_size / 1024:.0f} KB, weight words + "
          f"thresholds + periphery specs)")

    print("\nFACTORY PHASE (no training stack needed)")
    print("3) Reloading the artifact on every substrate ...")
    loaded = load_plan(artifact)
    print("   " + loaded.describe().replace("\n", "\n   "))
    test_inputs = dataset.inputs[n_train:]
    test_labels = dataset.labels[n_train:]
    backends = ("reference", "packed",
                RRAMBackend(AcceleratorConfig(ideal=True)),
                ShardedRRAMBackend(AcceleratorConfig(ideal=True),
                                   macro=MacroGeometry(32, 32)))
    _, agreement = artifact_agreement(loaded, test_inputs,
                                      backends=backends)
    print(f"   cross-backend agreement: {agreement}")

    print("4) Verifying against plans compiled from the live model ...")
    for backend in ("reference", "packed"):
        fresh = compile(model, backend=backend, lower_features=True)
        from_file = load_compiled(loaded, backend=backend)
        identical = bool(np.array_equal(from_file.scores(test_inputs),
                                        fresh.scores(test_inputs)))
        print(f"   {backend}: scores bit-identical to fresh compile: "
              f"{identical}")
    chip_acc = evaluate_compiled(
        load_compiled(loaded,
                      backend=RRAMBackend(AcceleratorConfig(ideal=True))),
        test_inputs, test_labels)
    print(f"   accuracy from the file, on simulated RRAM: {chip_acc:.1%} "
          f"(software: {acc:.1%})")

    print("5) Floorplan programmed by the artifact (sharded backend):")
    sharded = load_compiled(
        loaded, backend=ShardedRRAMBackend(AcceleratorConfig(ideal=True)))
    print(sharded.floorplan().report())

    print("\n6) Legacy folded-classifier artefacts convert in one call:")
    legacy = workdir / "ecg_program.npz"
    hidden, output = fold_classifier(model)
    save_folded_classifier(hidden, output, legacy)
    upgraded = convert_folded_artifact(legacy)
    bits = classifier_input_bits(model, test_inputs)
    from_legacy = load_compiled(upgraded, backend="packed")
    reference = load_compiled(upgraded, backend="reference")
    print(f"   {legacy.name} -> {upgraded.name}; packed == reference on "
          f"classifier bits: "
          f"{bool(np.array_equal(from_legacy.predict(bits), reference.predict(bits)))}")

    print("\n7) Round-tripping the checkpoint restores the lab model:")
    fresh = ECGNet(mode=BinarizationMode.FULL_BINARY, n_samples=300,
                   base_filters=8, conv_keep_prob=1.0,
                   rng=np.random.default_rng(99))
    load_model(fresh, checkpoint)
    fresh.eval()
    restored_acc = evaluate_accuracy(fresh, dataset.inputs[n_train:],
                                     dataset.labels[n_train:])
    print(f"   restored accuracy: {restored_acc:.1%} "
          f"(identical: {restored_acc == acc})")


if __name__ == "__main__":
    main()
