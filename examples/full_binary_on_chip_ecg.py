"""A fully binarized ECG network executed end-to-end on the RRAM fabric.

The paper's Fig. 5 architecture targets fully connected layers and notes
that convolutional layers can be mapped with a weight-stationary
adaptation (§II-B).  This example does exactly that for a compact
all-binarized ECG detector, using the unified runtime: one
``compile(model, backend=rram, lower_features=True)`` call folds every
batch-norm, programs every conv stage and the classifier onto simulated
2T2R tiles, and returns the executable plan.

* the first convolution sees analog signals, so a *custom front-end* is
  plugged into the plan: inputs are encoded as stochastic bit streams
  (paper ref. [14]) and the analog accumulation is replaced by averaging
  XNOR-popcount results over the stream;
* every subsequent convolution and the classifier run as XNOR-popcount
  layers on the tiles; max-pooling on ±1 activations is a logical OR in
  the digital periphery.

The point: *zero* floating-point arithmetic after the input encoder — the
entire network is sense amplifiers, popcounts and thresholds.

Run:  python examples/full_binary_on_chip_ecg.py     (~3 minutes)
"""

import numpy as np

from repro.data import ECGConfig, make_ecg_dataset
from repro.experiments import TrainConfig, render_table, train_model
from repro.models import BinarizationMode, ECGNet
from repro.nn import stochastic_bits, to_bits
from repro.nn.conv import conv1d_op
from repro.rram import AcceleratorConfig, max_pool_bits_1d
from repro.runtime import RRAMBackend, compile
from repro.tensor import Tensor, no_grad

# Use a compact variant so the on-chip walk stays legible: conv stages of
# Table II minus the strided front (the 13-tap first conv stays digital as
# the stochastic encoder's matched filter).
SAMPLES = 300
BASE_FILTERS = 8
STREAM_LENGTH = 64


def train_reference_model():
    dataset = make_ecg_dataset(ECGConfig(n_trials=400, n_samples=SAMPLES,
                                         noise_amplitude=0.05, seed=8))
    model = ECGNet(mode=BinarizationMode.FULL_BINARY, n_samples=SAMPLES,
                   base_filters=BASE_FILTERS, conv_keep_prob=1.0,
                   classifier_keep_prob=1.0,
                   rng=np.random.default_rng(4))
    model.fit_input_norm(dataset.inputs[:320])
    print("training all-binarized ECGNet ...")
    train_model(model, dataset.inputs[:320], dataset.labels[:320],
                TrainConfig(epochs=30, batch_size=16, lr=2e-3, seed=9))
    model.eval()
    return model, dataset


def stochastic_front_end(model, rng):
    """Stage-0 replacement: stochastic stream encoding of the analog input.

    The front convolution's ±1 weights multiply each bit plane; averaging
    the planes recovers the analog pre-activation.  Encoding x/RANGE keeps
    the map linear for |x| <= RANGE (standardized ECG rarely exceeds
    that), and the conv's linearity lets us rescale after.  Returns the
    activation bits the first on-fabric conv stage consumes.
    """
    (front_conv, front_bn, front_pool) = model.conv_stages()[0]

    def front(inputs: np.ndarray) -> np.ndarray:
        with no_grad():
            x = model.input_norm(Tensor(np.asarray(inputs))).data
            encode_range = 2.0
            planes = stochastic_bits(np.clip(x / encode_range, -1, 1),
                                     STREAM_LENGTH, rng)   # (S, N, C, L)
            w = front_conv.binary_weight()
            plane_outputs = [
                conv1d_op(Tensor(np.where(plane == 1, 1.0, -1.0)), w, None,
                          front_conv.stride, front_conv.padding).data
                for plane in planes]
            pre = encode_range * np.mean(plane_outputs, axis=0)
            bits = to_bits(front_bn(Tensor(pre)).data)
        if front_pool is not None:
            bits = max_pool_bits_1d(bits, front_pool.kernel_size,
                                    front_pool.stride)
        return bits

    return front


def main() -> None:
    model, dataset = train_reference_model()
    test_x, test_y = dataset.inputs[320:], dataset.labels[320:]
    with no_grad():
        software = model(Tensor(test_x)).data.argmax(1)
    sw_acc = (software == test_y).mean()
    print(f"software (float eval) accuracy: {sw_acc:.1%}")

    rng = np.random.default_rng(12)
    backend = RRAMBackend(AcceleratorConfig(), rng)
    plan = compile(model, backend=backend, lower_features=True,
                   front_end=stochastic_front_end(model, rng))
    n_devices = sum(op.executor.controller.n_devices
                    for op in plan.layer_ops)
    print(f"programmed {n_devices:,} RRAM devices in one compile step:")
    print(plan.summary())

    on_chip = plan.predict(test_x)
    hw_acc = (on_chip == test_y).mean()
    agreement = (on_chip == software).mean()

    print(render_table(
        "All-binarized ECG network on the 2T2R fabric",
        ["metric", "value"],
        [["software accuracy", f"{sw_acc:.1%}"],
         ["on-chip accuracy", f"{hw_acc:.1%}"],
         ["on-chip vs software agreement", f"{agreement:.1%}"],
         ["stochastic stream length", str(STREAM_LENGTH)],
         ["RRAM devices", f"{n_devices:,}"]]))
    print("\nEverything after the stochastic encoder is XNOR sensing + "
          "popcount + integer thresholds.")


if __name__ == "__main__":
    main()
