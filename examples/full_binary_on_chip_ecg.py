"""A fully binarized ECG network executed end-to-end on the RRAM fabric.

The paper's Fig. 5 architecture targets fully connected layers and notes
that convolutional layers can be mapped with a weight-stationary
adaptation (§II-B).  This example does exactly that for a compact
all-binarized ECG detector:

* the first convolution sees analog signals, so its inputs are encoded as
  stochastic bit streams (paper ref. [14]) and its analog accumulation is
  replaced by averaging XNOR-popcount results over the stream;
* every subsequent convolution and the classifier run as XNOR-popcount
  layers on simulated 2T2R tiles (``InMemoryConv1dLayer`` /
  ``InMemoryDenseLayer``);
* max-pooling on ±1 activations is a logical OR in the digital periphery.

The point: *zero* floating-point arithmetic after the input encoder — the
entire network is sense amplifiers, popcounts and thresholds.

Run:  python examples/full_binary_on_chip_ecg.py     (~3 minutes)
"""

import numpy as np

from repro import nn
from repro.data import ECGConfig, make_ecg_dataset
from repro.experiments import TrainConfig, render_table, train_model
from repro.models import BinarizationMode, ECGNet
from repro.nn import (fold_batchnorm_output, fold_batchnorm_sign,
                      stochastic_bits, to_bits)
from repro.rram import (AcceleratorConfig, InMemoryConv1dLayer,
                        InMemoryDenseLayer, InMemoryOutputLayer,
                        fold_conv1d_batchnorm_sign, max_pool_bits_1d)
from repro.tensor import Tensor, no_grad

# Use a compact variant so the on-chip walk stays legible: conv stages of
# Table II minus the strided front (the 13-tap first conv stays digital as
# the stochastic encoder's matched filter).
SAMPLES = 300
BASE_FILTERS = 8
STREAM_LENGTH = 64


def train_reference_model():
    dataset = make_ecg_dataset(ECGConfig(n_trials=400, n_samples=SAMPLES,
                                         noise_amplitude=0.05, seed=8))
    model = ECGNet(mode=BinarizationMode.FULL_BINARY, n_samples=SAMPLES,
                   base_filters=BASE_FILTERS, conv_keep_prob=1.0,
                   classifier_keep_prob=1.0,
                   rng=np.random.default_rng(4))
    model.fit_input_norm(dataset.inputs[:320])
    print("training all-binarized ECGNet ...")
    train_model(model, dataset.inputs[:320], dataset.labels[:320],
                TrainConfig(epochs=30, batch_size=16, lr=2e-3, seed=9))
    model.eval()
    return model, dataset


def deploy_conv_stack(model, config, rng):
    """Fold every conv stage after the first onto RRAM tiles."""
    blocks = list(model.conv_blocks)
    stages = []          # (hardware conv, pooled?)
    # conv_blocks is [conv, bn, act, (pool)?] * 5; stage 0 stays digital.
    index = 0
    stage = 0
    while index < len(blocks):
        conv = blocks[index]
        bn = blocks[index + 1]
        index += 3                       # conv, bn, act
        pooled = index < len(blocks) and isinstance(blocks[index],
                                                    nn.MaxPool1d)
        if pooled:
            index += 1
        if stage > 0:
            folded = fold_conv1d_batchnorm_sign(conv, bn)
            stages.append((InMemoryConv1dLayer(folded, config, rng), pooled))
        else:
            stages.append(((conv, bn), pooled))   # digital front stage
        stage += 1
    return stages


def run_on_chip(model, stages, classifier_hw, inputs, rng):
    """Execute: stochastic front-end -> binary conv stack -> classifier."""
    (front_conv, front_bn), front_pooled = stages[0]
    with no_grad():
        x = model.input_norm(Tensor(inputs)).data
        # Stochastic stream encoding of the (normalized) analog input: the
        # front convolution's ±1 weights multiply each bit plane; averaging
        # the planes recovers the analog pre-activation.  Encoding x/RANGE
        # keeps the map linear for |x| <= RANGE (standardized ECG rarely
        # exceeds that), and the conv's linearity lets us rescale after.
        encode_range = 2.0
        planes = stochastic_bits(np.clip(x / encode_range, -1, 1),
                                 STREAM_LENGTH, rng)   # (S, N, C, L)
        plane_outputs = []
        w = front_conv.binary_weight()
        for plane in planes:
            pm1 = Tensor(np.where(plane == 1, 1.0, -1.0))
            from repro.nn.conv import conv1d_op
            plane_outputs.append(conv1d_op(pm1, w, None, front_conv.stride,
                                           front_conv.padding).data)
        pre = encode_range * np.mean(plane_outputs, axis=0)
        bits = to_bits(front_bn(Tensor(pre)).data)
        if front_pooled:
            bits = max_pool_bits_1d(bits, 2)

    for hw, pooled in stages[1:]:
        bits = hw.forward_bits(bits)
        if pooled:
            bits = max_pool_bits_1d(bits, 2)

    flat = bits.reshape(bits.shape[0], -1)
    hidden_bits = classifier_hw[0].forward_bits(flat)
    return classifier_hw[1].forward_scores(hidden_bits).argmax(axis=1)


def main() -> None:
    model, dataset = train_reference_model()
    test_x, test_y = dataset.inputs[320:], dataset.labels[320:]
    with no_grad():
        software = model(Tensor(test_x)).data.argmax(1)
    sw_acc = (software == test_y).mean()
    print(f"software (float eval) accuracy: {sw_acc:.1%}")

    rng = np.random.default_rng(12)
    config = AcceleratorConfig()
    stages = deploy_conv_stack(model, config, rng)
    classifier_hw = (
        InMemoryDenseLayer(fold_batchnorm_sign(model.fc1, model.bn_fc1),
                           config, rng),
        InMemoryOutputLayer(fold_batchnorm_output(model.fc2, model.bn_fc2),
                            config, rng),
    )
    n_devices = sum(hw.controller.n_devices
                    for hw, _ in stages[1:]) \
        + sum(layer.controller.n_devices for layer in classifier_hw)

    print(f"programming {n_devices:,} RRAM devices "
          f"({len(stages) - 1} conv stages + 2 dense layers) ...")
    on_chip = run_on_chip(model, stages, classifier_hw, test_x, rng)
    hw_acc = (on_chip == test_y).mean()
    agreement = (on_chip == software).mean()

    print(render_table(
        "All-binarized ECG network on the 2T2R fabric",
        ["metric", "value"],
        [["software accuracy", f"{sw_acc:.1%}"],
         ["on-chip accuracy", f"{hw_acc:.1%}"],
         ["on-chip vs software agreement", f"{agreement:.1%}"],
         ["stochastic stream length", str(STREAM_LENGTH)],
         ["RRAM devices", f"{n_devices:,}"]]))
    print("\nEverything after the stochastic encoder is XNOR sensing + "
          "popcount + integer thresholds.")


if __name__ == "__main__":
    main()
