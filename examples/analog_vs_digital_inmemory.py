"""Analog crossbar vs digital 2T2R: the §II-A architecture choice, measured.

The paper chooses *binary* in-memory computing over *analog* weight coding
(ISAAC/PRIME style) because analog coding needs DACs and ADCs "with their
associated high area overhead".  This example deploys the same trained ECG
classifier both ways and compares:

* accuracy — the analog path degrades as ADC resolution drops, the binary
  2T2R path is bit-exact on fresh devices;
* converter energy/area — the analog periphery against the 1-bit PCSA.

Run:  python examples/analog_vs_digital_inmemory.py
"""

import numpy as np

from repro.data import ECGConfig, make_ecg_dataset
from repro.experiments import (TrainConfig, evaluate_accuracy, render_table,
                               train_model)
from repro.models import BinarizationMode, ECGNet
from repro.rram import (AcceleratorConfig, AnalogConfig, AnalogLinear,
                        EnergyModel, PeripheryModel, classifier_input_bits,
                        deploy_classifier)
from repro.tensor import Tensor


def main() -> None:
    print("Preparing data and training two ECG models ...")
    dataset = make_ecg_dataset(ECGConfig(n_trials=300, n_samples=300,
                                         noise_amplitude=0.05, seed=5))
    n_train = 240
    train_x, train_y = dataset.inputs[:n_train], dataset.labels[:n_train]
    test_x, test_y = dataset.inputs[n_train:], dataset.labels[n_train:]
    cfg = TrainConfig(epochs=40, batch_size=16, lr=2e-3, seed=6)

    # Real-weight model -> analog crossbar deployment of its classifier.
    real = ECGNet(mode=BinarizationMode.REAL, n_samples=300, base_filters=8,
                  rng=np.random.default_rng(7))
    real.fit_input_norm(train_x)
    train_model(real, train_x, train_y, cfg)
    real.eval()
    real_acc = evaluate_accuracy(real, test_x, test_y)

    # Binary-classifier model -> 2T2R XNOR fabric deployment.
    binary = ECGNet(mode=BinarizationMode.BINARY_CLASSIFIER, n_samples=300,
                    base_filters=8, rng=np.random.default_rng(8))
    binary.fit_input_norm(train_x)
    train_model(binary, train_x, train_y, cfg)
    binary.eval()
    binary_sw_acc = evaluate_accuracy(binary, test_x, test_y)

    print("Deploying the binary classifier on the 2T2R accelerator ...")
    hardware = deploy_classifier(binary, AcceleratorConfig())
    bits = classifier_input_bits(binary, test_x)
    digital_acc = float((hardware.predict(bits) == test_y).mean())

    print("Deploying the real classifier on analog crossbars ...\n")
    feats = real.features(Tensor(test_x)).data.reshape(len(test_x), -1)
    rows = []
    for adc_bits in (4, 6, 8, 10):
        acfg = AnalogConfig(adc_bits=adc_bits, dac_bits=8,
                            programming_sigma=0.05, read_noise_sigma=0.01)
        seed_rng = np.random.default_rng(100 + adc_bits)
        layer1 = AnalogLinear(real.fc1, acfg, seed_rng)
        layer2 = AnalogLinear(real.fc2, acfg, seed_rng)
        # Analog layer 1 -> digital batch-norm + hardtanh -> analog layer 2.
        h = layer1.forward(feats)
        h = real.bn_fc1(Tensor(h)).data
        h = np.clip(h, -1.0, 1.0)
        scores = layer2.forward(h)
        acc = float((scores.argmax(axis=1) == test_y).mean())
        rows.append((f"analog crossbar, {adc_bits}-bit ADC", f"{acc:.1%}"))

    rows.append(("digital 2T2R XNOR fabric (1-bit PCSA)",
                 f"{digital_acc:.1%}"))
    rows.append(("software real-weight reference", f"{real_acc:.1%}"))
    rows.append(("software binary-classifier reference",
                 f"{binary_sw_acc:.1%}"))
    print(render_table("ECG classifier accuracy by deployment path",
                       ["Deployment", "Accuracy"], rows))

    # Periphery accounting for the first classifier layer (the wide one).
    in_f, out_f = real.fc1.in_features, real.fc1.out_features
    periphery = PeripheryModel()
    energy_model = EnergyModel()
    analog_pj = periphery.matvec_energy_pj(in_f, out_f, 8, 8)
    analog_area = periphery.matvec_area_um2(in_f, out_f, 8, 8,
                                            adcs_shared=8)
    pcsa_pj = in_f * out_f * energy_model.xnor_pcsa_sense_fj / 1000.0
    pcsa_area = out_f * energy_model.pcsa_area_um2
    print(f"\nConverter periphery for the {in_f}x{out_f} layer:")
    print(f"  analog (8-bit DAC/ADC): {analog_pj:9.0f} pJ/matvec, "
          f"{analog_area:9.0f} um^2")
    print(f"  binary (XNOR-PCSA):     {pcsa_pj:9.1f} pJ/matvec, "
          f"{pcsa_area:9.0f} um^2")
    print(f"  -> analog pays {analog_pj / pcsa_pj:.0f}x energy and "
          f"{analog_area / pcsa_area:.0f}x sensing area (paper §II-A).")


if __name__ == "__main__":
    main()
