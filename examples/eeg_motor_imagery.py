"""EEG motor-imagery brain-computer interface: the paper's §III-A scenario.

A wearable BCI must decide, from multi-electrode EEG, whether the user
imagined moving their left or right fist — on a battery, with all weights in
on-chip RRAM.  This example trains the Table I end-to-end architecture on
the synthetic motor-imagery dataset with a binarized classifier, deploys the
classifier to simulated 2T2R arrays, and then stresses the hardware with
device wear to show when accuracy starts to suffer.

Run:  python examples/eeg_motor_imagery.py        (~3 minutes)
"""

import numpy as np

from repro.data import EEGConfig, make_eeg_dataset
from repro.experiments import (TrainConfig, evaluate_accuracy, render_table,
                               train_model)
from repro.models import BinarizationMode, EEGNet
from repro.rram import (AcceleratorConfig, DeviceParameters,
                        classifier_input_bits, deploy_classifier)
from repro.tensor import Tensor, no_grad


def main() -> None:
    channels, samples = 32, 160
    dataset = make_eeg_dataset(EEGConfig(
        n_trials=300, n_channels=channels, n_samples=samples,
        noise_amplitude=1.2, seed=5))
    n_train = 240
    train_x, train_y = dataset.inputs[:n_train], dataset.labels[:n_train]
    test_x, test_y = dataset.inputs[n_train:], dataset.labels[n_train:]

    print("training EEGNet (binarized classifier) ...")
    model = EEGNet(mode=BinarizationMode.BINARY_CLASSIFIER,
                   n_channels=channels, n_samples=samples, base_filters=4,
                   rng=np.random.default_rng(2))
    train_model(model, train_x, train_y,
                TrainConfig(epochs=30, batch_size=16, lr=2e-3,
                            augment_sigma=0.1, seed=4))
    model.eval()
    software = evaluate_accuracy(model, test_x, test_y)
    print(f"software accuracy: {software:.1%} "
          "(paper, full scale: 87% for the binarized classifier)")

    print("\ndeploying classifier to 2T2R RRAM and ageing the devices ...")
    bits = classifier_input_bits(model, test_x)
    rows = []
    for label, wear_cycles in [("fresh", 0), ("1e8 cycles", int(1e8)),
                               ("7e8 cycles", int(7e8)),
                               ("1e10 cycles", int(1e10))]:
        hardware = deploy_classifier(
            model, AcceleratorConfig(device=DeviceParameters()),
            rng=np.random.default_rng(9))
        if wear_cycles:
            hardware.wear(wear_cycles)
            for controller in hardware.controllers:
                controller.reprogram()
        accuracy = (hardware.predict(bits) == test_y).mean()
        rows.append([label, f"{accuracy:.1%}"])
    print(render_table("In-memory accuracy vs device wear",
                       ["device state", "accuracy"], rows))
    print("\nThe 2T2R BNN tolerates realistic endurance-induced bit errors; "
          "\naccuracy only moves once error rates leave the Fig. 4 regime.")


if __name__ == "__main__":
    main()
