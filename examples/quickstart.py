"""Quickstart: train a binarized-classifier ECG network and run it on
simulated RRAM hardware.

This walks the full pipeline of the paper in ~a minute:

1. generate a synthetic 12-lead ECG electrode-inversion dataset;
2. train the Table II network with a *binarized classifier* (the paper's
   recommended configuration);
3. fold the trained batch-norms into integer popcount thresholds (Eq. 3);
4. program the weights into simulated 2T2R RRAM arrays and run inference
   through XNOR sense amplifiers + popcount logic;
5. compare software and in-memory accuracy, and report memory savings.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.analysis import model_memory
from repro.data import ECGConfig, make_ecg_dataset
from repro.experiments import TrainConfig, evaluate_accuracy, train_model
from repro.models import BinarizationMode, ECGNet
from repro.rram import (AcceleratorConfig, classifier_input_bits,
                        deploy_classifier)


def main() -> None:
    rng = np.random.default_rng(0)

    print("1) Generating synthetic ECG electrode-inversion data ...")
    dataset = make_ecg_dataset(ECGConfig(n_trials=300, n_samples=300,
                                         noise_amplitude=0.05, seed=1))
    n_train = 240
    train_x, train_y = dataset.inputs[:n_train], dataset.labels[:n_train]
    test_x, test_y = dataset.inputs[n_train:], dataset.labels[n_train:]

    print("2) Training ECGNet with a binarized classifier ...")
    model = ECGNet(mode=BinarizationMode.BINARY_CLASSIFIER, n_samples=300,
                   base_filters=8, rng=rng)
    model.fit_input_norm(train_x)
    train_model(model, train_x, train_y,
                TrainConfig(epochs=40, batch_size=16, lr=2e-3, seed=2))
    model.eval()
    sw_acc = evaluate_accuracy(model, test_x, test_y)
    print(f"   software accuracy: {sw_acc:.1%}")

    print("3-4) Folding batch-norms and programming 2T2R RRAM arrays ...")
    hardware = deploy_classifier(model, AcceleratorConfig())
    bits = classifier_input_bits(model, test_x)
    hw_pred = hardware.predict(bits)
    hw_acc = (hw_pred == test_y).mean()
    print(f"   in-memory accuracy (fresh devices): {hw_acc:.1%}")
    print(f"   RRAM devices used: {hardware.n_devices:,} "
          f"({hardware.n_devices // 2:,} 2T2R synapses)")

    print("5) Memory accounting (paper Table IV methodology):")
    breakdown = model_memory("ECG (bench scale)", model)
    saving32 = breakdown.classifier_binarization_saving(32)
    saving8 = breakdown.classifier_binarization_saving(8)
    print(f"   total params:      {breakdown.total_params:,}")
    print(f"   classifier params: {breakdown.classifier_params:,} "
          f"({breakdown.classifier_fraction():.0%} of total)")
    print(f"   saving from classifier binarization: "
          f"{saving32:.1%} vs 32-bit, {saving8:.1%} vs 8-bit")

    print("\nDone. See examples/ for domain-specific scenarios.")


if __name__ == "__main__":
    main()
