"""Quickstart: train a binarized-classifier ECG network and run it on
simulated RRAM hardware.

This walks the full pipeline of the paper in ~a minute:

1. generate a synthetic 12-lead ECG electrode-inversion dataset;
2. train the Table II network with a *binarized classifier* (the paper's
   recommended configuration);
3. compile the trained model **once** through the unified runtime — the
   batch-norms fold into integer popcount thresholds (Eq. 3) and the
   weight bits are packed — then run it on the packed-word XNOR kernel;
4. re-target the same model to the RRAM backend: the weights are
   programmed into simulated 2T2R arrays and inference runs through XNOR
   sense amplifiers + popcount logic;
5. compare software / packed / in-memory accuracy, and report memory
   savings.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.analysis import model_memory
from repro.data import ECGConfig, make_ecg_dataset
from repro.experiments import (TrainConfig, evaluate_accuracy,
                               evaluate_compiled, predict_scores,
                               train_model)
from repro.models import BinarizationMode, ECGNet
from repro.rram import AcceleratorConfig
from repro.runtime import RRAMBackend


def main() -> None:
    rng = np.random.default_rng(0)

    print("1) Generating synthetic ECG electrode-inversion data ...")
    dataset = make_ecg_dataset(ECGConfig(n_trials=300, n_samples=300,
                                         noise_amplitude=0.05, seed=1))
    n_train = 240
    train_x, train_y = dataset.inputs[:n_train], dataset.labels[:n_train]
    test_x, test_y = dataset.inputs[n_train:], dataset.labels[n_train:]

    print("2) Training ECGNet with a binarized classifier ...")
    model = ECGNet(mode=BinarizationMode.BINARY_CLASSIFIER, n_samples=300,
                   base_filters=8, rng=rng)
    model.fit_input_norm(train_x)
    train_model(model, train_x, train_y,
                TrainConfig(epochs=40, batch_size=16, lr=2e-3, seed=2))
    model.eval()
    sw_acc = evaluate_accuracy(model, test_x, test_y)
    print(f"   software accuracy: {sw_acc:.1%}")

    print("3) Compiling once for the packed-word XNOR-popcount kernel ...")
    packed_plan = model.compile(backend="packed")
    packed_pred = packed_plan.predict(test_x)
    software_pred = predict_scores(model, test_x).argmax(axis=1)
    packed_acc = (packed_pred == test_y).mean()
    print(f"   packed-kernel accuracy: {packed_acc:.1%} "
          f"(bit-exact with software: "
          f"{bool((packed_pred == software_pred).all())})")

    print("4) Re-targeting the same model to 2T2R RRAM arrays ...")
    hw_plan = model.compile(backend=RRAMBackend(AcceleratorConfig()))
    hw_acc = evaluate_compiled(hw_plan, test_x, test_y)
    hardware = hw_plan.as_inmemory_classifier()
    print(f"   in-memory accuracy (fresh devices): {hw_acc:.1%}")
    print(f"   RRAM devices used: {hardware.n_devices:,} "
          f"({hardware.n_devices // 2:,} 2T2R synapses)")

    print("5) Memory accounting (paper Table IV methodology):")
    breakdown = model_memory("ECG (bench scale)", model)
    saving32 = breakdown.classifier_binarization_saving(32)
    saving8 = breakdown.classifier_binarization_saving(8)
    print(f"   total params:      {breakdown.total_params:,}")
    print(f"   classifier params: {breakdown.classifier_params:,} "
          f"({breakdown.classifier_fraction():.0%} of total)")
    print(f"   saving from classifier binarization: "
          f"{saving32:.1%} vs 32-bit, {saving8:.1%} vs 8-bit")

    print("\nDone. See examples/ for domain-specific scenarios.")


if __name__ == "__main__":
    main()
