"""MobileNet V1 partial binarization on a vision task (paper §IV, Fig. 8).

The paper replaces MobileNet's fully connected classifier with a two-layer
binarized classifier and shows ImageNet accuracy is preserved.  ImageNet
training is far outside an offline numpy budget, so this example trains a
width-reduced MobileNet V1 (same topology, same code path) on the SynthNet
image dataset and compares:

* the original architecture (real single-layer classifier);
* the paper's binarized two-layer classifier;
* a fully binarized network (expected to lag, as in Table III).

Run:  python examples/mobilenet_partial_binarization.py   (~5 minutes)
"""

import numpy as np

from repro.data import ImageConfig, make_image_dataset
from repro.experiments import (TrainConfig, render_series, train_model)
from repro.models import BinarizationMode, MobileNetConfig, MobileNetV1


def main() -> None:
    dataset = make_image_dataset(ImageConfig(
        n_classes=8, n_per_class=30, image_size=24, seed=6))
    n = len(dataset.inputs)
    n_train = int(0.8 * n)
    order = np.random.default_rng(0).permutation(n)
    tr, te = order[:n_train], order[n_train:]

    config = MobileNetConfig.reduced(n_classes=8, image_size=24,
                                     width_multiplier=0.25, n_blocks=5)
    epochs = 12
    histories = {}
    for mode, label in [
        (BinarizationMode.REAL, "MobileNet (real)"),
        (BinarizationMode.BINARY_CLASSIFIER, "bin classifier (ours)"),
        (BinarizationMode.FULL_BINARY, "all-binarized"),
    ]:
        print(f"training {label} ...")
        model = MobileNetV1(config, mode=mode, rng=np.random.default_rng(3))
        result = train_model(
            model, dataset.inputs[tr], dataset.labels[tr],
            TrainConfig(epochs=epochs, batch_size=16, lr=2e-3, seed=5,
                        track_history=True, eval_topk=(1, 5)),
            dataset.inputs[te], dataset.labels[te])
        histories[label] = result

    xs = list(range(1, epochs + 1))
    print()
    print(render_series(
        "Top-1 validation accuracy per epoch (cf. paper Fig. 8)",
        "epoch", xs,
        {label: [h["top1"] for h in res.history]
         for label, res in histories.items()}, fmt="{:.3f}"))
    print()
    print(render_series(
        "Top-5 validation accuracy per epoch",
        "epoch", xs,
        {label: [h["top5"] for h in res.history]
         for label, res in histories.items()}, fmt="{:.3f}"))
    print("\nPaper (ImageNet, full scale): bin classifier matches the "
          "original\n(70.0% vs 70.6% top-1) while fully binarized MobileNet "
          "drops to 54.4%.")


if __name__ == "__main__":
    main()
