"""Quantization vs binarization on the ECG task.

The paper positions binarization against the 8-bit quantized reference
(§I, Table IV).  This example makes that comparison concrete on one model:

1. train a real-weight ECG network once;
2. post-training-quantize its weights at 16/8/4/2 bits ("no retraining");
3. train a quantization-aware 8-bit variant of the classifier and lower it
   to the pure-integer kernel an 8-bit edge accelerator executes;
4. train the paper's binarized-classifier variant;
5. report accuracy and weight memory side by side.

Run:  python examples/quantization_vs_binarization.py
"""

import numpy as np

from repro.analysis import model_memory, quantize_model_weights
from repro.data import ECGConfig, make_ecg_dataset
from repro.experiments import (TrainConfig, evaluate_accuracy, render_table,
                               train_model)
from repro.models import BinarizationMode, ECGNet
from repro.nn import deploy_dense_int, quant_scale
from repro.tensor import Tensor

EPOCHS = 40
N_SAMPLES = 300


def make_data():
    dataset = make_ecg_dataset(ECGConfig(n_trials=300, n_samples=N_SAMPLES,
                                         noise_amplitude=0.05, seed=11))
    n_train = 240
    return (dataset.inputs[:n_train], dataset.labels[:n_train],
            dataset.inputs[n_train:], dataset.labels[n_train:])


def train_ecg(mode: BinarizationMode, train_x, train_y, seed: int) -> ECGNet:
    model = ECGNet(mode=mode, n_samples=N_SAMPLES, base_filters=8,
                   rng=np.random.default_rng(seed))
    model.fit_input_norm(train_x)
    train_model(model, train_x, train_y,
                TrainConfig(epochs=EPOCHS, batch_size=16, lr=2e-3,
                            seed=seed + 1))
    model.eval()
    return model


def main() -> None:
    train_x, train_y, test_x, test_y = make_data()
    rows = []

    print("Training the real-weight reference ...")
    real = train_ecg(BinarizationMode.REAL, train_x, train_y, seed=1)
    real_acc = evaluate_accuracy(real, test_x, test_y)
    n_params = real.num_parameters()
    rows.append(("real weights (32-bit float)", f"{real_acc:.1%}",
                 f"{n_params * 4 / 1024:.0f} KB"))

    print("Post-training quantization sweep (no retraining) ...")
    reference = real.state_dict()
    for bits in (16, 8, 4, 2):
        real.load_state_dict(reference)
        quantize_model_weights(real, bits=bits)
        acc = evaluate_accuracy(real, test_x, test_y)
        rows.append((f"PTQ {bits}-bit weights", f"{acc:.1%}",
                     f"{n_params * bits / 8 / 1024:.0f} KB"))
    real.load_state_dict(reference)

    print("Demonstrating the integer deployment kernel on dense layer 1 ...")
    # Calibrate the input scale on training features, then check the pure
    # integer kernel agrees with the float computation within 8-bit error.
    feats = real.features(Tensor(train_x[:64])).data.reshape(64, -1)
    dense = real.fc1  # first classifier layer of the Table II model
    deployed = deploy_dense_int(dense, x_scale=quant_scale(feats, 8))
    int_out = deployed.forward(feats)
    float_out = feats @ dense.weight.data.T + dense.bias.data
    err = np.abs(int_out - float_out).max() / (np.abs(float_out).max() or 1)
    print(f"   int8 kernel vs float on {feats.shape[1]} features: "
          f"max relative deviation {err:.2%}")

    print("Training the paper's binarized-classifier variant ...")
    bin_clf = train_ecg(BinarizationMode.BINARY_CLASSIFIER, train_x,
                        train_y, seed=3)
    acc = evaluate_accuracy(bin_clf, test_x, test_y)
    breakdown = model_memory("ECG", bin_clf)
    size_kb = breakdown.binarized_classifier_bytes() / 1024
    rows.append(("binarized classifier (paper)", f"{acc:.1%}",
                 f"{size_kb:.0f} KB"))

    print()
    print(render_table(
        "ECG task — accuracy vs weight memory across precision regimes",
        ["Configuration", "Accuracy", "Weight memory"], rows))
    print("\nPaper's conclusion: 8-bit PTQ is free, binarizing everything "
          "costs accuracy,\nbinarizing only the classifier keeps accuracy "
          "at a fraction of the memory.")


if __name__ == "__main__":
    main()
