"""ECG electrode-inversion detection: the paper's §III-B scenario.

A bedside monitor wants to warn the nurse when ECG electrodes were cabled
incorrectly, using a model small enough to live in on-chip non-volatile
memory.  This example compares the three configurations of Table III on the
synthetic 12-lead dataset:

* real 32-bit weights (the accuracy ceiling);
* fully binarized network (smallest, loses accuracy at 1x filters);
* binarized classifier only (the paper's proposal: matches the ceiling
  while saving most of the memory, because the classifier holds ~90 % of
  the weights).

Run:  python examples/ecg_electrode_check.py        (~4 minutes)
"""

import numpy as np

from repro.analysis import model_memory
from repro.data import ECGConfig, make_ecg_dataset
from repro.experiments import (TrainConfig, evaluate_accuracy, render_table,
                               train_model)
from repro.models import BinarizationMode, ECGNet


def main() -> None:
    dataset = make_ecg_dataset(ECGConfig(n_trials=600, n_samples=300,
                                         noise_amplitude=0.10, seed=3))
    n_train = 480
    train_x, train_y = dataset.inputs[:n_train], dataset.labels[:n_train]
    test_x, test_y = dataset.inputs[n_train:], dataset.labels[n_train:]

    rows = []
    for mode, label in [
        (BinarizationMode.REAL, "Real weights (32-bit)"),
        (BinarizationMode.FULL_BINARY, "All-binarized (1-bit)"),
        (BinarizationMode.BINARY_CLASSIFIER, "Binarized classifier"),
    ]:
        model = ECGNet(mode=mode, n_samples=300, base_filters=8,
                       rng=np.random.default_rng(1))
        model.fit_input_norm(train_x)
        print(f"training: {label} ...")
        train_model(model, train_x, train_y,
                    TrainConfig(epochs=40, batch_size=16, lr=2e-3, seed=2))
        accuracy = evaluate_accuracy(model, test_x, test_y)
        breakdown = model_memory(label, model)
        if mode is BinarizationMode.FULL_BINARY:
            size_kb = breakdown.total_params / 8 / 1024
        elif mode is BinarizationMode.BINARY_CLASSIFIER:
            size_kb = breakdown.binarized_classifier_bytes(32) / 1024
        else:
            size_kb = breakdown.size_bytes(32) / 1024
        rows.append([label, f"{accuracy:.1%}", f"{size_kb:.1f} KB"])

    print()
    print(render_table(
        "ECG electrode-inversion detection (bench scale, cf. Table III)",
        ["configuration", "test accuracy", "weight memory"], rows))
    print("\nPaper (full scale): real 96.3%, all-binarized 92.1%, "
          "binarized classifier 95.9%.")


if __name__ == "__main__":
    main()
