"""A clinical acquisition pipeline: raw signal -> filters -> BNN -> report.

The paper's target is "smart autonomous healthcare devices" (§I).  A real
device does not see clean training data: it sees powerline interference and
respiratory baseline wander, and its front end is AC-coupled — so the model
must be trained *in the filtered domain*, and its output is judged by
sensitivity/specificity, not accuracy alone.  This example runs that
pipeline:

1. define the device front end: a 50 Hz notch plus baseline-wander removal
   (repro.data.filters);
2. train the binarized-classifier ECG electrode-inversion model on
   front-end-filtered recordings (train/test never mix);
3. contaminate the test recordings with powerline pickup and baseline
   wander, as the electrodes would deliver them;
4. classify with and without the front end;
5. report the full diagnostic picture (confusion matrix, sensitivity,
   specificity, ROC AUC) for each condition.

Run:  python examples/clinical_signal_pipeline.py
"""

import numpy as np

from repro.data import (ECGConfig, make_ecg_dataset, notch_filter,
                        remove_baseline_wander)
from repro.experiments import TrainConfig, evaluate_report, train_model
from repro.models import BinarizationMode, ECGNet

SAMPLE_RATE_HZ = 250.0
POWERLINE_HZ = 50.0


def front_end(signals: np.ndarray) -> np.ndarray:
    """The device's analog-front-end equivalent: notch + AC coupling."""
    filtered = notch_filter(signals, POWERLINE_HZ, SAMPLE_RATE_HZ)
    return remove_baseline_wander(filtered, SAMPLE_RATE_HZ)


def contaminate(signals: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """Add powerline pickup and respiratory baseline wander per trial."""
    n_trials, n_leads, n_samples = signals.shape
    t = np.arange(n_samples) / SAMPLE_RATE_HZ
    powerline_amp = rng.uniform(0.3, 0.8, size=(n_trials, 1, 1))
    powerline_phase = rng.uniform(0, 2 * np.pi, size=(n_trials, n_leads, 1))
    powerline = powerline_amp * np.sin(
        2 * np.pi * POWERLINE_HZ * t[None, None, :] + powerline_phase)
    wander_freq = rng.uniform(0.15, 0.35, size=(n_trials, 1, 1))
    wander_amp = rng.uniform(0.3, 0.8, size=(n_trials, 1, 1))
    wander = wander_amp * np.sin(2 * np.pi * wander_freq * t[None, None, :])
    return signals + powerline + wander


def main() -> None:
    rng = np.random.default_rng(0)

    print("1) Generating recordings and training in the filtered domain ...")
    dataset = make_ecg_dataset(ECGConfig(n_trials=400, n_samples=300,
                                         noise_amplitude=0.05, seed=2))
    n_train = 300
    train_x = front_end(dataset.inputs[:n_train])
    train_y = dataset.labels[:n_train]
    test_x, test_y = dataset.inputs[n_train:], dataset.labels[n_train:]
    model = ECGNet(mode=BinarizationMode.BINARY_CLASSIFIER, n_samples=300,
                   base_filters=8, rng=np.random.default_rng(3))
    model.fit_input_norm(train_x)
    train_model(model, train_x, train_y,
                TrainConfig(epochs=40, batch_size=16, lr=2e-3, seed=4))
    model.eval()

    clean_report = evaluate_report(model, front_end(test_x), test_y)
    print(clean_report.render("\nClean recordings through the front end"))

    print("\n2) Contaminating the test recordings "
          "(50 Hz pickup + baseline wander) ...")
    dirty_x = contaminate(test_x, rng)
    dirty_report = evaluate_report(model, dirty_x, test_y)
    print(dirty_report.render("\nContaminated, front end bypassed"))

    print("\n3) Contaminated recordings through the front end ...")
    filtered_report = evaluate_report(model, front_end(dirty_x), test_y)
    print(filtered_report.render("\nContaminated, front end active"))

    print("\nSummary:")
    for label, report in (("clean + front end", clean_report),
                          ("dirty, bypassed", dirty_report),
                          ("dirty + front end", filtered_report)):
        print(f"  {label:18s} accuracy {report.accuracy:6.1%}   "
              f"sensitivity {report.sensitivity:6.1%}   "
              f"specificity {report.specificity:6.1%}   "
              f"AUC {report.auc:.3f}")
    recovered = filtered_report.accuracy - dirty_report.accuracy
    print(f"\nThe front end recovers {recovered:+.1%} accuracy under "
          "realistic interference; a deployed\nscreener needs the filters, "
          "the hardware, and the diagnostic metrics together.")


if __name__ == "__main__":
    main()
