"""A fully binarized vision network running its convolutions on the fabric.

§II-B of the paper: the Fig. 5 architecture "can be adapted for
convolutional layers, with a key decision between minimizing data movement
and data reuse".  This example executes that adaptation in 2-D, the setting
the paper's MobileNet discussion implies:

1. train a small all-binarized CNN (standard conv -> MobileNet-style
   depthwise + pointwise block -> binary classifier) on the synthetic
   image task;
2. fold every inner binary convolution and the classifier into integer
   popcount-threshold form;
3. execute the whole stack on simulated 2T2R hardware — weight-stationary
   conv mapping (InMemoryConv2dLayer) feeding the dense accelerator;
4. compare software and on-chip accuracy and report the device budget.

The first convolution sees analog pixels, so it stays in the digital
front-end — standard BNN practice, and the reason the paper's partial
binarization keeps first/conv layers real.

Run:  python examples/vision_block_on_chip.py
"""

import numpy as np

from repro import nn
from repro.data import ImageConfig, make_image_dataset
from repro.experiments import TrainConfig, evaluate_accuracy, train_model
from repro.nn.binary import to_bits
from repro.rram import (AcceleratorConfig, InMemoryConv2dLayer,
                        fold_classifier, fold_conv2d_batchnorm_sign,
                        fold_depthwise2d_batchnorm_sign)
from repro.rram.accelerator import (InMemoryClassifier, InMemoryDenseLayer,
                                    InMemoryOutputLayer)
from repro.tensor import Tensor, no_grad


class BinaryVisionNet(nn.Module):
    """Digital front conv + binarized depthwise-separable block + binary
    classifier.  No padding anywhere, so every inner layer deploys."""

    def __init__(self, n_classes: int, image_size: int,
                 rng: np.random.Generator):
        super().__init__()
        channels = 16
        self.front = nn.Conv2d(3, channels, kernel_size=3, stride=2,
                               bias=False, rng=rng)
        self.bn_front = nn.BatchNorm2d(channels)
        self.act_front = nn.Sign()
        # The MobileNet block, binarized: depthwise 3x3 then pointwise 1x1.
        self.dw = nn.BinaryDepthwiseConv2d(channels, kernel_size=3, rng=rng)
        self.bn_dw = nn.BatchNorm2d(channels)
        self.act_dw = nn.Sign()
        self.pw = nn.BinaryConv2d(channels, 2 * channels, kernel_size=1,
                                  rng=rng)
        self.bn_pw = nn.BatchNorm2d(2 * channels)
        self.act_pw = nn.Sign()

        side = (image_size - 3) // 2 + 1  # after the front conv
        side = side - 2                   # after depthwise 3x3
        self.flat_features = 2 * channels * side * side
        self.fc1 = nn.BinaryLinear(self.flat_features, 64, rng=rng)
        self.bn_fc1 = nn.BatchNorm1d(64)
        self.act_fc1 = nn.Sign()
        self.fc2 = nn.BinaryLinear(64, n_classes, rng=rng)
        self.bn_fc2 = nn.BatchNorm1d(n_classes)

    def front_bits(self, x: Tensor) -> Tensor:
        return self.act_front(self.bn_front(self.front(x)))

    def block(self, h: Tensor) -> Tensor:
        h = self.act_dw(self.bn_dw(self.dw(h)))
        return self.act_pw(self.bn_pw(self.pw(h)))

    def forward(self, x: Tensor) -> Tensor:
        h = self.block(self.front_bits(x))
        h = h.reshape(h.shape[0], self.flat_features)
        h = self.act_fc1(self.bn_fc1(self.fc1(h)))
        return self.bn_fc2(self.fc2(h))


def main() -> None:
    rng = np.random.default_rng(0)

    print("1) Generating the synthetic image task ...")
    dataset = make_image_dataset(ImageConfig(n_classes=6, n_per_class=40,
                                             image_size=16, seed=1))
    n = len(dataset.inputs)
    order = rng.permutation(n)
    split = int(0.8 * n)
    train_x = dataset.inputs[order[:split]]
    train_y = dataset.labels[order[:split]]
    test_x = dataset.inputs[order[split:]]
    test_y = dataset.labels[order[split:]]

    print("2) Training the all-binarized vision network ...")
    model = BinaryVisionNet(n_classes=6, image_size=16,
                            rng=np.random.default_rng(2))
    train_model(model, train_x, train_y,
                TrainConfig(epochs=60, batch_size=16, lr=5e-3, seed=3,
                            augment_sigma=0.05))
    model.eval()
    sw_acc = evaluate_accuracy(model, test_x, test_y)
    print(f"   software accuracy: {sw_acc:.1%}")

    print("3) Folding the binary block and classifier ...")
    folded_dw = fold_depthwise2d_batchnorm_sign(model.dw, model.bn_dw)
    folded_pw = fold_conv2d_batchnorm_sign(model.pw, model.bn_pw)
    hidden, output = fold_classifier(model)

    print("4) Programming 2T2R arrays and running the stack on-chip ...")
    config = AcceleratorConfig()
    hw_rng = np.random.default_rng(4)
    chip_dw = InMemoryConv2dLayer(folded_dw, config, hw_rng)
    chip_pw = InMemoryConv2dLayer(folded_pw, config, hw_rng)
    chip_classifier = InMemoryClassifier(
        [InMemoryDenseLayer(l, config, hw_rng) for l in hidden],
        InMemoryOutputLayer(output, config, hw_rng))

    with no_grad():
        front = model.front_bits(Tensor(test_x)).data
    bits = to_bits(front)
    bits = chip_pw.forward_bits(chip_dw.forward_bits(bits))
    bits = bits.reshape(len(test_x), -1)
    hw_pred = chip_classifier.predict(bits)
    hw_acc = float((hw_pred == test_y).mean())

    conv_devices = 2 * (folded_dw.weight_bits.size
                        + folded_pw.weight_bits.size)
    total_devices = conv_devices + chip_classifier.n_devices
    print(f"   on-chip accuracy (fresh devices): {hw_acc:.1%}")
    print(f"   devices: {conv_devices:,} in conv arrays + "
          f"{chip_classifier.n_devices:,} in dense arrays = "
          f"{total_devices:,}")

    agreement = float((hw_pred == evaluate_predictions(model, test_x))
                      .mean())
    print(f"   chip/software prediction agreement: {agreement:.1%}")
    print("\nThe weight-stationary conv mapping keeps every inner layer in "
          "memory; only the\nanalog-input front conv and the cheap bit "
          "reshapes run in the digital periphery.")


def evaluate_predictions(model, inputs) -> np.ndarray:
    with no_grad():
        return model(Tensor(inputs)).data.argmax(axis=1)


if __name__ == "__main__":
    main()
