"""One trained model, three inference substrates — the unified runtime.

The paper's deployment contract (Eq. 3) is that a trained BNN is
substrate-independent: the float training stack, packed-word XNOR-popcount
CPU kernels, and the Fig. 5 in-memory 2T2R architecture must all produce
the same predictions.  This example makes the contract concrete:

1. train the Table I EEG motor-imagery network with a binarized
   classifier;
2. ``compile`` it once per backend — folding batch-norms, packing weight
   words, programming RRAM tiles all happen at compile time;
3. cross-check predictions: reference vs packed is bit-exact, ideal RRAM
   is bit-exact (monolithic and sharded across 8x24 macro chips alike),
   realistic fresh devices agree to within device noise;
4. register a *custom* backend under a new name to show that substrates
   are plug-ins, not rewrites.

Run:  python examples/runtime_backends.py
"""

import time

import numpy as np

from repro.data import EEGConfig, make_eeg_dataset
from repro.experiments import (TrainConfig, backend_agreement,
                               evaluate_accuracy, train_model)
from repro.models import BinarizationMode, EEGNet
from repro.rram import AcceleratorConfig, MacroGeometry
from repro.runtime import (RRAMBackend, ShardedRRAMBackend,
                           available_backends, compile, register_backend)


def main() -> None:
    print("1) Training a binarized-classifier EEG network ...")
    dataset = make_eeg_dataset(EEGConfig(n_trials=160, n_channels=16,
                                         n_samples=240, seed=3))
    n_train = 128
    model = EEGNet(mode=BinarizationMode.BINARY_CLASSIFIER, n_channels=16,
                   n_samples=240, base_filters=8, hidden_units=32,
                   rng=np.random.default_rng(1))
    train_model(model, dataset.inputs[:n_train], dataset.labels[:n_train],
                TrainConfig(epochs=25, batch_size=16, lr=2e-3, seed=2))
    model.eval()
    test_x, test_y = dataset.inputs[n_train:], dataset.labels[n_train:]
    print(f"   software accuracy: "
          f"{evaluate_accuracy(model, test_x, test_y):.1%}")

    print("\n2) Registering an ideal-RRAM plug-in backend ...")
    register_backend("rram-ideal",
                     lambda: RRAMBackend(AcceleratorConfig(ideal=True)))
    print(f"   registered backends: {', '.join(available_backends())}")

    print("\n3) Compiling once per substrate and cross-checking ...")
    backends = ["reference", "packed", "rram-ideal",
                ShardedRRAMBackend(AcceleratorConfig(ideal=True),
                                   macro=MacroGeometry(8, 24)),
                RRAMBackend(AcceleratorConfig())]
    # The experiments-layer helper compiles each backend once and keys
    # duplicate substrates apart ("rram", "rram#2").
    predictions, agreement = backend_agreement(model, test_x, backends)

    print(f"\n   {'backend':<12} {'accuracy':>9} {'vs reference':>13}")
    for key, labels in predictions.items():
        accuracy = (labels == test_y).mean()
        print(f"   {key:<12} {accuracy:>8.1%} {agreement[key]:>12.1%}")

    packed_plan = compile(model, backend="packed")
    t0 = time.perf_counter()
    packed_plan.predict(test_x)
    print(f"\n   packed plan latency: "
          f"{(time.perf_counter() - t0) * 1e3:.1f} ms/batch")
    print("\n   The plan itself (packed backend):")
    print(packed_plan.summary())
    print("\nreference == packed == ideal RRAM bit-for-bit; realistic "
          "devices differ only by\nsense/device noise — the Eq. 3 "
          "contract, now enforced by one compile step.")


if __name__ == "__main__":
    main()
