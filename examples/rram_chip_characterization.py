"""RRAM chip characterization: reproduce the paper's device-level story.

Replays the measurement campaign of §II-B on the simulated test chip:

* endurance experiment — bit error rate of 1T1R (BL and BLb sensed
  single-endedly) versus the differential 2T2R read, over hundreds of
  millions of program cycles (paper Fig. 4);
* the 2T2R-versus-ECC comparison: the paper states 2T2R matches "formal
  single error correction of equivalent redundancy" — checked against a
  rate-1/2 extended Hamming code and SECDED(72,64);
* energy accounting: in-memory BNN inference versus a digital datapath
  that fetches ECC-protected weights from SRAM.

Run:  python examples/rram_chip_characterization.py
"""

import numpy as np

from repro.experiments import render_series, render_table
from repro.rram import (EnduranceExperiment, EnergyModel, HammingCode,
                        analytic_ber_1t1r, analytic_ber_2t2r,
                        simulate_protected_storage)


def endurance_study() -> None:
    print("== Endurance / bit-error-rate study (paper Fig. 4) ==\n")
    exp = EnduranceExperiment(trials=400_000, seed=0)
    result = exp.run()
    analytic_2t2r = analytic_ber_2t2r(exp.device, result.cycles,
                                      exp.sense.offset_sigma)
    print(render_series(
        "Mean BER vs programming cycles",
        "cycles", [f"{c:.0e}" for c in result.cycles],
        {
            "1T1R BL": result.ber_1t1r_bl,
            "1T1R BLb": result.ber_1t1r_blb,
            "2T2R": result.ber_2t2r,
            "2T2R analytic": analytic_2t2r,
        }, fmt="{:.2e}"))
    gap = result.ber_1t1r_bl / np.maximum(result.ber_2t2r, 1e-9)
    print(f"\n1T1R/2T2R error ratio: {gap.min():.0f}x - {gap.max():.0f}x "
          "(paper: ~two orders of magnitude)\n")


def ecc_comparison() -> None:
    print("== 2T2R vs formal single-error correction (§II-B claim) ==\n")
    rng = np.random.default_rng(1)
    device = EnduranceExperiment().device
    rows = []
    for cycles in (1e8, 4e8, 7e8):
        raw = float(analytic_ber_1t1r(device, cycles))
        differential = float(analytic_ber_2t2r(device, cycles))
        data = rng.integers(0, 2, (40_000, 4)).astype(np.uint8)
        _, sec_half = simulate_protected_storage(
            data, HammingCode.rate_half(), raw, rng)
        data64 = rng.integers(0, 2, (8_000, 64)).astype(np.uint8)
        _, secded = simulate_protected_storage(
            data64, HammingCode.secded_72_64(), raw, rng)
        rows.append([f"{cycles:.0e}", f"{raw:.2e}", f"{differential:.2e}",
                     f"{sec_half:.2e}", f"{secded:.2e}"])
    print(render_table(
        "Residual BER after protection (raw channel = 1T1R)",
        ["cycles", "raw 1T1R", "2T2R (2x devices)",
         "Hamming(8,4) (2x bits)", "SECDED(72,64) (1.125x)"], rows))
    print("\n2T2R sits in the same regime as single-error correction of\n"
          "equivalent (2x) redundancy, without any decoder logic.\n")


def energy_study() -> None:
    print("== Energy per classifier inference (ECG, paper Table II) ==\n")
    model = EnergyModel()
    layers = [(75, 5152), (2, 75)]
    rows = []
    for name, cost in [
        ("2T2R in-memory (Fig. 5)", model.in_memory_inference(layers)),
        ("digital, SRAM + SECDED", model.digital_inference(layers, "sram")),
        ("digital, SRAM, no ECC",
         model.digital_inference(layers, "sram", use_ecc=False)),
        ("digital, DRAM + SECDED", model.digital_inference(layers, "dram")),
    ]:
        rows.append([name, *cost.row()])
    print(render_table(
        "Energy breakdown (pJ) and storage area (mm^2)",
        ["implementation", "sense", "popcount", "movement", "ECC", "total",
         "area"], rows))
    print("\nWeight movement dominates the digital variants; the in-memory\n"
          "design spends energy only on sensing and popcount, which is the\n"
          "paper's architectural argument.\n")


if __name__ == "__main__":
    endurance_study()
    ecc_comparison()
    energy_study()
