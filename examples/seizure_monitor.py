"""A continuous seizure monitor on in-memory hardware.

The paper's introduction motivates exactly this device: "epileptic seizure
prediction … available at the edge", battery-powered, with the network
resident in on-chip RRAM (§I).  This example assembles the monitor from the
repository's parts:

1. train the binarized-classifier EEG model on the synthetic
   spike-and-wave seizure task;
2. fold and program it onto simulated 2T2R arrays;
3. stream a long multichannel recording through sliding windows, running
   every window on the in-memory classifier;
4. aggregate window decisions and report the clinically binding metrics
   (sensitivity first — a missed seizure costs more than a false alarm),
   plus the hardware budget (devices, macros, per-window sense energy).

Run:  python examples/seizure_monitor.py
"""

import numpy as np

from repro.data import (SeizureConfig, make_seizure_dataset,
                        sliding_windows)
from repro.experiments import TrainConfig, train_model
from repro.metrics import classification_report
from repro.models import BinarizationMode, EEGNet
from repro.rram import (AcceleratorConfig, EnergyModel,
                        classifier_input_bits, deploy_classifier,
                        plan_model)

WINDOW = 256
HOP = 128


def main() -> None:
    print("1) Training the seizure detector ...")
    cfg = SeizureConfig(n_trials=300, n_channels=16, n_samples=WINDOW,
                        discharge_amplitude=1.5, focus_fraction=0.4,
                        seed=1)
    dataset = make_seizure_dataset(cfg)
    n_train = 240
    model = EEGNet(mode=BinarizationMode.BINARY_CLASSIFIER, n_channels=16,
                   n_samples=WINDOW, base_filters=4,
                   rng=np.random.default_rng(2))
    train_model(model, dataset.inputs[:n_train], dataset.labels[:n_train],
                TrainConfig(epochs=30, batch_size=16, lr=2e-3, seed=3))
    model.eval()

    print("2) Programming the classifier into 2T2R arrays ...")
    hardware = deploy_classifier(model, AcceleratorConfig())
    plan = plan_model(model)
    print(f"   {hardware.n_devices:,} RRAM devices across "
          f"{plan.n_macros} macros "
          f"({plan.utilization:.0%} utilization)")

    print("3) Streaming held-out recordings through sliding windows ...")
    test_x = dataset.inputs[n_train:]
    test_y = dataset.labels[n_train:]
    # Each held-out trial becomes a short continuous stream; windows
    # overlap by 50% as a monitor's ring buffer would.
    predictions = []
    n_windows_total = 0
    for recording in test_x:
        stream = np.concatenate([recording, recording], axis=-1)
        windows = sliding_windows(stream, window=WINDOW, hop=HOP)
        n_windows_total += len(windows)
        bits = classifier_input_bits(model, windows)
        window_preds = hardware.predict(bits)
        # Alarm policy: any-window detection (sensitivity-first).
        predictions.append(int(window_preds.max()))
    predictions = np.array(predictions)

    report = classification_report(test_y, predictions)
    print(report.render("\nMonitor performance (recording level)"))

    energy = EnergyModel()
    shapes = [(l.folded.out_features, l.folded.in_features)
              for l in hardware.hidden]
    shapes.append((hardware.output.folded.weight_bits.shape))
    cost = energy.in_memory_inference(
        [tuple(s) for s in shapes])
    print(f"\nPer-window inference energy: {cost.total_pj / 1000:.1f} nJ "
          f"({n_windows_total} windows streamed); weights never moved "
          "off-chip.")
    print("Sensitivity-first alarm policy: any ictal window raises the "
          "alarm for the recording.")


if __name__ == "__main__":
    main()
