"""Ablation XTRA4 — energy/area accounting: in-memory 2T2R BNN vs digital
baselines (the §I / §II-B architectural argument).

The paper motivates in-memory computing by the cost of moving weights
("the major drain of energy ... comes from data shuffling between
processing logic and memory") and rejects ECC because its computation
outweighs the BNN's.  The energy model quantifies both statements for the
paper's two medical classifiers.

Shape checks: (1) in-memory inference beats SRAM+ECC digital on energy;
(2) weight movement dominates the digital total; (3) per fetched bit, ECC
decode energy exceeds the BNN's own XNOR+popcount compute energy.
"""

import numpy as np

from repro.experiments import render_table
from repro.models import ECGNet, EEGNet
from repro.rram import EnergyModel

from _util import report


def _layer_shapes(model):
    shapes = [(model.fc1.out_features
               if hasattr(model.fc1, "out_features")
               else model.bn_fc1.num_features, model.fc1.in_features)]
    if model.fc2 is not None:
        shapes.append((model.n_classes, model.fc2.in_features))
    return shapes


def _run():
    rng = np.random.default_rng(0)
    energy = EnergyModel()
    tasks = {
        "EEG classifier": [(80, 2520), (2, 80)],
        "ECG classifier": [(75, 5152), (2, 75)],
    }
    rows = []
    checks = []
    for name, shapes in tasks.items():
        inmem = energy.in_memory_inference(shapes)
        sram = energy.digital_inference(shapes, "sram", use_ecc=True)
        sram_raw = energy.digital_inference(shapes, "sram", use_ecc=False)
        dram = energy.digital_inference(shapes, "dram", use_ecc=True)
        rows.append([name, f"{inmem.total_pj:.0f}", f"{sram.total_pj:.0f}",
                     f"{sram_raw.total_pj:.0f}", f"{dram.total_pj:.0f}"])
        checks.append((inmem, sram, sram_raw, dram))
    del rng
    return rows, checks


def bench_ablation_energy(benchmark):
    rows, checks = benchmark.pedantic(_run, rounds=1, iterations=1)
    text = render_table(
        "XTRA4 — energy per inference (pJ), classifier layers only",
        ["task", "2T2R in-memory", "digital SRAM+SECDED",
         "digital SRAM no-ECC", "digital DRAM+SECDED"], rows)
    model = EnergyModel()
    per_bit_compute = model.xnor_gate_fj + model.popcount_fj_per_bit
    text += (f"\n\nPer weight bit: ECC decode {model.ecc_decode_fj_per_bit}"
             f" fJ vs BNN compute {per_bit_compute} fJ - error correction "
             "costs more than the\nnetwork's own arithmetic, the paper's "
             "stated reason to design it out (§II-B).")
    report("ablation_energy", text)

    for inmem, sram, sram_raw, dram in checks:
        assert inmem.total_pj < sram.total_pj
        assert sram.data_movement_pj > 0.5 * sram.total_pj
        assert dram.total_pj > 50 * sram.total_pj
    assert model.ecc_decode_fj_per_bit > per_bit_compute
