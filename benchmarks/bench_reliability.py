"""Reliability claim — lifetime fault injection across the MC engine.

The PR 7 acceptance surface: retention aging, stuck-at faults, dead-macro
degradation and ECC-protected storage wired through the same controllers
every other benchmark uses.  This harness verifies the contracts and
quantifies the headline claim — SECDED ECC measurably extends the usable
lifetime of a deployed classifier:

* **zero-cost when off** — an empty :class:`FaultMap` plus an inactive
  :class:`LifetimeConfig` leaves sharded execution bit-identical to the
  plain monolithic backend (smoke-asserted);
* **graceful degradation** — killing macros mid-floorplan completes via
  spare remap with scores bit-identical to the healthy monolithic plan
  (smoke-asserted);
* **accuracy vs years** — demo-classifier agreement against the ideal
  substrate after 0..30 equivalent years at 125 °C on realistic devices,
  bare vs SECDED-protected storage; the JSON records the years-at-95%
  threshold for both and asserts ECC extends it.

Results are recorded in ``BENCH_reliability.json`` at the repo root.

Run:  python benchmarks/bench_reliability.py [--smoke]
(--smoke: contract checks + one aged point, no JSON record — the CI
mode.)
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

import numpy as np

ROOT = pathlib.Path(__file__).resolve().parents[1]
sys.path.insert(0, str(ROOT / "src"))
sys.path.insert(0, str(ROOT / "benchmarks"))

JSON_PATH = ROOT / "BENCH_reliability.json"

YEARS = (0.0, 1.0, 3.0, 10.0, 30.0)
TEMP_C = 125.0
THRESHOLD = 0.95


def _contract_checks(smoke: bool) -> dict:
    """The bit-identity contracts: reliability layer off == legacy; dead
    macros remap without changing a single score."""
    from repro.cli.main import _demo_model_and_inputs
    from repro.rram import AcceleratorConfig, FaultMap, LifetimeConfig, \
        MacroGeometry
    from repro.runtime import RRAMBackend, ShardedRRAMBackend, compile

    model, inputs = _demo_model_and_inputs("eeg", "full_binary")
    if smoke:
        inputs = inputs[:16]
    mono = compile(model, backend=RRAMBackend(
        AcceleratorConfig(ideal=True))).scores(inputs)

    empty = compile(model, backend=ShardedRRAMBackend(
        AcceleratorConfig(ideal=True), macro=MacroGeometry(8, 24),
        fault_map=FaultMap(), lifetime=LifetimeConfig(),
        spares=0)).scores(inputs)
    empty_identical = bool(np.array_equal(empty, mono))

    killed_plan = compile(model, backend=ShardedRRAMBackend(
        AcceleratorConfig(ideal=True), macro=MacroGeometry(8, 24),
        fault_map=FaultMap(dead_macros=(1, 9))))
    killed = killed_plan.scores(inputs)
    n_remapped = sum(len(p.remapped) for p in killed_plan.placements)
    degraded_identical = bool(np.array_equal(killed, mono))

    return {"empty_map_bit_identical": empty_identical,
            "dead_macros_killed": 2,
            "dead_macros_remapped": int(n_remapped),
            "degraded_bit_identical": degraded_identical}


def _aged_agreement(years: float, ecc: str, trials: int) -> float:
    """Demo-layer agreement with the ideal substrate after aging."""
    from repro.experiments.workloads import lifetime_point

    return float(lifetime_point(
        years=years, temp_c=TEMP_C, ecc=ecc, trials=trials,
        n_inputs=64, in_features=256, out_features=64)["agreement"])


def _years_at_threshold(curve: dict[float, float]) -> float:
    """Largest swept age whose agreement still clears THRESHOLD (0 if
    even the fresh store misses it)."""
    usable = 0.0
    for years in sorted(curve):
        if curve[years] >= THRESHOLD:
            usable = years
    return usable


def main(smoke: bool = False) -> None:
    from _util import report
    from repro.rram import DeviceParameters, YieldAnalysis

    contracts = _contract_checks(smoke)

    trials = 2 if smoke else 8
    sweep_years = YEARS[:3] if smoke else YEARS
    curves = {ecc: {y: _aged_agreement(y, ecc, trials)
                    for y in sweep_years}
              for ecc in ("none", "secded")}
    usable = {ecc: _years_at_threshold(curve)
              for ecc, curve in curves.items()}

    yield_rows = None
    if not smoke:
        yield_rows = {}
        for mode in ("1T1R", "2T2R"):
            res = YieldAnalysis(DeviceParameters(),
                                n_chips=500).run(3e8, mode=mode)
            yield_rows[mode] = {
                "yield_fraction": float(res.yield_fraction),
                "worst_chip_ber": float(res.worst_chip_ber)}

    curve_lines = "\n".join(
        f"  ecc={ecc:<6}: " + ", ".join(
            f"{y:g}y={curves[ecc][y]:.4f}" for y in sorted(curves[ecc]))
        + f"  (usable @{THRESHOLD:.0%}: {usable[ecc]:g}y)"
        for ecc in curves)
    yield_lines = "" if yield_rows is None else "\n" + "\n".join(
        f"  yield {mode}: {r['yield_fraction']:.1%} chips under "
        f"BER 1e-3 (worst {r['worst_chip_ber']:.2e})"
        for mode, r in yield_rows.items())
    text = (
        "PR7 — lifetime fault injection & ECC\n"
        "====================================\n"
        f"  empty FaultMap bit-identical to monolithic = "
        f"{contracts['empty_map_bit_identical']}\n"
        f"  {contracts['dead_macros_killed']} killed macros remapped "
        f"({contracts['dead_macros_remapped']}) and bit-identical = "
        f"{contracts['degraded_bit_identical']}\n"
        f"agreement vs equivalent years at {TEMP_C:g}C "
        f"(realistic devices, {trials} trials):\n"
        f"{curve_lines}{yield_lines}\n")
    report("reliability", text)

    assert contracts["empty_map_bit_identical"], \
        "reliability layer perturbed results while switched off"
    assert contracts["degraded_bit_identical"], \
        "dead-macro remap changed scores"
    assert contracts["dead_macros_remapped"] == \
        contracts["dead_macros_killed"]
    if smoke:
        # One aged sanity point: aging must actually bite by 3 years.
        assert curves["none"][sweep_years[-1]] < 1.0, \
            "retention aging had no effect on the bare store"
        return

    assert usable["secded"] > usable["none"], (
        f"SECDED usable lifetime {usable['secded']}y does not exceed "
        f"bare storage {usable['none']}y")

    result = {
        "contracts": contracts,
        "temp_c": TEMP_C,
        "trials": trials,
        "agreement_vs_years": {ecc: {str(y): round(v, 5)
                                     for y, v in curve.items()}
                               for ecc, curve in curves.items()},
        "usable_years_at_threshold": {"threshold": THRESHOLD, **usable},
        "yield": yield_rows,
    }
    JSON_PATH.write_text(json.dumps(result, indent=2) + "\n")


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="contract checks + aged sanity point, no "
                             "JSON record")
    args = parser.parse_args()
    main(args.smoke)
