"""Ablation XTRA10 — the packed-word XNOR kernels vs the float/matmul paths.

The BNN literature's speed/energy argument (paper §II-A: "replacing
multiplication circuits with simple XNOR logic gates") has a software
mirror: packing 64 weights per machine word turns a dense layer into a few
bitwise ops + popcounts per output.  This bench measures that speedup on
two workloads and pins bit-exact agreement in both:

* the paper's EEG classifier layer (2520 -> 80 -> 2) — packed dense kernel
  vs the integer matmul formulation (the Fig. 5 popcount-tree golden
  model);
* a MobileNet-style binary *separable conv block* (depthwise 3x3 +
  pointwise 1x1 with folded batch-norm thresholds) — the new packed conv
  path (bit-sliced depthwise + packed pointwise, chained in the packed
  domain) vs the float im2col path the training stack executes.  The conv
  numbers are recorded in ``BENCH_packed_conv.json`` at the repo root.

Unlike the single-shot experiment harnesses, this is a genuine timing
benchmark (multiple rounds, pytest-benchmark statistics).
"""

import json
import pathlib
import time

import numpy as np

from repro import nn
from repro.nn import (PackedBinaryConv2d, pack_bits, pack_feature_map,
                      packed_xnor_popcount, unpack_feature_map,
                      xnor_popcount)
from repro.rram import fold_conv2d_batchnorm_sign, \
    fold_depthwise2d_batchnorm_sign
from repro.tensor import Tensor, no_grad

from _util import report

BATCH = 64
IN_FEATURES = 2520     # the EEG model's flattened feature width
OUT_FEATURES = 80

# Separable-block conv workload (a MobileNet V1 inner block at the scale
# the paper's §IV vision model uses on-fabric: no padding, binary in/out).
CONV_BATCH = 32
CONV_CHANNELS = 128
CONV_SIDE = 16
JSON_PATH = pathlib.Path(__file__).parents[1] / "BENCH_packed_conv.json"


def _operands():
    rng = np.random.default_rng(0)
    x = rng.integers(0, 2, size=(BATCH, IN_FEATURES)).astype(np.uint8)
    w = rng.integers(0, 2, size=(OUT_FEATURES, IN_FEATURES)).astype(np.uint8)
    return x, w, pack_bits(x), pack_bits(w)


def _best_of(fn, rounds: int = 7, calls: int = 3) -> float:
    """Minimum mean call time over ``rounds`` — robust single-core timing."""
    fn()
    best = np.inf
    for _ in range(rounds):
        t0 = time.perf_counter()
        for _ in range(calls):
            fn()
        best = min(best, (time.perf_counter() - t0) / calls)
    return best


def bench_ablation_packed_kernel(benchmark):
    x, w, x_words, w_words = _operands()

    # Correctness first: the kernels must agree bit-exactly.
    reference = xnor_popcount(x, w)
    packed = packed_xnor_popcount(x_words, w_words, IN_FEATURES)
    assert np.array_equal(reference, packed)

    # Time the packed kernel (including input packing, as a deployment
    # would amortize weight packing but pay activation packing per batch).
    def packed_layer():
        return packed_xnor_popcount(pack_bits(x), w_words, IN_FEATURES)

    result = benchmark(packed_layer)
    assert np.array_equal(result, reference)

    matmul_s = _best_of(lambda: xnor_popcount(x, w))
    packed_s = _best_of(packed_layer)

    conv = _conv_block_comparison()

    words = -(-IN_FEATURES // 64)
    text = (
        "XTRA10 — packed-word XNOR kernels vs float/matmul formulations\n"
        "=================================================================="
        "==========\n"
        f"dense (EEG classifier layer, {BATCH}x{IN_FEATURES} -> "
        f"{OUT_FEATURES})\n"
        f"  matmul formulation : {matmul_s * 1e3:8.2f} ms/batch "
        f"({IN_FEATURES} int64 MACs per output)\n"
        f"  packed formulation : {packed_s * 1e3:8.2f} ms/batch "
        f"({words} XNOR+popcount words per output)\n"
        f"  speedup            : {matmul_s / packed_s:8.1f}x\n"
        f"  storage            : {IN_FEATURES * 8:,} B/neuron (int64) -> "
        f"{words * 8:,} B/neuron (packed), "
        f"{IN_FEATURES * 8 / (words * 8):.0f}x smaller\n\n"
        f"conv (binary separable block, {CONV_BATCH}x{CONV_CHANNELS}x"
        f"{CONV_SIDE}x{CONV_SIDE}, dw 3x3 + pw 1x1)\n"
        f"  float im2col path  : {conv['float_ms']:8.2f} ms/batch "
        "(conv + batch-norm + sign, float64 GEMM)\n"
        f"  packed conv path   : {conv['packed_ms']:8.2f} ms/batch "
        "(bit-sliced dw + packed pw, folded thresholds)\n"
        f"  speedup            : {conv['speedup']:8.1f}x  "
        "(recorded in BENCH_packed_conv.json)\n\n"
        "All kernels agree bit-exactly; the 64-bits-per-word compression "
        "is the software\nanalogue of the paper's XNOR-gate argument.")
    report("ablation_packed_kernel", text)

    assert packed_s < matmul_s  # the whole point
    # Acceptance: the packed conv path beats float im2col by >= 5x.
    assert conv["speedup"] >= 5.0, conv


def _conv_block_comparison() -> dict:
    """Float im2col vs packed kernels on a binary separable conv block."""
    rng = np.random.default_rng(1)
    c, side, batch = CONV_CHANNELS, CONV_SIDE, CONV_BATCH

    dw = nn.BinaryDepthwiseConv2d(c, 3, rng=rng)
    bn_dw = _fitted_bn(c, rng)
    pw = nn.BinaryConv2d(c, c, 1, rng=rng)
    bn_pw = _fitted_bn(c, rng)
    sign_dw, sign_pw = nn.Sign(), nn.Sign()
    for module in (dw, bn_dw, pw, bn_pw):
        module.eval()

    x_bits = rng.integers(0, 2, (batch, c, side, side)).astype(np.uint8)
    x_float = Tensor(np.where(x_bits == 1, 1.0, -1.0))

    def float_block():
        with no_grad():
            h = sign_dw(bn_dw(dw(x_float)))
            return sign_pw(bn_pw(pw(h))).data

    packed_dw = PackedBinaryConv2d(fold_depthwise2d_batchnorm_sign(dw, bn_dw))
    packed_pw = PackedBinaryConv2d(fold_conv2d_batchnorm_sign(pw, bn_pw))

    def packed_block():
        words = pack_feature_map(x_bits)
        return packed_pw.forward_map(packed_dw.forward_map(words))

    # Bit-exactness before timing.
    want = (float_block() > 0).astype(np.uint8)
    got = unpack_feature_map(packed_block(), c)
    assert np.array_equal(got, want)

    float_s = _best_of(float_block)
    packed_s = _best_of(packed_block)
    result = {
        "workload": {
            "batch": batch, "channels": c, "side": side,
            "block": "depthwise 3x3 + pointwise 1x1, folded BN thresholds",
        },
        "float_ms": float_s * 1e3,
        "packed_ms": packed_s * 1e3,
        "speedup": float_s / packed_s,
        "bit_exact": True,
    }
    JSON_PATH.write_text(json.dumps(result, indent=2) + "\n")
    return result


def _fitted_bn(n: int, rng: np.random.Generator) -> nn.BatchNorm2d:
    bn = nn.BatchNorm2d(n)
    bn.set_buffer("running_mean", rng.normal(0, 0.5, n))
    bn.set_buffer("running_var", rng.uniform(0.5, 2.0, n))
    bn.gamma.data[:] = rng.normal(1.0, 0.3, n)
    bn.beta.data[:] = rng.normal(0.0, 0.3, n)
    return bn
