"""Ablation XTRA10 — the packed-word XNOR kernel vs the matmul formulation.

The BNN literature's speed/energy argument (paper §II-A: "replacing
multiplication circuits with simple XNOR logic gates") has a software
mirror: packing 64 weights per machine word turns a dense layer into a few
bitwise ops + popcounts per output.  This bench measures that speedup on
the paper's EEG classifier geometry (2520 -> 80 -> 2) and pins bit-exact
agreement between the two kernels — the packed kernel is also the golden
model for the Fig. 5 popcount tree.

Unlike the single-shot experiment harnesses, this is a genuine timing
benchmark (multiple rounds, pytest-benchmark statistics).
"""

import numpy as np

from repro.nn import pack_bits, packed_xnor_popcount, xnor_popcount

from _util import report

BATCH = 64
IN_FEATURES = 2520     # the EEG model's flattened feature width
OUT_FEATURES = 80


def _operands():
    rng = np.random.default_rng(0)
    x = rng.integers(0, 2, size=(BATCH, IN_FEATURES)).astype(np.uint8)
    w = rng.integers(0, 2, size=(OUT_FEATURES, IN_FEATURES)).astype(np.uint8)
    return x, w, pack_bits(x), pack_bits(w)


def bench_ablation_packed_kernel(benchmark):
    x, w, x_words, w_words = _operands()

    # Correctness first: the kernels must agree bit-exactly.
    reference = xnor_popcount(x, w)
    packed = packed_xnor_popcount(x_words, w_words, IN_FEATURES)
    assert np.array_equal(reference, packed)

    # Time the packed kernel (including input packing, as a deployment
    # would amortize weight packing but pay activation packing per batch).
    def packed_layer():
        return packed_xnor_popcount(pack_bits(x), w_words, IN_FEATURES)

    result = benchmark(packed_layer)
    assert np.array_equal(result, reference)

    # One-shot comparison timing for the report (pytest-benchmark times
    # only one callable per test).
    import time
    t0 = time.perf_counter()
    for _ in range(10):
        xnor_popcount(x, w)
    matmul_s = (time.perf_counter() - t0) / 10
    t0 = time.perf_counter()
    for _ in range(10):
        packed_layer()
    packed_s = (time.perf_counter() - t0) / 10

    words = -(-IN_FEATURES // 64)
    text = (
        "XTRA10 — packed-word XNOR kernel on the EEG classifier layer "
        f"({BATCH}x{IN_FEATURES} -> {OUT_FEATURES})\n"
        "=================================================================="
        "==========\n"
        f"matmul formulation : {matmul_s * 1e3:8.2f} ms/batch "
        f"({IN_FEATURES} int64 MACs per output)\n"
        f"packed formulation : {packed_s * 1e3:8.2f} ms/batch "
        f"({words} XNOR+popcount words per output)\n"
        f"speedup            : {matmul_s / packed_s:8.1f}x\n"
        f"storage            : {IN_FEATURES * 8:,} B/neuron (int64) -> "
        f"{words * 8:,} B/neuron (packed), "
        f"{IN_FEATURES * 8 / (words * 8):.0f}x smaller\n\n"
        "Both kernels agree bit-exactly; the 64-bits-per-word compression "
        "is the software\nanalogue of the paper's XNOR-gate argument.")
    report("ablation_packed_kernel", text)

    assert packed_s < matmul_s  # the whole point
