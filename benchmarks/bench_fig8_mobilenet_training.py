"""Fig. 8 — training a MobileNet with binarized classifier (top-1/top-5 per
epoch), compared against the original MobileNet.

Paper: MobileNet-224 with the two-layer binarized classifier trained from
scratch for 255 epochs on ImageNet-1K reaches top-1/top-5 within ~0.5
points of the original (70.0/89.1 vs 70.6/89.5), while fully binarizing the
network costs ~16 points (Table III).

Harness (bench scale): width-reduced MobileNet V1 on the synthetic SynthNet
image task, identical code path, per-epoch top-1/top-5 tracking.  Shape
checks: both configurations learn (final >> chance) and the binarized-
classifier variant lands within a few points of the original.
"""

import numpy as np

from repro.experiments import (TrainConfig, current_scale, image_dataset,
                               render_series, train_model)
from repro.models import BinarizationMode, MobileNetConfig, MobileNetV1

from _util import report


def _run():
    scale = current_scale()
    dataset = image_dataset(scale)
    n = len(dataset.inputs)
    order = np.random.default_rng(scale.seed).permutation(n)
    n_train = int(0.8 * n)
    tr, te = order[:n_train], order[n_train:]
    config = MobileNetConfig.reduced(
        n_classes=scale.image_classes, image_size=scale.image_size,
        width_multiplier=scale.mobilenet_width,
        n_blocks=scale.mobilenet_blocks)
    histories = {}
    for key, mode in [("MobileNet", BinarizationMode.REAL),
                      ("ours (bin classifier)",
                       BinarizationMode.BINARY_CLASSIFIER)]:
        model = MobileNetV1(config, mode=mode,
                            rng=np.random.default_rng(scale.seed))
        result = train_model(
            model, dataset.inputs[tr], dataset.labels[tr],
            TrainConfig(epochs=scale.mobilenet_epochs,
                        batch_size=scale.batch_size, lr=scale.mobilenet_lr,
                        seed=scale.seed, track_history=True,
                        eval_topk=(1, 5)),
            dataset.inputs[te], dataset.labels[te])
        histories[key] = result
    return scale, histories


def bench_fig8_mobilenet_training(benchmark):
    scale, histories = benchmark.pedantic(_run, rounds=1, iterations=1)

    epochs = list(range(1, scale.mobilenet_epochs + 1))
    series = {}
    for label, result in histories.items():
        series[f"Top-1 {label}"] = [h["top1"] for h in result.history]
        series[f"Top-5 {label}"] = [h["top5"] for h in result.history]
    text = render_series(
        f"Fig. 8 — MobileNet bin-classifier training (scale={scale.name}, "
        f"{scale.image_classes} classes, width "
        f"{scale.mobilenet_width})",
        "epoch", epochs, series, fmt="{:.3f}")
    from repro.viz import line_plot
    text += "\n\n" + line_plot(
        {label: (epochs, values) for label, values in series.items()},
        title="Fig. 8 (rendered)", x_label="epoch", y_label="accuracy")
    text += ("\n\nPaper (ImageNet-1K, 255 epochs): bin classifier converges "
             "to the original MobileNet's\ntop-1/top-5 (70.0/89.1 vs "
             "70.6/89.5).")
    report("fig8_mobilenet_training", text)

    chance = 1.0 / scale.image_classes
    final_real = histories["MobileNet"].history[-1]["top1"]
    final_bin = histories["ours (bin classifier)"].history[-1]["top1"]
    assert final_real > 2 * chance
    assert final_bin > 2 * chance
    # The binarized classifier tracks the original within a few points.
    assert final_bin >= final_real - 0.15
