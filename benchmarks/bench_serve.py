"""Serving claim — micro-batched coalescing beats per-request dispatch.

The PR 8 acceptance surface: the always-on daemon loads a golden fixture
artifact once and coalesces concurrent 1-window requests into batched
dispatches on the packed fast path.  The lever is dispatch amortization —
``BENCH_rram_hotpath.json`` shows a 256-batch scan costs barely more than
a 1-batch scan — so the headline is requests/sec through the *same
serving pipeline* with micro-batching on vs off:

* **baseline** (``one-request-per-dispatch``): the daemon with
  ``max_batch=1`` — every request pays its own full plan dispatch (the
  pre-daemon behaviour of every offline entry point);
* **micro-batched**: ``max_batch=256`` across a sweep of batch windows —
  the requests/sec-vs-window curve, with mean fill and p50/p95/p99
  response latency per point (shared ``repro.metrics`` helpers);
* **bit-identity**: every served response is compared against offline
  ``CompiledModel.scores`` on the same request alone — coalescing must
  never change a single bit (asserted, smoke and full);
* an **http** section measures the end-to-end stdlib transport (real
  sockets, concurrent keep-alive connections), which bounds what one
  process offers the wire; the pipeline numbers isolate the coalescing
  win from socket overhead.

Results are recorded in ``BENCH_serve.json`` at the repo root; the smoke
mode additionally asserts the saturated micro-batched speedup ≥ 2.5x
(machine-noise-safe floor; the committed full run shows the ≥ 5x claim).

Run:  python benchmarks/bench_serve.py [--smoke]
(--smoke: fewer requests, no JSON record — the CI mode.)
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import threading
import time

import numpy as np

ROOT = pathlib.Path(__file__).resolve().parents[1]
sys.path.insert(0, str(ROOT / "src"))
sys.path.insert(0, str(ROOT / "benchmarks"))

JSON_PATH = ROOT / "BENCH_serve.json"
FIXTURES = ROOT / "tests" / "fixtures" / "plans"

WINDOWS_US = (0.0, 50.0, 200.0, 1000.0)
# Per-model coalescing ceiling: the per-sample cost curve of the ECG
# conv1d front turns back up past ~64 rows (cache pressure), so its
# sweet spot is a smaller dispatch than the EEG front's.
MAX_BATCH = {"eeg": 256, "ecg": 64}


def _requests_for(artifact, count: int, seed: int = 0):
    """One-row synthetic requests from the artifact's recorded geometry
    (the deploy/client convention)."""
    rng = np.random.default_rng(seed)
    shape = artifact.input_shape
    if artifact.ops[0]["op"] == "bits":
        return [rng.integers(0, 2, (1,) + shape).astype(np.uint8)
                for _ in range(count)]
    return [rng.standard_normal((1,) + shape) for _ in range(count)]


def _drive(plan, artifact, requests, *, max_batch: int, window_us: float,
           feeders: int = 4, max_queue: int = 4096) -> dict:
    """Saturate one server configuration with an open-loop feeder pool.

    Feeders submit as fast as admission allows (retrying backpressure
    rejections), so the executor always has co-travellers to coalesce —
    the "saturated" regime of the acceptance criterion.  Returns
    requests/sec plus the daemon's own stats snapshot.
    """
    from repro.serve import PlanServer, QueueFull

    server = PlanServer(plan, max_batch=max_batch,
                        window=window_us * 1e-6, max_queue=max_queue,
                        input_shape=artifact.input_shape)
    handles = [None] * len(requests)
    cursor = iter(range(len(requests)))
    lock = threading.Lock()

    def feed():
        while True:
            with lock:
                index = next(cursor, None)
            if index is None:
                return
            while True:
                try:
                    handles[index] = server.submit(requests[index])
                    break
                except QueueFull:
                    time.sleep(50e-6)

    pool = [threading.Thread(target=feed, daemon=True)
            for _ in range(feeders)]
    t0 = time.perf_counter()
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()
    for handle in handles:
        if not handle.wait(60.0):
            raise RuntimeError("request timed out under load")
    elapsed = time.perf_counter() - t0
    server.close(drain=True)
    stats = server.stats.snapshot()
    return {"window_us": window_us, "max_batch": max_batch,
            "requests": len(requests),
            "requests_per_sec": len(requests) / elapsed,
            "mean_fill": stats["mean_fill"],
            "batches": stats["batches"],
            "latency_ms": stats["latency_ms"]}, handles


def _verify_bit_identity(plan, requests, handles, sample: int) -> int:
    """Served scores vs offline solo dispatch, exact float equality."""
    mismatches = 0
    step = max(1, len(requests) // sample)
    for index in range(0, len(requests), step):
        expected = plan.scores(requests[index])
        if not np.array_equal(expected, handles[index].scores):
            mismatches += 1
    return mismatches


def _bench_http(plan, artifact, requests, window_us: float,
                max_batch: int) -> dict:
    """End-to-end over real sockets: daemon + concurrent keep-alive
    clients in one process (the transport ceiling, not the kernel one)."""
    from repro.serve import HttpFront, PlanServer, fire

    server = PlanServer(plan, max_batch=max_batch,
                        window=window_us * 1e-6, max_queue=4096,
                        input_shape=artifact.input_shape)
    front = HttpFront(server, port=0).start()
    t0 = time.perf_counter()
    responses = fire(front.url, requests, threads=8)
    elapsed = time.perf_counter() - t0
    mismatches = sum(
        0 if np.array_equal(plan.scores(request), response["scores"])
        else 1 for request, response in zip(requests, responses))
    stats = server.stats.snapshot()
    front.shutdown(drain=True)
    return {"window_us": window_us, "requests": len(requests),
            "requests_per_sec": len(requests) / elapsed,
            "mean_fill": stats["mean_fill"],
            "mismatches": mismatches}


def _bench_model(name: str, smoke: bool) -> dict:
    from repro.io import load_compiled, load_plan

    artifact = load_plan(FIXTURES / f"{name}_full_binary.npz")
    plan = load_compiled(artifact, backend="packed")
    max_batch = MAX_BATCH[name]
    n_requests = 512 if smoke else 4096
    requests = _requests_for(artifact, n_requests)
    plan.predict(requests[0])                      # warm the kernels

    # One-request-per-dispatch baseline: same pipeline, no coalescing.
    baseline_n = min(n_requests, 256 if smoke else 1024)
    baseline, handles = _drive(plan, artifact, requests[:baseline_n],
                               max_batch=1, window_us=0.0)
    mismatches = _verify_bit_identity(plan, requests[:baseline_n],
                                      handles, sample=32)

    curve = []
    for window_us in (WINDOWS_US[:2] if smoke else WINDOWS_US):
        point, handles = _drive(plan, artifact, requests,
                                max_batch=max_batch, window_us=window_us)
        mismatches += _verify_bit_identity(plan, requests, handles,
                                           sample=64)
        point["speedup_vs_baseline"] = (point["requests_per_sec"]
                                        / baseline["requests_per_sec"])
        curve.append(point)
        print(f"  {name} window {window_us:6.0f} us: "
              f"{point['requests_per_sec']:8.0f} req/s "
              f"(fill {point['mean_fill']:6.1f}, "
              f"p99 {point['latency_ms']['p99']:7.2f} ms, "
              f"{point['speedup_vs_baseline']:4.1f}x baseline)")

    http = _bench_http(plan, artifact,
                       requests[:128 if smoke else 512],
                       window_us=200.0, max_batch=max_batch)
    mismatches += http.pop("mismatches")

    saturated = max(point["speedup_vs_baseline"] for point in curve)
    print(f"  {name} baseline {baseline['requests_per_sec']:.0f} req/s; "
          f"saturated micro-batched speedup {saturated:.2f}x; "
          f"http {http['requests_per_sec']:.0f} req/s; "
          f"{mismatches} mismatches")
    return {"baseline_one_request_per_dispatch": baseline,
            "micro_batched": curve, "http": http,
            "saturated_speedup": saturated, "mismatches": mismatches}


def main(smoke: bool = False) -> None:
    results = {}
    for name in ("eeg", "ecg"):
        print(f"{name} fixture artifact:")
        results[name] = _bench_model(name, smoke)

    total_mismatches = sum(r["mismatches"] for r in results.values())
    assert total_mismatches == 0, (
        f"{total_mismatches} served responses differ from offline "
        "predict — coalescing must be bit-exact")
    if smoke:
        assert results["eeg"]["saturated_speedup"] >= 2.5, (
            f"eeg micro-batched speedup "
            f"{results['eeg']['saturated_speedup']:.2f}x under the "
            "2.5x smoke floor")
        print("smoke OK: bit-identical under load, coalescing speedup "
              f"{results['eeg']['saturated_speedup']:.2f}x")
        return
    record = {
        "bench": "serve",
        "max_batch": dict(MAX_BATCH),
        "windows_us": list(WINDOWS_US),
        "models": results,
        "headline": {
            "eeg_saturated_speedup": results["eeg"]["saturated_speedup"],
            "ecg_saturated_speedup": results["ecg"]["saturated_speedup"],
        },
    }
    JSON_PATH.write_text(json.dumps(record, indent=2) + "\n")
    print(f"\nwrote {JSON_PATH}")


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="fewer requests, assertions only, no JSON "
                             "record (CI mode)")
    args = parser.parse_args()
    main(args.smoke)
