"""Throughput claim XTRA16 — trial-batched Monte-Carlo engine.

The paper's robustness evidence (Fig. 4 bit-error rate vs endurance,
§II-B sense-offset tolerance) is Monte-Carlo: many noisy read trials over
the same programmed weights.  This script measures the trial-batched
engine (:mod:`repro.rram.mc` + the trial axis on the array/controller
read paths) and the per-worker programmed-plan cache
(:func:`repro.experiments.executor.cached_plan`) against the per-trial
baseline those experiments used to pay, and verifies the engine's two
contracts:

* **throughput** — a Fig. 4-style BER grid (cycles x mode, ``TRIALS``
  read trials per point) runs >=5x faster than the per-trial baseline
  that rebuilds and programs the array for every trial (the historic
  sweep-point shape: one ``ber_point`` call per trial);
* **bit-identity** — the trial-batched statistics are bit-identical to a
  serial per-trial read loop over the same child RNG streams, and a
  sweep evaluated against a warm plan cache writes a byte-identical
  JSONL result file to a cold-cache run.

Results are recorded in ``BENCH_mc_trials.json`` at the repo root.

Run:  python benchmarks/bench_mc_trials.py [--smoke]
(--smoke: tiny grid, no timing assertions, no JSON record — the CI mode.)
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
import tempfile
import time

import numpy as np

ROOT = pathlib.Path(__file__).resolve().parents[1]
sys.path.insert(0, str(ROOT / "src"))
sys.path.insert(0, str(ROOT / "benchmarks"))

JSON_PATH = ROOT / "BENCH_mc_trials.json"


def _fig4_grid(n_cycles: int, n_cells: int, trials: int) -> list[dict]:
    from repro.experiments import grid
    return grid(cycles=[int(c) for c in np.geomspace(1e8, 7e8, n_cycles)],
                mode=("1T1R", "2T2R"), n_cells=(n_cells,), seed=(0,),
                trials=(trials,))


def _per_trial_baseline(points: list[dict]) -> list[dict]:
    """The historic Monte-Carlo shape: every trial rebuilds its array.

    For each grid point, trial ``t`` re-creates, wears and programs the
    array from the root seed (deterministic, so every rebuild programs
    identical resistances), then runs one serial noisy read on child
    stream ``t`` — the same streams the engine uses, so the per-trial
    error counts must be bit-identical to the trial-batched run.
    """
    from repro.experiments.workloads import _cell_geometry
    from repro.rram import RRAMArray, trial_streams

    records = []
    for point in points:
        rows, cols = _cell_geometry(point["n_cells"])
        streams = trial_streams(point["seed"], point["trials"])
        per_trial = np.empty(point["trials"])
        for t, stream in enumerate(streams):
            rng = np.random.default_rng(point["seed"])
            array = RRAMArray(rows, cols, rng=rng, mode=point["mode"])
            array.wear(int(point["cycles"]) - 1)
            bits = rng.integers(0, 2, (rows, cols)).astype(np.uint8)
            array.program(bits)
            per_trial[t] = (array.read_all(rng=stream) != bits).sum() \
                / (rows * cols)
        records.append({"params": dict(point),
                        "metrics": {"ber": float(per_trial.mean()),
                                    "ber_std": float(per_trial.std()),
                                    "cells": float(rows * cols)}})
    return records


def main(smoke: bool = False) -> None:
    from _util import report
    from repro.experiments import Sweep, clear_plan_cache, plan_cache_stats
    from repro.experiments.workloads import ber_point, rram_inference_point

    n_cycles = 2 if smoke else 8
    n_cells = 256 if smoke else 4096
    trials = 8 if smoke else 64
    points = _fig4_grid(n_cycles, n_cells, trials)

    # --- throughput: engine vs per-trial rebuild baseline ---------------
    t0 = time.perf_counter()
    baseline_records = _per_trial_baseline(points)
    baseline_s = time.perf_counter() - t0

    clear_plan_cache()
    t0 = time.perf_counter()
    engine_records = [{"params": dict(p), "metrics": ber_point(**p)}
                      for p in points]
    engine_s = time.perf_counter() - t0
    speedup = baseline_s / engine_s

    # --- bit-identity: batched vs per-trial baseline statistics ---------
    stats_identical = [r["metrics"] for r in baseline_records] == \
        [r["metrics"] for r in engine_records]

    # --- plan cache: warm sweep byte-identical to cold sweep ------------
    sigma_points = [{"sigma": round(s, 3), "seed": 0, "trials": trials}
                    for s in np.linspace(0.0, 2.5, 4 if smoke else 8)]
    with tempfile.TemporaryDirectory(prefix="mc_trials_") as tmp_name:
        tmp = pathlib.Path(tmp_name)
        clear_plan_cache()
        cold = Sweep(tmp / "cold.jsonl", rram_inference_point)
        cold.run_all(sigma_points)
        cold_stats = plan_cache_stats()
        warm = Sweep(tmp / "warm.jsonl", rram_inference_point)
        warm.run_all(sigma_points)    # cache already programmed
        cache_identical = (tmp / "warm.jsonl").read_bytes() == \
            (tmp / "cold.jsonl").read_bytes()

    text = (
        "XTRA16 — trial-batched Monte-Carlo engine\n"
        "=========================================\n"
        f"grid: {len(points)} BER points ({n_cycles} cycle checkpoints x "
        f"2 modes), {n_cells} cells, {trials} trials/point\n"
        f"  per-trial rebuild baseline : {baseline_s:7.2f} s\n"
        f"  trial-batched engine       : {engine_s:7.2f} s\n"
        f"  speedup                    : {speedup:7.2f}x\n"
        f"  batched stats bit-identical to per-trial baseline : "
        f"{stats_identical}\n"
        f"sigma sweep plan cache: {cold_stats['hits']} hits / "
        f"{cold_stats['misses']} miss(es) on the cold run; warm sweep "
        f"byte-identical : {cache_identical}\n")
    report("mc_trials", text)

    assert stats_identical, "trial-batched stats diverged from baseline"
    assert cache_identical, "cached-plan sweep diverged from cold run"
    if smoke:
        return

    result = {
        "grid_points": len(points),
        "trials_per_point": trials,
        "n_cells": n_cells,
        "workload": "repro.experiments.workloads.ber_point",
        "per_trial_baseline_s": round(baseline_s, 3),
        "engine_s": round(engine_s, 3),
        "speedup": round(speedup, 2),
        "stats_bit_identical": stats_identical,
        "cache_byte_identical": cache_identical,
        "plan_cache": cold_stats,
        "cores": len(os.sched_getaffinity(0)),
    }
    JSON_PATH.write_text(json.dumps(result, indent=2) + "\n")
    assert speedup >= 5.0, result


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="tiny grid, no timing assertions, no JSON")
    main(parser.parse_args().smoke)
