"""Ablation XTRA2 — BNN accuracy under residual weight bit errors.

The paper's design avoids ECC because BNN inference tolerates the residual
2T2R error rates (§II-B; quantified in its refs. [15], [16], which report
BNNs tolerating BERs orders of magnitude above the 2T2R residual).

Harness: train a binarized-classifier ECG model once, fold it, then inject
weight bit errors at rates spanning the 2T2R regime (1e-6..1e-4), the 1T1R
regime (1e-3..1e-2), and beyond; measure accuracy (averaged over several
corruption draws).  Shape checks: accuracy is flat through the 2T2R regime
and degrades only at BERs orders of magnitude higher.
"""

import numpy as np

from repro.data import ECGConfig, make_ecg_dataset
from repro.experiments import TrainConfig, render_series, train_model
from repro.models import BinarizationMode, ECGNet
from repro.rram import classifier_input_bits, corrupt_folded, fold_classifier

from _util import report

BERS = (0.0, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.5)
DRAWS = 5


def _run():
    dataset = make_ecg_dataset(ECGConfig(n_trials=300, n_samples=300,
                                         noise_amplitude=0.05, seed=13))
    n_train = 240
    model = ECGNet(mode=BinarizationMode.BINARY_CLASSIFIER, n_samples=300,
                   base_filters=8, rng=np.random.default_rng(3))
    model.fit_input_norm(dataset.inputs[:n_train])
    train_model(model, dataset.inputs[:n_train], dataset.labels[:n_train],
                TrainConfig(epochs=40, batch_size=16, lr=2e-3, seed=4))
    model.eval()
    hidden, output = fold_classifier(model)
    bits = classifier_input_bits(model, dataset.inputs[n_train:])
    labels = dataset.labels[n_train:]

    rng = np.random.default_rng(17)
    accuracies = []
    for ber in BERS:
        draws = []
        for _ in range(DRAWS):
            h = corrupt_folded(hidden[0], ber, rng)
            o = corrupt_folded(output, ber, rng)
            pred = o.predict(h.forward_bits(bits))
            draws.append(float((pred == labels).mean()))
        accuracies.append(float(np.mean(draws)))
    return accuracies


def bench_ablation_fault_injection(benchmark):
    accuracies = benchmark.pedantic(_run, rounds=1, iterations=1)
    text = render_series(
        "XTRA2 — deployed ECG classifier accuracy vs weight bit error rate",
        "BER", [f"{b:.0e}" if b else "0" for b in BERS],
        {"accuracy": accuracies}, fmt="{:.3f}")
    text += ("\n\n2T2R residual BER sits at 1e-6..4e-4 over the chip's "
             "life (Fig. 4): accuracy there is\nindistinguishable from the "
             "error-free deployment, which is why the design needs no "
             "ECC.")
    report("ablation_fault_injection", text)

    clean = accuracies[0]
    ber_index = {b: i for i, b in enumerate(BERS)}
    # Flat through the whole 2T2R regime.
    for ber in (1e-6, 1e-5, 1e-4):
        assert accuracies[ber_index[ber]] >= clean - 0.03, ber
    # Full weight randomization (BER 0.5) destroys the classifier: the
    # stored/read bit correlation 1 - 2*BER reaches zero.
    assert accuracies[ber_index[0.5]] < clean - 0.15
