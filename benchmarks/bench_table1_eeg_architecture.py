"""Table I — EEG classification network architecture.

Regenerates the layer table (kernels, padding, output shapes) from the
implemented model at the paper's full input geometry (64 electrodes x 960
samples) and asserts every output shape matches the published row.  The
benchmark times one full forward pass at paper scale.
"""

import numpy as np

from repro.experiments import render_table
from repro.models import EEGNet
from repro.tensor import Tensor, no_grad

from _util import report

PAPER_SHAPES = [
    (961, 64, 40),
    (961, 1, 40),
    (63, 1, 40),
    (2520,),
    (80,),
    (2,),
]


def bench_table1_eeg_architecture(benchmark):
    model = EEGNet(rng=np.random.default_rng(0)).eval()
    x = np.random.default_rng(1).standard_normal((1, 64, 960))

    def forward():
        with no_grad():
            return model(Tensor(x)).data

    out = benchmark(forward)
    assert out.shape == (1, 2)

    rows = [summary.row() for summary in model.layer_summaries()]
    text = render_table(
        "Table I — EEG classification network architecture",
        ["Layer", "Kernels", "Padding", "Output shape", "Params"], rows)
    total = sum(s.params for s in model.layer_summaries())
    text += (f"\n\nTotal parameters: {total:,} (paper Table IV: 0.31M); "
             f"classifier fraction "
             f"{model.classifier_parameters() / total:.0%}")
    report("table1_eeg_architecture", text)

    for summary, expected in zip(model.layer_summaries(), PAPER_SHAPES):
        assert summary.output_shape == expected, summary.name
