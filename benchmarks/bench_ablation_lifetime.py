"""Ablation XTRA13 — deployment lifetime: wear-out vs error tolerance.

Composes the repository's two reliability results into the system-level
number a designer needs: Fig. 4's BER-vs-cycles device model and the
measured accuracy-vs-BER tolerance of a deployed classifier (XTRA2's
protocol) combine into *accuracy as a function of programming cycles*, and
from it the usable write-cycle lifetime under an accuracy budget — with
1T1R vs 2T2R storage.

Shape checks: accuracy declines monotonically with wear for both read
schemes; the 2T2R chip sustains the accuracy budget for at least an order
of magnitude more cycles (the lifetime value of the paper's differential
design); tightening the budget shortens life.
"""

import numpy as np

from repro.analysis import interpolate_accuracy, usable_cycles
from repro.data import ECGConfig, make_ecg_dataset
from repro.experiments import TrainConfig, render_table, train_model
from repro.models import BinarizationMode, ECGNet
from repro.rram import (analytic_ber_1t1r, analytic_ber_2t2r,
                        classifier_input_bits, corrupt_folded,
                        DeviceParameters, fold_classifier)

from _util import report

INJECTION_BERS = (0.0, 1e-5, 1e-4, 1e-3, 1e-2, 0.05, 0.2, 0.5)
DRAWS = 4
BUDGET_DROPS = (0.01, 0.03, 0.10)   # tolerated accuracy loss vs clean


def _measure_tolerance():
    """XTRA2's protocol, condensed: accuracy at each injected BER."""
    dataset = make_ecg_dataset(ECGConfig(n_trials=300, n_samples=300,
                                         noise_amplitude=0.05, seed=71))
    n_train = 240
    model = ECGNet(mode=BinarizationMode.BINARY_CLASSIFIER, n_samples=300,
                   base_filters=8, rng=np.random.default_rng(72))
    model.fit_input_norm(dataset.inputs[:n_train])
    train_model(model, dataset.inputs[:n_train], dataset.labels[:n_train],
                TrainConfig(epochs=40, batch_size=16, lr=2e-3, seed=73))
    model.eval()
    hidden, output = fold_classifier(model)
    bits = classifier_input_bits(model, dataset.inputs[n_train:])
    labels = dataset.labels[n_train:]

    rng = np.random.default_rng(74)
    accuracies = []
    for ber in INJECTION_BERS:
        draws = []
        for _ in range(DRAWS):
            h = corrupt_folded(hidden[0], ber, rng)
            o = corrupt_folded(output, ber, rng)
            pred = o.predict(h.forward_bits(bits))
            draws.append(float((pred == labels).mean()))
        accuracies.append(float(np.mean(draws)))
    return np.array(accuracies)


def _run():
    accuracies = _measure_tolerance()
    acc_of_ber = interpolate_accuracy(np.array(INJECTION_BERS), accuracies)
    params = DeviceParameters()
    clean = accuracies[0]

    rows = []
    lifetimes = {}
    for drop in BUDGET_DROPS:
        budget = clean - drop
        life_1t1r = usable_cycles(
            budget, lambda c: analytic_ber_1t1r(params, c), acc_of_ber,
            cycle_range=(1e7, 1e14))
        life_2t2r = usable_cycles(
            budget, lambda c: analytic_ber_2t2r(params, c), acc_of_ber,
            cycle_range=(1e7, 1e14))
        lifetimes[drop] = (life_1t1r, life_2t2r)
        gain = (life_2t2r / life_1t1r if 0 < life_1t1r < float("inf")
                else float("inf"))
        rows.append((f"-{drop:.0%}", f"{budget:.3f}",
                     f"{life_1t1r:.2e}", f"{life_2t2r:.2e}",
                     f"{gain:.0f}x" if gain != float("inf") else "inf"))
    return clean, rows, lifetimes


def bench_ablation_lifetime(benchmark):
    clean, rows, lifetimes = benchmark.pedantic(_run, rounds=1,
                                                iterations=1)

    text = render_table(
        f"XTRA13 — usable write-cycle lifetime of the deployed ECG "
        f"classifier (clean accuracy {clean:.3f})",
        ["Accuracy budget", "Threshold", "1T1R lifetime (cycles)",
         "2T2R lifetime (cycles)", "2T2R gain"], rows)
    text += ("\n\nComposition of Fig. 4's wear model with the measured "
             "BNN error tolerance: the\ndifferential 2T2R read converts "
             "the ~100x BER margin into order(s) of magnitude of\n"
             "additional write endurance at any accuracy budget — the "
             "system-level payoff of the\npaper's ECC-less design.")
    report("ablation_lifetime", text)

    for drop, (life_1t1r, life_2t2r) in lifetimes.items():
        assert life_2t2r >= 5 * life_1t1r or life_2t2r == float("inf"), drop
    # Tighter budgets mean shorter (or equal) life.
    drops = sorted(lifetimes)
    lives_2t2r = [lifetimes[d][1] for d in drops]
    assert lives_2t2r == sorted(lives_2t2r)
