"""Table II — ECG classification network architecture.

Regenerates the layer table from the implemented model at the paper's input
geometry (12 leads x 750 samples at 250 Hz) and asserts every output shape
matches the published row, including the 5152-feature flatten.  The
benchmark times one full forward pass at paper scale.
"""

import numpy as np

from repro.experiments import render_table
from repro.models import ECGNet
from repro.tensor import Tensor, no_grad

from _util import report

PAPER_SHAPES = [
    (738, 1, 32),
    (369, 1, 32),
    (359, 1, 32),
    (179, 1, 32),
    (171, 1, 32),
    (165, 1, 32),
    (161, 1, 32),
    (5152,),
    (75,),
    (2,),
]


def bench_table2_ecg_architecture(benchmark):
    rng = np.random.default_rng(0)
    model = ECGNet(rng=rng)
    model.fit_input_norm(rng.standard_normal((8, 12, 750)))
    model.eval()
    x = rng.standard_normal((1, 12, 750))

    def forward():
        with no_grad():
            return model(Tensor(x)).data

    out = benchmark(forward)
    assert out.shape == (1, 2)

    rows = [summary.row() for summary in model.layer_summaries()]
    text = render_table(
        "Table II — ECG classification network architecture",
        ["Layer", "Kernels", "Padding", "Output shape", "Params"], rows)
    text += (f"\n\nConv parameters: {model.feature_parameters():,}; "
             f"classifier parameters: {model.classifier_parameters():,}"
             "\n(The paper's Table IV reports 0.27M classifier parameters; "
             "the architecture of its Table II"
             "\nimplies 5152 x 75 + 75 x 2 = 386,625 - we report the exact "
             "count and discuss the"
             "\ndiscrepancy in EXPERIMENTS.md.)")
    report("table2_ecg_architecture", text)

    for summary, expected in zip(model.layer_summaries(), PAPER_SHAPES):
        assert summary.output_shape == expected, summary.name
    assert model.flat_features == 5152
