"""Throughput claim XTRA14 — parallel sweep execution.

The paper's evaluation is built from parameter sweeps (Fig. 4 programming
cycles, Fig. 7 filter augmentation, Fig. 8 training epochs) whose points
are independent by construction.  This script measures the process-pool
executor (:mod:`repro.experiments.executor`) against the serial loop on a
16-point grid and verifies the two halves of its contract:

* **throughput** — wall-clock speedup at ``jobs=4`` on latency-bound
  points (the regime where pool execution overlaps waiting even on a
  single core; CPU-bound points additionally scale with cores);
* **integrity** — a parallel run, and a parallel run crashed mid-grid and
  resumed, both produce byte-identical JSONL result files to the serial
  run of the same grid.

Results are recorded in ``BENCH_sweep_parallel.json`` at the repo root.

Run:  python benchmarks/bench_sweep_parallel.py [--smoke]
(--smoke: tiny grid, no timing assertions, no JSON record — the CI mode.)
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
import tempfile
import time

ROOT = pathlib.Path(__file__).resolve().parents[1]
sys.path.insert(0, str(ROOT / "src"))
sys.path.insert(0, str(ROOT / "benchmarks"))

JSON_PATH = ROOT / "BENCH_sweep_parallel.json"


def _grid(n_points: int, blocking_ms: float, flag: pathlib.Path,
          fail_at: int) -> list[dict]:
    from repro.experiments import grid
    return grid(index=list(range(n_points)), seed=(0,),
                blocking_ms=(blocking_ms,), spin_elems=(50_000,),
                fail_flag=(str(flag),), fail_at=(fail_at,))


def main(smoke: bool = False) -> None:
    from repro.experiments import Sweep, run_parallel
    from repro.experiments.workloads import latency_point
    from _util import report

    n_points = 6 if smoke else 16
    blocking_ms = 5.0 if smoke else 250.0
    jobs = 2 if smoke else 4
    fail_at = n_points // 2

    tmp = pathlib.Path(tempfile.mkdtemp(prefix="sweep_parallel_"))
    flag = tmp / "crash.flag"
    points = _grid(n_points, blocking_ms, flag, fail_at)

    # Serial baseline (also the byte-level reference file).
    serial = Sweep(tmp / "serial.jsonl", latency_point)
    t0 = time.perf_counter()
    serial.run_all(points)
    serial_s = time.perf_counter() - t0

    # Parallel run of the same grid.
    parallel = Sweep(tmp / "parallel.jsonl", latency_point)
    t0 = time.perf_counter()
    run_parallel(parallel, points, jobs=jobs)
    parallel_s = time.perf_counter() - t0
    speedup = serial_s / parallel_s

    serial_bytes = (tmp / "serial.jsonl").read_bytes()
    parallel_identical = (tmp / "parallel.jsonl").read_bytes() == serial_bytes

    # Crash mid-grid, then resume: the flag file makes every point from
    # ``fail_at`` on raise in the workers; the parent persists the
    # preceding records and re-raises.  Removing the flag and re-running
    # the same grid must complete the file to the serial bytes.
    crashed = Sweep(tmp / "resumed.jsonl", latency_point)
    flag.touch()
    crash_seen = False
    try:
        run_parallel(crashed, points, jobs=jobs)
    except RuntimeError:
        crash_seen = True
    flag.unlink()
    persisted_at_crash = len(Sweep(tmp / "resumed.jsonl", latency_point))
    resumed = Sweep(tmp / "resumed.jsonl", latency_point)
    run_parallel(resumed, points, jobs=jobs)
    resume_identical = (tmp / "resumed.jsonl").read_bytes() == serial_bytes

    text = (
        "XTRA14 — parallel sweep execution\n"
        "=================================\n"
        f"grid: {n_points} points, {blocking_ms:.0f} ms blocking latency "
        f"+ compute per point\n"
        f"  serial          : {serial_s:6.2f} s\n"
        f"  jobs={jobs}          : {parallel_s:6.2f} s\n"
        f"  speedup         : {speedup:6.2f}x\n"
        f"  parallel file byte-identical to serial : {parallel_identical}\n"
        f"  crash at point {fail_at}: {persisted_at_crash} records "
        "persisted, resume completes byte-identical : "
        f"{resume_identical}\n")
    report("sweep_parallel", text)

    assert crash_seen, "simulated crash did not raise"
    assert parallel_identical, "parallel result file diverged from serial"
    assert resume_identical, "resumed result file diverged from serial"
    assert 0 < persisted_at_crash < n_points, persisted_at_crash
    if smoke:
        return

    result = {
        "grid_points": n_points,
        "jobs": jobs,
        "point_model": {
            "workload": "repro.experiments.workloads.latency_point",
            "blocking_ms": blocking_ms,
            "spin_elems": 50_000,
        },
        "serial_s": round(serial_s, 3),
        "parallel_s": round(parallel_s, 3),
        "speedup": round(speedup, 2),
        "parallel_byte_identical": parallel_identical,
        "resume_byte_identical": resume_identical,
        "records_persisted_at_crash": persisted_at_crash,
        "cores": len(os.sched_getaffinity(0)),
    }
    JSON_PATH.write_text(json.dumps(result, indent=2) + "\n")
    assert speedup >= 2.5, result


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="tiny grid, no timing assertions, no JSON")
    main(parser.parse_args().smoke)
