"""Ablation XTRA3 — Eq. (3) / Fig. 5 fidelity: the in-memory pipeline must
be bit-exact with the software model on ideal hardware, and nearly exact on
fresh realistic hardware.

This is the deployment contract of the whole paper: training happens
off-chip in floating point; what the chip executes is XNOR sensing +
popcount + folded thresholds.  Any mismatch here would invalidate every
accuracy number reported for the hardware.

Harness: train a binarized-classifier ECG model, deploy twice (ideal and
realistic device parameters), compare predictions sample by sample; also
benchmark in-memory inference throughput.
"""

import numpy as np

from repro.data import ECGConfig, make_ecg_dataset
from repro.experiments import TrainConfig, render_table, train_model
from repro.models import BinarizationMode, ECGNet
from repro.rram import (AcceleratorConfig, classifier_input_bits,
                        deploy_classifier)
from repro.tensor import Tensor, no_grad

from _util import report


def _prepare():
    dataset = make_ecg_dataset(ECGConfig(n_trials=200, n_samples=300,
                                         noise_amplitude=0.05, seed=23))
    model = ECGNet(mode=BinarizationMode.BINARY_CLASSIFIER, n_samples=300,
                   base_filters=8, rng=np.random.default_rng(6))
    model.fit_input_norm(dataset.inputs)
    train_model(model, dataset.inputs, dataset.labels,
                TrainConfig(epochs=25, batch_size=16, lr=2e-3, seed=5))
    model.eval()
    with no_grad():
        software = model(Tensor(dataset.inputs)).data.argmax(1)
    bits = classifier_input_bits(model, dataset.inputs)
    ideal = deploy_classifier(model, AcceleratorConfig(ideal=True))
    realistic = deploy_classifier(model, AcceleratorConfig())
    return dataset, software, bits, ideal, realistic


def bench_ablation_accelerator_fidelity(benchmark):
    dataset, software, bits, ideal, realistic = _prepare()

    ideal_pred = ideal.predict(bits)
    realistic_pred = realistic.predict(bits)

    # Benchmark steady-state in-memory inference on the realistic hardware.
    benchmark(lambda: realistic.predict(bits[:32]))

    ideal_agree = float((ideal_pred == software).mean())
    real_agree = float((realistic_pred == software).mean())
    text = render_table(
        "XTRA3 — hardware/software fidelity of the Fig. 5 pipeline",
        ["deployment", "agreement with software", "devices", "sense ops"],
        [["ideal devices", f"{ideal_agree:.1%}", f"{ideal.n_devices:,}",
          f"{ideal.sense_ops:,}"],
         ["realistic fresh devices", f"{real_agree:.1%}",
          f"{realistic.n_devices:,}", f"{realistic.sense_ops:,}"]])
    text += ("\n\nIdeal hardware is bit-exact by construction (Eq. 3 + "
             "batch-norm folding);\nfresh realistic devices read at BER "
             "~1e-6, so disagreements are rare.")
    report("ablation_accelerator_fidelity", text)

    assert ideal_agree == 1.0
    assert real_agree > 0.97
