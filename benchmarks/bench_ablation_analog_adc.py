"""Ablation XTRA7 — the analog-coding alternative of §II-A, measured.

The paper rejects analog weight coding because, although it needs "only two
devices per weight", it requires "complex peripherals such as
analog-to-digital and digital-to-analog converters with their associated
high area overhead" (§II-A, discussing ISAAC [18] and PRIME [19]).

Harness: deploy a real-weight matrix on the analog crossbar model and sweep
ADC resolution, measuring (a) the matrix-vector relative error, and (b) the
converter energy/area against the 1-bit PCSA periphery the paper's binary
design uses.  Shape checks: error falls monotonically with ADC bits; error
grows with fan-in at fixed resolution (the full-scale tracks worst-case
column current); and at the 8-bit operating point the converter energy is
orders of magnitude above the PCSA read energy.
"""

import numpy as np

from repro.experiments import render_table
from repro.rram import AnalogConfig, AnalogCrossbar, EnergyModel, \
    PeripheryModel

from _util import report

ADC_BITS = (4, 6, 8, 10, 12)
FAN_INS = (32, 128, 512)
OUT_FEATURES = 32


def _sweep():
    rows = {}
    rng = np.random.default_rng(0)
    for n_in in FAN_INS:
        weights = rng.normal(size=(OUT_FEATURES, n_in))
        x = rng.normal(size=(64, n_in))
        errors = []
        for bits in ADC_BITS:
            cfg = AnalogConfig(adc_bits=bits, dac_bits=8,
                               programming_sigma=0.05,
                               read_noise_sigma=0.01)
            xbar = AnalogCrossbar(weights, cfg, np.random.default_rng(1))
            errors.append(xbar.relative_error(weights, x))
        rows[n_in] = errors
    return rows


def bench_ablation_analog_adc(benchmark):
    errors_by_fanin = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    periphery = PeripheryModel()
    energy_model = EnergyModel()
    table_rows = []
    for bits in ADC_BITS:
        i = ADC_BITS.index(bits)
        energy = periphery.matvec_energy_pj(128, OUT_FEATURES, 8, bits)
        area = periphery.matvec_area_um2(128, OUT_FEATURES, 8, bits,
                                         adcs_shared=8)
        table_rows.append(
            (str(bits),
             *(f"{errors_by_fanin[n][i]:.3f}" for n in FAN_INS),
             f"{energy:.0f}", f"{area:.0f}"))
    pcsa_pj = 128 * OUT_FEATURES * energy_model.xnor_pcsa_sense_fj / 1000.0

    text = render_table(
        "XTRA7 — analog crossbar matvec error and converter cost vs ADC "
        "resolution",
        ["ADC bits"] + [f"err @{n}-in" for n in FAN_INS]
        + ["energy (pJ, 128-in)", "area (um^2)"],
        table_rows)
    text += (f"\n\nBinary 2T2R reference for the same 128x{OUT_FEATURES} "
             f"matvec: {pcsa_pj:.1f} pJ of XNOR-PCSA sensing, zero "
             "converter area."
             "\nPaper §II-A: two devices per weight, but the ADC/DAC "
             "periphery dominates — the reason the paper chooses binary "
             "in-memory reads.")
    report("ablation_analog_adc", text)

    # Error falls monotonically with resolution at every fan-in.
    for n_in, errors in errors_by_fanin.items():
        assert errors == sorted(errors, reverse=True), n_in
    # Wider columns are harder at fixed resolution (compare at 6 bits,
    # where quantization dominates the noise floor).
    idx6 = ADC_BITS.index(6)
    err_at_6 = [errors_by_fanin[n][idx6] for n in FAN_INS]
    assert err_at_6[0] < err_at_6[-1]
    # The 8-bit converter energy dwarfs the PCSA periphery.
    energy_8bit = periphery.matvec_energy_pj(128, OUT_FEATURES, 8, 8)
    assert energy_8bit > 30 * pcsa_pj
