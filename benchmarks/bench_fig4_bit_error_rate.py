"""Fig. 4 — mean bit error rate vs programming cycles.

Paper protocol: a 2T2R pair in a kilobit array is reprogrammed 7e8 times,
alternating complementary states; the weight is read through the on-chip
PCSA (2T2R curve) and each device is also sensed single-endedly (1T1R BL /
BLb curves).  Reported result: the 2T2R error rate is about two orders of
magnitude below 1T1R, both rising with wear.

Harness: Monte-Carlo device simulation at seven checkpoints from 1e8 to
7e8 cycles, with the closed-form Gaussian-tail prediction overlaid.  Shape
checks: all three curves rise monotonically; the 2T2R curve stays >= 10x
(and on geometric average ~100x) below 1T1R.
"""

import numpy as np

from repro.experiments import render_series
from repro.rram import (EnduranceExperiment, analytic_ber_1t1r,
                        analytic_ber_2t2r)

from _util import report

TRIALS = 600_000          # paper: 7e8 physical cycles; MC resolution 2e-6


def _run():
    exp = EnduranceExperiment(trials=TRIALS, seed=42)
    result = exp.run()
    analytic = {
        "1T1R analytic": analytic_ber_1t1r(exp.device, result.cycles),
        "2T2R analytic": analytic_ber_2t2r(exp.device, result.cycles,
                                           exp.sense.offset_sigma),
    }
    return exp, result, analytic


def bench_fig4_bit_error_rate(benchmark):
    exp, result, analytic = benchmark.pedantic(_run, rounds=1, iterations=1)

    text = render_series(
        "Fig. 4 — mean bit error rate vs programming cycles "
        f"({TRIALS:,} MC trials per point)",
        "cycles", [f"{c:.0e}" for c in result.cycles],
        {
            "1T1R BL": result.ber_1t1r_bl,
            "1T1R BLb": result.ber_1t1r_blb,
            "2T2R": result.ber_2t2r,
            **analytic,
        }, fmt="{:.2e}")
    ratio = analytic["1T1R analytic"] / analytic["2T2R analytic"]
    text += (f"\n\n1T1R/2T2R analytic ratio: {ratio.min():.0f}x .. "
             f"{ratio.max():.0f}x (geometric mean "
             f"{np.exp(np.mean(np.log(ratio))):.0f}x)"
             "\nPaper: 2T2R approximately two orders of magnitude below "
             "1T1R across the sweep.")
    from repro.viz import line_plot
    floor = 1.0 / TRIALS
    text += "\n\n" + line_plot(
        {"1T1R BL": (result.cycles, np.maximum(result.ber_1t1r_bl, floor)),
         "1T1R BLb": (result.cycles,
                      np.maximum(result.ber_1t1r_blb, floor)),
         "2T2R": (result.cycles, np.maximum(result.ber_2t2r, floor)),
         "2T2R analytic": (result.cycles, analytic["2T2R analytic"])},
        title="Fig. 4 (rendered; MC floor = 1/trials)", x_log=True,
        y_log=True, x_label="cycles", y_label="error rate")
    report("fig4_bit_error_rate", text)

    # Shape assertions (the paper's qualitative claims).
    assert np.all(np.diff(result.ber_1t1r_bl) > 0)
    assert np.all(np.diff(analytic["2T2R analytic"]) > 0)
    assert np.all(result.ber_2t2r <= result.ber_1t1r_bl)
    assert np.exp(np.mean(np.log(ratio))) > 50
