"""Shared benchmark reporting and record validation.

Each harness prints the paper-table/figure it regenerates and also writes it
to ``benchmarks/results/<name>.txt`` so the output survives pytest's capture
(run with ``-s`` to see it live).

Headline benchmarks additionally persist a machine-readable record at the
repo root (``BENCH_<name>.json``).  The records are heterogeneous by
design — each benchmark owns its shape — but every one must satisfy the
structural contract checked here: strict JSON (no NaN/Infinity leaves,
which Python's ``json`` happily emits and every other parser rejects), a
non-empty top-level object, snake_case string keys, and at least one
numeric metric.  ``python benchmarks/_util.py`` validates every committed
record (the CI step).
"""

from __future__ import annotations

import json
import pathlib
import re
import sys

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]

# Identifier-ish keys: cell topologies like "1T1R" are fine, anything
# with whitespace or punctuation soup is a serialization accident.
_KEY_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9_.+x-]*$")


def report(name: str, text: str) -> None:
    """Print a harness result and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n{text}\n")


def validate_bench_record(path: pathlib.Path) -> list[str]:
    """Structural problems of one ``BENCH_*.json`` record (empty = OK)."""
    problems: list[str] = []
    try:
        # parse_constant fires on NaN/Infinity/-Infinity — the tokens
        # json.dump writes for non-finite floats but strict JSON forbids.
        record = json.loads(path.read_text(), parse_constant=lambda t: (
            problems.append(f"non-finite number {t!r} in the record")))
    except (OSError, json.JSONDecodeError) as error:
        return [f"unreadable record: {error}"]
    if problems:
        return sorted(set(problems))
    if not isinstance(record, dict):
        return [f"top level must be a JSON object, got "
                f"{type(record).__name__}"]
    if not record:
        return ["record is empty"]

    numeric_leaves = 0

    def walk(node, trail: str) -> None:
        nonlocal numeric_leaves
        if isinstance(node, dict):
            for key, value in node.items():
                if not isinstance(key, str) or not _KEY_RE.match(key):
                    problems.append(f"bad key {key!r} at {trail or '.'}")
                walk(value, f"{trail}.{key}" if trail else str(key))
        elif isinstance(node, list):
            for index, value in enumerate(node):
                walk(value, f"{trail}[{index}]")
        elif isinstance(node, bool):
            pass
        elif isinstance(node, (int, float)):
            numeric_leaves += 1

    walk(record, "")
    if not numeric_leaves:
        problems.append("no numeric metric anywhere in the record")
    return problems


def check_bench_records(root: pathlib.Path | None = None) -> int:
    """Validate every ``BENCH_*.json`` at the repo root; returns the
    number of bad records (and prints each problem)."""
    root = root or REPO_ROOT
    records = sorted(root.glob("BENCH_*.json"))
    if not records:
        print(f"no BENCH_*.json records under {root}")
        return 1
    bad = 0
    for path in records:
        problems = validate_bench_record(path)
        if problems:
            bad += 1
            for problem in problems:
                print(f"{path.name}: {problem}")
        else:
            print(f"{path.name}: OK")
    return bad


if __name__ == "__main__":
    sys.exit(1 if check_bench_records() else 0)
