"""Shared benchmark reporting.

Each harness prints the paper-table/figure it regenerates and also writes it
to ``benchmarks/results/<name>.txt`` so the output survives pytest's capture
(run with ``-s`` to see it live).
"""

from __future__ import annotations

import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def report(name: str, text: str) -> None:
    """Print a harness result and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n{text}\n")
