"""Fig. 7 — cross-validated ECG accuracy vs BNN filter augmentation.

Paper: the all-binarized network at 1x filters trails the real-weight
network; increasing the number of convolution filters (2x..16x) closes part
of the gap but does not reach the real network, while the binarized-
classifier model matches the real one without any augmentation.

Harness (bench scale): the all-binarized network is swept over the
configured multipliers; the real-weight and binarized-classifier models are
evaluated at 1x as the reference lines they form in the figure.  Shape
checks: the BNN curve sits below the real line at 1x and the best augmented
BNN improves on the 1x BNN; the binarized classifier stays within noise of
the real line.
"""

from repro.experiments import EcgTask, cross_validate, render_series, \
    render_table
from repro.models import BinarizationMode

from _util import report


def _run():
    task = EcgTask()
    scale = task.scale
    cfg = task.train_config()
    dataset = task.dataset()
    sweep = {}
    for mult in scale.fig7_multipliers:
        res = cross_validate(
            task.model_factory(BinarizationMode.FULL_BINARY, mult),
            dataset, cfg, k=scale.ecg_folds, fit_hook=task.fit_hook)
        sweep[mult] = res
    references = {}
    for key, mode in [("real", BinarizationMode.REAL),
                      ("bin_classifier", BinarizationMode.BINARY_CLASSIFIER)]:
        references[key] = cross_validate(
            task.model_factory(mode, 1), dataset, cfg, k=scale.ecg_folds,
            fit_hook=task.fit_hook)
    return scale, sweep, references


def bench_fig7_filter_augmentation(benchmark):
    scale, sweep, references = benchmark.pedantic(_run, rounds=1,
                                                  iterations=1)
    mults = list(sweep)
    text = render_series(
        f"Fig. 7 — ECG accuracy vs filter augmentation (scale={scale.name},"
        f" {scale.ecg_folds}-fold CV)",
        "augmentation", [f"{m}x" for m in mults],
        {
            "All-Binarized": [sweep[m].mean for m in mults],
            "All-Binarized std": [sweep[m].std for m in mults],
        }, fmt="{:.3f}")
    text += "\n\n" + render_table(
        "Reference lines (1x filters)",
        ["model", "accuracy", "std"],
        [["Real Weights", f"{references['real'].mean:.3f}",
          f"{references['real'].std:.3f}"],
         ["Bin Classifier", f"{references['bin_classifier'].mean:.3f}",
          f"{references['bin_classifier'].std:.3f}"]])
    from repro.viz import line_plot
    text += "\n\n" + line_plot(
        {"All-Binarized": (mults, [sweep[m].mean for m in mults]),
         "Real Weights": (mults,
                          [references["real"].mean] * len(mults)),
         "Bin Classifier": (mults,
                            [references["bin_classifier"].mean]
                            * len(mults))},
        title="Fig. 7 (rendered)", x_log=True,
        x_label="filter augmentation", y_label="accuracy")
    text += ("\n\nPaper (full scale): BNN 92.1% at 1x rising to 94.9% at "
             "7x; real 96.3%; bin classifier 95.9%.")
    report("fig7_filter_augmentation", text)

    real = references["real"]
    bnn_1x = sweep[mults[0]]
    best_aug = max(sweep[m].mean for m in mults[1:])
    noise = real.std + bnn_1x.std + 0.02
    # BNN at 1x below the real-weight line.
    assert bnn_1x.mean < real.mean
    # Augmentation improves on the 1x BNN.
    assert best_aug > bnn_1x.mean
    # Bin classifier within noise of the real line.
    assert references["bin_classifier"].mean >= real.mean - 2 * noise
