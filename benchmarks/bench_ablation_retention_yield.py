"""Ablation XTRA6 — retention drift and die-to-die yield.

Extends Fig. 4's cycling axis with the two other reliability axes a
deployed medical wearable cares about (covered by the paper's companion
references [15], [16]):

* BER versus *storage time* after programming (retention), 1T1R vs 2T2R;
* yield over a simulated die population with process-corner median shifts,
  against a BER budget inside the BNN tolerance (XTRA2).

Shape checks: both retention curves rise with log-time with 2T2R strictly
below 1T1R; 2T2R yield dominates 1T1R yield at every budget.
"""

import numpy as np

from repro.experiments import render_series, render_table
from repro.rram import (DeviceParameters, RetentionModel, YieldAnalysis,
                        retention_ber_1t1r, retention_ber_2t2r)

from _util import report

HOURS = np.array([1.0, 1e2, 1e3, 1e4, 1e5])      # up to ~11 years


def _run():
    params = DeviceParameters()
    retention = RetentionModel()
    curve_1t = retention_ber_1t1r(params, retention, HOURS)
    curve_2t = retention_ber_2t2r(params, retention, HOURS)
    yields = {}
    for mode in ("2T2R", "1T1R"):
        yields[mode] = YieldAnalysis(params, die_sigma=0.15, n_chips=500,
                                     ber_limit=1e-3, seed=11).run(
            cycles=3e8, mode=mode)
    return curve_1t, curve_2t, yields


def bench_ablation_retention_yield(benchmark):
    curve_1t, curve_2t, yields = benchmark.pedantic(_run, rounds=1,
                                                    iterations=1)
    text = render_series(
        "XTRA6a — BER vs storage time (fresh devices, log-time drift)",
        "hours", [f"{h:.0e}" for h in HOURS],
        {"1T1R": curve_1t, "2T2R": curve_2t}, fmt="{:.2e}")
    text += "\n\n" + render_table(
        "XTRA6b — die-population yield at BER budget 1e-3 (3e8 cycles, "
        "die sigma 0.15)",
        ["sensing", "yield", "worst-chip BER"],
        [[mode, f"{res.yield_fraction:.1%}", f"{res.worst_chip_ber:.2e}"]
         for mode, res in yields.items()])
    text += ("\n\nThe differential margin keeps both storage-time and "
             "process-corner error rates inside\nthe BNN budget without "
             "screening or ECC.")
    report("ablation_retention_yield", text)

    assert np.all(np.diff(curve_1t) > 0)
    assert np.all(np.diff(curve_2t) > 0)
    assert np.all(curve_2t < curve_1t)
    assert yields["2T2R"].yield_fraction >= yields["1T1R"].yield_fraction
    assert yields["2T2R"].yield_fraction > 0.9
