"""Ablation XTRA1 — 2T2R vs formal error correction at equal redundancy.

The paper claims (§II-B) that the 2T2R bit-error benefit is "similar to the
one of formal single error correction of equivalent redundancy", and argues
ECC is unacceptable because the decode logic outweighs the BNN arithmetic.

Harness: at each Fig. 4 checkpoint, take the 1T1R channel BER and push
random data through (a) differential 2T2R storage, (b) a rate-1/2 extended
Hamming(8,4) code (the equivalent-redundancy SEC), and (c) SECDED(72,64)
(the conventional lower-redundancy choice); compare residual error rates.
Shape checks: 2T2R and Hamming(8,4) land within an order of magnitude of
each other, both far below raw 1T1R; SECDED at 1.125x redundancy is weaker
at high error rates.
"""

import numpy as np

from repro.experiments import render_table
from repro.rram import (DeviceParameters, HammingCode, analytic_ber_1t1r,
                        analytic_ber_2t2r, simulate_protected_storage)

from _util import report

CHECKPOINTS = (1e8, 3e8, 5e8, 7e8)
WORDS = 60_000


def _run():
    rng = np.random.default_rng(7)
    device = DeviceParameters()
    rate_half = HammingCode.rate_half()
    secded = HammingCode.secded_72_64()
    rows = []
    measures = []
    for cycles in CHECKPOINTS:
        raw = float(analytic_ber_1t1r(device, cycles))
        differential = float(analytic_ber_2t2r(device, cycles))
        data4 = rng.integers(0, 2, (WORDS, 4)).astype(np.uint8)
        _, res_half = simulate_protected_storage(data4, rate_half, raw, rng)
        data64 = rng.integers(0, 2, (WORDS // 8, 64)).astype(np.uint8)
        _, res_secded = simulate_protected_storage(data64, secded, raw, rng)
        rows.append([f"{cycles:.0e}", f"{raw:.2e}", f"{differential:.2e}",
                     f"{res_half:.2e}", f"{res_secded:.2e}"])
        measures.append((raw, differential, res_half, res_secded))
    return rows, measures


def bench_ablation_2t2r_vs_ecc(benchmark):
    rows, measures = benchmark.pedantic(_run, rounds=1, iterations=1)
    text = render_table(
        "XTRA1 — residual BER: 2T2R vs Hamming codes on the 1T1R channel",
        ["cycles", "raw 1T1R", "2T2R (2.0x devices)",
         "Hamming(8,4) (2.0x bits)", "SECDED(72,64) (1.125x bits)"], rows)
    text += ("\n\n2T2R redundancy = 2.0x (two devices per bit); "
             "Hamming(8,4) is the SEC code of equal\nredundancy.  The paper "
             "reports the two are similar - and 2T2R needs no decoder.")
    report("ablation_2t2r_vs_ecc", text)

    for raw, differential, res_half, res_secded in measures:
        # Both protections beat the raw channel by a lot.
        assert differential < raw / 5
        assert res_half < raw / 5
        # Equal-redundancy SEC and 2T2R are within ~an order of magnitude.
        ratio = max(differential, 1e-7) / max(res_half, 1e-7)
        assert 0.05 < ratio < 20.0
    # At the worst checkpoint, low-redundancy SECDED is the weakest scheme.
    raw, differential, res_half, res_secded = measures[-1]
    assert res_secded > res_half
