"""Ablation XTRA9 — stochastic binary input encoding (paper ref. [14]).

§I of the paper: "beyond weight and activation, the memory footprint can
also be reduced with binary representation of the inputs using stochastic
sampling" (Hirtzlin et al., IEEE Access 2019).  The encoder lets the
*first* network layer run on the XNOR fabric without input ADCs: an analog
value x in [-1, 1] becomes a Bernoulli ±1 stream with mean x, and averaging
per-plane XNOR dot products recovers the analog dot product.

Harness: encode analog inputs at stream lengths 1..64, compute binary-layer
dot products per plane, and measure (a) the RMS error of the decoded dot
product against the exact clipped-analog one, and (b) the fraction of
neuron sign decisions that match exact evaluation.  Shape checks: error
falls as ~1/sqrt(N) (Monte-Carlo rate); sign agreement rises monotonically
toward 1.
"""

import numpy as np

from repro.experiments import render_series
from repro.nn import stochastic_bits

from _util import report

STREAM_LENGTHS = (1, 2, 4, 8, 16, 32, 64)
N_INPUTS = 256
N_NEURONS = 64
N_VECTORS = 200


def _run():
    rng = np.random.default_rng(0)
    x = rng.uniform(-1.2, 1.2, size=(N_VECTORS, N_INPUTS))
    weights = rng.choice([-1.0, 1.0], size=(N_NEURONS, N_INPUTS))
    exact = np.clip(x, -1.0, 1.0) @ weights.T
    exact_rms = np.sqrt(np.mean(exact ** 2))

    rel_rmse, sign_agreement = [], []
    for n_samples in STREAM_LENGTHS:
        planes = stochastic_bits(x, n_samples, np.random.default_rng(7))
        pm1 = 2.0 * planes - 1.0                     # (N, vectors, inputs)
        estimate = (pm1 @ weights.T).mean(axis=0)
        rel_rmse.append(float(
            np.sqrt(np.mean((estimate - exact) ** 2)) / exact_rms))
        sign_agreement.append(float(
            np.mean((estimate >= 0) == (exact >= 0))))
    return rel_rmse, sign_agreement


def bench_ablation_stochastic_encoding(benchmark):
    rel_rmse, sign_agreement = benchmark.pedantic(_run, rounds=1,
                                                  iterations=1)

    text = render_series(
        "XTRA9 — stochastic input encoding: dot-product fidelity vs stream "
        "length",
        "stream length", list(STREAM_LENGTHS),
        {"relative RMSE": rel_rmse, "sign agreement": sign_agreement},
        fmt="{:.3f}")
    text += ("\n\nMonte-Carlo rate: quadrupling the stream roughly halves "
             "the error (1/sqrt(N));"
             "\nref. [14]'s point is that modest streams already preserve "
             "BNN decisions, so the first"
             "\nlayer needs no input ADC.")
    report("ablation_stochastic_encoding", text)

    # Error falls monotonically and at the Monte-Carlo rate (within 30%).
    assert rel_rmse == sorted(rel_rmse, reverse=True)
    for i in range(len(STREAM_LENGTHS) - 2):
        expected_halving = rel_rmse[i] / 2.0
        assert abs(rel_rmse[i + 2] - expected_halving) \
            < 0.3 * expected_halving
    # Decisions converge to the exact ones.
    assert sign_agreement[-1] > sign_agreement[0]
    assert sign_agreement[-1] > 0.95
