"""Throughput claim XTRA15 — fast-path kernels for the Fig. 5 architecture.

The RRAM backend is the substrate the whole paper is about, and its ideal
(noise-free) configuration is what every bit-exactness check and most
sweep points run.  Since this refactor, a noise-free
:class:`~repro.rram.accelerator.MemoryController` is detected at program
time and dispatched to the packed uint64 XNOR-popcount kernels of
:mod:`repro.nn.bitops` — no device programming, no offset draws, no bit
planes.  This script measures that fast path on the quickstart-scale EEG
classifier (Table I geometry, reduced) against

* the **legacy read path** (pre-refactor): a Python double loop over the
  tile grid, one offset tensor and one XNOR reduction per tile — timed
  from a faithful reimplementation against the same programmed tiles;
* the **vectorized noisy path** (the refactor's simulation path) run at
  ideal parameters: one stacked-margin pass per batch chunk;

and pins the fast path bit-exact against the ``reference`` backend.
Results are recorded in ``BENCH_rram_hotpath.json`` at the repo root.

Run:  python benchmarks/bench_rram_hotpath.py [--smoke]
(--smoke: tiny batch, no timing assertions, no JSON record — the CI mode.)
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

import numpy as np

ROOT = pathlib.Path(__file__).resolve().parents[1]
sys.path.insert(0, str(ROOT / "src"))
sys.path.insert(0, str(ROOT / "benchmarks"))

JSON_PATH = ROOT / "BENCH_rram_hotpath.json"


def _eeg_workload(batch: int):
    """The quickstart-scale EEG classifier with calibrated batch-norms."""
    from repro.models import BinarizationMode, EEGNet
    from repro.tensor import Tensor, no_grad

    rng = np.random.default_rng(0)
    model = EEGNet(mode=BinarizationMode.BINARY_CLASSIFIER, n_channels=16,
                   n_samples=240, base_filters=8, hidden_units=32, rng=rng)
    inputs = rng.standard_normal((batch, 16, 240))
    model.train()
    with no_grad():
        for start in range(0, min(batch, 64), 8):
            model(Tensor(inputs[start:start + 8]))
    model.eval()
    return model, inputs


def _legacy_popcounts(controller, x_bits: np.ndarray) -> np.ndarray:
    """The pre-refactor read path, verbatim: per-tile offset tensors and
    XNOR reductions under a grid_rows x grid_cols Python loop."""
    x_bits = np.asarray(x_bits, dtype=np.uint8)
    n = x_bits.shape[0]
    tr, tc = controller.config.tile_rows, controller.config.tile_cols
    counts = np.zeros((n, controller.grid_rows * tr), dtype=np.int64)
    for j in range(controller.grid_cols):
        valid = controller._valid_cols[j]
        chunk = np.zeros((n, tc), dtype=np.uint8)
        chunk[:, :valid] = x_bits[:, j * tc:j * tc + valid]
        for i in range(controller.grid_rows):
            counts[:, i * tr:(i + 1) * tr] += \
                controller.tiles[i][j].xnor_popcounts(chunk, valid)
    return counts[:, :controller.out_features]


def _best_of(fn, rounds: int) -> float:
    fn()
    best = np.inf
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def main(smoke: bool = False) -> None:
    from repro.nn.binary import threshold_bits
    from repro.rram import AcceleratorConfig
    from repro.runtime import RRAMBackend, compile
    from _util import report

    batch = 16 if smoke else 256
    rounds = 1 if smoke else 7
    model, inputs = _eeg_workload(batch)
    config = AcceleratorConfig(ideal=True)

    reference = compile(model, backend="reference")
    t0 = time.perf_counter()
    fast_plan = compile(model, backend=RRAMBackend(config))
    fast_program_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    slow_plan = compile(model, backend=RRAMBackend(config, fast_path=False))
    slow_program_s = time.perf_counter() - t0
    assert all(layer.controller.fast_path
               for layer in (op.executor for op in fast_plan.ops[1:]))
    assert not any(layer.controller.fast_path
                   for layer in (op.executor for op in slow_plan.ops[1:]))

    # The digital front-end is shared by every backend; time the on-fabric
    # classifier only (bits in, scores out).
    bits = fast_plan.ops[0].run(inputs)

    def run_layers(plan):
        x = bits
        for op in plan.ops[1:]:
            x = op.run(x)
        return x

    hidden, output = (op.executor for op in slow_plan.ops[1:])

    def run_legacy():
        f = hidden.folded
        pc = _legacy_popcounts(hidden.controller, bits)
        h = threshold_bits(2 * pc - f.in_features, f.theta[None, :],
                           f.gamma_sign[None, :], f.beta_sign[None, :])
        g = output.folded
        pc = _legacy_popcounts(output.controller, h)
        return (2 * pc - g.in_features) * g.scale[None, :] \
            + g.offset[None, :]

    # Bit-exactness before timing: fast path == reference, exactly.
    ref_scores = run_layers(reference)
    fast_scores = run_layers(fast_plan)
    bit_exact = bool(np.array_equal(fast_scores, ref_scores))
    assert bit_exact
    assert np.array_equal(run_layers(slow_plan), ref_scores)
    assert np.array_equal(run_legacy(), ref_scores)

    fast_s = _best_of(lambda: run_layers(fast_plan), rounds)
    slow_s = _best_of(lambda: run_layers(slow_plan), rounds)
    legacy_s = _best_of(run_legacy, rounds)
    speedup = legacy_s / fast_s

    in_features = hidden.folded.in_features
    text = (
        "XTRA15 — fast-path RRAM simulation kernels\n"
        "==========================================\n"
        f"workload: EEG classifier {in_features} -> "
        f"{hidden.folded.out_features} -> {len(output.folded.scale)}, "
        f"batch {batch}, ideal config\n"
        f"  legacy per-tile loop      : {legacy_s * 1e3:8.2f} ms/batch\n"
        f"  vectorized noisy path     : {slow_s * 1e3:8.2f} ms/batch "
        f"({legacy_s / slow_s:.1f}x vs legacy)\n"
        f"  packed fast path          : {fast_s * 1e3:8.2f} ms/batch "
        f"({speedup:.1f}x vs legacy, {slow_s / fast_s:.1f}x vs vectorized)"
        "\n"
        f"  programming               : {slow_program_s * 1e3:8.2f} ms "
        f"(simulated) -> {fast_program_s * 1e3:.2f} ms (packed)\n"
        f"  fast path bit-exact vs reference backend : {bit_exact}\n")
    report("rram_hotpath", text)

    if smoke:
        return
    result = {
        "workload": {
            "model": "EEGNet binary_classifier (quickstart scale)",
            "classifier": [in_features, hidden.folded.out_features,
                           len(output.folded.scale)],
            "batch": batch,
            "config": "ideal (zero device sigma, zero sense offset)",
        },
        "legacy_ms": round(legacy_s * 1e3, 3),
        "vectorized_ms": round(slow_s * 1e3, 3),
        "fast_ms": round(fast_s * 1e3, 3),
        "speedup": round(speedup, 2),
        "speedup_vs_vectorized": round(slow_s / fast_s, 2),
        "program_speedup": round(slow_program_s / fast_program_s, 2),
        "bit_exact_vs_reference": bit_exact,
    }
    JSON_PATH.write_text(json.dumps(result, indent=2) + "\n")
    assert speedup >= 5.0, result


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="tiny batch, no timing assertions, no JSON")
    main(parser.parse_args().smoke)
