"""Noise-aware training claim — hardware-in-the-loop beats clean training.

The PR 10 acceptance surface: the train → compile → deploy loop closed
in-repo, with the RRAM read-noise surrogate (:mod:`repro.nn.noise`)
armed during training.  The harness trains the demo recipes three ways —
seeded (no gradient steps), clean, and noise-aware — deploys each onto a
zeroed-variability simulated chip, and measures validation accuracy
across the Fig. 4 sense-offset sigma grid:

* **training works** — recipe-trained validation accuracy is strictly
  above the seeded baseline for both EEG and ECG;
* **noise-aware training is worth it** — at the two highest sigma
  points, noise-trained weights hold accuracy at or above clean-trained
  weights (the paper's §III robustness argument, on weights trained
  in-repo rather than seeded);
* **the loop is closed** — a noise-trained FULL_BINARY model compiles to
  a self-contained plan artifact that reloads bit-identically on every
  registered backend (reference / packed / rram / sharded).

Results are recorded in ``BENCH_noise_training.json`` at the repo root.

Run:  python benchmarks/bench_noise_training.py [--smoke]
(--smoke: few-epoch pipeline + artifact round-trip contract, no JSON
record — the CI mode.)
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import tempfile

import numpy as np

ROOT = pathlib.Path(__file__).resolve().parents[1]
sys.path.insert(0, str(ROOT / "src"))
sys.path.insert(0, str(ROOT / "benchmarks"))

JSON_PATH = ROOT / "BENCH_noise_training.json"

SIGMAS = (0.0, 0.5, 1.0, 1.5, 2.0, 2.5)
HIGH_SIGMAS = SIGMAS[-2:]
TRAIN_SIGMA = 1.5
MODE = "binary_classifier"
WEIGHTS = ("seeded", "clean", "noise")


def _sigma_curves(model: str, sigmas, trials: int, epochs: int):
    """Deployed accuracy vs sigma for each weight variant (one training
    run per variant — the workload caches the programmed plan)."""
    from repro.experiments.workloads import trained_robustness_point

    curves: dict[str, dict[float, float]] = {}
    val = {}
    for weights in WEIGHTS:
        curve = {}
        for sigma in sigmas:
            point = trained_robustness_point(
                sigma, weights=weights, model=model, mode=MODE,
                train_sigma=TRAIN_SIGMA, epochs=epochs, trials=trials)
            curve[sigma] = point["accuracy"]
            val[weights] = point["clean_accuracy"]
        curves[weights] = curve
    return curves, val


def _artifact_round_trip(epochs: int) -> dict:
    """Train a FULL_BINARY model with noise in the loop, save the plan,
    reload on every registered backend and compare bit-for-bit."""
    from repro.experiments import artifact_agreement
    from repro.experiments.training import train_demo_model
    from repro.io import load_plan, save_plan
    from repro.rram import AcceleratorConfig
    from repro.runtime import RRAMBackend, ShardedRRAMBackend, compile

    demo = train_demo_model("eeg", "full_binary",
                            noise_sigma=TRAIN_SIGMA,
                            epochs=epochs or None)
    plan = compile(demo.model, backend="reference", lower_features=True)
    backends = ("reference", "packed",
                RRAMBackend(AcceleratorConfig(ideal=True)),
                ShardedRRAMBackend(AcceleratorConfig(ideal=True)))
    with tempfile.TemporaryDirectory() as tmp:
        path = save_plan(plan, pathlib.Path(tmp) / "trained_eeg.npz")
        artifact = load_plan(path)
        predictions, agreement = artifact_agreement(
            artifact, demo.val_inputs, backends=backends)
    reference = predictions["reference"]
    return {"model": "eeg",
            "epochs_trained": len(demo.result.history),
            "val_accuracy": float(demo.val_accuracy),
            "self_contained": bool(artifact.self_contained),
            "backend_agreement": {name: float(value)
                                  for name, value in agreement.items()},
            "all_bit_identical": bool(all(
                np.array_equal(pred, reference)
                for pred in predictions.values()))}


def main(smoke: bool = False) -> None:
    from _util import report

    trials = 2 if smoke else 16
    epochs = 3 if smoke else 0          # 0 = the recipe's own budget
    sigmas = (0.0, SIGMAS[-1]) if smoke else SIGMAS
    models = ("eeg",) if smoke else ("eeg", "ecg")

    results = {}
    for model in models:
        curves, val = _sigma_curves(model, sigmas, trials, epochs)
        results[model] = (curves, val)

    artifact = _artifact_round_trip(epochs)

    lines = [f"noise-aware training — mode={MODE}, "
             f"train_sigma={TRAIN_SIGMA:g}, {trials} trials"]
    for model, (curves, val) in results.items():
        for weights in WEIGHTS:
            series = ", ".join(f"{s:g}:{curves[weights][s]:.3f}"
                               for s in sigmas)
            lines.append(f"  {model} {weights:<6} "
                         f"(val {val[weights]:.3f}): {series}")
    lines.append(
        f"  artifact: full_binary eeg trained "
        f"{artifact['epochs_trained']} epochs, self_contained="
        f"{artifact['self_contained']}, bit-identical on "
        f"{'/'.join(artifact['backend_agreement'])} = "
        f"{artifact['all_bit_identical']}")
    report("noise_training", "PR10 — noise-aware STE training\n"
                             "===============================\n"
           + "\n".join(lines) + "\n")

    for model, (curves, _) in results.items():
        for weights in WEIGHTS:
            for sigma, acc in curves[weights].items():
                assert 0.0 <= acc <= 1.0, (model, weights, sigma, acc)
    assert artifact["self_contained"], \
        "lowered FULL_BINARY plan saved with an external front-end"
    assert artifact["all_bit_identical"], (
        "trained artifact disagrees across backends: "
        f"{artifact['backend_agreement']}")
    if smoke:
        return                     # few-epoch runs carry no ordering claim

    for model, (curves, val) in results.items():
        assert val["clean"] > val["seeded"], (
            f"{model}: training did not beat the seeded baseline "
            f"({val['clean']:.3f} vs {val['seeded']:.3f})")
        assert val["noise"] > val["seeded"], (
            f"{model}: noise-aware training did not beat the seeded "
            f"baseline ({val['noise']:.3f} vs {val['seeded']:.3f})")
        for sigma in HIGH_SIGMAS:
            assert curves["noise"][sigma] >= curves["clean"][sigma], (
                f"{model}: noise-trained accuracy "
                f"{curves['noise'][sigma]:.3f} below clean-trained "
                f"{curves['clean'][sigma]:.3f} at sigma={sigma:g}")

    record = {
        "mode": MODE,
        "train_sigma": TRAIN_SIGMA,
        "trials": trials,
        "sigmas": list(sigmas),
        "models": {
            model: {
                "val_accuracy": {w: round(val[w], 5) for w in WEIGHTS},
                "accuracy_vs_sigma": {
                    w: {str(s): round(curves[w][s], 5) for s in sigmas}
                    for w in WEIGHTS},
                "high_sigma_margin": {
                    str(s): round(curves["noise"][s] - curves["clean"][s],
                                  5)
                    for s in HIGH_SIGMAS},
            }
            for model, (curves, val) in results.items()},
        "artifact": artifact,
    }
    JSON_PATH.write_text(json.dumps(record, indent=2) + "\n")


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="few-epoch pipeline + artifact round-trip "
                             "contract, no JSON record")
    args = parser.parse_args()
    main(args.smoke)
