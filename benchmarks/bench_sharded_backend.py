"""Scale claim XTRA17 — sharded multi-macro backend.

The paper's test vehicle is a fixed 1K-synapse macro (Fig. 2): deploying a
real classifier therefore means splitting every folded layer across a
*grid* of such chips.  This script measures the sharded backend — the
floorplan shard map executed as one simulated chip per
:class:`~repro.rram.floorplan.MacroShard` with partial-popcount reduction
(:class:`~repro.rram.accelerator.ShardedController`) — against the
monolithic single-controller RRAM backend, and verifies its two contracts:

* **equivalence** — noise-free sharded execution is bit-identical to the
  monolithic RRAM backend (and the reference backend) at a divisible
  macro geometry and at a prime geometry forcing non-divisible tail
  shards, on the demo EEG classifier;
* **Monte-Carlo invariance** — noisy sharded trials are chunk-invariant:
  ``scores_trials`` under any ``trial_chunk`` is bit-identical, per-shard
  noise riding on the per-(shard, trial) child streams of
  :func:`repro.rram.mc.shard_streams`;
* **throughput** — sharded vs monolithic word-line-scan rate at the
  controller level (model-level latency is front-end-dominated), on the
  stacked fast plan (default), the per-shard fast reference loop
  (``stacked=False``) and the noisy device path.  The stacked plan is
  the acceptance surface: smoke mode asserts its overhead stays ≤ 2.0x
  monolithic and that all three fast variants are bit-identical; the
  noisy per-chip loop stays recorded-not-asserted (per-chip dispatch by
  construction, required by the RNG stream contract).

Results are recorded in ``BENCH_sharded_backend.json`` at the repo root.

Run:  python benchmarks/bench_sharded_backend.py [--smoke] [--profile]
(--smoke: small batch, no JSON record — the CI mode.  --profile: print
the stacked plan's pack / kernel / reduce stage breakdown.)
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
import time

import numpy as np

ROOT = pathlib.Path(__file__).resolve().parents[1]
sys.path.insert(0, str(ROOT / "src"))
sys.path.insert(0, str(ROOT / "benchmarks"))

JSON_PATH = ROOT / "BENCH_sharded_backend.json"

GEOMETRIES = ((32, 32), (7, 13))     # divisible-ish and tail-forcing


def _time_popcounts(controller, x_bits, repeats: int) -> float:
    controller.popcounts(x_bits)               # warm-up
    t0 = time.perf_counter()
    for _ in range(repeats):
        controller.popcounts(x_bits)
    return (time.perf_counter() - t0) / repeats * 1e3


def main(smoke: bool = False, profile: bool = False) -> None:
    from _util import report
    from repro.cli.main import _demo_model_and_inputs
    from repro.rram import (AcceleratorConfig, DeviceParameters,
                            MacroGeometry, SenseParameters)
    from repro.runtime import RRAMBackend, ShardedRRAMBackend, compile

    model, inputs = _demo_model_and_inputs("eeg", "binary_classifier")
    if not smoke:
        inputs = np.tile(inputs, (8, 1, 1))
    repeats = 1 if smoke else 5

    # --- equivalence: sharded == monolithic == reference, bit for bit ---
    reference = compile(model, backend="reference").scores(inputs)
    mono_plan = compile(model,
                        backend=RRAMBackend(AcceleratorConfig(ideal=True)))
    mono_scores = mono_plan.scores(inputs)
    equivalence = {}
    macro_counts = {}
    for rows, cols in GEOMETRIES:
        backend = ShardedRRAMBackend(AcceleratorConfig(ideal=True),
                                     macro=MacroGeometry(rows, cols))
        plan = compile(model, backend=backend)
        scores = plan.scores(inputs)
        equivalence[f"{rows}x{cols}"] = bool(
            np.array_equal(scores, mono_scores)
            and np.array_equal(scores, reference))
        macro_counts[f"{rows}x{cols}"] = plan.floorplan().n_macros

    # --- Monte-Carlo: noisy sharded trials are chunk-invariant ----------
    device = DeviceParameters(sigma_lrs0=0.0, sigma_hrs0=0.0,
                              broadening=0.0, hrs_drift=0.0,
                              device_mismatch=1.0)
    noisy = ShardedRRAMBackend(
        AcceleratorConfig(device=device,
                          sense=SenseParameters(offset_sigma=0.8)),
        macro=MacroGeometry(8, 16), fast_path=False)
    noisy_plan = compile(model, backend=noisy)
    mc_inputs = inputs[:4] if smoke else inputs[:16]
    trials = 4 if smoke else 16
    stacked = noisy_plan.scores_trials(mc_inputs, trials=trials, seed=11)
    chunked = noisy_plan.scores_trials(mc_inputs, trials=trials, seed=11,
                                       trial_chunk=1)
    mc_invariant = bool(np.array_equal(stacked, chunked))

    # --- throughput: the cost of chip-level fidelity --------------------
    # Controller-level word-line scans (model-level latency is front-end
    # dominated): one wide dense layer, monolithic vs sharded, fast and
    # noisy device paths.
    from repro.rram import MemoryController, ShardedController

    rng = np.random.default_rng(0)
    out_f, in_f = (64, 384) if smoke else (128, 1023)
    weights = rng.integers(0, 2, (out_f, in_f)).astype(np.uint8)
    x_bits = rng.integers(
        0, 2, (64 if smoke else 256, in_f)).astype(np.uint8)
    ideal = AcceleratorConfig(ideal=True)
    noisy_cfg = AcceleratorConfig(device=device,
                                  sense=SenseParameters(offset_sigma=0.3))
    controllers = {
        "fast_stacked": ShardedController(
            weights, config=ideal, rng=np.random.default_rng(1),
            macro=MacroGeometry(32, 32)),
        "fast_per_shard": ShardedController(
            weights, config=ideal, rng=np.random.default_rng(1),
            macro=MacroGeometry(32, 32), stacked=False),
        "noisy": ShardedController(
            weights, config=noisy_cfg, rng=np.random.default_rng(1),
            fast_path=False, macro=MacroGeometry(32, 32)),
    }
    timings = {}
    for label, sharded in controllers.items():
        cfg = ideal if label.startswith("fast") else noisy_cfg
        fast = "auto" if label.startswith("fast") else False
        mono_ms = _time_popcounts(
            MemoryController(weights, cfg, np.random.default_rng(1), fast),
            x_bits, repeats)
        shard_ms = _time_popcounts(sharded, x_bits, repeats)
        timings[label] = {"monolithic_ms": round(mono_ms, 3),
                          "sharded_ms": round(shard_ms, 3),
                          "overhead_x": round(shard_ms / mono_ms, 2)}

    # The acceptance surface: all fast variants bit-identical on the
    # scan layer, stacked == monolithic counts.
    mono_counts = MemoryController(weights, ideal).popcounts(x_bits)
    stacked_counts = controllers["fast_stacked"].popcounts(x_bits)
    per_shard_counts = controllers["fast_per_shard"].popcounts(x_bits)
    scan_equivalent = bool(
        np.array_equal(stacked_counts, mono_counts)
        and np.array_equal(stacked_counts, per_shard_counts))

    stage_profile = dict(controllers["fast_stacked"].last_profile)
    if profile:
        total = sum(stage_profile.values()) or 1.0
        print("stacked plan stage breakdown "
              f"({out_f}x{in_f}, batch {len(x_bits)}):")
        for stage, ms in stage_profile.items():
            print(f"  {stage:<10} {ms:7.3f} ms  ({ms / total:5.1%})")

    geom_lines = "\n".join(
        f"  {name:<7}: bit-identical to monolithic+reference = "
        f"{equivalence[name]}  ({macro_counts[name]} macros)"
        for name in equivalence)
    timing_lines = "\n".join(
        f"  {label} path scan ({out_f}x{in_f}, batch {len(x_bits)}): "
        f"monolithic {t['monolithic_ms']:.2f} ms, sharded "
        f"{t['sharded_ms']:.2f} ms ({t['overhead_x']:.2f}x)"
        for label, t in timings.items())
    text = (
        "XTRA17 — sharded multi-macro backend\n"
        "====================================\n"
        f"demo EEG classifier, batch {len(inputs)}\n"
        f"{geom_lines}\n"
        f"  noisy sharded trials chunk-invariant ({trials} trials) = "
        f"{mc_invariant}\n"
        f"  scan-layer fast paths bit-identical (stacked / per-shard / "
        f"monolithic) = {scan_equivalent}\n"
        f"{timing_lines}\n")
    report("sharded_backend", text)

    assert all(equivalence.values()), equivalence
    assert mc_invariant, "sharded Monte-Carlo trials were chunk-variant"
    assert scan_equivalent, \
        "stacked fast plan diverged from per-shard / monolithic counts"
    if smoke:
        overhead = timings["fast_stacked"]["overhead_x"]
        assert overhead <= 2.0, (
            f"stacked fast path overhead {overhead}x exceeds the 2.0x "
            "smoke budget")
        return

    result = {
        "model": "eeg demo classifier",
        "batch": int(len(inputs)),
        "geometries": {name: {"equivalent": equivalence[name],
                              "n_macros": macro_counts[name]}
                       for name in equivalence},
        "mc_trials": trials,
        "mc_chunk_invariant": mc_invariant,
        "scan_layer": f"{out_f}x{in_f}",
        "scan_batch": int(len(x_bits)),
        "scan_equivalent": scan_equivalent,
        "scan_timings": timings,
        "stacked_stage_profile_ms": {k: round(v, 3)
                                     for k, v in stage_profile.items()},
        "cores": len(os.sched_getaffinity(0)),
    }
    JSON_PATH.write_text(json.dumps(result, indent=2) + "\n")


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small batch, no JSON record")
    parser.add_argument("--profile", action="store_true",
                        help="print the stacked plan's pack/kernel/reduce "
                             "stage breakdown")
    args = parser.parse_args()
    main(args.smoke, profile=args.profile)
