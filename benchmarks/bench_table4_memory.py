"""Table IV — model memory usage and savings from classifier binarization.

This table is analytic (parameter counting on the full-size architectures),
so the harness reproduces it exactly rather than at reduced scale:

* EEG / ECG: Table I / Table II geometries;
* MobileNet-224: full MobileNet V1 with the paper's two-layer 5.7M-bit
  binarized replacement classifier;
* savings versus 32-bit and versus an 8-bit quantized reference.

Paper row targets: EEG 0.31M / 1.17MB / 64% / 57.8%;
ECG 0.31M / 1.17MB / 84% / 75.8% (but see the Table II discrepancy note);
MobileNet 4.2M / 16.2MB / 20% / 7.3%.
"""

import numpy as np

from repro.analysis import model_memory
from repro.experiments import render_table
from repro.models import (BinarizationMode, ECGNet, EEGNet, MobileNetConfig,
                          MobileNetV1)

from _util import report


def _build_breakdowns():
    rng = np.random.default_rng(0)
    eeg = model_memory("EEG", EEGNet(rng=rng))
    ecg = model_memory("ECG", ECGNet(rng=rng))
    mobilenet_real = MobileNetV1(MobileNetConfig.paper(),
                                 mode=BinarizationMode.REAL, rng=rng)
    mobilenet_bin = MobileNetV1(MobileNetConfig.paper(),
                                mode=BinarizationMode.BINARY_CLASSIFIER,
                                rng=rng)
    mobilenet = model_memory(
        "ImageNet", mobilenet_real,
        binary_classifier_params=mobilenet_bin.classifier_parameters())
    return [eeg, ecg, mobilenet]


def bench_table4_memory(benchmark):
    breakdowns = benchmark.pedantic(_build_breakdowns, rounds=1,
                                    iterations=1)

    rows = [b.table_row() for b in breakdowns]
    text = render_table(
        "Table IV — model memory usage and classifier-binarization savings",
        ["Model", "Total params", "Classifier params",
         "Model size 32-bit / 8-bit", "Bin classif. saving 32-bit / 8-bit"],
        rows)
    text += ("\n\nPaper row:  EEG 0.31M / 0.2M / 1.17MB / 305KB / 64% / "
             "57.8%"
             "\nPaper row:  ECG 0.31M / 0.27M / 1.17MB / 305KB / 84% / "
             "75.8%"
             "\nPaper row:  ImageNet 4.2M / 1M / 16.2MB / 4.1MB / 20% / "
             "7.3%"
             "\n\nNote: the ECG architecture of Table II implies a 386K-"
             "parameter classifier, not the"
             "\n0.27M the paper's Table IV lists; our exact counts give a "
             "*larger* saving (88%/79%)"
             "\nthan the paper's 84%/75.8%.  The EEG and MobileNet rows "
             "match to rounding.")
    report("table4_memory", text)

    eeg, ecg, mobilenet = breakdowns
    # EEG row matches the paper to rounding.
    assert abs(eeg.size_bytes(32) / 2 ** 20 - 1.17) < 0.02
    assert abs(eeg.classifier_binarization_saving(32) - 0.64) < 0.01
    assert abs(eeg.classifier_binarization_saving(8) - 0.578) < 0.01
    # The paper's "305KB" is decimal kilobytes (305,522 params at 1 byte).
    assert abs(eeg.size_bytes(8) / 1000 - 305) < 2
    # ECG row: architecture-exact counts; saving exceeds the paper's 84%.
    assert ecg.classifier_binarization_saving(32) > 0.84
    assert ecg.classifier_binarization_saving(8) > 0.758
    # MobileNet row.
    assert abs(mobilenet.size_bytes(32) / 2 ** 20 - 16.2) < 1.0
    assert abs(mobilenet.classifier_binarization_saving(32) - 0.20) < 0.03
    assert abs(mobilenet.classifier_binarization_saving(8) - 0.073) < 0.05
