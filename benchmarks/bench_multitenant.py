"""Multi-tenant serving claim — one co-resident daemon beats N solo ones.

The PR 9 acceptance surface, measured end-to-end the way an operator
deploys it: real ``python -m repro serve`` subprocesses over real
sockets on the same core budget.

* **baseline** (``sequential solo daemons``): one single-model daemon
  per golden fixture (EEG then ECG), each booted, health-polled, fed
  its half of the request burst, and SIGTERM'd before the next starts —
  the only way to serve two models from solo artifacts on one core
  budget without doubling resident processes;
* **multi-tenant**: ONE daemon on the committed ``eeg_ecg_bundle.npz``
  boots once and serves the same burst as a model-tagged mix; one
  executor coalesces across tenants, so the whole artifact-load +
  process-boot + plan-compile cost is paid once instead of per model;
* **aggregate throughput** = total requests / total wall clock
  *including the daemon lifecycle* (boot, health poll, shutdown) — the
  operator's number.  The serve-phase-only rates are recorded too, for
  transparency: on one core the in-flight rates are near parity and the
  win is the amortized lifecycle (see ``phases`` in the record);
* **bit-identity**: every served response is compared against offline
  packed ``CompiledModel.scores`` of its own model — routing and
  cross-tenant coalescing must never change a single bit (asserted,
  smoke and full);
* **macro utilization**: ``ChipPlacer`` packs both tenants' sharded
  placements onto one pool; the record keeps the before/after macro
  counts and utilization (the silicon half of the co-residency win).

Results are recorded in ``BENCH_multitenant.json`` at the repo root;
the acceptance bar is ≥ 1.5x aggregate throughput at equal
bit-exactness (the smoke mode asserts a machine-noise-safe ≥ 1.2x).

Run:  python benchmarks/bench_multitenant.py [--smoke]
(--smoke: fewer requests, assertions only, no JSON record — CI mode.)
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import signal
import socket
import subprocess
import sys
import time
import urllib.error
import urllib.request

import numpy as np

ROOT = pathlib.Path(__file__).resolve().parents[1]
sys.path.insert(0, str(ROOT / "src"))
sys.path.insert(0, str(ROOT / "benchmarks"))

JSON_PATH = ROOT / "BENCH_multitenant.json"
FIXTURES = ROOT / "tests" / "fixtures" / "plans"
BUNDLE = FIXTURES / "eeg_ecg_bundle.npz"
MODELS = ("eeg", "ecg")
# Per-model coalescing sweet spots, same rationale as bench_serve.py.
MAX_BATCH = {"eeg": 256, "ecg": 64}
WINDOW_US = 200.0


def _requests_for(artifact, count: int, seed: int = 0):
    rng = np.random.default_rng(seed)
    shape = artifact.input_shape
    if artifact.ops[0]["op"] == "bits":
        return [rng.integers(0, 2, (1,) + shape).astype(np.uint8)
                for _ in range(count)]
    return [rng.standard_normal((1,) + shape) for _ in range(count)]


def _free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


class _Daemon:
    """One ``python -m repro serve`` subprocess, health-polled to ready."""

    def __init__(self, artifact: pathlib.Path):
        self.port = _free_port()
        self.url = f"http://127.0.0.1:{self.port}"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(ROOT / "src")
        t0 = time.perf_counter()
        self.proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", str(artifact),
             "--port", str(self.port), "--batch-window", str(WINDOW_US)],
            env=env, cwd=str(ROOT),
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT)
        deadline = time.monotonic() + 60.0
        while True:
            try:
                with urllib.request.urlopen(self.url + "/healthz",
                                            timeout=1.0):
                    break
            except (urllib.error.URLError, ConnectionError, OSError):
                if self.proc.poll() is not None:
                    out = self.proc.stdout.read().decode(errors="replace")
                    raise RuntimeError(f"daemon died during boot:\n{out}")
                if time.monotonic() > deadline:
                    self.proc.kill()
                    raise RuntimeError("daemon never became healthy")
                time.sleep(0.02)
        self.boot_s = time.perf_counter() - t0

    def stop(self) -> float:
        t0 = time.perf_counter()
        self.proc.send_signal(signal.SIGTERM)
        try:
            self.proc.wait(timeout=20.0)
        except subprocess.TimeoutExpired:
            self.proc.kill()
            self.proc.wait()
        self.proc.stdout.close()
        return time.perf_counter() - t0


def _check_scores(plans, tagged, responses) -> int:
    mismatches = 0
    for (model, request), response in zip(tagged, responses):
        if not np.array_equal(plans[model].scores(request),
                              response["scores"]):
            mismatches += 1
    return mismatches


def _bench_baseline(plans, requests) -> dict:
    """Two solo daemons, booted and torn down sequentially."""
    from repro.serve import fire

    phases, mismatches, total = [], 0, 0
    t0 = time.perf_counter()
    for name in MODELS:
        daemon = _Daemon(FIXTURES / f"{name}_full_binary.npz")
        try:
            t_fire = time.perf_counter()
            responses = fire(daemon.url, requests[name], threads=4)
            serve_s = time.perf_counter() - t_fire
        finally:
            shutdown_s = daemon.stop()
        mismatches += _check_scores(
            plans, [(name, r) for r in requests[name]], responses)
        total += len(responses)
        phases.append({"model": name, "boot_s": daemon.boot_s,
                       "serve_s": serve_s, "shutdown_s": shutdown_s,
                       "requests": len(responses)})
    elapsed = time.perf_counter() - t0
    return {"daemons": len(MODELS), "requests": total,
            "wall_s": elapsed, "aggregate_req_per_sec": total / elapsed,
            "serve_phase_req_per_sec":
                total / sum(p["serve_s"] for p in phases),
            "phases": phases, "mismatches": mismatches}


def _bench_multitenant(plans, requests) -> dict:
    """One bundle daemon, one boot, a model-tagged mixed burst."""
    from repro.serve import ServeClient, fire

    # Interleave the two models' requests so coalesced flushes really
    # carry a cross-tenant mix, not two sequential single-model runs.
    tagged = []
    streams = [[(name, r) for r in requests[name]] for name in MODELS]
    for pair in zip(*streams):
        tagged.extend(pair)

    t0 = time.perf_counter()
    daemon = _Daemon(BUNDLE)
    try:
        client = ServeClient(daemon.url)
        resident = sorted(m["name"] for m in client.models())
        client.close()
        t_fire = time.perf_counter()
        responses = fire(daemon.url, tagged, threads=4)
        serve_s = time.perf_counter() - t_fire
    finally:
        shutdown_s = daemon.stop()
    elapsed = time.perf_counter() - t0
    assert resident == sorted(MODELS), resident
    return {"daemons": 1, "requests": len(tagged), "wall_s": elapsed,
            "aggregate_req_per_sec": len(tagged) / elapsed,
            "serve_phase_req_per_sec": len(tagged) / serve_s,
            "phases": [{"model": "+".join(MODELS),
                        "boot_s": daemon.boot_s, "serve_s": serve_s,
                        "shutdown_s": shutdown_s,
                        "requests": len(tagged)}],
            "mismatches": _check_scores(plans, tagged, responses)}


def _placement_report() -> dict:
    """The silicon half: co-resident pool vs per-tenant solo chips."""
    from repro.io import load_compiled_bundle
    from repro.rram import AcceleratorConfig, ChipPlacer, MacroGeometry
    from repro.runtime import ShardedRRAMBackend

    macro = MacroGeometry(32, 32)
    placements = {}
    for name, plan in load_compiled_bundle(
            BUNDLE, backend=lambda: ShardedRRAMBackend(
                AcceleratorConfig(ideal=True), macro=macro)).items():
        placements[name] = plan.placements
    pool = ChipPlacer(macro).place(placements)
    return {"macro": f"{macro.rows}x{macro.cols}",
            "solo_macros": pool.solo_macros_total,
            "pool_macros": pool.n_macros_provisioned,
            "macros_saved": pool.solo_macros_total
            - pool.n_macros_provisioned,
            "shared_macros": pool.shared_macros(),
            "utilization_co_resident": pool.utilization,
            "utilization_solo": pool.synapses_used
            / (pool.solo_macros_total * macro.synapses)}


def main(smoke: bool = False) -> None:
    from repro.io import load_compiled, load_plan

    per_model = 48 if smoke else 256
    plans, requests = {}, {}
    for index, name in enumerate(MODELS):
        artifact = load_plan(FIXTURES / f"{name}_full_binary.npz")
        plans[name] = load_compiled(artifact, backend="packed")
        requests[name] = _requests_for(artifact, per_model, seed=index)

    print(f"baseline: {len(MODELS)} sequential solo daemons "
          f"({per_model} requests each)...")
    baseline = _bench_baseline(plans, requests)
    print(f"  {baseline['aggregate_req_per_sec']:8.1f} req/s aggregate "
          f"({baseline['wall_s']:.2f} s wall, "
          f"{baseline['mismatches']} mismatches)")

    print("multi-tenant: one bundle daemon, mixed burst...")
    multitenant = _bench_multitenant(plans, requests)
    print(f"  {multitenant['aggregate_req_per_sec']:8.1f} req/s "
          f"aggregate ({multitenant['wall_s']:.2f} s wall, "
          f"{multitenant['mismatches']} mismatches)")

    speedup = (multitenant["aggregate_req_per_sec"]
               / baseline["aggregate_req_per_sec"])
    parity = (multitenant["serve_phase_req_per_sec"]
              / baseline["serve_phase_req_per_sec"])
    placement = _placement_report()
    print(f"aggregate speedup {speedup:.2f}x "
          f"(serve-phase-only parity {parity:.2f}x); "
          f"pool {placement['pool_macros']} vs "
          f"{placement['solo_macros']} solo macros "
          f"({placement['utilization_co_resident']:.1%} vs "
          f"{placement['utilization_solo']:.1%} utilization)")

    mismatches = baseline["mismatches"] + multitenant["mismatches"]
    assert mismatches == 0, (
        f"{mismatches} served responses differ from offline packed "
        "scores — tenant routing must be bit-exact")
    floor = 1.2 if smoke else 1.5
    assert speedup >= floor, (
        f"aggregate multi-tenant speedup {speedup:.2f}x under the "
        f"{floor}x floor")
    if smoke:
        print(f"smoke OK: bit-identical mixed burst, {speedup:.2f}x "
              f">= {floor}x aggregate floor")
        return
    record = {
        "bench": "multitenant",
        "models": list(MODELS),
        "requests_per_model": per_model,
        "window_us": WINDOW_US,
        "max_batch": dict(MAX_BATCH),
        "baseline_sequential_solo_daemons": baseline,
        "multi_tenant_bundle_daemon": multitenant,
        "placement": placement,
        "headline": {
            "aggregate_speedup": speedup,
            "serve_phase_parity": parity,
            "macros_saved": placement["macros_saved"],
            "mismatches": mismatches,
        },
    }
    JSON_PATH.write_text(json.dumps(record, indent=2) + "\n")
    print(f"\nwrote {JSON_PATH}")


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="fewer requests, assertions only, no JSON "
                             "record (CI mode)")
    args = parser.parse_args()
    main(args.smoke)
