"""Ablation XTRA11 — convolutional layers on the binary fabric (§II-B).

The paper notes its Fig. 5 dense architecture "can be adapted for
convolutional layers" and defers the mapping decision to the ISAAC/PRIME
line of work.  The repository implements the weight-stationary adaptation
in 1-D (`repro.rram.conv`) and 2-D (`repro.rram.conv2d`); this harness
verifies its two claims:

* fidelity — on ideal devices the on-fabric conv stack is bit-exact with
  the folded software math, and on realistic fresh devices the bit
  agreement stays very high (binary reads, not analog sums);
* cost shape — the weight-stationary mapping stores each kernel once but
  re-senses it per output position, so sense ops scale with the output
  map while the device count scales only with the kernel volume (the
  data-movement / data-reuse trade the paper mentions).
"""

import numpy as np

from repro.experiments import render_table
from repro.nn import BatchNorm2d, BinaryConv2d
from repro.rram import (AcceleratorConfig, InMemoryConv2dLayer,
                        fold_conv2d_batchnorm_sign)

from _util import report

IMAGE_SIDES = (8, 12, 16, 24)
CHANNELS_IN = 8
CHANNELS_OUT = 16
KERNEL = 3
BATCH = 8


def _build(rng):
    conv = BinaryConv2d(CHANNELS_IN, CHANNELS_OUT, kernel_size=KERNEL,
                        rng=rng)
    bn = BatchNorm2d(CHANNELS_OUT)
    bn.set_buffer("running_mean", rng.normal(scale=1.0, size=CHANNELS_OUT))
    bn.set_buffer("running_var", rng.uniform(0.5, 2.0, size=CHANNELS_OUT))
    bn.gamma.data = rng.normal(size=CHANNELS_OUT)
    bn.beta.data = rng.normal(size=CHANNELS_OUT)
    bn.eval()
    return fold_conv2d_batchnorm_sign(conv, bn)


def _run():
    rng = np.random.default_rng(0)
    folded = _build(rng)
    ideal = InMemoryConv2dLayer(folded, AcceleratorConfig(ideal=True),
                                np.random.default_rng(1))
    fresh = InMemoryConv2dLayer(folded, AcceleratorConfig(),
                                np.random.default_rng(2))

    rows = []
    exact, agreements = [], []
    for side in IMAGE_SIDES:
        bits = rng.integers(0, 2, size=(BATCH, CHANNELS_IN, side, side)
                            ).astype(np.uint8)
        reference = folded.forward_bits(bits)
        ideal_out = ideal.forward_bits(bits)
        fresh_out = fresh.forward_bits(bits)
        exact.append(bool(np.array_equal(ideal_out, reference)))
        agreements.append(float(np.mean(fresh_out == reference)))
        h_out = side - KERNEL + 1
        positions = BATCH * h_out * h_out
        sense_per_image = positions * folded.fan_in * CHANNELS_OUT / BATCH
        rows.append((f"{side}x{side}", str(exact[-1]),
                     f"{agreements[-1]:.4f}",
                     f"{folded.weight_bits.size * 2:,}",
                     f"{sense_per_image:,.0f}"))
    return rows, exact, agreements


def bench_ablation_conv_fabric(benchmark):
    rows, exact, agreements = benchmark.pedantic(_run, rounds=1,
                                                 iterations=1)

    text = render_table(
        "XTRA11 — weight-stationary binary conv on the 2T2R fabric "
        f"({CHANNELS_IN}->{CHANNELS_OUT}, {KERNEL}x{KERNEL} kernels)",
        ["Input", "Ideal bit-exact", "Fresh-device agreement",
         "Devices (fixed)", "Sense ops / image"], rows)
    text += ("\n\nDevices stay constant (weights stored once); sense "
             "operations grow with the output\nmap — the data-reuse side "
             "of the paper's §II-B trade-off.  Binary reads keep the\n"
             "realistic-device agreement near 1 without ECC.")
    report("ablation_conv_fabric", text)

    assert all(exact)
    assert min(agreements) > 0.95


def bench_ablation_conv_fabric_depthwise(benchmark):
    """Depthwise variant: per-channel arrays, kernel-only fan-in."""
    from repro.nn import BinaryDepthwiseConv2d
    from repro.rram import fold_depthwise2d_batchnorm_sign

    rng = np.random.default_rng(3)
    conv = BinaryDepthwiseConv2d(CHANNELS_IN, kernel_size=KERNEL, rng=rng)
    bn = BatchNorm2d(CHANNELS_IN)
    bn.set_buffer("running_mean", rng.normal(size=CHANNELS_IN))
    bn.gamma.data = rng.normal(size=CHANNELS_IN)
    bn.eval()
    folded = fold_depthwise2d_batchnorm_sign(conv, bn)

    def run():
        bits = rng.integers(0, 2, size=(BATCH, CHANNELS_IN, 16, 16)
                            ).astype(np.uint8)
        return folded.forward_bits(bits)

    out = benchmark(run)
    assert out.shape == (BATCH, CHANNELS_IN, 14, 14)
    assert folded.fan_in == KERNEL * KERNEL
    report("ablation_conv_fabric_depthwise",
           "XTRA11b — depthwise fold: fan-in limited to the "
           f"{KERNEL}x{KERNEL} kernel ({folded.fan_in} bits/array row), "
           "one tiny array per channel.")
