"""Ablation XTRA5 — program-and-verify vs one-shot programming.

The paper programs weights once through the memory controller; its
companion works study stronger programming conditions as the lever on bit
errors.  Program-and-verify is the standard embodiment of that lever: retry
devices whose resistance missed the target window.

Harness: program arrays of random weights with one-shot and with verify at
several retry budgets, on a deliberately noisy device corner; measure
read-back error rate and programming cost (pulses per device).  Shape
checks: read-back errors fall monotonically with the retry budget while
pulse count rises — the energy/error trade-off.
"""

import numpy as np

from repro.experiments import render_table
from repro.rram import (DeviceParameters, ProgramVerifyConfig, RRAMArray,
                        SenseParameters, program_array_verified)

from _util import report

NOISY = DeviceParameters(sigma_lrs0=0.8, sigma_hrs0=0.8)
ROWS = COLS = 32
REPEATS = 6


def _measure(max_attempts: int | None):
    rng = np.random.default_rng(31)
    errors = pulses = total_bits = 0
    for _ in range(REPEATS):
        bits = rng.integers(0, 2, (ROWS, COLS)).astype(np.uint8)
        array = RRAMArray(ROWS, COLS, params=NOISY,
                          sense=SenseParameters(offset_sigma=0.05), rng=rng)
        if max_attempts is None:
            array.program(bits)
            pulses += 2 * bits.size           # one pulse per device
        else:
            stats = program_array_verified(
                array, bits, ProgramVerifyConfig(max_attempts=max_attempts))
            pulses += stats.total_pulses
        errors += int((array.read_all() != bits).sum())
        total_bits += bits.size
    return errors / total_bits, pulses / (2 * total_bits)


def _run():
    settings = [("one-shot", None), ("verify x2", 2), ("verify x4", 4),
                ("verify x8", 8)]
    return [(name, *_measure(attempts)) for name, attempts in settings]


def bench_ablation_program_verify(benchmark):
    measures = benchmark.pedantic(_run, rounds=1, iterations=1)
    rows = [[name, f"{ber:.2e}", f"{cost:.2f}"]
            for name, ber, cost in measures]
    text = render_table(
        "XTRA5 — program-and-verify on a noisy device corner "
        f"(sigma=0.8, {REPEATS}x{ROWS}x{COLS} bits)",
        ["programming", "read-back BER", "pulses per device"], rows)
    text += ("\n\nVerification buys error rate with programming energy; the "
             "BNN's fault tolerance\n(XTRA2) decides how far down the curve "
             "a deployment needs to go.")
    report("ablation_program_verify", text)

    bers = [m[1] for m in measures]
    costs = [m[2] for m in measures]
    # Error rate falls with the retry budget (weakly monotone, MC noise).
    assert bers[-1] < bers[0]
    assert bers[2] <= bers[0]
    # Programming cost rises.
    assert costs[-1] > costs[0]
    assert all(c >= 1.0 for c in costs)
