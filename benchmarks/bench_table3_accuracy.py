"""Table III — accuracy comparison of real-weight CNN, fully binarized CNN
(1x and filter-augmented), and CNN with binarized classifier only.

Paper protocol: 5-fold cross-validation repeated five times, 1000 epochs,
Adam (EEG/ECG rows); the ImageNet row cites MobileNet [8] and MoBiNet [30].

Harness (bench scale, see repro.experiments.configs): reduced dataset /
filter / epoch budget, same protocol, synthetic data.  Absolute accuracies
are not comparable to the paper — the *ordering* is the reproduced result:

    real  >=  binarized classifier  >  all-binarized (1x)
    all-binarized improves with filter augmentation

The ImageNet row is reproduced separately at reduced scale by
bench_fig8_mobilenet_training.py; here we report the paper's cited
constants for completeness.
"""

from repro.experiments import (EcgTask, EegTask, PAPER_RESULTS, cross_validate,
                               render_table)
from repro.models import BinarizationMode

from _util import report


def _evaluate_task(task, folds, repeats, aug):
    cfg = task.train_config()
    results = {}
    for key, mode, mult in [
        ("real", BinarizationMode.REAL, 1),
        ("bnn_1x", BinarizationMode.FULL_BINARY, 1),
        ("bnn_aug", BinarizationMode.FULL_BINARY, aug),
        ("bin_classifier", BinarizationMode.BINARY_CLASSIFIER, 1),
    ]:
        res = cross_validate(task.model_factory(mode, mult), task.dataset(),
                             cfg, k=folds, repeats=repeats,
                             fit_hook=task.fit_hook)
        results[key] = res
    return results


def _run():
    eeg_task = EegTask()
    ecg_task = EcgTask()
    scale = eeg_task.scale
    eeg = _evaluate_task(eeg_task, scale.eeg_folds, scale.eeg_repeats,
                         scale.eeg_bnn_aug)
    ecg = _evaluate_task(ecg_task, scale.ecg_folds, scale.ecg_repeats,
                         scale.ecg_bnn_aug)
    return scale, eeg, ecg


def bench_table3_accuracy(benchmark):
    scale, eeg, ecg = benchmark.pedantic(_run, rounds=1, iterations=1)

    rows = []
    for task_name, results, aug, paper in [
        ("EEG", eeg, scale.eeg_bnn_aug, PAPER_RESULTS["eeg"]),
        ("ECG", ecg, scale.ecg_bnn_aug, PAPER_RESULTS["ecg"]),
    ]:
        rows.append([
            task_name,
            f"{results['real'].mean:.1%} (paper {paper['real']:.1%})",
            f"{results['bnn_1x'].mean:.1%} (1x) / "
            f"{results['bnn_aug'].mean:.1%} ({aug}x)   "
            f"(paper {paper['bnn_1x']:.1%} / {paper['bnn_aug']:.1%} "
            f"at {paper['aug']}x)",
            f"{results['bin_classifier'].mean:.1%} "
            f"(paper {paper['bin_classifier']:.1%})",
        ])
    top1 = PAPER_RESULTS["imagenet_top1"]
    top5 = PAPER_RESULTS["imagenet_top5"]
    rows.append(["ImageNet Top-1 (cited)", f"{top1['real']:.1%} [8]",
                 f"{top1['bnn']:.1%} (4x) [30]",
                 f"{top1['bin_classifier']:.1%}"])
    rows.append(["ImageNet Top-5 (cited)", f"{top5['real']:.1%} [8]",
                 f"{top5['bnn']:.1%} (4x) [30]",
                 f"{top5['bin_classifier']:.1%}"])

    text = render_table(
        f"Table III — accuracy comparison (scale={scale.name}, "
        f"EEG {scale.eeg_folds}-fold, ECG {scale.ecg_folds}-fold CV)",
        ["Task", "Real-weight NN", "BNN", "Bin. classifier"], rows)
    text += ("\n\nShape checks: bin-classifier within noise of real; "
             "all-binarized (1x) below real;\naugmentation improves the "
             "all-binarized network (see also fig7).")
    report("table3_accuracy", text)

    for task_name, results in [("EEG", eeg), ("ECG", ecg)]:
        spread = results["real"].std + results["bin_classifier"].std + 0.02
        # Binarizing only the classifier costs (at most) noise-level accuracy.
        assert results["bin_classifier"].mean >= \
            results["real"].mean - 2 * spread, task_name
        # Full binarization at 1x filters costs real accuracy.
        assert results["bnn_1x"].mean < results["real"].mean, task_name
        # The binarized classifier beats the 1x BNN.
        assert results["bin_classifier"].mean > results["bnn_1x"].mean, \
            task_name
    # Filter augmentation helps the all-binarized EEG network (paper: 84.6%
    # -> 86%).
    assert eeg["bnn_aug"].mean > eeg["bnn_1x"].mean
