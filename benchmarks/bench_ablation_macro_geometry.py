"""Ablation XTRA12 — array macro geometry (the Fig. 2 building-block size).

The paper's test vehicle is a 1K-synapse (32x32) macro replicated under a
memory controller (Fig. 2, Fig. 5).  Macro size is a real design choice:
larger arrays amortize decoders and sense amplifiers over more cells but
strand capacity on layers that do not fill them, and longer bit lines raise
sensing energy.  This harness sweeps the geometry for the paper's two
time-signal classifiers and reports macro count, utilization, and area.

Shape checks: macro count falls and per-chip utilization degrades (or at
best stays level) as macros grow past the layer dimensions; total cell
area is minimized near geometries matched to the classifier shapes.
"""

from repro.experiments import render_table
from repro.rram import MacroGeometry, plan_classifier

from _util import report

GEOMETRIES = (16, 32, 64, 128, 256)
CLASSIFIERS = {
    "EEG (80x2520 + 2x80)": [(80, 2520), (2, 80)],
    "ECG (75x5152 + 2x75)": [(75, 5152), (2, 75)],
}


def _sweep():
    results = {}
    for label, shapes in CLASSIFIERS.items():
        rows = []
        for side in GEOMETRIES:
            plan = plan_classifier(shapes, MacroGeometry(side, side))
            area = plan.area_um2()
            rows.append({
                "side": side,
                "macros": plan.n_macros,
                "utilization": plan.utilization,
                "area_mm2": area["total"] / 1e6,
                "cells_mm2": area["cells"] / 1e6,
            })
        results[label] = rows
    return results


def bench_ablation_macro_geometry(benchmark):
    results = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    text_blocks = []
    for label, rows in results.items():
        table_rows = [(f"{r['side']}x{r['side']}", str(r["macros"]),
                       f"{r['utilization']:.1%}", f"{r['area_mm2']:.3f}",
                       f"{r['cells_mm2']:.3f}")
                      for r in rows]
        text_blocks.append(render_table(
            f"XTRA12 — macro geometry sweep, {label} classifier",
            ["Macro", "Count", "Utilization", "Total area mm^2",
             "Cell area mm^2"], table_rows))
    text = "\n\n".join(text_blocks)
    text += ("\n\nThe paper's 32x32 macro keeps utilization high for the "
             "classifier-dominated medical\nmodels; growing the macro "
             "trades sense-amplifier sharing against stranded synapses\n"
             "(the 2x80 output layer wastes most of any large array).")
    report("ablation_macro_geometry", text)

    for label, rows in results.items():
        counts = [r["macros"] for r in rows]
        assert counts == sorted(counts, reverse=True), label
        # Past the layer dimensions utilization can only fall.
        big = [r for r in rows if r["side"] >= 128]
        for a, b in zip(big, big[1:]):
            assert b["utilization"] <= a["utilization"] + 1e-12, label
