"""Ablation XTRA8 — the 8-bit quantization reference point.

The paper leans on 8-bit quantization as the stronger baseline: it
"usually requires no retraining" (§I), Table IV reports savings against an
8-bit reference, and §III-C estimates the accuracy gap assuming
"convolutional layers can be quantized to eight-bits precision".

Harness: train one real-weight ECG model, then post-training-quantize its
weights across bit widths and measure validation accuracy and model size.
Shape checks: 8-bit matches float accuracy (the "no retraining" claim);
very low widths degrade; size scales linearly with bits.
"""

import numpy as np

from repro.analysis import quantize_model_weights
from repro.data import ECGConfig, make_ecg_dataset
from repro.experiments import TrainConfig, evaluate_accuracy, render_table, \
    train_model
from repro.models import BinarizationMode, ECGNet

from _util import report

BIT_WIDTHS = (16, 8, 6, 4, 3, 2)


def _run():
    dataset = make_ecg_dataset(ECGConfig(n_trials=300, n_samples=300,
                                         noise_amplitude=0.05, seed=21))
    n_train = 240
    model = ECGNet(mode=BinarizationMode.REAL, n_samples=300,
                   base_filters=8, rng=np.random.default_rng(5))
    model.fit_input_norm(dataset.inputs[:n_train])
    train_model(model, dataset.inputs[:n_train], dataset.labels[:n_train],
                TrainConfig(epochs=40, batch_size=16, lr=2e-3, seed=6))
    model.eval()
    val_x = dataset.inputs[n_train:]
    val_y = dataset.labels[n_train:]
    float_accuracy = evaluate_accuracy(model, val_x, val_y)
    reference = model.state_dict()

    accuracies = {}
    for bits in BIT_WIDTHS:
        model.load_state_dict(reference)
        quantize_model_weights(model, bits=bits)
        accuracies[bits] = evaluate_accuracy(model, val_x, val_y)
    model.load_state_dict(reference)
    n_params = model.num_parameters()
    return float_accuracy, accuracies, n_params


def bench_ablation_quantization(benchmark):
    float_accuracy, accuracies, n_params = benchmark.pedantic(
        _run, rounds=1, iterations=1)

    rows = [("32 (float)", f"{float_accuracy:.3f}",
             f"{n_params * 4 / 1024:.0f} KB", "-")]
    for bits in BIT_WIDTHS:
        rows.append((str(bits), f"{accuracies[bits]:.3f}",
                     f"{n_params * bits / 8 / 1024:.0f} KB",
                     f"{accuracies[bits] - float_accuracy:+.3f}"))
    text = render_table(
        "XTRA8 — post-training weight quantization of the ECG model",
        ["Weight bits", "Accuracy", "Weight memory", "vs float"], rows)
    text += ("\n\nPaper §I: 8-bit quantization 'usually requires no "
             "retraining' — the 8-bit row must match float."
             "\n1-bit is not a PTQ point: binarization needs retraining "
             "(Table III), which is the paper's whole premise.")
    report("ablation_quantization", text)

    # The paper's claim: 8-bit PTQ is accuracy-free.
    assert abs(accuracies[8] - float_accuracy) <= 0.02
    assert abs(accuracies[16] - float_accuracy) <= 0.01
    # Aggressive widths cost accuracy: 2-bit loses clearly.
    assert accuracies[2] <= float_accuracy + 1e-9
    assert accuracies[2] < accuracies[8] + 0.02
