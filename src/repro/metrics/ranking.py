"""Score-based ranking metrics: ROC curve and AUC.

Diagnostic classifiers are tuned along their operating curve (catching more
inversions at the cost of more false alarms), so the examples report ROC/AUC
next to the paper's single accuracy number.
"""

from __future__ import annotations

import numpy as np

__all__ = ["roc_curve", "roc_auc"]


def _validate_scores(y_true, scores) -> tuple[np.ndarray, np.ndarray]:
    y_true = np.asarray(y_true).ravel()
    scores = np.asarray(scores, dtype=float).ravel()
    if y_true.shape != scores.shape:
        raise ValueError(
            f"length mismatch: {y_true.shape} labels vs {scores.shape} scores")
    if y_true.size == 0:
        raise ValueError("cannot compute ROC on empty arrays")
    binary = (y_true == 0) | (y_true == 1)
    if not binary.all():
        raise ValueError("ROC requires binary 0/1 labels")
    return y_true.astype(np.int64), scores


def roc_curve(y_true, scores) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """False-positive rate, true-positive rate, and thresholds.

    Thresholds are the distinct score values in decreasing order; a sample
    is predicted positive when ``score >= threshold``.  The returned curve
    is prefixed with the (0, 0) point at threshold ``+inf``.
    """
    y_true, scores = _validate_scores(y_true, scores)
    n_pos = int(y_true.sum())
    n_neg = y_true.size - n_pos
    if n_pos == 0 or n_neg == 0:
        raise ValueError("ROC needs at least one positive and one negative")

    order = np.argsort(-scores, kind="stable")
    sorted_scores = scores[order]
    sorted_true = y_true[order]

    # Cumulative counts at each distinct-score boundary.
    distinct = np.nonzero(np.diff(sorted_scores))[0]
    boundaries = np.concatenate([distinct, [y_true.size - 1]])
    tp = np.cumsum(sorted_true)[boundaries]
    fp = (boundaries + 1) - tp

    tpr = np.concatenate([[0.0], tp / n_pos])
    fpr = np.concatenate([[0.0], fp / n_neg])
    thresholds = np.concatenate([[np.inf], sorted_scores[boundaries]])
    return fpr, tpr, thresholds


def roc_auc(y_true, scores) -> float:
    """Area under the ROC curve via trapezoidal integration.

    Equals the probability that a random positive outscores a random
    negative (ties counted half) — the Mann-Whitney U statistic.
    """
    fpr, tpr, _ = roc_curve(y_true, scores)
    return float(np.trapezoid(tpr, fpr))
