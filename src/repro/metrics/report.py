"""One-call diagnostic report combining the individual metrics."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.metrics.classification import (accuracy, balanced_accuracy,
                                          confusion_matrix,
                                          precision_recall_f1,
                                          sensitivity_specificity)
from repro.metrics.ranking import roc_auc

__all__ = ["ClassificationReport", "classification_report"]


@dataclass
class ClassificationReport:
    """Summary of a binary classifier's performance on one evaluation set."""

    accuracy: float
    balanced_accuracy: float
    sensitivity: float
    specificity: float
    precision: float
    f1: float
    auc: float | None
    confusion: np.ndarray

    def render(self, title: str = "Classification report") -> str:
        lines = [title, "-" * len(title)]
        lines.append(f"accuracy            {self.accuracy:7.2%}")
        lines.append(f"balanced accuracy   {self.balanced_accuracy:7.2%}")
        lines.append(f"sensitivity         {self.sensitivity:7.2%}")
        lines.append(f"specificity         {self.specificity:7.2%}")
        lines.append(f"precision           {self.precision:7.2%}")
        lines.append(f"F1                  {self.f1:7.3f}")
        if self.auc is not None:
            lines.append(f"ROC AUC             {self.auc:7.3f}")
        lines.append("confusion matrix (rows = true, cols = predicted):")
        for row in self.confusion:
            lines.append("    " + "  ".join(f"{int(c):6d}" for c in row))
        return "\n".join(lines)


def classification_report(y_true, y_pred, scores=None,
                          positive_class: int = 1) -> ClassificationReport:
    """Compute the full diagnostic report.

    ``scores`` (optional) are real-valued scores for the positive class; when
    given, ROC AUC is included.
    """
    precision, _, f1 = precision_recall_f1(y_true, y_pred, positive_class)
    sensitivity, specificity = sensitivity_specificity(
        y_true, y_pred, positive_class)
    auc = None
    if scores is not None:
        labels = (np.asarray(y_true).ravel() == positive_class).astype(int)
        auc = roc_auc(labels, scores)
    return ClassificationReport(
        accuracy=accuracy(y_true, y_pred),
        balanced_accuracy=balanced_accuracy(y_true, y_pred),
        sensitivity=sensitivity,
        specificity=specificity,
        precision=precision,
        f1=f1,
        auc=auc,
        confusion=confusion_matrix(y_true, y_pred),
    )
