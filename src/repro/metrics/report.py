"""One-call diagnostic report combining the individual metrics.

Also home of the shared latency statistics: every timing surface in the
repository (the serving daemon's per-model stats, ``repro deploy``'s
backend table, the load-generator benchmark) reports tail percentiles
through :func:`latency_summary` instead of rolling its own mean — tail
latency, not the average, is what a service promises."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.metrics.classification import (accuracy, balanced_accuracy,
                                          confusion_matrix,
                                          precision_recall_f1,
                                          sensitivity_specificity)
from repro.metrics.ranking import roc_auc

__all__ = ["ClassificationReport", "classification_report",
           "LatencySummary", "latency_summary", "percentiles"]


def percentiles(samples, qs=(50.0, 95.0, 99.0)) -> dict[float, float]:
    """Percentiles of a sample buffer as ``{q: value}``.

    ``samples`` is any non-empty 1-D collection of numbers (a latency
    ring buffer, a list of per-call timings); values keep the caller's
    unit.  Linear interpolation between order statistics (numpy's
    default), so small buffers degrade gracefully instead of snapping to
    whole samples.
    """
    data = np.asarray(list(samples), dtype=np.float64)
    if data.size == 0:
        raise ValueError("percentiles of an empty sample buffer")
    values = np.percentile(data, list(qs))
    return {float(q): float(v) for q, v in zip(qs, values)}


@dataclass(frozen=True)
class LatencySummary:
    """Count, mean and tail percentiles of one latency sample buffer.

    Unit-agnostic: the fields carry whatever unit the samples did.
    """

    count: int
    mean: float
    p50: float
    p95: float
    p99: float

    def render(self, unit: str = "ms") -> str:
        return (f"n={self.count} mean={self.mean:.3f}{unit} "
                f"p50={self.p50:.3f}{unit} p95={self.p95:.3f}{unit} "
                f"p99={self.p99:.3f}{unit}")


def latency_summary(samples) -> LatencySummary:
    """Summarize a latency sample buffer (see :func:`percentiles`)."""
    data = np.asarray(list(samples), dtype=np.float64)
    if data.size == 0:
        raise ValueError("latency summary of an empty sample buffer")
    tails = percentiles(data)
    return LatencySummary(count=int(data.size), mean=float(data.mean()),
                          p50=tails[50.0], p95=tails[95.0],
                          p99=tails[99.0])


@dataclass
class ClassificationReport:
    """Summary of a binary classifier's performance on one evaluation set."""

    accuracy: float
    balanced_accuracy: float
    sensitivity: float
    specificity: float
    precision: float
    f1: float
    auc: float | None
    confusion: np.ndarray

    def render(self, title: str = "Classification report") -> str:
        lines = [title, "-" * len(title)]
        lines.append(f"accuracy            {self.accuracy:7.2%}")
        lines.append(f"balanced accuracy   {self.balanced_accuracy:7.2%}")
        lines.append(f"sensitivity         {self.sensitivity:7.2%}")
        lines.append(f"specificity         {self.specificity:7.2%}")
        lines.append(f"precision           {self.precision:7.2%}")
        lines.append(f"F1                  {self.f1:7.3f}")
        if self.auc is not None:
            lines.append(f"ROC AUC             {self.auc:7.3f}")
        lines.append("confusion matrix (rows = true, cols = predicted):")
        for row in self.confusion:
            lines.append("    " + "  ".join(f"{int(c):6d}" for c in row))
        return "\n".join(lines)


def classification_report(y_true, y_pred, scores=None,
                          positive_class: int = 1) -> ClassificationReport:
    """Compute the full diagnostic report.

    ``scores`` (optional) are real-valued scores for the positive class; when
    given, ROC AUC is included.
    """
    precision, _, f1 = precision_recall_f1(y_true, y_pred, positive_class)
    sensitivity, specificity = sensitivity_specificity(
        y_true, y_pred, positive_class)
    auc = None
    if scores is not None:
        labels = (np.asarray(y_true).ravel() == positive_class).astype(int)
        auc = roc_auc(labels, scores)
    return ClassificationReport(
        accuracy=accuracy(y_true, y_pred),
        balanced_accuracy=balanced_accuracy(y_true, y_pred),
        sensitivity=sensitivity,
        specificity=specificity,
        precision=precision,
        f1=f1,
        auc=auc,
        confusion=confusion_matrix(y_true, y_pred),
    )
