"""Label-based classification metrics.

All metrics accept integer label arrays.  ``num_classes`` is inferred from
the data when not given; pass it explicitly when a class may be absent from
a small evaluation fold (common with the paper's 5-fold protocol on the
~1000-trial ECG dataset).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "accuracy",
    "balanced_accuracy",
    "confusion_matrix",
    "precision_recall_f1",
    "sensitivity_specificity",
    "top_k_accuracy",
]


def _validate_labels(y_true, y_pred) -> tuple[np.ndarray, np.ndarray]:
    y_true = np.asarray(y_true, dtype=np.int64).ravel()
    y_pred = np.asarray(y_pred, dtype=np.int64).ravel()
    if y_true.shape != y_pred.shape:
        raise ValueError(
            f"label arrays differ in length: {y_true.shape} vs {y_pred.shape}")
    if y_true.size == 0:
        raise ValueError("cannot compute metrics on empty label arrays")
    if y_true.min() < 0 or y_pred.min() < 0:
        raise ValueError("labels must be non-negative integers")
    return y_true, y_pred


def accuracy(y_true, y_pred) -> float:
    """Fraction of exactly matching predictions."""
    y_true, y_pred = _validate_labels(y_true, y_pred)
    return float(np.mean(y_true == y_pred))


def confusion_matrix(y_true, y_pred, num_classes: int | None = None
                     ) -> np.ndarray:
    """``C[i, j]`` = number of samples with true class ``i`` predicted ``j``."""
    y_true, y_pred = _validate_labels(y_true, y_pred)
    if num_classes is None:
        num_classes = int(max(y_true.max(), y_pred.max())) + 1
    if y_true.max() >= num_classes or y_pred.max() >= num_classes:
        raise ValueError("labels exceed num_classes")
    matrix = np.zeros((num_classes, num_classes), dtype=np.int64)
    np.add.at(matrix, (y_true, y_pred), 1)
    return matrix


def balanced_accuracy(y_true, y_pred, num_classes: int | None = None
                      ) -> float:
    """Mean per-class recall — robust to class imbalance.

    Classes absent from ``y_true`` are excluded from the mean.
    """
    matrix = confusion_matrix(y_true, y_pred, num_classes)
    support = matrix.sum(axis=1)
    present = support > 0
    recall = np.zeros(len(matrix))
    recall[present] = np.diag(matrix)[present] / support[present]
    return float(recall[present].mean())


def precision_recall_f1(y_true, y_pred, positive_class: int = 1
                        ) -> tuple[float, float, float]:
    """Binary precision / recall / F1 for the given positive class.

    Conventions for degenerate folds: precision is 1.0 when nothing was
    predicted positive (no false alarms), recall is 1.0 when there are no
    positive samples (nothing missed); F1 is their harmonic mean, 0.0 when
    both are 0.
    """
    y_true, y_pred = _validate_labels(y_true, y_pred)
    pos_true = y_true == positive_class
    pos_pred = y_pred == positive_class
    tp = float(np.sum(pos_true & pos_pred))
    fp = float(np.sum(~pos_true & pos_pred))
    fn = float(np.sum(pos_true & ~pos_pred))
    precision = tp / (tp + fp) if (tp + fp) > 0 else 1.0
    recall = tp / (tp + fn) if (tp + fn) > 0 else 1.0
    if precision + recall == 0:
        f1 = 0.0
    else:
        f1 = 2 * precision * recall / (precision + recall)
    return precision, recall, f1


def sensitivity_specificity(y_true, y_pred, positive_class: int = 1
                            ) -> tuple[float, float]:
    """The clinical pair: sensitivity (recall of positives) and specificity
    (recall of negatives).

    For electrode-inversion screening, sensitivity is the fraction of
    swapped-lead recordings caught; specificity is the fraction of correct
    recordings not flagged.
    """
    y_true, y_pred = _validate_labels(y_true, y_pred)
    pos = y_true == positive_class
    neg = ~pos
    sensitivity = (float(np.mean(y_pred[pos] == positive_class))
                   if pos.any() else 1.0)
    specificity = (float(np.mean(y_pred[neg] != positive_class))
                   if neg.any() else 1.0)
    return sensitivity, specificity


def top_k_accuracy(y_true, scores, k: int = 5) -> float:
    """Fraction of samples whose true class is among the ``k`` highest
    scores — the paper's ImageNet Top-5 metric (Table III, Fig. 8).

    ``scores`` is ``(N, num_classes)``; ties are broken towards counting the
    true class as within the top ``k`` only if strictly fewer than ``k``
    classes score strictly higher.
    """
    y_true = np.asarray(y_true, dtype=np.int64).ravel()
    scores = np.asarray(scores, dtype=float)
    if scores.ndim != 2 or scores.shape[0] != y_true.size:
        raise ValueError(
            f"scores must be (N, C) with N={y_true.size}, got {scores.shape}")
    if not 1 <= k <= scores.shape[1]:
        raise ValueError(f"k={k} out of range for {scores.shape[1]} classes")
    true_scores = scores[np.arange(y_true.size), y_true]
    n_strictly_higher = np.sum(scores > true_scores[:, None], axis=1)
    return float(np.mean(n_strictly_higher < k))
