"""Classification metrics for medical signal tasks.

The paper reports plain accuracy, but its motivating applications (stroke
and heart-attack prevention, seizure prediction, electrode-inversion
screening) are diagnostic: what matters clinically is the *kind* of error,
not just the rate.  This package supplies the standard diagnostic metrics —
confusion matrices, sensitivity/specificity, ROC curves and their AUC —
so the example applications and benches can report them alongside the
paper's accuracy numbers.

All functions are pure numpy and operate on integer label arrays (and, for
ranking metrics, real-valued scores), independent of the training stack.
"""

from repro.metrics.classification import (
    accuracy,
    balanced_accuracy,
    confusion_matrix,
    precision_recall_f1,
    sensitivity_specificity,
    top_k_accuracy,
)
from repro.metrics.ranking import roc_auc, roc_curve
from repro.metrics.report import (ClassificationReport, LatencySummary,
                                  classification_report, latency_summary,
                                  percentiles)

__all__ = [
    "accuracy",
    "balanced_accuracy",
    "confusion_matrix",
    "precision_recall_f1",
    "sensitivity_specificity",
    "top_k_accuracy",
    "roc_curve",
    "roc_auc",
    "ClassificationReport",
    "classification_report",
    "LatencySummary",
    "latency_summary",
    "percentiles",
]
