"""Execution backends: one substrate per class, one protocol for all.

A backend turns substrate-independent folded layers (the output of the
batch-norm folding of Eq. 3) into executors with ``forward_bits`` /
``forward_scores`` methods.  All expensive preparation — packing weight
bits into uint64 words, programming 2T2R tiles — happens in the
``prepare_*`` calls at compile time, never per batch.

The registry (:func:`register_backend` / :func:`resolve_backend`) is the
extension point: a sharded multi-macro backend or an async sweep executor
plugs in by name without touching the compiler.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.nn.binary import FoldedBinaryDense, FoldedOutputDense
from repro.nn.bitops import (PackedBinaryConv1d, PackedBinaryConv2d,
                             PackedBinaryDense, PackedOutputDense)
from repro.rram.accelerator import (AcceleratorConfig, InMemoryDenseLayer,
                                    InMemoryOutputLayer, MemoryController,
                                    ShardedController)
from repro.rram.conv import FoldedBinaryConv1d, InMemoryConv1dLayer
from repro.rram.conv2d import FoldedBinaryConv2d, InMemoryConv2dLayer
from repro.rram.ecc import EccMemoryController, HammingCode
from repro.rram.energy import EnergyModel
from repro.rram.faults import FaultMap
from repro.rram.floorplan import ChipFloorplan, LayerPlacement, MacroGeometry
from repro.rram.reliability import LifetimeConfig

__all__ = ["Backend", "ReferenceBackend", "PackedBackend", "RRAMBackend",
           "ShardedRRAMBackend", "register_backend", "resolve_backend",
           "available_backends", "resolve_ecc"]


def resolve_ecc(spec) -> HammingCode | None:
    """Accept an ECC spec: ``None``, a code name or a built code.

    Names: ``"secded"`` — the (72, 64) extended Hamming code of server
    memories; ``"rate-half"`` — the (8, 4) code matching 2T2R's 2x
    redundancy.
    """
    if spec is None or isinstance(spec, HammingCode):
        return spec
    if isinstance(spec, str):
        name = spec.lower().replace("_", "-")
        if name in ("none", ""):
            return None
        if name == "secded":
            return HammingCode.secded_72_64()
        if name == "rate-half":
            return HammingCode.rate_half()
        raise ValueError(
            f"unknown ECC code {spec!r}; known: secded, rate-half, none")
    raise TypeError(f"ecc must be None, a name or a HammingCode, "
                    f"got {type(spec)}")

class Backend:
    """Protocol for inference substrates.

    Subclasses override the ``prepare_*`` hooks for the layer types they
    support; the defaults raise so an unsupported lowering fails at
    compile time, not mid-inference.
    """

    name = "abstract"

    def begin_plan(self) -> None:
        """Called once by ``compile`` before any ``prepare_*`` call.

        Stateful backends reset per-plan bookkeeping here (the sharded
        backend clears its recorded placements) so reusing one backend
        instance across compiles never leaks state between plans.
        """

    def prepare_dense(self, folded: FoldedBinaryDense):
        raise NotImplementedError(
            f"backend {self.name!r} does not execute dense layers")

    def prepare_output(self, folded: FoldedOutputDense):
        raise NotImplementedError(
            f"backend {self.name!r} does not execute output layers")

    def prepare_conv1d(self, folded: FoldedBinaryConv1d):
        raise NotImplementedError(
            f"backend {self.name!r} does not execute 1-D convolutions")

    def prepare_conv2d(self, folded: FoldedBinaryConv2d):
        raise NotImplementedError(
            f"backend {self.name!r} does not execute 2-D convolutions")

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class ReferenceBackend(Backend):
    """The integer matmul formulation of Eq. 3 — the verification golden
    model.  Folded layers already execute themselves, so preparation is
    the identity."""

    name = "reference"

    def prepare_dense(self, folded: FoldedBinaryDense):
        return folded

    def prepare_output(self, folded: FoldedOutputDense):
        return folded

    def prepare_conv1d(self, folded: FoldedBinaryConv1d):
        return folded

    def prepare_conv2d(self, folded: FoldedBinaryConv2d):
        return folded


class PackedBackend(Backend):
    """Packed-word XNOR-popcount kernels (64 synapses per machine word).

    Dense layers and convolutions (bit-packed im2col; bit-sliced kernels
    for depthwise) — the software mirror of the paper's §II-A argument
    that XNOR gates replace multipliers.
    """

    name = "packed"

    def prepare_dense(self, folded: FoldedBinaryDense):
        return PackedBinaryDense(folded)

    def prepare_output(self, folded: FoldedOutputDense):
        return PackedOutputDense(folded)

    def prepare_conv1d(self, folded: FoldedBinaryConv1d):
        return PackedBinaryConv1d(folded)

    def prepare_conv2d(self, folded: FoldedBinaryConv2d):
        return PackedBinaryConv2d(folded)


class RRAMBackend(Backend):
    """The Fig. 5 in-memory architecture on simulated 2T2R macros.

    Preparation programs the weight bits into
    :class:`~repro.rram.accelerator.MemoryController` tile grids; layers
    then execute with vectorized word-line scanning and batched activation
    broadcast.  One shared ``rng`` keeps deployment deterministic per
    config seed, matching :func:`~repro.rram.accelerator.deploy_classifier`.

    ``fast_path`` dispatches deterministic (noise-free) configurations to
    the packed uint64 XNOR-popcount kernels at program time: ``"auto"``
    (default) enables it exactly when the config has zero device
    variability and zero sense offset — bit-exact with the simulated
    path, orders of magnitude faster; ``False`` forces full device
    simulation; ``True`` requires a noise-free config.

    Every prepared layer also exposes the Monte-Carlo trial axis
    (``forward_bits_trials`` / ``forward_scores_trials``): a compiled
    plan on this backend evaluates ``T`` noisy trials in one
    trial-batched pass via
    :meth:`~repro.runtime.compile.CompiledModel.scores_trials`, with
    per-trial child RNG streams making the stack bit-identical to a
    serial per-trial loop (see :mod:`repro.rram.mc`).
    """

    name = "rram"

    def __init__(self, config: AcceleratorConfig | None = None,
                 rng: np.random.Generator | None = None,
                 fast_path: bool | str = "auto",
                 ecc=None,
                 lifetime: LifetimeConfig | None = None,
                 fault_map: FaultMap | None = None):
        self.config = config or AcceleratorConfig()
        self.rng = rng or np.random.default_rng(self.config.seed)
        self.fast_path = fast_path
        self.ecc = resolve_ecc(ecc)
        self.lifetime = lifetime
        self.fault_map = fault_map
        self._layer_index = 0

    def begin_plan(self) -> None:
        self._layer_index = 0

    def _controller(self, folded):
        """Build the layer's controller when the reliability layer is in
        play; ``None`` keeps the layers' own legacy construction (byte-
        identical plans with no ECC, no lifetime, no faults)."""
        if self.ecc is None and self.lifetime is None \
                and self.fault_map is None:
            return None
        key = (self._layer_index,)
        self._layer_index += 1
        if self.ecc is not None:
            return EccMemoryController(
                folded.weight_bits, self.config, self.rng, code=self.ecc,
                fast_path=self.fast_path, lifetime=self.lifetime,
                fault_map=self.fault_map, fault_key=key)
        return MemoryController(
            folded.weight_bits, self.config, self.rng, self.fast_path,
            lifetime=self.lifetime, fault_map=self.fault_map,
            fault_key=key)

    def prepare_dense(self, folded: FoldedBinaryDense):
        return InMemoryDenseLayer(folded, self.config, self.rng,
                                  self.fast_path,
                                  controller=self._controller(folded))

    def prepare_output(self, folded: FoldedOutputDense):
        return InMemoryOutputLayer(folded, self.config, self.rng,
                                   self.fast_path,
                                   controller=self._controller(folded))

    def prepare_conv1d(self, folded: FoldedBinaryConv1d):
        return InMemoryConv1dLayer(folded, self.config, self.rng,
                                   self.fast_path,
                                   controller=self._controller(folded))

    def prepare_conv2d(self, folded: FoldedBinaryConv2d):
        return InMemoryConv2dLayer(folded, self.config, self.rng,
                                   self.fast_path,
                                   controller=self._controller(folded))

    def __repr__(self) -> str:
        extras = ""
        if self.ecc is not None:
            extras += f", ecc=({self.ecc.n},{self.ecc.k})"
        if self.lifetime is not None and self.lifetime.active:
            extras += f", lifetime={self.lifetime.hours:g}h"
        if self.fault_map is not None and not self.fault_map.empty:
            extras += ", faults"
        return (f"RRAMBackend(config={self.config!r}, "
                f"fast_path={self.fast_path!r}{extras})")


class ShardedRRAMBackend(Backend):
    """Multi-macro execution: every folded layer split across simulated
    RRAM *chips* by its floorplan placement.

    The monolithic :class:`RRAMBackend` cannot place a layer wider than
    one controller's array at realistic macro geometries; this backend
    executes the :class:`~repro.rram.floorplan.LayerPlacement` shard map
    instead — one fixed-geometry macro chip per shard, fan-in slices
    producing partial popcounts that a digital reduction stage sums before
    the single integer threshold (fan-out stripes are concatenated for
    wide layers).  Noise-free configurations are bit-identical to the
    monolithic backend *and* to reference/packed; noisy configurations
    draw per-shard independent sense noise through the
    :func:`repro.rram.mc.shard_streams` contract, so Monte-Carlo trial
    batching (``scores_trials`` / ``evaluate_compiled(trials=)``) stays
    chunk-invariant on the sharded path.

    Placements are recorded per prepared layer (in plan order) and exposed
    as a :class:`~repro.rram.floorplan.ChipFloorplan`, so a compiled plan
    reports per-macro utilization, area and programming/scan energy from
    the existing floorplan cost model.

    ``stacked`` controls the fast-path read plan per prepared layer:
    ``"auto"`` (default) builds the program-time
    :class:`~repro.rram.accelerator.StackedShardPlan` whenever the layer
    runs noise-free, collapsing the per-shard dispatch loop into one
    batched kernel; ``False`` keeps the per-shard fast loop (the
    reference path for equivalence tests).  Reloaded plan artifacts
    (:func:`repro.io.load_compiled`) rebind through the same
    ``prepare_*`` hooks, so they pick up the stacked plan too.
    """

    name = "sharded"

    def __init__(self, config: AcceleratorConfig | None = None,
                 macro: MacroGeometry | None = None,
                 rng: np.random.Generator | None = None,
                 fast_path: bool | str = "auto",
                 energy: EnergyModel | None = None,
                 stacked: bool | str = "auto",
                 lifetime: LifetimeConfig | None = None,
                 fault_map: FaultMap | None = None,
                 spares: int | str = "auto",
                 tenant: str | None = None):
        self.config = config or AcceleratorConfig()
        self.macro = macro or MacroGeometry(self.config.tile_rows,
                                            self.config.tile_cols)
        self.rng = rng or np.random.default_rng(self.config.seed)
        self.fast_path = fast_path
        self.energy = energy or EnergyModel()
        self.stacked = stacked
        self.lifetime = lifetime
        self.fault_map = fault_map
        self.spares = spares
        #: Model name stamped on every placement this backend prepares —
        #: multi-tenant deploys label each tenant's layers so merged
        #: floorplans report per-tenant occupancy.
        self.tenant = tenant
        self.placements: list[LayerPlacement] = []
        self._macro_offset = 0

    def begin_plan(self) -> None:
        self.placements = []
        self._macro_offset = 0

    def _controller(self, kind: str, weight_bits) -> ShardedController:
        count = sum(1 for p in self.placements if p.name.startswith(kind))
        name = f"{kind}{count + 1}"
        placement = LayerPlacement(name, weight_bits.shape[0],
                                   weight_bits.shape[1], self.macro,
                                   tenant=self.tenant)
        layer_index = len(self.placements)
        # The fault map's dead-macro indices are chip-global: rebase them
        # onto this layer's shard map (macros are assigned to layers in
        # plan order, matching the floorplan's macro count walk).
        local_map = self.fault_map
        if local_map is not None:
            local_map = local_map.rebased(placement.n_macros,
                                          self._macro_offset)
        self._macro_offset += placement.n_macros
        controller = ShardedController(weight_bits, placement, self.config,
                                       self.rng, self.fast_path,
                                       stacked=self.stacked,
                                       lifetime=self.lifetime,
                                       fault_map=local_map,
                                       fault_key=(layer_index,),
                                       spares=self.spares)
        self.placements.append(placement)
        return controller

    def prepare_dense(self, folded: FoldedBinaryDense):
        return InMemoryDenseLayer(
            folded, controller=self._controller("fc", folded.weight_bits))

    def prepare_output(self, folded: FoldedOutputDense):
        return InMemoryOutputLayer(
            folded, controller=self._controller("out", folded.weight_bits))

    def prepare_conv1d(self, folded: FoldedBinaryConv1d):
        return InMemoryConv1dLayer(
            folded, controller=self._controller("conv", folded.weight_bits))

    def prepare_conv2d(self, folded: FoldedBinaryConv2d):
        return InMemoryConv2dLayer(
            folded, controller=self._controller("conv", folded.weight_bits))

    def floorplan(self) -> ChipFloorplan:
        """The aggregate chip plan of the most recent compile (placements
        reset at each ``begin_plan``)."""
        if not self.placements:
            raise ValueError("no layers prepared yet; compile a model "
                             "with this backend first")
        return ChipFloorplan(list(self.placements), self.energy)

    def __repr__(self) -> str:
        extras = ""
        if self.lifetime is not None and self.lifetime.active:
            extras += f", lifetime={self.lifetime.hours:g}h"
        if self.fault_map is not None and not self.fault_map.empty:
            extras += ", faults"
        return (f"ShardedRRAMBackend(macro={self.macro.rows}x"
                f"{self.macro.cols}, layers={len(self.placements)}, "
                f"fast_path={self.fast_path!r}, "
                f"stacked={self.stacked!r}{extras})")


_BACKENDS: dict[str, Callable[[], Backend]] = {
    ReferenceBackend.name: ReferenceBackend,
    PackedBackend.name: PackedBackend,
    RRAMBackend.name: RRAMBackend,
    ShardedRRAMBackend.name: ShardedRRAMBackend,
}


def register_backend(name: str, factory: Callable[[], Backend],
                     overwrite: bool = False) -> None:
    """Register a new substrate under ``name``.

    ``factory`` is called with no arguments when the backend is requested
    by name; pass configured instances to :func:`resolve_backend` directly
    when construction needs parameters.  Re-registering an existing name
    raises unless ``overwrite=True`` — silently shadowing a substrate
    (including the built-ins) is almost always a bug in plug-in code.
    """
    if not callable(factory):
        raise TypeError("factory must be callable")
    if name in _BACKENDS and not overwrite:
        raise ValueError(
            f"backend {name!r} is already registered; pass overwrite=True "
            "to replace it")
    _BACKENDS[name] = factory


def available_backends() -> tuple[str, ...]:
    """Names currently registered, in registration order."""
    return tuple(_BACKENDS)


def resolve_backend(spec) -> Backend:
    """Accept a backend name or an already-built :class:`Backend`."""
    if isinstance(spec, Backend):
        return spec
    if isinstance(spec, str):
        try:
            return _BACKENDS[spec]()
        except KeyError:
            raise ValueError(
                f"unknown backend {spec!r}; registered: "
                f"{', '.join(_BACKENDS)}") from None
    raise TypeError(f"backend must be a name or Backend, got {type(spec)}")
