"""Declarative plan ops: the bridge between compiled plans and artifacts.

Every digital-periphery op of a plan (front-end, pooling, flatten,
re-thresholding) is described by a **spec** — a JSON-serializable dict
(``{"op": <kind>, "params": {...}}``) plus named numpy arrays — and the
executable closure is *built from the spec* by this module.  The compiler
extracts specs from the trained model once; :mod:`repro.io` persists them
and rebuilds the ops on load.  Because the saved and the freshly compiled
plan both run the closure this module builds, a reloaded artifact is
bit-identical to a fresh compile by construction, on every backend.

Substrate ops (:class:`~repro.runtime.ir.BitLayerOp` /
:class:`~repro.runtime.ir.OutputLayerOp`) need no spec: their ``folded``
dataclasses (weight bits + integer thresholds) are already declarative,
and a backend rebinds them through its ``prepare_*`` hooks.

Spec kinds
----------
front-ends
    ``bits`` (activation-bit passthrough, the classic memory-controller
    input contract), ``conv1d_front`` (ECG: input-norm + analog conv
    stage 0 + binarize [+ max-pool]), ``conv2d_front`` (EEG: reshape +
    temporal conv + binarize), ``external`` (the float feature stack of
    a non-lowered model — not reloadable without a ``front_end``
    callable).
transforms
    ``max_pool1d``, ``flatten``, ``two_row_lookup`` (pre-classifier
    batch-norm + sign over known ±1 inputs), ``avg_pool_bridge`` (the
    EEG periphery: ±1 avg-pool + flatten + batch-norm + sign).
layers
    ``dense``, ``conv1d``, ``conv2d``, ``output`` — the folded forms.
"""

from __future__ import annotations

import numpy as np

from repro.nn.activations import Sign
from repro.nn.binary import (FoldedBinaryDense, FoldedOutputDense, from_bits,
                             to_bits)
from repro.nn.container import Sequential
from repro.nn.conv import conv1d_op, conv2d_op
from repro.nn.norm import BatchNorm1d, BatchNorm2d, InputNorm
from repro.nn.pooling import AvgPool1d
from repro.rram.conv import FoldedBinaryConv1d, max_pool_bits_1d
from repro.rram.conv2d import FoldedBinaryConv2d
from repro.runtime.ir import (BitLayerOp, BitTransformOp, FrontEndOp,
                              OutputLayerOp, PlanOp)
from repro.tensor import Tensor, no_grad

__all__ = ["FORMAT_VERSION", "PlanSerializationError", "build_front_end",
           "build_transform", "folded_payload", "folded_from_payload",
           "plan_payload", "ops_from_payload"]

FORMAT_VERSION = 1


class PlanSerializationError(ValueError):
    """A plan op cannot be expressed as (or rebuilt from) an artifact."""


# ---------------------------------------------------------------------------
# Reconstructed library modules (shared by compile-time and load-time paths)
# ---------------------------------------------------------------------------
def _rebuild_batchnorm(cls, params: dict, arrays: dict):
    """A library batch-norm in eval mode, populated from saved arrays.

    Using the real :class:`~repro.nn.norm._BatchNorm` subclass (not a
    re-derived affine) keeps the float expression — and therefore every
    borderline sign bit — identical to the training stack's forward.
    """
    bn = cls(int(params["bn_features"]), eps=float(params["bn_eps"]))
    bn.gamma.data[...] = np.asarray(arrays["bn_gamma"], dtype=np.float64)
    bn.beta.data[...] = np.asarray(arrays["bn_beta"], dtype=np.float64)
    bn.set_buffer("running_mean",
                  np.asarray(arrays["bn_mean"], dtype=np.float64))
    bn.set_buffer("running_var",
                  np.asarray(arrays["bn_var"], dtype=np.float64))
    bn.eval()
    return bn


def bn_payload(bn) -> tuple[dict, dict]:
    """Spec params + arrays of a trained batch-norm (running statistics)."""
    params = {"bn_features": int(bn.num_features), "bn_eps": float(bn.eps)}
    arrays = {"bn_gamma": np.array(bn.gamma.data, dtype=np.float64),
              "bn_beta": np.array(bn.beta.data, dtype=np.float64),
              "bn_mean": np.array(bn.running_mean, dtype=np.float64),
              "bn_var": np.array(bn.running_var, dtype=np.float64)}
    return params, arrays


# ---------------------------------------------------------------------------
# Front-end builders
# ---------------------------------------------------------------------------
def _front_bits(params: dict, arrays: dict):
    width = params.get("in_features")

    def run(x):
        bits = np.asarray(x, dtype=np.uint8)
        if width is not None and (bits.ndim != 2 or bits.shape[1] != width):
            raise ValueError(
                f"expected (N, {width}) activation bits, got {bits.shape}")
        return bits

    return run, "activation bits passthrough"


def _front_conv1d(params: dict, arrays: dict):
    norm = InputNorm(int(params["in_channels"]))
    norm.set_buffer("mean", np.asarray(arrays["norm_mean"],
                                       dtype=np.float64))
    norm.set_buffer("std", np.asarray(arrays["norm_std"], dtype=np.float64))
    bn = _rebuild_batchnorm(BatchNorm1d, params, arrays)
    weight = Tensor(from_bits(arrays["weight_bits"]))
    stride, padding = int(params["stride"]), int(params["padding"])
    pool_kernel = params.get("pool_kernel")
    pool_stride = params.get("pool_stride")

    def run(inputs: np.ndarray) -> np.ndarray:
        with no_grad():
            h = norm(Tensor(np.asarray(inputs)))
            h = bn(conv1d_op(h, weight, None, stride, padding))
        bits = to_bits(h.data)
        if pool_kernel is not None:
            bits = max_pool_bits_1d(bits, int(pool_kernel), int(pool_stride))
        return bits

    return run, "input-norm + conv stage 0 + binarize (analog front)"


def _front_conv2d(params: dict, arrays: dict):
    bn = _rebuild_batchnorm(BatchNorm2d, params, arrays)
    weight = Tensor(from_bits(arrays["weight_bits"]))
    n_samples = int(params["n_samples"])
    n_channels = int(params["n_channels"])
    stride = tuple(int(s) for s in params["stride"])
    padding = tuple(int(p) for p in params["padding"])

    def run(inputs: np.ndarray) -> np.ndarray:
        x = Tensor(np.asarray(inputs))
        if x.ndim != 3:
            raise ValueError(
                f"expected (N, electrodes, time), got {x.shape}")
        with no_grad():
            h = x.transpose((0, 2, 1)).reshape(x.shape[0], 1, n_samples,
                                               n_channels)
            h = bn(conv2d_op(h, weight, None, stride, padding))
        return to_bits(h.data)

    return run, "temporal conv + binarize (analog front)"


_FRONT_BUILDERS = {
    "bits": _front_bits,
    "conv1d_front": _front_conv1d,
    "conv2d_front": _front_conv2d,
}


def build_front_end(spec: dict, arrays: dict | None = None,
                    fn=None, label: str | None = None) -> FrontEndOp:
    """Build a :class:`FrontEndOp` from a spec (and attach the spec to it).

    ``external`` specs wrap a model- or user-supplied closure and require
    ``fn``; every other kind is self-contained and rebuilds the closure
    from the spec arrays alone.
    """
    arrays = dict(arrays or {})
    kind = spec["op"]
    if kind == "external":
        if fn is None:
            raise PlanSerializationError(
                "this plan's front-end is external (the float feature "
                "stack of the model it was compiled from); pass a "
                "front_end= callable to rebuild it, or compile with "
                "lower_features=True for a self-contained artifact")
        return FrontEndOp(fn, label or "custom front-end", spec=spec,
                          spec_arrays=arrays)
    try:
        builder = _FRONT_BUILDERS[kind]
    except KeyError:
        raise PlanSerializationError(
            f"unknown front-end spec {kind!r}; this artifact may need a "
            "newer repro") from None
    run, default_label = builder(spec.get("params", {}), arrays)
    return FrontEndOp(run, label or default_label, spec=spec,
                      spec_arrays=arrays)


# ---------------------------------------------------------------------------
# Bit-transform builders
# ---------------------------------------------------------------------------
def _transform_max_pool1d(params: dict, arrays: dict):
    kernel, stride = int(params["kernel"]), int(params["stride"])
    return (lambda bits: max_pool_bits_1d(bits, kernel, stride),
            f"max-pool bits k={kernel} (logical OR)")


def _transform_flatten(params: dict, arrays: dict):
    return (lambda bits: np.ascontiguousarray(bits).reshape(
        bits.shape[0], -1), "flatten")


def _transform_two_row_lookup(params: dict, arrays: dict):
    bit_for_0 = np.asarray(arrays["bit_for_0"], dtype=np.uint8)
    bit_for_1 = np.asarray(arrays["bit_for_1"], dtype=np.uint8)

    def run(bits: np.ndarray) -> np.ndarray:
        return np.where(bits != 0, bit_for_1[None, :], bit_for_0[None, :])

    return run, ("pre-classifier batch-norm + sign (two-row lookup)")


def _transform_avg_pool_bridge(params: dict, arrays: dict):
    pool = AvgPool1d(int(params["pool_kernel"]), int(params["pool_stride"]))
    pre = Sequential(_rebuild_batchnorm(BatchNorm1d, params, arrays), Sign())
    pre.eval()

    def run(bits: np.ndarray) -> np.ndarray:
        # (N, F, T', 1) bits -> ±1 -> overlapping avg-pool -> flatten ->
        # pre-classifier batch-norm + sign.  The averaging pool needs real
        # arithmetic, so this stage lives in the digital periphery.
        pm1 = np.where(bits != 0, 1.0, -1.0).reshape(bits.shape[:3])
        with no_grad():
            h = pool(Tensor(pm1))
            h = pre(h.flatten_from(1))
        return to_bits(h.data)

    return run, "avg-pool + flatten + pre-classifier (periphery)"


_TRANSFORM_BUILDERS = {
    "max_pool1d": _transform_max_pool1d,
    "flatten": _transform_flatten,
    "two_row_lookup": _transform_two_row_lookup,
    "avg_pool_bridge": _transform_avg_pool_bridge,
}


def build_transform(spec: dict, arrays: dict | None = None,
                    label: str | None = None) -> BitTransformOp:
    """Build a :class:`BitTransformOp` from a spec (attached to the op)."""
    arrays = dict(arrays or {})
    try:
        builder = _TRANSFORM_BUILDERS[spec["op"]]
    except KeyError:
        raise PlanSerializationError(
            f"unknown periphery spec {spec['op']!r}; this artifact may "
            "need a newer repro") from None
    run, default_label = builder(spec.get("params", {}), arrays)
    return BitTransformOp(run, label or default_label, spec=spec,
                          spec_arrays=arrays)


# ---------------------------------------------------------------------------
# Substrate layers: folded forms <-> payloads
# ---------------------------------------------------------------------------
_FOLD_ARRAYS = ("weight_bits", "theta", "gamma_sign", "beta_sign")


def folded_payload(folded) -> tuple[str, dict, dict]:
    """``(kind, params, arrays)`` of any folded substrate layer.

    The params record the geometry a memory controller needs beyond the
    raw arrays: fan-in, kernel/stride for convolutions, and the depthwise
    flag (packed kernels derive their pad corrections from these).
    """
    if isinstance(folded, FoldedBinaryConv1d):
        params = {"in_channels": int(folded.in_channels),
                  "kernel_size": int(folded.kernel_size),
                  "stride": int(folded.stride),
                  "fan_in": int(folded.fan_in)}
        return "conv1d", params, {k: getattr(folded, k)
                                  for k in _FOLD_ARRAYS}
    if isinstance(folded, FoldedBinaryConv2d):
        params = {"in_channels": int(folded.in_channels),
                  "kernel_size": [int(k) for k in folded.kernel_size],
                  "stride": [int(s) for s in folded.stride],
                  "depthwise": bool(folded.depthwise),
                  "fan_in": int(folded.fan_in)}
        return "conv2d", params, {k: getattr(folded, k)
                                  for k in _FOLD_ARRAYS}
    if isinstance(folded, FoldedOutputDense):
        params = {"fan_in": int(folded.in_features)}
        return "output", params, {"weight_bits": folded.weight_bits,
                                  "scale": folded.scale,
                                  "offset": folded.offset}
    if isinstance(folded, FoldedBinaryDense):
        params = {"fan_in": int(folded.in_features)}
        return "dense", params, {k: getattr(folded, k)
                                 for k in _FOLD_ARRAYS}
    raise PlanSerializationError(
        f"cannot serialize substrate layer {type(folded).__name__}")


def folded_from_payload(kind: str, params: dict, arrays: dict):
    """Rebuild a folded substrate layer from its artifact payload."""
    if kind == "dense":
        return FoldedBinaryDense(
            weight_bits=np.asarray(arrays["weight_bits"], dtype=np.uint8),
            theta=np.asarray(arrays["theta"]),
            gamma_sign=np.asarray(arrays["gamma_sign"]),
            beta_sign=np.asarray(arrays["beta_sign"]))
    if kind == "output":
        return FoldedOutputDense(
            weight_bits=np.asarray(arrays["weight_bits"], dtype=np.uint8),
            scale=np.asarray(arrays["scale"]),
            offset=np.asarray(arrays["offset"]))
    if kind == "conv1d":
        return FoldedBinaryConv1d(
            weight_bits=np.asarray(arrays["weight_bits"], dtype=np.uint8),
            in_channels=int(params["in_channels"]),
            kernel_size=int(params["kernel_size"]),
            stride=int(params["stride"]),
            theta=np.asarray(arrays["theta"]),
            gamma_sign=np.asarray(arrays["gamma_sign"]),
            beta_sign=np.asarray(arrays["beta_sign"]))
    if kind == "conv2d":
        return FoldedBinaryConv2d(
            weight_bits=np.asarray(arrays["weight_bits"], dtype=np.uint8),
            in_channels=int(params["in_channels"]),
            kernel_size=tuple(int(k) for k in params["kernel_size"]),
            stride=tuple(int(s) for s in params["stride"]),
            theta=np.asarray(arrays["theta"]),
            gamma_sign=np.asarray(arrays["gamma_sign"]),
            beta_sign=np.asarray(arrays["beta_sign"]),
            depthwise=bool(params.get("depthwise", False)))
    raise PlanSerializationError(
        f"unknown substrate layer kind {kind!r}; this artifact may need "
        "a newer repro")


_PREPARE_HOOKS = {
    "dense": lambda backend: backend.prepare_dense,
    "conv1d": lambda backend: backend.prepare_conv1d,
    "conv2d": lambda backend: backend.prepare_conv2d,
    "output": lambda backend: backend.prepare_output,
}


# ---------------------------------------------------------------------------
# Whole-plan payloads
# ---------------------------------------------------------------------------
def plan_payload(plan) -> tuple[list[dict], dict[str, np.ndarray]]:
    """Flatten a compiled plan into ``(ops_meta, arrays)``.

    ``ops_meta`` is a JSON-serializable list (one entry per op: role,
    spec kind, label, params, array names); ``arrays`` maps flat
    ``op{i}.{name}`` keys to the numpy payloads.  Raises
    :class:`PlanSerializationError` for ops that carry no spec, except
    the front-end, which degrades to ``external`` (reloadable only with
    a caller-supplied closure).
    """
    ops_meta: list[dict] = []
    arrays: dict[str, np.ndarray] = {}
    for index, op in enumerate(plan.ops):
        if isinstance(op, (BitLayerOp, OutputLayerOp)):
            role = "output" if isinstance(op, OutputLayerOp) else "layer"
            kind, params, op_arrays = folded_payload(op.folded)
        elif isinstance(op, (FrontEndOp, BitTransformOp)):
            role = "front" if isinstance(op, FrontEndOp) else "transform"
            spec = getattr(op, "spec", None)
            if spec is None:
                if role != "front":
                    raise PlanSerializationError(
                        f"op {index} ({op.label!r}) carries no spec and "
                        "cannot be persisted; build periphery ops through "
                        "repro.runtime.serialize")
                spec = {"op": "external", "params": {}}
            kind = spec["op"]
            params = dict(spec.get("params", {}))
            op_arrays = dict(getattr(op, "spec_arrays", None) or {})
            if kind == "external":
                op_arrays = {}
        else:
            raise PlanSerializationError(
                f"op {index} ({type(op).__name__}) is not a serializable "
                "plan op")
        ops_meta.append({"index": index, "role": role, "op": kind,
                         "label": op.label, "params": params,
                         "arrays": sorted(op_arrays)})
        for name, value in op_arrays.items():
            arrays[f"op{index}.{name}"] = np.asarray(value)
    return ops_meta, arrays


def ops_from_payload(ops_meta: list[dict], arrays: dict[str, np.ndarray],
                     backend, front_end=None) -> list[PlanOp]:
    """Rebuild executable plan ops on ``backend`` from an artifact payload.

    The caller is responsible for ``backend.begin_plan()``; substrate
    layers are prepared in plan order, so stateful backends (the sharded
    floorplan) see exactly the sequence the compiler would have produced.
    """
    ops: list[PlanOp] = []
    for entry in ops_meta:
        index = entry["index"]
        op_arrays = {name: arrays[f"op{index}.{name}"]
                     for name in entry["arrays"]}
        spec = {"op": entry["op"], "params": dict(entry["params"])}
        role = entry["role"]
        if role == "front":
            ops.append(build_front_end(spec, op_arrays, fn=front_end,
                                       label=entry["label"]))
        elif role == "transform":
            ops.append(build_transform(spec, op_arrays,
                                       label=entry["label"]))
        elif role in ("layer", "output"):
            folded = folded_from_payload(entry["op"], entry["params"],
                                         op_arrays)
            prepare = _PREPARE_HOOKS[entry["op"]](backend)
            if role == "layer":
                ops.append(BitLayerOp(prepare(folded), folded,
                                      entry["label"]))
            else:
                ops.append(OutputLayerOp(prepare(folded), folded,
                                         entry["label"]))
        else:
            raise PlanSerializationError(
                f"unknown plan-op role {role!r}; this artifact may need "
                "a newer repro")
    return ops
