"""Unified inference runtime: compile a trained model once, execute on any
substrate.

The paper's central claim is that one trained BNN (Eq. 3) can run on three
different substrates — the floating-point training stack, packed-word
XNOR-popcount digital kernels, and the Fig. 5 in-memory 2T2R architecture.
This package makes that a first-class architecture instead of per-example
wiring:

* :func:`compile` walks a trained model (the ``fc1``/``bn_fc1`` classifier
  convention shared by all three paper networks), folds every batch-norm
  **once**, packs / programs weight bits **once**, and returns an
  executable :class:`CompiledModel` plan;
* a :class:`Backend` maps each folded layer onto a substrate —
  :class:`ReferenceBackend` (integer matmul formulation),
  :class:`PackedBackend` (uint64 XNOR-popcount kernels, dense *and*
  convolutional), :class:`RRAMBackend` (simulated 2T2R macros with
  vectorized word-line scanning), :class:`ShardedRRAMBackend` (the
  floorplan's shard map executed across multiple fixed-geometry macro
  chips with partial-popcount reduction);
* :func:`register_backend` makes every future substrate (async sweep
  executors, multi-model serving) a plug-in rather than a rewrite.

Fully binarized EEG/ECG models can additionally lower their *feature*
convolutions onto the backend (``lower_features``), keeping only the
analog-facing first stage in the digital front-end — standard BNN
practice.
"""

from repro.runtime.backends import (Backend, ReferenceBackend, PackedBackend,
                                    RRAMBackend, ShardedRRAMBackend,
                                    register_backend, resolve_backend,
                                    available_backends)
from repro.runtime.compile import (compile, CompiledModel,
                                   fold_classifier_stack, plan_from_folded)
from repro.runtime.ir import (PlanOp, FrontEndOp, BitTransformOp, BitLayerOp,
                              OutputLayerOp)
from repro.runtime.serialize import FORMAT_VERSION, PlanSerializationError

__all__ = [
    "compile", "CompiledModel", "fold_classifier_stack", "plan_from_folded",
    "Backend", "ReferenceBackend", "PackedBackend", "RRAMBackend",
    "ShardedRRAMBackend",
    "register_backend", "resolve_backend", "available_backends",
    "PlanOp", "FrontEndOp", "BitTransformOp", "BitLayerOp", "OutputLayerOp",
    "FORMAT_VERSION", "PlanSerializationError",
]
