"""The compiler: trained model -> executable plan, folding and packing once.

``compile(model, backend=...)`` is the single entry point every deployment
path in this repository goes through (the ``fold_classifier`` /
``deploy_classifier`` helpers in :mod:`repro.rram.accelerator` are thin
compatibility shims over it).  It:

1. puts the model in eval mode (deployment uses the batch-norm running
   statistics, exactly like the hardware fold);
2. folds every binarized layer into substrate-independent integer
   popcount/threshold form — **once**;
3. asks the backend to prepare an executor per folded layer (packing
   weight words, programming RRAM tiles) — **once**;
4. returns a :class:`CompiledModel` whose ops chain activation bits from
   the digital front-end to the class scores.

For fully binarized EEG/ECG networks, ``lower_features`` additionally maps
the feature convolutions onto the backend: every convolution whose inputs
are already binary executes on the substrate, and only the analog-facing
first stage stays in the digital front-end (standard BNN practice — the
paper's §II-B conv adaptation).
"""

from __future__ import annotations

import numpy as np

from repro.models.common import BinarizationMode
from repro.nn.binary import (fold_batchnorm_output, fold_batchnorm_sign,
                             to_bits)
from repro.rram.conv import fold_conv1d_batchnorm_sign
from repro.rram.conv2d import fold_conv2d_batchnorm_sign
from repro.runtime.backends import Backend, resolve_backend
from repro.runtime.ir import (BitLayerOp, BitTransformOp, FrontEndOp,
                              OutputLayerOp, PlanOp)
from repro.runtime.serialize import (bn_payload, build_front_end,
                                     build_transform)
from repro.tensor import Tensor, no_grad

__all__ = ["compile", "CompiledModel", "fold_classifier_stack",
           "plan_from_folded"]


def fold_classifier_stack(model):
    """Fold the two-layer binarized classifier of a trained model.

    Works with any model following the repository convention of exposing
    ``fc1``/``bn_fc1`` (hidden, sign-activated) and ``fc2``/``bn_fc2``
    (output) binary layers — :class:`~repro.models.EEGNet`,
    :class:`~repro.models.ECGNet` and :class:`~repro.models.MobileNetV1`
    in their binarized modes all do.  Returns ``(hidden_layers, output)``
    folded forms.
    """
    if not hasattr(model, "fc1") or model.fc2 is None:
        raise ValueError("model does not have a two-layer classifier")
    if not type(model.fc1).__name__.startswith("Binary"):
        raise ValueError("classifier is not binarized; train with "
                         "BinarizationMode.FULL_BINARY or BINARY_CLASSIFIER")
    hidden = [fold_batchnorm_sign(model.fc1, model.bn_fc1)]
    output = fold_batchnorm_output(model.fc2, model.bn_fc2)
    return hidden, output


class CompiledModel:
    """An executable inference plan bound to one backend.

    ``ops`` is the straight-line program: a front-end, zero or more
    lowered feature ops, the classifier layers, and a terminal score op.
    """

    def __init__(self, ops: list[PlanOp], backend: Backend, model=None):
        if not ops or not isinstance(ops[-1], OutputLayerOp):
            raise ValueError("a plan must end in an output layer")
        self.ops = ops
        self.backend = backend
        self.model = model

    # -- execution -------------------------------------------------------
    def scores(self, inputs: np.ndarray,
               batch_size: int | None = None) -> np.ndarray:
        """Class scores ``(N, classes)`` for raw model inputs."""
        inputs = np.asarray(inputs)
        if batch_size is None or len(inputs) == 0:
            return self._run(inputs)
        chunks = [self._run(inputs[s:s + batch_size])
                  for s in range(0, len(inputs), batch_size)]
        return np.concatenate(chunks, axis=0)

    def predict(self, inputs: np.ndarray,
                batch_size: int | None = None) -> np.ndarray:
        """Predicted class labels for raw model inputs."""
        return self.scores(inputs, batch_size).argmax(axis=1)

    def _run(self, x):
        for op in self.ops:
            x = op.run(x)
        return x

    # -- Monte-Carlo execution (trial axis) ------------------------------
    def scores_trials(self, inputs: np.ndarray, trials: int, seed: int = 0,
                      batch_size: int | None = None,
                      trial_chunk: int | None = None) -> np.ndarray:
        """Class scores with a leading Monte-Carlo trial axis:
        ``(trials, N, classes)``.

        Each trial is one noisy end-to-end evaluation of the plan; trial
        ``t`` draws every stochastic read from child stream ``t`` of
        ``seed`` (:func:`repro.rram.mc.trial_streams`), so for a fixed
        ``(seed, batch_size)`` the stack is bit-identical to a serial
        per-trial pass over the same streams, for any ``trial_chunk``.
        Substrate ops that expose ``forward_*_trials`` (the ``rram``
        backend's noisy layers) evaluate all trials in one vectorized
        pass; deterministic ops (front-end, periphery, packed/reference
        executors, fast-path RRAM) run once and broadcast.
        """
        from repro.rram.mc import trial_streams

        inputs = np.asarray(inputs)
        rngs = trial_streams(seed, trials)
        if batch_size is None or len(inputs) == 0:
            return self._run_trials(inputs, rngs, trial_chunk)
        chunks = [self._run_trials(inputs[s:s + batch_size], rngs,
                                   trial_chunk)
                  for s in range(0, len(inputs), batch_size)]
        return np.concatenate(chunks, axis=1)

    def predict_trials(self, inputs: np.ndarray, trials: int, seed: int = 0,
                       batch_size: int | None = None,
                       trial_chunk: int | None = None) -> np.ndarray:
        """Per-trial predicted labels ``(trials, N)``."""
        return self.scores_trials(inputs, trials, seed, batch_size,
                                  trial_chunk).argmax(axis=2)

    @staticmethod
    def _stochastic(executor) -> bool:
        """True when a trial-aware executor actually draws read noise.

        Fast-path controllers are deterministic: their trials coincide,
        so the plan keeps the activations shared instead of fanning out
        ``T`` identical evaluations.
        """
        controller = getattr(executor, "controller", None)
        return controller is not None and not controller.fast_path

    def _run_trials(self, x, rngs, trial_chunk):
        per_trial = False
        for op in self.ops:
            executor = getattr(op, "executor", None)
            if isinstance(op, OutputLayerOp) and \
                    hasattr(executor, "forward_scores_trials") and \
                    (per_trial or self._stochastic(executor)):
                x = executor.forward_scores_trials(
                    x, rngs, trial_chunk=trial_chunk)
                per_trial = True
            elif isinstance(op, BitLayerOp) and \
                    hasattr(executor, "forward_bits_trials") and \
                    (per_trial or self._stochastic(executor)):
                x = executor.forward_bits_trials(
                    x, rngs, trial_chunk=trial_chunk)
                per_trial = True
            elif per_trial:
                # Deterministic op downstream of a noisy one: the trials
                # have already diverged, so it maps over the trial axis.
                x = np.stack([op.run(x[t]) for t in range(len(rngs))])
            else:
                # Deterministic op on still-shared activations (front
                # end, periphery, packed/reference or fast-path layers):
                # run once, stay shared.
                x = op.run(x)
        if not per_trial:
            # Fully deterministic plan: every trial coincides.
            x = np.broadcast_to(x[None], (len(rngs),) + x.shape).copy()
        return x

    # -- introspection ---------------------------------------------------
    def summary(self) -> str:
        """Human-readable plan listing (one line per op)."""
        header = f"CompiledModel on backend {self.backend.name!r}"
        lines = [header, "-" * len(header)]
        lines += [f"{i:2d}. {op.describe()}"
                  for i, op in enumerate(self.ops)]
        placements = self.placements
        if placements:
            macros = sum(p.n_macros for p in placements)
            kinds = {getattr(getattr(op.executor, "controller", None),
                             "fast_path_kind", None)
                     for op in self.layer_ops}
            kinds.discard(None)
            labels = {"stacked": "stacked fast path",
                      "per-shard": "per-shard fast path",
                      "noisy": "noisy per-shard path"}
            via = ", ".join(labels.get(k, k) for k in sorted(kinds))
            remapped = sum(len(p.remapped) for p in placements)
            spares = sum(p.spare_macros for p in placements)
            degraded = ""
            if remapped or spares:
                degraded = (f"; {remapped} dead macro(s) remapped onto "
                            f"spares ({spares} provisioned)")
            tenants = sorted({p.tenant for p in placements
                              if p.tenant is not None})
            tenant_tag = f" [model {', '.join(tenants)}]" if tenants \
                else ""
            lines.append(f"    placed on {macros} macros "
                         f"({placements[0].macro.rows}x"
                         f"{placements[0].macro.cols}) across "
                         f"{len(placements)} layers"
                         + (f" via {via}" if via else "") + degraded
                         + tenant_tag)
        codes = {getattr(getattr(op.executor, "controller", None),
                         "code", None) for op in self.layer_ops}
        codes.discard(None)
        if codes:
            code = next(iter(codes))
            kind = "SECDED" if code.extended else "SEC"
            lines.append(f"    ECC: ({code.n},{code.k}) {kind}, "
                         f"{code.redundancy:.2f}x stored-bit redundancy")
        return "\n".join(lines)

    @property
    def placements(self):
        """Floorplan placements of the substrate ops, in plan order.

        Non-empty exactly when the backend executes a shard map (the
        ``sharded`` backend); each entry is the
        :class:`~repro.rram.floorplan.LayerPlacement` its layer's
        :class:`~repro.rram.accelerator.ShardedController` was built from.
        """
        placements = []
        for op in self.layer_ops:
            controller = getattr(op.executor, "controller", None)
            placement = getattr(controller, "placement", None)
            if placement is not None:
                placements.append(placement)
        return placements

    def floorplan(self, energy=None):
        """The plan's :class:`~repro.rram.floorplan.ChipFloorplan`.

        Available for plans whose backend carries placements (sharded
        multi-macro execution); raises otherwise.  ``energy`` overrides
        the cost model (defaults to the backend's, or the shared
        constants).
        """
        from repro.rram.energy import EnergyModel
        from repro.rram.floorplan import ChipFloorplan

        placements = self.placements
        if not placements:
            raise ValueError(
                f"backend {self.backend.name!r} does not place layers on "
                "macros; compile with the 'sharded' backend for a "
                "floorplan")
        energy = energy or getattr(self.backend, "energy", None) \
            or EnergyModel()
        return ChipFloorplan(placements, energy)

    @property
    def layer_ops(self) -> list[PlanOp]:
        """The substrate-executed ops (excludes the digital periphery)."""
        return [op for op in self.ops
                if isinstance(op, (BitLayerOp, OutputLayerOp))]

    def as_inmemory_classifier(self):
        """Repackage an RRAM classifier plan as the legacy
        :class:`~repro.rram.accelerator.InMemoryClassifier` object."""
        from repro.rram.accelerator import (InMemoryClassifier,
                                            InMemoryDenseLayer,
                                            InMemoryOutputLayer)
        hidden = [op.executor for op in self.ops
                  if isinstance(op, BitLayerOp)
                  and isinstance(op.executor, InMemoryDenseLayer)]
        output = self.ops[-1].executor
        if not isinstance(output, InMemoryOutputLayer):
            raise ValueError(
                "plan was not compiled with the rram backend")
        return InMemoryClassifier(hidden, output)

    # -- persistence -----------------------------------------------------
    def save(self, path, *, overwrite: bool = False,
             allow_external_front_end: bool = False):
        """Write this plan as a deployment artifact (see
        :func:`repro.io.save_plan`).

        The artifact is backend-independent — it holds the folded weight
        words, integer thresholds and periphery specs, not the prepared
        executors — so :func:`repro.io.load_compiled` can rebind it to
        any registered backend without the original model.
        """
        from repro.io import save_plan
        return save_plan(self, path, overwrite=overwrite,
                         allow_external_front_end=allow_external_front_end)

    def __repr__(self) -> str:
        return (f"CompiledModel(backend={self.backend.name!r}, "
                f"ops={len(self.ops)})")


# ---------------------------------------------------------------------------
# Plan construction
# ---------------------------------------------------------------------------
def compile(model, backend="reference", *, lower_features: bool | str = "auto",
            front_end=None) -> CompiledModel:
    """Compile a trained model into an executable plan on ``backend``.

    Parameters
    ----------
    model:
        A trained model following the classifier convention (and, for
        feature lowering, the conv-stage hooks of the EEG/ECG models).
        Switched to eval mode — folding uses the running statistics.
    backend:
        Backend name (``"reference"``, ``"packed"``, ``"rram"`` or any
        :func:`~repro.runtime.register_backend` plug-in) or a configured
        :class:`~repro.runtime.Backend` instance — e.g.
        ``RRAMBackend(config, fast_path="auto")``, whose ``fast_path``
        flag dispatches noise-free RRAM configurations to the packed
        uint64 kernels at program time.
    lower_features:
        ``"auto"`` lowers binary feature convolutions onto the backend
        when the model supports it (fully binarized EEG/ECG networks);
        ``True`` requires lowering (raises if unsupported); ``False``
        keeps all features in the float front-end.
    front_end:
        Optional replacement for the plan's default front-end: a callable
        mapping raw inputs to the activation bits expected by the first
        lowered op (e.g. a stochastic stream encoder for the first
        convolution).
    """
    backend = resolve_backend(backend)
    if lower_features not in (True, False, "auto"):
        raise ValueError("lower_features must be True, False or 'auto'")
    backend.begin_plan()
    model.eval()

    want_lowering = lower_features in (True, "auto") \
        and getattr(model, "mode", None) is BinarizationMode.FULL_BINARY
    ops: list[PlanOp] = []
    if want_lowering and hasattr(model, "conv_stages"):
        ops += _lowered_conv1d_ops(model, backend, front_end)
    elif want_lowering and hasattr(model, "conv_space"):
        ops += _lowered_eeg_ops(model, backend, front_end)
    elif lower_features is True:
        raise ValueError(
            f"{type(model).__name__} does not support feature lowering "
            "(needs FULL_BINARY mode and zero-padding conv stages)")
    else:
        ops.append(_default_front_end(model, front_end))

    hidden, output = fold_classifier_stack(model)
    for index, folded in enumerate(hidden, start=1):
        ops.append(BitLayerOp(
            backend.prepare_dense(folded), folded,
            f"dense fc{index} {folded.in_features}->{folded.out_features} "
            f"(popcount-threshold)"))
    ops.append(OutputLayerOp(
        backend.prepare_output(output), output,
        f"output fc {output.in_features}->{len(output.scale)} "
        f"(popcount-affine, argmax)"))
    return CompiledModel(ops, backend, model=model)


def plan_from_folded(hidden, output, backend="reference",
                     in_features: int | None = None) -> CompiledModel:
    """Build an executable plan directly from folded classifier layers.

    The model-free companion of :func:`compile`: the plan's front-end is
    an activation-bit passthrough (the classic memory-controller input
    contract), so inputs are ``(N, in_features)`` uint8 bits — exactly
    what :func:`repro.rram.classifier_input_bits` produces.  Used by the
    legacy folded-artifact conversion path and anywhere a classifier
    exists only as weight words + thresholds.
    """
    backend = resolve_backend(backend)
    backend.begin_plan()
    if in_features is None:
        in_features = hidden[0].in_features if hidden \
            else output.in_features
    ops: list[PlanOp] = [build_front_end(
        {"op": "bits", "params": {"in_features": int(in_features),
                                  "input_shape": [int(in_features)]}})]
    for index, folded in enumerate(hidden, start=1):
        ops.append(BitLayerOp(
            backend.prepare_dense(folded), folded,
            f"dense fc{index} {folded.in_features}->{folded.out_features} "
            f"(popcount-threshold)"))
    ops.append(OutputLayerOp(
        backend.prepare_output(output), output,
        f"output fc {output.in_features}->{len(output.scale)} "
        f"(popcount-affine, argmax)"))
    return CompiledModel(ops, backend)


def _input_shape(model) -> list[int] | None:
    """Per-sample input geometry, when the model convention exposes it."""
    if hasattr(model, "n_channels") and hasattr(model, "n_samples"):
        return [int(model.n_channels), int(model.n_samples)]
    if hasattr(model, "n_leads") and hasattr(model, "n_samples"):
        return [int(model.n_leads), int(model.n_samples)]
    config = getattr(model, "config", None)
    if config is not None and hasattr(config, "image_size"):
        channels = int(getattr(config, "in_channels", 3))
        return [channels, int(config.image_size), int(config.image_size)]
    return None


def _default_front_end(model, front_end) -> FrontEndOp:
    """Feature extractor + binarization in the float stack.

    This op closes over the live model, so it persists only as an
    ``external`` spec: a reloaded artifact needs a caller-supplied
    ``front_end`` (or the model itself) to rebuild it.
    """
    spec = {"op": "external",
            "params": {"input_shape": _input_shape(model)}}
    if front_end is not None:
        return FrontEndOp(front_end, "custom front-end", spec=spec)

    def run(inputs: np.ndarray) -> np.ndarray:
        with no_grad():
            feats = model.features(Tensor(np.asarray(inputs)))
            pre = model.pre_classifier(feats)
        return to_bits(pre.data)

    return FrontEndOp(run, "float features + binarize", spec=spec)


# -- ECG-style 1-D conv stacks ----------------------------------------------
def _lowered_conv1d_ops(model, backend: Backend, front_end) -> list[PlanOp]:
    """Lower a 1-D conv stack (``conv_stages`` hook): the first, analog-
    facing stage stays in the front-end; every later stage runs as a
    folded binary convolution on the backend.

    Every op is built from a declarative spec
    (:mod:`repro.runtime.serialize`), so the whole lowered plan persists
    as a self-contained artifact and reloads without the model.
    """
    stages = model.conv_stages()
    first_conv, first_bn, first_pool = stages[0]

    if front_end is None:
        bn_params, arrays = bn_payload(first_bn)
        params = {"in_channels": int(first_conv.in_channels),
                  "stride": int(first_conv.stride),
                  "padding": int(first_conv.padding),
                  "pool_kernel": int(first_pool.kernel_size)
                  if first_pool is not None else None,
                  "pool_stride": int(first_pool.stride)
                  if first_pool is not None else None,
                  "input_shape": _input_shape(model), **bn_params}
        arrays["weight_bits"] = to_bits(first_conv.weight.data)
        arrays["norm_mean"] = np.array(model.input_norm.mean,
                                       dtype=np.float64)
        arrays["norm_std"] = np.array(model.input_norm.std,
                                      dtype=np.float64)
        ops: list[PlanOp] = [build_front_end(
            {"op": "conv1d_front", "params": params}, arrays)]
    else:
        ops = [_default_front_end(model, front_end)]

    for index, (conv, bn, pool) in enumerate(stages[1:], start=1):
        folded = fold_conv1d_batchnorm_sign(conv, bn)
        ops.append(BitLayerOp(
            backend.prepare_conv1d(folded), folded,
            f"conv1d stage {index} {folded.in_channels}->"
            f"{folded.out_channels} k={folded.kernel_size}"))
        if pool is not None:
            ops.append(build_transform(
                {"op": "max_pool1d",
                 "params": {"kernel": int(pool.kernel_size),
                            "stride": int(pool.stride)}},
                label=f"max-pool bits k={pool.kernel_size} (logical OR)"))
    ops.append(build_transform({"op": "flatten", "params": {}}))
    ops.append(_sign_remap_op(model))
    return ops


def _sign_remap_op(model) -> BitTransformOp:
    """The pre-classifier ``BatchNorm + Sign`` over ±1 inputs.

    An elementwise monotone map of a two-valued input is fully described
    by its images of -1 and +1; both rows are precomputed here, so at run
    time the op is a single select — a two-row lookup in hardware (and
    two uint8 rows in the artifact).
    """
    n_features = model.fc1.in_features
    with no_grad():
        minus = model.pre_classifier(Tensor(-np.ones((1, n_features))))
        plus = model.pre_classifier(Tensor(np.ones((1, n_features))))
    return build_transform(
        {"op": "two_row_lookup", "params": {}},
        {"bit_for_0": to_bits(minus.data)[0],
         "bit_for_1": to_bits(plus.data)[0]})


# -- EEG: temporal front + spatial conv on the fabric -----------------------
def _lowered_eeg_ops(model, backend: Backend, front_end) -> list[PlanOp]:
    """Lower the EEG network: the temporal convolution (analog input)
    stays in the front-end; the spatial convolution executes on the
    backend; pooling + pre-classifier bridge through the periphery.

    Front-end and bridge are spec-built (serializable) like the ECG path.
    """
    if front_end is None:
        bn_params, arrays = bn_payload(model.bn_time)
        params = {"n_channels": int(model.n_channels),
                  "n_samples": int(model.n_samples),
                  "stride": [int(s) for s in model.conv_time.stride],
                  "padding": [int(p) for p in model.conv_time.padding],
                  "input_shape": _input_shape(model), **bn_params}
        arrays["weight_bits"] = to_bits(model.conv_time.weight.data)
        ops: list[PlanOp] = [build_front_end(
            {"op": "conv2d_front", "params": params}, arrays)]
    else:
        ops = [_default_front_end(model, front_end)]

    folded = fold_conv2d_batchnorm_sign(model.conv_space, model.bn_space)
    ops.append(BitLayerOp(
        backend.prepare_conv2d(folded), folded,
        f"conv2d spatial {folded.in_channels}->{folded.out_channels} "
        f"k={folded.kernel_size}"))

    pre_bn = next(iter(model.pre_classifier))
    bn_params, arrays = bn_payload(pre_bn)
    ops.append(build_transform(
        {"op": "avg_pool_bridge",
         "params": {"pool_kernel": int(model.pool.kernel_size),
                    "pool_stride": int(model.pool.stride), **bn_params}},
        arrays))
    return ops
