"""Plan operations: the compiled form of a model.

A compiled plan is a straight-line sequence of ops.  Activation *bits*
(uint8 arrays) flow between them; only the first op sees real-valued
inputs and only the last produces real-valued class scores.  Two kinds of
ops exist:

* **digital periphery** ops (:class:`FrontEndOp`, :class:`BitTransformOp`)
  run identically under every backend — they model the parts of Fig. 5
  that stay in ordinary logic (the input data controller, bit pooling,
  flatten, elementwise re-thresholding);
* **substrate** ops (:class:`BitLayerOp`, :class:`OutputLayerOp`) hold an
  executor prepared by the backend at compile time — a folded software
  layer, a packed-word kernel, or a programmed set of RRAM tiles.

Digital-periphery ops additionally carry a declarative ``spec`` (a JSON
description plus named numpy arrays).  Specs are how plans persist: the
closure is rebuilt from the spec by :mod:`repro.runtime.serialize`, both
at compile time and when an artifact is reloaded, so a saved plan runs
the *same* code path as a freshly compiled one.  Substrate ops need no
spec — their ``folded`` form is already declarative.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

__all__ = ["PlanOp", "FrontEndOp", "BitTransformOp", "BitLayerOp",
           "OutputLayerOp"]


class PlanOp:
    """One step of a compiled plan."""

    kind = "op"

    def __init__(self, label: str):
        self.label = label

    def run(self, x):
        raise NotImplementedError

    def describe(self) -> str:
        return f"{self.kind:<10} {self.label}"

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.label!r})"


class FrontEndOp(PlanOp):
    """Digital front-end: real-valued inputs in, activation bits out.

    Wraps a model-specific closure (feature extractor + binarization, or
    the analog-facing first convolution stage of a lowered plan).  Runs
    outside the backend — on hardware this is the part that happens before
    the input data controller of Fig. 5.
    """

    kind = "front-end"

    def __init__(self, fn: Callable[[np.ndarray], np.ndarray], label: str,
                 spec: dict | None = None,
                 spec_arrays: dict[str, np.ndarray] | None = None):
        super().__init__(label)
        self.fn = fn
        self.spec = spec
        self.spec_arrays = spec_arrays

    def run(self, x):
        return self.fn(x)


class BitTransformOp(PlanOp):
    """Backend-independent bit transform (pooling, flatten, remap, bridge).

    These are cheap digital-periphery operations: max-pooling on ±1
    activations is a logical OR, flatten is wiring, and an elementwise
    batch-norm + sign over known ±1 inputs reduces to a precomputed
    two-row lookup.
    """

    kind = "periphery"

    def __init__(self, fn: Callable[[np.ndarray], np.ndarray], label: str,
                 spec: dict | None = None,
                 spec_arrays: dict[str, np.ndarray] | None = None):
        super().__init__(label)
        self.fn = fn
        self.spec = spec
        self.spec_arrays = spec_arrays

    def run(self, bits):
        return self.fn(bits)


class BitLayerOp(PlanOp):
    """A folded binary layer executed on the backend substrate.

    ``executor`` is whatever the backend prepared (it only needs a
    ``forward_bits`` method); ``folded`` keeps the substrate-independent
    fold so plans can be re-targeted or inspected.
    """

    kind = "layer"

    def __init__(self, executor, folded, label: str):
        super().__init__(label)
        self.executor = executor
        self.folded = folded

    def run(self, bits):
        return self.executor.forward_bits(bits)


class OutputLayerOp(PlanOp):
    """The terminal layer: popcount + per-class affine, scores out."""

    kind = "output"

    def __init__(self, executor, folded, label: str):
        super().__init__(label)
        self.executor = executor
        self.folded = folded

    def run(self, bits):
        return self.executor.forward_scores(bits)
