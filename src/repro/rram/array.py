"""Kilobit RRAM memory array (paper Fig. 2a).

The fabricated macro organizes 2T2R synapses in 32 word lines x 32 bit-line
pairs (1K synapses / 2K devices), with a row decoder selecting the word
line, column decoders selecting bit-line pairs, and one precharge sense
amplifier per column.  This module models that structure with vectorized
device sampling: programming draws fresh resistances from the
wear-dependent distribution of every addressed device, and every read
passes through the (noisy) sense amplifiers.

A ``mode='1T1R'`` array models the single-ended baseline used for
comparison in Fig. 4.
"""

from __future__ import annotations

import numpy as np

from repro.rram.device import DeviceParameters
from repro.rram.mc import READ_CHUNK_ELEMS
from repro.rram.sense import SenseParameters, XnorPCSA

__all__ = ["RRAMArray"]

# Resistance overrides for hard stuck-at defects: a metallic short and a
# broken filament.  The resulting ln-margins (~±27.6) are beyond any
# realistic sense offset or retention drift, so a stuck cell's sensed
# value never varies.
_STUCK_LRS_OHMS = 1.0
_STUCK_HRS_OHMS = 1e12


class RRAMArray:
    """A rows x cols array of binary synapses with on-chip sensing.

    Parameters
    ----------
    n_rows, n_cols:
        Array geometry; defaults match the paper's 1K-synapse macro.
    mode:
        ``'2T2R'`` (differential, the paper's design) or ``'1T1R'``
        (single-ended baseline).
    """

    read_chunk_elems = READ_CHUNK_ELEMS   # noise-tensor budget per MC scan

    def __init__(self, n_rows: int = 32, n_cols: int = 32,
                 params: DeviceParameters | None = None,
                 sense: SenseParameters | None = None,
                 rng: np.random.Generator | None = None,
                 mode: str = "2T2R"):
        if mode not in ("2T2R", "1T1R"):
            raise ValueError(f"unknown mode {mode!r}")
        self.n_rows = int(n_rows)
        self.n_cols = int(n_cols)
        self.mode = mode
        self.params = params or DeviceParameters()
        self.rng = rng or np.random.default_rng()
        self.amplifiers = XnorPCSA(sense, self.rng)

        shape = (self.n_rows, self.n_cols)
        self.weight_bits = np.zeros(shape, dtype=np.uint8)
        self.cycles = np.zeros(shape, dtype=np.int64)
        self.r_bl = np.full(shape, np.nan)
        self.r_blb = np.full(shape, np.nan)   # unused in 1T1R mode
        self.program_ops = 0
        self._programmed = np.zeros(shape, dtype=bool)
        self._margin_cache: np.ndarray | None = None
        self._stuck_one: np.ndarray | None = None
        self._stuck_zero: np.ndarray | None = None
        self.aged_hours = 0.0

    # ------------------------------------------------------------------
    # Decoders
    # ------------------------------------------------------------------
    def _decode_row(self, row: int) -> int:
        if not 0 <= row < self.n_rows:
            raise IndexError(f"word line {row} outside [0, {self.n_rows})")
        return int(row)

    def _decode_cols(self, cols) -> np.ndarray:
        cols = np.arange(self.n_cols) if cols is None \
            else np.atleast_1d(np.asarray(cols, dtype=np.int64))
        if cols.size and (cols.min() < 0 or cols.max() >= self.n_cols):
            raise IndexError(f"bit line index outside [0, {self.n_cols})")
        return cols

    # ------------------------------------------------------------------
    # Programming
    # ------------------------------------------------------------------
    def program(self, bits: np.ndarray) -> None:
        """Program the whole array with a bit matrix (memory controller
        write path).  Each write cycles every device once."""
        bits = np.asarray(bits)
        if bits.shape != (self.n_rows, self.n_cols):
            raise ValueError(
                f"bits shape {bits.shape} != array {self.n_rows}x{self.n_cols}")
        for row in range(self.n_rows):
            self.program_row(row, bits[row])

    def program_row(self, row: int, bits: np.ndarray, cols=None) -> None:
        """Program one word line (optionally a subset of columns)."""
        row = self._decode_row(row)
        cols = self._decode_cols(cols)
        bits = np.asarray(bits, dtype=np.uint8).reshape(-1)
        if bits.size != cols.size:
            raise ValueError(f"{bits.size} bits for {cols.size} columns")
        self.cycles[row, cols] += 1
        self.weight_bits[row, cols] = bits
        self._programmed[row, cols] = True
        self._margin_cache = None
        self.program_ops += bits.size
        cyc = self.cycles[row, cols]
        if self.mode == "2T2R":
            # +1 -> (LRS, HRS); -1/0 -> (HRS, LRS).
            self.r_bl[row, cols] = self.params.sample_resistance(
                bits == 1, cyc, self.rng)
            self.r_blb[row, cols] = self.params.sample_resistance(
                bits == 0, cyc, self.rng,
                mismatch=self.params.device_mismatch)
        else:
            self.r_bl[row, cols] = self.params.sample_resistance(
                bits == 1, cyc, self.rng)
        if self._stuck_one is not None:
            self._apply_stuck()

    def wear(self, cycles: int) -> None:
        """Age every device by ``cycles`` additional program cycles."""
        self.cycles += int(cycles)

    def inject_stuck(self, stuck_one: np.ndarray,
                     stuck_zero: np.ndarray) -> None:
        """Pin cells to hard stuck-at defects (program-time injection).

        ``stuck_one`` cells always sense 1, ``stuck_zero`` cells always
        sense 0, whatever is programmed — modelled as extreme resistance
        overrides that survive reprogramming and aging (the masks are
        persistent: every later :meth:`program_row` / :meth:`age` call
        re-applies them, because a defective filament does not heal).
        """
        shape = (self.n_rows, self.n_cols)
        stuck_one = np.asarray(stuck_one, dtype=bool)
        stuck_zero = np.asarray(stuck_zero, dtype=bool)
        if stuck_one.shape != shape or stuck_zero.shape != shape:
            raise ValueError(
                f"stuck masks must be {shape}, got {stuck_one.shape} "
                f"and {stuck_zero.shape}")
        if (stuck_one & stuck_zero).any():
            raise ValueError("a cell cannot be stuck at both values")
        self._stuck_one = stuck_one
        self._stuck_zero = stuck_zero
        self._apply_stuck()

    @property
    def n_stuck_cells(self) -> int:
        if self._stuck_one is None:
            return 0
        return int(self._stuck_one.sum() + self._stuck_zero.sum())

    def _apply_stuck(self) -> None:
        """Overwrite resistances at the persistent stuck sites."""
        one, zero = self._stuck_one, self._stuck_zero
        self.r_bl[one] = _STUCK_LRS_OHMS
        self.r_bl[zero] = _STUCK_HRS_OHMS
        if self.mode == "2T2R":
            self.r_blb[one] = _STUCK_HRS_OHMS
            self.r_blb[zero] = _STUCK_LRS_OHMS
        self._margin_cache = None

    def age(self, hours: float, retention, rng=None) -> None:
        """Relax every programmed resistance by ``hours`` of storage.

        ``retention`` is a :class:`~repro.rram.reliability.RetentionModel`
        (bake-calibrated; convert field time with
        :meth:`~repro.rram.reliability.LifetimeConfig.bake_hours` first).
        Drift draws come from ``rng`` (the array's own generator by
        default) in BL-then-BLb order — the *program-time* stream, never
        a read stream, so trial-batched reads of an aged array keep the
        batched == serial contract untouched.  Stuck cells stay stuck.
        """
        hours = float(hours)
        if hours < 0:
            raise ValueError(f"hours must be >= 0, got {hours}")
        if hours == 0:
            return
        self._check_programmed(None, None)
        rng = rng or self.rng
        is_lrs_bl = self.weight_bits == 1
        self.r_bl = retention.apply(self.r_bl, is_lrs_bl, hours, rng)
        if self.mode == "2T2R":
            self.r_blb = retention.apply(self.r_blb, ~is_lrs_bl, hours,
                                         rng)
        self.aged_hours += hours
        self._margin_cache = None
        if self._stuck_one is not None:
            self._apply_stuck()

    def _sense_margin(self) -> np.ndarray:
        """Differential log-resistance margin of every 2T2R cell.

        The margin is fixed by the programmed resistances — only the
        per-read sense-amplifier offset varies — so it is computed once
        and cached until the next program event redraws the resistances.
        """
        if self._margin_cache is None:
            self._margin_cache = np.log(self.r_blb) - np.log(self.r_bl)
        return self._margin_cache

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def read_row(self, row: int, cols=None) -> np.ndarray:
        """Plain weight read of one word line through the sense amplifiers."""
        row = self._decode_row(row)
        cols = self._decode_cols(cols)
        self._check_programmed(row, cols)
        if self.mode == "2T2R":
            return self.amplifiers.sense(self.r_bl[row, cols],
                                         self.r_blb[row, cols])
        return self.amplifiers.sense_single_ended(
            self.r_bl[row, cols], self.params.reference_resistance)

    def read_row_xnor(self, row: int, input_bits: np.ndarray,
                      cols=None) -> np.ndarray:
        """XNOR-augmented read (Fig. 3b): returns XNOR(weight, input)."""
        if self.mode != "2T2R":
            raise RuntimeError("XNOR sensing requires the 2T2R array")
        row = self._decode_row(row)
        cols = self._decode_cols(cols)
        self._check_programmed(row, cols)
        return self.amplifiers.sense_xnor(
            self.r_bl[row, cols], self.r_blb[row, cols],
            np.asarray(input_bits, dtype=np.uint8).reshape(-1))

    def _read_margin(self) -> np.ndarray:
        """Offset-free decision margin of every cell for a plain read
        (differential in 2T2R mode, against the reference in 1T1R)."""
        if self.mode == "2T2R":
            return self._sense_margin()
        return np.log(self.params.reference_resistance) - np.log(self.r_bl)

    def read_all(self, rng: np.random.Generator | None = None) -> np.ndarray:
        """Read every word line; returns the sensed bit matrix.

        Vectorized scan: one offset draw covers the whole array instead of
        one RNG round-trip per word line, with decisions identical in
        distribution to row-by-row :meth:`read_row` reads.  ``rng``
        overrides the array's generator for this read only — the hook the
        Monte-Carlo engine uses to give every trial its own child stream
        (:mod:`repro.rram.mc`) without touching shared state.
        """
        self._check_programmed(None, None)
        offsets = self.amplifiers.params.offset(
            rng or self.rng, (self.n_rows, self.n_cols))
        self.amplifiers.sense_count += self.n_rows * self.n_cols
        return (self._read_margin() + offsets > 0).astype(np.uint8)

    def read_all_trials(self, rngs) -> np.ndarray:
        """Trial-batched full-array reads: one noisy read per stream.

        ``rngs`` is a sequence of per-trial generators (see
        :func:`repro.rram.mc.trial_streams`); returns ``(T, rows, cols)``
        sensed bits.  Trial ``t`` draws its offsets from ``rngs[t]``
        alone, so the stack is bit-identical to ``[read_all(rng=r) for r
        in rngs]`` while the margin-plus-offset decision runs as a single
        broadcast compare over the leading trial axis.
        """
        self._check_programmed(None, None)
        shape = (self.n_rows, self.n_cols)
        offsets = np.stack([self.amplifiers.params.offset(rng, shape)
                            for rng in rngs])
        self.amplifiers.sense_count += offsets.size
        return (self._read_margin()[None] + offsets > 0).astype(np.uint8)

    def read_all_xnor(self, input_bits: np.ndarray) -> np.ndarray:
        """XNOR every stored row with ``input_bits`` (one read per row).

        This is the inner loop of the Fig. 5 architecture: the input vector
        is broadcast on the sense-amplifier XNOR inputs while word lines are
        scanned.
        """
        input_bits = np.asarray(input_bits, dtype=np.uint8)
        if input_bits.shape != (self.n_cols,):
            raise ValueError(
                f"input bits shape {input_bits.shape} != ({self.n_cols},)")
        if self.mode != "2T2R":
            raise RuntimeError("XNOR sensing requires the 2T2R array")
        self._check_programmed(None, None)
        offsets = self.amplifiers.params.offset(
            self.rng, (self.n_rows, self.n_cols))
        self.amplifiers.sense_count += self.n_rows * self.n_cols
        weight_read = (self._sense_margin() + offsets) > 0
        return np.logical_not(
            np.logical_xor(weight_read, input_bits[None, :].astype(bool))
        ).astype(np.uint8)

    def read_all_xnor_batch(self, input_bits: np.ndarray) -> np.ndarray:
        """Vectorized XNOR reads for a batch of input vectors.

        ``input_bits``: ``(N, n_cols)``.  Returns ``(N, n_rows, n_cols)``
        XNOR outputs.  Physically each of the ``N`` inferences is a separate
        word-line scan with fresh sense-amplifier noise, which is exactly
        what the independent offset draws model.
        """
        input_bits = np.asarray(input_bits, dtype=np.uint8)
        if input_bits.ndim != 2 or input_bits.shape[1] != self.n_cols:
            raise ValueError(
                f"input bits shape {input_bits.shape} != (N, {self.n_cols})")
        if self.mode != "2T2R":
            raise RuntimeError("XNOR sensing requires the 2T2R array")
        self._check_programmed(None, None)
        n = input_bits.shape[0]
        offsets = self.amplifiers.params.offset(
            self.rng, (n, self.n_rows, self.n_cols))
        self.amplifiers.sense_count += n * self.n_rows * self.n_cols
        margin = self._sense_margin()[None, :, :]
        weight_read = (margin + offsets) > 0
        return np.logical_not(
            np.logical_xor(weight_read,
                           input_bits[:, None, :].astype(bool))
        ).astype(np.uint8)

    def xnor_popcounts(self, input_bits: np.ndarray,
                       n_valid: int | None = None) -> np.ndarray:
        """Vectorized word-line scan with on-the-fly popcount.

        ``input_bits``: ``(N, n_cols)``.  Returns ``(N, n_rows)`` counts of
        agreeing cells over the first ``n_valid`` columns (all by default).
        Physically identical to :meth:`read_all_xnor_batch` followed by the
        shared popcount logic — every word line is scanned with fresh
        sense-amplifier offsets — but the XNOR plane is never materialized
        as a bit tensor, which is how the Fig. 5 popcount tree actually
        consumes the sense amplifiers' outputs.
        """
        input_bits = np.asarray(input_bits, dtype=np.uint8)
        if input_bits.ndim != 2 or input_bits.shape[1] != self.n_cols:
            raise ValueError(
                f"input bits shape {input_bits.shape} != (N, {self.n_cols})")
        if self.mode != "2T2R":
            raise RuntimeError("XNOR sensing requires the 2T2R array")
        self._check_programmed(None, None)
        n_valid = self.n_cols if n_valid is None else int(n_valid)
        if not 0 <= n_valid <= self.n_cols:
            raise ValueError(f"n_valid {n_valid} outside [0, {self.n_cols}]")
        n = input_bits.shape[0]
        offsets = self.amplifiers.params.offset(
            self.rng, (n, self.n_rows, self.n_cols))
        self.amplifiers.sense_count += n * self.n_rows * self.n_cols
        margin = self._sense_margin()[None, :, :]
        weight_read = (margin + offsets) > 0
        agree = weight_read[:, :, :n_valid] \
            == (input_bits[:, None, :n_valid] != 0)
        return agree.sum(axis=2, dtype=np.int64)

    # ------------------------------------------------------------------
    def _check_programmed(self, row, cols) -> None:
        if row is None:
            ok = self._programmed.all()
        else:
            ok = self._programmed[row, cols].all()
        if not ok:
            raise RuntimeError("reading unprogrammed cells")

    @property
    def sense_ops(self) -> int:
        return self.amplifiers.sense_count

    def __repr__(self) -> str:
        return (f"RRAMArray({self.n_rows}x{self.n_cols}, mode={self.mode}, "
                f"programmed={int(self._programmed.sum())})")
