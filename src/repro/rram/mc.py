"""Trial-batched Monte-Carlo engine for noisy RRAM reads.

The paper's robustness evidence (Fig. 4 bit-error rate vs endurance,
§II-B sense-offset tolerance) is Monte-Carlo: many noisy read trials over
the *same* programmed weights.  Simulating that one trial at a time pays
the full program/fold/build cost per trial; this module provides the two
primitives that let the whole repository amortize it:

* **deterministic per-trial RNG streams** — :func:`trial_streams` spawns
  one independent child generator per trial from a single root seed
  (``numpy.random.SeedSequence.spawn``).  Trial ``t`` always reads the
  same noise no matter how trials are grouped, because every draw for
  trial ``t`` comes from stream ``t`` and numpy ``Generator`` draws are
  *split-stable*: drawing ``normal(size=a)`` then ``normal(size=b)``
  yields the same values as one ``normal(size=a + b)`` draw.  Batched
  execution is therefore bit-identical to a serial per-trial loop over
  the same streams — the engine's core contract, enforced by the
  property tests;
* **trial-batched evaluation** — the noisy read paths of
  :class:`~repro.rram.array.RRAMArray` and
  :class:`~repro.rram.accelerator.MemoryController` accept a stack of
  trial streams and evaluate every trial in one vectorized pass over a
  leading ``(T, ...)`` axis, chunked so the stacked offset tensor stays
  inside the controller's element budget.

The RNG-stream contract, in one line: *the root seed programs, child
stream* ``t`` *reads trial* ``t``.  Programming (device resistance
sampling) consumes only the root generator; every read-time draw for a
trial consumes only that trial's child stream.  Structural state (margins,
packed words) is therefore reusable across trials and across sweep points
— which is what the programmed-plan cache in
:mod:`repro.experiments.executor` exploits.
"""

from __future__ import annotations

import numpy as np

__all__ = ["READ_CHUNK_ELEMS", "trial_streams", "trial_chunks",
           "shard_streams", "site_stream", "read_bit_errors"]

#: Shared element budget for stacked noise tensors: every chunked scan
#: (array reads, controller scans, endurance windows) bounds its offset
#: stack to this many elements.  Chunking never changes results — streams
#: are split-stable — so this is purely a peak-memory knob.
READ_CHUNK_ELEMS = 1 << 22


def trial_streams(seed, trials: int) -> list[np.random.Generator]:
    """One independent child generator per Monte-Carlo trial.

    ``seed`` feeds a :class:`numpy.random.SeedSequence` whose first
    ``trials`` spawned children become the per-trial streams.  The same
    ``(seed, t)`` pair always yields the same stream, independent of the
    total trial count's *batching* — stream ``t`` of ``trial_streams(s,
    8)`` equals stream ``t`` of ``trial_streams(s, 64)`` for ``t < 8`` —
    so a study can grow its trial budget without invalidating earlier
    trials.
    """
    trials = int(trials)
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    seed_seq = seed if isinstance(seed, np.random.SeedSequence) \
        else np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seed_seq.spawn(trials)]


def shard_streams(rngs, n_shards: int) -> list[list[np.random.Generator]]:
    """Per-(shard, trial) child streams for a sharded multi-macro scan.

    Extends the per-trial stream contract to a second axis: a sharded
    controller reading trial ``t`` across ``n_shards`` chips gives shard
    ``s`` the ``s``-th spawned child of trial stream ``t``, so every
    ``(shard, trial)`` pair draws from its own independent generator —
    chips have independent sense amplifiers, and neither trial chunking
    nor shard scan order can couple their noise.

    Returns ``streams[s][t]`` (shard-major), ready to hand each shard its
    own per-trial stream list.  Spawning consumes each trial stream's
    spawn counter exactly once, in trial order, so the stack is
    bit-identical to a serial per-trial loop that spawns ``n_shards``
    children from its single trial stream — the sharded analogue of the
    split-stable-draw contract above.
    """
    n_shards = int(n_shards)
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    children = [rng.spawn(n_shards) for rng in rngs]
    return [[children[t][s] for t in range(len(rngs))]
            for s in range(n_shards)]


def site_stream(seed, *key: int) -> np.random.Generator:
    """One independent generator for a *named* draw site.

    The keyed complement of the order-based :func:`trial_streams` /
    :func:`shard_streams` spawning: ``SeedSequence(seed, spawn_key=key)``
    derives the child stream directly from the ``(seed, key)`` pair, so
    the same site always reads the same noise no matter when — or in
    which worker process — it is materialized.  ``site_stream(s, i)`` is
    by construction the ``i``-th child of ``SeedSequence(s).spawn(...)``,
    so keyed and order-based derivations of the same tree coincide.

    Use this for draws that must be reproducible across chunking, worker
    counts and call order without threading generator objects through
    the call graph: fault-map sampling, weight corruption, per-(layer,
    shard) fault sites.  Keys are small non-negative integers.
    """
    key = tuple(int(k) for k in key)
    if any(k < 0 for k in key):
        raise ValueError(f"site keys must be non-negative, got {key}")
    seed_seq = seed if isinstance(seed, np.random.SeedSequence) \
        else np.random.SeedSequence(seed)
    return np.random.default_rng(
        np.random.SeedSequence(entropy=seed_seq.entropy,
                               spawn_key=seed_seq.spawn_key + key))


def trial_chunks(n_trials: int, per_trial_elems: int,
                 budget: int, trial_chunk: int | None = None):
    """Yield ``(start, stop)`` trial windows whose stacked noise tensor
    stays inside ``budget`` elements.

    ``trial_chunk`` overrides the derived window (clamped to at least 1);
    results never depend on the chunking — only peak memory does — because
    every trial draws from its own stream (see module docstring).
    """
    if trial_chunk is None:
        trial_chunk = max(1, int(budget) // max(1, int(per_trial_elems)))
    trial_chunk = max(1, min(int(trial_chunk), int(n_trials)))
    for start in range(0, int(n_trials), trial_chunk):
        yield start, min(start + trial_chunk, int(n_trials))


def read_bit_errors(array, expected_bits: np.ndarray,
                    rngs: list[np.random.Generator],
                    trial_chunk: int | None = None) -> np.ndarray:
    """Per-trial read-back error counts of one programmed array.

    The Fig. 4 inner loop as an engine primitive: ``T`` noisy full-array
    reads of ``array`` (one per stream in ``rngs``), each compared against
    ``expected_bits``; returns an ``(T,)`` int64 error-count vector.  The
    array is programmed once by the caller and never mutated here, so the
    cost per extra trial is one offset draw plus one vectorized compare.

    Bit-identical to ``[int((array.read_all(rng=r) != expected_bits).sum())
    for r in rngs]`` for any ``trial_chunk``.
    """
    expected_bits = np.asarray(expected_bits, dtype=np.uint8)
    if expected_bits.shape != (array.n_rows, array.n_cols):
        raise ValueError(
            f"expected bits shape {expected_bits.shape} != array "
            f"{array.n_rows}x{array.n_cols}")
    errors = np.empty(len(rngs), dtype=np.int64)
    per_trial = array.n_rows * array.n_cols
    budget = getattr(array, "read_chunk_elems", READ_CHUNK_ELEMS)
    for start, stop in trial_chunks(len(rngs), per_trial, budget,
                                    trial_chunk):
        read = array.read_all_trials(rngs[start:stop])
        errors[start:stop] = (read != expected_bits[None]).sum(
            axis=(1, 2), dtype=np.int64)
    return errors
