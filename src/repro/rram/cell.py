"""Synaptic memory cells: 1T1R baseline and the paper's 2T2R synapse.

A 2T2R synapse (§II-B) stores one binary weight in a *pair* of devices
programmed to complementary states:

* ``(BL=LRS, BLb=HRS)``  ->  weight +1
* ``(BL=HRS, BLb=LRS)``  ->  weight -1

Reading compares the two devices differentially, so slow drift or broadening
that affects both states symmetrically cancels; an error needs the two
distributions to actually cross.  The 1T1R cell stores the bit in a single
device read against a fixed reference, and serves as the baseline of Fig. 4.
"""

from __future__ import annotations

import numpy as np

from repro.rram.device import DeviceParameters, ResistiveState, RRAMDevice
from repro.rram.sense import PrechargeSenseAmplifier, SenseParameters

__all__ = ["OneT1RCell", "TwoT2RCell"]


class OneT1RCell:
    """Single-device cell; bit 1 = LRS."""

    def __init__(self, params: DeviceParameters | None = None,
                 sense: SenseParameters | None = None,
                 rng: np.random.Generator | None = None,
                 mismatch: float = 1.0):
        rng = rng or np.random.default_rng()
        self.params = params or DeviceParameters()
        self.device = RRAMDevice(self.params, rng, mismatch=mismatch)
        self.amplifier = PrechargeSenseAmplifier(sense, rng)

    def program(self, bit: int) -> None:
        self.device.program(
            ResistiveState.LRS if bit else ResistiveState.HRS)

    def read(self) -> int:
        return int(self.amplifier.sense_single_ended(
            self.device.read(), self.params.reference_resistance))

    @property
    def cycles(self) -> int:
        return self.device.cycles


class TwoT2RCell:
    """Differential two-device synapse (paper Fig. 2a, §II-B)."""

    def __init__(self, params: DeviceParameters | None = None,
                 sense: SenseParameters | None = None,
                 rng: np.random.Generator | None = None):
        rng = rng or np.random.default_rng()
        self.params = params or DeviceParameters()
        self.bl = RRAMDevice(self.params, rng)
        self.blb = RRAMDevice(self.params, rng,
                              mismatch=self.params.device_mismatch)
        self.amplifier = PrechargeSenseAmplifier(sense, rng)

    def program(self, bit: int) -> None:
        """Program the complementary pair (two device cycles per write)."""
        if bit:
            self.bl.program(ResistiveState.LRS)
            self.blb.program(ResistiveState.HRS)
        else:
            self.bl.program(ResistiveState.HRS)
            self.blb.program(ResistiveState.LRS)

    def read(self) -> int:
        return int(self.amplifier.sense(self.bl.read(), self.blb.read()))

    def read_devices_single_ended(self) -> tuple[int, int]:
        """Read each device of the pair as if it were 1T1R (the BL / BLb
        curves of Fig. 4 come from exactly this measurement)."""
        ref = self.params.reference_resistance
        bl_bit = int(self.amplifier.sense_single_ended(self.bl.read(), ref))
        blb_bit = int(self.amplifier.sense_single_ended(self.blb.read(), ref))
        return bl_bit, blb_bit

    @property
    def cycles(self) -> int:
        return self.bl.cycles
