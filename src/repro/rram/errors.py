"""Bit-error-rate measurement and fault injection.

:class:`EnduranceExperiment` reproduces the protocol behind Fig. 4 of the
paper: a population of 2T2R pairs is reprogrammed for hundreds of millions
of cycles, alternating the two complementary weight states; at logarithmic
checkpoints the stored weight is read back through the on-chip PCSA (2T2R
curve) and each device of the pair is also sensed single-endedly against the
reference (the 1T1R BL and BLb curves).

Fault injection utilities corrupt deployed weight bits at a chosen BER so
the robustness of BNN accuracy to residual errors (§II-B) can be quantified
without running full device Monte-Carlo.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.nn.binary import FoldedBinaryDense, FoldedOutputDense
from repro.rram.device import DeviceParameters
from repro.rram.sense import SenseParameters

__all__ = ["EnduranceExperiment", "EnduranceResult", "inject_bit_errors",
           "corrupt_folded"]


@dataclass
class EnduranceResult:
    """BER curves versus cycle count (the series plotted in Fig. 4)."""

    cycles: np.ndarray
    ber_1t1r_bl: np.ndarray
    ber_1t1r_blb: np.ndarray
    ber_2t2r: np.ndarray
    trials: int

    def rows(self) -> list[tuple[float, float, float, float]]:
        return [(float(c), float(a), float(b), float(d))
                for c, a, b, d in zip(self.cycles, self.ber_1t1r_bl,
                                      self.ber_1t1r_blb, self.ber_2t2r)]


@dataclass
class EnduranceExperiment:
    """Monte-Carlo endurance/BER experiment.

    ``checkpoints`` are absolute cycle counts (the paper sweeps 1e8 to
    7e8); at each checkpoint ``trials`` program-and-read operations are
    simulated per measurement path.  The per-trial work is fully
    vectorized, so millions of trials run in seconds — necessary because
    2T2R error rates sit at 1e-6.

    RNG-stream contract (see :mod:`repro.rram.mc`): one child stream per
    checkpoint, re-spawned into one stream per draw site (BL/BLb
    resistances, BL/BLb single-ended offsets, PCSA offset).  Because
    numpy normal draws are split-stable per stream, the trial axis can be
    evaluated in memory-bounded windows (``trial_chunk``) with results
    bit-identical for every chunking — the same contract the
    trial-batched array reads obey.
    """

    device: DeviceParameters = field(default_factory=DeviceParameters)
    sense: SenseParameters = field(default_factory=SenseParameters)
    checkpoints: np.ndarray = field(default_factory=lambda: np.linspace(
        1e8, 7e8, 7))
    trials: int = 200_000
    seed: int = 0
    trial_chunk: int | None = None   # trials per vectorized window

    #: ~doubles drawn per trial per checkpoint (sizes the default window)
    _ELEMS_PER_TRIAL = 8

    def run(self) -> EnduranceResult:
        from repro.rram.mc import READ_CHUNK_ELEMS, trial_chunks

        ref = np.log(self.device.reference_resistance)
        ber_bl = np.empty(len(self.checkpoints))
        ber_blb = np.empty(len(self.checkpoints))
        ber_2t2r = np.empty(len(self.checkpoints))
        # Alternating complementary programming: half of the trials store
        # weight +1, half weight -1, as in the paper's protocol.
        stored = np.tile(np.array([1, 0], dtype=np.uint8),
                         -(-self.trials // 2))[:self.trials]
        single_sigma = np.sqrt(self.sense.offset_sigma ** 2
                               + self.device.reference_spread ** 2)
        checkpoint_seeds = np.random.SeedSequence(self.seed).spawn(
            len(self.checkpoints))
        for k, cycles in enumerate(self.checkpoints):
            streams = [np.random.default_rng(child)
                       for child in checkpoint_seeds[k].spawn(5)]
            r_bl, r_blb, so_bl, so_blb, pcsa = streams
            err_bl = err_blb = err_2t = 0
            for start, stop in trial_chunks(self.trials,
                                            self._ELEMS_PER_TRIAL,
                                            READ_CHUNK_ELEMS,
                                            self.trial_chunk):
                window = stored[start:stop]
                # Program: BL holds LRS iff weight == 1, BLb the
                # complement.
                ln_r_bl = np.log(self.device.sample_resistance(
                    window == 1, cycles, r_bl))
                ln_r_blb = np.log(self.device.sample_resistance(
                    window == 0, cycles, r_blb,
                    mismatch=self.device.device_mismatch))
                # 1T1R single-ended reads of each device against the
                # reference; the decision noise adds sense offset and
                # reference imprecision in quadrature.
                bl_bit = (ref - ln_r_bl
                          + so_bl.normal(0.0, single_sigma, len(window))) > 0
                blb_bit = (ref - ln_r_blb
                           + so_blb.normal(0.0, single_sigma,
                                           len(window))) > 0
                err_bl += int((bl_bit != (window == 1)).sum())
                err_blb += int((blb_bit != (window == 0)).sum())
                # 2T2R differential read through the PCSA.
                off2 = self.sense.offset(pcsa, len(window))
                weight_read = (ln_r_blb - ln_r_bl + off2) > 0  # weight +1
                err_2t += int((weight_read != (window == 1)).sum())
            ber_bl[k] = err_bl / self.trials
            ber_blb[k] = err_blb / self.trials
            ber_2t2r[k] = err_2t / self.trials
        return EnduranceResult(np.asarray(self.checkpoints, dtype=float),
                               ber_bl, ber_blb, ber_2t2r, self.trials)


def _corruption_rng(rng, key: tuple[int, ...]) -> np.random.Generator:
    """Resolve the fault-injection stream.

    A :class:`numpy.random.Generator` is used as-is (the legacy,
    order-dependent contract).  An integer seed routes through the keyed
    :func:`repro.rram.mc.site_stream`, so a corruption site named by
    ``(seed, *key)`` draws the same flips in every worker process, chunk
    layout and call order — the same split-stable contract the
    :class:`~repro.rram.faults.FaultMap` masks follow.
    """
    if isinstance(rng, np.random.Generator):
        return rng
    from repro.rram.mc import site_stream
    return site_stream(rng, *key)


def inject_bit_errors(bits: np.ndarray, ber: float,
                      rng: np.random.Generator | int,
                      key: tuple[int, ...] = ()) -> np.ndarray:
    """Flip each bit independently with probability ``ber``.

    ``rng`` is either a generator (legacy) or an integer seed; with a
    seed, ``key`` names the draw site (e.g. a layer index) and the flips
    are reproducible independent of call order or worker count.
    """
    if not 0.0 <= ber <= 1.0:
        raise ValueError(f"ber must be a probability, got {ber}")
    bits = np.asarray(bits, dtype=np.uint8)
    flips = _corruption_rng(rng, key).random(bits.shape) < ber
    return (bits ^ flips.astype(np.uint8)).astype(np.uint8)


def corrupt_folded(layer: FoldedBinaryDense | FoldedOutputDense, ber: float,
                   rng: np.random.Generator | int,
                   key: tuple[int, ...] = ()):
    """Return a copy of a folded layer with weight bits corrupted at
    ``ber`` — the software-level equivalent of deploying on devices whose
    residual error rate is ``ber``.  ``rng``/``key`` follow the
    :func:`inject_bit_errors` contract (pass a seed plus a per-layer key
    for chunk- and worker-invariant corruption)."""
    corrupted = inject_bit_errors(layer.weight_bits, ber, rng, key)
    if isinstance(layer, FoldedBinaryDense):
        return FoldedBinaryDense(corrupted, layer.theta.copy(),
                                 layer.gamma_sign.copy(),
                                 layer.beta_sign.copy())
    return FoldedOutputDense(corrupted, layer.scale.copy(),
                             layer.offset.copy())
