"""Bit-error-rate measurement and fault injection.

:class:`EnduranceExperiment` reproduces the protocol behind Fig. 4 of the
paper: a population of 2T2R pairs is reprogrammed for hundreds of millions
of cycles, alternating the two complementary weight states; at logarithmic
checkpoints the stored weight is read back through the on-chip PCSA (2T2R
curve) and each device of the pair is also sensed single-endedly against the
reference (the 1T1R BL and BLb curves).

Fault injection utilities corrupt deployed weight bits at a chosen BER so
the robustness of BNN accuracy to residual errors (§II-B) can be quantified
without running full device Monte-Carlo.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.nn.binary import FoldedBinaryDense, FoldedOutputDense
from repro.rram.device import DeviceParameters
from repro.rram.sense import SenseParameters

__all__ = ["EnduranceExperiment", "EnduranceResult", "inject_bit_errors",
           "corrupt_folded"]


@dataclass
class EnduranceResult:
    """BER curves versus cycle count (the series plotted in Fig. 4)."""

    cycles: np.ndarray
    ber_1t1r_bl: np.ndarray
    ber_1t1r_blb: np.ndarray
    ber_2t2r: np.ndarray
    trials: int

    def rows(self) -> list[tuple[float, float, float, float]]:
        return [(float(c), float(a), float(b), float(d))
                for c, a, b, d in zip(self.cycles, self.ber_1t1r_bl,
                                      self.ber_1t1r_blb, self.ber_2t2r)]


@dataclass
class EnduranceExperiment:
    """Monte-Carlo endurance/BER experiment.

    ``checkpoints`` are absolute cycle counts (the paper sweeps 1e8 to
    7e8); at each checkpoint ``trials`` program-and-read operations are
    simulated per measurement path.  The per-trial work is fully
    vectorized, so millions of trials run in seconds — necessary because
    2T2R error rates sit at 1e-6.
    """

    device: DeviceParameters = field(default_factory=DeviceParameters)
    sense: SenseParameters = field(default_factory=SenseParameters)
    checkpoints: np.ndarray = field(default_factory=lambda: np.linspace(
        1e8, 7e8, 7))
    trials: int = 200_000
    seed: int = 0

    def run(self) -> EnduranceResult:
        rng = np.random.default_rng(self.seed)
        ref = np.log(self.device.reference_resistance)
        ber_bl = np.empty(len(self.checkpoints))
        ber_blb = np.empty(len(self.checkpoints))
        ber_2t2r = np.empty(len(self.checkpoints))
        # Alternating complementary programming: half of the trials store
        # weight +1, half weight -1, as in the paper's protocol.
        stored = np.tile(np.array([1, 0], dtype=np.uint8),
                         -(-self.trials // 2))[:self.trials]
        for k, cycles in enumerate(self.checkpoints):
            # Program: BL holds LRS iff weight == 1, BLb the complement.
            ln_r_bl = np.log(self.device.sample_resistance(
                stored == 1, cycles, rng))
            ln_r_blb = np.log(self.device.sample_resistance(
                stored == 0, cycles, rng,
                mismatch=self.device.device_mismatch))
            # 1T1R single-ended reads of each device against the reference;
            # the decision noise adds sense offset and reference imprecision
            # in quadrature.
            single_sigma = np.sqrt(self.sense.offset_sigma ** 2
                                   + self.device.reference_spread ** 2)
            off = rng.normal(0.0, single_sigma, (2, self.trials))
            bl_bit = (ref - ln_r_bl + off[0]) > 0          # 1 = read LRS
            blb_bit = (ref - ln_r_blb + off[1]) > 0
            ber_bl[k] = np.mean(bl_bit != (stored == 1))
            ber_blb[k] = np.mean(blb_bit != (stored == 0))
            # 2T2R differential read through the PCSA.
            off2 = self.sense.offset(rng, self.trials)
            weight_read = (ln_r_blb - ln_r_bl + off2) > 0  # 1 = weight +1
            ber_2t2r[k] = np.mean(weight_read != (stored == 1))
        return EnduranceResult(np.asarray(self.checkpoints, dtype=float),
                               ber_bl, ber_blb, ber_2t2r, self.trials)


def inject_bit_errors(bits: np.ndarray, ber: float,
                      rng: np.random.Generator) -> np.ndarray:
    """Flip each bit independently with probability ``ber``."""
    if not 0.0 <= ber <= 1.0:
        raise ValueError(f"ber must be a probability, got {ber}")
    bits = np.asarray(bits, dtype=np.uint8)
    flips = rng.random(bits.shape) < ber
    return (bits ^ flips.astype(np.uint8)).astype(np.uint8)


def corrupt_folded(layer: FoldedBinaryDense | FoldedOutputDense, ber: float,
                   rng: np.random.Generator):
    """Return a copy of a folded layer with weight bits corrupted at
    ``ber`` — the software-level equivalent of deploying on devices whose
    residual error rate is ``ber``."""
    corrupted = inject_bit_errors(layer.weight_bits, ber, rng)
    if isinstance(layer, FoldedBinaryDense):
        return FoldedBinaryDense(corrupted, layer.theta.copy(),
                                 layer.gamma_sign.copy(),
                                 layer.beta_sign.copy())
    return FoldedOutputDense(corrupted, layer.scale.copy(),
                             layer.offset.copy())
