"""In-memory BNN inference architecture (paper Fig. 5).

The Fig. 5 block implements a fully connected BNN layer with minimal data
movement: trained weights are programmed once into 2T2R arrays by a memory
controller; at inference the input data controller broadcasts activation
bits onto the XNOR inputs of the sense amplifiers, word lines are scanned,
and shared popcount logic accumulates the per-neuron counts, which threshold
units compare to the folded batch-norm thresholds (Eq. 3).

This module provides that architecture end to end:

* :class:`MemoryController` — tiles an arbitrary weight-bit matrix over
  kilobit :class:`~repro.rram.array.RRAMArray` macros and programs them;
* :class:`ShardedController` — the multi-chip variant: executes a
  floorplan shard map (:meth:`~repro.rram.floorplan.LayerPlacement.
  shards`) as one fixed-geometry macro chip per shard, with fan-in
  slicing, per-chip partial popcounts and a digital reduction stage;
* :class:`InMemoryDenseLayer` / :class:`InMemoryOutputLayer` — hardware
  execution of hidden (sign) and output (argmax) binary dense layers;
* :class:`InMemoryClassifier` — a stack of the above;
* :func:`fold_classifier` / :func:`deploy_classifier` — one-call deployment
  of any trained model exposing the ``fc1/bn_fc1/fc2/bn_fc2`` classifier
  convention (all three paper models do);
* :func:`classifier_input_bits` — the digital front-end that turns real
  feature vectors into the activation bits fed to the first binary layer.

Because all device and sense non-idealities live in the array model, the
same classes run "ideal hardware" (zero variability parameters) for
bit-exactness tests and realistic hardware for fault studies.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field, replace

import numpy as np

from repro.nn.binary import (FoldedBinaryDense, FoldedOutputDense,
                             threshold_bits, to_bits)
from repro.nn.bitops import (WORD_BITS, pack_bits, packed_column_slice,
                             packed_xnor_popcount,
                             packed_xnor_popcount_stacked)
from repro.rram.array import RRAMArray
from repro.rram.device import DeviceParameters
from repro.rram.faults import FaultMap
from repro.rram.floorplan import LayerPlacement, MacroGeometry
from repro.rram.mc import READ_CHUNK_ELEMS, shard_streams, trial_chunks
from repro.rram.reliability import LifetimeConfig
from repro.rram.sense import SenseParameters
from repro.tensor import Tensor, no_grad

__all__ = ["AcceleratorConfig", "MemoryController", "ShardedController",
           "StackedShardPlan", "InMemoryDenseLayer", "InMemoryOutputLayer",
           "InMemoryClassifier", "fold_classifier", "deploy_classifier",
           "classifier_input_bits"]


@dataclass
class AcceleratorConfig:
    """Hardware build parameters.

    ``tile_rows`` x ``tile_cols`` matches the paper's 1K-synapse macro.
    Setting ``ideal=True`` zeroes all variability (fresh devices, no sense
    offset), producing bit-exact digital behaviour — used to verify Eq. 3
    equivalence.
    """

    tile_rows: int = 32
    tile_cols: int = 32
    device: DeviceParameters = field(default_factory=DeviceParameters)
    sense: SenseParameters = field(default_factory=SenseParameters)
    seed: int = 0
    ideal: bool = False

    def resolved(self) -> "AcceleratorConfig":
        if not self.ideal:
            return self
        device = DeviceParameters(
            median_lrs=self.device.median_lrs,
            median_hrs=self.device.median_hrs,
            sigma_lrs0=0.0, sigma_hrs0=0.0, broadening=0.0, hrs_drift=0.0,
            device_mismatch=1.0)
        sense = SenseParameters(offset_sigma=0.0,
                                energy_fj=self.sense.energy_fj)
        return AcceleratorConfig(self.tile_rows, self.tile_cols, device,
                                 sense, self.seed, ideal=False)


def _noise_free(config: AcceleratorConfig) -> bool:
    """True when every read is deterministic: no device variability, no
    HRS drift with wear, no sense-amplifier offset, and a correctly ordered
    resistance window.  Under these conditions the sensed weight equals
    the programmed bit for every cell, always."""
    device, sense = config.device, config.sense
    return (device.sigma_lrs0 == 0.0 and device.sigma_hrs0 == 0.0
            and device.hrs_drift == 0.0 and sense.offset_sigma == 0.0
            and device.median_hrs > device.median_lrs)


def _validate_trial_input(x_bits: np.ndarray, n_trials: int,
                          in_features: int) -> bool:
    """Check a trial-batched activation stack; returns ``shared``.

    ``x_bits`` is either a shared ``(N, in_features)`` batch or a
    per-trial ``(n_trials, N, in_features)`` stack.  Both controller
    flavours accept exactly these shapes, through this one check.
    """
    shared = x_bits.ndim == 2
    if (shared and x_bits.shape[1] != in_features) or \
            (not shared and (x_bits.ndim != 3
                             or x_bits.shape[0] != n_trials
                             or x_bits.shape[2] != in_features)):
        raise ValueError(
            f"input shape {x_bits.shape} != (N, {in_features}) "
            f"or ({n_trials}, N, {in_features})")
    return shared


class MemoryController:
    """Programs a weight-bit matrix across a grid of RRAM tiles.

    The matrix is laid out row = output neuron, column = input; tiles pad
    the ragged edges, and padded columns are masked out of the popcount so
    they never contribute.

    Two read paths, selected at program time by ``fast_path``:

    * **fast path** (``"auto"`` + a noise-free configuration, or ``True``):
      a deterministic read always returns the programmed bits, so the
      controller skips device simulation entirely and dispatches reads to
      the packed uint64 XNOR-popcount kernels of :mod:`repro.nn.bitops` —
      no noise draws, no bit-plane materialization, bit-exact with the
      noisy path at zero sigma;
    * **noisy path**: tiles are programmed as physical
      :class:`~repro.rram.array.RRAMArray` macros, their differential
      sense margins are stacked into one ``(out, in)`` matrix, and a scan
      draws fresh per-read offsets once per batch chunk and reduces over
      every tile in a single vectorized pass (no per-tile Python loop).
      The batch axis is chunked so the offset tensor never exceeds
      ``read_chunk_elems`` elements.

    Thread reentrancy: **fast-path** reads are safe from any number of
    threads — the scan touches only the immutable packed ``weight_words``
    and the op meters take ``_meter_lock``, so concurrent ``popcounts``
    are bit-identical to serial calls and the counters stay exact (the
    serving daemon relies on this; pinned by
    ``tests/rram/test_thread_reentrancy.py``).  The **noisy** path is
    single-caller by contract: each scan consumes the controller's
    ``self.rng`` stream, so concurrent noisy reads would interleave
    draws nondeterministically — callers that need noisy concurrency
    pass explicit per-trial ``rng`` streams (the MC engine) or serialize.
    """

    read_chunk_elems = READ_CHUNK_ELEMS   # offset-tensor budget per scan

    def __init__(self, weight_bits: np.ndarray,
                 config: AcceleratorConfig | None = None,
                 rng: np.random.Generator | None = None,
                 fast_path: bool | str = "auto",
                 lifetime: LifetimeConfig | None = None,
                 fault_map: FaultMap | None = None,
                 fault_key: int | tuple[int, ...] = ()):
        config = (config or AcceleratorConfig()).resolved()
        self.config = config
        self.rng = rng or np.random.default_rng(config.seed)
        weight_bits = np.asarray(weight_bits, dtype=np.uint8)
        if weight_bits.ndim != 2:
            raise ValueError(f"weight bits must be 2-D, got {weight_bits.shape}")
        self.out_features, self.in_features = weight_bits.shape
        tr, tc = config.tile_rows, config.tile_cols
        self.grid_rows = -(-self.out_features // tr)
        self.grid_cols = -(-self.in_features // tc)
        # Valid-column count per tile column block (for popcount masking).
        self._valid_cols = [min(tc, self.in_features - j * tc)
                            for j in range(self.grid_cols)]
        self.popcount_bit_ops = 0
        self._extra_sense_ops = 0
        # Meter updates are the ONLY state a fast-path read mutates, so
        # this lock is what makes concurrent fast-path scans fully
        # reentrant (scores were already pure; the counters would race).
        self._meter_lock = threading.Lock()

        # Lifetime and fault state: inactive configurations normalize to
        # None so the constructor (and every read) is byte-identical to
        # the pre-fault-layer behaviour — no extra draws, no extra state.
        if lifetime is not None and not lifetime.active:
            lifetime = None
        self.lifetime = lifetime
        if fault_map is not None and not fault_map.has_cell_faults:
            fault_map = None
        self.fault_map = fault_map
        self.fault_key = (int(fault_key),) if isinstance(fault_key, int) \
            else tuple(int(k) for k in fault_key)

        if fast_path not in (True, False, "auto"):
            raise ValueError("fast_path must be True, False or 'auto'")
        deterministic = _noise_free(config) and lifetime is None
        if fast_path is True and not deterministic:
            raise ValueError(
                "fast_path=True requires a noise-free configuration "
                "(zero device sigma, zero HRS drift, zero sense offset, "
                "no retention aging); use fast_path='auto' to dispatch")
        self.fast_path = deterministic if fast_path == "auto" \
            else bool(fast_path)

        # Stuck-at faults are keyed, not streamed: drawing them consumes
        # the map's own site stream, never the program generator.
        stuck_one = stuck_zero = None
        if fault_map is not None:
            stuck_one, stuck_zero = fault_map.cell_masks(
                weight_bits.shape, self.fault_key)
        self.n_stuck_cells = 0 if stuck_one is None \
            else int(stuck_one.sum() + stuck_zero.sum())

        self.tiles: list[list[RRAMArray]] = []
        self._margins: np.ndarray | None = None
        if self.fast_path:
            # Deterministic reads: the stored word is all that matters, so
            # pack it once for the uint64 kernels and skip device state.
            # Stuck cells read their stuck value, so they fold into the
            # effective bits here (faults are hard, hence deterministic).
            effective = weight_bits
            if stuck_one is not None:
                effective = np.array(weight_bits, copy=True)
                effective[stuck_one] = 1
                effective[stuck_zero] = 0
            self.weight_words = pack_bits(effective)
            return
        self.weight_words = None
        padded = np.zeros((self.grid_rows * tr, self.grid_cols * tc),
                          dtype=np.uint8)
        padded[:self.out_features, :self.in_features] = weight_bits
        pad_one = pad_zero = None
        if stuck_one is not None:
            pad_one = np.zeros(padded.shape, dtype=bool)
            pad_zero = np.zeros(padded.shape, dtype=bool)
            pad_one[:self.out_features, :self.in_features] = stuck_one
            pad_zero[:self.out_features, :self.in_features] = stuck_zero
        for i in range(self.grid_rows):
            row_tiles = []
            for j in range(self.grid_cols):
                tile = RRAMArray(tr, tc, params=config.device,
                                 sense=config.sense, rng=self.rng)
                tile.program(padded[i * tr:(i + 1) * tr,
                                    j * tc:(j + 1) * tc])
                if pad_one is not None:
                    tile.inject_stuck(
                        pad_one[i * tr:(i + 1) * tr, j * tc:(j + 1) * tc],
                        pad_zero[i * tr:(i + 1) * tr, j * tc:(j + 1) * tc])
                row_tiles.append(tile)
            self.tiles.append(row_tiles)
        if lifetime is not None:
            # Aging is a *program-time* transformation of device state:
            # drift draws come from the root generator (tiles in row-major
            # order, after all programming), so read-time trial streams
            # stay untouched and batched == serial is preserved verbatim.
            bake = lifetime.bake_hours()
            for row_tiles in self.tiles:
                for tile in row_tiles:
                    tile.age(bake, lifetime.retention, self.rng)

    @property
    def n_tiles(self) -> int:
        return self.grid_rows * self.grid_cols

    @property
    def n_devices(self) -> int:
        per_cell = 2   # 2T2R
        return self.n_tiles * self.config.tile_rows * self.config.tile_cols \
            * per_cell

    @property
    def sense_ops(self) -> int:
        return sum(t.sense_ops for row in self.tiles for t in row) \
            + self._extra_sense_ops

    def wear(self, cycles: int) -> None:
        """Age every device (endurance studies on deployed weights).

        A no-op on the fast path: wear only manifests through the
        variability parameters, which a noise-free configuration zeroes.
        """
        for row in self.tiles:
            for tile in row:
                tile.wear(cycles)

    def reprogram(self) -> None:
        """Re-program stored weights (refresh); re-draws all resistances.

        A refresh writes fresh filaments, so retention aging restarts
        from zero; stuck-at defects persist (they are not healed by
        programming).
        """
        for row in self.tiles:
            for tile in row:
                tile.program(tile.weight_bits)
        self._margins = None

    def _stacked_margins(self) -> np.ndarray:
        """Tile sense margins as one ``(out_padded, in_features)`` matrix.

        Assembled lazily from the tile grid and cached until the next
        reprogram (margins are fixed by the programmed resistances; only
        per-read offsets vary).  Padded columns are dropped here, which is
        what masks them out of every popcount.  The meter lock guards the
        lazy build so a concurrent first read never sees a half-filled
        cache (the noisy *scan* itself is still single-caller: it
        consumes ``self.rng``, see :meth:`popcounts`).
        """
        with self._meter_lock:
            return self._stacked_margins_locked()

    def _stacked_margins_locked(self) -> np.ndarray:
        if self._margins is None:
            tr, tc = self.config.tile_rows, self.config.tile_cols
            full = np.empty((self.grid_rows * tr, self.grid_cols * tc))
            for i, row_tiles in enumerate(self.tiles):
                for j, tile in enumerate(row_tiles):
                    full[i * tr:(i + 1) * tr, j * tc:(j + 1) * tc] = \
                        tile._sense_margin()
            valid = np.concatenate(
                [np.arange(j * tc, j * tc + self._valid_cols[j])
                 for j in range(self.grid_cols)])
            self._margins = np.ascontiguousarray(full[:, valid])
        return self._margins

    def popcounts(self, x_bits: np.ndarray,
                  rng: np.random.Generator | None = None,
                  sense: SenseParameters | None = None) -> np.ndarray:
        """XNOR-popcount of a batch against every stored row.

        ``x_bits``: ``(N, in_features)``; returns ``(N, out_features)``
        integer popcounts.  On the fast path this is one packed-word
        kernel call.  On the noisy path the whole tile grid is scanned in
        one vectorized pass per batch chunk: fresh sense offsets are drawn
        once per scan (every cell, every inference — the same statistics
        as per-tile reads), added to the stacked margins, and the XNOR
        agreements are reduced over the input axis without materializing
        any per-tile intermediates.

        ``rng`` overrides the controller's generator for this scan only
        (the Monte-Carlo per-trial stream hook) and ``sense`` overrides
        the sense parameters (margins never depend on them, so a cached
        programmed controller can be read at any offset sigma).
        """
        x_bits = np.asarray(x_bits, dtype=np.uint8)
        if x_bits.ndim != 2 or x_bits.shape[1] != self.in_features:
            raise ValueError(
                f"input shape {x_bits.shape} != (N, {self.in_features})")
        n = x_bits.shape[0]
        out_p = self._count_read_ops(n, trials=1)
        if self.fast_path:
            self._check_sense_override(sense)
            return packed_xnor_popcount(pack_bits(x_bits),
                                        self.weight_words, self.in_features)
        margins = self._stacked_margins()
        x_bool = x_bits.astype(bool)
        counts = np.empty((n, out_p), dtype=np.int64)
        sense = sense or self.config.sense
        rng = rng or self.rng
        chunk = max(1, self.read_chunk_elems
                    // max(1, out_p * self.in_features))
        for start in range(0, n, chunk):
            xs = x_bool[start:start + chunk]
            offsets = sense.offset(rng, (len(xs),) + margins.shape)
            weight_read = (margins[None, :, :] + offsets) > 0
            agree = weight_read == xs[:, None, :]
            counts[start:start + len(xs)] = agree.sum(axis=2, dtype=np.int64)
        return counts[:, :self.out_features]

    @staticmethod
    def _check_sense_override(sense: SenseParameters | None) -> None:
        """A fast-path controller has no margins to perturb: a noisy
        read-time sense override cannot be honoured, so refuse it loudly
        instead of silently returning deterministic results."""
        if sense is not None and sense.offset_sigma != 0.0:
            raise ValueError(
                "sense override with nonzero offset_sigma requires the "
                "physical device path; build the controller with "
                "fast_path=False to keep margins resident")

    def _count_read_ops(self, n: int, trials: int) -> int:
        """Update the popcount/sense-op meters for ``trials`` scans of an
        ``n``-row batch; returns the padded output-row count.

        Locked: ``+=`` on a Python int is read-modify-write, so two
        threads scanning one fast-path controller concurrently (the
        serving daemon's transport thread racing its executor) would
        otherwise drop counts.  The scan itself needs no lock — the fast
        path reads only immutable packed words."""
        tr, tc = self.config.tile_rows, self.config.tile_cols
        out_p = self.grid_rows * tr
        with self._meter_lock:
            self.popcount_bit_ops += trials * n * out_p * self.in_features
            self._extra_sense_ops += trials * n * out_p \
                * self.grid_cols * tc
        return out_p

    def __getstate__(self):
        """Process-pool workers rebuild controllers rather than shipping
        them, but keep pickling possible: drop the (unpicklable) meter
        lock and restore a fresh one on load."""
        state = self.__dict__.copy()
        del state["_meter_lock"]
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._meter_lock = threading.Lock()

    def popcounts_trials(self, x_bits: np.ndarray, rngs,
                         sense: SenseParameters | None = None,
                         trial_chunk: int | None = None) -> np.ndarray:
        """Trial-batched XNOR-popcounts: ``T`` noisy scans in one pass.

        ``x_bits`` is either a shared ``(N, in_features)`` batch (every
        trial sees the same activations — the Monte-Carlo case) or a
        per-trial ``(T, N, in_features)`` stack (mid-network, where
        earlier noisy layers already diverged the trials).  ``rngs`` holds
        one generator per trial (:func:`repro.rram.mc.trial_streams`);
        returns ``(T, N, out_features)`` counts.

        Trial ``t`` draws every offset from ``rngs[t]`` alone, so the
        result is bit-identical to ``[popcounts(x[t], rng=rngs[t]) for
        t in range(T)]`` for any ``trial_chunk`` (numpy normal draws are
        split-stable; see :mod:`repro.rram.mc`).  The stacked
        ``(T_chunk, N_chunk, out, in)`` offset tensor is bounded by
        ``read_chunk_elems`` like the single-trial scan.

        On the fast path reads are deterministic, so all trials are the
        one packed-kernel result broadcast over the trial axis.
        """
        x_bits = np.asarray(x_bits, dtype=np.uint8)
        n_trials = len(rngs)
        shared = _validate_trial_input(x_bits, n_trials, self.in_features)
        n = x_bits.shape[0] if shared else x_bits.shape[1]
        out_p = self._count_read_ops(n, trials=n_trials)
        if self.fast_path:
            self._check_sense_override(sense)
            if shared:
                counts = packed_xnor_popcount(
                    pack_bits(x_bits), self.weight_words, self.in_features)
                return np.broadcast_to(
                    counts[None], (n_trials,) + counts.shape).copy()
            return np.stack([
                packed_xnor_popcount(pack_bits(x_bits[t]),
                                     self.weight_words, self.in_features)
                for t in range(n_trials)])
        margins = self._stacked_margins()
        x_bool = x_bits.astype(bool)
        counts = np.empty((n_trials, n, out_p), dtype=np.int64)
        sense = sense or self.config.sense
        per_trial = n * out_p * self.in_features
        from repro.rram.mc import trial_chunks
        for t0, t1 in trial_chunks(n_trials, per_trial,
                                   self.read_chunk_elems, trial_chunk):
            sub = rngs[t0:t1]
            chunk = max(1, self.read_chunk_elems
                        // max(1, len(sub) * out_p * self.in_features))
            for start in range(0, n, chunk):
                xs = x_bool[start:start + chunk] if shared \
                    else x_bool[t0:t1, start:start + chunk]
                rows = xs.shape[0] if shared else xs.shape[1]
                offsets = np.stack([
                    sense.offset(rng, (rows,) + margins.shape)
                    for rng in sub])
                weight_read = (margins[None, None] + offsets) > 0
                x_cmp = xs[None, :, None, :] if shared \
                    else xs[:, :, None, :]
                agree = weight_read == x_cmp
                counts[t0:t1, start:start + rows] = \
                    agree.sum(axis=3, dtype=np.int64)
        return counts[:, :, :self.out_features]


@dataclass(frozen=True)
class StackedShardPlan:
    """Program-time fast plan for a sharded layer: one batched kernel.

    Built once at :class:`ShardedController` construction (fast path
    only).  Every shard's padded weight slice is re-packed **word-aligned
    to the shared activation grid**: the grid is the layer's full-width
    packed activation row (``n_words`` uint64 words), and shard ``s``'s
    slice lands at bit ``col_start`` of that grid — exactly where the
    once-packed activation batch already holds its fan-in bits
    (:attr:`~repro.rram.floorplan.MacroShard.word_start` /
    :attr:`~repro.rram.floorplan.MacroShard.bit_offset`).

    On that grid the shards of one fan-out stripe (one grid row — same
    output neurons, adjacent fan-in slices) occupy **disjoint** bit
    positions, so the stripe reduction fuses into the plan itself: OR-ing
    the stripe's aligned weight words gives one ``(macro_rows, n_words)``
    block whose XNOR disagreements against the shared activation words
    equal the *sum* of the stripe's per-shard disagreements.  The
    per-batch stripe sum (``np.add.reduceat`` over partial popcounts)
    thereby becomes a program-time bit-OR, and ``popcounts`` collapses
    to: pack the batch once, one
    :func:`~repro.nn.bitops.packed_xnor_popcount_stacked` launch over
    the ``(grid_rows, macro_rows, n_words)`` tensor, and a transpose/
    reshape that concatenates fan-out stripes.  ``widths`` holds each
    stripe's true fan-in — the pad-correction vector turning raw
    disagreements into exact agreements (zero pad and out-of-slice bits
    never disagree: both operands keep them zero).

    The per-shard word ranges (``word_start`` / ``word_stop`` /
    ``bit_offset``) are kept for introspection and tests; the noisy path
    never uses this plan — per-chip sense noise must ride the
    per-(shard, trial) RNG stream contract, which requires genuinely
    per-shard scans (see :func:`repro.rram.mc.shard_streams`).
    """

    grid_rows: int
    grid_cols: int
    macro_rows: int
    out_features: int
    in_features: int
    n_words: int                      # shared activation-grid width
    words: np.ndarray = field(repr=False)   # (grid_rows, macro_rows, n_words)
    widths: np.ndarray = field(repr=False)  # (grid_rows,) true fan-in
    word_start: np.ndarray = field(repr=False)  # (n_shards,) shard ranges
    word_stop: np.ndarray = field(repr=False)
    bit_offset: np.ndarray = field(repr=False)

    @classmethod
    def build(cls, weight_bits: np.ndarray,
              placement: LayerPlacement) -> "StackedShardPlan":
        """Pre-pack the placement's shard map for batched execution.

        Placing the real weight rows on the padded ``(grid_rows *
        macro_rows, in_features)`` canvas and packing row-wise *is* the
        aligned-and-fused tensor: each shard's slice lands at its grid
        word range, interior zeros are the disjoint-mask OR identity,
        and tail-shard row padding stays all-zero (those word lines are
        sliced off after the scan, like the monolithic controller's
        padded rows).
        """
        shards = placement.shards()
        grid_rows, grid_cols = placement.tile_grid
        macro_rows = placement.macro.rows
        out_features, in_features = weight_bits.shape
        padded = np.zeros((grid_rows * macro_rows, in_features),
                          dtype=np.uint8)
        padded[:out_features] = weight_bits
        words = pack_bits(padded).reshape(grid_rows, macro_rows,
                                          placement.activation_words)
        # Every stripe spans the full fan-in once its shards are fused.
        widths = np.full(grid_rows, in_features, dtype=np.int64)
        return cls(
            grid_rows=grid_rows, grid_cols=grid_cols,
            macro_rows=macro_rows, out_features=out_features,
            in_features=in_features,
            n_words=placement.activation_words,
            words=words, widths=widths,
            word_start=np.array([s.word_start for s in shards]),
            word_stop=np.array([s.word_stop for s in shards]),
            bit_offset=np.array([s.bit_offset for s in shards]))


class ShardedController:
    """One folded layer split across a grid of simulated macro *chips*.

    Where :class:`MemoryController` simulates a layer as one monolithic
    array (tiling internally but sensing and reducing as a single device),
    this controller executes the layer's
    :meth:`~repro.rram.floorplan.LayerPlacement.shards` map: every
    :class:`~repro.rram.floorplan.MacroShard` becomes its own fixed-
    geometry chip — a single-macro :class:`MemoryController` holding the
    shard's row/column slice of the weight matrix, padded to the macro
    geometry exactly like a real partially-filled edge macro.

    The dataflow is shard-and-reduce:

    * **fan-in sharding**: the activation bits are sliced per shard
      column range; each chip XNOR-scans its word lines against its slice
      and emits *partial popcounts* over its own fan-in columns;
    * **reduction**: partial popcounts of the shards in one fan-out
      stripe are summed digitally (the inter-chip accumulator); stripes
      are concatenated for wide layers (fan-out sharding).  The caller
      applies the integer threshold once, on the reduced counts — so on
      noise-free configurations the result is bit-identical to the
      monolithic controller (popcounts decompose exactly over column
      slices).

    Randomness follows the sharded stream contract of
    :func:`repro.rram.mc.shard_streams`: programming spawns one child of
    the root generator per shard (chips have independent devices), and
    every noisy scan spawns one child per shard from the read stream —
    per-trial, per-shard independent sense noise, chunk-invariant and
    bit-identical between trial-batched and serial per-trial execution.

    Noise-free configurations additionally compile a
    :class:`StackedShardPlan` at construction (``stacked="auto"``, the
    default): deterministic partial popcounts decompose exactly over the
    shard map, so the per-chip Python loop — slice, re-pack, tiny kernel,
    scattered ``+=`` per shard — collapses to one full-width activation
    pack, one batched stacked kernel and one stripe concatenation,
    bit-identical to the per-shard loop and to the monolithic controller.
    ``stacked=False`` keeps the genuine per-shard fast loop as the
    reference for equivalence tests; the noisy path always scans shard by
    shard (the RNG stream contract requires per-chip draws).

    The same read API as :class:`MemoryController` (``popcounts`` /
    ``popcounts_trials`` / meters), so the in-memory layer classes accept
    either via their ``controller`` parameter.
    """

    read_chunk_elems = READ_CHUNK_ELEMS

    def __init__(self, weight_bits: np.ndarray,
                 placement: LayerPlacement | None = None,
                 config: AcceleratorConfig | None = None,
                 rng: np.random.Generator | None = None,
                 fast_path: bool | str = "auto",
                 macro: MacroGeometry | None = None,
                 name: str = "layer",
                 stacked: bool | str = "auto",
                 lifetime: LifetimeConfig | None = None,
                 fault_map: FaultMap | None = None,
                 fault_key: int | tuple[int, ...] = (),
                 spares: int | str = "auto"):
        config = (config or AcceleratorConfig()).resolved()
        self.config = config
        self.rng = rng or np.random.default_rng(config.seed)
        weight_bits = np.asarray(weight_bits, dtype=np.uint8)
        if weight_bits.ndim != 2:
            raise ValueError(
                f"weight bits must be 2-D, got {weight_bits.shape}")
        self.out_features, self.in_features = weight_bits.shape
        if placement is None:
            macro = macro or MacroGeometry(config.tile_rows, config.tile_cols)
            placement = LayerPlacement(name, self.out_features,
                                       self.in_features, macro)
        if (placement.out_features, placement.in_features) \
                != weight_bits.shape:
            raise ValueError(
                f"placement {placement.name!r} is for "
                f"({placement.out_features}, {placement.in_features}) "
                f"weights, got {weight_bits.shape}")
        self.placement = placement
        self.macro = placement.macro
        self.shard_map = placement.shards()
        self.lifetime = lifetime if lifetime is not None \
            and lifetime.active else None
        self.fault_map = fault_map
        fault_key = (int(fault_key),) if isinstance(fault_key, int) \
            else tuple(int(k) for k in fault_key)
        self.fault_key = fault_key

        # Dead macros -> spare remap.  A dead shard's weights are
        # programmed onto a provisioned spare chip instead: the spare is
        # a healthy macro (no cell faults), holding exactly the slice the
        # dead chip would have, so the reduction is unchanged and the
        # layer *completes* instead of raising.
        dead = () if fault_map is None else \
            fault_map.dead_local(len(self.shard_map))
        if fault_map is not None and any(
                m >= len(self.shard_map) for m in fault_map.dead_macros):
            raise ValueError(
                f"dead macro indices {fault_map.dead_macros} exceed the "
                f"{len(self.shard_map)}-shard map of layer "
                f"{placement.name!r}; rebase a chip-global map with "
                "FaultMap.rebased() first")
        if spares == "auto":
            provisioned = max(len(dead),
                              -(-len(self.shard_map) // 20)) if dead else 0
        elif isinstance(spares, int) and spares >= 0:
            provisioned = spares
        else:
            raise ValueError(f"spares must be 'auto' or an int >= 0, "
                             f"got {spares!r}")
        if len(dead) > provisioned:
            raise RuntimeError(
                f"layer {placement.name!r}: {len(dead)} dead macro(s) "
                f"{tuple(dead)} but only {provisioned} spare(s) "
                "provisioned; increase spares= (or use spares='auto')")
        self.remapped_shards = list(dead)
        self.spare_macros = provisioned
        placement.spare_macros = provisioned
        placement.remapped = tuple(dead)

        # Every chip is a full macro: tail shards pad to the fixed
        # geometry, exactly like the floorplan provisions them.
        shard_config = replace(config, tile_rows=self.macro.rows,
                               tile_cols=self.macro.cols)
        program_streams = self.rng.spawn(len(self.shard_map))
        dead_set = set(dead)
        cell_faults = fault_map if fault_map is not None \
            and fault_map.has_cell_faults else None
        self.shards = [
            MemoryController(
                weight_bits[s.row_start:s.row_stop,
                            s.col_start:s.col_stop],
                shard_config, program_streams[s.index], fast_path,
                lifetime=lifetime,
                # A remapped shard lives on a spare: a healthy chip
                # (the dead chip's cell faults died with it).
                fault_map=None if s.index in dead_set else cell_faults,
                fault_key=fault_key + (s.index,))
            for s in self.shard_map]
        self.fast_path = self.shards[0].fast_path
        if stacked not in (True, False, "auto"):
            raise ValueError("stacked must be True, False or 'auto'")
        if stacked is True and not self.fast_path:
            raise ValueError(
                "stacked=True requires the fast path: noisy reads must "
                "scan shard by shard to honour the per-(shard, trial) "
                "RNG stream contract; use stacked='auto' to dispatch")
        self.plan = None
        if self.fast_path and stacked is not False:
            # The stacked plan fuses *effective* stored bits (stuck-at
            # overrides applied per healthy shard); remapped shards are
            # zeroed out of the fused canvas and corrected per scan with
            # the per-shard kernel — the only shards that fall back.
            plan_bits = weight_bits
            if cell_faults is not None or dead_set:
                plan_bits = np.array(weight_bits, copy=True)
                for s in self.shard_map:
                    block = plan_bits[s.row_start:s.row_stop,
                                      s.col_start:s.col_stop]
                    if s.index in dead_set:
                        block[:] = 0
                    elif cell_faults is not None:
                        block[:] = cell_faults.apply_bits(
                            block, fault_key + (s.index,))
            self.plan = StackedShardPlan.build(plan_bits, placement)
        self.stacked = self.plan is not None
        self._remapped_specs = [(self.shard_map[i], self.shards[i])
                                for i in self.remapped_shards]
        #: Stage breakdown (pack / kernel / reduce, in ms) of the most
        #: recent stacked scan — populated by every stacked ``popcounts``
        #: call, ``None`` before the first one (and on other paths).
        self.last_profile: dict[str, float] | None = None

    # -- geometry / meters ----------------------------------------------
    @property
    def n_shards(self) -> int:
        return len(self.shards)

    @property
    def fast_path_kind(self) -> str:
        """Which read path scans execute on: ``"stacked"`` (one batched
        kernel), ``"per-shard"`` (fast per-chip loop, the ``stacked=
        False`` reference) or ``"noisy"`` (device simulation)."""
        if not self.fast_path:
            return "noisy"
        return "stacked" if self.stacked else "per-shard"

    @property
    def n_macros(self) -> int:
        return len(self.shards)

    @property
    def degraded(self) -> bool:
        """True when dead macros forced shards onto spares."""
        return bool(self.remapped_shards)

    @property
    def n_devices(self) -> int:
        return sum(shard.n_devices for shard in self.shards)

    @property
    def sense_ops(self) -> int:
        return sum(shard.sense_ops for shard in self.shards)

    @property
    def popcount_bit_ops(self) -> int:
        return sum(shard.popcount_bit_ops for shard in self.shards)

    def wear(self, cycles: int) -> None:
        """Age every chip's devices (endurance studies)."""
        for shard in self.shards:
            shard.wear(cycles)

    def reprogram(self) -> None:
        """Refresh every chip (re-draws all shard resistances)."""
        for shard in self.shards:
            shard.reprogram()

    # -- reads -----------------------------------------------------------
    def _meter_fast(self, n: int, trials: int) -> None:
        """Account ``trials`` deterministic scans of an ``n``-row batch
        on every chip's meters — arithmetically, without re-scanning.
        Identical to what ``trials`` per-shard loop passes would record
        (each chip senses its full macro per scan regardless of path)."""
        for shard in self.shards:
            shard._count_read_ops(n, trials)

    def _fast_counts(self, x_bits: np.ndarray) -> np.ndarray:
        """Deterministic reduced counts for a 2-D batch (no metering).

        Stacked plan: pack the batch once at full width, one batched
        stacked kernel over the fan-out stripes, concatenate.  Reference
        (``stacked=False``): genuine per-shard loop, with the activation
        batch still packed once and each shard's fan-in slice carved out
        in the word domain (:func:`~repro.nn.bitops.packed_column_slice`)
        instead of re-running ``numpy.packbits`` on misaligned offsets.
        """
        n = x_bits.shape[0]
        plan = self.plan
        if plan is not None:
            t0 = time.perf_counter()
            x_words = pack_bits(x_bits)
            t1 = time.perf_counter()
            counts = packed_xnor_popcount_stacked(
                x_words, plan.words, plan.widths)   # (stripes, N, rows)
            t2 = time.perf_counter()
            reduced = np.ascontiguousarray(
                counts.transpose(1, 0, 2)).reshape(
                    n, plan.grid_rows * plan.macro_rows)[
                        :, :self.out_features]
            t3 = time.perf_counter()
            # Unsynchronized by choice: a stale profile under concurrent
            # scans is harmless (diagnostics, not accounting).
            self.last_profile = {"pack_ms": (t1 - t0) * 1e3,
                                 "kernel_ms": (t2 - t1) * 1e3,
                                 "reduce_ms": (t3 - t2) * 1e3}
            for spec, shard in self._remapped_specs:
                # The fused canvas stores zeros where the dead shard
                # lived, so the stacked kernel credited one agreement
                # per *zero* activation bit in the slice: ``cols -
                # ones(xs)``.  Replace that with the spare chip's true
                # per-shard count.
                xs = packed_column_slice(x_words, spec.col_start,
                                         spec.col_stop)
                ones = np.bitwise_count(xs).sum(axis=1, dtype=np.int64)
                agree = packed_xnor_popcount(xs, shard.weight_words,
                                             spec.cols)
                reduced[:, spec.row_start:spec.row_stop] += \
                    agree - (spec.cols - ones)[:, None]
            return reduced
        x_words = pack_bits(x_bits)
        counts = np.zeros((n, self.out_features), dtype=np.int64)
        for spec, shard in zip(self.shard_map, self.shards):
            counts[:, spec.row_start:spec.row_stop] += packed_xnor_popcount(
                packed_column_slice(x_words, spec.col_start, spec.col_stop),
                shard.weight_words, spec.cols)
        return counts

    def popcounts(self, x_bits: np.ndarray,
                  rng: np.random.Generator | None = None,
                  sense: SenseParameters | None = None) -> np.ndarray:
        """Shard-and-reduce XNOR-popcount of a batch: ``(N, in)`` bits in,
        ``(N, out_features)`` reduced counts out.

        On the fast path no noise is drawn and the reduction is exact —
        one batched stacked-plan kernel (or the ``stacked=False``
        per-shard reference loop).  On the noisy path each shard scans
        its fan-in slice with its own spawned child of ``rng`` (the
        controller's root generator by default) and partial popcounts are
        summed per fan-out stripe.
        """
        x_bits = np.asarray(x_bits, dtype=np.uint8)
        if x_bits.ndim != 2 or x_bits.shape[1] != self.in_features:
            raise ValueError(
                f"input shape {x_bits.shape} != (N, {self.in_features})")
        if self.fast_path:
            MemoryController._check_sense_override(sense)
            self._meter_fast(x_bits.shape[0], trials=1)
            return self._fast_counts(x_bits)
        streams = (rng or self.rng).spawn(self.n_shards)
        counts = np.zeros((x_bits.shape[0], self.out_features),
                          dtype=np.int64)
        for spec, shard, stream in zip(self.shard_map, self.shards,
                                       streams):
            counts[:, spec.row_start:spec.row_stop] += shard.popcounts(
                x_bits[:, spec.col_start:spec.col_stop],
                rng=stream, sense=sense)
        return counts

    def popcounts_trials(self, x_bits: np.ndarray, rngs,
                         sense: SenseParameters | None = None,
                         trial_chunk: int | None = None) -> np.ndarray:
        """Trial-batched shard-and-reduce: ``(T, N, out_features)`` counts.

        Shard ``s`` of trial ``t`` draws from child ``(t, s)`` of the
        trial streams (:func:`repro.rram.mc.shard_streams`), so the stack
        is bit-identical to ``[popcounts(x[t], rng=rngs[t]) for t in
        range(T)]`` for any ``trial_chunk`` — the serial path spawns the
        same children from its single trial stream.

        Fast-path trials are deterministic and never consume the
        streams: shared activations are scanned **once** and broadcast
        over the trial axis; per-trial activation stacks run the stacked
        plan per trial chunk (each chunk packed and scanned flat).  The
        ``T`` scans every chip would perform are accounted on the meters
        arithmetically — no redundant re-scans.
        """
        x_bits = np.asarray(x_bits, dtype=np.uint8)
        n_trials = len(rngs)
        shared = _validate_trial_input(x_bits, n_trials, self.in_features)
        n = x_bits.shape[0] if shared else x_bits.shape[1]
        if self.fast_path:
            MemoryController._check_sense_override(sense)
            self._meter_fast(n, trials=n_trials)
            if shared:
                counts = self._fast_counts(x_bits)
                return np.broadcast_to(
                    counts[None], (n_trials,) + counts.shape).copy()
            counts = np.empty((n_trials, n, self.out_features),
                              dtype=np.int64)
            per_trial = n * max(1, self.n_shards * self.macro.rows)
            for t0, t1 in trial_chunks(n_trials, per_trial,
                                       self.read_chunk_elems, trial_chunk):
                flat = x_bits[t0:t1].reshape((t1 - t0) * n,
                                             self.in_features)
                counts[t0:t1] = self._fast_counts(flat).reshape(
                    t1 - t0, n, self.out_features)
            return counts
        streams = shard_streams(rngs, self.n_shards)
        counts = np.zeros((n_trials, n, self.out_features), dtype=np.int64)
        for spec, shard, shard_rngs in zip(self.shard_map, self.shards,
                                           streams):
            xs = x_bits[:, spec.col_start:spec.col_stop] if shared \
                else x_bits[:, :, spec.col_start:spec.col_stop]
            counts[:, :, spec.row_start:spec.row_stop] += \
                shard.popcounts_trials(xs, shard_rngs, sense=sense,
                                       trial_chunk=trial_chunk)
        return counts

    def __repr__(self) -> str:
        rows, cols = self.placement.tile_grid
        degraded = f", remapped={tuple(self.remapped_shards)}" \
            if self.degraded else ""
        return (f"ShardedController({self.out_features}x{self.in_features} "
                f"on {rows}x{cols} macros of "
                f"{self.macro.rows}x{self.macro.cols}, "
                f"fast_path={self.fast_path}, stacked={self.stacked}"
                f"{degraded})")


class MultiTenantController:
    """Interleaved word-line scans of several tenants resident on one
    macro pool: one batched kernel dispatch covers every tenant's
    stripes.

    Takes one :class:`ShardedController` per tenant (one co-scanned
    layer each — a "macro group" of the pool) and fuses their stacked
    plans onto a shared activation word grid: tenant stripe blocks are
    concatenated along the stripe axis (each tenant owns a contiguous
    stripe range — its stripe mask), activation batches are packed per
    tenant, zero-padded to the shared grid width and concatenated along
    the batch axis, and **one**
    :func:`~repro.nn.bitops.packed_xnor_popcount_stacked` launch scans
    everything.  Per-model partial-popcount reduction then slices each
    tenant's ``(stripes, rows)`` block back out.

    Bit-identity with solo execution is structural, not approximate:
    the kernel computes ``width - disagreements`` per stripe with each
    tenant's true fan-in as the width, and every word beyond a tenant's
    own grid is zero in *both* operands (the ``pack_bits`` zero-pad
    invariant), so padding to the shared width never creates a
    disagreement.  Cross products (tenant A's rows against tenant B's
    stripes) are computed by the fused launch but discarded by the
    reduction — they model the word lines a real shared chip senses
    while another tenant's rows are resident.  Dead-macro spare remaps
    (PR 7) are corrected per tenant on its own unpadded words, exactly
    like the solo stacked path.

    Requires every tenant on the noise-free stacked fast path: noisy
    scans must honour the per-(shard, trial) RNG stream contract and
    cannot fuse across tenants.
    """

    def __init__(self, controllers):
        if not controllers:
            raise ValueError("need at least one tenant controller")
        self.controllers: dict[str, ShardedController] = dict(controllers)
        first = next(iter(self.controllers.values()))
        for name, controller in self.controllers.items():
            if controller.plan is None:
                raise ValueError(
                    f"tenant {name!r} is not on the stacked fast path "
                    f"({controller.fast_path_kind}); interleaved scans "
                    "fuse stacked plans only")
            if controller.macro != first.macro:
                raise ValueError(
                    f"tenant {name!r} uses {controller.macro.rows}x"
                    f"{controller.macro.cols} macros, expected "
                    f"{first.macro.rows}x{first.macro.cols} — tenants "
                    "share one chip geometry")
        self.macro = first.macro
        macro_rows = self.macro.rows
        self.n_words = max(c.plan.n_words for c in self.controllers.values())

        # Per-tenant stripe blocks padded to the shared grid width, plus
        # the fused tensor for full-pool scans.  Tenant order fixes the
        # stripe ranges (the per-tenant stripe masks).
        self._padded: dict[str, np.ndarray] = {}
        self.stripe_ranges: dict[str, tuple[int, int]] = {}
        widths = []
        cursor = 0
        for name, controller in self.controllers.items():
            plan = controller.plan
            block = np.zeros((plan.grid_rows, macro_rows, self.n_words),
                             dtype=np.uint64)
            block[:, :, :plan.n_words] = plan.words
            self._padded[name] = block
            self.stripe_ranges[name] = (cursor, cursor + plan.grid_rows)
            cursor += plan.grid_rows
            widths.append(plan.widths)
        self.words = np.concatenate(
            [self._padded[name] for name in self.controllers])
        self.widths = np.concatenate(widths)

    @property
    def tenants(self) -> tuple[str, ...]:
        return tuple(self.controllers)

    @property
    def n_stripes(self) -> int:
        return int(self.words.shape[0])

    def popcounts(self, batches) -> dict:
        """One interleaved scan: ``{tenant: (N_t, in_t) bits}`` in,
        ``{tenant: (N_t, out_t) reduced counts}`` out, each tenant's
        counts bit-identical to its solo ``ShardedController.popcounts``.

        Tenants absent from ``batches`` (or with empty batches) are
        skipped — their word lines simply are not selected this scan.
        """
        unknown = [name for name in batches if name not in self.controllers]
        if unknown:
            raise ValueError(
                f"unknown tenant(s) {unknown}; resident: "
                f"{', '.join(self.controllers)}")
        active = []
        for name in self.controllers:
            if name not in batches:
                continue
            controller = self.controllers[name]
            x_bits = np.asarray(batches[name], dtype=np.uint8)
            if x_bits.ndim != 2 or \
                    x_bits.shape[1] != controller.in_features:
                raise ValueError(
                    f"tenant {name!r}: input shape {x_bits.shape} != "
                    f"(N, {controller.in_features})")
            if x_bits.shape[0]:
                active.append((name, controller, x_bits))
        if not active:
            return {name: np.zeros(
                (0, self.controllers[name].out_features), dtype=np.int64)
                for name in batches}

        # Pack per tenant at its own width, pad to the shared grid, and
        # stack the rows of every tenant into one activation batch.
        packed, padded_rows, row_ranges = {}, [], {}
        cursor = 0
        for name, controller, x_bits in active:
            x_words = pack_bits(x_bits)
            packed[name] = x_words
            pad = np.zeros((x_words.shape[0], self.n_words),
                           dtype=np.uint64)
            pad[:, :x_words.shape[1]] = x_words
            padded_rows.append(pad)
            row_ranges[name] = (cursor, cursor + x_words.shape[0])
            cursor += x_words.shape[0]
        x_all = padded_rows[0] if len(padded_rows) == 1 \
            else np.concatenate(padded_rows)
        if len(active) == len(self.controllers):
            words, widths = self.words, self.widths
            stripe_ranges = self.stripe_ranges
        else:
            words = np.concatenate(
                [self._padded[name] for name, _, _ in active])
            widths = np.concatenate(
                [self.controllers[name].plan.widths
                 for name, _, _ in active])
            stripe_ranges, stripe_cursor = {}, 0
            for name, controller, _ in active:
                stripe_ranges[name] = (
                    stripe_cursor,
                    stripe_cursor + controller.plan.grid_rows)
                stripe_cursor += controller.plan.grid_rows

        counts = packed_xnor_popcount_stacked(x_all, words, widths)

        results: dict[str, np.ndarray] = {}
        for name, controller, x_bits in active:
            s0, s1 = stripe_ranges[name]
            r0, r1 = row_ranges[name]
            plan = controller.plan
            n = r1 - r0
            reduced = np.ascontiguousarray(
                counts[s0:s1, r0:r1].transpose(1, 0, 2)).reshape(
                    n, plan.grid_rows * plan.macro_rows)[
                        :, :controller.out_features]
            x_words = packed[name]
            for spec, shard in controller._remapped_specs:
                xs = packed_column_slice(x_words, spec.col_start,
                                         spec.col_stop)
                ones = np.bitwise_count(xs).sum(axis=1, dtype=np.int64)
                agree = packed_xnor_popcount(xs, shard.weight_words,
                                             spec.cols)
                reduced[:, spec.row_start:spec.row_stop] += \
                    agree - (spec.cols - ones)[:, None]
            controller._meter_fast(n, trials=1)
            results[name] = reduced
        for name in batches:
            if name not in results:
                results[name] = np.zeros(
                    (0, self.controllers[name].out_features),
                    dtype=np.int64)
        return results

    def __repr__(self) -> str:
        tenants = ", ".join(
            f"{name}:{c.out_features}x{c.in_features}"
            for name, c in self.controllers.items())
        return (f"MultiTenantController({tenants} on "
                f"{self.macro.rows}x{self.macro.cols} macros, "
                f"{self.n_stripes} fused stripes)")


class InMemoryDenseLayer:
    """A hidden binary dense layer executed on RRAM tiles.

    Thresholding implements ``sign(BN(.))`` folded per Eq. 3; output is the
    next layer's activation bits.
    """

    def __init__(self, folded: FoldedBinaryDense,
                 config: AcceleratorConfig | None = None,
                 rng: np.random.Generator | None = None,
                 fast_path: bool | str = "auto",
                 controller=None):
        self.folded = folded
        self.controller = controller if controller is not None else \
            MemoryController(folded.weight_bits, config, rng, fast_path)

    def forward_bits(self, x_bits: np.ndarray,
                     rng: np.random.Generator | None = None,
                     sense: SenseParameters | None = None) -> np.ndarray:
        pc = self.controller.popcounts(x_bits, rng=rng, sense=sense)
        f = self.folded
        dot = 2 * pc - f.in_features
        return threshold_bits(dot, f.theta[None, :], f.gamma_sign[None, :],
                              f.beta_sign[None, :])

    def forward_bits_trials(self, x_bits: np.ndarray, rngs,
                            sense: SenseParameters | None = None,
                            trial_chunk: int | None = None) -> np.ndarray:
        """Trial-batched forward: ``(N, in)`` or ``(T, N, in)`` bits in,
        ``(T, N, out)`` bits out; trial ``t`` reads with ``rngs[t]``."""
        pc = self.controller.popcounts_trials(x_bits, rngs, sense=sense,
                                              trial_chunk=trial_chunk)
        f = self.folded
        dot = 2 * pc - f.in_features
        return threshold_bits(dot, f.theta[None, :], f.gamma_sign[None, :],
                              f.beta_sign[None, :])


class InMemoryOutputLayer:
    """The final binary dense layer: popcount in-memory, affine + argmax in
    the shared digital logic (no sign follows the last layer)."""

    def __init__(self, folded: FoldedOutputDense,
                 config: AcceleratorConfig | None = None,
                 rng: np.random.Generator | None = None,
                 fast_path: bool | str = "auto",
                 controller=None):
        self.folded = folded
        self.controller = controller if controller is not None else \
            MemoryController(folded.weight_bits, config, rng, fast_path)

    def forward_scores(self, x_bits: np.ndarray,
                       rng: np.random.Generator | None = None,
                       sense: SenseParameters | None = None) -> np.ndarray:
        pc = self.controller.popcounts(x_bits, rng=rng, sense=sense)
        dot = 2 * pc - self.folded.in_features
        return dot * self.folded.scale[None, :] + self.folded.offset[None, :]

    def forward_scores_trials(self, x_bits: np.ndarray, rngs,
                              sense: SenseParameters | None = None,
                              trial_chunk: int | None = None) -> np.ndarray:
        """Trial-batched scores: ``(T, N, classes)``; trial ``t`` reads
        with ``rngs[t]``."""
        pc = self.controller.popcounts_trials(x_bits, rngs, sense=sense,
                                              trial_chunk=trial_chunk)
        dot = 2 * pc - self.folded.in_features
        return dot * self.folded.scale[None, :] + self.folded.offset[None, :]


class InMemoryClassifier:
    """A stack of in-memory binary dense layers ending in a score layer."""

    def __init__(self, hidden: list[InMemoryDenseLayer],
                 output: InMemoryOutputLayer):
        self.hidden = hidden
        self.output = output

    def forward_scores(self, x_bits: np.ndarray) -> np.ndarray:
        bits = np.asarray(x_bits, dtype=np.uint8)
        for layer in self.hidden:
            bits = layer.forward_bits(bits)
        return self.output.forward_scores(bits)

    def predict(self, x_bits: np.ndarray) -> np.ndarray:
        return self.forward_scores(x_bits).argmax(axis=1)

    def forward_scores_trials(self, x_bits: np.ndarray, rngs,
                              sense: SenseParameters | None = None,
                              trial_chunk: int | None = None) -> np.ndarray:
        """Monte-Carlo scores over a trial axis: ``(T, N, classes)``.

        Every layer of trial ``t`` draws from stream ``rngs[t]`` in layer
        order, so the stack equals a serial per-trial pass of the whole
        classifier under the same child streams.  ``sense`` overrides the
        sense parameters of *every* layer for these reads (the
        robustness-sweep convention: one programmed classifier, many
        read-time sigmas).
        """
        bits = np.asarray(x_bits, dtype=np.uint8)
        for layer in self.hidden:
            bits = layer.forward_bits_trials(bits, rngs, sense=sense,
                                             trial_chunk=trial_chunk)
        return self.output.forward_scores_trials(bits, rngs, sense=sense,
                                                 trial_chunk=trial_chunk)

    def predict_trials(self, x_bits: np.ndarray, rngs,
                       sense: SenseParameters | None = None,
                       trial_chunk: int | None = None) -> np.ndarray:
        """Per-trial predicted labels ``(T, N)``."""
        return self.forward_scores_trials(x_bits, rngs, sense=sense,
                                          trial_chunk=trial_chunk
                                          ).argmax(axis=2)

    # ------------------------------------------------------------------
    @property
    def controllers(self) -> list[MemoryController]:
        return [layer.controller for layer in self.hidden] \
            + [self.output.controller]

    @property
    def n_devices(self) -> int:
        return sum(c.n_devices for c in self.controllers)

    @property
    def sense_ops(self) -> int:
        return sum(c.sense_ops for c in self.controllers)

    @property
    def popcount_bit_ops(self) -> int:
        return sum(c.popcount_bit_ops for c in self.controllers)

    def wear(self, cycles: int) -> None:
        for controller in self.controllers:
            controller.wear(cycles)


# ---------------------------------------------------------------------------
# Deployment from trained models (compatibility shims over the runtime)
# ---------------------------------------------------------------------------
def fold_classifier(model) -> tuple[list[FoldedBinaryDense],
                                    FoldedOutputDense]:
    """Fold the two-layer binarized classifier of a trained model.

    Compatibility shim: the canonical fold lives in
    :func:`repro.runtime.fold_classifier_stack`, which the unified
    ``compile`` step uses for every backend.  Works with any model
    following the repository convention of exposing ``fc1``/``bn_fc1``
    (hidden, sign-activated) and ``fc2``/``bn_fc2`` (output) binary
    layers — :class:`~repro.models.EEGNet`, :class:`~repro.models.ECGNet`
    and :class:`~repro.models.MobileNetV1` in their binarized modes all do.
    """
    from repro.runtime.compile import fold_classifier_stack
    return fold_classifier_stack(model)


def deploy_classifier(model, config: AcceleratorConfig | None = None,
                      rng: np.random.Generator | None = None,
                      fast_path: bool | str = "auto"
                      ) -> InMemoryClassifier:
    """Program a trained model's binary classifier into RRAM tiles.

    Compatibility shim over ``compile(model, backend=RRAMBackend(...))``;
    the returned :class:`InMemoryClassifier` is the plan's substrate layers
    repackaged in the legacy container.  Unlike ``compile`` (which leaves
    the model in eval mode, its deployment semantics), this shim restores
    the caller's training mode — the legacy function had no side effects.
    ``fast_path=False`` keeps the physical margins resident so the
    programmed classifier stays readable under read-time ``sense``
    overrides (the robustness-sweep convention).
    """
    from repro.runtime import RRAMBackend, compile as compile_model
    was_training = model.training
    backend = RRAMBackend(config, rng, fast_path=fast_path)
    plan = compile_model(model, backend=backend, lower_features=False)
    if was_training:
        model.train()
    return plan.as_inmemory_classifier()


def classifier_input_bits(model, inputs: np.ndarray) -> np.ndarray:
    """Digital front-end: run the feature extractor and binarize.

    Returns the activation bits that the input data controller of Fig. 5
    streams into the first in-memory layer.  The model must be in eval mode
    with fitted batch-norm statistics.
    """
    with no_grad():
        feats = model.features(Tensor(np.asarray(inputs)))
        pre = model.pre_classifier(feats)
    return to_bits(pre.data)
