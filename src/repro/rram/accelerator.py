"""In-memory BNN inference architecture (paper Fig. 5).

The Fig. 5 block implements a fully connected BNN layer with minimal data
movement: trained weights are programmed once into 2T2R arrays by a memory
controller; at inference the input data controller broadcasts activation
bits onto the XNOR inputs of the sense amplifiers, word lines are scanned,
and shared popcount logic accumulates the per-neuron counts, which threshold
units compare to the folded batch-norm thresholds (Eq. 3).

This module provides that architecture end to end:

* :class:`MemoryController` — tiles an arbitrary weight-bit matrix over
  kilobit :class:`~repro.rram.array.RRAMArray` macros and programs them;
* :class:`InMemoryDenseLayer` / :class:`InMemoryOutputLayer` — hardware
  execution of hidden (sign) and output (argmax) binary dense layers;
* :class:`InMemoryClassifier` — a stack of the above;
* :func:`fold_classifier` / :func:`deploy_classifier` — one-call deployment
  of any trained model exposing the ``fc1/bn_fc1/fc2/bn_fc2`` classifier
  convention (all three paper models do);
* :func:`classifier_input_bits` — the digital front-end that turns real
  feature vectors into the activation bits fed to the first binary layer.

Because all device and sense non-idealities live in the array model, the
same classes run "ideal hardware" (zero variability parameters) for
bit-exactness tests and realistic hardware for fault studies.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.nn.binary import (FoldedBinaryDense, FoldedOutputDense,
                             threshold_bits, to_bits)
from repro.rram.array import RRAMArray
from repro.rram.device import DeviceParameters
from repro.rram.sense import SenseParameters
from repro.tensor import Tensor, no_grad

__all__ = ["AcceleratorConfig", "MemoryController", "InMemoryDenseLayer",
           "InMemoryOutputLayer", "InMemoryClassifier", "fold_classifier",
           "deploy_classifier", "classifier_input_bits"]


@dataclass
class AcceleratorConfig:
    """Hardware build parameters.

    ``tile_rows`` x ``tile_cols`` matches the paper's 1K-synapse macro.
    Setting ``ideal=True`` zeroes all variability (fresh devices, no sense
    offset), producing bit-exact digital behaviour — used to verify Eq. 3
    equivalence.
    """

    tile_rows: int = 32
    tile_cols: int = 32
    device: DeviceParameters = field(default_factory=DeviceParameters)
    sense: SenseParameters = field(default_factory=SenseParameters)
    seed: int = 0
    ideal: bool = False

    def resolved(self) -> "AcceleratorConfig":
        if not self.ideal:
            return self
        device = DeviceParameters(
            median_lrs=self.device.median_lrs,
            median_hrs=self.device.median_hrs,
            sigma_lrs0=0.0, sigma_hrs0=0.0, broadening=0.0, hrs_drift=0.0,
            device_mismatch=1.0)
        sense = SenseParameters(offset_sigma=0.0,
                                energy_fj=self.sense.energy_fj)
        return AcceleratorConfig(self.tile_rows, self.tile_cols, device,
                                 sense, self.seed, ideal=False)


class MemoryController:
    """Programs a weight-bit matrix across a grid of RRAM tiles.

    The matrix is laid out row = output neuron, column = input; tiles pad
    the ragged edges, and padded columns are masked out of the popcount so
    they never contribute.
    """

    def __init__(self, weight_bits: np.ndarray,
                 config: AcceleratorConfig | None = None,
                 rng: np.random.Generator | None = None):
        config = (config or AcceleratorConfig()).resolved()
        self.config = config
        self.rng = rng or np.random.default_rng(config.seed)
        weight_bits = np.asarray(weight_bits, dtype=np.uint8)
        if weight_bits.ndim != 2:
            raise ValueError(f"weight bits must be 2-D, got {weight_bits.shape}")
        self.out_features, self.in_features = weight_bits.shape
        tr, tc = config.tile_rows, config.tile_cols
        self.grid_rows = -(-self.out_features // tr)
        self.grid_cols = -(-self.in_features // tc)
        self.tiles: list[list[RRAMArray]] = []
        padded = np.zeros((self.grid_rows * tr, self.grid_cols * tc),
                          dtype=np.uint8)
        padded[:self.out_features, :self.in_features] = weight_bits
        for i in range(self.grid_rows):
            row_tiles = []
            for j in range(self.grid_cols):
                tile = RRAMArray(tr, tc, params=config.device,
                                 sense=config.sense, rng=self.rng)
                tile.program(padded[i * tr:(i + 1) * tr,
                                    j * tc:(j + 1) * tc])
                row_tiles.append(tile)
            self.tiles.append(row_tiles)
        # Valid-column count per tile column block (for popcount masking).
        self._valid_cols = [min(tc, self.in_features - j * tc)
                            for j in range(self.grid_cols)]
        self.popcount_bit_ops = 0

    @property
    def n_tiles(self) -> int:
        return self.grid_rows * self.grid_cols

    @property
    def n_devices(self) -> int:
        per_cell = 2   # 2T2R
        return self.n_tiles * self.config.tile_rows * self.config.tile_cols \
            * per_cell

    @property
    def sense_ops(self) -> int:
        return sum(t.sense_ops for row in self.tiles for t in row)

    def wear(self, cycles: int) -> None:
        """Age every device (endurance studies on deployed weights)."""
        for row in self.tiles:
            for tile in row:
                tile.wear(cycles)

    def reprogram(self) -> None:
        """Re-program stored weights (refresh); re-draws all resistances."""
        for row in self.tiles:
            for tile in row:
                tile.program(tile.weight_bits)

    def popcounts(self, x_bits: np.ndarray) -> np.ndarray:
        """XNOR-popcount of a batch against every stored row.

        ``x_bits``: ``(N, in_features)``; returns ``(N, out_features)``
        integer popcounts.  Each input chunk is broadcast once per tile
        while the word lines are scanned with the vectorized
        :meth:`~repro.rram.array.RRAMArray.xnor_popcounts` read — the
        counts accumulate tile by tile exactly as the shared popcount
        logic of Fig. 5 would, without materializing the XNOR bit planes.
        """
        x_bits = np.asarray(x_bits, dtype=np.uint8)
        if x_bits.ndim != 2 or x_bits.shape[1] != self.in_features:
            raise ValueError(
                f"input shape {x_bits.shape} != (N, {self.in_features})")
        n = x_bits.shape[0]
        tr, tc = self.config.tile_rows, self.config.tile_cols
        counts = np.zeros((n, self.grid_rows * tr), dtype=np.int64)
        for j in range(self.grid_cols):
            valid = self._valid_cols[j]
            chunk = np.zeros((n, tc), dtype=np.uint8)
            chunk[:, :valid] = x_bits[:, j * tc:j * tc + valid]
            for i in range(self.grid_rows):
                counts[:, i * tr:(i + 1) * tr] += \
                    self.tiles[i][j].xnor_popcounts(chunk, valid)
                self.popcount_bit_ops += n * tr * valid
        return counts[:, :self.out_features]


class InMemoryDenseLayer:
    """A hidden binary dense layer executed on RRAM tiles.

    Thresholding implements ``sign(BN(.))`` folded per Eq. 3; output is the
    next layer's activation bits.
    """

    def __init__(self, folded: FoldedBinaryDense,
                 config: AcceleratorConfig | None = None,
                 rng: np.random.Generator | None = None):
        self.folded = folded
        self.controller = MemoryController(folded.weight_bits, config, rng)

    def forward_bits(self, x_bits: np.ndarray) -> np.ndarray:
        pc = self.controller.popcounts(x_bits)
        f = self.folded
        dot = 2 * pc - f.in_features
        return threshold_bits(dot, f.theta[None, :], f.gamma_sign[None, :],
                              f.beta_sign[None, :])


class InMemoryOutputLayer:
    """The final binary dense layer: popcount in-memory, affine + argmax in
    the shared digital logic (no sign follows the last layer)."""

    def __init__(self, folded: FoldedOutputDense,
                 config: AcceleratorConfig | None = None,
                 rng: np.random.Generator | None = None):
        self.folded = folded
        self.controller = MemoryController(folded.weight_bits, config, rng)

    def forward_scores(self, x_bits: np.ndarray) -> np.ndarray:
        pc = self.controller.popcounts(x_bits)
        dot = 2 * pc - self.folded.in_features
        return dot * self.folded.scale[None, :] + self.folded.offset[None, :]


class InMemoryClassifier:
    """A stack of in-memory binary dense layers ending in a score layer."""

    def __init__(self, hidden: list[InMemoryDenseLayer],
                 output: InMemoryOutputLayer):
        self.hidden = hidden
        self.output = output

    def forward_scores(self, x_bits: np.ndarray) -> np.ndarray:
        bits = np.asarray(x_bits, dtype=np.uint8)
        for layer in self.hidden:
            bits = layer.forward_bits(bits)
        return self.output.forward_scores(bits)

    def predict(self, x_bits: np.ndarray) -> np.ndarray:
        return self.forward_scores(x_bits).argmax(axis=1)

    # ------------------------------------------------------------------
    @property
    def controllers(self) -> list[MemoryController]:
        return [layer.controller for layer in self.hidden] \
            + [self.output.controller]

    @property
    def n_devices(self) -> int:
        return sum(c.n_devices for c in self.controllers)

    @property
    def sense_ops(self) -> int:
        return sum(c.sense_ops for c in self.controllers)

    @property
    def popcount_bit_ops(self) -> int:
        return sum(c.popcount_bit_ops for c in self.controllers)

    def wear(self, cycles: int) -> None:
        for controller in self.controllers:
            controller.wear(cycles)


# ---------------------------------------------------------------------------
# Deployment from trained models (compatibility shims over the runtime)
# ---------------------------------------------------------------------------
def fold_classifier(model) -> tuple[list[FoldedBinaryDense],
                                    FoldedOutputDense]:
    """Fold the two-layer binarized classifier of a trained model.

    Compatibility shim: the canonical fold lives in
    :func:`repro.runtime.fold_classifier_stack`, which the unified
    ``compile`` step uses for every backend.  Works with any model
    following the repository convention of exposing ``fc1``/``bn_fc1``
    (hidden, sign-activated) and ``fc2``/``bn_fc2`` (output) binary
    layers — :class:`~repro.models.EEGNet`, :class:`~repro.models.ECGNet`
    and :class:`~repro.models.MobileNetV1` in their binarized modes all do.
    """
    from repro.runtime.compile import fold_classifier_stack
    return fold_classifier_stack(model)


def deploy_classifier(model, config: AcceleratorConfig | None = None,
                      rng: np.random.Generator | None = None
                      ) -> InMemoryClassifier:
    """Program a trained model's binary classifier into RRAM tiles.

    Compatibility shim over ``compile(model, backend=RRAMBackend(...))``;
    the returned :class:`InMemoryClassifier` is the plan's substrate layers
    repackaged in the legacy container.  Unlike ``compile`` (which leaves
    the model in eval mode, its deployment semantics), this shim restores
    the caller's training mode — the legacy function had no side effects.
    """
    from repro.runtime import RRAMBackend, compile as compile_model
    was_training = model.training
    backend = RRAMBackend(config, rng)
    plan = compile_model(model, backend=backend, lower_features=False)
    if was_training:
        model.train()
    return plan.as_inmemory_classifier()


def classifier_input_bits(model, inputs: np.ndarray) -> np.ndarray:
    """Digital front-end: run the feature extractor and binarize.

    Returns the activation bits that the input data controller of Fig. 5
    streams into the first in-memory layer.  The model must be in eval mode
    with fitted batch-norm statistics.
    """
    with no_grad():
        feats = model.features(Tensor(np.asarray(inputs)))
        pre = model.pre_classifier(feats)
    return to_bits(pre.data)
