"""Precharge sense amplifiers (paper Fig. 3).

The PCSA compares the discharge rates of two precharged branches; the branch
with the lower resistance wins the latch race.  Its decision is corrupted by
a random input-referred offset (transistor mismatch), modelled as a
log-normal factor on the resistance ratio — equivalently an additive
Gaussian offset in ln-resistance units.

Two variants are modelled, matching Fig. 3:

* :class:`PrechargeSenseAmplifier` — plain differential read of a 2T2R pair
  (Fig. 3a), or single-ended read against a reference resistance for 1T1R.
* :class:`XnorPCSA` — the paper's key circuit trick (Fig. 3b): four extra
  transistors swap the two branches under control of the input bit, so the
  latched value is directly XNOR(weight, input), performing the binary
  multiplication of Eq. (3) *inside the sense amplifier*.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = ["SenseParameters", "PrechargeSenseAmplifier", "XnorPCSA"]


@dataclass
class SenseParameters:
    """PCSA non-idealities.

    ``offset_sigma`` is the input-referred offset in ln-resistance units
    (0.15 ~ a few percent resistance mismatch); ``energy_fj`` is consumed
    per sense operation and feeds the energy model.
    """

    offset_sigma: float = 0.15
    energy_fj: float = 7.0

    def offset(self, rng: np.random.Generator, shape=()) -> np.ndarray:
        if self.offset_sigma == 0:
            return np.zeros(shape)
        return rng.normal(0.0, self.offset_sigma, size=shape)


class PrechargeSenseAmplifier:
    """Differential resistance comparator with random offset.

    Convention: ``sense(r_bl, r_blb) == 1`` iff the BL device is the *less*
    resistive one (LRS on BL / HRS on BLb), which the paper defines as
    weight +1.
    """

    def __init__(self, params: SenseParameters | None = None,
                 rng: np.random.Generator | None = None):
        self.params = params or SenseParameters()
        self.rng = rng or np.random.default_rng()
        self.sense_count = 0

    def sense(self, r_bl: np.ndarray, r_blb: np.ndarray) -> np.ndarray:
        """Latch a (vector of) 2T2R comparison(s); returns uint8 bits."""
        r_bl = np.asarray(r_bl, dtype=float)
        r_blb = np.asarray(r_blb, dtype=float)
        offset = self.params.offset(self.rng, np.broadcast(r_bl, r_blb).shape)
        self.sense_count += int(np.prod(np.broadcast(r_bl, r_blb).shape) or 1)
        decision = np.log(r_blb) - np.log(r_bl) + offset
        return (decision > 0).astype(np.uint8)

    def sense_single_ended(self, resistance: np.ndarray,
                           reference: float) -> np.ndarray:
        """1T1R read: compare one device against a reference (bit 1 = LRS)."""
        resistance = np.asarray(resistance, dtype=float)
        offset = self.params.offset(self.rng, resistance.shape)
        self.sense_count += int(resistance.size or 1)
        decision = math.log(reference) - np.log(resistance) + offset
        return (decision > 0).astype(np.uint8)


class XnorPCSA(PrechargeSenseAmplifier):
    """PCSA augmented with an XNOR input stage (Fig. 3b).

    The input bit steers which branch connects to which output node; the
    latched result is XNOR(stored weight bit, input bit).  Energy per sense
    is marginally higher than the plain PCSA (four extra transistors).
    """

    def __init__(self, params: SenseParameters | None = None,
                 rng: np.random.Generator | None = None):
        params = params or SenseParameters(energy_fj=8.0)
        super().__init__(params, rng)

    def sense_xnor(self, r_bl: np.ndarray, r_blb: np.ndarray,
                   input_bits: np.ndarray) -> np.ndarray:
        """Read the weight and multiply by the input in one sense operation."""
        weight_bits = self.sense(r_bl, r_blb)
        input_bits = np.asarray(input_bits, dtype=np.uint8)
        return np.logical_not(np.logical_xor(weight_bits, input_bits)) \
            .astype(np.uint8)
