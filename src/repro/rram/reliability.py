"""Retention drift and chip-to-chip yield analysis.

Two reliability axes the paper's companion measurements (refs. [15], [16])
cover and a deployed medical device cares about:

* **Retention** — after programming, the high-resistance state of HfO2 RRAM
  relaxes over time (filament re-growth): ``ln R`` walks toward the read
  reference with a log-time drift plus a random component.  A weight that
  was correct at program time can therefore flip months later, *without*
  any further cycling.  The drift is state-dependent (HRS down, LRS up),
  so it closes the differential window too — but the 2T2R read starts from
  the full LRS-to-HRS margin and its absolute error rate stays well below
  the single-ended one throughout the storage life.
* **Yield** — chips differ: per-die median resistances shift with process
  corners.  A design is only viable if the BER stays inside the BNN's
  tolerance across the die population, not just on the characterized chip.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np
from scipy.stats import norm

from repro.rram.device import DeviceParameters

__all__ = ["RetentionModel", "LifetimeConfig",
           "retention_ber_1t1r", "retention_ber_2t2r",
           "arrhenius_acceleration", "equivalent_hours",
           "YieldAnalysis", "YieldResult"]

# Boltzmann constant in eV/K, for the Arrhenius law.
_K_BOLTZMANN_EV = 8.617333262e-5


def arrhenius_acceleration(temp_c: float, reference_temp_c: float = 125.0,
                           activation_energy_ev: float = 1.1) -> float:
    """Arrhenius acceleration factor of retention loss at ``temp_c``
    relative to the model's calibration temperature.

    Retention qualification bakes devices at high temperature and maps the
    result to operating life through ``AF = exp(Ea/k * (1/T_use - 1/T_ref))``
    — the standard JEDEC methodology.  ``Ea ≈ 1.1 eV`` is the published
    range for HfO2 filament dissolution; the default reference is the
    125 °C bake the :class:`RetentionModel` constants are calibrated to.

    Returns the factor by which time at ``temp_c`` is *slower* than at the
    reference (``> 1`` below the reference temperature).
    """
    if temp_c <= -273.15 or reference_temp_c <= -273.15:
        raise ValueError("temperatures must be above absolute zero")
    if activation_energy_ev <= 0:
        raise ValueError(
            f"activation energy must be positive, got {activation_energy_ev}")
    t_use = temp_c + 273.15
    t_ref = reference_temp_c + 273.15
    return math.exp(activation_energy_ev / _K_BOLTZMANN_EV
                    * (1.0 / t_use - 1.0 / t_ref))


def equivalent_hours(hours_at_temp: float | np.ndarray, temp_c: float,
                     reference_temp_c: float = 125.0,
                     activation_energy_ev: float = 1.1) -> np.ndarray:
    """Convert storage time at ``temp_c`` to bake-equivalent hours.

    Feed the result to :func:`retention_ber_1t1r` / ``_2t2r`` (whose
    :class:`RetentionModel` constants are bake-calibrated) to predict BER
    after field storage at body or room temperature — e.g. ten years at
    37 °C maps to only a fraction of an hour of 125 °C bake.
    """
    factor = arrhenius_acceleration(temp_c, reference_temp_c,
                                    activation_energy_ev)
    return np.asarray(hours_at_temp, dtype=float) / factor


@dataclass
class RetentionModel:
    """Log-time resistance relaxation.

    After ``t`` hours at operating temperature the HRS mean drops by
    ``hrs_drift_per_decade`` ln-units per decade of time and gains random
    spread ``drift_sigma_per_decade``; the (metallic-filament) LRS is
    comparatively stable, with a small upward drift.  Values are in the
    range published for HfO2 devices at 125 C bake-equivalent conditions.
    """

    hrs_drift_per_decade: float = 0.15
    lrs_drift_per_decade: float = 0.03
    drift_sigma_per_decade: float = 0.08
    reference_hours: float = 1.0

    def _decades(self, hours: float | np.ndarray) -> np.ndarray:
        hours = np.maximum(np.asarray(hours, dtype=float),
                           self.reference_hours)
        return np.log10(hours / self.reference_hours)

    def hrs_shift(self, hours: float | np.ndarray) -> np.ndarray:
        """Mean ln-resistance *loss* of the HRS after ``hours``."""
        return self.hrs_drift_per_decade * self._decades(hours)

    def lrs_shift(self, hours: float | np.ndarray) -> np.ndarray:
        """Mean ln-resistance *gain* of the LRS after ``hours``."""
        return self.lrs_drift_per_decade * self._decades(hours)

    def extra_sigma(self, hours: float | np.ndarray) -> np.ndarray:
        return self.drift_sigma_per_decade * self._decades(hours)

    def apply(self, resistances: np.ndarray, is_lrs: np.ndarray,
              hours: float, rng: np.random.Generator) -> np.ndarray:
        """Drift a population of programmed resistances by ``hours``."""
        resistances = np.asarray(resistances, dtype=float)
        is_lrs = np.asarray(is_lrs, dtype=bool)
        shift = np.where(is_lrs, self.lrs_shift(hours),
                         -self.hrs_shift(hours))
        noise = rng.normal(0.0, self.extra_sigma(hours),
                           size=resistances.shape)
        return np.exp(np.log(resistances) + shift + noise)


@dataclass(frozen=True)
class LifetimeConfig:
    """A deployment point in storage time and temperature.

    ``hours`` of field storage at ``temp_c`` are mapped through the
    Arrhenius law onto the bake-equivalent hours the
    :class:`RetentionModel` constants are calibrated to, and the
    resulting drift is applied to programmed device state at program
    time (see :meth:`repro.rram.array.RRAMArray.age`).  ``hours=0`` is
    the fresh chip — inactive, guaranteed to change nothing.
    """

    hours: float = 0.0
    temp_c: float = 37.0
    retention: RetentionModel = field(default_factory=RetentionModel)
    reference_temp_c: float = 125.0
    activation_energy_ev: float = 1.1

    def __post_init__(self):
        if self.hours < 0:
            raise ValueError(f"hours must be >= 0, got {self.hours}")

    @classmethod
    def years(cls, years: float, temp_c: float = 37.0,
              **kwargs) -> "LifetimeConfig":
        """``years`` of field storage at ``temp_c`` (8760 h per year)."""
        return cls(hours=float(years) * 8760.0, temp_c=temp_c, **kwargs)

    @property
    def active(self) -> bool:
        return self.hours > 0

    def bake_hours(self) -> float:
        """Bake-equivalent hours to feed the retention model."""
        return float(equivalent_hours(self.hours, self.temp_c,
                                      self.reference_temp_c,
                                      self.activation_energy_ev))


def retention_ber_1t1r(params: DeviceParameters, retention: RetentionModel,
                       hours: float | np.ndarray, cycles: float = 1e8,
                       sense_offset_sigma: float = 0.15) -> np.ndarray:
    """Closed-form single-ended BER after ``hours`` of storage.

    The HRS mean moves toward the reference while its spread grows, so the
    Gaussian tail past the reference swells with log-time.
    """
    ln_ref = np.log(params.reference_resistance)
    extra = (sense_offset_sigma ** 2 + params.reference_spread ** 2
             + retention.extra_sigma(hours) ** 2)
    s_hrs = np.sqrt(params.sigma_hrs(cycles) ** 2 + extra)
    s_lrs = np.sqrt(params.sigma_lrs(cycles) ** 2 + extra)
    mu_hrs = params.mu_hrs(cycles) - retention.hrs_shift(hours)
    mu_lrs = params.mu_lrs(cycles) + retention.lrs_shift(hours)
    z_hrs = (mu_hrs - ln_ref) / s_hrs
    z_lrs = (ln_ref - mu_lrs) / s_lrs
    return 0.5 * (norm.sf(z_hrs) + norm.sf(z_lrs))


def retention_ber_2t2r(params: DeviceParameters, retention: RetentionModel,
                       hours: float | np.ndarray, cycles: float = 1e8,
                       sense_offset_sigma: float = 0.15) -> np.ndarray:
    """Closed-form differential BER after ``hours`` of storage.

    State-dependent drift closes the LRS-to-HRS window from both sides and
    the random component adds for both devices, but the differential margin
    is twice the single-ended one, so the absolute BER remains far lower
    than 1T1R at any storage time.
    """
    mu_gap = (params.mu_hrs(cycles) - retention.hrs_shift(hours)) \
        - (params.mu_lrs(cycles) + retention.lrs_shift(hours))
    sigma = np.sqrt(
        params.sigma_hrs(cycles) ** 2
        + (params.device_mismatch * params.sigma_lrs(cycles)) ** 2
        + 2 * retention.extra_sigma(hours) ** 2
        + sense_offset_sigma ** 2)
    return norm.sf(mu_gap / sigma)


@dataclass
class YieldResult:
    """Outcome of a die-population yield study."""

    ber_per_chip: np.ndarray
    ber_limit: float

    @property
    def yield_fraction(self) -> float:
        return float(np.mean(self.ber_per_chip <= self.ber_limit))

    @property
    def worst_chip_ber(self) -> float:
        return float(self.ber_per_chip.max())


@dataclass
class YieldAnalysis:
    """Monte-Carlo over process corners.

    Each simulated die gets its own median-resistance multipliers (drawn
    log-normally with ``die_sigma``), then its analytic BER is evaluated.
    ``ber_limit`` defaults to 1e-3, well inside the fault-injection
    tolerance of the BNN classifiers (ablation XTRA2).
    """

    params: DeviceParameters
    die_sigma: float = 0.10
    n_chips: int = 1000
    ber_limit: float = 1e-3
    seed: int = 0

    def run(self, cycles: float = 1e8, mode: str = "2T2R") -> YieldResult:
        from repro.rram.device import analytic_ber_1t1r, analytic_ber_2t2r
        rng = np.random.default_rng(self.seed)
        factors = np.exp(rng.normal(0.0, self.die_sigma, (self.n_chips, 2)))
        bers = np.empty(self.n_chips)
        base = self.params
        for i, (f_lrs, f_hrs) in enumerate(factors):
            die = DeviceParameters(
                median_lrs=base.median_lrs * f_lrs,
                median_hrs=base.median_hrs * f_hrs,
                sigma_lrs0=base.sigma_lrs0, sigma_hrs0=base.sigma_hrs0,
                broadening=base.broadening, hrs_drift=base.hrs_drift,
                reference_cycles=base.reference_cycles,
                device_mismatch=base.device_mismatch,
                reference_spread=base.reference_spread)
            if mode == "2T2R":
                bers[i] = float(analytic_ber_2t2r(die, cycles))
            elif mode == "1T1R":
                bers[i] = float(analytic_ber_1t1r(die, cycles))
            else:
                raise ValueError(f"unknown mode {mode!r}")
        return YieldResult(ber_per_chip=bers, ber_limit=self.ber_limit)
