"""Chip-level floorplanning of a BNN classifier onto RRAM macros.

The Fig. 5 architecture replicates a fixed-size building block — a 2T2R
array with its decoders, XNOR sense amplifiers and shared popcount logic —
under one memory controller.  The paper's test vehicle is a 1K-synapse
(32x32) macro (Fig. 2); a deployed classifier therefore occupies a *grid*
of such macros per layer, and the interesting engineering numbers are how
many, how well they are filled, and what the resulting silicon area and
one-time programming cost are.

:class:`ChipFloorplan` computes exactly that from the folded layer shapes,
using the same technology constants as :class:`repro.rram.energy.EnergyModel`
so area numbers are consistent across the repository.

A placement is also *executable*: :meth:`LayerPlacement.shards` turns the
tile grid into an explicit shard map — one :class:`MacroShard` per macro,
carrying the exact row/column slice of the weight matrix that macro holds
(edge shards are partial).  The sharded multi-macro backend
(:class:`repro.rram.accelerator.ShardedController`) programs one simulated
chip per shard from this map, which is what ties the floorplan's placement
math to actual execution instead of report-only accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.nn.bitops import WORD_BITS
from repro.rram.energy import EnergyModel

__all__ = ["MacroGeometry", "MacroShard", "LayerPlacement", "ChipFloorplan",
           "plan_classifier", "plan_model"]


@dataclass(frozen=True)
class MacroGeometry:
    """One replicated array macro (the paper's is 32x32 synapses)."""

    rows: int = 32
    cols: int = 32

    def __post_init__(self):
        if self.rows <= 0 or self.cols <= 0:
            raise ValueError(
                f"macro must have positive dimensions, got "
                f"{self.rows}x{self.cols}")

    @property
    def synapses(self) -> int:
        return self.rows * self.cols


@dataclass(frozen=True)
class MacroShard:
    """One macro's slice of a layer placement: the executable shard map
    entry.

    ``row_start:row_stop`` are the output neurons (word lines) this chip
    holds, ``col_start:col_stop`` the fan-in slice (bit-line columns).
    Edge shards of a non-divisible layer are partial: they still occupy a
    full macro but only ``rows x cols`` of its synapses hold real weights.
    """

    index: int
    grid_row: int
    grid_col: int
    row_start: int
    row_stop: int
    col_start: int
    col_stop: int
    macro: MacroGeometry

    @property
    def rows(self) -> int:
        return self.row_stop - self.row_start

    @property
    def cols(self) -> int:
        return self.col_stop - self.col_start

    @property
    def synapses_used(self) -> int:
        return self.rows * self.cols

    @property
    def utilization(self) -> float:
        """Fill fraction of this one macro (1.0 for interior shards)."""
        return self.synapses_used / self.macro.synapses

    # -- word-grid metadata (stacked fast plans) -------------------------
    # A layer's activation batch packs once into 64-bit words at full
    # width; these properties locate the shard's fan-in slice on that
    # shared word grid, so program-time plans can pre-align weight words
    # instead of re-packing misaligned activation slices per scan.
    @property
    def word_start(self) -> int:
        """First word of the shared activation grid this shard reads."""
        return self.col_start // WORD_BITS

    @property
    def word_stop(self) -> int:
        """One past the last word this shard reads (ceil boundary)."""
        return -(-self.col_stop // WORD_BITS)

    @property
    def n_words(self) -> int:
        """Words of the shared grid spanned by this shard's fan-in."""
        return self.word_stop - self.word_start

    @property
    def bit_offset(self) -> int:
        """Bit position of ``col_start`` inside its first grid word."""
        return self.col_start - WORD_BITS * self.word_start


@dataclass
class LayerPlacement:
    """How one binary dense layer maps onto the macro grid.

    The layer's ``(out_features, in_features)`` weight matrix is cut into
    row x column tiles of macro size; edge tiles are partially filled.
    """

    name: str
    out_features: int
    in_features: int
    macro: MacroGeometry
    #: Spare macros provisioned for this layer (fault tolerance); set by
    #: the sharded controller when a fault map is in play.
    spare_macros: int = 0
    #: Shard indices that were remapped onto spares (dead macros).
    remapped: tuple[int, ...] = ()
    tile_grid: tuple[int, int] = field(init=False)

    def __post_init__(self):
        if self.out_features <= 0 or self.in_features <= 0:
            raise ValueError(
                f"layer {self.name!r} has empty dimensions "
                f"({self.out_features}, {self.in_features})")
        self.tile_grid = (-(-self.out_features // self.macro.rows),
                          -(-self.in_features // self.macro.cols))
        # Tail-shard invariant: the ceil division must provision at least
        # every real synapse (the tail is a partial macro, never dropped)
        # and utilization can therefore never exceed 1.0.
        if self.synapses_provisioned < self.synapses_used:
            raise ValueError(
                f"layer {self.name!r}: provisioned "
                f"{self.synapses_provisioned} synapses for "
                f"{self.synapses_used} weights — tail shard lost")

    @property
    def n_macros(self) -> int:
        rows, cols = self.tile_grid
        return rows * cols

    @property
    def synapses_used(self) -> int:
        return self.out_features * self.in_features

    @property
    def synapses_provisioned(self) -> int:
        return self.n_macros * self.macro.synapses

    @property
    def utilization(self) -> float:
        """Fraction of provisioned synapses that hold real weights."""
        return self.synapses_used / self.synapses_provisioned

    @property
    def activation_words(self) -> int:
        """Width of the shared activation word grid (64-bit words needed
        to pack one full-fan-in activation row) — the grid every shard's
        :attr:`MacroShard.word_start`/:attr:`MacroShard.word_stop` range
        indexes into."""
        return -(-self.in_features // WORD_BITS)

    def shards(self) -> list[MacroShard]:
        """The executable shard map: one :class:`MacroShard` per macro.

        Shards are emitted in row-major grid order (fan-out stripes outer,
        fan-in slices inner) — the scan order the sharded controller's
        reduction stage relies on.  The map is validated on every call:
        shards tile the weight matrix exactly (every weight accounted
        once, tails included) and never over-claim a macro.
        """
        rows, cols = self.tile_grid
        mr, mc = self.macro.rows, self.macro.cols
        shards = []
        for i in range(rows):
            for j in range(cols):
                shards.append(MacroShard(
                    index=i * cols + j, grid_row=i, grid_col=j,
                    row_start=i * mr,
                    row_stop=min((i + 1) * mr, self.out_features),
                    col_start=j * mc,
                    col_stop=min((j + 1) * mc, self.in_features),
                    macro=self.macro))
        used = sum(s.synapses_used for s in shards)
        if used != self.synapses_used or \
                any(s.utilization > 1.0 for s in shards):
            raise RuntimeError(
                f"layer {self.name!r}: shard map covers {used} synapses, "
                f"expected {self.synapses_used}")
        return shards

    def row(self) -> tuple[str, ...]:
        rows, cols = self.tile_grid
        return (self.name, f"{self.out_features}x{self.in_features}",
                f"{rows}x{cols}", str(self.n_macros),
                f"{self.utilization:.1%}")


@dataclass
class ChipFloorplan:
    """Aggregate plan for a whole classifier."""

    placements: list[LayerPlacement]
    energy: EnergyModel = field(default_factory=EnergyModel)

    def __post_init__(self):
        if not self.placements:
            raise ValueError("a floorplan needs at least one layer")

    @property
    def n_macros(self) -> int:
        return sum(p.n_macros for p in self.placements)

    @property
    def n_devices(self) -> int:
        """Two RRAM devices per provisioned synapse (2T2R)."""
        return 2 * sum(p.synapses_provisioned for p in self.placements)

    @property
    def utilization(self) -> float:
        used = sum(p.synapses_used for p in self.placements)
        provisioned = sum(p.synapses_provisioned for p in self.placements)
        return used / provisioned

    @property
    def spare_macros(self) -> int:
        """Spare macros provisioned across all layers."""
        return sum(p.spare_macros for p in self.placements)

    @property
    def remapped_macros(self) -> int:
        """Dead macros remapped onto spares across all layers."""
        return sum(len(p.remapped) for p in self.placements)

    def area_um2(self) -> dict[str, float]:
        """Area by component, from the shared technology constants.

        Per macro: 2T2R cells, one PCSA per column, and the column share of
        the popcount tree.  The memory controller is one block per chip.
        """
        cells = sense = popcount = 0.0
        controller = self.energy.ecc_decoder_area_um2  # controller-sized block
        for p in self.placements:
            per_macro_cells = p.macro.synapses * self.energy.cell_area_2t2r_um2
            per_macro_sense = p.macro.cols * self.energy.pcsa_area_um2
            per_macro_pop = (p.macro.cols
                             * self.energy.popcount_area_um2_per_bit)
            cells += p.n_macros * per_macro_cells
            sense += p.n_macros * per_macro_sense
            popcount += p.n_macros * per_macro_pop
        total = cells + sense + popcount + controller
        return {"cells": cells, "sense": sense, "popcount": popcount,
                "controller": controller, "total": total}

    def programming_cost(self) -> dict[str, float]:
        """One-time weight programming: device writes and energy (pJ).

        Only real weights are written; unused devices stay in HRS from
        forming and cost nothing per deployment.
        """
        writes = 2 * sum(p.synapses_used for p in self.placements)
        return {"device_writes": float(writes),
                "energy_pj": writes * self.energy.rram_program_pj}

    def macro_report(self) -> str:
        """Per-macro view of the plan: shard fill and scan energy.

        For each layer: how many macros it occupies, how many of them are
        partial tail shards, the worst/mean per-macro utilization from the
        shard map, and the energy of one full word-line scan of a single
        macro (every synapse sensed through the XNOR PCSA plus its share
        of the popcount tree) from the shared technology constants.
        """
        from repro.experiments.tables import render_table
        rows = []
        for p in self.placements:
            shards = p.shards()
            tails = sum(1 for s in shards if s.utilization < 1.0)
            fills = [s.utilization for s in shards]
            scan_pj = p.macro.synapses * (
                self.energy.xnor_pcsa_sense_fj
                + self.energy.popcount_fj_per_bit) / 1e3
            rows.append((p.name, str(p.n_macros), str(tails),
                         f"{min(fills):.1%}",
                         f"{sum(fills) / len(fills):.1%}",
                         f"{scan_pj:.2f}"))
        table = render_table(
            "Per-macro shard map "
            f"({self.placements[0].macro.rows}x"
            f"{self.placements[0].macro.cols} macros)",
            ["Layer", "Macros", "Tails", "Min fill", "Mean fill",
             "Scan pJ/macro"],
            rows)
        if self.spare_macros or self.remapped_macros:
            degraded = []
            for p in self.placements:
                if p.spare_macros or p.remapped:
                    dead = ",".join(str(m) for m in p.remapped) or "-"
                    degraded.append(
                        f"  {p.name}: {len(p.remapped)} dead "
                        f"(shards {dead}) remapped / "
                        f"{p.spare_macros} spare(s) provisioned")
            table += "\nSpare macros (degraded placements):\n" \
                + "\n".join(degraded)
        return table

    def report(self) -> str:
        from repro.experiments.tables import render_table
        table = render_table(
            "Classifier floorplan on "
            f"{self.placements[0].macro.rows}x"
            f"{self.placements[0].macro.cols} macros",
            ["Layer", "Weights", "Tile grid", "Macros", "Utilization"],
            [p.row() for p in self.placements])
        area = self.area_um2()
        prog = self.programming_cost()
        lines = [table, "",
                 f"Total macros: {self.n_macros}   devices: "
                 f"{self.n_devices:,}   overall utilization: "
                 f"{self.utilization:.1%}",
                 f"Area: {area['total'] / 1e6:.3f} mm^2 "
                 f"(cells {area['cells'] / 1e6:.3f}, sense "
                 f"{area['sense'] / 1e6:.3f}, popcount "
                 f"{area['popcount'] / 1e6:.3f}, controller "
                 f"{area['controller'] / 1e6:.3f})",
                 f"Programming: {prog['device_writes']:,.0f} writes, "
                 f"{prog['energy_pj'] / 1e6:.2f} uJ one-time"]
        if self.spare_macros or self.remapped_macros:
            lines.append(
                f"Spares: {self.remapped_macros} dead macro(s) remapped, "
                f"{self.spare_macros} spare(s) provisioned")
        return "\n".join(lines)


def plan_classifier(layer_shapes: list[tuple[int, int]],
                    macro: MacroGeometry | None = None,
                    names: list[str] | None = None,
                    energy: EnergyModel | None = None) -> ChipFloorplan:
    """Plan a classifier given ``(out_features, in_features)`` per layer.

    ``names`` defaults to ``fc1, fc2, ...`` (the repository's classifier
    convention).
    """
    macro = macro or MacroGeometry()
    if names is None:
        names = [f"fc{i + 1}" for i in range(len(layer_shapes))]
    if len(names) != len(layer_shapes):
        raise ValueError(
            f"{len(names)} names for {len(layer_shapes)} layers")
    placements = [LayerPlacement(name, out_f, in_f, macro)
                  for name, (out_f, in_f) in zip(names, layer_shapes)]
    return ChipFloorplan(placements, energy or EnergyModel())


def plan_model(model, macro: MacroGeometry | None = None,
               energy: EnergyModel | None = None) -> ChipFloorplan:
    """Plan every *binary* layer of a model onto the macro grid.

    Walks the module tree and places each binarized layer the way its
    hardware mapping stores it: dense layers by their weight matrix,
    convolutions by one flattened kernel per word-line row (the
    weight-stationary mapping of :mod:`repro.rram.conv` / ``conv2d``),
    depthwise convolutions as per-channel kernel rows.  Real-weight layers
    are skipped — they are not resident in the RRAM fabric.
    """
    from repro.nn.binary import (BinaryConv1d, BinaryConv2d,
                                 BinaryDepthwiseConv2d, BinaryLinear)

    shapes: list[tuple[int, int]] = []
    names: list[str] = []
    for name, module in model.named_modules():
        if isinstance(module, BinaryLinear):
            shape = (module.out_features, module.in_features)
        elif isinstance(module, BinaryConv1d):
            shape = (module.out_channels,
                     module.in_channels * module.kernel_size)
        elif isinstance(module, BinaryConv2d):
            kh, kw = module.kernel_size
            shape = (module.out_channels, module.in_channels * kh * kw)
        elif isinstance(module, BinaryDepthwiseConv2d):
            kh, kw = module.kernel_size
            shape = (module.channels, kh * kw)
        else:
            continue
        shapes.append(shape)
        names.append(name or type(module).__name__)
    if not shapes:
        raise ValueError(
            f"{type(model).__name__} has no binary layers to place "
            "(is it in REAL mode?)")
    return plan_classifier(shapes, macro, names, energy)
